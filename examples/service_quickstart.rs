//! Service quickstart: submitting queries from several tenants through
//! the `restore-service` front end.
//!
//! Brings up a simulated cluster with a PigMix data set, starts a
//! 4-worker service, and submits a mixed-tenant workload twice: the
//! first round runs cold, the warm rerun is answered from each tenant's
//! repository namespace. Prints per-tenant serving and repository stats
//! plus an excerpt of the Prometheus-style metrics exposition.
//!
//! ```sh
//! cargo run --example service_quickstart
//! ```
//!
//! `RESTORE_REPO_SHARDS=8` stripes every tenant's repository 8 ways
//! (the sharded write path); `RESTORE_CANONICALIZE=0` disables the
//! analyzer's canonical form. Output is identical either way.

use restore_suite::core::{ReStore, ReStoreConfig};
use restore_suite::dfs::{Dfs, DfsConfig};
use restore_suite::mapreduce::{ClusterConfig, Engine, EngineConfig};
use restore_suite::pigmix::{datagen, queries, DataScale};
use restore_suite::service::{RestoreService, ServiceConfig};

fn main() {
    // 1. Simulated cluster + PigMix data at tiny scale.
    let dfs =
        Dfs::new(DfsConfig { nodes: 4, block_size: 1024, replication: 2, node_capacity: None });
    datagen::generate(&dfs, &DataScale::tiny(), 0xF00D).expect("data generation");
    let engine = Engine::new(
        dfs,
        ClusterConfig::default(),
        EngineConfig { worker_threads: 2, default_reduce_tasks: 3 },
    );

    // 2. The service: bounded queue, 4 workers, cross-workflow overlap.
    //    RESTORE_REPO_SHARDS stripes the repository write path;
    //    RESTORE_CANONICALIZE=0 turns the analyzer off.
    let repo_shards =
        std::env::var("RESTORE_REPO_SHARDS").ok().and_then(|v| v.parse().ok()).unwrap_or(1);
    let canonicalize =
        !matches!(std::env::var("RESTORE_CANONICALIZE").as_deref(), Ok("0") | Ok("false"));
    let service = RestoreService::new(
        ReStore::new(engine, ReStoreConfig { repo_shards, canonicalize, ..Default::default() }),
        ServiceConfig { workers: 4, queue_depth: 32, ..Default::default() },
    );

    // 3. Two tenants, two rounds. Every submission returns a handle
    //    immediately; waiting redeems the workflow's result.
    let tenants = ["ana", "bo"];
    for round in 0..2 {
        let mut handles = Vec::new();
        for t in &tenants {
            for (name, q, prefix) in [
                (
                    "l3",
                    queries::l3(&format!("/out/r{round}/{t}/l3")),
                    format!("/wf/r{round}/{t}/l3"),
                ),
                (
                    "l7",
                    queries::l7(&format!("/out/r{round}/{t}/l7")),
                    format!("/wf/r{round}/{t}/l7"),
                ),
                (
                    "l8",
                    queries::l8(&format!("/out/r{round}/{t}/l8")),
                    format!("/wf/r{round}/{t}/l8"),
                ),
            ] {
                let h = service.submit(Some(t), &q, &prefix).expect("admitted");
                handles.push((t.to_string(), name, h));
            }
        }
        println!("-- round {round} ({}) --", if round == 0 { "cold" } else { "warm" });
        for (tenant, name, h) in handles {
            let e = h.wait().expect("query completes");
            println!(
                "  {tenant}/{name}: {} job(s) ran, {} skipped, {} rewrite(s), {:.1}s modeled",
                e.job_results.len(),
                e.jobs_skipped,
                e.rewrites.len(),
                e.total_s,
            );
        }
    }

    // 4. Introspection: the service-level and per-tenant picture.
    let stats = service.stats();
    println!("-- service --");
    println!(
        "  workers {} | submitted {} | completed {} | rejected {}",
        stats.workers, stats.submitted, stats.completed, stats.rejected
    );
    for t in &stats.tenants {
        println!(
            "  tenant {:?}: {} completed; repository {} entr{}, {} reuse(s)",
            t.tenant,
            t.completed,
            t.repository.repository_entries,
            if t.repository.repository_entries == 1 { "y" } else { "ies" },
            t.repository.total_uses,
        );
    }

    // 5. The same picture as Prometheus text exposition (excerpt; run
    //    the `metrics_tour` example for the full dump plus reuse traces).
    let metrics = service.render_metrics();
    println!("-- metrics excerpt --");
    for line in metrics.lines().filter(|l| {
        ["restore_match_hits_total", "restore_match_misses_total", "service_queue_depth"]
            .iter()
            .any(|p| l.starts_with(p))
    }) {
        println!("  {line}");
    }

    service.shutdown();
}
