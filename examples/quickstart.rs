//! Quickstart: the paper's Q1/Q2 scenario end to end.
//!
//! Builds an in-memory DFS, loads a small `page_views`/`users` data set,
//! runs Q1 (a join) through ReStore, then runs Q2 (join + group/sum) and
//! watches ReStore answer Q2's join job from Q1's stored output — the
//! rewrite of Figure 4.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use restore_suite::common::{codec, tuple, Tuple};
use restore_suite::core::{ReStore, ReStoreConfig};
use restore_suite::dfs::{Dfs, DfsConfig};
use restore_suite::mapreduce::{ClusterConfig, Engine, EngineConfig};

fn main() {
    // 1. Bring up a simulated cluster: 4 datanodes, small blocks.
    let dfs =
        Dfs::new(DfsConfig { nodes: 4, block_size: 1024, replication: 2, node_capacity: None });

    // 2. Load some data.
    let page_views: Vec<Tuple> = vec![
        tuple!["ann", 1, 10.0, "info-a", "links-a"],
        tuple!["bob", 2, 20.0, "info-b", "links-b"],
        tuple!["ann", 3, 5.5, "info-c", "links-c"],
        tuple!["cat", 4, 7.5, "info-d", "links-d"],
    ];
    dfs.write_all("/data/page_views", &codec::encode_all(&page_views)).unwrap();
    let users: Vec<Tuple> = vec![
        tuple!["ann", "555-0101", "12 Elm St", "Waterloo"],
        tuple!["bob", "555-0102", "34 Oak St", "Toronto"],
    ];
    dfs.write_all("/data/users", &codec::encode_all(&users)).unwrap();

    // 3. Wrap the MapReduce engine with ReStore (Aggressive heuristic).
    let engine = Engine::new(dfs, ClusterConfig::default(), EngineConfig::default());
    let restore = ReStore::new(engine, ReStoreConfig::default());

    // 4. Q1: the paper's example join (PigMix L2 shape).
    let q1 = "
        A = load '/data/page_views' as (user, timestamp:int, est_revenue:double, page_info, page_links);
        B = foreach A generate user, est_revenue;
        alpha = load '/data/users' as (name, phone, address, city);
        beta = foreach alpha generate name;
        C = join beta by name, B by user;
        store C into '/out/q1';
    ";
    let e1 = restore.execute_query(q1, "/wf/q1").unwrap();
    println!(
        "Q1 executed: modeled time {:.1}s, {} sub-jobs materialized",
        e1.total_s, e1.candidates_stored
    );
    println!("Repository now holds {} plans:", restore.repository().len());
    for entry in restore.repository().entries() {
        println!(
            "  #{:<2} {:<22} {:>6} bytes  ({} operators)",
            entry.id,
            entry.output_path,
            entry.stats().output_bytes,
            entry.plan.effective_len(),
        );
    }

    // 5. Q2 extends Q1 with grouping — ReStore reuses Q1's join.
    let q2 = "
        A = load '/data/page_views' as (user, timestamp:int, est_revenue:double, page_info, page_links);
        B = foreach A generate user, est_revenue;
        alpha = load '/data/users' as (name, phone, address, city);
        beta = foreach alpha generate name;
        C = join beta by name, B by user;
        D = group C by $0;
        E = foreach D generate group, SUM(C.est_revenue);
        store E into '/out/q2';
    ";
    let e2 = restore.execute_query(q2, "/wf/q2").unwrap();
    println!("\nQ2 executed: modeled time {:.1}s", e2.total_s);
    println!("  jobs skipped by whole-job reuse: {}", e2.jobs_skipped);
    for rw in &e2.rewrites {
        println!(
            "  rewrite: job {} reused {} (whole job: {})",
            rw.job, rw.reused_path, rw.whole_job
        );
    }

    // 6. The answer, straight from the DFS.
    let out = restore.engine().dfs().read_all(&e2.final_output).unwrap();
    println!("\nQ2 result ({}):", e2.final_output);
    for t in codec::decode_all(&out).unwrap() {
        println!("  {t}");
    }
}
