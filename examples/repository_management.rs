//! Managing the ReStore repository — the §5 rules in action.
//!
//! Demonstrates:
//! * admission rules 1–2 (keep only size-reducing / time-saving outputs)
//!   via [`SelectionPolicy::strict`];
//! * eviction rule 3 (a window of disuse);
//! * eviction rule 4 (input files overwritten);
//! * repository persistence across "sessions" (save/load).
//!
//! ```sh
//! cargo run --example repository_management
//! ```

use restore_suite::common::{codec, tuple, Tuple};
use restore_suite::core::{ReStore, ReStoreConfig, RepoSnapshot, Repository, SelectionPolicy};
use restore_suite::dfs::{Dfs, DfsConfig};
use restore_suite::mapreduce::{ClusterConfig, Engine, EngineConfig};

fn seed(dfs: &Dfs) {
    let rows: Vec<Tuple> = (0..500)
        .map(|i| tuple![format!("u{}", i % 17), i as i64, (i % 100) as f64, "padpadpadpadpad"])
        .collect();
    dfs.write_all("/data/events", &codec::encode_all(&rows)).unwrap();
}

const QUERY: &str = "
    A = load '/data/events' as (user, seq:int, score:double, pad);
    B = foreach A generate user, score;
    G = group B by user;
    R = foreach G generate group, SUM(B.score);
    store R into '/out/scores';
";

fn print_repo(repo: &RepoSnapshot) {
    if repo.is_empty() {
        println!("  (empty)");
        return;
    }
    for e in repo.entries() {
        println!(
            "  #{:<2} {:<26} out={:<8} used={} last_tick={}",
            e.id,
            e.output_path,
            e.stats().output_bytes,
            e.stats().use_count,
            e.stats().last_used
        );
    }
}

fn main() {
    let dfs =
        Dfs::new(DfsConfig { nodes: 4, block_size: 2048, replication: 2, node_capacity: None });
    seed(&dfs);
    let engine = Engine::new(dfs, ClusterConfig::default(), EngineConfig::default());

    // A strict policy: admission rules 1-2 on, 3-tick eviction window,
    // input version checks on.
    let config = ReStoreConfig { selection: SelectionPolicy::strict(3), ..Default::default() };
    let rs = ReStore::new(engine, config);

    println!("== run 1: populate the repository (strict admission) ==");
    rs.execute_query(QUERY, "/wf/run1").unwrap();
    print_repo(&rs.repository());
    println!(
        "(rule 1 rejected any candidate whose output was not smaller than its\n\
         input; rule 2 any whose reload would be slower than recomputing)\n"
    );

    println!("== run 2: the same query reuses the stored outputs ==");
    let e2 = rs.execute_query(QUERY, "/wf/run2").unwrap();
    println!("  rewrites applied: {}", e2.rewrites.len());
    print_repo(&rs.repository());

    println!("\n== persistence: save and reload the repository ==");
    let saved = rs.repository().save();
    println!("  serialized {} bytes", saved.len());
    let reloaded = Repository::load(&saved).unwrap();
    println!("  reloaded {} entries — identical order and stats", reloaded.len());

    println!("\n== rule 4: overwriting an input invalidates dependents ==");
    let dfs = rs.engine().dfs().clone();
    let mut w = dfs.create_overwrite("/data/events").unwrap();
    w.write(&codec::encode_all(&[tuple!["zz", 1, 2.0, "pad"]]));
    w.close().unwrap();
    let e3 = rs.execute_query(QUERY, "/wf/run3").unwrap();
    println!("  rewrites after overwrite: {} (stale entries evicted)", e3.rewrites.len());
    print_repo(&rs.repository());

    println!("\n== rule 3: entries unused for >3 queries are evicted ==");
    // Run unrelated queries to advance the clock without touching the
    // stored outputs.
    for i in 0..4 {
        let q = format!(
            "A = load '/data/events' as (user, seq:int, score:double, pad);
             B = filter A by seq == {i};
             store B into '/out/probe{i}';"
        );
        rs.execute_query(&q, &format!("/wf/probe{i}")).unwrap();
    }
    println!("  repository after 4 unrelated queries:");
    print_repo(&rs.repository());
    println!(
        "\nEvicted outputs were deleted from the DFS; the repository only pays\n\
         for entries with a live chance of reuse."
    );
}
