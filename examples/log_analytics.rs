//! The paper's motivating scenario (§1): an internet company's usage-log
//! warehouse where many analysts run overlapping queries at different
//! times.
//!
//! "Queries on these data sets typically perform the following steps:
//! (1) load the data set, (2) perform some simple processing to filter
//! out unnecessary data, and (3) perform extra processing on the small
//! fraction of the loaded data that passes the filter. Steps 1 and 2 of
//! one workflow are likely to be repeated in other workflows."
//!
//! Five analyst queries share the load+filter prefix; ReStore pays the
//! materialization cost once and every later query starts from the small
//! filtered file.
//!
//! ```sh
//! cargo run --example log_analytics
//! ```

use restore_suite::common::rng::SplitMix64;
use restore_suite::common::{codec, Tuple, Value};
use restore_suite::core::{ReStore, ReStoreConfig};
use restore_suite::dfs::{Dfs, DfsConfig};
use restore_suite::mapreduce::{ClusterConfig, Engine, EngineConfig};

/// Synthesize a service log: (service, level, latency_ms, message).
fn write_logs(dfs: &Dfs, rows: usize) {
    let mut rng = SplitMix64::new(2024);
    let services = ["api", "web", "auth", "billing", "search"];
    let mut out = Vec::with_capacity(rows);
    for _ in 0..rows {
        let service = services[rng.next_below(5) as usize];
        // ~5% of entries are errors — the filter the analysts share.
        let level = if rng.next_below(20) == 0 { "ERROR" } else { "INFO" };
        let latency = rng.next_below(2_000) as i64;
        let message = format!("trace={} detail={}", rng.next_string(16), rng.next_string(48));
        out.push(Tuple::from_values(vec![
            Value::str(service),
            Value::str(level),
            Value::Int(latency),
            Value::Str(message),
        ]));
    }
    dfs.write_all("/logs/app", &codec::encode_all(&out)).unwrap();
}

const LOAD_AND_FILTER: &str = "
    L = load '/logs/app' as (service, level, latency:int, message);
    E = filter L by level == 'ERROR';
";

fn main() {
    // Model a 200 GB production log on the paper's 14-worker cluster: the
    // in-process rows stand in for the real volume, and the cost model
    // scales measured bytes back up (see DESIGN.md §4). A probe pass
    // sizes the data so the DFS block size matches the paper's 64 MB
    // blocks at the modeled scale (same number of input splits).
    let probe =
        Dfs::new(DfsConfig { nodes: 8, block_size: 1 << 20, replication: 1, node_capacity: None });
    write_logs(&probe, 20_000);
    let actual = probe.file_len("/logs/app").unwrap();
    let byte_scale = (200u64 << 30) as f64 / actual as f64;
    let block_size = (((64u64 << 20) as f64 / byte_scale) as u64).clamp(512, 64 << 20);

    let dfs = Dfs::new(DfsConfig { nodes: 8, block_size, replication: 3, node_capacity: None });
    write_logs(&dfs, 20_000);
    let engine =
        Engine::new(dfs, ClusterConfig::paper_testbed(byte_scale), EngineConfig::default());

    // The analyst queries: all start from the shared error filter.
    let queries: Vec<(&str, String)> = vec![
        (
            "errors per service",
            format!(
                "{LOAD_AND_FILTER}
             G = group E by service;
             R = foreach G generate group, COUNT(E);
             store R into '/out/per_service';"
            ),
        ),
        (
            "p-latency of errors",
            format!(
                "{LOAD_AND_FILTER}
             P = foreach E generate service, latency;
             G = group P by service;
             R = foreach G generate group, MAX(P.latency), AVG(P.latency);
             store R into '/out/latency';"
            ),
        ),
        (
            "global error count",
            format!(
                "{LOAD_AND_FILTER}
             G = group E all;
             R = foreach G generate COUNT(E);
             store R into '/out/total';"
            ),
        ),
        (
            "slow errors",
            format!(
                "{LOAD_AND_FILTER}
             S = filter E by latency > 1500;
             store S into '/out/slow';"
            ),
        ),
        (
            "billing errors",
            format!(
                "{LOAD_AND_FILTER}
             B = filter E by service == 'billing';
             G = group B all;
             R = foreach G generate COUNT(B);
             store R into '/out/billing';"
            ),
        ),
    ];

    // Without ReStore: every query rescans the raw log.
    let mut plain_total = 0.0;
    {
        let rs = ReStore::new(engine.clone(), ReStoreConfig::baseline());
        for (i, (_, q)) in queries.iter().enumerate() {
            plain_total += rs.execute_query(q, &format!("/wf/plain{i}")).unwrap().total_s;
        }
    }

    // With ReStore: the first query pays for materializing the filtered
    // errors; the rest start from that file. The Conservative heuristic
    // fits this workload: the shared prefix is exactly a Filter.
    let mut restore_total = 0.0;
    let rs = ReStore::new(
        engine.clone(),
        ReStoreConfig {
            heuristic: restore_suite::core::Heuristic::Conservative,
            ..Default::default()
        },
    );
    println!("{:<24} {:>12} {:>10} {:>8}", "query", "modeled (s)", "rewrites", "stored");
    println!("{}", "-".repeat(58));
    for (i, (name, q)) in queries.iter().enumerate() {
        let e = rs.execute_query(q, &format!("/wf/restore{i}")).unwrap();
        restore_total += e.total_s;
        println!(
            "{:<24} {:>12.1} {:>10} {:>8}",
            name,
            e.total_s,
            e.rewrites.len(),
            e.candidates_stored
        );
    }

    println!("\nWorkload total (modeled cluster seconds):");
    println!("  without ReStore: {plain_total:8.1}");
    println!("  with ReStore:    {restore_total:8.1}");
    println!("  speedup:         {:8.1}x", plain_total / restore_total);
    println!(
        "\nRepository: {} entries, {} logical bytes of stored outputs",
        rs.repository().len(),
        rs.repository().stored_bytes(),
    );
}
