//! Tour of the §4 sub-job heuristics: Conservative (HC), Aggressive
//! (HA), and No-Heuristic (NH) on the PigMix L3 query.
//!
//! For each heuristic the example reports what was materialized, what it
//! cost (store-injection overhead), and what a rerun gains (reuse
//! speedup) — a miniature of Figures 13/14 and Table 1.
//!
//! ```sh
//! cargo run --release --example heuristics_tour
//! ```

use restore_suite::core::{Heuristic, ReStore, ReStoreConfig};
use restore_suite::dfs::{Dfs, DfsConfig};
use restore_suite::mapreduce::{ClusterConfig, Engine, EngineConfig};
use restore_suite::pigmix::{datagen, queries, DataScale};

fn main() {
    // A small PigMix instance (see `restore-bench` for the full scales).
    let scale = DataScale::tiny();
    let dfs =
        Dfs::new(DfsConfig { nodes: 8, block_size: 4 << 10, replication: 3, node_capacity: None });
    let data = datagen::generate(&dfs, &scale, 7).unwrap();
    let byte_scale = scale.byte_scale(data.page_views_bytes);
    let engine =
        Engine::new(dfs, ClusterConfig::paper_testbed(byte_scale), EngineConfig::default());

    let query = queries::l3("/out/l3");

    // Baseline: no ReStore.
    let plain = ReStore::new(engine.clone(), ReStoreConfig::baseline())
        .execute_query(&query, "/wf/plain")
        .unwrap()
        .total_s;
    println!("L3 without ReStore: {:.0} modeled seconds\n", plain);

    println!(
        "{:<14} {:>10} {:>12} {:>10} {:>12} {:>9}",
        "heuristic", "sub-jobs", "stored (B)", "overhead", "rerun (s)", "speedup"
    );
    println!("{}", "-".repeat(72));
    for h in [Heuristic::Conservative, Heuristic::Aggressive, Heuristic::NoHeuristic] {
        let rs = ReStore::new(
            engine.clone(),
            ReStoreConfig {
                heuristic: h,
                reuse_enabled: false,
                repo_prefix: format!("/restore/{}", h.label()),
                register_final_outputs: false,
                ..Default::default()
            },
        );
        // First run: materialize candidates (pays the overhead).
        let gen = rs.execute_query(&query, &format!("/wf/{}-gen", h.label())).unwrap();
        // Second run: reuse them.
        let mut cfg = rs.config().clone();
        cfg.reuse_enabled = true;
        rs.set_config(cfg);
        let reuse = rs.execute_query(&query, &format!("/wf/{}-re", h.label())).unwrap();

        println!(
            "{:<14} {:>10} {:>12} {:>9.2}x {:>12.0} {:>8.1}x",
            h.label(),
            gen.candidates_stored,
            gen.stored_candidate_bytes,
            gen.total_s / plain,
            reuse.total_s,
            plain / reuse.total_s,
        );
    }

    println!(
        "\nThe paper's conclusion (§7.3): HA captures the expensive operators, so\n\
         reusing its sub-jobs matches NH at lower storage cost; HC is cheaper\n\
         still but gives up part of the benefit."
    );
}
