//! Warm-standby failover over the snapshot journal: a primary service
//! ships every sealed journal segment to a standby session that replays
//! it continuously, then the primary is killed and the standby promotes
//! into a serving service — warm, with **no checkpoint file read**.
//!
//! The demo also exercises the divergence rule: rolling the primary
//! back through `restore_incremental` replays state the record stream
//! never described, so the standby's tailer refuses the next segment
//! (lineage mismatch), requests a full-base resync over the back
//! channel, and re-anchors — all on its own.
//!
//! ```sh
//! cargo run --example standby_failover
//! ```

use restore_suite::core::{InProcessLink, ReStore, ReStoreConfig};
use restore_suite::dfs::{Dfs, DfsConfig};
use restore_suite::mapreduce::{ClusterConfig, Engine, EngineConfig};
use restore_suite::pigmix::{datagen, queries, DataScale};
use restore_suite::service::{CheckpointConfig, RestoreService, ServiceConfig, Standby};
use std::time::{Duration, Instant};

fn new_session(dfs: Dfs) -> ReStore {
    let engine = Engine::new(
        dfs,
        ClusterConfig::default(),
        EngineConfig { worker_threads: 2, default_reduce_tasks: 3 },
    );
    ReStore::new(engine, ReStoreConfig::default())
}

fn service_config() -> ServiceConfig {
    ServiceConfig { workers: 2, queue_depth: 64, ..Default::default() }
}

fn run_round(service: &RestoreService, tag: &str) -> usize {
    let mut handles = Vec::new();
    for t in ["ana", "bo"] {
        let q = queries::l3(&format!("/out/{tag}/{t}"));
        handles.push(service.submit(Some(t), &q, &format!("/wf/{tag}/{t}")).expect("admitted"));
    }
    handles.into_iter().map(|h| h.wait().expect("completes").jobs_skipped).sum()
}

fn main() {
    // 1. A simulated cluster with PigMix data, shared by primary and
    //    standby the way two processes share a DFS.
    let dfs =
        Dfs::new(DfsConfig { nodes: 4, block_size: 4096, replication: 2, node_capacity: None });
    datagen::generate(&dfs, &DataScale::tiny(), 0xFA11).expect("datagen");

    // 2. Primary serves; a standby attaches behind an in-process link
    //    and tails every shipped segment on its own thread.
    let primary = RestoreService::new(new_session(dfs.clone()), service_config());
    primary.checkpoint_begin(CheckpointConfig::default());
    let link = InProcessLink::new();
    primary.attach_standby(link.clone()).expect("attach");
    let standby = Standby::attach(new_session(dfs.clone()), link);
    println!("standby attached ({} link)", primary.standby_count());

    for round in 0..3 {
        let skipped = run_round(&primary, &format!("r{round}"));
        println!("round {round}: {skipped} job(s) answered from the repository");
    }
    primary.drain();
    primary.ship_now();
    assert!(standby.wait_caught_up(Duration::from_secs(30)), "standby catches up");
    println!(
        "standby caught up: applied seq {}, unshipped lag {} record(s)",
        standby.replica().applied_seq(),
        primary.replication_lag_records(),
    );

    // 3. Divergence: roll the primary back to its checkpoint — an
    //    un-journaled replay. The standby refuses the diverged stream
    //    and self-heals through a full-base resync.
    primary.checkpoint_incremental().expect("capture");
    let set = primary.checkpoint_set().expect("checkpointing");
    run_round(&primary, "diverge");
    primary.drain();
    primary.restore_incremental(&set).expect("rollback");
    run_round(&primary, "post-rollback");
    primary.drain();
    let healed = (0..200).any(|_| {
        primary.ship_now();
        standby.wait_caught_up(Duration::from_millis(50)) && standby.replica().resyncs() > 0
    });
    assert!(healed, "tailer must resync past the lineage break");
    println!("lineage break healed: {} full-base resync(s)", standby.replica().resyncs());
    assert_eq!(
        standby.replica().driver().save_state(),
        primary.driver().save_state(),
        "post-resync standby must match the primary byte for byte"
    );

    // 4. Failover: kill the primary, promote the standby. Promotion
    //    drains the replay queue and checks seq parity — no checkpoint
    //    set, no DFS walk, no journal file.
    let reference = primary.driver().save_state();
    primary.shutdown();
    let t0 = Instant::now();
    let promoted = standby.promote(service_config()).expect("promotion");
    println!("promoted in {:?}", t0.elapsed());
    assert_eq!(promoted.driver().save_state(), reference, "promotion preserves state");

    // 5. The promoted service answers the dead primary's workload warm.
    let warm = run_round(&promoted, "r0");
    println!("warm rerun on the promoted standby: {warm} job(s) skipped");
    assert!(warm > 0, "promoted standby must serve reuse");
    promoted.shutdown();
    println!("standby failover OK: diverge, resync, promote, serve warm");
}
