//! The failure-policy engine on one page: a tenant starts flapping
//! (every submission fails via an injected fault), bounded retries burn
//! down, the exhausted submissions park in the tenant's journal-durable
//! dead-letter queue, and the circuit breaker trips — subsequent
//! submissions are shed with `CircuitOpen` before they reach the queue
//! or a worker. Then the outage ends: the cooldown elapses, a half-open
//! probe closes the breaker, and a `redrive` pushes the dead letters
//! back through normal admission to completion.
//!
//! ```sh
//! cargo run --example failure_policy
//! ```
//!
//! CI smokes this example; the asserts are the contract.

use restore_suite::core::{FailureDisposition, FailurePolicy, ReStore, ReStoreConfig};
use restore_suite::dfs::{Dfs, DfsConfig};
use restore_suite::mapreduce::{ClusterConfig, Engine, EngineConfig};
use restore_suite::pigmix::{datagen, queries, DataScale};
use restore_suite::service::{FaultInjector, RestoreService, ServiceConfig, ServiceError};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Deterministic outage: every attempt for `tenant` fails until healed.
struct Outage {
    tenant: &'static str,
    failing: AtomicBool,
}

impl FaultInjector for Outage {
    fn inject(&self, tenant: Option<&str>, _submission: u64, attempt: u32) -> Option<String> {
        (self.failing.load(Ordering::SeqCst) && tenant == Some(self.tenant))
            .then(|| format!("injected outage (attempt {attempt})"))
    }
}

fn main() {
    let dfs =
        Dfs::new(DfsConfig { nodes: 4, block_size: 1024, replication: 2, node_capacity: None });
    datagen::generate(&dfs, &DataScale::tiny(), 0xFA17).expect("datagen");
    let engine = Engine::new(
        dfs,
        ClusterConfig::default(),
        EngineConfig { worker_threads: 2, default_reduce_tasks: 3 },
    );
    let service = RestoreService::new(
        ReStore::new(engine, ReStoreConfig::default()),
        ServiceConfig { workers: 2, queue_depth: 64, ..Default::default() },
    );

    // 1. Tenant "flaky" opts into retries + dead-lettering + a breaker;
    //    everyone else keeps the fail-fast default.
    service.set_tenant_config(
        Some("flaky"),
        ReStoreConfig {
            failure: FailurePolicy {
                on_failure: FailureDisposition::Dlq,
                max_retries: 1,
                retry_backoff_base_ms: 5,
                failure_window: 8,
                failure_threshold: 3,
                breaker_cooldown_ms: 200,
                breaker_half_open_probes: 1,
                breaker_success_threshold: 1,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let outage = Arc::new(Outage { tenant: "flaky", failing: AtomicBool::new(true) });
    service.set_fault_injector(Some(outage.clone()));

    // 2. The outage: submissions fail, retry once, park in the DLQ.
    println!("-- outage: every submission for \"flaky\" fails --");
    for round in 0..2 {
        let q = queries::l3(&format!("/out/flaky/r{round}"));
        let err = service
            .submit(Some("flaky"), &q, &format!("/wf/flaky/r{round}"))
            .expect("admitted")
            .wait()
            .expect_err("the injected fault surfaces");
        println!("   submission {round}: {err}");
    }
    let parked = service.dlq_entries(Some("flaky"));
    println!("-- dead-letter queue: {} entries --", parked.len());
    for e in &parked {
        println!("   #{} after {} attempts: {}", e.id, e.attempts, e.error);
    }
    assert_eq!(parked.len(), 2, "both exhausted submissions parked");
    assert!(parked.iter().all(|e| e.attempts == 2), "initial attempt + one retry each");

    // 3. Four failed attempts crossed the threshold: the breaker is
    //    open and submissions are shed before queueing.
    match service.submit(Some("flaky"), &queries::l3("/out/flaky/shed"), "/wf/flaky/shed") {
        Err(ServiceError::CircuitOpen { tenant }) => {
            println!("-- breaker open: tenant {tenant:?} shed with CircuitOpen --");
        }
        other => panic!("expected CircuitOpen, got {other:?}"),
    }
    // A healthy tenant is untouched by its neighbour's outage.
    service
        .submit(Some("steady"), &queries::l7("/out/steady/r0"), "/wf/steady/r0")
        .expect("admitted")
        .wait()
        .expect("healthy tenant executes normally");
    println!("-- healthy tenant \"steady\" served during the outage --");

    // 4. The outage ends; after the cooldown the next submission is a
    //    half-open probe whose success closes the breaker.
    outage.failing.store(false, Ordering::SeqCst);
    std::thread::sleep(Duration::from_millis(250));
    service
        .submit(Some("flaky"), &queries::l3("/out/flaky/probe"), "/wf/flaky/probe")
        .expect("admitted as the half-open probe")
        .wait()
        .expect("probe succeeds");
    println!("-- cooldown elapsed: half-open probe succeeded, breaker closed --");

    // 5. Redrive: the dead letters re-enter normal admission and
    //    complete; each entry is acked (journal-durably) on admission.
    let outcome = service.redrive(Some("flaky"));
    assert!(outcome.stopped.is_none(), "nothing blocked the redrive");
    for h in outcome.admitted {
        let exec = h.wait().expect("re-driven workflow completes");
        println!(
            "   re-driven workflow served at {} ({} job(s) answered from the repository)",
            exec.final_output, exec.jobs_skipped
        );
    }
    assert_eq!(service.dlq_depth(Some("flaky")), 0, "queue drained");
    println!("-- dead-letter queue re-driven to empty --");

    // 6. The whole episode is on the metrics surface.
    let metrics = service.render_metrics();
    for family in [
        "restore_retries_total",
        "restore_dlq_puts_total",
        "restore_dlq_redrives_total",
        "restore_circuit_shed_total",
        "restore_circuit_state",
        "restore_dlq_depth",
    ] {
        let line = metrics.lines().find(|l| l.starts_with(family)).expect("family present");
        println!("   {line}");
    }
    service.shutdown();
    println!("-- done --");
}
