//! Metrics tour: the full observability surface on one page.
//!
//! Runs a small two-round workload through the service (cold, then
//! warm-from-repository), captures an incremental checkpoint, then:
//!
//! 1. prints the reuse-decision trace of the warm rerun — *why* the
//!    repository answered it ([`RestoreService::trace`]);
//! 2. dumps the complete Prometheus text exposition from
//!    [`RestoreService::render_metrics`] — match hit/miss/latency per
//!    tenant and shard, per-stage pipeline timing, journal lanes,
//!    checkpoint durations, scheduler depth, worker utilization,
//!    replication shipping (a warm standby tails the whole run), and
//!    the RCU write counters that prove the match path publishes
//!    nothing;
//! 3. prints the standby's replica-side replication families
//!    (`restore_replica_*`), which live in the *standby's* registry —
//!    a second process in a real deployment.
//!
//! ```sh
//! cargo run --example metrics_tour
//! ```
//!
//! CI smokes this example and greps the output for the required metric
//! families, so the exposition surface cannot silently regress.
//!
//! [`RestoreService::trace`]: restore_suite::service::RestoreService::trace
//! [`RestoreService::render_metrics`]: restore_suite::service::RestoreService::render_metrics

use restore_suite::core::{
    FailureDisposition, FailurePolicy, InProcessLink, ReStore, ReStoreConfig,
};
use restore_suite::dfs::{Dfs, DfsConfig};
use restore_suite::mapreduce::{ClusterConfig, Engine, EngineConfig};
use restore_suite::pigmix::{datagen, queries, DataScale};
use restore_suite::service::{
    CheckpointConfig, FaultInjector, RestoreService, ServiceConfig, ServiceError, Standby,
};

/// Injected outage for the tour's flaky tenant: every attempt fails,
/// so the failure-policy families below carry real traffic.
struct FlakyOutage;

impl FaultInjector for FlakyOutage {
    fn inject(&self, tenant: Option<&str>, _submission: u64, _attempt: u32) -> Option<String> {
        (tenant == Some("flaky")).then(|| "injected outage".to_string())
    }
}

fn main() {
    let dfs =
        Dfs::new(DfsConfig { nodes: 4, block_size: 1024, replication: 2, node_capacity: None });
    datagen::generate(&dfs, &DataScale::tiny(), 0xF00D).expect("data generation");
    let engine = Engine::new(
        dfs.clone(),
        ClusterConfig::default(),
        EngineConfig { worker_threads: 2, default_reduce_tasks: 3 },
    );
    let repo_shards =
        std::env::var("RESTORE_REPO_SHARDS").ok().and_then(|v| v.parse().ok()).unwrap_or(4);
    // RESTORE_CANONICALIZE=0 turns the analyzer off; the canonicalization
    // histograms below then stay at zero counts but remain exposed.
    let canonicalize =
        !matches!(std::env::var("RESTORE_CANONICALIZE").as_deref(), Ok("0") | Ok("false"));
    let service = RestoreService::new(
        ReStore::new(engine, ReStoreConfig { repo_shards, canonicalize, ..Default::default() }),
        ServiceConfig { workers: 2, queue_depth: 16, ..Default::default() },
    );
    service.checkpoint_begin(CheckpointConfig::default());

    // A warm standby tails the run over an in-process link, so the
    // replication families below carry real traffic. `attach_manual`
    // keeps replay on this thread — the tour's output stays ordered.
    let link = InProcessLink::new();
    service.attach_standby(link.clone()).expect("standby attach");
    let standby_engine = Engine::new(
        dfs,
        ClusterConfig::default(),
        EngineConfig { worker_threads: 2, default_reduce_tasks: 3 },
    );
    let standby = Standby::attach_manual(
        ReStore::new(
            standby_engine,
            ReStoreConfig { repo_shards, canonicalize, ..Default::default() },
        ),
        link,
    );

    // Cold round: everything misses, the repository fills.
    for (q, wf) in
        [(queries::l3("/out/cold/l3"), "/wf/cold/l3"), (queries::l7("/out/cold/l7"), "/wf/cold/l7")]
    {
        service.submit(Some("ana"), &q, wf).expect("admitted").wait().expect("cold run");
    }
    // Warm rerun: answered from the repository.
    let warm = service.submit(Some("ana"), &queries::l7("/out/warm/l7"), "/wf/warm/l7").unwrap();
    let exec = warm.wait().expect("warm run");

    // Failure-policy beat: a flaky tenant retries once, dead-letters
    // the exhausted submission, and trips its breaker — populating
    // `restore_retries_total`, `restore_dlq_depth{tenant="flaky"}`,
    // and `restore_circuit_state{tenant="flaky"}`.
    service.set_tenant_config(
        Some("flaky"),
        ReStoreConfig {
            repo_shards,
            failure: FailurePolicy {
                on_failure: FailureDisposition::Dlq,
                max_retries: 1,
                retry_backoff_base_ms: 1,
                failure_window: 4,
                failure_threshold: 2,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    service.set_fault_injector(Some(std::sync::Arc::new(FlakyOutage)));
    service
        .submit(Some("flaky"), &queries::l3("/out/flaky/l3"), "/wf/flaky/l3")
        .expect("admitted")
        .wait()
        .expect_err("the injected outage exhausts the retry budget");
    assert!(
        matches!(
            service.submit(Some("flaky"), &queries::l3("/out/flaky/shed"), "/wf/flaky/shed"),
            Err(ServiceError::CircuitOpen { .. })
        ),
        "two failed attempts trip the breaker"
    );
    service.set_fault_injector(None);

    service.checkpoint_incremental().expect("delta capture");
    service.ship_now();
    let applied = standby.tail_all();
    assert!(applied > 0, "the standby must have replayed the shipped stream");

    println!(
        "-- warm rerun: {} job(s) ran, {} skipped --",
        exec.job_results.len(),
        exec.jobs_skipped
    );
    println!("-- reuse-decision trace (why the repository answered it) --");
    for event in service.trace(&warm).expect("completed submission has a trace") {
        println!("  {event}");
    }

    println!("-- prometheus exposition --");
    print!("{}", service.render_metrics());

    println!("-- standby exposition (replica-side replication families) --");
    for line in standby.replica().driver().registry().render().lines() {
        if line.contains("restore_replica_") {
            println!("{line}");
        }
    }

    service.shutdown();
}
