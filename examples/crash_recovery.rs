//! Crash recovery from the snapshot journal: continuous checkpointing
//! under load, a simulated process kill mid-journal, and recovery from
//! the torn checkpoint set.
//!
//! The service runs a mixed-tenant workload in **continuous-checkpoint
//! mode**: a base checkpoint is anchored once, then cheap incremental
//! deltas are captured between rounds *without ever pausing dispatch*.
//! The "crash" truncates the live (last) journal segment at a
//! pseudo-random byte offset — exactly what a process death mid-append
//! leaves on disk. Recovery loads the base, replays the journal,
//! truncates the torn tail, and the warm rerun is served from the
//! recovered repositories. The loop repeats the kill at several
//! offsets to show recovery is offset-independent.
//!
//! ```sh
//! cargo run --example crash_recovery
//! ```

use restore_suite::core::{ReStore, ReStoreConfig};
use restore_suite::dfs::{Dfs, DfsConfig};
use restore_suite::mapreduce::{ClusterConfig, Engine, EngineConfig};
use restore_suite::pigmix::{datagen, queries, DataScale};
use restore_suite::service::{CheckpointConfig, RestoreService, ServiceConfig};

fn new_service(dfs: Dfs) -> RestoreService {
    let engine = Engine::new(
        dfs,
        ClusterConfig::default(),
        EngineConfig { worker_threads: 2, default_reduce_tasks: 3 },
    );
    RestoreService::new(
        ReStore::new(engine, ReStoreConfig::default()),
        ServiceConfig { workers: 4, queue_depth: 64, ..Default::default() },
    )
}

fn run_round(service: &RestoreService, tag: &str) -> usize {
    let mut handles = Vec::new();
    for t in ["ana", "bo"] {
        for (name, q, prefix) in [
            ("l3", queries::l3(&format!("/out/{tag}/{t}/l3")), format!("/wf/{tag}/{t}/l3")),
            ("l8", queries::l8(&format!("/out/{tag}/{t}/l8")), format!("/wf/{tag}/{t}/l8")),
        ] {
            handles.push((t, name, service.submit(Some(t), &q, &prefix).expect("admitted")));
        }
    }
    let mut skipped = 0;
    for (_, _, h) in handles {
        skipped += h.wait().expect("query completes").jobs_skipped;
    }
    skipped
}

fn main() {
    // 1. A simulated cluster with PigMix data; the DFS is the durable
    //    side (stored outputs survive the "crash").
    let dfs =
        Dfs::new(DfsConfig { nodes: 4, block_size: 4096, replication: 2, node_capacity: None });
    datagen::generate(&dfs, &DataScale::tiny(), 0xC0_FFEE).expect("datagen");

    // 2. Serve the workload in continuous-checkpoint mode: one base
    //    anchor, then a delta per round — no drain, no pause.
    let service = new_service(dfs.clone());
    let begin = service.checkpoint_begin(CheckpointConfig::default());
    println!("base checkpoint anchored: {} bytes", begin.base_bytes);
    for round in 0..3 {
        let skipped = run_round(&service, &format!("r{round}"));
        let outcome = service.checkpoint_incremental().expect("capture");
        println!(
            "round {round}: {skipped} job(s) answered from the repository; \
             delta captured {} segment(s) ({} journal bytes on a {}-byte base{})",
            outcome.segments_added,
            outcome.journal_bytes,
            outcome.base_bytes,
            if outcome.compacted { ", compacted" } else { "" },
        );
    }
    service.drain();
    service.checkpoint_incremental().expect("final capture");
    let reference = service.driver().save_state();
    let set = service.checkpoint_set().expect("checkpointing enabled");
    drop(service); // the crash: only the DFS and the checkpoint set survive

    // 3. Kill the journal at several pseudo-random offsets: every
    //    truncation must recover to a consistent prefix.
    let last = set.segments.last().expect("journaled work").clone();
    let mut lcg: u64 = 0x9E3779B97F4A7C15;
    let mut offsets: Vec<usize> = (0..4)
        .map(|_| {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (lcg >> 33) as usize % last.len()
        })
        .collect();
    offsets.push(last.len()); // and the clean-shutdown case

    for cut in offsets {
        let mut torn_set = set.clone();
        *torn_set.segments.last_mut().unwrap() = last[..cut].to_string();

        let resumed = new_service(dfs.clone());
        let report = resumed.restore_incremental(&torn_set).expect("recovery");
        println!(
            "kill at byte {cut}/{}: {} record(s) replayed, torn tail {}",
            last.len(),
            report.records_applied,
            match report.torn_tail {
                Some(t) => format!("truncated at offset {}", t.offset),
                None => "none (clean boundary)".to_string(),
            },
        );
        // A full, untorn set must reproduce the live session exactly.
        if cut == last.len() {
            assert_eq!(
                resumed.driver().save_state(),
                reference,
                "untorn recovery must be byte-identical to the crashed session"
            );
        }
        // Whatever prefix we recovered is internally consistent: it
        // re-saves cleanly and serves the warm rerun.
        let warm = run_round(&resumed, &format!("warm{cut}"));
        println!("  warm rerun after recovery: {warm} job(s) skipped");
        assert!(warm > 0, "recovered repositories must serve reuse");
        resumed.shutdown();
    }
    println!("crash recovery OK: every offset recovered a consistent prefix");
}
