//! Semantic reuse: the analyzer's warm-hit-rate lift, measured.
//!
//! Runs the paraphrased-PigMix suite — each query rewritten 3–5
//! semantically-equal ways (commuted conjunctions, filter chains,
//! literal-first comparisons, swapped arithmetic operands, shared
//! subplans) — through two ReStore sessions over identically-seeded
//! data: one with [`ReStoreConfig::canonicalize`] on, one with it off.
//! Each case submits its original formulation cold, then its
//! paraphrases; a paraphrase counts as a **warm hit** when the
//! repository answers at least one of its jobs.
//!
//! ```sh
//! cargo run --example semantic_reuse
//! ```
//!
//! CI runs this as a smoke: the process exits nonzero unless the
//! analyzer-on hit rate strictly exceeds the analyzer-off rate, so the
//! canonical form's reuse lift cannot silently regress.
//!
//! [`ReStoreConfig::canonicalize`]: restore_suite::core::ReStoreConfig

use restore_suite::core::{ReStore, ReStoreConfig};
use restore_suite::dfs::{Dfs, DfsConfig};
use restore_suite::mapreduce::{ClusterConfig, Engine, EngineConfig};
use restore_suite::pigmix::paraphrase::paraphrase_suite;
use restore_suite::pigmix::{datagen, DataScale};

/// One fresh session over freshly generated (deterministic) data.
fn session(canonicalize: bool) -> ReStore {
    let dfs =
        Dfs::new(DfsConfig { nodes: 4, block_size: 1024, replication: 2, node_capacity: None });
    datagen::generate(&dfs, &DataScale::tiny(), 0xF00D).expect("data generation");
    let engine = Engine::new(
        dfs,
        ClusterConfig::default(),
        EngineConfig { worker_threads: 2, default_reduce_tasks: 2 },
    );
    ReStore::new(engine, ReStoreConfig { canonicalize, ..Default::default() })
}

/// Runs the whole suite through one session; returns
/// `(warm_hits, paraphrase_submissions)` plus the per-case tally.
fn run(restore: &ReStore, mode: &str) -> (usize, usize, Vec<(&'static str, usize, usize)>) {
    let mut hits = 0;
    let mut total = 0;
    let mut per_case = Vec::new();
    for (c, case) in paraphrase_suite(&format!("/out/{mode}")).iter().enumerate() {
        restore
            .execute_query(&case.original, &format!("/wf/{mode}/{c}/o"))
            .unwrap_or_else(|e| panic!("{} original: {e}", case.label));
        let mut case_hits = 0;
        for (i, p) in case.paraphrases.iter().enumerate() {
            let exec = restore
                .execute_query(p, &format!("/wf/{mode}/{c}/p{i}"))
                .unwrap_or_else(|e| panic!("{} p{i}: {e}", case.label));
            if exec.jobs_skipped > 0 {
                case_hits += 1;
            }
        }
        hits += case_hits;
        total += case.paraphrases.len();
        per_case.push((case.label, case_hits, case.paraphrases.len()));
    }
    (hits, total, per_case)
}

fn main() {
    let on = session(true);
    let off = session(false);
    let (on_hits, on_total, on_cases) = run(&on, "on");
    let (off_hits, off_total, off_cases) = run(&off, "off");

    println!("-- paraphrased-PigMix warm hits (analyzer on vs off) --");
    for ((label, h_on, n), (_, h_off, _)) in on_cases.iter().zip(&off_cases) {
        println!("  {label:<16} on {h_on}/{n}   off {h_off}/{n}");
    }
    let rate = |h: usize, n: usize| 100.0 * h as f64 / n as f64;
    println!(
        "  total            on {on_hits}/{on_total} ({:.0}%)   off {off_hits}/{off_total} ({:.0}%)",
        rate(on_hits, on_total),
        rate(off_hits, off_total)
    );

    if on_hits <= off_hits {
        eprintln!("FAIL: analyzer-on hit rate must strictly exceed analyzer-off");
        std::process::exit(1);
    }
    println!("analyzer lift confirmed: +{} warm hits", on_hits - off_hits);
}
