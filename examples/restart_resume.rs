//! Restart & resume: durable multi-tenant sessions end to end.
//!
//! Runs a mixed-tenant workload cold through `RestoreService`, takes a
//! consistent snapshot (`RestoreService::snapshot` drain-quiesces the
//! pool), simulates a process restart — the service and driver are torn
//! down, only the DFS and the snapshot string survive — and brings up a
//! fresh service from the snapshot. The warm rerun is then answered
//! from each tenant's restored repository exactly as it would have been
//! without the restart, per-tenant policy overrides included.
//!
//! ```sh
//! cargo run --example restart_resume
//! ```

use restore_suite::core::{Heuristic, ReStore, ReStoreConfig};
use restore_suite::dfs::{Dfs, DfsConfig};
use restore_suite::mapreduce::{ClusterConfig, Engine, EngineConfig};
use restore_suite::pigmix::{datagen, queries, DataScale};
use restore_suite::service::{RestoreService, ServiceConfig};

fn new_service(dfs: Dfs) -> RestoreService {
    let engine = Engine::new(
        dfs,
        ClusterConfig::default(),
        EngineConfig { worker_threads: 2, default_reduce_tasks: 3 },
    );
    RestoreService::new(
        ReStore::new(engine, ReStoreConfig::default()),
        ServiceConfig { workers: 4, queue_depth: 32, ..Default::default() },
    )
}

fn run_round(service: &RestoreService, round: usize) -> usize {
    let tenants = ["ana", "bo"];
    let mut handles = Vec::new();
    for t in &tenants {
        for (name, q, prefix) in [
            ("l3", queries::l3(&format!("/out/r{round}/{t}/l3")), format!("/wf/r{round}/{t}/l3")),
            ("l7", queries::l7(&format!("/out/r{round}/{t}/l7")), format!("/wf/r{round}/{t}/l7")),
        ] {
            let h = service.submit(Some(t), &q, &prefix).expect("admitted");
            handles.push((t.to_string(), name, h));
        }
    }
    let mut skipped = 0;
    for (tenant, name, h) in handles {
        let e = h.wait().expect("query completes");
        skipped += e.jobs_skipped;
        println!(
            "  {tenant}/{name}: {} job(s) ran, {} skipped, {} rewrite(s)",
            e.job_results.len(),
            e.jobs_skipped,
            e.rewrites.len(),
        );
    }
    skipped
}

fn main() {
    // 1. A simulated cluster with PigMix data. The DFS is the durable
    //    substrate: it survives the "crash" below.
    let dfs =
        Dfs::new(DfsConfig { nodes: 4, block_size: 1024, replication: 2, node_capacity: None });
    datagen::generate(&dfs, &DataScale::tiny(), 0xF00D).expect("data generation");

    // 2. First life of the process: per-tenant policies, cold round.
    let service = new_service(dfs.clone());
    service.set_tenant_config(
        Some("ana"),
        ReStoreConfig { heuristic: Heuristic::Conservative, ..Default::default() },
    );
    println!("-- round 0 (cold) --");
    run_round(&service, 0);

    // 3. Snapshot and crash. `snapshot()` pauses dispatch, waits for
    //    in-flight workflows, serializes every tenant namespace (repo,
    //    provenance, per-tenant config, counters), and resumes.
    let snapshot = service.snapshot();
    service.shutdown();
    println!("-- process restart: {} bytes of restore-state carry the session --", snapshot.len());

    // 4. Second life: a fresh service restored from the snapshot alone.
    let service = new_service(dfs);
    service.restore(&snapshot).expect("snapshot restores");
    assert_eq!(
        service.tenant_config(Some("ana")).heuristic,
        Heuristic::Conservative,
        "per-tenant policy overrides are part of the durable state",
    );

    // 5. The warm round hits each tenant's restored repository.
    println!("-- round 1 (warm, after restart) --");
    let skipped = run_round(&service, 1);
    assert!(skipped > 0, "warm round must be served from the restored repositories");

    for t in &service.stats().tenants {
        println!(
            "  tenant {:?}: repository {} entr{}, {} reuse(s)",
            t.tenant,
            t.repository.repository_entries,
            if t.repository.repository_entries == 1 { "y" } else { "ies" },
            t.repository.total_uses,
        );
    }
    service.shutdown();
    println!("restart/resume round trip complete");
}
