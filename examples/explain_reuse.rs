//! Inspecting ReStore's decisions before committing to them: the
//! `explain_query` dry run, repository statistics, and Graphviz export
//! of a compiled workflow.
//!
//! ```sh
//! cargo run --example explain_reuse
//! # pipe the last section into graphviz:
//! cargo run --example explain_reuse | sed -n '/^digraph/,$p' | dot -Tpng > wf.png
//! ```

use restore_suite::common::{codec, tuple, Tuple};
use restore_suite::core::{ReStore, ReStoreConfig};
use restore_suite::dataflow::dot;
use restore_suite::dfs::{Dfs, DfsConfig};
use restore_suite::mapreduce::{ClusterConfig, Engine, EngineConfig};

const QUERY: &str = "
    A = load '/data/sales' as (region, sku, qty:int, price:double);
    B = foreach A generate region, qty * price as revenue;
    G = group B by region;
    R = foreach G generate group, SUM(B.revenue);
    store R into '/out/by_region';
";

fn main() {
    let dfs =
        Dfs::new(DfsConfig { nodes: 4, block_size: 1024, replication: 2, node_capacity: None });
    let rows: Vec<Tuple> = (0..500)
        .map(|i| {
            tuple![
                ["emea", "apac", "amer"][i % 3],
                format!("sku-{}", i % 40),
                (i % 9 + 1) as i64,
                ((i * 13) % 100) as f64 / 4.0
            ]
        })
        .collect();
    dfs.write_all("/data/sales", &codec::encode_all(&rows)).unwrap();
    let engine = Engine::new(dfs, ClusterConfig::default(), EngineConfig::default());
    let rs = ReStore::new(engine, ReStoreConfig::default());

    println!("== dry run against an empty repository ==");
    print!("{}", rs.explain_query(QUERY, "/wf/x0").unwrap());

    println!("\n== execute once (populates the repository) ==");
    let e = rs.execute_query(QUERY, "/wf/run1").unwrap();
    println!("modeled {:.1}s; {} sub-jobs stored", e.total_s, e.candidates_stored);

    println!("\n== dry run again: what a rerun would reuse ==");
    print!("{}", rs.explain_query(QUERY, "/wf/x1").unwrap());

    println!("\n== driver statistics ==");
    let s = rs.stats();
    println!(
        "entries={} stored={} uses={} never_used={} queries={}",
        s.repository_entries, s.stored_bytes, s.total_uses, s.never_used, s.queries_executed
    );

    println!("\n== compiled workflow as Graphviz ==");
    let wf = restore_suite::dataflow::compile(QUERY, "/wf/dot").unwrap();
    print!("{}", dot::workflow_to_dot(&wf, "by_region"));
}
