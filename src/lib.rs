//! # restore-suite
//!
//! Facade crate for the reproduction of *ReStore: Reusing Results of
//! MapReduce Jobs* (Elghandour & Aboulnaga, PVLDB 5(6), 2012).
//!
//! Re-exports every workspace crate under one roof so examples and
//! integration tests can `use restore_suite::...`. See the README for a
//! tour and `DESIGN.md` for the system inventory.
//!
//! ## Crate map
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`common`] | `restore-common` | values, tuples, schemas, codec, PRNG |
//! | [`dfs`] | `restore-dfs` | simulated HDFS |
//! | [`mapreduce`] | `restore-mapreduce` | MR engine + cluster cost model |
//! | [`dataflow`] | `restore-dataflow` | Pig-Latin subset compiler |
//! | [`core`] | `restore-core` | the ReStore system itself |
//! | [`service`] | `restore-service` | multi-tenant query-submission service |
//! | [`pigmix`] | `restore-pigmix` | PigMix workloads and data generators |

pub use restore_common as common;
pub use restore_core as core;
pub use restore_dataflow as dataflow;
pub use restore_dfs as dfs;
pub use restore_mapreduce as mapreduce;
pub use restore_pigmix as pigmix;
pub use restore_service as service;
