//! Property tests of the analyzer's canonicalization passes over
//! randomly generated queries:
//!
//! 1. **Output preservation** — the canonicalized workflow executes to
//!    byte-identical outputs with the original compile, over every
//!    random pipeline the generator produces;
//! 2. **Idempotence** — `canonicalize(canonicalize(p)) ==
//!    canonicalize(p)` for every compiled job plan, the property that
//!    lets the driver re-canonicalize after alias rewriting without
//!    drift.

use proptest::prelude::*;
use restore_common::{codec, tuple, Tuple};
use restore_dataflow::{analyzer, compile, compile_canonical, exec};
use restore_dfs::{Dfs, DfsConfig};
use restore_mapreduce::{ClusterConfig, Engine, EngineConfig};

fn engine_with_data() -> Engine {
    let dfs =
        Dfs::new(DfsConfig { nodes: 4, block_size: 512, replication: 2, node_capacity: None });
    let rows: Vec<Tuple> = (0..24).map(|i: i64| tuple![i % 7, (i * 3) % 5, (i * i) % 11]).collect();
    dfs.write_all("/d", &codec::encode_all(&rows)).unwrap();
    Engine::new(
        dfs,
        ClusterConfig::default(),
        EngineConfig { worker_threads: 2, default_reduce_tasks: 2 },
    )
}

/// Random pipelines over a 3-column load: filters drawn from a pool
/// that deliberately includes commuted AND legs, literal-first
/// comparisons, and swapped arithmetic operands (exactly the shapes the
/// analyzer normalizes), arity-preserving foreach transforms, distinct,
/// order-by, and an optional self-join (two scans of the same file —
/// the common-subplan case).
fn arb_query() -> impl Strategy<Value = String> {
    let pred = prop::sample::select(vec![
        "$0 > 2",
        "2 < $0",
        "$1 == 1",
        "1 == $1",
        "$2 > 0 and $0 < 9",
        "$0 < 9 and $2 > 0",
        "$0 + $1 > 3",
        "$1 + $0 > 3",
    ]);
    (prop::collection::vec((0u8..5, pred), 0..5), any::<bool>()).prop_map(|(steps, join)| {
        let mut q = String::from("A = load '/d' as (a:int, b:int, c:int);\n");
        let mut cur = "A".to_string();
        for (n, (kind, p)) in steps.into_iter().enumerate() {
            let next = format!("T{n}");
            match kind {
                0 => q.push_str(&format!("{next} = filter {cur} by {p};\n")),
                1 => q.push_str(&format!("{next} = foreach {cur} generate $0 + $1, $1, $2;\n")),
                2 => q.push_str(&format!("{next} = foreach {cur} generate $1 * $2, $1, $2;\n")),
                3 => q.push_str(&format!("{next} = distinct {cur};\n")),
                _ => q.push_str(&format!("{next} = order {cur} by $0;\n")),
            }
            cur = next;
        }
        if join {
            q.push_str("B2 = load '/d' as (a:int, b:int, c:int);\n");
            q.push_str(&format!("J = join {cur} by $0, B2 by a;\n"));
            cur = "J".to_string();
        }
        q.push_str(&format!("store {cur} into '/out';\n"));
        q
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The canonicalized workflow produces the same output bytes as the
    /// plain compile, on identical engines over identical data.
    #[test]
    fn canonicalized_workflow_preserves_output_bytes(q in arb_query()) {
        let plain_eng = engine_with_data();
        let wf = compile(&q, "/wf").unwrap();
        let mr = exec::to_mr_workflow(&wf, "p").unwrap();
        plain_eng.run_workflow(&mr).unwrap();
        let plain_out = plain_eng.dfs().read_all("/out").unwrap();

        let canon_eng = engine_with_data();
        let (cwf, _) = compile_canonical(&q, "/wf").unwrap();
        let cmr = exec::to_mr_workflow(&cwf, "c").unwrap();
        canon_eng.run_workflow(&cmr).unwrap();
        let canon_out = canon_eng.dfs().read_all("/out").unwrap();

        prop_assert_eq!(plain_out, canon_out, "outputs diverged for query:\n{}", q);
    }

    /// Canonicalization is a fixpoint: applying it to an
    /// already-canonical plan changes nothing.
    #[test]
    fn canonicalize_is_idempotent(q in arb_query()) {
        let wf = compile(&q, "/wf").unwrap();
        for job in &wf.jobs {
            let mut once = job.plan.clone();
            analyzer::canonicalize(&mut once);
            let mut twice = once.clone();
            analyzer::canonicalize(&mut twice);
            prop_assert_eq!(
                &once, &twice,
                "second canonicalization moved the plan for query:\n{}", q
            );
        }
    }
}
