//! Integration tests of the dataflow stack: queries exercising every
//! statement and operator combination through compile + execute, checked
//! against hand-computed answers.

use restore_common::{codec, tuple, Tuple, Value};
use restore_dataflow::{compile, exec};
use restore_dfs::{Dfs, DfsConfig};
use restore_mapreduce::{ClusterConfig, Engine, EngineConfig};

fn engine() -> Engine {
    let dfs =
        Dfs::new(DfsConfig { nodes: 4, block_size: 512, replication: 2, node_capacity: None });
    Engine::new(
        dfs,
        ClusterConfig::default(),
        EngineConfig { worker_threads: 4, default_reduce_tasks: 3 },
    )
}

fn write(dfs: &Dfs, path: &str, rows: &[Tuple]) {
    dfs.write_all(path, &codec::encode_all(rows)).unwrap();
}

fn run(eng: &Engine, q: &str) {
    let wf = compile(q, "/wf").unwrap();
    let mr = exec::to_mr_workflow(&wf, "t").unwrap();
    eng.run_workflow(&mr).unwrap();
}

fn read_sorted(eng: &Engine, path: &str) -> Vec<Tuple> {
    let mut rows = codec::decode_all(&eng.dfs().read_all(path).unwrap()).unwrap();
    rows.sort();
    rows
}

#[test]
fn split_statement_end_to_end() {
    let eng = engine();
    write(eng.dfs(), "/d", &[tuple![5, "a"], tuple![15, "b"], tuple![25, "c"], tuple![10, "d"]]);
    run(
        &eng,
        "A = load '/d' as (n:int, s);
         split A into Small if n < 10, Mid if n >= 10 and n < 20, Big if n >= 20;
         store Small into '/out/small';
         store Mid into '/out/mid';
         store Big into '/out/big';",
    );
    assert_eq!(read_sorted(&eng, "/out/small"), vec![tuple![5, "a"]]);
    assert_eq!(read_sorted(&eng, "/out/mid"), vec![tuple![10, "d"], tuple![15, "b"]]);
    assert_eq!(read_sorted(&eng, "/out/big"), vec![tuple![25, "c"]]);
}

#[test]
fn split_branches_can_overlap() {
    // Pig semantics: branch conditions are independent.
    let eng = engine();
    write(eng.dfs(), "/d", &[tuple![1], tuple![2], tuple![3]]);
    run(
        &eng,
        "A = load '/d' as (n:int);
         split A into Odd if n % 2 == 1, All if n > 0;
         store Odd into '/out/odd';
         store All into '/out/all';",
    );
    assert_eq!(read_sorted(&eng, "/out/odd"), vec![tuple![1], tuple![3]]);
    assert_eq!(read_sorted(&eng, "/out/all").len(), 3);
}

#[test]
fn string_functions_in_queries() {
    let eng = engine();
    write(eng.dfs(), "/d", &[tuple!["  alpha  ", "prefix-one"], tuple!["beta", "other-two"]]);
    run(
        &eng,
        "A = load '/d' as (raw, tagged);
         B = foreach A generate TRIM(raw) as name, SUBSTRING(tagged, 0, 6) as head,
             STARTSWITH(tagged, 'prefix') as is_pref;
         store B into '/out/s';",
    );
    assert_eq!(
        read_sorted(&eng, "/out/s"),
        vec![tuple!["alpha", "prefix", 1], tuple!["beta", "other-", 0]]
    );
}

#[test]
fn three_way_union_and_distinct() {
    let eng = engine();
    write(eng.dfs(), "/a", &[tuple!["x"], tuple!["y"]]);
    write(eng.dfs(), "/b", &[tuple!["y"], tuple!["z"]]);
    write(eng.dfs(), "/c", &[tuple!["z"], tuple!["w"]]);
    run(
        &eng,
        "A = load '/a' as (u); B = load '/b' as (u); C = load '/c' as (u);
         U = union A, B, C;
         D = distinct U;
         store D into '/out/u';",
    );
    assert_eq!(
        read_sorted(&eng, "/out/u"),
        vec![tuple!["w"], tuple!["x"], tuple!["y"], tuple!["z"]]
    );
}

#[test]
fn three_way_join() {
    let eng = engine();
    write(eng.dfs(), "/a", &[tuple!["k1", 1], tuple!["k2", 2]]);
    write(eng.dfs(), "/b", &[tuple!["k1", 10.0], tuple!["k3", 30.0]]);
    write(eng.dfs(), "/c", &[tuple!["k1", "x"], tuple!["k2", "y"]]);
    run(
        &eng,
        "A = load '/a' as (k, n:int);
         B = load '/b' as (k, v:double);
         C = load '/c' as (k, s);
         J = join A by k, B by k, C by k;
         store J into '/out/j3';",
    );
    // Only k1 appears in all three inputs.
    assert_eq!(read_sorted(&eng, "/out/j3"), vec![tuple!["k1", 1, "k1", 10.0, "k1", "x"]]);
}

#[test]
fn composite_key_join() {
    let eng = engine();
    write(eng.dfs(), "/a", &[tuple!["u", 1, "left1"], tuple!["u", 2, "left2"]]);
    write(eng.dfs(), "/b", &[tuple!["u", 1, "right1"], tuple!["v", 1, "rightX"]]);
    run(
        &eng,
        "A = load '/a' as (k1, k2:int, pay);
         B = load '/b' as (k1, k2:int, pay);
         J = join A by (k1, k2), B by (k1, k2);
         store J into '/out/ck';",
    );
    assert_eq!(read_sorted(&eng, "/out/ck"), vec![tuple!["u", 1, "left1", "u", 1, "right1"]]);
}

#[test]
fn order_by_two_keys_mixed_direction() {
    let eng = engine();
    write(eng.dfs(), "/d", &[tuple!["b", 1], tuple!["a", 2], tuple!["a", 1], tuple!["b", 2]]);
    run(
        &eng,
        "A = load '/d' as (s, n:int);
         B = order A by s asc, n desc;
         store B into '/out/o';",
    );
    let rows = codec::decode_all(&eng.dfs().read_all("/out/o").unwrap()).unwrap();
    assert_eq!(rows, vec![tuple!["a", 2], tuple!["a", 1], tuple!["b", 2], tuple!["b", 1]]);
}

#[test]
fn aggregates_over_empty_groups_and_nulls() {
    let eng = engine();
    let rows = vec![
        Tuple::from_values(vec![Value::str("k"), Value::Null]),
        Tuple::from_values(vec![Value::str("k"), Value::Int(4)]),
        Tuple::from_values(vec![Value::str("m"), Value::Null]),
    ];
    write(eng.dfs(), "/d", &rows);
    run(
        &eng,
        "A = load '/d' as (k, v:int);
         G = group A by k;
         R = foreach G generate group, COUNT(A.v), SUM(A.v);
         store R into '/out/agg';",
    );
    let got = read_sorted(&eng, "/out/agg");
    // COUNT skips nulls; SUM of all-null is null.
    assert_eq!(got[0], tuple!["k", 1, 4]);
    assert_eq!(got[1].get(0), &Value::str("m"));
    assert_eq!(got[1].get(1), &Value::Int(0));
    assert!(got[1].get(2).is_null());
}

#[test]
fn arithmetic_projection_pipeline() {
    let eng = engine();
    write(eng.dfs(), "/d", &[tuple![3, 4.0], tuple![10, 0.5]]);
    run(
        &eng,
        "A = load '/d' as (n:int, f:double);
         B = foreach A generate n * 2 as dbl, f + 1.0 as inc, n % 3 as rem;
         store B into '/out/math';",
    );
    assert_eq!(read_sorted(&eng, "/out/math"), vec![tuple![6, 5.0, 0], tuple![20, 1.5, 1]]);
}

#[test]
fn limit_after_group() {
    let eng = engine();
    let rows: Vec<Tuple> = (0..30).map(|i| tuple![format!("g{}", i % 10), i]).collect();
    write(eng.dfs(), "/d", &rows);
    run(
        &eng,
        "A = load '/d' as (g, n:int);
         G = group A by g;
         R = foreach G generate group, COUNT(A);
         L = limit R 4;
         store L into '/out/lim';",
    );
    let got = codec::decode_all(&eng.dfs().read_all("/out/lim").unwrap()).unwrap();
    assert_eq!(got.len(), 4);
    for t in got {
        assert_eq!(t.get(1), &Value::Int(3));
    }
}

#[test]
fn cogroup_preserves_empty_sides() {
    let eng = engine();
    write(eng.dfs(), "/a", &[tuple!["x", 1]]);
    write(eng.dfs(), "/b", &[tuple!["y", 2]]);
    run(
        &eng,
        "A = load '/a' as (k, n:int);
         B = load '/b' as (k, n:int);
         C = cogroup A by k, B by k;
         store C into '/out/cg';",
    );
    let got = read_sorted(&eng, "/out/cg");
    assert_eq!(got.len(), 2);
    // Key x: bag A non-empty, bag B empty; key y: the reverse.
    let x = got.iter().find(|t| t.get(0) == &Value::str("x")).unwrap();
    assert_eq!(x.get(1).as_bag().unwrap().len(), 1);
    assert_eq!(x.get(2).as_bag().unwrap().len(), 0);
    let y = got.iter().find(|t| t.get(0) == &Value::str("y")).unwrap();
    assert_eq!(y.get(1).as_bag().unwrap().len(), 0);
    assert_eq!(y.get(2).as_bag().unwrap().len(), 1);
}

#[test]
fn deeply_chained_workflow() {
    // Four blocking operators = four MapReduce jobs in sequence.
    let eng = engine();
    let rows: Vec<Tuple> = (0..40).map(|i| tuple![format!("u{}", i % 8), i]).collect();
    write(eng.dfs(), "/d", &rows);
    let wf = compile(
        "A = load '/d' as (u, n:int);
         G1 = group A by u;
         S1 = foreach G1 generate group as u, COUNT(A) as c;
         D = distinct S1;
         G2 = group D by c;
         S2 = foreach G2 generate group, COUNT(D);
         O = order S2 by group;
         store O into '/out/deep';",
        "/wf",
    )
    .unwrap();
    assert!(wf.jobs.len() >= 4, "expected >= 4 jobs, got {}", wf.jobs.len());
    let mr = exec::to_mr_workflow(&wf, "deep").unwrap();
    eng.run_workflow(&mr).unwrap();
    let got = codec::decode_all(&eng.dfs().read_all("/out/deep").unwrap()).unwrap();
    // All 8 users have 5 rows each -> one group (c=5) with 8 distinct users.
    assert_eq!(got, vec![tuple![5, 8]]);
}

#[test]
fn is_null_filters() {
    let eng = engine();
    let rows = vec![
        Tuple::from_values(vec![Value::str("a"), Value::Null]),
        Tuple::from_values(vec![Value::str("b"), Value::Int(1)]),
    ];
    write(eng.dfs(), "/d", &rows);
    run(
        &eng,
        "A = load '/d' as (k, v:int);
         B = filter A by v is null;
         C = foreach B generate k;
         store C into '/out/nulls';",
    );
    assert_eq!(read_sorted(&eng, "/out/nulls"), vec![tuple!["a"]]);
}
