//! Edge cases through the full compile+execute stack: degenerate data
//! distributions, unicode payloads, empty intermediates, and operator
//! corner cases.

use restore_common::{codec, tuple, Tuple, Value};
use restore_dataflow::{compile, exec};
use restore_dfs::{Dfs, DfsConfig};
use restore_mapreduce::{ClusterConfig, Engine, EngineConfig};

fn engine() -> Engine {
    let dfs =
        Dfs::new(DfsConfig { nodes: 3, block_size: 256, replication: 1, node_capacity: None });
    Engine::new(
        dfs,
        ClusterConfig::default(),
        EngineConfig { worker_threads: 3, default_reduce_tasks: 2 },
    )
}

fn run(eng: &Engine, q: &str) {
    let wf = compile(q, "/wf").unwrap();
    let mr = exec::to_mr_workflow(&wf, "e").unwrap();
    eng.run_workflow(&mr).unwrap();
}

fn read_sorted(eng: &Engine, path: &str) -> Vec<Tuple> {
    let mut rows = codec::decode_all(&eng.dfs().read_all(path).unwrap()).unwrap();
    rows.sort();
    rows
}

#[test]
fn filter_that_drops_everything() {
    let eng = engine();
    eng.dfs().write_all("/d", &codec::encode_all(&[tuple![1], tuple![2]])).unwrap();
    run(
        &eng,
        "A = load '/d' as (n:int);
         B = filter A by n > 100;
         G = group B by n;
         R = foreach G generate group, COUNT(B);
         store R into '/out/empty';",
    );
    assert_eq!(read_sorted(&eng, "/out/empty"), Vec::<Tuple>::new());
}

#[test]
fn single_hot_key_group() {
    // Every record shares one key: one reducer gets the whole bag.
    let eng = engine();
    let rows: Vec<Tuple> = (0..200).map(|i| tuple!["hot", i]).collect();
    eng.dfs().write_all("/d", &codec::encode_all(&rows)).unwrap();
    run(
        &eng,
        "A = load '/d' as (k, n:int);
         G = group A by k;
         R = foreach G generate group, COUNT(A), MIN(A.n), MAX(A.n);
         store R into '/out/hot';",
    );
    assert_eq!(read_sorted(&eng, "/out/hot"), vec![tuple!["hot", 200, 0, 199]]);
}

#[test]
fn unicode_payloads_survive_the_stack() {
    let eng = engine();
    let rows = vec![tuple!["köln", "ü-data"], tuple!["東京", "日本語"], tuple!["köln", "émoji ✨"]];
    eng.dfs().write_all("/d", &codec::encode_all(&rows)).unwrap();
    run(
        &eng,
        "A = load '/d' as (city, note);
         G = group A by city;
         R = foreach G generate group, COUNT(A);
         store R into '/out/uni';",
    );
    assert_eq!(read_sorted(&eng, "/out/uni"), vec![tuple!["köln", 2], tuple!["東京", 1]]);
}

#[test]
fn wide_tuples_project_correctly() {
    let eng = engine();
    let wide: Vec<Value> = (0..40).map(Value::Int).collect();
    eng.dfs().write_all("/d", &codec::encode_all(&[Tuple::from_values(wide)])).unwrap();
    run(
        &eng,
        "A = load '/d' as (c0);
         B = foreach A generate $39, $0, $20;
         store B into '/out/wide';",
    );
    assert_eq!(read_sorted(&eng, "/out/wide"), vec![tuple![39, 0, 20]]);
}

#[test]
fn join_with_empty_side_is_empty() {
    let eng = engine();
    eng.dfs().write_all("/a", &codec::encode_all(&[tuple!["x", 1]])).unwrap();
    eng.dfs().write_all("/b", &codec::encode_all(&[])).unwrap();
    run(
        &eng,
        "A = load '/a' as (k, n:int);
         B = load '/b' as (k, m:int);
         J = join A by k, B by k;
         store J into '/out/j';",
    );
    assert_eq!(read_sorted(&eng, "/out/j"), Vec::<Tuple>::new());
}

#[test]
fn join_keys_with_nulls_are_dropped() {
    // Pig inner joins drop null keys.
    let eng = engine();
    let a = vec![
        Tuple::from_values(vec![Value::Null, Value::Int(1)]),
        Tuple::from_values(vec![Value::str("k"), Value::Int(2)]),
    ];
    let b = vec![
        Tuple::from_values(vec![Value::Null, Value::Int(10)]),
        Tuple::from_values(vec![Value::str("k"), Value::Int(20)]),
    ];
    eng.dfs().write_all("/a", &codec::encode_all(&a)).unwrap();
    eng.dfs().write_all("/b", &codec::encode_all(&b)).unwrap();
    run(
        &eng,
        "A = load '/a' as (k, n:int);
         B = load '/b' as (k, m:int);
         J = join A by k, B by k;
         store J into '/out/jn';",
    );
    // Only the non-null key pair joins.
    assert_eq!(read_sorted(&eng, "/out/jn"), vec![tuple!["k", 2, "k", 20]]);
}

#[test]
fn distinct_on_duplicated_file() {
    let eng = engine();
    let rows: Vec<Tuple> = (0..50).map(|i| tuple![i % 5]).collect();
    eng.dfs().write_all("/d", &codec::encode_all(&rows)).unwrap();
    run(
        &eng,
        "A = load '/d' as (n:int);
         B = union A, A;
         C = distinct B;
         store C into '/out/dd';",
    );
    assert_eq!(read_sorted(&eng, "/out/dd"), (0..5).map(|i| tuple![i]).collect::<Vec<_>>());
}

#[test]
fn limit_zero_produces_empty_output() {
    let eng = engine();
    eng.dfs().write_all("/d", &codec::encode_all(&[tuple![1], tuple![2]])).unwrap();
    run(
        &eng,
        "A = load '/d' as (n:int);
         B = limit A 0;
         store B into '/out/l0';",
    );
    assert_eq!(read_sorted(&eng, "/out/l0"), Vec::<Tuple>::new());
}

#[test]
fn order_by_with_duplicate_keys_is_stable_output() {
    let eng = engine();
    let rows = vec![tuple![2, "b"], tuple![1, "x"], tuple![2, "a"], tuple![1, "y"]];
    eng.dfs().write_all("/d", &codec::encode_all(&rows)).unwrap();
    run(
        &eng,
        "A = load '/d' as (n:int, s);
         B = order A by n;
         store B into '/out/ord';",
    );
    let got = codec::decode_all(&eng.dfs().read_all("/out/ord").unwrap()).unwrap();
    // Keys ascending; ties allowed in any (but deterministic) order.
    let keys: Vec<i64> = got.iter().map(|t| t.get(0).as_i64().unwrap()).collect();
    assert_eq!(keys, vec![1, 1, 2, 2]);
    // Determinism: run again into another path, same bytes.
    run(
        &eng,
        "A = load '/d' as (n:int, s);
         B = order A by n;
         store B into '/out/ord2';",
    );
    assert_eq!(eng.dfs().read_all("/out/ord").unwrap(), eng.dfs().read_all("/out/ord2").unwrap());
}

#[test]
fn group_by_double_keys() {
    // Float group keys exercise the ordered-double hashing path.
    let eng = engine();
    let rows = vec![tuple![0.5, 1], tuple![1.5, 2], tuple![0.5, 3]];
    eng.dfs().write_all("/d", &codec::encode_all(&rows)).unwrap();
    run(
        &eng,
        "A = load '/d' as (k:double, n:int);
         G = group A by k;
         R = foreach G generate group, SUM(A.n);
         store R into '/out/fk';",
    );
    assert_eq!(read_sorted(&eng, "/out/fk"), vec![tuple![0.5, 4], tuple![1.5, 2]]);
}

#[test]
fn deeply_nested_expressions() {
    let eng = engine();
    eng.dfs().write_all("/d", &codec::encode_all(&[tuple![3, 4]])).unwrap();
    run(
        &eng,
        "A = load '/d' as (a:int, b:int);
         B = foreach A generate ((a + b) * (a - b)) % 7 as x,
             ROUND((a * 1.0) / (b * 1.0) * 100.0) as pct;
         store B into '/out/expr';",
    );
    // (3+4)*(3-4) = -7; -7 % 7 = 0 (Rust semantics). 3/4*100 = 75.
    assert_eq!(read_sorted(&eng, "/out/expr"), vec![tuple![0, 75]]);
}
