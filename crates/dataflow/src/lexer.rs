//! Tokenizer for the Pig Latin subset.

use restore_common::{Error, Result};

/// A token with its source position (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: usize,
    pub col: usize,
}

#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Bare identifier or keyword (case-insensitive keywords are resolved
    /// by the parser; the raw text is preserved).
    Ident(String),
    /// `'single quoted string'`.
    StrLit(String),
    /// Integer literal.
    IntLit(i64),
    /// Floating literal.
    DoubleLit(f64),
    /// Positional field `$3`.
    Positional(usize),
    Eq,     // ==
    Neq,    // !=
    Le,     // <=
    Ge,     // >=
    Lt,     // <
    Gt,     // >
    Assign, // =
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    LParen,
    RParen,
    LBrace,
    RBrace,
    Comma,
    Semi,
    Dot,
    DoubleColon, // ::
    Eof,
}

impl TokenKind {
    /// Keyword check, case-insensitive.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenize a full query.
pub fn tokenize(src: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line = 1;
    let mut col = 1;

    macro_rules! push {
        ($kind:expr, $len:expr) => {{
            tokens.push(Token { kind: $kind, line, col });
            i += $len;
            col += $len;
        }};
    }

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            b' ' | b'\t' | b'\r' => {
                i += 1;
                col += 1;
            }
            b'-' if bytes.get(i + 1) == Some(&b'-') => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'\'' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\'' {
                    if bytes[j] == b'\n' {
                        return Err(Error::parse(line, col, "unterminated string"));
                    }
                    j += 1;
                }
                if j == bytes.len() {
                    return Err(Error::parse(line, col, "unterminated string"));
                }
                let s = std::str::from_utf8(&bytes[start..j])
                    .map_err(|_| Error::parse(line, col, "invalid UTF-8 in string"))?;
                let len = j + 1 - i;
                push!(TokenKind::StrLit(s.to_string()), len);
            }
            b'$' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                if j == start {
                    return Err(Error::parse(line, col, "expected digits after '$'"));
                }
                let n: usize = std::str::from_utf8(&bytes[start..j])
                    .unwrap()
                    .parse()
                    .map_err(|_| Error::parse(line, col, "positional out of range"))?;
                let len = j - i;
                push!(TokenKind::Positional(n), len);
            }
            b'0'..=b'9' => {
                let start = i;
                let mut j = i;
                let mut has_dot = false;
                while j < bytes.len()
                    && (bytes[j].is_ascii_digit() || (bytes[j] == b'.' && !has_dot))
                {
                    if bytes[j] == b'.' {
                        // A dot not followed by a digit is a separate token
                        // (e.g. alias.field would not start with digits).
                        if !bytes.get(j + 1).is_some_and(|c| c.is_ascii_digit()) {
                            break;
                        }
                        has_dot = true;
                    }
                    j += 1;
                }
                let text = std::str::from_utf8(&bytes[start..j]).unwrap();
                let kind = if has_dot {
                    TokenKind::DoubleLit(
                        text.parse()
                            .map_err(|_| Error::parse(line, col, format!("bad number {text:?}")))?,
                    )
                } else {
                    TokenKind::IntLit(
                        text.parse()
                            .map_err(|_| Error::parse(line, col, format!("bad number {text:?}")))?,
                    )
                };
                let len = j - start;
                push!(kind, len);
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                    j += 1;
                }
                let text = std::str::from_utf8(&bytes[start..j]).unwrap().to_string();
                let len = j - start;
                push!(TokenKind::Ident(text), len);
            }
            b'=' if bytes.get(i + 1) == Some(&b'=') => push!(TokenKind::Eq, 2),
            b'!' if bytes.get(i + 1) == Some(&b'=') => push!(TokenKind::Neq, 2),
            b'<' if bytes.get(i + 1) == Some(&b'=') => push!(TokenKind::Le, 2),
            b'>' if bytes.get(i + 1) == Some(&b'=') => push!(TokenKind::Ge, 2),
            b':' if bytes.get(i + 1) == Some(&b':') => push!(TokenKind::DoubleColon, 2),
            b'=' => push!(TokenKind::Assign, 1),
            b'<' => push!(TokenKind::Lt, 1),
            b'>' => push!(TokenKind::Gt, 1),
            b'+' => push!(TokenKind::Plus, 1),
            b'-' => push!(TokenKind::Minus, 1),
            b'*' => push!(TokenKind::Star, 1),
            b'/' => push!(TokenKind::Slash, 1),
            b'%' => push!(TokenKind::Percent, 1),
            b'(' => push!(TokenKind::LParen, 1),
            b')' => push!(TokenKind::RParen, 1),
            b'{' => push!(TokenKind::LBrace, 1),
            b'}' => push!(TokenKind::RBrace, 1),
            b',' => push!(TokenKind::Comma, 1),
            b';' => push!(TokenKind::Semi, 1),
            b'.' => push!(TokenKind::Dot, 1),
            b':' => {
                // Single colon appears in schemas: `name:chararray`.
                push!(TokenKind::Ident(":".into()), 1);
            }
            other => {
                return Err(Error::parse(
                    line,
                    col,
                    format!("unexpected character {:?}", other as char),
                ))
            }
        }
    }
    tokens.push(Token { kind: TokenKind::Eof, line, col });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_statement() {
        let ks = kinds("A = load 'x' as (a, b);");
        assert_eq!(ks[0], TokenKind::Ident("A".into()));
        assert_eq!(ks[1], TokenKind::Assign);
        assert!(ks[2].is_kw("LOAD"));
        assert_eq!(ks[3], TokenKind::StrLit("x".into()));
        assert_eq!(*ks.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn numbers_and_positionals() {
        let ks = kinds("$0 42 1.5 $12");
        assert_eq!(
            ks,
            vec![
                TokenKind::Positional(0),
                TokenKind::IntLit(42),
                TokenKind::DoubleLit(1.5),
                TokenKind::Positional(12),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn operators() {
        let ks = kinds("== != <= >= < > = + - * / %");
        assert_eq!(ks.len(), 13);
        assert_eq!(ks[0], TokenKind::Eq);
        assert_eq!(ks[6], TokenKind::Assign);
    }

    #[test]
    fn comments_are_skipped() {
        let ks = kinds("A -- this is a comment\nB");
        assert_eq!(
            ks,
            vec![TokenKind::Ident("A".into()), TokenKind::Ident("B".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn alias_field_access() {
        let ks = kinds("C.est_revenue");
        assert_eq!(ks[1], TokenKind::Dot);
    }

    #[test]
    fn errors_carry_position() {
        let err = tokenize("a\n  'oops").unwrap_err();
        assert!(err.to_string().contains("2:3"), "{err}");
        assert!(tokenize("#").is_err());
        assert!(tokenize("$x").is_err());
    }

    #[test]
    fn minus_vs_comment() {
        // A single '-' is an operator; '--' starts a comment.
        assert_eq!(
            kinds("1 - 2"),
            vec![TokenKind::IntLit(1), TokenKind::Minus, TokenKind::IntLit(2), TokenKind::Eof]
        );
    }
}
