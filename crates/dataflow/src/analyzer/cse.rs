//! Pass 3 — common-subplan extraction.
//!
//! Hash-cons the DAG: walking in topological order, a node whose
//! (operator, mapped inputs) pair was already built reuses the earlier
//! node instead of adding a new one, so a subquery spelled out twice
//! becomes one shared subtree. The executor already fans a
//! multi-consumer node's rows out to each consumer, and the MR
//! compiler already merges shared fragments, so sharing is free
//! downstream.
//!
//! Two kinds of node are never interned:
//!
//! * `Store` — two stores to the same path are still two stores;
//!   materialization points keep their identity.
//! * `Split` — a tee is pure plumbing; interning one would alias
//!   unrelated consumer fans.
//!
//! **Duplicate-edge guard.** The executor identifies an upstream by
//! *producer node*, so `Union(x, x)` delivers one copy of `x`'s rows,
//! not two — a plan that *already* says `union A, A` means exactly
//! that. But when interning turns two distinct (structurally equal)
//! subtrees into the same node, a consumer's edge list would collapse
//! the same way and silently halve its input. So any duplicate edge
//! *introduced by this pass* is re-teed through a fresh `Split`: the
//! consumer keeps two distinct producers and byte-identical input,
//! while signatures stay canonical because both paraphrases (spelled
//! out twice, or shared from the start) canonicalize to the same
//! guarded shape. Pre-existing duplicate edges pass through untouched.

use crate::physical::{NodeId, PhysicalOp, PhysicalPlan};
use std::collections::HashMap;

pub(super) fn run(plan: &mut PhysicalPlan) {
    let mut out = PhysicalPlan::new();
    let mut remap: Vec<Option<NodeId>> = vec![None; plan.len()];
    let mut interned: HashMap<(PhysicalOp, Vec<NodeId>), NodeId> = HashMap::new();
    for old in plan.topo_order() {
        let node = plan.node(old).clone();
        let mut mapped: Vec<NodeId> = node
            .inputs
            .iter()
            .map(|i| remap[i.index()].expect("inputs precede in topo order"))
            .collect();
        for i in 1..mapped.len() {
            if mapped[..i].contains(&mapped[i]) && !node.inputs[..i].contains(&node.inputs[i]) {
                mapped[i] = out.add(PhysicalOp::Split, vec![mapped[i]]);
            }
        }
        let new_id = match &node.op {
            PhysicalOp::Store { .. } | PhysicalOp::Split => out.add(node.op.clone(), mapped),
            op => *interned
                .entry((op.clone(), mapped.clone()))
                .or_insert_with(|| out.add(op.clone(), mapped.clone())),
        };
        remap[old.index()] = Some(new_id);
    }
    *plan = out;
    // Interning can orphan the loser of each merge (and placement
    // merges before us leave bypassed nodes behind); drop everything no
    // Store can reach. A store-less plan has no liveness root — leave
    // it whole.
    if !plan.stores().is_empty() {
        plan.gc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    #[test]
    fn identical_branches_intern_once() {
        let mut p = PhysicalPlan::new();
        let l1 = p.add(PhysicalOp::Load { path: "/d".into() }, vec![]);
        let f1 = p.add(PhysicalOp::Filter { pred: Expr::col_eq(0, 1i64) }, vec![l1]);
        let l2 = p.add(PhysicalOp::Load { path: "/d".into() }, vec![]);
        let f2 = p.add(PhysicalOp::Filter { pred: Expr::col_eq(0, 1i64) }, vec![l2]);
        let s1 = p.add(PhysicalOp::Store { path: "/a".into() }, vec![f1]);
        let s2 = p.add(PhysicalOp::Store { path: "/b".into() }, vec![f2]);
        let _ = (s1, s2);
        run(&mut p);
        assert_eq!(p.loads().len(), 1);
        assert_eq!(p.stores().len(), 2, "stores are never interned");
        let filters = p.ids().filter(|&i| matches!(p.op(i), PhysicalOp::Filter { .. })).count();
        assert_eq!(filters, 1);
    }

    #[test]
    fn introduced_duplicate_edge_gets_a_split() {
        let mut p = PhysicalPlan::new();
        let l1 = p.add(PhysicalOp::Load { path: "/d".into() }, vec![]);
        let l2 = p.add(PhysicalOp::Load { path: "/d".into() }, vec![]);
        let u = p.add(PhysicalOp::Union, vec![l1, l2]);
        p.add(PhysicalOp::Store { path: "/o".into() }, vec![u]);
        run(&mut p);
        let u = p.ids().find(|&i| matches!(p.op(i), PhysicalOp::Union)).unwrap();
        let ins = p.inputs(u).to_vec();
        assert_ne!(ins[0], ins[1]);
        assert!(matches!(p.op(ins[1]), PhysicalOp::Split));
        assert_eq!(p.inputs(ins[1]), &[ins[0]]);
    }

    #[test]
    fn explicit_duplicate_edge_is_preserved() {
        let mut p = PhysicalPlan::new();
        let l = p.add(PhysicalOp::Load { path: "/d".into() }, vec![]);
        let u = p.add(PhysicalOp::Union, vec![l, l]);
        p.add(PhysicalOp::Store { path: "/o".into() }, vec![u]);
        run(&mut p);
        let u = p.ids().find(|&i| matches!(p.op(i), PhysicalOp::Union)).unwrap();
        assert_eq!(p.inputs(u)[0], p.inputs(u)[1]);
    }

    #[test]
    fn different_store_paths_stay_distinct() {
        let mut p = PhysicalPlan::new();
        let l = p.add(PhysicalOp::Load { path: "/d".into() }, vec![]);
        p.add(PhysicalOp::Store { path: "/a".into() }, vec![l]);
        p.add(PhysicalOp::Store { path: "/a".into() }, vec![l]);
        run(&mut p);
        assert_eq!(p.stores().len(), 2, "even same-path stores keep their identity");
    }
}
