//! Pass 2 — expression normalization.
//!
//! Folds the freedoms scalar expressions leave a query author:
//!
//! * `AND`/`OR` chains flatten, and their legs sort by a deterministic
//!   structural hash — but **only when every leg is total**. Reordering
//!   legs never changes a boolean result (evaluated operands yield
//!   plain truth values), but it can change *which* leg's error
//!   surfaces or whether a short-circuit skips a failing leg, so chains
//!   with fallible legs keep their order (the rebuild is then
//!   byte-identical to plain right-association of the original order).
//! * Comparisons put the literal on the right by mirroring the
//!   operator (`5 < n` ⇒ `n > 5`). Both operands of a comparison are
//!   always evaluated, so the flip is unconditionally sound.
//! * `+` and `*` order their operands by the same structural hash when
//!   both are total (IEEE addition and multiplication are commutative;
//!   the int/double widening test is symmetric).
//!
//! Totality is judged conservatively: arithmetic and negation can
//! error on non-numeric values, so any expression containing them is
//! treated as fallible and left in author order.

use crate::expr::{ArithOp, CmpOp, Expr};
use crate::physical::{PhysicalOp, PhysicalPlan};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

pub(super) fn run(plan: &mut PhysicalPlan) {
    for id in plan.ids().collect::<Vec<_>>() {
        match plan.op(id).clone() {
            PhysicalOp::Filter { pred } => {
                plan.node_mut(id).op = PhysicalOp::Filter { pred: normalize(&pred) };
            }
            PhysicalOp::MapExpr { exprs } => {
                plan.node_mut(id).op =
                    PhysicalOp::MapExpr { exprs: exprs.iter().map(normalize).collect() };
            }
            _ => {}
        }
    }
}

/// Can evaluation never return an error, whatever the input tuple?
/// (`eval` only fails inside arithmetic and negation; every other
/// node is total whenever its children are.)
fn is_total(e: &Expr) -> bool {
    match e {
        Expr::Col(_) | Expr::Lit(_) => true,
        Expr::Arith(..) | Expr::Neg(_) => false,
        Expr::Not(x) | Expr::IsNull(x, _) => is_total(x),
        Expr::And(a, b) | Expr::Or(a, b) | Expr::Cmp(a, _, b) => is_total(a) && is_total(b),
        Expr::Func(_, args) => args.iter().all(is_total),
    }
}

/// Deterministic structural sort key (`DefaultHasher` is fixed-key, so
/// the order is stable across processes and sessions).
fn key(e: &Expr) -> u64 {
    let mut h = DefaultHasher::new();
    e.hash(&mut h);
    h.finish()
}

fn normalize(e: &Expr) -> Expr {
    match e {
        Expr::And(..) => rebuild_chain(e, true),
        Expr::Or(..) => rebuild_chain(e, false),
        Expr::Cmp(a, op, b) => {
            let (a, b) = (normalize(a), normalize(b));
            if matches!(a, Expr::Lit(_)) && !matches!(b, Expr::Lit(_)) {
                Expr::Cmp(Box::new(b), mirror(*op), Box::new(a))
            } else {
                Expr::Cmp(Box::new(a), *op, Box::new(b))
            }
        }
        Expr::Arith(a, op, b) if matches!(op, ArithOp::Add | ArithOp::Mul) => {
            let (a, b) = (normalize(a), normalize(b));
            if is_total(&a) && is_total(&b) && key(&a) > key(&b) {
                Expr::Arith(Box::new(b), *op, Box::new(a))
            } else {
                Expr::Arith(Box::new(a), *op, Box::new(b))
            }
        }
        Expr::Arith(a, op, b) => Expr::Arith(Box::new(normalize(a)), *op, Box::new(normalize(b))),
        Expr::Not(x) => Expr::Not(Box::new(normalize(x))),
        Expr::Neg(x) => Expr::Neg(Box::new(normalize(x))),
        Expr::IsNull(x, w) => Expr::IsNull(Box::new(normalize(x)), *w),
        Expr::Func(f, args) => Expr::Func(*f, args.iter().map(normalize).collect()),
        Expr::Col(_) | Expr::Lit(_) => e.clone(),
    }
}

/// Flatten a connective chain, normalize the legs, sort them when all
/// are total, and rebuild right-associated. An unsorted rebuild
/// preserves exact left-to-right short-circuit order, so it is always
/// sound; only the sort needs the totality gate.
fn rebuild_chain(e: &Expr, conj: bool) -> Expr {
    let mut legs = Vec::new();
    flatten(e, conj, &mut legs);
    let mut legs: Vec<Expr> = legs.into_iter().map(normalize).collect();
    if legs.iter().all(is_total) {
        legs.sort_by_key(key); // stable: equal keys keep author order
    }
    let mut it = legs.into_iter().rev();
    let mut acc = it.next().expect("a connective has at least two legs");
    for l in it {
        acc = if conj {
            Expr::And(Box::new(l), Box::new(acc))
        } else {
            Expr::Or(Box::new(l), Box::new(acc))
        };
    }
    acc
}

fn flatten<'a>(e: &'a Expr, conj: bool, out: &mut Vec<&'a Expr>) {
    match (e, conj) {
        (Expr::And(a, b), true) => {
            flatten(a, true, out);
            flatten(b, true, out);
        }
        (Expr::Or(a, b), false) => {
            flatten(a, false, out);
            flatten(b, false, out);
        }
        _ => out.push(e),
    }
}

/// The comparison that holds after swapping the operands.
fn mirror(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Ge => CmpOp::Le,
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Neq => CmpOp::Neq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn and(a: Expr, b: Expr) -> Expr {
        Expr::And(Box::new(a), Box::new(b))
    }

    #[test]
    fn and_legs_sort_regardless_of_nesting() {
        let (x, y, z) = (Expr::col_eq(0, 1i64), Expr::col_eq(1, 2i64), Expr::col_eq(2, 3i64));
        let left = and(and(x.clone(), y.clone()), z.clone());
        let right = and(z, and(y, x));
        assert_eq!(normalize(&left), normalize(&right));
    }

    #[test]
    fn fallible_legs_keep_author_order() {
        // `a / b == 1` can error on strings: its chain must not reorder.
        let fallible = Expr::Cmp(
            Box::new(Expr::Arith(Box::new(Expr::col(0)), ArithOp::Div, Box::new(Expr::col(1)))),
            CmpOp::Eq,
            Box::new(Expr::Lit(1i64.into())),
        );
        let total = Expr::col_eq(2, 3i64);
        let e = and(fallible.clone(), total.clone());
        assert_eq!(normalize(&e), and(fallible.clone(), total.clone()));
        let e = and(total.clone(), fallible.clone());
        assert_eq!(normalize(&e), and(total, fallible));
    }

    #[test]
    fn literal_moves_right_with_mirrored_op() {
        let e = Expr::Cmp(Box::new(Expr::Lit(5i64.into())), CmpOp::Le, Box::new(Expr::col(0)));
        let want = Expr::Cmp(Box::new(Expr::col(0)), CmpOp::Ge, Box::new(Expr::Lit(5i64.into())));
        assert_eq!(normalize(&e), want);
        // Two literals stay put — there is no preferred side.
        let ll = Expr::Cmp(
            Box::new(Expr::Lit(1i64.into())),
            CmpOp::Lt,
            Box::new(Expr::Lit(2i64.into())),
        );
        assert_eq!(normalize(&ll), ll);
    }

    #[test]
    fn add_orders_but_sub_does_not() {
        let ab = Expr::Arith(Box::new(Expr::col(0)), ArithOp::Add, Box::new(Expr::col(1)));
        let ba = Expr::Arith(Box::new(Expr::col(1)), ArithOp::Add, Box::new(Expr::col(0)));
        assert_eq!(normalize(&ab), normalize(&ba));
        let sub = Expr::Arith(Box::new(Expr::col(1)), ArithOp::Sub, Box::new(Expr::col(0)));
        assert_eq!(normalize(&sub), sub);
    }

    #[test]
    fn normalize_is_idempotent() {
        let exprs = vec![
            and(
                Expr::Or(Box::new(Expr::col_eq(3, 1i64)), Box::new(Expr::col_eq(0, 9i64))),
                and(Expr::col_eq(2, 2i64), Expr::col_eq(1, 1i64)),
            ),
            Expr::Cmp(Box::new(Expr::Lit(5i64.into())), CmpOp::Lt, Box::new(Expr::col(0))),
            Expr::Arith(
                Box::new(Expr::Arith(Box::new(Expr::col(2)), ArithOp::Mul, Box::new(Expr::col(1)))),
                ArithOp::Add,
                Box::new(Expr::col(0)),
            ),
        ];
        for e in exprs {
            let once = normalize(&e);
            assert_eq!(normalize(&once), once);
        }
    }
}
