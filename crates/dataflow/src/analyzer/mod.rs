//! The analyzer: a pass pipeline that rewrites every physical plan to a
//! canonical form before compilation and matching.
//!
//! ReStore's matcher (§3 of the paper) is syntactic: two workflows that
//! compute the same result but phrase it differently — swapped
//! commutative operands, a filter chain instead of one conjunction, a
//! repeated subquery spelled out twice — produce different plan trees
//! and miss the repository. Canonicalization folds each class of
//! paraphrase onto one representative tree so the existing structural
//! machinery (tip-signature index, pairwise §3 traversal) sees them as
//! the same plan.
//!
//! Three passes run in a fixed order, and the whole sequence repeats
//! until the plan stops changing:
//!
//! 1. [`placement`] — operator placement: merge single-consumer
//!    Project/Project and Filter/Filter chains, sink every Filter below
//!    the Project feeding it (the optimizer's pushdown direction), so
//!    pass 2 sees whole conjunctions and pass 3 sees maximal subtrees.
//! 2. [`exprs`] — expression normalization: flatten AND/OR chains and
//!    order their legs by a deterministic structural hash (only when
//!    every leg is total — reordering may change *which* error
//!    surfaces, never a value), put literals on the right of
//!    comparisons by mirroring the operator, and order the operands of
//!    total `+`/`*` the same way.
//! 3. [`cse`] — common-subplan extraction: hash-cons the DAG so
//!    repeated subtrees share one node (the executor already fans a
//!    multi-consumer node out to each consumer).
//!
//! The order matters: placement creates the conjunctions that
//! expression normalization sorts, and normalized expressions are what
//! make structurally-equal subtrees *byte*-equal so CSE can intern
//! them. A CSE merge can in turn collapse two consumers into one and
//! expose a fresh single-consumer placement pattern, hence the outer
//! fixpoint — which is also what makes canonicalization idempotent:
//! `canonicalize` only returns once another full sweep is a no-op, so a
//! second call starts (and ends) at that fixpoint.
//!
//! Every rewrite here preserves executed output byte-for-byte (property
//! tested in `tests/prop_canon.rs`): transforms that could change
//! error or row-duplication behavior — reordering non-total expression
//! legs, reordering Join/Union *inputs* (the executor concatenates and
//! cross-products in input order), merging through `MapExpr` — are
//! deliberately excluded.

mod cse;
mod exprs;
mod placement;

use crate::physical::PhysicalPlan;
use std::time::{Duration, Instant};

/// Pass names, in execution order — the `pass` label values of the
/// driver's `restore_canon_stage_seconds` histogram family.
pub const PASS_NAMES: [&str; 3] = ["placement", "exprs", "cse"];

/// Upper bound on fixpoint sweeps. Each sweep that changes the plan
/// strictly shrinks a bounded measure (live node count + total filter
/// depth), so real plans converge in two or three; the cap is a
/// belt-and-braces guard against an unforeseen oscillation — hitting it
/// leaves a still-correct, merely less canonical plan.
const MAX_SWEEPS: usize = 64;

/// Rewrite `plan` to its canonical form in place.
pub fn canonicalize(plan: &mut PhysicalPlan) {
    let _ = canonicalize_timed(plan);
}

/// [`canonicalize`], returning wall time spent in each pass (summed
/// across fixpoint sweeps), in [`PASS_NAMES`] order.
pub fn canonicalize_timed(plan: &mut PhysicalPlan) -> [(&'static str, Duration); 3] {
    let mut timings = [
        (PASS_NAMES[0], Duration::ZERO),
        (PASS_NAMES[1], Duration::ZERO),
        (PASS_NAMES[2], Duration::ZERO),
    ];
    for _ in 0..MAX_SWEEPS {
        let before = plan.clone();
        let t = Instant::now();
        placement::run(plan);
        timings[0].1 += t.elapsed();
        let t = Instant::now();
        exprs::run(plan);
        timings[1].1 += t.elapsed();
        let t = Instant::now();
        cse::run(plan);
        timings[2].1 += t.elapsed();
        if *plan == before {
            break;
        }
    }
    timings
}

/// The canonical fingerprint of a plan: the Merkle signature of its
/// canonical form. Two semantically-equal paraphrases (within the
/// classes the passes cover) fingerprint identically, so this is the
/// key that makes the repository's tip-signature index paraphrase-
/// insensitive. The input plan is not modified.
pub fn fingerprint(plan: &PhysicalPlan) -> u64 {
    let mut p = plan.clone();
    canonicalize(&mut p);
    p.signature()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{ArithOp, CmpOp, Expr};
    use crate::physical::{PhysicalOp, PhysicalPlan};

    fn lit(v: i64) -> Expr {
        Expr::Lit(v.into())
    }

    fn store_chain(ops: Vec<PhysicalOp>) -> PhysicalPlan {
        let mut p = PhysicalPlan::new();
        let mut prev = p.add(PhysicalOp::Load { path: "/d".into() }, vec![]);
        for op in ops {
            prev = p.add(op, vec![prev]);
        }
        p.add(PhysicalOp::Store { path: "/o".into() }, vec![prev]);
        p
    }

    #[test]
    fn chained_filters_merge_into_sorted_conjunction() {
        let chain = store_chain(vec![
            PhysicalOp::Filter { pred: Expr::col_eq(0, 1i64) },
            PhysicalOp::Filter { pred: Expr::col_eq(1, 2i64) },
        ]);
        let conjunct = store_chain(vec![PhysicalOp::Filter {
            pred: Expr::And(Box::new(Expr::col_eq(1, 2i64)), Box::new(Expr::col_eq(0, 1i64))),
        }]);
        assert_eq!(fingerprint(&chain), fingerprint(&conjunct));
    }

    #[test]
    fn literal_first_comparison_mirrors() {
        let a = store_chain(vec![PhysicalOp::Filter {
            pred: Expr::Cmp(Box::new(lit(5)), CmpOp::Lt, Box::new(Expr::col(0))),
        }]);
        let b = store_chain(vec![PhysicalOp::Filter {
            pred: Expr::Cmp(Box::new(Expr::col(0)), CmpOp::Gt, Box::new(lit(5))),
        }]);
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn commutative_arithmetic_orders_operands() {
        let a = store_chain(vec![PhysicalOp::MapExpr {
            exprs: vec![Expr::Arith(Box::new(Expr::col(0)), ArithOp::Add, Box::new(Expr::col(1)))],
        }]);
        let b = store_chain(vec![PhysicalOp::MapExpr {
            exprs: vec![Expr::Arith(Box::new(Expr::col(1)), ArithOp::Add, Box::new(Expr::col(0)))],
        }]);
        assert_eq!(fingerprint(&a), fingerprint(&b));
        // Subtraction is not commutative: operand order must survive.
        let c = store_chain(vec![PhysicalOp::MapExpr {
            exprs: vec![Expr::Arith(Box::new(Expr::col(0)), ArithOp::Sub, Box::new(Expr::col(1)))],
        }]);
        let d = store_chain(vec![PhysicalOp::MapExpr {
            exprs: vec![Expr::Arith(Box::new(Expr::col(1)), ArithOp::Sub, Box::new(Expr::col(0)))],
        }]);
        assert_ne!(fingerprint(&c), fingerprint(&d));
    }

    #[test]
    fn repeated_subtrees_share_one_node() {
        // JOIN of the same filtered load spelled out twice vs. shared.
        let mut dup = PhysicalPlan::new();
        let l1 = dup.add(PhysicalOp::Load { path: "/d".into() }, vec![]);
        let f1 = dup.add(PhysicalOp::Filter { pred: Expr::col_eq(0, 1i64) }, vec![l1]);
        let l2 = dup.add(PhysicalOp::Load { path: "/d".into() }, vec![]);
        let f2 = dup.add(PhysicalOp::Filter { pred: Expr::col_eq(0, 1i64) }, vec![l2]);
        let j = dup.add(PhysicalOp::Join { keys: vec![vec![0], vec![1]] }, vec![f1, f2]);
        dup.add(PhysicalOp::Store { path: "/o".into() }, vec![j]);

        let mut canon = dup.clone();
        canonicalize(&mut canon);
        assert_eq!(canon.loads().len(), 1, "duplicate scans interned");
        // The guard keeps the join's two input edges distinct.
        let join = canon.ids().find(|&i| matches!(canon.op(i), PhysicalOp::Join { .. })).unwrap();
        let ins = canon.inputs(join);
        assert_ne!(ins[0], ins[1], "merged subtree re-teed through a Split");
        assert!(canon.ids().any(|i| matches!(canon.op(i), PhysicalOp::Split)));
    }

    #[test]
    fn preexisting_duplicate_edges_are_preserved() {
        // `union A, A` already means "one producer, one copy" to the
        // executor; canonicalization must not inflate it.
        let mut p = PhysicalPlan::new();
        let l = p.add(PhysicalOp::Load { path: "/d".into() }, vec![]);
        let u = p.add(PhysicalOp::Union, vec![l, l]);
        p.add(PhysicalOp::Store { path: "/o".into() }, vec![u]);
        let mut c = p.clone();
        canonicalize(&mut c);
        let u = c.ids().find(|&i| matches!(c.op(i), PhysicalOp::Union)).unwrap();
        assert_eq!(c.inputs(u)[0], c.inputs(u)[1]);
        assert!(c.ids().all(|i| !matches!(c.op(i), PhysicalOp::Split)));
    }

    #[test]
    fn canonicalize_is_idempotent_on_samples() {
        let samples = vec![
            store_chain(vec![
                PhysicalOp::Filter { pred: Expr::col_eq(0, 1i64) },
                PhysicalOp::Project { cols: vec![0, 2] },
                PhysicalOp::Filter { pred: Expr::col_eq(1, 2i64) },
                PhysicalOp::Project { cols: vec![1] },
            ]),
            store_chain(vec![PhysicalOp::Filter {
                pred: Expr::Or(
                    Box::new(Expr::col_eq(2, 9i64)),
                    Box::new(Expr::And(
                        Box::new(Expr::col_eq(0, 1i64)),
                        Box::new(Expr::col_eq(1, 2i64)),
                    )),
                ),
            }]),
        ];
        for mut p in samples {
            canonicalize(&mut p);
            let again = {
                let mut q = p.clone();
                canonicalize(&mut q);
                q
            };
            assert_eq!(p, again, "canon(canon(p)) == canon(p)");
        }
    }

    #[test]
    fn timed_reports_every_pass() {
        let mut p = store_chain(vec![PhysicalOp::Filter { pred: Expr::col_eq(0, 1i64) }]);
        let timings = canonicalize_timed(&mut p);
        let names: Vec<&str> = timings.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, PASS_NAMES.to_vec());
    }
}
