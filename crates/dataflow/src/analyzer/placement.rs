//! Pass 1 — operator placement normalization.
//!
//! Folds the placement freedoms the language leaves a query author:
//!
//! * `Project` over `Project` composes into one projection;
//! * `Filter` over `Filter` composes into one conjunction (upstream
//!   predicate first, so the merged `And` short-circuits in exactly the
//!   order the chain evaluated);
//! * `Filter` over `Project` swaps to `Project` over `Filter` — the
//!   canonical position is "filter as low as possible", matching the
//!   direction the logical optimizer already pushes.
//!
//! Every rewrite requires the consumed node to have exactly one
//! consumer: a shared intermediate result feeds other branches whose
//! view of it must not change. Rewrites repeat to a fixpoint —
//! termination follows from a strictly decreasing measure (merges
//! shrink live chains, the swap strictly lowers a filter's depth and
//! never raises one).

use crate::expr::Expr;
use crate::physical::{NodeId, PhysicalOp, PhysicalPlan};

pub(super) fn run(plan: &mut PhysicalPlan) {
    loop {
        let mut changed = false;
        for id in plan.ids().collect::<Vec<_>>() {
            changed |= try_project_merge(plan, id)
                || try_filter_merge(plan, id)
                || try_filter_below_project(plan, id);
        }
        if !changed {
            break;
        }
    }
}

/// Is `p` consumed only by `c`? (Merging `p` into `c` is only sound
/// when nothing else observes `p`'s output.)
fn sole_consumer(plan: &PhysicalPlan, p: NodeId, c: NodeId) -> bool {
    plan.consumers(p) == vec![c]
}

/// `Project{inner}` → `Project{outer}` composes: output column `j` of
/// the pair is input column `inner[outer[j]]`.
fn try_project_merge(plan: &mut PhysicalPlan, id: NodeId) -> bool {
    let PhysicalOp::Project { cols: outer } = plan.op(id) else { return false };
    let outer = outer.clone();
    let p = plan.inputs(id)[0];
    let PhysicalOp::Project { cols: inner } = plan.op(p) else { return false };
    let inner = inner.clone();
    if !sole_consumer(plan, p, id) || outer.iter().any(|&j| j >= inner.len()) {
        return false;
    }
    let grand = plan.inputs(p).to_vec();
    let node = plan.node_mut(id);
    node.op = PhysicalOp::Project { cols: outer.iter().map(|&j| inner[j]).collect() };
    node.inputs = grand;
    true
}

/// `Filter{a}` → `Filter{b}` composes into `Filter{And(a, b)}`. `And`
/// short-circuits left-to-right, so evaluation order, count, and any
/// surfaced error are byte-identical to the chain.
fn try_filter_merge(plan: &mut PhysicalPlan, id: NodeId) -> bool {
    let PhysicalOp::Filter { pred: outer } = plan.op(id) else { return false };
    let outer = outer.clone();
    let p = plan.inputs(id)[0];
    let PhysicalOp::Filter { pred: inner } = plan.op(p) else { return false };
    if !sole_consumer(plan, p, id) {
        return false;
    }
    let merged = Expr::And(Box::new(inner.clone()), Box::new(outer));
    let grand = plan.inputs(p).to_vec();
    let node = plan.node_mut(id);
    node.op = PhysicalOp::Filter { pred: merged };
    node.inputs = grand;
    true
}

/// `Project{cols}` → `Filter{pred}` swaps in place to `Filter{pred'}` →
/// `Project{cols}` with `pred'` reading through the projection
/// (`pred'` on a raw row sees exactly the values `pred` saw on the
/// projected row, so results and errors are unchanged; rows the filter
/// drops were going to be projected by a total operator anyway). A
/// predicate referencing a column the projection does not produce
/// cannot be rewritten and is left where it is.
fn try_filter_below_project(plan: &mut PhysicalPlan, id: NodeId) -> bool {
    let PhysicalOp::Filter { pred } = plan.op(id) else { return false };
    let p = plan.inputs(id)[0];
    let PhysicalOp::Project { cols } = plan.op(p) else { return false };
    let cols = cols.clone();
    if !sole_consumer(plan, p, id) {
        return false;
    }
    let Some(below) = pred.remap_cols(&|i| cols.get(i).copied()) else { return false };
    plan.node_mut(p).op = PhysicalOp::Filter { pred: below };
    plan.node_mut(id).op = PhysicalOp::Project { cols };
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(ops: Vec<PhysicalOp>) -> (PhysicalPlan, Vec<NodeId>) {
        let mut p = PhysicalPlan::new();
        let mut ids = vec![p.add(PhysicalOp::Load { path: "/d".into() }, vec![])];
        for op in ops {
            let prev = *ids.last().unwrap();
            ids.push(p.add(op, vec![prev]));
        }
        let prev = *ids.last().unwrap();
        ids.push(p.add(PhysicalOp::Store { path: "/o".into() }, vec![prev]));
        (p, ids)
    }

    #[test]
    fn projects_compose() {
        let (mut p, ids) = chain(vec![
            PhysicalOp::Project { cols: vec![2, 0, 1] },
            PhysicalOp::Project { cols: vec![1, 2] },
        ]);
        run(&mut p);
        assert!(matches!(p.op(ids[2]), PhysicalOp::Project { cols } if *cols == vec![0, 1]));
        assert_eq!(p.inputs(ids[2]), &[ids[0]], "inner project bypassed");
    }

    #[test]
    fn filters_compose_upstream_first() {
        let a = Expr::col_eq(0, 1i64);
        let b = Expr::col_eq(1, 2i64);
        let (mut p, ids) = chain(vec![
            PhysicalOp::Filter { pred: a.clone() },
            PhysicalOp::Filter { pred: b.clone() },
        ]);
        run(&mut p);
        let expect = Expr::And(Box::new(a), Box::new(b));
        assert!(matches!(p.op(ids[2]), PhysicalOp::Filter { pred } if *pred == expect));
    }

    #[test]
    fn filter_sinks_below_project() {
        let (mut p, ids) = chain(vec![
            PhysicalOp::Project { cols: vec![3, 1] },
            PhysicalOp::Filter { pred: Expr::col_eq(1, 7i64) },
        ]);
        run(&mut p);
        // In-place swap: node ids keep their positions, ops exchange.
        assert!(
            matches!(p.op(ids[1]), PhysicalOp::Filter { pred } if *pred == Expr::col_eq(1, 7i64)),
            "predicate re-reads column 1 through the projection (cols[1] = 1)"
        );
        assert!(matches!(p.op(ids[2]), PhysicalOp::Project { cols } if *cols == vec![3, 1]));
    }

    #[test]
    fn shared_node_blocks_merges() {
        // The inner Project also feeds a side Store: merging would
        // change what the side branch reads.
        let mut p = PhysicalPlan::new();
        let l = p.add(PhysicalOp::Load { path: "/d".into() }, vec![]);
        let inner = p.add(PhysicalOp::Project { cols: vec![0, 1] }, vec![l]);
        let _side = p.add(PhysicalOp::Store { path: "/side".into() }, vec![inner]);
        let outer = p.add(PhysicalOp::Project { cols: vec![1] }, vec![inner]);
        p.add(PhysicalOp::Store { path: "/o".into() }, vec![outer]);
        let before = p.clone();
        run(&mut p);
        assert_eq!(p, before);
    }

    #[test]
    fn unmappable_predicate_stays_above_project() {
        let (mut p, _) = chain(vec![
            PhysicalOp::Project { cols: vec![0] },
            // Column 1 does not exist below the 1-column projection.
            PhysicalOp::Filter { pred: Expr::col_eq(1, 7i64) },
        ]);
        let before = p.clone();
        run(&mut p);
        assert_eq!(p, before);
    }
}
