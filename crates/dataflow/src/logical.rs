//! Logical plans: alias resolution, schema propagation, and translation
//! of parsed statements into a typed operator DAG.
//!
//! This is where names die and positions are born: every field reference
//! is resolved against the schema of its input relation, so the physical
//! layer (and ReStore's matcher) deals in column indices only.

use crate::ast::{AstExpr, GenItem, Program, RelExpr, Statement};
use crate::expr::{AggFunc, ArithOp, CmpOp, Expr, ScalarFunc};
use crate::physical::AggItem;
use restore_common::{Error, Field, FieldType, Result, Schema};
use std::collections::HashMap;

/// Node index in a [`LogicalPlan`].
pub type LNodeId = usize;

/// Logical operators (parameters fully resolved to column indices).
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalOp {
    Load { path: String },
    Store { path: String },
    Project { cols: Vec<usize> },
    Foreach { exprs: Vec<Expr> },
    Filter { pred: Expr },
    Join { keys: Vec<Vec<usize>> },
    Group { keys: Vec<usize> },
    CoGroup { keys: Vec<Vec<usize>> },
    Aggregate { items: Vec<AggItem> },
    Flatten { bag_col: usize },
    Distinct,
    Union,
    OrderBy { keys: Vec<(usize, bool)> },
    Limit { n: u64 },
}

/// A logical node: operator, inputs, output schema, and (for bag-typed
/// fields) the element schema of each bag.
#[derive(Debug, Clone)]
pub struct LogicalNode {
    pub op: LogicalOp,
    pub inputs: Vec<LNodeId>,
    pub schema: Schema,
    /// Parallel to `schema`: element schema of bag-typed fields.
    pub bag_schemas: Vec<Option<Schema>>,
}

/// The logical plan DAG.
#[derive(Debug, Clone, Default)]
pub struct LogicalPlan {
    pub nodes: Vec<LogicalNode>,
}

impl LogicalPlan {
    pub fn node(&self, id: LNodeId) -> &LogicalNode {
        &self.nodes[id]
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Store nodes (sinks).
    pub fn stores(&self) -> Vec<LNodeId> {
        (0..self.nodes.len())
            .filter(|&i| matches!(self.nodes[i].op, LogicalOp::Store { .. }))
            .collect()
    }

    fn add(&mut self, node: LogicalNode) -> LNodeId {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Build a logical plan from a parsed program.
    pub fn from_ast(program: &Program) -> Result<LogicalPlan> {
        let mut b = Builder { plan: LogicalPlan::default(), aliases: HashMap::new() };
        let mut any_store = false;
        for stmt in &program.statements {
            match stmt {
                Statement::Assign { alias, rel } => {
                    let id = b.build_rel(alias, rel)?;
                    b.aliases.insert(alias.clone(), id);
                }
                Statement::Store { alias, path } => {
                    any_store = true;
                    let input = b.alias(alias)?;
                    let schema = b.plan.node(input).schema.clone();
                    let bags = b.plan.node(input).bag_schemas.clone();
                    b.plan.add(LogicalNode {
                        op: LogicalOp::Store { path: path.clone() },
                        inputs: vec![input],
                        schema,
                        bag_schemas: bags,
                    });
                }
                // SPLIT desugars to one Filter per branch (Pig semantics:
                // conditions are independent; rows can reach several
                // branches or none).
                Statement::Split { input, branches } => {
                    let in_id = b.alias(input)?;
                    for (alias, cond) in branches {
                        let schema = b.plan.node(in_id).schema.clone();
                        let bags = b.plan.node(in_id).bag_schemas.clone();
                        let pred = resolve_scalar(cond, &schema)?;
                        let id = b.plan.add(LogicalNode {
                            op: LogicalOp::Filter { pred },
                            inputs: vec![in_id],
                            schema,
                            bag_schemas: bags,
                        });
                        b.aliases.insert(alias.clone(), id);
                    }
                }
            }
        }
        if !any_store {
            return Err(Error::Plan("query has no STORE statement".into()));
        }
        Ok(b.plan)
    }
}

struct Builder {
    plan: LogicalPlan,
    aliases: HashMap<String, LNodeId>,
}

impl Builder {
    fn alias(&self, name: &str) -> Result<LNodeId> {
        self.aliases.get(name).copied().ok_or_else(|| {
            Error::Plan(format!(
                "unknown alias {name:?}; defined: {:?}",
                self.aliases.keys().collect::<Vec<_>>()
            ))
        })
    }

    fn build_rel(&mut self, _alias: &str, rel: &RelExpr) -> Result<LNodeId> {
        match rel {
            RelExpr::Load { path, schema } => {
                let fields =
                    schema.iter().map(|(n, t)| Field::new(n.clone(), *t)).collect::<Vec<_>>();
                let n = fields.len();
                Ok(self.plan.add(LogicalNode {
                    op: LogicalOp::Load { path: path.clone() },
                    inputs: vec![],
                    schema: Schema::new(fields),
                    bag_schemas: vec![None; n],
                }))
            }
            RelExpr::Filter { input, predicate } => {
                let in_id = self.alias(input)?;
                let schema = self.plan.node(in_id).schema.clone();
                let bags = self.plan.node(in_id).bag_schemas.clone();
                let pred = resolve_scalar(predicate, &schema)?;
                Ok(self.plan.add(LogicalNode {
                    op: LogicalOp::Filter { pred },
                    inputs: vec![in_id],
                    schema,
                    bag_schemas: bags,
                }))
            }
            RelExpr::Distinct { input } => {
                let in_id = self.alias(input)?;
                let schema = self.plan.node(in_id).schema.clone();
                let bags = self.plan.node(in_id).bag_schemas.clone();
                Ok(self.plan.add(LogicalNode {
                    op: LogicalOp::Distinct,
                    inputs: vec![in_id],
                    schema,
                    bag_schemas: bags,
                }))
            }
            RelExpr::Limit { input, n } => {
                let in_id = self.alias(input)?;
                let schema = self.plan.node(in_id).schema.clone();
                let bags = self.plan.node(in_id).bag_schemas.clone();
                Ok(self.plan.add(LogicalNode {
                    op: LogicalOp::Limit { n: *n },
                    inputs: vec![in_id],
                    schema,
                    bag_schemas: bags,
                }))
            }
            RelExpr::OrderBy { input, keys } => {
                let in_id = self.alias(input)?;
                let schema = self.plan.node(in_id).schema.clone();
                let bags = self.plan.node(in_id).bag_schemas.clone();
                let mut rkeys = Vec::new();
                for (e, asc) in keys {
                    rkeys.push((resolve_col(e, &schema)?, *asc));
                }
                Ok(self.plan.add(LogicalNode {
                    op: LogicalOp::OrderBy { keys: rkeys },
                    inputs: vec![in_id],
                    schema,
                    bag_schemas: bags,
                }))
            }
            RelExpr::Union { inputs } => {
                let ids: Result<Vec<LNodeId>> = inputs.iter().map(|a| self.alias(a)).collect();
                let ids = ids?;
                let first = &self.plan.node(ids[0]);
                let arity = first.schema.len();
                let schema = first.schema.clone();
                let bags = first.bag_schemas.clone();
                for &id in &ids[1..] {
                    if self.plan.node(id).schema.len() != arity {
                        return Err(Error::Plan(format!(
                            "UNION inputs have different arity ({arity} vs {})",
                            self.plan.node(id).schema.len()
                        )));
                    }
                }
                Ok(self.plan.add(LogicalNode {
                    op: LogicalOp::Union,
                    inputs: ids,
                    schema,
                    bag_schemas: bags,
                }))
            }
            RelExpr::Join { inputs } => {
                let mut ids = Vec::new();
                let mut keys = Vec::new();
                let mut fields = Vec::new();
                let mut bags = Vec::new();
                for (a, ks) in inputs {
                    let id = self.alias(a)?;
                    let schema = self.plan.node(id).schema.clone();
                    let resolved: Result<Vec<usize>> =
                        ks.iter().map(|k| resolve_col(k, &schema)).collect();
                    keys.push(resolved?);
                    for f in schema.fields() {
                        // Qualify every output field with its alias so
                        // both sides of self-named fields stay reachable.
                        fields.push(Field::new(format!("{a}::{}", f.name), f.ty));
                    }
                    bags.extend(self.plan.node(id).bag_schemas.clone());
                    ids.push(id);
                }
                let arities: Vec<usize> = keys.iter().map(|k| k.len()).collect();
                if arities.windows(2).any(|w| w[0] != w[1]) {
                    return Err(Error::Plan(format!("JOIN key arity mismatch: {arities:?}")));
                }
                Ok(self.plan.add(LogicalNode {
                    op: LogicalOp::Join { keys },
                    inputs: ids,
                    schema: Schema::new(fields),
                    bag_schemas: bags,
                }))
            }
            RelExpr::Group { input, keys, all } => {
                let in_id = self.alias(input)?;
                let in_schema = self.plan.node(in_id).schema.clone();
                let rkeys: Result<Vec<usize>> =
                    keys.iter().map(|k| resolve_col(k, &in_schema)).collect();
                let rkeys = rkeys?;
                if !all && rkeys.is_empty() {
                    return Err(Error::Plan("GROUP BY with no keys".into()));
                }
                // Output schema: key columns (named `group`, or
                // `group::<field>` for composite keys), then the bag named
                // after the input alias.
                let mut fields = Vec::new();
                let mut bags = Vec::new();
                if *all {
                    fields.push(Field::new("group", FieldType::Chararray));
                    bags.push(None);
                } else if rkeys.len() == 1 {
                    let f = in_schema.field(rkeys[0]).expect("resolved");
                    fields.push(Field::new("group", f.ty));
                    bags.push(None);
                } else {
                    for &k in &rkeys {
                        let f = in_schema.field(k).expect("resolved");
                        fields.push(Field::new(format!("group::{}", f.name), f.ty));
                        bags.push(None);
                    }
                }
                fields.push(Field::new(input.clone(), FieldType::Bag));
                bags.push(Some(in_schema));
                Ok(self.plan.add(LogicalNode {
                    op: LogicalOp::Group { keys: rkeys },
                    inputs: vec![in_id],
                    schema: Schema::new(fields),
                    bag_schemas: bags,
                }))
            }
            RelExpr::CoGroup { inputs } => {
                let mut ids = Vec::new();
                let mut keys = Vec::new();
                for (a, ks) in inputs {
                    let id = self.alias(a)?;
                    let schema = self.plan.node(id).schema.clone();
                    let resolved: Result<Vec<usize>> =
                        ks.iter().map(|k| resolve_col(k, &schema)).collect();
                    keys.push(resolved?);
                    ids.push(id);
                }
                let arities: Vec<usize> = keys.iter().map(|k| k.len()).collect();
                if arities.windows(2).any(|w| w[0] != w[1]) {
                    return Err(Error::Plan(format!("COGROUP key arity mismatch: {arities:?}")));
                }
                let mut fields = Vec::new();
                let mut bags = Vec::new();
                let first_schema = self.plan.node(ids[0]).schema.clone();
                if keys[0].len() == 1 {
                    let f = first_schema.field(keys[0][0]).expect("resolved");
                    fields.push(Field::new("group", f.ty));
                    bags.push(None);
                } else {
                    for &k in &keys[0] {
                        let f = first_schema.field(k).expect("resolved");
                        fields.push(Field::new(format!("group::{}", f.name), f.ty));
                        bags.push(None);
                    }
                }
                for (a, _) in inputs {
                    let id = self.alias(a)?;
                    fields.push(Field::new(a.clone(), FieldType::Bag));
                    bags.push(Some(self.plan.node(id).schema.clone()));
                }
                Ok(self.plan.add(LogicalNode {
                    op: LogicalOp::CoGroup { keys },
                    inputs: ids,
                    schema: Schema::new(fields),
                    bag_schemas: bags,
                }))
            }
            RelExpr::Foreach { input, items } => {
                let in_id = self.alias(input)?;
                self.build_foreach(in_id, items)
            }
        }
    }

    /// FOREACH dispatch: aggregate form (over a grouped relation),
    /// flatten form, or scalar form.
    fn build_foreach(&mut self, in_id: LNodeId, items: &[GenItem]) -> Result<LNodeId> {
        let in_schema = self.plan.node(in_id).schema.clone();
        let in_bags = self.plan.node(in_id).bag_schemas.clone();

        let has_agg = items.iter().any(|i| is_aggregate_item(&i.expr));
        let has_flatten = items
            .iter()
            .any(|i| matches!(&i.expr, AstExpr::Call(n, _) if n.eq_ignore_ascii_case("FLATTEN")));

        if has_flatten {
            return self.build_flatten(in_id, items);
        }
        if has_agg {
            return self.build_aggregate(in_id, items);
        }

        // Scalar FOREACH. All-column projections lower to Project for a
        // canonical plan shape; anything else becomes Foreach.
        let mut exprs = Vec::new();
        let mut fields = Vec::new();
        let mut bags = Vec::new();
        for item in items {
            let e = resolve_scalar(&item.expr, &in_schema)?;
            let (name, ty, bag) =
                output_field(&item.expr, &e, item.rename.as_deref(), &in_schema, &in_bags);
            fields.push(Field::new(name, ty));
            bags.push(bag);
            exprs.push(e);
        }
        let all_cols: Option<Vec<usize>> = exprs
            .iter()
            .map(|e| match e {
                Expr::Col(i) => Some(*i),
                _ => None,
            })
            .collect();
        let op = match all_cols {
            Some(cols) => LogicalOp::Project { cols },
            None => LogicalOp::Foreach { exprs },
        };
        Ok(self.plan.add(LogicalNode {
            op,
            inputs: vec![in_id],
            schema: Schema::new(fields),
            bag_schemas: bags,
        }))
    }

    fn build_aggregate(&mut self, in_id: LNodeId, items: &[GenItem]) -> Result<LNodeId> {
        let in_schema = self.plan.node(in_id).schema.clone();
        let in_bags = self.plan.node(in_id).bag_schemas.clone();
        let mut agg_items = Vec::new();
        let mut fields = Vec::new();
        for item in items {
            match &item.expr {
                AstExpr::Call(fname, args) => {
                    let func = AggFunc::parse(fname).ok_or_else(|| {
                        Error::Plan(format!("{fname:?} is not an aggregate function"))
                    })?;
                    let (bag_col, field, default_name) =
                        resolve_agg_arg(args, &in_schema, &in_bags)?;
                    let name = item
                        .rename
                        .clone()
                        .unwrap_or_else(|| format!("{}_{default_name}", fname.to_lowercase()));
                    let ty = match func {
                        AggFunc::Count | AggFunc::CountDistinct => FieldType::Int,
                        AggFunc::Avg => FieldType::Double,
                        _ => FieldType::Bytearray,
                    };
                    fields.push(Field::new(name, ty));
                    agg_items.push(AggItem::Agg { func, bag_col, field });
                }
                // `group` over a composite key expands to all key columns
                // (Pig's `group` is the whole key tuple; we flatten it).
                AstExpr::Field(name)
                    if name == "group" && in_schema.index_of("group").is_none() =>
                {
                    let key_cols: Vec<usize> = (0..in_schema.len())
                        .filter(|&i| in_schema.field(i).unwrap().name.starts_with("group::"))
                        .collect();
                    if key_cols.is_empty() {
                        return Err(Error::Plan("`group` used outside a grouped relation".into()));
                    }
                    for c in key_cols {
                        let f = in_schema.field(c).expect("resolved");
                        let bare = f.name.strip_prefix("group::").unwrap_or(&f.name);
                        fields.push(Field::new(bare, f.ty));
                        agg_items.push(AggItem::Key(c));
                    }
                }
                key_expr => {
                    let col = resolve_col(key_expr, &in_schema)?;
                    let f = in_schema.field(col).expect("resolved");
                    if f.ty == FieldType::Bag {
                        return Err(Error::Plan(format!(
                            "cannot project whole bag {:?} alongside aggregates",
                            f.name
                        )));
                    }
                    let name = item.rename.clone().unwrap_or_else(|| f.name.clone());
                    fields.push(Field::new(name, f.ty));
                    agg_items.push(AggItem::Key(col));
                }
            }
        }
        let n = fields.len();
        Ok(self.plan.add(LogicalNode {
            op: LogicalOp::Aggregate { items: agg_items },
            inputs: vec![in_id],
            schema: Schema::new(fields),
            bag_schemas: vec![None; n],
        }))
    }

    fn build_flatten(&mut self, in_id: LNodeId, items: &[GenItem]) -> Result<LNodeId> {
        let in_schema = self.plan.node(in_id).schema.clone();
        let in_bags = self.plan.node(in_id).bag_schemas.clone();
        // Supported shape: scalar/key items plus exactly one FLATTEN(bag).
        let mut cols = Vec::new();
        let mut flatten_pos = None;
        let mut bag_col_src = None;
        for item in items {
            match &item.expr {
                AstExpr::Call(n, args) if n.eq_ignore_ascii_case("FLATTEN") => {
                    if flatten_pos.is_some() {
                        return Err(Error::Plan(
                            "only one FLATTEN per FOREACH is supported".into(),
                        ));
                    }
                    let bag_name = match args.as_slice() {
                        [AstExpr::Field(f)] => f.clone(),
                        other => {
                            return Err(Error::Plan(format!(
                                "FLATTEN takes a bag field, got {other:?}"
                            )))
                        }
                    };
                    let col = in_schema.resolve(&bag_name)?;
                    flatten_pos = Some(cols.len());
                    bag_col_src = Some(col);
                    cols.push(col);
                }
                e => cols.push(resolve_col(e, &in_schema)?),
            }
        }
        let bag_src =
            bag_col_src.ok_or_else(|| Error::Plan("FLATTEN foreach without FLATTEN".into()))?;
        let flatten_pos = flatten_pos.expect("set with bag_col_src");
        let elem_schema = in_bags
            .get(bag_src)
            .cloned()
            .flatten()
            .ok_or_else(|| Error::Plan("FLATTEN of a non-bag field".into()))?;

        // Project the chosen columns, then flatten the bag in place.
        let mut proj_fields = Vec::new();
        let mut proj_bags = Vec::new();
        for &c in &cols {
            let f = in_schema.field(c).expect("resolved");
            proj_fields.push(f.clone());
            proj_bags.push(in_bags.get(c).cloned().flatten());
        }
        let proj = self.plan.add(LogicalNode {
            op: LogicalOp::Project { cols: cols.clone() },
            inputs: vec![in_id],
            schema: Schema::new(proj_fields.clone()),
            bag_schemas: proj_bags,
        });

        let mut out_fields = Vec::new();
        for (i, f) in proj_fields.iter().enumerate() {
            if i == flatten_pos {
                out_fields.extend(elem_schema.fields().iter().cloned());
            } else {
                out_fields.push(f.clone());
            }
        }
        let n = out_fields.len();
        Ok(self.plan.add(LogicalNode {
            op: LogicalOp::Flatten { bag_col: flatten_pos },
            inputs: vec![proj],
            schema: Schema::new(out_fields),
            bag_schemas: vec![None; n],
        }))
    }
}

/// True when the expression is an aggregate function call.
fn is_aggregate_item(e: &AstExpr) -> bool {
    matches!(e, AstExpr::Call(n, _) if AggFunc::parse(n).is_some())
}

/// Resolve an aggregate argument to (bag column, optional field in bag,
/// display name).
fn resolve_agg_arg(
    args: &[AstExpr],
    schema: &Schema,
    bags: &[Option<Schema>],
) -> Result<(usize, Option<usize>, String)> {
    // A column is a bag if we tracked its element schema, or if it was
    // *declared* as a bag (e.g. loading a previously stored Group output).
    let is_bag = |col: usize| {
        bags.get(col).map(|b| b.is_some()) == Some(true)
            || schema.field(col).map(|f| f.ty) == Some(FieldType::Bag)
    };
    let first_bag = || {
        (0..schema.len())
            .find(|&c| is_bag(c))
            .ok_or_else(|| Error::Plan("aggregate over a relation with no bag".into()))
    };
    match args {
        // COUNT(C): whole-bag count.
        [AstExpr::Field(name)] => {
            let col = resolve_name(name, schema)?;
            if !is_bag(col) {
                return Err(Error::Plan(format!("{name:?} is not a bag")));
            }
            Ok((col, None, name.clone()))
        }
        // COUNT($1): positional bag reference.
        [AstExpr::Positional(p)] => {
            if !is_bag(*p) {
                return Err(Error::Plan(format!("${p} is not a bag")));
            }
            Ok((*p, None, format!("{p}")))
        }
        // SUM(C.est_revenue): field inside the bag.
        [AstExpr::BagField(alias, field)] => {
            let col = resolve_name(alias, schema)?;
            let elem = bags
                .get(col)
                .cloned()
                .flatten()
                .ok_or_else(|| Error::Plan(format!("{alias:?} is not a bag")))?;
            let f = resolve_name(field, &elem)?;
            Ok((col, Some(f), field.clone()))
        }
        // COUNT(*) with no argument: first bag.
        [] => {
            let col = first_bag()?;
            Ok((col, None, "all".into()))
        }
        other => Err(Error::Plan(format!("unsupported aggregate argument {other:?}"))),
    }
}

/// Output field metadata for a scalar FOREACH item.
fn output_field(
    ast: &AstExpr,
    resolved: &Expr,
    rename: Option<&str>,
    schema: &Schema,
    bags: &[Option<Schema>],
) -> (String, FieldType, Option<Schema>) {
    if let Expr::Col(c) = resolved {
        let f = schema.field(*c);
        let name = rename
            .map(|r| r.to_string())
            .or_else(|| f.map(|f| f.name.clone()))
            .unwrap_or_else(|| format!("${c}"));
        // Strip the alias qualifier Pig would eventually drop.
        let name = rename
            .map(|r| r.to_string())
            .unwrap_or_else(|| name.rsplit("::").next().unwrap_or(&name).to_string());
        return (
            name,
            f.map(|f| f.ty).unwrap_or(FieldType::Bytearray),
            bags.get(*c).cloned().flatten(),
        );
    }
    let name = rename.map(|r| r.to_string()).unwrap_or_else(|| match ast {
        AstExpr::Call(n, _) => n.to_lowercase(),
        _ => "expr".to_string(),
    });
    (name, FieldType::Bytearray, None)
}

/// Resolve an expression that must be a single column reference.
fn resolve_col(e: &AstExpr, schema: &Schema) -> Result<usize> {
    match resolve_scalar(e, schema)? {
        Expr::Col(c) => Ok(c),
        other => Err(Error::Plan(format!("expected a field reference, got expression {other:?}"))),
    }
}

/// Resolve names in a scalar expression against a schema. Field lookup
/// tries exact match first, then a unique `alias::name` suffix match.
pub fn resolve_scalar(e: &AstExpr, schema: &Schema) -> Result<Expr> {
    Ok(match e {
        AstExpr::Field(name) => Expr::Col(resolve_name(name, schema)?),
        AstExpr::QualifiedField(a, f) => Expr::Col(resolve_name(&format!("{a}::{f}"), schema)?),
        AstExpr::Positional(p) => Expr::Col(*p),
        AstExpr::BagField(a, f) => {
            return Err(Error::Plan(format!("bag field {a}.{f} is only valid inside an aggregate")))
        }
        AstExpr::Lit(v) => Expr::Lit(v.clone()),
        AstExpr::Neg(x) => Expr::Neg(Box::new(resolve_scalar(x, schema)?)),
        AstExpr::Not(x) => Expr::Not(Box::new(resolve_scalar(x, schema)?)),
        AstExpr::IsNull(x, want) => Expr::IsNull(Box::new(resolve_scalar(x, schema)?), *want),
        AstExpr::And(a, b) => {
            Expr::And(Box::new(resolve_scalar(a, schema)?), Box::new(resolve_scalar(b, schema)?))
        }
        AstExpr::Or(a, b) => {
            Expr::Or(Box::new(resolve_scalar(a, schema)?), Box::new(resolve_scalar(b, schema)?))
        }
        AstExpr::Arith(a, op, b) => {
            let aop = match op {
                '+' => ArithOp::Add,
                '-' => ArithOp::Sub,
                '*' => ArithOp::Mul,
                '/' => ArithOp::Div,
                '%' => ArithOp::Mod,
                other => return Err(Error::Plan(format!("bad arith op {other:?}"))),
            };
            Expr::Arith(
                Box::new(resolve_scalar(a, schema)?),
                aop,
                Box::new(resolve_scalar(b, schema)?),
            )
        }
        AstExpr::Cmp(a, op, b) => {
            let cop = match op.as_str() {
                "==" => CmpOp::Eq,
                "!=" => CmpOp::Neq,
                "<" => CmpOp::Lt,
                "<=" => CmpOp::Le,
                ">" => CmpOp::Gt,
                ">=" => CmpOp::Ge,
                other => return Err(Error::Plan(format!("bad comparison {other:?}"))),
            };
            Expr::Cmp(
                Box::new(resolve_scalar(a, schema)?),
                cop,
                Box::new(resolve_scalar(b, schema)?),
            )
        }
        AstExpr::Call(name, args) => {
            if AggFunc::parse(name).is_some() {
                return Err(Error::Plan(format!(
                    "aggregate {name:?} outside of a grouped FOREACH"
                )));
            }
            let f = ScalarFunc::parse(name)
                .ok_or_else(|| Error::Plan(format!("unknown function {name:?}")))?;
            let rargs: Result<Vec<Expr>> = args.iter().map(|a| resolve_scalar(a, schema)).collect();
            Expr::Func(f, rargs?)
        }
    })
}

/// Exact-then-suffix field resolution.
fn resolve_name(name: &str, schema: &Schema) -> Result<usize> {
    if let Some(i) = schema.index_of(name) {
        return Ok(i);
    }
    let suffix = format!("::{name}");
    let hits: Vec<usize> =
        (0..schema.len()).filter(|&i| schema.field(i).unwrap().name.ends_with(&suffix)).collect();
    match hits.as_slice() {
        [one] => Ok(*one),
        [] => schema.resolve(name), // reuse its error message
        many => Err(Error::Plan(format!(
            "ambiguous field {name:?}: matches {} qualified fields",
            many.len()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn build(q: &str) -> LogicalPlan {
        LogicalPlan::from_ast(&parse(q).unwrap()).unwrap()
    }

    const Q1: &str = "
        A = load 'page_views' as (user, timestamp:int, est_revenue:double, page_info, page_links);
        B = foreach A generate user, est_revenue;
        alpha = load 'users' as (name, phone, address, city);
        beta = foreach alpha generate name;
        C = join beta by name, B by user;
        store C into 'L2_out';
    ";

    #[test]
    fn q1_builds_with_resolved_join() {
        let p = build(Q1);
        let join = p.nodes.iter().find(|n| matches!(n.op, LogicalOp::Join { .. })).unwrap();
        match &join.op {
            LogicalOp::Join { keys } => assert_eq!(keys, &vec![vec![0], vec![0]]),
            _ => unreachable!(),
        }
        // Join schema is alias-qualified.
        assert_eq!(join.schema.index_of("beta::name"), Some(0));
        assert_eq!(join.schema.index_of("B::user"), Some(1));
        assert_eq!(p.stores().len(), 1);
    }

    #[test]
    fn simple_foreach_lowers_to_project() {
        let p =
            build("A = load '/d' as (a, b, c); B = foreach A generate c, a; store B into '/o';");
        let proj = p.nodes.iter().find(|n| matches!(n.op, LogicalOp::Project { .. })).unwrap();
        match &proj.op {
            LogicalOp::Project { cols } => assert_eq!(cols, &vec![2, 0]),
            _ => unreachable!(),
        }
        assert_eq!(proj.schema.index_of("c"), Some(0));
    }

    #[test]
    fn computed_foreach_stays_foreach() {
        let p = build(
            "A = load '/d' as (a:int, b:int); B = foreach A generate a + b as s; store B into '/o';",
        );
        assert!(p.nodes.iter().any(|n| matches!(n.op, LogicalOp::Foreach { .. })));
        let f = p.nodes.iter().find(|n| matches!(n.op, LogicalOp::Foreach { .. })).unwrap();
        assert_eq!(f.schema.index_of("s"), Some(0));
    }

    #[test]
    fn group_then_aggregate() {
        let p = build(
            "A = load '/d' as (u, r:double);
             G = group A by u;
             S = foreach G generate group, SUM(A.r);
             store S into '/o';",
        );
        let group = p.nodes.iter().find(|n| matches!(n.op, LogicalOp::Group { .. })).unwrap();
        assert_eq!(group.schema.index_of("group"), Some(0));
        assert_eq!(group.schema.index_of("A"), Some(1));
        assert_eq!(group.schema.field(1).unwrap().ty, FieldType::Bag);
        assert!(group.bag_schemas[1].is_some());

        let agg = p.nodes.iter().find(|n| matches!(n.op, LogicalOp::Aggregate { .. })).unwrap();
        match &agg.op {
            LogicalOp::Aggregate { items } => {
                assert_eq!(items[0], AggItem::Key(0));
                assert_eq!(
                    items[1],
                    AggItem::Agg { func: AggFunc::Sum, bag_col: 1, field: Some(1) }
                );
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn group_all_has_chararray_key() {
        let p = build(
            "A = load '/d' as (x:int);
             G = group A all;
             C = foreach G generate COUNT(A);
             store C into '/o';",
        );
        let group = p.nodes.iter().find(|n| matches!(n.op, LogicalOp::Group { .. })).unwrap();
        match &group.op {
            LogicalOp::Group { keys } => assert!(keys.is_empty()),
            _ => unreachable!(),
        }
    }

    #[test]
    fn cogroup_schema_has_one_bag_per_input() {
        let p = build(
            "A = load '/a' as (u, x);
             B = load '/b' as (v, y);
             C = cogroup A by u, B by v;
             store C into '/o';",
        );
        let cg = p.nodes.iter().find(|n| matches!(n.op, LogicalOp::CoGroup { .. })).unwrap();
        assert_eq!(cg.schema.len(), 3);
        assert_eq!(cg.schema.index_of("A"), Some(1));
        assert_eq!(cg.schema.index_of("B"), Some(2));
        assert!(cg.bag_schemas[1].is_some() && cg.bag_schemas[2].is_some());
    }

    #[test]
    fn flatten_after_cogroup() {
        let p = build(
            "A = load '/a' as (u, x);
             B = load '/b' as (v);
             C = cogroup A by u, B by v;
             D = foreach C generate FLATTEN(A);
             store D into '/o';",
        );
        let fl = p.nodes.iter().find(|n| matches!(n.op, LogicalOp::Flatten { .. })).unwrap();
        assert_eq!(fl.schema.index_of("u"), Some(0));
        assert_eq!(fl.schema.index_of("x"), Some(1));
    }

    #[test]
    fn count_distinct_aggregate() {
        let p = build(
            "A = load '/d' as (u, action);
             G = group A by u;
             C = foreach G generate group, COUNT_DISTINCT(A.action);
             store C into '/o';",
        );
        let agg = p.nodes.iter().find(|n| matches!(n.op, LogicalOp::Aggregate { .. })).unwrap();
        match &agg.op {
            LogicalOp::Aggregate { items } => {
                assert_eq!(
                    items[1],
                    AggItem::Agg { func: AggFunc::CountDistinct, bag_col: 1, field: Some(1) }
                );
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn errors_on_unknown_alias_and_field() {
        let err =
            LogicalPlan::from_ast(&parse("B = filter A by x > 1; store B into '/o';").unwrap())
                .unwrap_err();
        assert!(err.to_string().contains("unknown alias"));

        let err = LogicalPlan::from_ast(
            &parse("A = load '/d' as (a); B = filter A by nope > 1; store B into '/o';").unwrap(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn errors_without_store() {
        let err = LogicalPlan::from_ast(&parse("A = load '/d' as (a);").unwrap()).unwrap_err();
        assert!(err.to_string().contains("no STORE"));
    }

    #[test]
    fn split_desugars_to_filters() {
        let p = build(
            "A = load '/d' as (x:int, y);
             split A into Hi if x > 10, Lo if x <= 10;
             store Hi into '/hi';
             store Lo into '/lo';",
        );
        let filters = p.nodes.iter().filter(|n| matches!(n.op, LogicalOp::Filter { .. })).count();
        assert_eq!(filters, 2);
        assert_eq!(p.stores().len(), 2);
        // Both filters read the same input node.
        let filter_inputs: Vec<LNodeId> = p
            .nodes
            .iter()
            .filter(|n| matches!(n.op, LogicalOp::Filter { .. }))
            .map(|n| n.inputs[0])
            .collect();
        assert_eq!(filter_inputs[0], filter_inputs[1]);
    }

    #[test]
    fn union_arity_mismatch_rejected() {
        let err = LogicalPlan::from_ast(
            &parse(
                "A = load '/a' as (x, y);
                 B = load '/b' as (z);
                 C = union A, B;
                 store C into '/o';",
            )
            .unwrap(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("arity"));
    }

    #[test]
    fn aggregate_outside_group_rejected() {
        let err = LogicalPlan::from_ast(
            &parse(
                "A = load '/a' as (x);
                 B = foreach A generate x, COUNT(A.x) + 1;
                 store B into '/o';",
            )
            .unwrap(),
        )
        .unwrap_err();
        // Aggregate calls nested in scalar expressions are not supported.
        assert!(!err.to_string().is_empty());
    }
}
