//! Plan-driven execution: turning a [`CompiledJob`] into a runnable
//! [`JobSpec`] with interpreter-based `Mapper`/`Reducer` implementations.
//!
//! A job plan is split at its (single) blocking operator: everything
//! upstream runs in mappers as a push-based pipeline DAG; the blocking
//! operator and everything downstream run in reducers. Stores surface as
//! the job's main output or side outputs; edges into the blocking
//! operator become keyed shuffle emissions tagged with the join/cogroup
//! branch index.

use crate::expr::Expr;
use crate::mr_compiler::{CompiledJob, CompiledWorkflow};
use crate::physical::{AggItem, NodeId, PhysicalOp, PhysicalPlan};
use restore_common::{Error, Result, Tuple, Value};
use restore_mapreduce::{JobInput, JobSpec, MapContext, Mapper, ReduceContext, Reducer, Workflow};
use std::collections::HashMap;
use std::sync::Arc;

/// I/O layout of a compiled job, derived from its plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobIo {
    /// Input file paths, in Load-node order (= mapper tag order).
    pub inputs: Vec<String>,
    /// The job's main output path.
    pub main_output: String,
    /// Side output paths (injected Stores), in node order.
    pub side_outputs: Vec<String>,
}

/// Derive the I/O layout of a job plan: which Store is the main output
/// (a reduce-phase Store when the job has a shuffle, else the first
/// Store) and which are side outputs.
pub fn job_io(plan: &PhysicalPlan) -> Result<JobIo> {
    let loads = plan.loads();
    if loads.is_empty() {
        return Err(Error::Plan("job plan has no Load".into()));
    }
    let inputs = loads
        .iter()
        .map(|&l| match plan.op(l) {
            PhysicalOp::Load { path } => path.clone(),
            _ => unreachable!(),
        })
        .collect();

    let stores = plan.stores();
    if stores.is_empty() {
        return Err(Error::Plan("job plan has no Store".into()));
    }
    let blocking = find_blocking(plan)?;
    let reduce_side = reduce_side_set(plan, blocking);

    let main = stores.iter().copied().find(|s| reduce_side[s.index()]).unwrap_or(stores[0]);
    let main_output = store_path(plan, main);
    let side_outputs =
        stores.iter().copied().filter(|&s| s != main).map(|s| store_path(plan, s)).collect();
    Ok(JobIo { inputs, main_output, side_outputs })
}

fn store_path(plan: &PhysicalPlan, id: NodeId) -> String {
    match plan.op(id) {
        PhysicalOp::Store { path } => path.clone(),
        _ => unreachable!("not a store"),
    }
}

/// The job's unique blocking node, if any.
fn find_blocking(plan: &PhysicalPlan) -> Result<Option<NodeId>> {
    let blocking: Vec<NodeId> = plan.ids().filter(|&id| plan.op(id).is_blocking()).collect();
    match blocking.as_slice() {
        [] => Ok(None),
        [one] => Ok(Some(*one)),
        many => Err(Error::Plan(format!(
            "job plan has {} blocking operators; the MR compiler emits one per job",
            many.len()
        ))),
    }
}

/// Membership vector: node is in the reduce phase (blocking node itself
/// and its descendants).
fn reduce_side_set(plan: &PhysicalPlan, blocking: Option<NodeId>) -> Vec<bool> {
    let mut set = vec![false; plan.len()];
    let Some(b) = blocking else { return set };
    set[b.index()] = true;
    for id in plan.topo_order() {
        if plan.inputs(id).iter().any(|i| set[i.index()]) {
            set[id.index()] = true;
        }
    }
    set
}

// ---------------------------------------------------------------------
// Push-based pipeline programs
// ---------------------------------------------------------------------

/// How a mapper emission builds its shuffle key.
#[derive(Debug, Clone)]
enum EmitKind {
    /// Key = projected key columns; drop records with null keys
    /// (inner-join semantics).
    JoinBranch { key_cols: Vec<usize> },
    /// Key = projected key columns; empty key list means GROUP ALL.
    GroupKey { key_cols: Vec<usize> },
    /// CoGroup branch: like join but null keys are kept.
    CoGroupBranch { key_cols: Vec<usize> },
    /// Key = the whole record (Distinct).
    WholeRecord,
    /// Constant key — all records meet in one reduce group
    /// (OrderBy/Limit run with a single reducer).
    Constant,
}

#[derive(Debug, Clone)]
enum StepKind {
    Project(Vec<usize>),
    MapExpr(Vec<Expr>),
    Filter(Expr),
    Flatten(usize),
    Aggregate(Vec<AggItem>),
    /// Split/Union pass-through.
    Pass,
    /// Write to side-output channel.
    SideStore(usize),
    /// Write to the job's main output.
    Output,
    /// Shuffle emission (map side only).
    Emit {
        branch: usize,
        kind: EmitKind,
    },
}

#[derive(Debug, Clone)]
struct Step {
    kind: StepKind,
    next: Vec<usize>,
}

/// A push-based interpreter program over plan steps.
#[derive(Debug, Clone, Default)]
struct Program {
    steps: Vec<Step>,
    /// Entry step lists per source (per input tag for map programs; a
    /// single entry list for reduce programs).
    entries: Vec<Vec<usize>>,
}

/// Anything a step can emit into — unifies map and reduce contexts.
trait Sink {
    fn output(&mut self, t: Tuple);
    fn side(&mut self, ch: usize, t: Tuple);
    fn emit(&mut self, branch: usize, key: Tuple, t: Tuple);
}

struct MapSink<'a>(&'a mut MapContext);

impl Sink for MapSink<'_> {
    fn output(&mut self, t: Tuple) {
        self.0.output(t);
    }
    fn side(&mut self, ch: usize, t: Tuple) {
        self.0.side(ch, t);
    }
    fn emit(&mut self, branch: usize, key: Tuple, t: Tuple) {
        self.0.emit(key, branch, t);
    }
}

struct ReduceSink<'a>(&'a mut ReduceContext);

impl Sink for ReduceSink<'_> {
    fn output(&mut self, t: Tuple) {
        self.0.output(t);
    }
    fn side(&mut self, ch: usize, t: Tuple) {
        self.0.side(ch, t);
    }
    fn emit(&mut self, _branch: usize, _key: Tuple, _t: Tuple) {
        unreachable!("reduce programs never re-shuffle");
    }
}

impl Program {
    fn push(&self, step_idx: usize, t: Tuple, sink: &mut dyn Sink) -> Result<()> {
        let step = &self.steps[step_idx];
        match &step.kind {
            StepKind::Project(cols) => self.fanout(step_idx, t.project(cols), sink),
            StepKind::MapExpr(exprs) => {
                let mut out = Tuple::new();
                for e in exprs {
                    out.push(e.eval(&t)?);
                }
                self.fanout(step_idx, out, sink)
            }
            StepKind::Filter(pred) => {
                if pred.eval(&t)?.is_truthy() {
                    self.fanout(step_idx, t, sink)?;
                }
                Ok(())
            }
            StepKind::Flatten(bag_col) => {
                let bag = match t.get(*bag_col) {
                    Value::Bag(b) => b.clone(),
                    Value::Null => Vec::new(),
                    other => {
                        return Err(Error::Eval(format!("FLATTEN of non-bag value {other:?}")))
                    }
                };
                for inner in bag {
                    let mut row = Vec::new();
                    for (i, v) in t.iter().enumerate() {
                        if i == *bag_col {
                            row.extend(inner.iter().cloned());
                        } else {
                            row.push(v.clone());
                        }
                    }
                    self.fanout(step_idx, Tuple::from_values(row), sink)?;
                }
                Ok(())
            }
            StepKind::Aggregate(items) => {
                let mut out = Tuple::new();
                for item in items {
                    match item {
                        AggItem::Key(c) => out.push(t.get(*c).clone()),
                        AggItem::Agg { func, bag_col, field } => {
                            let bag = match t.get(*bag_col) {
                                Value::Bag(b) => b.as_slice(),
                                Value::Null => &[],
                                other => {
                                    return Err(Error::Eval(format!(
                                        "aggregate over non-bag {other:?}"
                                    )))
                                }
                            };
                            out.push(func.apply(bag, *field));
                        }
                    }
                }
                self.fanout(step_idx, out, sink)
            }
            StepKind::Pass => self.fanout(step_idx, t, sink),
            StepKind::SideStore(ch) => {
                sink.side(*ch, t);
                Ok(())
            }
            StepKind::Output => {
                sink.output(t);
                Ok(())
            }
            StepKind::Emit { branch, kind } => {
                match kind {
                    EmitKind::JoinBranch { key_cols } => {
                        let key = t.project(key_cols);
                        if key.iter().any(|v| v.is_null()) {
                            return Ok(()); // inner join drops null keys
                        }
                        sink.emit(*branch, key, t);
                    }
                    EmitKind::CoGroupBranch { key_cols } => {
                        sink.emit(*branch, t.project(key_cols), t);
                    }
                    EmitKind::GroupKey { key_cols } => {
                        let key = if key_cols.is_empty() {
                            Tuple::from_values(vec![Value::str("all")])
                        } else {
                            t.project(key_cols)
                        };
                        sink.emit(*branch, key, t);
                    }
                    EmitKind::WholeRecord => {
                        sink.emit(*branch, t.clone(), Tuple::new());
                    }
                    EmitKind::Constant => {
                        sink.emit(*branch, Tuple::new(), t);
                    }
                }
                Ok(())
            }
        }
    }

    fn fanout(&self, step_idx: usize, t: Tuple, sink: &mut dyn Sink) -> Result<()> {
        let next = &self.steps[step_idx].next;
        match next.len() {
            0 => Ok(()),
            1 => self.push(next[0], t, sink),
            _ => {
                for &n in next {
                    self.push(n, t.clone(), sink)?;
                }
                Ok(())
            }
        }
    }

    fn push_entries(&self, source: usize, t: Tuple, sink: &mut dyn Sink) -> Result<()> {
        let entries = &self.entries[source];
        match entries.len() {
            0 => Ok(()),
            1 => self.push(entries[0], t, sink),
            _ => {
                for &e in entries {
                    self.push(e, t.clone(), sink)?;
                }
                Ok(())
            }
        }
    }
}

// ---------------------------------------------------------------------
// Program construction
// ---------------------------------------------------------------------

/// What the reduce phase does with each key group before pushing rows
/// into its pipeline.
#[derive(Debug, Clone)]
enum BlockKind {
    /// Cross product of branch bags, output = concatenation.
    Join { n_branches: usize },
    /// (key fields..., bag).
    Group,
    /// (key fields..., bag per branch).
    CoGroup { n_branches: usize },
    /// Emit the key once.
    Distinct,
    /// Sort the single constant-key group.
    OrderBy { keys: Vec<(usize, bool)> },
    /// First n of the single constant-key group.
    Limit { n: u64 },
}

/// Everything the interpreter needs, shared by all tasks of a job.
struct CompiledPrograms {
    map: Program,
    reduce: Option<(BlockKind, Program)>,
    shuffle_tags: usize,
}

struct Compilation<'a> {
    plan: &'a PhysicalPlan,
    io: &'a JobIo,
    reduce_side: Vec<bool>,
    blocking: Option<NodeId>,
}

impl<'a> Compilation<'a> {
    /// Step kind for a non-Load, non-blocking node.
    fn step_kind(&self, id: NodeId) -> Result<StepKind> {
        Ok(match self.plan.op(id) {
            PhysicalOp::Project { cols } => StepKind::Project(cols.clone()),
            PhysicalOp::MapExpr { exprs } => StepKind::MapExpr(exprs.clone()),
            PhysicalOp::Filter { pred } => StepKind::Filter(pred.clone()),
            PhysicalOp::Flatten { bag_col } => StepKind::Flatten(*bag_col),
            PhysicalOp::Aggregate { items } => StepKind::Aggregate(items.clone()),
            PhysicalOp::Split | PhysicalOp::Union => StepKind::Pass,
            PhysicalOp::Store { path } => {
                if *path == self.io.main_output {
                    StepKind::Output
                } else {
                    let ch = self
                        .io
                        .side_outputs
                        .iter()
                        .position(|p| p == path)
                        .ok_or_else(|| Error::Plan(format!("unregistered store {path:?}")))?;
                    StepKind::SideStore(ch)
                }
            }
            other => {
                return Err(Error::Plan(format!(
                    "operator {} cannot appear in a pipeline",
                    other.name()
                )))
            }
        })
    }

    /// Emit kind for an edge into the blocking node at branch `branch`.
    fn emit_kind(&self, branch: usize) -> EmitKind {
        match self.plan.op(self.blocking.expect("blocking")) {
            PhysicalOp::Join { keys } => EmitKind::JoinBranch { key_cols: keys[branch].clone() },
            PhysicalOp::CoGroup { keys } => {
                EmitKind::CoGroupBranch { key_cols: keys[branch].clone() }
            }
            PhysicalOp::Group { keys } => EmitKind::GroupKey { key_cols: keys.clone() },
            PhysicalOp::Distinct => EmitKind::WholeRecord,
            PhysicalOp::OrderBy { .. } | PhysicalOp::Limit { .. } => EmitKind::Constant,
            other => unreachable!("{} is not blocking", other.name()),
        }
    }

    /// Build the map program (phase = !reduce_side, excluding Loads) and
    /// the reduce program (descendants of the blocking node).
    fn compile(&self) -> Result<CompiledPrograms> {
        let mut map = Program::default();
        let mut reduce = Program::default();
        // plan node -> step index, per program.
        let mut map_step: HashMap<NodeId, usize> = HashMap::new();
        let mut reduce_step: HashMap<NodeId, usize> = HashMap::new();

        // Create steps for every non-Load, non-blocking node.
        for id in self.plan.ids() {
            if matches!(self.plan.op(id), PhysicalOp::Load { .. }) {
                continue;
            }
            if Some(id) == self.blocking {
                continue;
            }
            let kind = self.step_kind(id)?;
            if self.reduce_side[id.index()] {
                reduce.steps.push(Step { kind, next: vec![] });
                reduce_step.insert(id, reduce.steps.len() - 1);
            } else {
                map.steps.push(Step { kind, next: vec![] });
                map_step.insert(id, map.steps.len() - 1);
            }
        }

        // Emit steps: one per (producer -> blocking branch) edge position.
        // Keyed by (producer, branch).
        let mut emit_step: HashMap<(NodeId, usize), usize> = HashMap::new();
        if let Some(b) = self.blocking {
            for (branch, &src) in self.plan.inputs(b).iter().enumerate() {
                let kind = StepKind::Emit { branch, kind: self.emit_kind(branch) };
                map.steps.push(Step { kind, next: vec![] });
                emit_step.insert((src, branch), map.steps.len() - 1);
            }
        }

        // Wire edges: for each node, its successors' steps.
        let successor_steps = |id: NodeId| -> Vec<usize> {
            let mut out = Vec::new();
            if let Some(b) = self.blocking {
                for (branch, &src) in self.plan.inputs(b).iter().enumerate() {
                    if src == id {
                        out.push(emit_step[&(id, branch)]);
                    }
                }
            }
            for c in self.plan.consumers(id) {
                if Some(c) == self.blocking {
                    continue; // handled via emit steps
                }
                if self.reduce_side[id.index()] {
                    out.push(reduce_step[&c]);
                } else if !self.reduce_side[c.index()] {
                    out.push(map_step[&c]);
                }
                // A map-side node never feeds a reduce-side node directly
                // except through the blocking op (by construction).
            }
            out
        };

        for (&id, &s) in &map_step {
            map.steps[s].next = successor_steps(id);
        }
        for (&id, &s) in &reduce_step {
            reduce.steps[s].next = successor_steps(id);
        }

        // Map entries: per Load node, its successors.
        for &l in &self.plan.loads() {
            map.entries.push(successor_steps(l));
        }

        // Reduce program entries: the blocking node's successors.
        let reduce_part = match self.blocking {
            None => None,
            Some(b) => {
                reduce
                    .entries
                    .push(self.plan.consumers(b).into_iter().map(|c| reduce_step[&c]).collect());
                let kind = match self.plan.op(b) {
                    PhysicalOp::Join { keys } => BlockKind::Join { n_branches: keys.len() },
                    PhysicalOp::Group { .. } => BlockKind::Group,
                    PhysicalOp::CoGroup { keys } => BlockKind::CoGroup { n_branches: keys.len() },
                    PhysicalOp::Distinct => BlockKind::Distinct,
                    PhysicalOp::OrderBy { keys } => BlockKind::OrderBy { keys: keys.clone() },
                    PhysicalOp::Limit { n } => BlockKind::Limit { n: *n },
                    other => unreachable!("{} is not blocking", other.name()),
                };
                Some((kind, reduce))
            }
        };

        let shuffle_tags = match self.blocking {
            Some(b) => self.plan.inputs(b).len(),
            None => 1,
        };
        Ok(CompiledPrograms { map, reduce: reduce_part, shuffle_tags })
    }
}

// ---------------------------------------------------------------------
// Mapper / Reducer implementations
// ---------------------------------------------------------------------

struct PlanMapper {
    programs: Arc<CompiledPrograms>,
}

impl Mapper for PlanMapper {
    fn map(&mut self, tag: usize, record: Tuple, ctx: &mut MapContext) -> Result<()> {
        self.programs.map.push_entries(tag, record, &mut MapSink(ctx))
    }
}

struct PlanReducer {
    programs: Arc<CompiledPrograms>,
    emitted: u64,
}

impl Reducer for PlanReducer {
    fn reduce(&mut self, key: &Tuple, bags: &[Vec<Tuple>], ctx: &mut ReduceContext) -> Result<()> {
        let (kind, prog) = self.programs.reduce.as_ref().expect("reducer without program");
        let mut sink = ReduceSink(ctx);
        match kind {
            BlockKind::Join { n_branches } => {
                // Cross product across branches; empty branch = no output.
                if (0..*n_branches).any(|b| bags[b].is_empty()) {
                    return Ok(());
                }
                let mut row_stack = vec![0usize; *n_branches];
                loop {
                    let mut row = Vec::new();
                    for b in 0..*n_branches {
                        row.extend(bags[b][row_stack[b]].iter().cloned());
                    }
                    prog.push_entries(0, Tuple::from_values(row), &mut sink)?;
                    // Odometer increment.
                    let mut b = *n_branches;
                    loop {
                        if b == 0 {
                            return Ok(());
                        }
                        b -= 1;
                        row_stack[b] += 1;
                        if row_stack[b] < bags[b].len() {
                            break;
                        }
                        row_stack[b] = 0;
                    }
                }
            }
            BlockKind::Group => {
                let mut row: Vec<Value> = key.iter().cloned().collect();
                row.push(Value::Bag(bags[0].clone()));
                prog.push_entries(0, Tuple::from_values(row), &mut sink)
            }
            BlockKind::CoGroup { n_branches } => {
                let mut row: Vec<Value> = key.iter().cloned().collect();
                for bag in bags.iter().take(*n_branches) {
                    row.push(Value::Bag(bag.clone()));
                }
                prog.push_entries(0, Tuple::from_values(row), &mut sink)
            }
            BlockKind::Distinct => prog.push_entries(0, key.clone(), &mut sink),
            BlockKind::OrderBy { keys } => {
                let mut rows = bags[0].clone();
                rows.sort_by(|a, b| {
                    for (col, asc) in keys {
                        let o = a.get(*col).cmp(b.get(*col));
                        let o = if *asc { o } else { o.reverse() };
                        if o != std::cmp::Ordering::Equal {
                            return o;
                        }
                    }
                    std::cmp::Ordering::Equal
                });
                for r in rows {
                    prog.push_entries(0, r, &mut sink)?;
                }
                Ok(())
            }
            BlockKind::Limit { n } => {
                for r in &bags[0] {
                    if self.emitted >= *n {
                        break;
                    }
                    self.emitted += 1;
                    prog.push_entries(0, r.clone(), &mut sink)?;
                }
                Ok(())
            }
        }
    }
}

// ---------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------

/// Build a runnable [`JobSpec`] from a compiled job plan.
pub fn job_spec(job: &CompiledJob, name: &str) -> Result<JobSpec> {
    job_spec_for_plan(&job.plan, name)
}

/// Build a runnable [`JobSpec`] directly from a job plan (used by ReStore
/// after it has rewritten the plan).
pub fn job_spec_for_plan(plan: &PhysicalPlan, name: &str) -> Result<JobSpec> {
    let io = job_io(plan)?;
    let blocking = find_blocking(plan)?;
    let reduce_side = reduce_side_set(plan, blocking);
    let comp = Compilation { plan, io: &io, reduce_side: reduce_side.clone(), blocking };
    let programs = Arc::new(comp.compile()?);

    // Per-record CPU weights for the cost model.
    let mut cpu_map = 0.0;
    let mut cpu_reduce = 0.0;
    for id in plan.ids() {
        let w = plan.op(id).cost_weight();
        if reduce_side[id.index()] {
            cpu_reduce += w;
        } else {
            cpu_map += w;
        }
    }

    let map_programs = Arc::clone(&programs);
    let mapper = Arc::new(move || {
        Box::new(PlanMapper { programs: Arc::clone(&map_programs) }) as Box<dyn Mapper>
    });
    let reducer = match blocking {
        None => None,
        Some(_) => {
            let red_programs = Arc::clone(&programs);
            Some(Arc::new(move || {
                Box::new(PlanReducer { programs: Arc::clone(&red_programs), emitted: 0 })
                    as Box<dyn Reducer>
            }) as Arc<dyn restore_mapreduce::ReducerFactory>)
        }
    };

    let mut spec = JobSpec::new(
        name,
        io.inputs.iter().map(JobInput::new).collect(),
        io.main_output.clone(),
        mapper,
        reducer,
    );
    spec.side_outputs = io.side_outputs.clone();
    spec.shuffle_tags = Some(programs.shuffle_tags);
    spec.cpu_weight_map = cpu_map.max(0.05);
    spec.cpu_weight_reduce = cpu_reduce.max(0.05);
    // Global-order operators need a single reducer.
    if let Some(b) = blocking {
        if matches!(plan.op(b), PhysicalOp::OrderBy { .. } | PhysicalOp::Limit { .. }) {
            spec.reduce_tasks = Some(1);
        }
    }
    Ok(spec)
}

/// Convert a whole compiled workflow into an executable MR workflow.
pub fn to_mr_workflow(wf: &CompiledWorkflow, name_prefix: &str) -> Result<Workflow> {
    let mut out = Workflow::new();
    let mut idx = Vec::with_capacity(wf.jobs.len());
    for (i, job) in wf.jobs.iter().enumerate() {
        let spec = job_spec(job, &format!("{name_prefix}-job{i}"))?;
        idx.push(out.add_job(spec));
    }
    for (i, job) in wf.jobs.iter().enumerate() {
        for &d in &job.deps {
            out.add_dependency(idx[i], idx[d]);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use restore_common::{codec, tuple};
    use restore_dfs::{Dfs, DfsConfig};
    use restore_mapreduce::{ClusterConfig, Engine, EngineConfig};

    fn test_engine() -> Engine {
        let dfs =
            Dfs::new(DfsConfig { nodes: 4, block_size: 256, replication: 2, node_capacity: None });
        Engine::new(
            dfs,
            ClusterConfig::default(),
            EngineConfig { worker_threads: 4, default_reduce_tasks: 3 },
        )
    }

    fn write(dfs: &Dfs, path: &str, rows: &[Tuple]) {
        dfs.write_all(path, &codec::encode_all(rows)).unwrap();
    }

    fn read_sorted(dfs: &Dfs, path: &str) -> Vec<Tuple> {
        let mut t = codec::decode_all(&dfs.read_all(path).unwrap()).unwrap();
        t.sort();
        t
    }

    fn run_query(eng: &Engine, q: &str) {
        let wf = compile(q, "/tmpwf").unwrap();
        let mr = to_mr_workflow(&wf, "t").unwrap();
        eng.run_workflow(&mr).unwrap();
    }

    #[test]
    fn join_query_end_to_end() {
        let eng = test_engine();
        write(
            eng.dfs(),
            "/pv",
            &[
                tuple!["ann", 1, 10.0, "i", "l"],
                tuple!["bob", 2, 20.0, "i", "l"],
                tuple!["cat", 3, 30.0, "i", "l"],
                tuple!["ann", 4, 40.0, "i", "l"],
            ],
        );
        write(eng.dfs(), "/users", &[tuple!["ann", "p", "a", "c"], tuple!["cat", "p", "a", "c"]]);
        run_query(
            &eng,
            "A = load '/pv' as (user, ts:int, rev:double, info, links);
             B = foreach A generate user, rev;
             alpha = load '/users' as (name, phone, addr, city);
             beta = foreach alpha generate name;
             C = join beta by name, B by user;
             store C into '/out/q1';",
        );
        assert_eq!(
            read_sorted(eng.dfs(), "/out/q1"),
            vec![
                tuple!["ann", "ann", 10.0],
                tuple!["ann", "ann", 40.0],
                tuple!["cat", "cat", 30.0],
            ]
        );
    }

    #[test]
    fn group_sum_two_job_workflow() {
        let eng = test_engine();
        write(
            eng.dfs(),
            "/pv",
            &[
                tuple!["ann", 1, 10.5, "i", "l"],
                tuple!["bob", 2, 20.0, "i", "l"],
                tuple!["ann", 3, 4.5, "i", "l"],
            ],
        );
        write(eng.dfs(), "/users", &[tuple!["ann", "p", "a", "c"], tuple!["bob", "p", "a", "c"]]);
        run_query(
            &eng,
            "A = load '/pv' as (user, ts:int, rev:double, info, links);
             B = foreach A generate user, rev;
             alpha = load '/users' as (name, phone, addr, city);
             beta = foreach alpha generate name;
             C = join beta by name, B by user;
             D = group C by $0;
             E = foreach D generate group, SUM(C.rev);
             store E into '/out/q2';",
        );
        assert_eq!(
            read_sorted(eng.dfs(), "/out/q2"),
            vec![tuple!["ann", 15.0], tuple!["bob", 20.0]]
        );
    }

    #[test]
    fn distinct_union_three_job_workflow() {
        let eng = test_engine();
        write(eng.dfs(), "/a", &[tuple!["x", 1], tuple!["y", 2], tuple!["x", 3]]);
        write(eng.dfs(), "/b", &[tuple!["y", 4], tuple!["z", 5]]);
        run_query(
            &eng,
            "A = load '/a' as (u, t);
             B = foreach A generate u;
             C = distinct B;
             D = load '/b' as (u, t);
             E = foreach D generate u;
             F = distinct E;
             G = union C, F;
             H = distinct G;
             store H into '/out/l11';",
        );
        assert_eq!(read_sorted(eng.dfs(), "/out/l11"), vec![tuple!["x"], tuple!["y"], tuple!["z"]]);
    }

    #[test]
    fn group_all_count() {
        let eng = test_engine();
        write(eng.dfs(), "/d", &[tuple![1], tuple![2], tuple![3]]);
        run_query(
            &eng,
            "A = load '/d' as (x:int);
             G = group A all;
             C = foreach G generate COUNT(A);
             store C into '/out/c';",
        );
        assert_eq!(read_sorted(eng.dfs(), "/out/c"), vec![tuple![3]]);
    }

    #[test]
    fn order_by_desc_and_limit() {
        let eng = test_engine();
        write(eng.dfs(), "/d", &[tuple![3, "c"], tuple![1, "a"], tuple![2, "b"]]);
        run_query(
            &eng,
            "A = load '/d' as (n:int, s);
             B = order A by n desc;
             store B into '/out/sorted';",
        );
        // Order preserved in file (single reducer, no resort).
        let rows = codec::decode_all(&eng.dfs().read_all("/out/sorted").unwrap()).unwrap();
        assert_eq!(rows, vec![tuple![3, "c"], tuple![2, "b"], tuple![1, "a"]]);

        run_query(
            &eng,
            "A = load '/d' as (n:int, s);
             B = order A by n;
             C = limit B 2;
             store C into '/out/limited';",
        );
        let rows = codec::decode_all(&eng.dfs().read_all("/out/limited").unwrap()).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], tuple![1, "a"]);
    }

    #[test]
    fn cogroup_flatten_anti_join() {
        // L5-style: page views by users NOT in the power_users table.
        let eng = test_engine();
        write(eng.dfs(), "/pv", &[tuple!["ann", 1], tuple!["bob", 2], tuple!["cat", 3]]);
        write(eng.dfs(), "/power", &[tuple!["ann"], tuple!["cat"]]);
        run_query(
            &eng,
            "A = load '/pv' as (user, ts:int);
             P = load '/power' as (name);
             C = cogroup A by user, P by name;
             D = filter C by STRLEN(P) == 0;
             E = foreach D generate FLATTEN(A);
             store E into '/out/anti';",
        );
        assert_eq!(read_sorted(eng.dfs(), "/out/anti"), vec![tuple!["bob", 2]]);
    }

    #[test]
    fn stored_group_output_round_trips_through_dfs() {
        // Group output (bags!) must survive Store + Load — the mechanism
        // ReStore relies on to reuse Group sub-jobs.
        let eng = test_engine();
        write(eng.dfs(), "/d", &[tuple!["a", 1], tuple!["a", 2], tuple!["b", 5]]);
        run_query(
            &eng,
            "A = load '/d' as (u, v:int);
             G = group A by u;
             store G into '/out/grouped';",
        );
        // Now aggregate from the stored grouped data (map-only job!).
        let wf = compile(
            "G = load '/out/grouped' as (grp, bags:bag);
             S = foreach G generate grp, SUM($1);
             store S into '/out/sums';",
            "/tmpwf2",
        );
        // SUM($1) needs bag-field syntax; use the aggregate path instead.
        drop(wf);
        run_query(
            &eng,
            "G = load '/out/grouped' as (grp, A:bag);
             S = foreach G generate grp, COUNT(A);
             store S into '/out/counts';",
        );
        assert_eq!(read_sorted(eng.dfs(), "/out/counts"), vec![tuple!["a", 2], tuple!["b", 1]]);
    }

    #[test]
    fn self_join_fan_out() {
        let eng = test_engine();
        write(eng.dfs(), "/d", &[tuple!["a", "b"], tuple!["b", "c"]]);
        run_query(
            &eng,
            "A = load '/d' as (x, y);
             L = foreach A generate x;
             R = foreach A generate y;
             J = join L by x, R by y;
             store J into '/out/self';",
        );
        // 'b' appears as x in row 2 and as y in row 1.
        assert_eq!(read_sorted(eng.dfs(), "/out/self"), vec![tuple!["b", "b"]]);
    }

    #[test]
    fn filtered_scan_map_only() {
        let eng = test_engine();
        write(eng.dfs(), "/d", &[tuple![1, "a"], tuple![5, "b"], tuple![9, "c"]]);
        run_query(
            &eng,
            "A = load '/d' as (n:int, s);
             B = filter A by n >= 5;
             store B into '/out/f';",
        );
        assert_eq!(read_sorted(eng.dfs(), "/out/f"), vec![tuple![5, "b"], tuple![9, "c"]]);
    }

    #[test]
    fn job_io_identifies_main_and_side_stores() {
        let mut plan = PhysicalPlan::new();
        let l = plan.add(PhysicalOp::Load { path: "/in".into() }, vec![]);
        let split = plan.add(PhysicalOp::Split, vec![l]);
        let _side = plan.add(PhysicalOp::Store { path: "/side".into() }, vec![split]);
        let g = plan.add(PhysicalOp::Group { keys: vec![0] }, vec![split]);
        let _main = plan.add(PhysicalOp::Store { path: "/main".into() }, vec![g]);
        let io = job_io(&plan).unwrap();
        assert_eq!(io.main_output, "/main");
        assert_eq!(io.side_outputs, vec!["/side".to_string()]);
        assert_eq!(io.inputs, vec!["/in".to_string()]);
    }

    #[test]
    fn side_store_in_map_phase_of_shuffle_job() {
        // Load -> Split -> (Store side, Group -> Store main): the ReStore
        // sub-job materialization shape.
        let eng = test_engine();
        write(eng.dfs(), "/d", &[tuple!["a", 1], tuple!["b", 2]]);
        let mut plan = PhysicalPlan::new();
        let l = plan.add(PhysicalOp::Load { path: "/d".into() }, vec![]);
        let p = plan.add(PhysicalOp::Project { cols: vec![0] }, vec![l]);
        let split = plan.add(PhysicalOp::Split, vec![p]);
        let _side = plan.add(PhysicalOp::Store { path: "/side/proj".into() }, vec![split]);
        let g = plan.add(PhysicalOp::Group { keys: vec![0] }, vec![split]);
        let agg = plan.add(
            PhysicalOp::Aggregate {
                items: vec![
                    AggItem::Key(0),
                    AggItem::Agg { func: crate::expr::AggFunc::Count, bag_col: 1, field: None },
                ],
            },
            vec![g],
        );
        let _main = plan.add(PhysicalOp::Store { path: "/out/main".into() }, vec![agg]);
        let spec = job_spec_for_plan(&plan, "side-test").unwrap();
        let res = eng.run(&spec).unwrap();
        assert_eq!(res.counters.side_output_bytes.len(), 1);
        assert!(res.counters.map_side_bytes > 0);
        assert_eq!(read_sorted(eng.dfs(), "/side/proj"), vec![tuple!["a"], tuple!["b"]]);
        assert_eq!(read_sorted(eng.dfs(), "/out/main"), vec![tuple!["a", 1], tuple!["b", 1]]);
    }
}
