//! Physical operator plans — the currency of ReStore.
//!
//! A [`PhysicalPlan`] is an arena-allocated DAG of [`PhysicalOp`]s. Leaves
//! are `Load` operators, roots are `Store` operators. A whole query lowers
//! to one plan; the MR compiler segments it into per-job plans; ReStore's
//! repository stores per-job plans; the matcher tests containment between
//! them; the rewriter splices `Load`s of stored outputs into them; and the
//! sub-job enumerator injects `Split`+`Store` pairs into them.
//!
//! Operator parameters implement `Eq + Hash`, giving the paper's operator
//! equivalence ("perform functions that produce the same output data")
//! a structural definition, and enabling Merkle-style plan signatures used
//! to deduplicate repository entries.

use crate::expr::{AggFunc, Expr};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Index of a node within its plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One output field of an [`PhysicalOp::Aggregate`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AggItem {
    /// Pass through an input column (typically the group key).
    Key(usize),
    /// Apply an aggregate to field `field` of the bag at `bag_col`
    /// (`field = None` is COUNT(*) over the bag).
    Agg { func: AggFunc, bag_col: usize, field: Option<usize> },
}

/// Physical operators. The set mirrors Pig's: "Each language has a fixed
/// set of physical operators such as Filter, Select, and Join" (§1).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PhysicalOp {
    /// Read a dataset from the DFS. Leaf.
    Load { path: String },
    /// Write the input to the DFS. Root (no consumers).
    Store { path: String },
    /// Keep the listed columns, in order.
    Project { cols: Vec<usize> },
    /// Generalized FOREACH: one output column per expression.
    MapExpr { exprs: Vec<Expr> },
    /// Keep rows whose predicate is truthy.
    Filter { pred: Expr },
    /// Inner equi-join of n inputs; `keys[i]` are key columns of input i.
    /// Output rows concatenate the fields of all inputs in input order.
    Join { keys: Vec<Vec<usize>> },
    /// Group a single input by key columns (empty = GROUP ALL). Output:
    /// (key..., bag) — or ("all", bag) for GROUP ALL.
    Group { keys: Vec<usize> },
    /// Co-group n inputs; output: (key..., bag_0, ..., bag_{n-1}).
    CoGroup { keys: Vec<Vec<usize>> },
    /// Aggregate over grouped rows (input rows carry bags).
    Aggregate { items: Vec<AggItem> },
    /// One output row per tuple in the bag at `bag_col`; the bag column is
    /// replaced by the flattened tuple's fields.
    Flatten { bag_col: usize },
    /// Remove duplicate rows.
    Distinct,
    /// Concatenate inputs (schemas must align).
    Union,
    /// Global sort by (column, ascending) keys.
    OrderBy { keys: Vec<(usize, bool)> },
    /// Keep the first `n` rows.
    Limit { n: u64 },
    /// Tee: pass rows through to every consumer (used to feed injected
    /// Store operators, like Pig's Split).
    Split,
}

impl PhysicalOp {
    /// Operators that force a map/reduce boundary (they need the shuffle).
    pub fn is_blocking(&self) -> bool {
        matches!(
            self,
            PhysicalOp::Join { .. }
                | PhysicalOp::Group { .. }
                | PhysicalOp::CoGroup { .. }
                | PhysicalOp::Distinct
                | PhysicalOp::OrderBy { .. }
                | PhysicalOp::Limit { .. }
        )
    }

    /// Short operator name for display and signatures.
    pub fn name(&self) -> &'static str {
        match self {
            PhysicalOp::Load { .. } => "Load",
            PhysicalOp::Store { .. } => "Store",
            PhysicalOp::Project { .. } => "Project",
            PhysicalOp::MapExpr { .. } => "MapExpr",
            PhysicalOp::Filter { .. } => "Filter",
            PhysicalOp::Join { .. } => "Join",
            PhysicalOp::Group { .. } => "Group",
            PhysicalOp::CoGroup { .. } => "CoGroup",
            PhysicalOp::Aggregate { .. } => "Aggregate",
            PhysicalOp::Flatten { .. } => "Flatten",
            PhysicalOp::Distinct => "Distinct",
            PhysicalOp::Union => "Union",
            PhysicalOp::OrderBy { .. } => "OrderBy",
            PhysicalOp::Limit { .. } => "Limit",
            PhysicalOp::Split => "Split",
        }
    }

    /// Per-record CPU weight for the cost model's `Σ ET(op_i)` term.
    pub fn cost_weight(&self) -> f64 {
        match self {
            PhysicalOp::Load { .. } | PhysicalOp::Store { .. } => 0.0,
            PhysicalOp::Project { cols } => 0.1 + 0.02 * cols.len() as f64,
            PhysicalOp::MapExpr { exprs } => {
                0.1 + exprs.iter().map(|e| e.cost_weight()).sum::<f64>()
            }
            PhysicalOp::Filter { pred } => 0.1 + pred.cost_weight(),
            PhysicalOp::Join { keys } => 1.5 + 0.5 * keys.len() as f64,
            PhysicalOp::Group { .. } => 1.5,
            PhysicalOp::CoGroup { keys } => 1.2 + 0.4 * keys.len() as f64,
            PhysicalOp::Aggregate { items } => 0.4 + 0.1 * items.len() as f64,
            PhysicalOp::Flatten { .. } => 0.3,
            PhysicalOp::Distinct => 1.0,
            PhysicalOp::Union => 0.05,
            PhysicalOp::OrderBy { .. } => 1.5,
            PhysicalOp::Limit { .. } => 0.05,
            PhysicalOp::Split => 0.05,
        }
    }
}

/// A node: operator plus ordered input edges.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysicalNode {
    pub op: PhysicalOp,
    pub inputs: Vec<NodeId>,
}

/// An arena DAG of physical operators.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhysicalPlan {
    nodes: Vec<PhysicalNode>,
}

impl PhysicalPlan {
    pub fn new() -> Self {
        PhysicalPlan::default()
    }

    /// Add a node, returning its id.
    pub fn add(&mut self, op: PhysicalOp, inputs: Vec<NodeId>) -> NodeId {
        for i in &inputs {
            assert!(i.index() < self.nodes.len(), "input {i:?} out of range");
        }
        self.nodes.push(PhysicalNode { op, inputs });
        NodeId(self.nodes.len() as u32 - 1)
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    pub fn node(&self, id: NodeId) -> &PhysicalNode {
        &self.nodes[id.index()]
    }

    pub fn node_mut(&mut self, id: NodeId) -> &mut PhysicalNode {
        &mut self.nodes[id.index()]
    }

    pub fn op(&self, id: NodeId) -> &PhysicalOp {
        &self.nodes[id.index()].op
    }

    pub fn inputs(&self, id: NodeId) -> &[NodeId] {
        &self.nodes[id.index()].inputs
    }

    /// All node ids.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Nodes consuming `id`'s output, in id order.
    pub fn consumers(&self, id: NodeId) -> Vec<NodeId> {
        self.ids().filter(|&n| self.nodes[n.index()].inputs.contains(&id)).collect()
    }

    /// All Load nodes, in id order.
    pub fn loads(&self) -> Vec<NodeId> {
        self.ids().filter(|&n| matches!(self.op(n), PhysicalOp::Load { .. })).collect()
    }

    /// All Store nodes, in id order.
    pub fn stores(&self) -> Vec<NodeId> {
        self.ids().filter(|&n| matches!(self.op(n), PhysicalOp::Store { .. })).collect()
    }

    /// Topological order (inputs before consumers). The arena is built
    /// bottom-up so ids are already topological, but rewrites can disturb
    /// that; this recomputes properly.
    pub fn topo_order(&self) -> Vec<NodeId> {
        let n = self.nodes.len();
        let mut remaining_inputs: Vec<usize> =
            self.nodes.iter().map(|nd| nd.inputs.len()).collect();
        let mut ready: Vec<NodeId> =
            (0..n as u32).map(NodeId).filter(|id| remaining_inputs[id.index()] == 0).collect();
        ready.reverse(); // pop from the low end first
        let mut order = Vec::with_capacity(n);
        while let Some(id) = ready.pop() {
            order.push(id);
            for c in self.consumers(id) {
                // A consumer can reference the same input in several
                // positions (e.g. `union A, A`); decrement per edge.
                let multiplicity = self.inputs(c).iter().filter(|&&i| i == id).count();
                remaining_inputs[c.index()] -= multiplicity;
                if remaining_inputs[c.index()] == 0 {
                    ready.push(c);
                    ready.sort_by(|a, b| b.cmp(a));
                }
            }
        }
        debug_assert_eq!(order.len(), n, "plan contains a cycle");
        order
    }

    /// Ancestors of `id` (nodes it transitively reads), excluding `id`.
    pub fn ancestors(&self, id: NodeId) -> Vec<NodeId> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = self.inputs(id).to_vec();
        let mut out = Vec::new();
        while let Some(n) = stack.pop() {
            if seen[n.index()] {
                continue;
            }
            seen[n.index()] = true;
            out.push(n);
            stack.extend_from_slice(self.inputs(n));
        }
        out.sort();
        out
    }

    /// Extract the sub-plan consisting of `id` and all its ancestors, with
    /// a fresh `Store{store_path}` appended as root. This is the paper's
    /// candidate sub-job `J_P` for operator `P = id` (§4). `Split` nodes
    /// that would become pass-through stubs are elided.
    pub fn prefix_plan(&self, id: NodeId, store_path: &str) -> PhysicalPlan {
        let mut in_cone = vec![false; self.nodes.len()];
        for a in self.ancestors(id) {
            in_cone[a.index()] = true;
        }
        in_cone[id.index()] = true;
        // Rewrites insert nodes out of id order, so walk topologically.
        let keep: Vec<NodeId> =
            self.topo_order().into_iter().filter(|n| in_cone[n.index()]).collect();
        let mut out = PhysicalPlan::new();
        let mut remap: Vec<Option<NodeId>> = vec![None; self.nodes.len()];
        for old in keep {
            let node = &self.nodes[old.index()];
            // A Split inside a prefix has exactly one surviving consumer
            // path; elide it by aliasing to its input.
            if matches!(node.op, PhysicalOp::Split) {
                remap[old.index()] = remap[node.inputs[0].index()];
                continue;
            }
            let inputs: Vec<NodeId> = node
                .inputs
                .iter()
                .map(|i| remap[i.index()].expect("ancestors precede node"))
                .collect();
            let new_id = out.add(node.op.clone(), inputs);
            remap[old.index()] = Some(new_id);
        }
        let tip = remap[id.index()].expect("id was kept");
        out.add(PhysicalOp::Store { path: store_path.to_string() }, vec![tip]);
        out
    }

    /// Drop nodes not reachable (as an ancestor) from any Store. Returns
    /// the mapping old-id → new-id. Used after rewrites.
    pub fn gc(&mut self) -> Vec<Option<NodeId>> {
        let mut live = vec![false; self.nodes.len()];
        for s in self.stores() {
            live[s.index()] = true;
            for a in self.ancestors(s) {
                live[a.index()] = true;
            }
        }
        let mut out = PhysicalPlan::new();
        let mut remap: Vec<Option<NodeId>> = vec![None; self.nodes.len()];
        for id in self.topo_order() {
            if !live[id.index()] {
                continue;
            }
            let node = &self.nodes[id.index()];
            let inputs: Vec<NodeId> = node
                .inputs
                .iter()
                .map(|i| remap[i.index()].expect("live inputs precede"))
                .collect();
            remap[id.index()] = Some(out.add(node.op.clone(), inputs));
        }
        *self = out;
        remap
    }

    /// Merkle-style signature of the sub-DAG rooted at `id`: hashes the
    /// operator (Store paths excluded — materialization location does not
    /// change what is computed) and the signatures of its inputs.
    pub fn node_signature(&self, id: NodeId) -> u64 {
        let mut memo = vec![None; self.nodes.len()];
        self.node_signature_memo(id, &mut memo)
    }

    fn node_signature_memo(&self, id: NodeId, memo: &mut Vec<Option<u64>>) -> u64 {
        if let Some(sig) = memo[id.index()] {
            return sig;
        }
        let node = &self.nodes[id.index()];
        let mut h = DefaultHasher::new();
        match &node.op {
            // Store is a materialization point: its path is irrelevant to
            // plan identity. Split is a transparent tee.
            PhysicalOp::Store { .. } => "Store".hash(&mut h),
            PhysicalOp::Split => "Split".hash(&mut h),
            other => other.hash(&mut h),
        }
        for &i in &node.inputs {
            self.node_signature_memo(i, memo).hash(&mut h);
        }
        let sig = h.finish();
        memo[id.index()] = Some(sig);
        sig
    }

    /// Signature of the whole plan: combined signatures of its Stores
    /// (order-independent XOR so Store enumeration order is irrelevant).
    pub fn signature(&self) -> u64 {
        let mut memo = vec![None; self.nodes.len()];
        self.stores()
            .into_iter()
            .map(|s| self.node_signature_memo(s, &mut memo))
            .fold(0u64, |acc, s| acc ^ s)
    }

    /// Combined per-record cost weight of map-side vs reduce-side work is
    /// computed by the MR compiler; this helper sums all operator weights
    /// (used for repository ordering heuristics).
    pub fn total_cost_weight(&self) -> f64 {
        self.nodes.iter().map(|n| n.op.cost_weight()).sum()
    }

    /// Number of operators excluding Store/Split bookkeeping nodes.
    pub fn effective_len(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| !matches!(n.op, PhysicalOp::Store { .. } | PhysicalOp::Split))
            .count()
    }

    /// Human-readable plan listing (topological).
    pub fn explain(&self) -> String {
        let mut out = String::new();
        for id in self.topo_order() {
            let node = &self.nodes[id.index()];
            let ins: Vec<String> = node.inputs.iter().map(|i| format!("%{}", i.0)).collect();
            out.push_str(&format!(
                "%{} = {}{}{}\n",
                id.0,
                node.op.name(),
                match &node.op {
                    PhysicalOp::Load { path } | PhysicalOp::Store { path } => format!("('{path}')"),
                    PhysicalOp::Project { cols } => format!("({cols:?})"),
                    PhysicalOp::Filter { pred } => format!("({pred:?})"),
                    PhysicalOp::MapExpr { exprs } => format!("({exprs:?})"),
                    PhysicalOp::Join { keys } | PhysicalOp::CoGroup { keys } =>
                        format!("({keys:?})"),
                    PhysicalOp::Group { keys } => format!("({keys:?})"),
                    PhysicalOp::Aggregate { items } => format!("({items:?})"),
                    PhysicalOp::Flatten { bag_col } => format!("({bag_col})"),
                    PhysicalOp::OrderBy { keys } => format!("({keys:?})"),
                    PhysicalOp::Limit { n } => format!("({n})"),
                    _ => String::new(),
                },
                if ins.is_empty() { String::new() } else { format!(" <- [{}]", ins.join(", ")) }
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Load -> Project -> Filter -> Store with a Split tee to a side
    /// Store after Project.
    fn sample() -> (PhysicalPlan, NodeId, NodeId, NodeId) {
        let mut p = PhysicalPlan::new();
        let load = p.add(PhysicalOp::Load { path: "/data".into() }, vec![]);
        let proj = p.add(PhysicalOp::Project { cols: vec![0, 2] }, vec![load]);
        let split = p.add(PhysicalOp::Split, vec![proj]);
        let _side = p.add(PhysicalOp::Store { path: "/side".into() }, vec![split]);
        let filt = p.add(PhysicalOp::Filter { pred: Expr::col_eq(0, 1i64) }, vec![split]);
        let _store = p.add(PhysicalOp::Store { path: "/out".into() }, vec![filt]);
        (p, load, proj, filt)
    }

    #[test]
    fn consumers_and_loads_stores() {
        let (p, load, proj, _) = sample();
        assert_eq!(p.consumers(load), vec![proj]);
        assert_eq!(p.loads(), vec![load]);
        assert_eq!(p.stores().len(), 2);
    }

    #[test]
    fn topo_order_respects_edges() {
        let (p, ..) = sample();
        let order = p.topo_order();
        let pos = |id: NodeId| order.iter().position(|&x| x == id).unwrap();
        for id in p.ids() {
            for &i in p.inputs(id) {
                assert!(pos(i) < pos(id), "{i:?} before {id:?}");
            }
        }
    }

    #[test]
    fn topo_order_handles_duplicate_edges() {
        // `union A, A`: one producer feeding two input positions.
        let mut p = PhysicalPlan::new();
        let l = p.add(PhysicalOp::Load { path: "/d".into() }, vec![]);
        let u = p.add(PhysicalOp::Union, vec![l, l]);
        let s = p.add(PhysicalOp::Store { path: "/o".into() }, vec![u]);
        assert_eq!(p.topo_order(), vec![l, u, s]);
        // Self-join shape: two distinct branches from one load.
        let mut q = PhysicalPlan::new();
        let l = q.add(PhysicalOp::Load { path: "/d".into() }, vec![]);
        let j = q.add(PhysicalOp::Join { keys: vec![vec![0], vec![1]] }, vec![l, l]);
        q.add(PhysicalOp::Store { path: "/o".into() }, vec![j]);
        assert_eq!(q.topo_order().len(), 3);
    }

    #[test]
    fn ancestors_are_transitive() {
        let (p, load, proj, filt) = sample();
        let anc = p.ancestors(filt);
        assert!(anc.contains(&load));
        assert!(anc.contains(&proj));
        assert!(!anc.contains(&filt));
    }

    #[test]
    fn prefix_plan_extracts_subjob() {
        let (p, _, proj, _) = sample();
        let sub = p.prefix_plan(proj, "/repo/1");
        // Load -> Project -> Store; the Split was elided.
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.stores().len(), 1);
        let store = sub.stores()[0];
        assert!(matches!(sub.op(store), PhysicalOp::Store { path } if path == "/repo/1"));
        let tip = sub.inputs(store)[0];
        assert!(matches!(sub.op(tip), PhysicalOp::Project { .. }));
    }

    #[test]
    fn prefix_plan_through_split_keeps_semantics() {
        let (p, _, _, filt) = sample();
        let sub = p.prefix_plan(filt, "/repo/2");
        // Load -> Project -> Filter -> Store (Split elided, side Store not
        // part of the ancestor cone).
        assert_eq!(sub.len(), 4);
        assert!(sub.ids().all(|id| !matches!(sub.op(id), PhysicalOp::Split)));
    }

    #[test]
    fn signature_ignores_store_path() {
        let mk = |out: &str| {
            let mut p = PhysicalPlan::new();
            let l = p.add(PhysicalOp::Load { path: "/d".into() }, vec![]);
            let f = p.add(PhysicalOp::Filter { pred: Expr::col_eq(1, "x") }, vec![l]);
            p.add(PhysicalOp::Store { path: out.into() }, vec![f]);
            p
        };
        assert_eq!(mk("/a").signature(), mk("/b").signature());
    }

    #[test]
    fn signature_sensitive_to_ops_and_paths() {
        let mk = |load: &str, col: usize| {
            let mut p = PhysicalPlan::new();
            let l = p.add(PhysicalOp::Load { path: load.into() }, vec![]);
            let f = p.add(PhysicalOp::Project { cols: vec![col] }, vec![l]);
            p.add(PhysicalOp::Store { path: "/o".into() }, vec![f]);
            p
        };
        assert_eq!(mk("/d", 0).signature(), mk("/d", 0).signature());
        assert_ne!(mk("/d", 0).signature(), mk("/d", 1).signature());
        assert_ne!(mk("/d", 0).signature(), mk("/e", 0).signature());
    }

    #[test]
    fn gc_removes_unreachable() {
        let (mut p, ..) = sample();
        // Add an orphan chain not connected to any Store.
        let orphan_load = p.add(PhysicalOp::Load { path: "/x".into() }, vec![]);
        let _orphan = p.add(PhysicalOp::Distinct, vec![orphan_load]);
        let before = p.len();
        p.gc();
        assert_eq!(p.len(), before - 2);
        assert_eq!(p.stores().len(), 2);
    }

    #[test]
    fn blocking_classification() {
        assert!(PhysicalOp::Join { keys: vec![] }.is_blocking());
        assert!(PhysicalOp::Group { keys: vec![] }.is_blocking());
        assert!(PhysicalOp::Distinct.is_blocking());
        assert!(!PhysicalOp::Filter { pred: Expr::col(0) }.is_blocking());
        assert!(!PhysicalOp::Union.is_blocking());
        assert!(!PhysicalOp::Split.is_blocking());
    }

    #[test]
    fn explain_lists_all_nodes() {
        let (p, ..) = sample();
        let text = p.explain();
        assert!(text.contains("Load('/data')"));
        assert!(text.contains("Project"));
        assert!(text.contains("Store('/out')"));
        assert_eq!(text.lines().count(), p.len());
    }

    #[test]
    fn effective_len_skips_bookkeeping() {
        let (p, ..) = sample();
        // 6 nodes total, minus 2 Stores and 1 Split.
        assert_eq!(p.effective_len(), 3);
    }
}
