//! Pig-Latin-subset dataflow system.
//!
//! Reproduces the compiler stack §6.1 of the paper describes for Pig 0.8:
//!
//! 1. [`parser`] — syntactic check of the query text into an AST;
//! 2. [`logical`] — alias resolution into a logical plan DAG with schemas;
//! 3. [`optimizer`] — rule-based logical rewrites;
//! 4. [`lower`] — lowering to a [`physical`] operator DAG;
//! 5. [`mr_compiler`] — segmentation into a workflow of MapReduce jobs at
//!    blocking operators (Join/Group/CoGroup/Distinct/Order), each job
//!    carrying its own physical plan;
//! 6. [`exec`] — plan-driven `Mapper`/`Reducer` implementations so the
//!    `restore-mapreduce` engine can run compiled jobs.
//!
//! The **physical plan of a MapReduce job** ([`physical::PhysicalPlan`])
//! is the currency of the whole reproduction: ReStore's matcher,
//! rewriter, and sub-job enumerator in `restore-core` all operate on it,
//! exactly as the paper prescribes ("matching, sub-job enumeration, and
//! enumerated sub-job selection are based on physical plans").

pub mod ast;
pub mod dot;
pub mod exec;
pub mod expr;
pub mod lexer;
pub mod logical;
pub mod lower;
pub mod mr_compiler;
pub mod optimizer;
pub mod parser;
pub mod physical;

pub use expr::{AggFunc, CmpOp, Expr, ScalarFunc};
pub use logical::LogicalPlan;
pub use mr_compiler::{CompiledJob, CompiledWorkflow, WorkflowIoPaths};
pub use physical::{NodeId, PhysicalOp, PhysicalPlan};

use restore_common::Result;

/// Compile query text all the way to a workflow of MapReduce jobs.
///
/// `out_prefix` namespaces the temporary files created at job boundaries
/// so concurrent queries do not collide.
///
/// ```
/// // The paper's Q2 splits into two jobs at the Group operator.
/// let wf = restore_dataflow::compile(
///     "A = load '/pv' as (user, rev:double);
///      U = load '/users' as (name);
///      C = join U by name, A by user;
///      G = group C by $0;
///      S = foreach G generate group, SUM(C.rev);
///      store S into '/out';",
///     "/wf/q2",
/// ).unwrap();
/// assert_eq!(wf.jobs.len(), 2);
/// assert_eq!(wf.jobs[1].deps, vec![0]); // group job waits for the join
/// ```
pub fn compile(query: &str, out_prefix: &str) -> Result<CompiledWorkflow> {
    let program = parser::parse(query)?;
    let logical = logical::LogicalPlan::from_ast(&program)?;
    let logical = optimizer::optimize(logical);
    let physical = lower::lower(&logical)?;
    mr_compiler::compile_plan(&physical, out_prefix)
}
