//! Pig-Latin-subset dataflow system.
//!
//! Reproduces the compiler stack §6.1 of the paper describes for Pig 0.8:
//!
//! 1. [`parser`] — syntactic check of the query text into an AST;
//! 2. [`logical`] — alias resolution into a logical plan DAG with schemas;
//! 3. [`optimizer`] — rule-based logical rewrites;
//! 4. [`lower`] — lowering to a [`physical`] operator DAG;
//! 5. [`mr_compiler`] — segmentation into a workflow of MapReduce jobs at
//!    blocking operators (Join/Group/CoGroup/Distinct/Order), each job
//!    carrying its own physical plan;
//! 6. [`exec`] — plan-driven `Mapper`/`Reducer` implementations so the
//!    `restore-mapreduce` engine can run compiled jobs.
//!
//! The **physical plan of a MapReduce job** ([`physical::PhysicalPlan`])
//! is the currency of the whole reproduction: ReStore's matcher,
//! rewriter, and sub-job enumerator in `restore-core` all operate on it,
//! exactly as the paper prescribes ("matching, sub-job enumeration, and
//! enumerated sub-job selection are based on physical plans").

pub mod analyzer;
pub mod ast;
pub mod dot;
pub mod exec;
pub mod expr;
pub mod lexer;
pub mod logical;
pub mod lower;
pub mod mr_compiler;
pub mod optimizer;
pub mod parser;
pub mod physical;

pub use expr::{AggFunc, CmpOp, Expr, ScalarFunc};
pub use logical::LogicalPlan;
pub use mr_compiler::{CompiledJob, CompiledWorkflow, WorkflowIoPaths};
pub use physical::{NodeId, PhysicalOp, PhysicalPlan};

use restore_common::Result;

/// Compile query text all the way to a workflow of MapReduce jobs.
///
/// `out_prefix` namespaces the temporary files created at job boundaries
/// so concurrent queries do not collide.
///
/// ```
/// // The paper's Q2 splits into two jobs at the Group operator.
/// let wf = restore_dataflow::compile(
///     "A = load '/pv' as (user, rev:double);
///      U = load '/users' as (name);
///      C = join U by name, A by user;
///      G = group C by $0;
///      S = foreach G generate group, SUM(C.rev);
///      store S into '/out';",
///     "/wf/q2",
/// ).unwrap();
/// assert_eq!(wf.jobs.len(), 2);
/// assert_eq!(wf.jobs[1].deps, vec![0]); // group job waits for the join
/// ```
pub fn compile(query: &str, out_prefix: &str) -> Result<CompiledWorkflow> {
    let program = parser::parse(query)?;
    let logical = logical::LogicalPlan::from_ast(&program)?;
    let logical = optimizer::optimize(logical);
    let physical = lower::lower(&logical)?;
    mr_compiler::compile_plan(&physical, out_prefix)
}

/// Like [`compile`], but run the [`analyzer`]'s canonicalization passes
/// over the lowered plan before segmenting it into jobs, so
/// semantically-equal paraphrases compile to the same workflow. Also
/// returns the per-pass wall time, in [`analyzer::PASS_NAMES`] order,
/// for the driver's `restore_canon_stage_seconds` telemetry.
///
/// ```
/// // A filter chain and the equivalent single conjunction compile to
/// // workflows with identical plan signatures once canonicalized.
/// let chain = "A = load '/pv' as (user, rev);
///              B = filter A by rev > 10;
///              C = filter B by user == 'u1';
///              store C into '/out';";
/// let conj = "A = load '/pv' as (user, rev);
///             C = filter A by user == 'u1' and rev > 10;
///             store C into '/out';";
/// let (a, _) = restore_dataflow::compile_canonical(chain, "/wf/a").unwrap();
/// let (b, _) = restore_dataflow::compile_canonical(conj, "/wf/b").unwrap();
/// assert_eq!(a.jobs[0].plan.signature(), b.jobs[0].plan.signature());
/// ```
pub fn compile_canonical(
    query: &str,
    out_prefix: &str,
) -> Result<(CompiledWorkflow, [(&'static str, std::time::Duration); 3])> {
    let program = parser::parse(query)?;
    let logical = logical::LogicalPlan::from_ast(&program)?;
    let logical = optimizer::optimize(logical);
    let mut physical = lower::lower(&logical)?;
    let timings = analyzer::canonicalize_timed(&mut physical);
    let wf = mr_compiler::compile_plan(&physical, out_prefix)?;
    Ok((wf, timings))
}
