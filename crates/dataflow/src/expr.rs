//! Runtime expressions: name-resolved, evaluable over tuples.
//!
//! Expressions appear inside physical operators (Filter predicates,
//! ForEach projections, aggregate specifications), so they implement
//! `Eq + Hash` — ReStore's operator-equivalence test ("they perform
//! functions that produce the same output data") compares them
//! structurally.

use restore_common::{Error, Result, Tuple, Value};

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

/// Scalar (per-row) functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarFunc {
    Round,
    Floor,
    Ceil,
    Abs,
    Upper,
    Lower,
    Strlen,
    Concat,
    /// SUBSTRING(str, start, len) — clamped, zero-based.
    Substring,
    /// TRIM(str) — strip ASCII whitespace.
    Trim,
    /// STARTSWITH(str, prefix) — boolean (0/1).
    StartsWith,
}

impl ScalarFunc {
    pub fn parse(name: &str) -> Option<ScalarFunc> {
        match name.to_ascii_uppercase().as_str() {
            "ROUND" => Some(ScalarFunc::Round),
            "FLOOR" => Some(ScalarFunc::Floor),
            "CEIL" => Some(ScalarFunc::Ceil),
            "ABS" => Some(ScalarFunc::Abs),
            "UPPER" => Some(ScalarFunc::Upper),
            "LOWER" => Some(ScalarFunc::Lower),
            "STRLEN" | "SIZE" => Some(ScalarFunc::Strlen),
            "CONCAT" => Some(ScalarFunc::Concat),
            "SUBSTRING" => Some(ScalarFunc::Substring),
            "TRIM" => Some(ScalarFunc::Trim),
            "STARTSWITH" => Some(ScalarFunc::StartsWith),
            _ => None,
        }
    }
}

/// Aggregate functions over a bag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
    /// Count of distinct values of a bag field — stands in for PigMix's
    /// nested `DISTINCT` + `COUNT` foreach bodies (L4/L5).
    CountDistinct,
}

impl AggFunc {
    pub fn parse(name: &str) -> Option<AggFunc> {
        match name.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggFunc::Count),
            "SUM" => Some(AggFunc::Sum),
            "AVG" => Some(AggFunc::Avg),
            "MIN" => Some(AggFunc::Min),
            "MAX" => Some(AggFunc::Max),
            "COUNT_DISTINCT" => Some(AggFunc::CountDistinct),
            _ => None,
        }
    }

    /// Apply the aggregate to one column of a bag of tuples.
    /// `col = None` means COUNT(*) semantics (count tuples).
    pub fn apply(&self, bag: &[Tuple], col: Option<usize>) -> Value {
        match self {
            AggFunc::Count => match col {
                None => Value::Int(bag.len() as i64),
                Some(c) => Value::Int(bag.iter().filter(|t| !t.get(c).is_null()).count() as i64),
            },
            AggFunc::CountDistinct => {
                let c = col.unwrap_or(0);
                let mut seen: Vec<&Value> =
                    bag.iter().map(|t| t.get(c)).filter(|v| !v.is_null()).collect();
                seen.sort();
                seen.dedup();
                Value::Int(seen.len() as i64)
            }
            AggFunc::Sum => {
                let c = col.unwrap_or(0);
                let mut acc = 0.0f64;
                let mut any = false;
                let mut all_int = true;
                for t in bag {
                    if let Some(x) = t.get(c).as_f64() {
                        if !matches!(t.get(c), Value::Int(_)) {
                            all_int = false;
                        }
                        acc += x;
                        any = true;
                    }
                }
                if !any {
                    Value::Null
                } else if all_int {
                    Value::Int(acc as i64)
                } else {
                    Value::Double(acc)
                }
            }
            AggFunc::Avg => {
                let c = col.unwrap_or(0);
                let vals: Vec<f64> = bag.iter().filter_map(|t| t.get(c).as_f64()).collect();
                if vals.is_empty() {
                    Value::Null
                } else {
                    Value::Double(vals.iter().sum::<f64>() / vals.len() as f64)
                }
            }
            AggFunc::Min => {
                let c = col.unwrap_or(0);
                bag.iter()
                    .map(|t| t.get(c))
                    .filter(|v| !v.is_null())
                    .min()
                    .cloned()
                    .unwrap_or(Value::Null)
            }
            AggFunc::Max => {
                let c = col.unwrap_or(0);
                bag.iter()
                    .map(|t| t.get(c))
                    .filter(|v| !v.is_null())
                    .max()
                    .cloned()
                    .unwrap_or(Value::Null)
            }
        }
    }
}

/// A name-resolved scalar expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Input column by position.
    Col(usize),
    /// Literal.
    Lit(Value),
    Arith(Box<Expr>, ArithOp, Box<Expr>),
    Cmp(Box<Expr>, CmpOp, Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Not(Box<Expr>),
    Neg(Box<Expr>),
    /// `IS NULL` (true) / `IS NOT NULL` (false).
    IsNull(Box<Expr>, bool),
    Func(ScalarFunc, Vec<Expr>),
}

impl Expr {
    /// Shorthand: column reference.
    pub fn col(i: usize) -> Expr {
        Expr::Col(i)
    }

    /// Shorthand: equality between a column and a literal.
    pub fn col_eq(i: usize, v: impl Into<Value>) -> Expr {
        Expr::Cmp(Box::new(Expr::Col(i)), CmpOp::Eq, Box::new(Expr::Lit(v.into())))
    }

    /// Evaluate over a tuple.
    pub fn eval(&self, t: &Tuple) -> Result<Value> {
        match self {
            Expr::Col(i) => Ok(t.get(*i).clone()),
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Neg(e) => match e.eval(t)? {
                Value::Int(i) => Ok(Value::Int(-i)),
                Value::Double(d) => Ok(Value::Double(-d)),
                Value::Null => Ok(Value::Null),
                other => Err(Error::Eval(format!("cannot negate {other:?}"))),
            },
            Expr::Not(e) => Ok(Value::Int(!e.eval(t)?.is_truthy() as i64)),
            Expr::And(a, b) => {
                Ok(Value::Int((a.eval(t)?.is_truthy() && b.eval(t)?.is_truthy()) as i64))
            }
            Expr::Or(a, b) => {
                Ok(Value::Int((a.eval(t)?.is_truthy() || b.eval(t)?.is_truthy()) as i64))
            }
            Expr::IsNull(e, want_null) => {
                Ok(Value::Int((e.eval(t)?.is_null() == *want_null) as i64))
            }
            Expr::Cmp(a, op, b) => {
                let (a, b) = (a.eval(t)?, b.eval(t)?);
                // SQL-ish null semantics: comparisons against null are false.
                if a.is_null() || b.is_null() {
                    return Ok(Value::Int(0));
                }
                let r = match op {
                    CmpOp::Eq => a == b,
                    CmpOp::Neq => a != b,
                    CmpOp::Lt => a < b,
                    CmpOp::Le => a <= b,
                    CmpOp::Gt => a > b,
                    CmpOp::Ge => a >= b,
                };
                Ok(Value::Int(r as i64))
            }
            Expr::Arith(a, op, b) => {
                let (av, bv) = (a.eval(t)?, b.eval(t)?);
                if av.is_null() || bv.is_null() {
                    return Ok(Value::Null);
                }
                let both_int = matches!(av, Value::Int(_)) && matches!(bv, Value::Int(_));
                let (x, y) = (
                    av.as_f64()
                        .ok_or_else(|| Error::Eval(format!("non-numeric operand {av:?}")))?,
                    bv.as_f64()
                        .ok_or_else(|| Error::Eval(format!("non-numeric operand {bv:?}")))?,
                );
                let r = match op {
                    ArithOp::Add => x + y,
                    ArithOp::Sub => x - y,
                    ArithOp::Mul => x * y,
                    ArithOp::Div => {
                        if y == 0.0 {
                            return Ok(Value::Null);
                        }
                        x / y
                    }
                    ArithOp::Mod => {
                        if y == 0.0 {
                            return Ok(Value::Null);
                        }
                        x % y
                    }
                };
                if both_int
                    && r.fract() == 0.0
                    && matches!(op, ArithOp::Add | ArithOp::Sub | ArithOp::Mul | ArithOp::Mod)
                {
                    Ok(Value::Int(r as i64))
                } else if both_int && matches!(op, ArithOp::Div) {
                    // Pig integer division truncates.
                    Ok(Value::Int((x / y) as i64))
                } else {
                    Ok(Value::Double(r))
                }
            }
            Expr::Func(f, args) => {
                let vals: Result<Vec<Value>> = args.iter().map(|a| a.eval(t)).collect();
                eval_scalar(*f, &vals?)
            }
        }
    }

    /// The set of input columns the expression reads.
    pub fn referenced_cols(&self) -> Vec<usize> {
        let mut cols = Vec::new();
        self.collect_cols(&mut cols);
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    fn collect_cols(&self, out: &mut Vec<usize>) {
        match self {
            Expr::Col(i) => out.push(*i),
            Expr::Lit(_) => {}
            Expr::Neg(e) | Expr::Not(e) | Expr::IsNull(e, _) => e.collect_cols(out),
            Expr::Arith(a, _, b) | Expr::Cmp(a, _, b) | Expr::And(a, b) | Expr::Or(a, b) => {
                a.collect_cols(out);
                b.collect_cols(out);
            }
            Expr::Func(_, args) => {
                for a in args {
                    a.collect_cols(out);
                }
            }
        }
    }

    /// Rewrite column references through a mapping (used by optimizer
    /// rules that move expressions across projections). Returns `None`
    /// when a referenced column has no image under the mapping.
    pub fn remap_cols(&self, map: &dyn Fn(usize) -> Option<usize>) -> Option<Expr> {
        Some(match self {
            Expr::Col(i) => Expr::Col(map(*i)?),
            Expr::Lit(v) => Expr::Lit(v.clone()),
            Expr::Neg(e) => Expr::Neg(Box::new(e.remap_cols(map)?)),
            Expr::Not(e) => Expr::Not(Box::new(e.remap_cols(map)?)),
            Expr::IsNull(e, w) => Expr::IsNull(Box::new(e.remap_cols(map)?), *w),
            Expr::Arith(a, op, b) => {
                Expr::Arith(Box::new(a.remap_cols(map)?), *op, Box::new(b.remap_cols(map)?))
            }
            Expr::Cmp(a, op, b) => {
                Expr::Cmp(Box::new(a.remap_cols(map)?), *op, Box::new(b.remap_cols(map)?))
            }
            Expr::And(a, b) => {
                Expr::And(Box::new(a.remap_cols(map)?), Box::new(b.remap_cols(map)?))
            }
            Expr::Or(a, b) => Expr::Or(Box::new(a.remap_cols(map)?), Box::new(b.remap_cols(map)?)),
            Expr::Func(f, args) => {
                Expr::Func(*f, args.iter().map(|a| a.remap_cols(map)).collect::<Option<Vec<_>>>()?)
            }
        })
    }

    /// Per-record CPU weight of this expression for the cost model.
    pub fn cost_weight(&self) -> f64 {
        match self {
            Expr::Col(_) | Expr::Lit(_) => 0.05,
            Expr::Neg(e) | Expr::Not(e) | Expr::IsNull(e, _) => 0.05 + e.cost_weight(),
            Expr::Arith(a, _, b) | Expr::Cmp(a, _, b) | Expr::And(a, b) | Expr::Or(a, b) => {
                0.1 + a.cost_weight() + b.cost_weight()
            }
            Expr::Func(_, args) => 0.2 + args.iter().map(|a| a.cost_weight()).sum::<f64>(),
        }
    }
}

fn eval_scalar(f: ScalarFunc, args: &[Value]) -> Result<Value> {
    let arg0 = args.first().cloned().unwrap_or(Value::Null);
    match f {
        ScalarFunc::Round => match arg0.as_f64() {
            Some(d) => Ok(Value::Int(d.round() as i64)),
            None => Ok(Value::Null),
        },
        ScalarFunc::Floor => match arg0.as_f64() {
            Some(d) => Ok(Value::Int(d.floor() as i64)),
            None => Ok(Value::Null),
        },
        ScalarFunc::Ceil => match arg0.as_f64() {
            Some(d) => Ok(Value::Int(d.ceil() as i64)),
            None => Ok(Value::Null),
        },
        ScalarFunc::Abs => match arg0 {
            Value::Int(i) => Ok(Value::Int(i.abs())),
            Value::Double(d) => Ok(Value::Double(d.abs())),
            _ => Ok(Value::Null),
        },
        ScalarFunc::Upper => match arg0.as_str() {
            Some(s) => Ok(Value::Str(s.to_uppercase())),
            None => Ok(Value::Null),
        },
        ScalarFunc::Lower => match arg0.as_str() {
            Some(s) => Ok(Value::Str(s.to_lowercase())),
            None => Ok(Value::Null),
        },
        ScalarFunc::Strlen => match &arg0 {
            Value::Str(s) => Ok(Value::Int(s.len() as i64)),
            Value::Bag(b) => Ok(Value::Int(b.len() as i64)),
            _ => Ok(Value::Null),
        },
        ScalarFunc::Concat => {
            let mut out = String::new();
            for a in args {
                if a.is_null() {
                    return Ok(Value::Null);
                }
                out.push_str(&a.to_string());
            }
            Ok(Value::Str(out))
        }
        ScalarFunc::Substring => {
            let (Some(s), start, len) = (
                arg0.as_str(),
                args.get(1).and_then(|v| v.as_i64()).unwrap_or(0),
                args.get(2).and_then(|v| v.as_i64()),
            ) else {
                return Ok(Value::Null);
            };
            let chars: Vec<char> = s.chars().collect();
            let start = start.clamp(0, chars.len() as i64) as usize;
            let end = match len {
                Some(l) if l >= 0 => (start + l as usize).min(chars.len()),
                _ => chars.len(),
            };
            Ok(Value::Str(chars[start..end].iter().collect()))
        }
        ScalarFunc::Trim => match arg0.as_str() {
            Some(s) => Ok(Value::Str(s.trim().to_string())),
            None => Ok(Value::Null),
        },
        ScalarFunc::StartsWith => match (arg0.as_str(), args.get(1).and_then(|v| v.as_str())) {
            (Some(s), Some(p)) => Ok(Value::Int(s.starts_with(p) as i64)),
            _ => Ok(Value::Null),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use restore_common::tuple;

    #[test]
    fn column_and_literal() {
        let t = tuple![10, "x"];
        assert_eq!(Expr::col(0).eval(&t).unwrap(), Value::Int(10));
        assert_eq!(Expr::Lit(Value::str("y")).eval(&t).unwrap(), Value::str("y"));
    }

    #[test]
    fn arithmetic_int_and_double() {
        let t = tuple![10, 4, 2.5];
        let add = Expr::Arith(Box::new(Expr::col(0)), ArithOp::Add, Box::new(Expr::col(1)));
        assert_eq!(add.eval(&t).unwrap(), Value::Int(14));
        let div = Expr::Arith(Box::new(Expr::col(0)), ArithOp::Div, Box::new(Expr::col(1)));
        assert_eq!(div.eval(&t).unwrap(), Value::Int(2)); // truncating
        let mul = Expr::Arith(Box::new(Expr::col(0)), ArithOp::Mul, Box::new(Expr::col(2)));
        assert_eq!(mul.eval(&t).unwrap(), Value::Double(25.0));
    }

    #[test]
    fn division_by_zero_is_null() {
        let t = tuple![1, 0];
        let div = Expr::Arith(Box::new(Expr::col(0)), ArithOp::Div, Box::new(Expr::col(1)));
        assert!(div.eval(&t).unwrap().is_null());
    }

    #[test]
    fn comparisons_and_null_semantics() {
        let t = Tuple::from_values(vec![Value::Int(5), Value::Null]);
        assert_eq!(Expr::col_eq(0, 5i64).eval(&t).unwrap(), Value::Int(1));
        assert_eq!(Expr::col_eq(0, 6i64).eval(&t).unwrap(), Value::Int(0));
        // NULL == anything is false, not null-propagating (Filter drops it).
        assert_eq!(Expr::col_eq(1, 5i64).eval(&t).unwrap(), Value::Int(0));
        let isnull = Expr::IsNull(Box::new(Expr::col(1)), true);
        assert_eq!(isnull.eval(&t).unwrap(), Value::Int(1));
    }

    #[test]
    fn boolean_connectives() {
        let t = tuple![1, 0];
        let and = Expr::And(Box::new(Expr::col(0)), Box::new(Expr::col(1)));
        let or = Expr::Or(Box::new(Expr::col(0)), Box::new(Expr::col(1)));
        assert_eq!(and.eval(&t).unwrap(), Value::Int(0));
        assert_eq!(or.eval(&t).unwrap(), Value::Int(1));
        let not = Expr::Not(Box::new(Expr::col(1)));
        assert_eq!(not.eval(&t).unwrap(), Value::Int(1));
    }

    #[test]
    fn scalar_functions() {
        let t = tuple![2.6, "aBc"];
        let round = Expr::Func(ScalarFunc::Round, vec![Expr::col(0)]);
        assert_eq!(round.eval(&t).unwrap(), Value::Int(3));
        let upper = Expr::Func(ScalarFunc::Upper, vec![Expr::col(1)]);
        assert_eq!(upper.eval(&t).unwrap(), Value::str("ABC"));
        let concat = Expr::Func(ScalarFunc::Concat, vec![Expr::col(1), Expr::Lit(Value::str("!"))]);
        assert_eq!(concat.eval(&t).unwrap(), Value::str("aBc!"));
    }

    #[test]
    fn string_functions() {
        let t = tuple!["  hello world  ", "hello"];
        let trim = Expr::Func(ScalarFunc::Trim, vec![Expr::col(0)]);
        assert_eq!(trim.eval(&t).unwrap(), Value::str("hello world"));
        let sub = Expr::Func(
            ScalarFunc::Substring,
            vec![Expr::col(1), Expr::Lit(1i64.into()), Expr::Lit(3i64.into())],
        );
        assert_eq!(sub.eval(&t).unwrap(), Value::str("ell"));
        // Clamped out-of-range substring.
        let sub2 = Expr::Func(
            ScalarFunc::Substring,
            vec![Expr::col(1), Expr::Lit(3i64.into()), Expr::Lit(99i64.into())],
        );
        assert_eq!(sub2.eval(&t).unwrap(), Value::str("lo"));
        let sw =
            Expr::Func(ScalarFunc::StartsWith, vec![Expr::col(1), Expr::Lit(Value::str("he"))]);
        assert_eq!(sw.eval(&t).unwrap(), Value::Int(1));
        let sw2 =
            Expr::Func(ScalarFunc::StartsWith, vec![Expr::col(1), Expr::Lit(Value::str("xx"))]);
        assert_eq!(sw2.eval(&t).unwrap(), Value::Int(0));
        // Null propagation.
        let nt = Tuple::from_values(vec![Value::Null]);
        assert!(trim.eval(&nt).unwrap().is_null());
    }

    #[test]
    fn aggregates() {
        let bag = vec![tuple!["a", 1], tuple!["b", 2], tuple!["a", 3]];
        assert_eq!(AggFunc::Count.apply(&bag, None), Value::Int(3));
        assert_eq!(AggFunc::Sum.apply(&bag, Some(1)), Value::Int(6));
        assert_eq!(AggFunc::Avg.apply(&bag, Some(1)), Value::Double(2.0));
        assert_eq!(AggFunc::Min.apply(&bag, Some(1)), Value::Int(1));
        assert_eq!(AggFunc::Max.apply(&bag, Some(1)), Value::Int(3));
        assert_eq!(AggFunc::CountDistinct.apply(&bag, Some(0)), Value::Int(2));
    }

    #[test]
    fn aggregates_ignore_nulls() {
        let bag =
            vec![Tuple::from_values(vec![Value::Null]), Tuple::from_values(vec![Value::Int(4)])];
        assert_eq!(AggFunc::Count.apply(&bag, Some(0)), Value::Int(1));
        assert_eq!(AggFunc::Sum.apply(&bag, Some(0)), Value::Int(4));
        assert_eq!(AggFunc::Min.apply(&bag, Some(0)), Value::Int(4));
        // Empty bag / all-null column.
        assert!(AggFunc::Sum.apply(&[], Some(0)).is_null());
    }

    #[test]
    fn sum_widens_to_double_when_mixed() {
        let bag = vec![tuple![1], tuple![2.5]];
        assert_eq!(AggFunc::Sum.apply(&bag, Some(0)), Value::Double(3.5));
    }

    #[test]
    fn referenced_cols_and_remap() {
        let e = Expr::And(
            Box::new(Expr::col_eq(3, 1i64)),
            Box::new(Expr::Cmp(Box::new(Expr::col(1)), CmpOp::Lt, Box::new(Expr::col(3)))),
        );
        assert_eq!(e.referenced_cols(), vec![1, 3]);
        let remapped = e
            .remap_cols(&|c| {
                if c == 3 {
                    Some(0)
                } else if c == 1 {
                    Some(9)
                } else {
                    None
                }
            })
            .unwrap();
        assert_eq!(remapped.referenced_cols(), vec![0, 9]);
        // Unmappable column kills the rewrite.
        assert!(e.remap_cols(&|c| if c == 3 { Some(0) } else { None }).is_none());
    }

    #[test]
    fn exprs_hash_and_compare_structurally() {
        use std::collections::HashSet;
        let a = Expr::col_eq(2, "x");
        let b = Expr::col_eq(2, "x");
        let c = Expr::col_eq(2, "y");
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
        assert!(!set.contains(&c));
    }

    #[test]
    fn cost_weight_grows_with_complexity() {
        let simple = Expr::col(0);
        let complex = Expr::And(Box::new(Expr::col_eq(0, 1i64)), Box::new(Expr::col_eq(1, 2i64)));
        assert!(complex.cost_weight() > simple.cost_weight());
    }

    use restore_common::Tuple;
}
