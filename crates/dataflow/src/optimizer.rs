//! Rule-based logical optimizer.
//!
//! Pig 0.8 runs a handful of logical rewrites before MapReduce
//! compilation (§6.1 step 2). We implement the rules that matter for the
//! plan shapes ReStore sees, keeping plans canonical so equivalent queries
//! produce structurally identical physical plans:
//!
//! * **MergeProjects** — `Project(b) ∘ Project(a)` → `Project(a[b])`;
//! * **FilterPushdown** — `Filter ∘ Project` → `Project ∘ Filter` when
//!   every predicate column survives the mapping;
//! * **DropNoopProject** — identity projections vanish.

use crate::logical::{LNodeId, LogicalOp, LogicalPlan};

/// Run all rules to fixpoint.
pub fn optimize(mut plan: LogicalPlan) -> LogicalPlan {
    loop {
        let mut changed = false;
        changed |= merge_projects(&mut plan);
        changed |= filter_pushdown(&mut plan);
        changed |= drop_noop_projects(&mut plan);
        if !changed {
            return plan;
        }
    }
}

/// `Project(b) ∘ Project(a)` becomes a single projection.
fn merge_projects(plan: &mut LogicalPlan) -> bool {
    let mut changed = false;
    for i in 0..plan.nodes.len() {
        let LogicalOp::Project { cols: outer } = &plan.nodes[i].op else {
            continue;
        };
        let outer = outer.clone();
        let input = plan.nodes[i].inputs[0];
        let LogicalOp::Project { cols: inner } = &plan.nodes[input].op else {
            continue;
        };
        let inner = inner.clone();
        if outer.iter().any(|&c| c >= inner.len()) {
            continue; // ill-formed reference; leave for runtime null
        }
        let fused: Vec<usize> = outer.iter().map(|&c| inner[c]).collect();
        let grand = plan.nodes[input].inputs[0];
        plan.nodes[i].op = LogicalOp::Project { cols: fused };
        plan.nodes[i].inputs = vec![grand];
        changed = true;
    }
    changed
}

/// `Filter(p) ∘ Project(cols)` becomes `Project(cols) ∘ Filter(p')` with
/// predicate columns remapped through the projection.
fn filter_pushdown(plan: &mut LogicalPlan) -> bool {
    let mut changed = false;
    for i in 0..plan.nodes.len() {
        let LogicalOp::Filter { pred } = &plan.nodes[i].op else {
            continue;
        };
        let input = plan.nodes[i].inputs[0];
        let LogicalOp::Project { cols } = &plan.nodes[input].op else {
            continue;
        };
        let cols = cols.clone();
        let Some(pushed) = pred.remap_cols(&|c| cols.get(c).copied()) else {
            continue;
        };
        // New node: the pushed-down filter below the projection.
        let grand = plan.nodes[input].inputs[0];
        let filt_schema = plan.nodes[grand].schema.clone();
        let filt_bags = plan.nodes[grand].bag_schemas.clone();
        let new_filter = plan.nodes.len();
        plan.nodes.push(crate::logical::LogicalNode {
            op: LogicalOp::Filter { pred: pushed },
            inputs: vec![grand],
            schema: filt_schema,
            bag_schemas: filt_bags,
        });
        // The old Filter node becomes the Project (schema unchanged).
        plan.nodes[i].op = LogicalOp::Project { cols };
        plan.nodes[i].inputs = vec![new_filter];
        changed = true;
    }
    changed
}

/// Remove `Project(0..n)` where n equals the input arity.
fn drop_noop_projects(plan: &mut LogicalPlan) -> bool {
    let mut changed = false;
    for i in 0..plan.nodes.len() {
        let LogicalOp::Project { cols } = &plan.nodes[i].op else {
            continue;
        };
        let input = plan.nodes[i].inputs[0];
        let arity = plan.nodes[input].schema.len();
        let is_identity = cols.len() == arity && cols.iter().enumerate().all(|(k, &c)| k == c);
        // Keep identity projections that rename fields? Renames don't
        // affect physical execution, so they can go.
        if !is_identity {
            continue;
        }
        // Rewire all consumers of i to read from input directly.
        let consumers: Vec<LNodeId> =
            (0..plan.nodes.len()).filter(|&n| plan.nodes[n].inputs.contains(&i)).collect();
        if consumers.is_empty() {
            continue; // dead anyway
        }
        for c in consumers {
            for inp in &mut plan.nodes[c].inputs {
                if *inp == i {
                    *inp = input;
                }
            }
        }
        changed = true;
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::LogicalPlan;
    use crate::parser::parse;

    fn build(q: &str) -> LogicalPlan {
        optimize(LogicalPlan::from_ast(&parse(q).unwrap()).unwrap())
    }

    /// Count nodes reachable from stores (the live plan).
    fn live_ops(plan: &LogicalPlan) -> Vec<String> {
        let mut seen = vec![false; plan.nodes.len()];
        let mut stack = plan.stores();
        let mut out = Vec::new();
        while let Some(i) = stack.pop() {
            if seen[i] {
                continue;
            }
            seen[i] = true;
            out.push(format!("{:?}", plan.nodes[i].op).split(' ').next().unwrap().to_string());
            stack.extend_from_slice(&plan.nodes[i].inputs);
        }
        out.sort();
        out
    }

    #[test]
    fn adjacent_projects_merge() {
        let p = build(
            "A = load '/d' as (a, b, c, d);
             B = foreach A generate a, c, d;
             C = foreach B generate $2, $0;
             store C into '/o';",
        );
        let projects: Vec<_> = p
            .nodes
            .iter()
            .filter_map(|n| match &n.op {
                LogicalOp::Project { cols } => Some(cols.clone()),
                _ => None,
            })
            .collect();
        // The live projection is the fused one: $2,$0 over (a,c,d) = d,a.
        assert!(projects.contains(&vec![3, 0]), "{projects:?}");
        let ops = live_ops(&p);
        assert_eq!(ops.iter().filter(|o| o.contains("Project")).count(), 1);
    }

    #[test]
    fn filter_pushes_below_project() {
        let p = build(
            "A = load '/d' as (a, b);
             B = foreach A generate b;
             C = filter B by b > 10;
             store C into '/o';",
        );
        // Live plan: Load -> Filter(col1) -> Project([1]) -> Store.
        let store = p.stores()[0];
        let proj = p.nodes[store].inputs[0];
        assert!(matches!(p.nodes[proj].op, LogicalOp::Project { .. }));
        let filt = p.nodes[proj].inputs[0];
        match &p.nodes[filt].op {
            LogicalOp::Filter { pred } => {
                assert_eq!(pred.referenced_cols(), vec![1]);
            }
            other => panic!("expected filter, got {other:?}"),
        }
        assert!(matches!(p.nodes[p.nodes[filt].inputs[0]].op, LogicalOp::Load { .. }));
    }

    #[test]
    fn noop_project_dropped() {
        let p = build(
            "A = load '/d' as (a, b);
             B = foreach A generate a, b;
             C = filter B by a > 1;
             store C into '/o';",
        );
        let ops = live_ops(&p);
        assert!(
            !ops.iter().any(|o| o.contains("Project")),
            "identity projection should vanish: {ops:?}"
        );
    }

    #[test]
    fn optimizer_reaches_fixpoint_on_chains() {
        let p = build(
            "A = load '/d' as (a, b, c);
             B = foreach A generate a, b, c;
             C = foreach B generate a, b, c;
             D = foreach C generate c;
             E = filter D by c > 0;
             store E into '/o';",
        );
        let ops = live_ops(&p);
        // One projection, one filter, one load, one store.
        assert_eq!(ops.iter().filter(|o| o.contains("Project")).count(), 1);
        assert_eq!(ops.iter().filter(|o| o.contains("Filter")).count(), 1);
    }
}
