//! Graphviz (DOT) rendering of physical plans and compiled workflows —
//! the pictures in the paper (Figures 2, 3, 8) as `dot -Tpng` input.

use crate::mr_compiler::CompiledWorkflow;
use crate::physical::{PhysicalOp, PhysicalPlan};
use std::fmt::Write as _;

/// Render one physical plan as a DOT digraph.
pub fn plan_to_dot(plan: &PhysicalPlan, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", sanitize(name));
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
    emit_plan_nodes(&mut out, plan, "");
    let _ = writeln!(out, "}}");
    out
}

/// Render a compiled workflow: one cluster per MapReduce job, dashed
/// edges for job dependencies.
pub fn workflow_to_dot(wf: &CompiledWorkflow, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", sanitize(name));
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
    for (j, job) in wf.jobs.iter().enumerate() {
        let _ = writeln!(out, "  subgraph cluster_job{j} {{");
        let _ = writeln!(out, "    label=\"MR Job {j}\";");
        emit_plan_nodes(&mut out, &job.plan, &format!("j{j}_"));
        let _ = writeln!(out, "  }}");
    }
    // Dependency edges between job anchors (first store of dep → first
    // load of dependent).
    for (j, job) in wf.jobs.iter().enumerate() {
        for &d in &job.deps {
            let from_store = wf.jobs[d].plan.stores()[0];
            let to_load = job.plan.loads()[0];
            let _ = writeln!(
                out,
                "  j{d}_n{} -> j{j}_n{} [style=dashed, label=\"dep\"];",
                from_store.0, to_load.0
            );
        }
    }
    let _ = writeln!(out, "}}");
    out
}

fn emit_plan_nodes(out: &mut String, plan: &PhysicalPlan, prefix: &str) {
    for id in plan.topo_order() {
        let op = plan.op(id);
        let label = match op {
            PhysicalOp::Load { path } => format!("Load\\n{path}"),
            PhysicalOp::Store { path } => format!("Store\\n{path}"),
            PhysicalOp::Project { cols } => format!("Project {cols:?}"),
            PhysicalOp::Group { keys } => format!("Group {keys:?}"),
            PhysicalOp::Join { keys } => format!("Join {keys:?}"),
            PhysicalOp::CoGroup { keys } => format!("CoGroup {keys:?}"),
            PhysicalOp::Limit { n } => format!("Limit {n}"),
            other => other.name().to_string(),
        };
        let style = match op {
            PhysicalOp::Load { .. } => ", style=filled, fillcolor=lightblue",
            PhysicalOp::Store { .. } => ", style=filled, fillcolor=lightyellow",
            op if op.is_blocking() => ", style=filled, fillcolor=lightpink",
            _ => "",
        };
        let _ =
            writeln!(out, "  {prefix}n{} [label=\"{}\"{}];", id.0, label.replace('"', "'"), style);
        for &i in plan.inputs(id) {
            let _ = writeln!(out, "  {prefix}n{} -> {prefix}n{};", i.0, id.0);
        }
    }
}

fn sanitize(name: &str) -> String {
    let cleaned: String =
        name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect();
    if cleaned.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        format!("g{cleaned}")
    } else if cleaned.is_empty() {
        "g".to_string()
    } else {
        cleaned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    const Q2: &str = "
        A = load '/pv' as (user, rev:double);
        B = foreach A generate user, rev;
        U = load '/users' as (name);
        C = join U by name, B by user;
        G = group C by $0;
        S = foreach G generate group, SUM(C.rev);
        store S into '/out';
    ";

    #[test]
    fn plan_dot_contains_all_nodes_and_edges() {
        let wf = compile(Q2, "/wf").unwrap();
        let dot = plan_to_dot(&wf.jobs[0].plan, "job0");
        assert!(dot.starts_with("digraph job0 {"));
        assert!(dot.contains("Load"));
        assert!(dot.contains("lightblue"));
        // Every non-leaf node contributes at least one edge.
        let edges = dot.matches(" -> ").count();
        assert!(edges >= wf.jobs[0].plan.len() - wf.jobs[0].plan.loads().len());
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn workflow_dot_has_clusters_and_dep_edges() {
        let wf = compile(Q2, "/wf").unwrap();
        assert!(wf.jobs.len() >= 2);
        let dot = workflow_to_dot(&wf, "q2");
        assert_eq!(dot.matches("subgraph cluster_job").count(), wf.jobs.len());
        assert!(dot.contains("style=dashed"));
        // Blocking operators are highlighted.
        assert!(dot.contains("lightpink"));
    }

    #[test]
    fn names_are_sanitized() {
        let wf = compile(Q2, "/wf").unwrap();
        let dot = plan_to_dot(&wf.jobs[0].plan, "9-bad name!");
        assert!(dot.starts_with("digraph g9_bad_name_ {"));
    }
}
