//! MapReduce compilation: segmenting a query's physical plan into a
//! workflow of per-job plans.
//!
//! "The reason for having a workflow of MapReduce jobs and not just one
//! MapReduce job is that some physical operators such as Join and Group
//! need to be divided between a mapper stage and a reducer stage.
//! Consequently, when more than one of these physical operators exist in
//! a query execution plan, each one of them has to be embedded in a
//! separate MapReduce job." (§2)
//!
//! Each produced [`CompiledJob`] owns a self-contained [`PhysicalPlan`]
//! whose leaves are Loads and whose roots are Stores — exactly the object
//! ReStore's repository stores and matches. Jobs communicate through
//! temporary DFS files injected at the boundaries; the `MapReduce
//! optimizer` step of Pig (merging pipelinable fragments into one job) is
//! realized by growing fragments greedily and merging map-side fragments
//! at multi-input operators.

use crate::physical::{NodeId, PhysicalOp, PhysicalPlan};
use restore_common::{Error, Result};
use std::collections::{BTreeSet, HashMap};

/// One MapReduce job: its physical plan and workflow dependencies.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledJob {
    pub plan: PhysicalPlan,
    /// Indices of jobs this one depends on.
    pub deps: Vec<usize>,
}

/// A compiled workflow of MapReduce jobs.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledWorkflow {
    pub jobs: Vec<CompiledJob>,
    /// Paths of the temporary inter-job files (deleted after execution by
    /// a plain Pig; kept and registered by ReStore).
    pub tmp_paths: Vec<String>,
}

impl CompiledWorkflow {
    /// Dependency waves: jobs grouped by the `JobControlCompiler`
    /// iteration in which they would be submitted (all dependencies
    /// satisfied by earlier waves). Jobs within one wave are mutually
    /// independent and safe to execute concurrently. Stable within a wave
    /// (job index order); errors on cycles.
    pub fn waves(&self) -> Result<Vec<Vec<usize>>> {
        let n = self.jobs.len();
        let mut done = vec![false; n];
        let mut waves = Vec::new();
        let mut remaining = n;
        while remaining > 0 {
            let wave: Vec<usize> = (0..n)
                .filter(|&i| !done[i] && self.jobs[i].deps.iter().all(|&d| done[d]))
                .collect();
            if wave.is_empty() {
                return Err(Error::Workflow("cycle in compiled workflow".into()));
            }
            for &i in &wave {
                done[i] = true;
            }
            remaining -= wave.len();
            waves.push(wave);
        }
        Ok(waves)
    }

    /// A topological order of the jobs: the waves flattened.
    pub fn topo_order(&self) -> Result<Vec<usize>> {
        Ok(self.waves()?.into_iter().flatten().collect())
    }

    /// Every DFS path this workflow reads and writes, across all of its
    /// jobs. Inter-job temporaries appear in both sets (one job writes
    /// them, a later job reads them). A cross-workflow scheduler uses
    /// these sets to decide whether two queued workflows may overlap:
    /// disjoint footprints cannot observe each other's files.
    pub fn io_path_sets(&self) -> WorkflowIoPaths {
        let mut io = WorkflowIoPaths::default();
        for job in &self.jobs {
            for l in job.plan.loads() {
                if let PhysicalOp::Load { path } = job.plan.op(l) {
                    io.reads.insert(path.clone());
                }
            }
            for s in job.plan.stores() {
                if let PhysicalOp::Store { path } = job.plan.op(s) {
                    io.writes.insert(path.clone());
                }
            }
        }
        for tmp in &self.tmp_paths {
            io.writes.insert(tmp.clone());
        }
        io
    }
}

/// The DFS footprint of a compiled workflow (see
/// [`CompiledWorkflow::io_path_sets`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkflowIoPaths {
    /// Paths some job of the workflow Loads.
    pub reads: BTreeSet<String>,
    /// Paths some job of the workflow Stores (including temporaries).
    pub writes: BTreeSet<String>,
}

impl WorkflowIoPaths {
    /// True when neither footprint writes a path the other reads or
    /// writes. Two workflows with disjoint footprints are free to execute
    /// concurrently in any order.
    pub fn disjoint(&self, other: &WorkflowIoPaths) -> bool {
        self.writes.is_disjoint(&other.writes)
            && self.writes.is_disjoint(&other.reads)
            && self.reads.is_disjoint(&other.writes)
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    Map,
    Reduce,
}

/// Merge Load nodes with identical paths (one scan feeds all consumers,
/// like Pig's shared-scan multi-query optimization) and drop the orphans.
fn dedupe_loads(plan: &mut PhysicalPlan) {
    let loads = plan.loads();
    let mut canonical: HashMap<String, NodeId> = HashMap::new();
    let mut rewires: Vec<(NodeId, NodeId)> = Vec::new();
    for l in loads {
        let PhysicalOp::Load { path } = plan.op(l).clone() else { unreachable!() };
        match canonical.get(&path) {
            Some(&first) => rewires.push((l, first)),
            None => {
                canonical.insert(path, l);
            }
        }
    }
    if rewires.is_empty() {
        return;
    }
    for id in plan.ids().collect::<Vec<_>>() {
        for k in 0..plan.inputs(id).len() {
            let cur = plan.inputs(id)[k];
            if let Some(&(_, to)) = rewires.iter().find(|(from, _)| *from == cur) {
                plan.node_mut(id).inputs[k] = to;
            }
        }
    }
    plan.gc();
}

struct Frag {
    plan: PhysicalPlan,
    has_reduce: bool,
    deps: BTreeSet<usize>,
    /// query-node → node within this fragment's plan.
    node_map: HashMap<NodeId, NodeId>,
    alive: bool,
}

impl Frag {
    fn new() -> Self {
        Frag {
            plan: PhysicalPlan::new(),
            has_reduce: false,
            deps: BTreeSet::new(),
            node_map: HashMap::new(),
            alive: true,
        }
    }
}

/// Where a consumer finds its input.
enum BranchSrc {
    /// A base file (query-level Load node).
    File(NodeId, String),
    /// Produced by a fragment at a phase.
    Frag(usize, Phase),
}

struct Compiler<'a> {
    query: &'a PhysicalPlan,
    frags: Vec<Frag>,
    redirect: Vec<usize>,
    /// query node → (fragment, phase). Loads are not tracked here.
    frag_of: HashMap<NodeId, (usize, Phase)>,
    /// query node → tmp path already materializing it.
    closed: HashMap<NodeId, (String, usize)>,
    tmp_paths: Vec<String>,
    out_prefix: String,
}

/// Compile a query physical plan into a workflow of job plans.
pub fn compile_plan(query: &PhysicalPlan, out_prefix: &str) -> Result<CompiledWorkflow> {
    if query.stores().is_empty() {
        return Err(Error::Plan("physical plan has no Store".into()));
    }
    let mut c = Compiler {
        query,
        frags: Vec::new(),
        redirect: Vec::new(),
        frag_of: HashMap::new(),
        closed: HashMap::new(),
        tmp_paths: Vec::new(),
        out_prefix: out_prefix.to_string(),
    };
    for q in query.topo_order() {
        c.process(q)?;
    }
    c.finish()
}

impl<'a> Compiler<'a> {
    fn resolve(&self, mut f: usize) -> usize {
        while self.redirect[f] != f {
            f = self.redirect[f];
        }
        f
    }

    fn new_frag(&mut self) -> usize {
        self.frags.push(Frag::new());
        self.redirect.push(self.frags.len() - 1);
        self.frags.len() - 1
    }

    fn fresh_tmp(&mut self) -> String {
        let path = format!("{}/tmp-{}", self.out_prefix, self.tmp_paths.len());
        self.tmp_paths.push(path.clone());
        path
    }

    fn source_of(&self, q: NodeId) -> BranchSrc {
        match self.query.op(q) {
            PhysicalOp::Load { path } => BranchSrc::File(q, path.clone()),
            _ => {
                let (f, phase) = self.frag_of[&q];
                BranchSrc::Frag(self.resolve(f), phase)
            }
        }
    }

    /// Ensure query node `q` is available as a map-phase node inside
    /// fragment `target` (creating a Load of a file or of a closed tmp).
    /// Returns the in-fragment node id.
    fn branch_into(&mut self, target: usize, q: NodeId) -> NodeId {
        match self.source_of(q) {
            BranchSrc::File(qload, path) => {
                if let Some(&n) = self.frags[target].node_map.get(&qload) {
                    return n;
                }
                let n = self.frags[target].plan.add(PhysicalOp::Load { path }, vec![]);
                self.frags[target].node_map.insert(qload, n);
                n
            }
            BranchSrc::Frag(f, _phase) => {
                if f == target {
                    return self.frags[target].node_map[&q];
                }
                // Cross-fragment: materialize and load.
                let (tmp, producer) = self.close_output(q);
                self.frags[target].deps.insert(producer);
                let n = self.frags[target].plan.add(PhysicalOp::Load { path: tmp }, vec![]);
                // Not memoized under the Load's query id (there is none);
                // memoize under the producing query node so repeated
                // branches reuse the same Load.
                self.frags[target].node_map.insert(q, n);
                n
            }
        }
    }

    /// Materialize query node `q`'s output in its own fragment by adding a
    /// Store(tmp). Memoized.
    fn close_output(&mut self, q: NodeId) -> (String, usize) {
        if let Some((tmp, f)) = self.closed.get(&q) {
            return (tmp.clone(), self.resolve(*f));
        }
        let (f, _phase) = self.frag_of[&q];
        let f = self.resolve(f);
        let tmp = self.fresh_tmp();
        let node = self.frags[f].node_map[&q];
        self.frags[f].plan.add(PhysicalOp::Store { path: tmp.clone() }, vec![node]);
        self.closed.insert(q, (tmp.clone(), f));
        (tmp, f)
    }

    /// Merge fragment `b` into fragment `a` (both resolved, map-only).
    fn merge(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        debug_assert!(!self.frags[b].has_reduce, "cannot merge reduce fragment");
        let b_frag = std::mem::replace(&mut self.frags[b], Frag::new());
        self.frags[b].alive = false;
        // Copy nodes with id remapping.
        let mut remap: HashMap<NodeId, NodeId> = HashMap::new();
        for id in b_frag.plan.topo_order() {
            let node = b_frag.plan.node(id);
            let inputs: Vec<NodeId> = node.inputs.iter().map(|i| remap[i]).collect();
            let new_id = self.frags[a].plan.add(node.op.clone(), inputs);
            remap.insert(id, new_id);
        }
        for (q, n) in b_frag.node_map {
            self.frags[a].node_map.entry(q).or_insert(remap[&n]);
        }
        let deps: Vec<usize> = b_frag.deps.iter().copied().collect();
        for d in deps {
            let rd = self.resolve(d);
            self.frags[a].deps.insert(rd);
        }
        self.redirect[b] = a;
        // Re-point assigned query nodes.
        for (_, (f, _)) in self.frag_of.iter_mut() {
            if *f == b {
                *f = a;
            }
        }
    }

    fn process(&mut self, q: NodeId) -> Result<()> {
        let op = self.query.op(q).clone();
        match &op {
            PhysicalOp::Load { .. } => Ok(()), // instantiated lazily per consumer
            PhysicalOp::Join { .. } | PhysicalOp::CoGroup { .. } => {
                self.process_multi_blocking(q, op.clone())
            }
            PhysicalOp::Union => self.process_union(q),
            _ if op.is_blocking() => self.process_single_blocking(q, op.clone()),
            _ => self.process_pipelined(q, op.clone()),
        }
    }

    /// Non-blocking single-input operators (Project/MapExpr/Filter/
    /// Flatten/Aggregate/Split/Store) pipeline into their input's
    /// fragment and phase.
    fn process_pipelined(&mut self, q: NodeId, op: PhysicalOp) -> Result<()> {
        let input = self.query.inputs(q)[0];
        let (f, in_node, phase) = match self.source_of(input) {
            BranchSrc::File(..) => {
                let f = self.new_frag();
                let n = self.branch_into(f, input);
                (f, n, Phase::Map)
            }
            BranchSrc::Frag(f, phase) => (f, self.frags[f].node_map[&input], phase),
        };
        let n = self.frags[f].plan.add(op, vec![in_node]);
        self.frags[f].node_map.insert(q, n);
        self.frag_of.insert(q, (f, phase));
        Ok(())
    }

    /// Blocking single-input operators (Group/Distinct/OrderBy/Limit)
    /// claim their fragment's shuffle, or close the fragment and start a
    /// new job when the shuffle is taken.
    fn process_single_blocking(&mut self, q: NodeId, op: PhysicalOp) -> Result<()> {
        let input = self.query.inputs(q)[0];
        let (f, in_node) = match self.source_of(input) {
            BranchSrc::File(..) => {
                let f = self.new_frag();
                let n = self.branch_into(f, input);
                (f, n)
            }
            BranchSrc::Frag(f, phase) => {
                if phase == Phase::Reduce || self.frags[f].has_reduce {
                    // The shuffle is taken: close and start a new job.
                    let nf = self.new_frag();
                    let n = self.branch_into(nf, input);
                    (nf, n)
                } else {
                    (f, self.frags[f].node_map[&input])
                }
            }
        };
        let n = self.frags[f].plan.add(op, vec![in_node]);
        self.frags[f].has_reduce = true;
        self.frags[f].node_map.insert(q, n);
        self.frag_of.insert(q, (f, Phase::Reduce));
        Ok(())
    }

    /// Join/CoGroup: merge all map-only input fragments into one job;
    /// close anything already past its shuffle.
    fn process_multi_blocking(&mut self, q: NodeId, op: PhysicalOp) -> Result<()> {
        let inputs: Vec<NodeId> = self.query.inputs(q).to_vec();
        // Choose/merge the target fragment.
        let mut target: Option<usize> = None;
        for &i in &inputs {
            if let BranchSrc::Frag(f, Phase::Map) = self.source_of(i) {
                if !self.frags[f].has_reduce {
                    match target {
                        None => target = Some(f),
                        Some(t) if t != f => self.merge(t, f),
                        _ => {}
                    }
                }
            }
        }
        let target = target.unwrap_or_else(|| self.new_frag());
        let branch_nodes: Vec<NodeId> =
            inputs.iter().map(|&i| self.branch_into(target, i)).collect();
        let n = self.frags[target].plan.add(op, branch_nodes);
        self.frags[target].has_reduce = true;
        self.frags[target].node_map.insert(q, n);
        self.frag_of.insert(q, (target, Phase::Reduce));
        Ok(())
    }

    /// Union: map-side combination, same merging as Join but no shuffle.
    fn process_union(&mut self, q: NodeId) -> Result<()> {
        let inputs: Vec<NodeId> = self.query.inputs(q).to_vec();
        let mut target: Option<usize> = None;
        for &i in &inputs {
            if let BranchSrc::Frag(f, Phase::Map) = self.source_of(i) {
                if !self.frags[f].has_reduce {
                    match target {
                        None => target = Some(f),
                        Some(t) if t != f => self.merge(t, f),
                        _ => {}
                    }
                }
            }
        }
        let target = target.unwrap_or_else(|| self.new_frag());
        let branch_nodes: Vec<NodeId> =
            inputs.iter().map(|&i| self.branch_into(target, i)).collect();
        let n = self.frags[target].plan.add(PhysicalOp::Union, branch_nodes);
        self.frags[target].node_map.insert(q, n);
        self.frag_of.insert(q, (target, Phase::Map));
        Ok(())
    }

    fn finish(self) -> Result<CompiledWorkflow> {
        // Surviving fragments become jobs, in creation order.
        let mut job_index: HashMap<usize, usize> = HashMap::new();
        let mut jobs = Vec::new();
        for (i, frag) in self.frags.iter().enumerate() {
            if !frag.alive {
                continue;
            }
            if frag.plan.stores().is_empty() {
                return Err(Error::Plan(format!(
                    "internal: fragment {i} compiled without a Store:\n{}",
                    frag.plan.explain()
                )));
            }
            job_index.insert(i, jobs.len());
            let mut plan = frag.plan.clone();
            dedupe_loads(&mut plan);
            jobs.push(CompiledJob { plan, deps: Vec::new() });
        }
        for (i, frag) in self.frags.iter().enumerate() {
            if !frag.alive {
                continue;
            }
            let ji = job_index[&i];
            let mut deps: Vec<usize> =
                frag.deps.iter().map(|&d| job_index[&self.resolve(d)]).collect();
            deps.sort_unstable();
            deps.dedup();
            jobs[ji].deps = deps;
        }
        Ok(CompiledWorkflow { jobs, tmp_paths: self.tmp_paths })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::LogicalPlan;
    use crate::lower::lower;
    use crate::optimizer::optimize;
    use crate::parser::parse;

    fn compile_q(q: &str) -> CompiledWorkflow {
        let l = optimize(LogicalPlan::from_ast(&parse(q).unwrap()).unwrap());
        let p = lower(&l).unwrap();
        compile_plan(&p, "/tmp/q").unwrap()
    }

    const Q1: &str = "
        A = load 'pv' as (user, ts, rev:double, info, links);
        B = foreach A generate user, rev;
        alpha = load 'users' as (name, phone, addr, city);
        beta = foreach alpha generate name;
        C = join beta by name, B by user;
        store C into '/out/q1';
    ";

    const Q2: &str = "
        A = load 'pv' as (user, ts, rev:double, info, links);
        B = foreach A generate user, rev;
        alpha = load 'users' as (name, phone, addr, city);
        beta = foreach alpha generate name;
        C = join beta by name, B by user;
        D = group C by $0;
        E = foreach D generate group, SUM(C.rev);
        store E into '/out/q2';
    ";

    #[test]
    fn q1_is_one_job() {
        let wf = compile_q(Q1);
        assert_eq!(wf.jobs.len(), 1, "{:?}", wf.jobs);
        let plan = &wf.jobs[0].plan;
        assert_eq!(plan.loads().len(), 2);
        assert_eq!(plan.stores().len(), 1);
        assert!(plan.ids().any(|i| matches!(plan.op(i), PhysicalOp::Join { .. })));
    }

    #[test]
    fn q2_is_two_jobs_split_at_group() {
        let wf = compile_q(Q2);
        assert_eq!(wf.jobs.len(), 2, "{:?}", wf.jobs);
        // Job 0: loads + projects + join + store(tmp).
        let j0 = &wf.jobs[0].plan;
        assert!(j0.ids().any(|i| matches!(j0.op(i), PhysicalOp::Join { .. })));
        assert!(!j0.ids().any(|i| matches!(j0.op(i), PhysicalOp::Group { .. })));
        // Job 1: load(tmp) + group + aggregate + store(final).
        let j1 = &wf.jobs[1].plan;
        assert!(j1.ids().any(|i| matches!(j1.op(i), PhysicalOp::Group { .. })));
        assert!(j1.ids().any(|i| matches!(j1.op(i), PhysicalOp::Aggregate { .. })));
        assert_eq!(wf.jobs[1].deps, vec![0]);
        // They communicate through the tmp path.
        assert_eq!(wf.tmp_paths.len(), 1);
        let tmp = &wf.tmp_paths[0];
        assert!(j0.ids().any(|i| matches!(j0.op(i), PhysicalOp::Store { path } if path == tmp)));
        assert!(j1.ids().any(|i| matches!(j1.op(i), PhysicalOp::Load { path } if path == tmp)));
    }

    #[test]
    fn l11_shape_three_jobs_with_diamond_deps() {
        let wf = compile_q(
            "A = load 'pv' as (user, ts);
             B = foreach A generate user;
             C = distinct B;
             alpha = load 'widerow' as (user0, c1);
             beta = foreach alpha generate user0;
             gamma = distinct beta;
             D = union C, gamma;
             E = distinct D;
             store E into '/out/l11';",
        );
        assert_eq!(wf.jobs.len(), 3);
        assert_eq!(wf.jobs[0].deps, Vec::<usize>::new());
        assert_eq!(wf.jobs[1].deps, Vec::<usize>::new());
        assert_eq!(wf.jobs[2].deps, vec![0, 1]);
        let j2 = &wf.jobs[2].plan;
        assert!(j2.ids().any(|i| matches!(j2.op(i), PhysicalOp::Union)));
        assert!(j2.ids().any(|i| matches!(j2.op(i), PhysicalOp::Distinct)));
        assert_eq!(j2.loads().len(), 2);
    }

    #[test]
    fn two_groups_in_sequence_make_two_jobs() {
        let wf = compile_q(
            "A = load '/d' as (u, v:int);
             G1 = group A by u;
             S1 = foreach G1 generate group, SUM(A.v) as sv;
             G2 = group S1 by sv;
             S2 = foreach G2 generate group, COUNT(S1);
             store S2 into '/o';",
        );
        assert_eq!(wf.jobs.len(), 2);
        assert_eq!(wf.jobs[1].deps, vec![0]);
    }

    #[test]
    fn join_of_two_grouped_relations_is_three_jobs() {
        let wf = compile_q(
            "A = load '/a' as (u, x:int);
             B = load '/b' as (v, y:int);
             GA = group A by u;
             SA = foreach GA generate group as u, SUM(A.x) as sx;
             GB = group B by v;
             SB = foreach GB generate group as v, SUM(B.y) as sy;
             J = join SA by u, SB by v;
             store J into '/o';",
        );
        assert_eq!(wf.jobs.len(), 3);
        // The join job depends on both group jobs.
        assert_eq!(wf.jobs[2].deps, vec![0, 1]);
        assert_eq!(wf.jobs[2].plan.loads().len(), 2);
    }

    #[test]
    fn map_only_store_job() {
        let wf = compile_q(
            "A = load '/d' as (a, b);
             B = filter A by a > 1;
             store B into '/o';",
        );
        assert_eq!(wf.jobs.len(), 1);
        let p = &wf.jobs[0].plan;
        // No blocking op: map-only plan Load->Filter->Store.
        assert!(p.ids().all(|i| !p.op(i).is_blocking()));
    }

    #[test]
    fn shared_scan_feeds_two_branches_in_one_job() {
        let wf = compile_q(
            "A = load '/d' as (x, y);
             B = foreach A generate x;
             C = foreach A generate y;
             D = join B by x, C by y;
             store D into '/o';",
        );
        assert_eq!(wf.jobs.len(), 1);
        // A single Load node feeds both projections.
        let p = &wf.jobs[0].plan;
        assert_eq!(p.loads().len(), 1);
        assert_eq!(p.consumers(p.loads()[0]).len(), 2);
    }

    #[test]
    fn store_directly_after_load_is_identity_job() {
        let wf = compile_q("A = load '/d' as (x); store A into '/o';");
        assert_eq!(wf.jobs.len(), 1);
        let p = &wf.jobs[0].plan;
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn multi_store_fanout_after_group() {
        // Group output consumed by two different aggregates, each stored:
        // the group job closes once, both consumers read the same tmp.
        let wf = compile_q(
            "A = load '/d' as (u, v:int);
             G = group A by u;
             S1 = foreach G generate group, SUM(A.v);
             S2 = foreach G generate group, COUNT(A);
             store S1 into '/o1';
             store S2 into '/o2';",
        );
        // Job 0 has the group; S1 pipelines in its reduce. S2 also
        // pipelines in the same reduce (both are non-blocking consumers).
        assert_eq!(wf.jobs.len(), 1);
        let p = &wf.jobs[0].plan;
        assert_eq!(p.stores().len(), 2);
    }
}
