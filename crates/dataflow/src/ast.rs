//! Abstract syntax tree of the Pig Latin subset.
//!
//! The grammar covers what PigMix-style workloads need: LOAD, FOREACH ..
//! GENERATE (scalar and aggregate forms), FILTER, JOIN, GROUP, COGROUP,
//! DISTINCT, UNION, ORDER BY, LIMIT, SPLIT .. INTO, and STORE.

use restore_common::{FieldType, Value};

/// A full query: a sequence of statements.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    pub statements: Vec<Statement>,
}

/// One statement. Assignments bind an alias; STORE is a sink.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `alias = <relation-expression>;`
    Assign { alias: String, rel: RelExpr },
    /// `STORE alias INTO 'path';`
    Store { alias: String, path: String },
    /// `SPLIT alias INTO a IF cond, b IF cond, ...;` — Pig's branching
    /// statement; each branch behaves like a FILTER of the input.
    Split { input: String, branches: Vec<(String, AstExpr)> },
}

/// Relational expressions (right-hand side of an assignment).
#[derive(Debug, Clone, PartialEq)]
pub enum RelExpr {
    /// `LOAD 'path' [USING name(...)] [AS (field[:type], ...)]`
    Load { path: String, schema: Vec<(String, FieldType)> },
    /// `FOREACH alias GENERATE item, ...`
    Foreach { input: String, items: Vec<GenItem> },
    /// `FILTER alias BY predicate`
    Filter { input: String, predicate: AstExpr },
    /// `JOIN a BY (k, ...), b BY (k, ...), ...`
    Join { inputs: Vec<(String, Vec<AstExpr>)> },
    /// `GROUP alias BY (k, ...)` or `GROUP alias ALL`
    Group { input: String, keys: Vec<AstExpr>, all: bool },
    /// `COGROUP a BY (k, ...), b BY (k, ...), ...`
    CoGroup { inputs: Vec<(String, Vec<AstExpr>)> },
    /// `DISTINCT alias`
    Distinct { input: String },
    /// `UNION a, b, ...`
    Union { inputs: Vec<String> },
    /// `ORDER alias BY field [ASC|DESC], ...`
    OrderBy { input: String, keys: Vec<(AstExpr, bool)> },
    /// `LIMIT alias n`
    Limit { input: String, n: u64 },
}

/// One item of a GENERATE clause.
#[derive(Debug, Clone, PartialEq)]
pub struct GenItem {
    pub expr: AstExpr,
    /// `AS name` alias for the output field.
    pub rename: Option<String>,
}

/// Expressions as parsed (names unresolved).
#[derive(Debug, Clone, PartialEq)]
pub enum AstExpr {
    /// Bare field name, or the special `group` after a GROUP.
    Field(String),
    /// `alias::field` (post-join disambiguation) — stored as one name.
    QualifiedField(String, String),
    /// Positional reference `$n`.
    Positional(usize),
    /// `bag_alias.field` — a field of a grouped bag (aggregate argument).
    BagField(String, String),
    /// Literal value.
    Lit(Value),
    /// Unary minus / NOT.
    Neg(Box<AstExpr>),
    Not(Box<AstExpr>),
    /// Binary arithmetic: + - * / %.
    Arith(Box<AstExpr>, char, Box<AstExpr>),
    /// Comparison: == != < <= > >=.
    Cmp(Box<AstExpr>, String, Box<AstExpr>),
    And(Box<AstExpr>, Box<AstExpr>),
    Or(Box<AstExpr>, Box<AstExpr>),
    /// `IS NULL` / `IS NOT NULL`.
    IsNull(Box<AstExpr>, bool),
    /// Function call: scalar (ROUND, CONCAT, ...) or aggregate
    /// (SUM, COUNT, AVG, MIN, MAX, COUNT_DISTINCT).
    Call(String, Vec<AstExpr>),
}

impl Program {
    /// Aliases referenced as inputs by any statement.
    pub fn referenced_aliases(&self) -> Vec<&str> {
        let mut out = Vec::new();
        for s in &self.statements {
            match s {
                Statement::Assign { rel, .. } => match rel {
                    RelExpr::Load { .. } => {}
                    RelExpr::Foreach { input, .. }
                    | RelExpr::Filter { input, .. }
                    | RelExpr::Group { input, .. }
                    | RelExpr::Distinct { input }
                    | RelExpr::OrderBy { input, .. }
                    | RelExpr::Limit { input, .. } => out.push(input.as_str()),
                    RelExpr::Join { inputs } | RelExpr::CoGroup { inputs } => {
                        out.extend(inputs.iter().map(|(a, _)| a.as_str()))
                    }
                    RelExpr::Union { inputs } => out.extend(inputs.iter().map(|s| s.as_str())),
                },
                Statement::Store { alias, .. } => out.push(alias.as_str()),
                Statement::Split { input, .. } => out.push(input.as_str()),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn referenced_aliases_collects_inputs() {
        let p = Program {
            statements: vec![
                Statement::Assign {
                    alias: "A".into(),
                    rel: RelExpr::Load { path: "/x".into(), schema: vec![] },
                },
                Statement::Assign {
                    alias: "B".into(),
                    rel: RelExpr::Filter {
                        input: "A".into(),
                        predicate: AstExpr::Lit(Value::Int(1)),
                    },
                },
                Statement::Store { alias: "B".into(), path: "/o".into() },
            ],
        };
        assert_eq!(p.referenced_aliases(), vec!["A", "B"]);
    }
}
