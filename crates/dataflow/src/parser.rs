//! Recursive-descent parser for the Pig Latin subset.

use crate::ast::{AstExpr, GenItem, Program, RelExpr, Statement};
use crate::lexer::{tokenize, Token, TokenKind};
use restore_common::{Error, FieldType, Result, Value};

/// Parse a full query text.
pub fn parse(src: &str) -> Result<Program> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut statements = Vec::new();
    while !p.at_eof() {
        statements.push(p.statement()?);
    }
    Ok(Program { statements })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek().kind, TokenKind::Eof)
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> Error {
        let t = self.peek();
        Error::parse(t.line, t.col, msg.into())
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token> {
        if &self.peek().kind == kind {
            Ok(self.advance())
        } else {
            Err(self.err(format!("expected {kind:?}, found {:?}", self.peek().kind)))
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.peek().kind.is_kw(kw) {
            self.advance();
            Ok(())
        } else {
            Err(self.err(format!("expected {kw}, found {:?}", self.peek().kind)))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().kind.is_kw(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.advance();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn str_lit(&mut self) -> Result<String> {
        match &self.peek().kind {
            TokenKind::StrLit(s) => {
                let s = s.clone();
                self.advance();
                Ok(s)
            }
            other => Err(self.err(format!("expected string literal, found {other:?}"))),
        }
    }

    // ---- statements ----

    fn statement(&mut self) -> Result<Statement> {
        if self.peek().kind.is_kw("SPLIT") {
            self.advance();
            let input = self.ident()?;
            self.expect_kw("INTO")?;
            let mut branches = Vec::new();
            loop {
                let alias = self.ident()?;
                self.expect_kw("IF")?;
                branches.push((alias, self.expr()?));
                if matches!(self.peek().kind, TokenKind::Comma) {
                    self.advance();
                } else {
                    break;
                }
            }
            if branches.len() < 2 {
                return Err(self.err("SPLIT needs at least two branches"));
            }
            self.expect(&TokenKind::Semi)?;
            return Ok(Statement::Split { input, branches });
        }
        if self.peek().kind.is_kw("STORE") {
            self.advance();
            let alias = self.ident()?;
            self.expect_kw("INTO")?;
            let path = self.str_lit()?;
            // Optional `USING name(...)` clause, ignored like Load's.
            if self.eat_kw("USING") {
                self.skip_using_clause()?;
            }
            self.expect(&TokenKind::Semi)?;
            return Ok(Statement::Store { alias, path });
        }
        let alias = self.ident()?;
        self.expect(&TokenKind::Assign)?;
        let rel = self.rel_expr()?;
        self.expect(&TokenKind::Semi)?;
        Ok(Statement::Assign { alias, rel })
    }

    fn rel_expr(&mut self) -> Result<RelExpr> {
        let t = self.peek().clone();
        match &t.kind {
            k if k.is_kw("LOAD") => self.load(),
            k if k.is_kw("FOREACH") => self.foreach(),
            k if k.is_kw("FILTER") => self.filter(),
            k if k.is_kw("JOIN") => self.join(false),
            k if k.is_kw("COGROUP") => self.join(true),
            k if k.is_kw("GROUP") => self.group(),
            k if k.is_kw("DISTINCT") => {
                self.advance();
                Ok(RelExpr::Distinct { input: self.ident()? })
            }
            k if k.is_kw("UNION") => {
                self.advance();
                let mut inputs = vec![self.ident()?];
                while matches!(self.peek().kind, TokenKind::Comma) {
                    self.advance();
                    inputs.push(self.ident()?);
                }
                Ok(RelExpr::Union { inputs })
            }
            k if k.is_kw("ORDER") => self.order_by(),
            k if k.is_kw("LIMIT") => {
                self.advance();
                let input = self.ident()?;
                match self.advance().kind {
                    TokenKind::IntLit(n) if n >= 0 => Ok(RelExpr::Limit { input, n: n as u64 }),
                    other => Err(self.err(format!("expected limit count, found {other:?}"))),
                }
            }
            other => Err(self.err(format!("expected relational operator, found {other:?}"))),
        }
    }

    fn skip_using_clause(&mut self) -> Result<()> {
        // `USING name` or `USING name('arg', ...)`; loader choice does not
        // affect semantics here.
        self.ident()?;
        if matches!(self.peek().kind, TokenKind::LParen) {
            let mut depth = 0usize;
            loop {
                match self.advance().kind {
                    TokenKind::LParen => depth += 1,
                    TokenKind::RParen => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    TokenKind::Eof => return Err(self.err("unterminated USING clause")),
                    _ => {}
                }
            }
        }
        Ok(())
    }

    fn load(&mut self) -> Result<RelExpr> {
        self.expect_kw("LOAD")?;
        let path = self.str_lit()?;
        if self.eat_kw("USING") {
            self.skip_using_clause()?;
        }
        let mut schema = Vec::new();
        if self.eat_kw("AS") {
            self.expect(&TokenKind::LParen)?;
            loop {
                let name = self.ident()?;
                let mut ty = FieldType::Bytearray;
                if matches!(&self.peek().kind, TokenKind::Ident(s) if s == ":") {
                    self.advance();
                    let tyname = self.ident()?;
                    ty = FieldType::parse(&tyname)
                        .ok_or_else(|| self.err(format!("unknown type {tyname:?}")))?;
                }
                schema.push((name, ty));
                if matches!(self.peek().kind, TokenKind::Comma) {
                    self.advance();
                } else {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        Ok(RelExpr::Load { path, schema })
    }

    fn foreach(&mut self) -> Result<RelExpr> {
        self.expect_kw("FOREACH")?;
        let input = self.ident()?;
        self.expect_kw("GENERATE")?;
        let mut items = Vec::new();
        loop {
            let expr = self.expr()?;
            let rename = if self.eat_kw("AS") { Some(self.ident()?) } else { None };
            items.push(GenItem { expr, rename });
            if matches!(self.peek().kind, TokenKind::Comma) {
                self.advance();
            } else {
                break;
            }
        }
        Ok(RelExpr::Foreach { input, items })
    }

    fn filter(&mut self) -> Result<RelExpr> {
        self.expect_kw("FILTER")?;
        let input = self.ident()?;
        self.expect_kw("BY")?;
        let predicate = self.expr()?;
        Ok(RelExpr::Filter { input, predicate })
    }

    fn join(&mut self, cogroup: bool) -> Result<RelExpr> {
        self.advance(); // JOIN or COGROUP
        let mut inputs = Vec::new();
        loop {
            let alias = self.ident()?;
            self.expect_kw("BY")?;
            let keys = self.key_spec()?;
            inputs.push((alias, keys));
            if matches!(self.peek().kind, TokenKind::Comma) {
                self.advance();
            } else {
                break;
            }
        }
        if inputs.len() < 2 {
            return Err(self.err("JOIN/COGROUP needs at least two inputs"));
        }
        Ok(if cogroup { RelExpr::CoGroup { inputs } } else { RelExpr::Join { inputs } })
    }

    fn group(&mut self) -> Result<RelExpr> {
        self.expect_kw("GROUP")?;
        let input = self.ident()?;
        if self.eat_kw("ALL") {
            return Ok(RelExpr::Group { input, keys: vec![], all: true });
        }
        self.expect_kw("BY")?;
        let keys = self.key_spec()?;
        Ok(RelExpr::Group { input, keys, all: false })
    }

    fn order_by(&mut self) -> Result<RelExpr> {
        self.expect_kw("ORDER")?;
        let input = self.ident()?;
        self.expect_kw("BY")?;
        let mut keys = Vec::new();
        loop {
            let e = self.expr()?;
            let asc = if self.eat_kw("DESC") {
                false
            } else {
                self.eat_kw("ASC");
                true
            };
            keys.push((e, asc));
            if matches!(self.peek().kind, TokenKind::Comma) {
                self.advance();
            } else {
                break;
            }
        }
        Ok(RelExpr::OrderBy { input, keys })
    }

    /// `expr` or `(expr, expr, ...)`.
    fn key_spec(&mut self) -> Result<Vec<AstExpr>> {
        if matches!(self.peek().kind, TokenKind::LParen) {
            self.advance();
            let mut keys = vec![self.expr()?];
            while matches!(self.peek().kind, TokenKind::Comma) {
                self.advance();
                keys.push(self.expr()?);
            }
            self.expect(&TokenKind::RParen)?;
            Ok(keys)
        } else {
            Ok(vec![self.expr()?])
        }
    }

    // ---- expressions (precedence climbing) ----

    fn expr(&mut self) -> Result<AstExpr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<AstExpr> {
        let mut lhs = self.and_expr()?;
        while self.peek().kind.is_kw("OR") {
            self.advance();
            let rhs = self.and_expr()?;
            lhs = AstExpr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<AstExpr> {
        let mut lhs = self.not_expr()?;
        while self.peek().kind.is_kw("AND") {
            self.advance();
            let rhs = self.not_expr()?;
            lhs = AstExpr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<AstExpr> {
        if self.peek().kind.is_kw("NOT") {
            self.advance();
            return Ok(AstExpr::Not(Box::new(self.not_expr()?)));
        }
        self.cmp_expr()
    }

    fn cmp_expr(&mut self) -> Result<AstExpr> {
        let lhs = self.add_expr()?;
        let op = match self.peek().kind {
            TokenKind::Eq => "==",
            TokenKind::Neq => "!=",
            TokenKind::Lt => "<",
            TokenKind::Le => "<=",
            TokenKind::Gt => ">",
            TokenKind::Ge => ">=",
            _ => {
                // Postfix `IS [NOT] NULL`.
                if self.peek().kind.is_kw("IS") {
                    self.advance();
                    let not = self.eat_kw("NOT");
                    self.expect_kw("NULL")?;
                    return Ok(AstExpr::IsNull(Box::new(lhs), !not));
                }
                return Ok(lhs);
            }
        };
        self.advance();
        let rhs = self.add_expr()?;
        Ok(AstExpr::Cmp(Box::new(lhs), op.to_string(), Box::new(rhs)))
    }

    fn add_expr(&mut self) -> Result<AstExpr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Plus => '+',
                TokenKind::Minus => '-',
                _ => break,
            };
            self.advance();
            let rhs = self.mul_expr()?;
            lhs = AstExpr::Arith(Box::new(lhs), op, Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<AstExpr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Star => '*',
                TokenKind::Slash => '/',
                TokenKind::Percent => '%',
                _ => break,
            };
            self.advance();
            let rhs = self.unary_expr()?;
            lhs = AstExpr::Arith(Box::new(lhs), op, Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<AstExpr> {
        if matches!(self.peek().kind, TokenKind::Minus) {
            self.advance();
            return Ok(AstExpr::Neg(Box::new(self.unary_expr()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<AstExpr> {
        let t = self.peek().clone();
        match &t.kind {
            TokenKind::IntLit(n) => {
                self.advance();
                Ok(AstExpr::Lit(Value::Int(*n)))
            }
            TokenKind::DoubleLit(d) => {
                self.advance();
                Ok(AstExpr::Lit(Value::Double(*d)))
            }
            TokenKind::StrLit(s) => {
                self.advance();
                Ok(AstExpr::Lit(Value::Str(s.clone())))
            }
            TokenKind::Positional(n) => {
                self.advance();
                Ok(AstExpr::Positional(*n))
            }
            TokenKind::LParen => {
                self.advance();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) if name.eq_ignore_ascii_case("NULL") => {
                self.advance();
                Ok(AstExpr::Lit(Value::Null))
            }
            TokenKind::Ident(name) => {
                let name = name.clone();
                self.advance();
                match &self.peek().kind {
                    // Function call.
                    TokenKind::LParen => {
                        self.advance();
                        let mut args = Vec::new();
                        if !matches!(self.peek().kind, TokenKind::RParen) {
                            args.push(self.expr()?);
                            while matches!(self.peek().kind, TokenKind::Comma) {
                                self.advance();
                                args.push(self.expr()?);
                            }
                        }
                        self.expect(&TokenKind::RParen)?;
                        Ok(AstExpr::Call(name, args))
                    }
                    // Bag field access `alias.field`.
                    TokenKind::Dot => {
                        self.advance();
                        let field = self.ident()?;
                        Ok(AstExpr::BagField(name, field))
                    }
                    // Join-disambiguated field `alias::field`.
                    TokenKind::DoubleColon => {
                        self.advance();
                        let field = self.ident()?;
                        Ok(AstExpr::QualifiedField(name, field))
                    }
                    _ => Ok(AstExpr::Field(name)),
                }
            }
            other => Err(self.err(format!("unexpected token {other:?} in expression"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_query_q1() {
        let q = "
            A = load 'page_views' as (user, timestamp, est_revenue, page_info, page_links);
            B = foreach A generate user, est_revenue;
            alpha = load 'users' as (name, phone, address, city);
            beta = foreach alpha generate name;
            C = join beta by name, B by user;
            store C into 'L2_out';
        ";
        let p = parse(q).unwrap();
        assert_eq!(p.statements.len(), 6);
        match &p.statements[4] {
            Statement::Assign { alias, rel: RelExpr::Join { inputs } } => {
                assert_eq!(alias, "C");
                assert_eq!(inputs.len(), 2);
                assert_eq!(inputs[0].0, "beta");
                assert_eq!(inputs[0].1, vec![AstExpr::Field("name".into())]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_group_and_aggregate() {
        let q = "
            D = group C by $0;
            E = foreach D generate group, SUM(C.est_revenue);
            store E into 'L3_out';
        ";
        let p = parse(q).unwrap();
        match &p.statements[0] {
            Statement::Assign { rel: RelExpr::Group { keys, all, .. }, .. } => {
                assert_eq!(keys, &vec![AstExpr::Positional(0)]);
                assert!(!all);
            }
            other => panic!("unexpected {other:?}"),
        }
        match &p.statements[1] {
            Statement::Assign { rel: RelExpr::Foreach { items, .. }, .. } => {
                assert_eq!(items[0].expr, AstExpr::Field("group".into()));
                assert_eq!(
                    items[1].expr,
                    AstExpr::Call(
                        "SUM".into(),
                        vec![AstExpr::BagField("C".into(), "est_revenue".into())]
                    )
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_group_all() {
        let p = parse("G = group A all;").unwrap();
        match &p.statements[0] {
            Statement::Assign { rel: RelExpr::Group { all, keys, .. }, .. } => {
                assert!(all);
                assert!(keys.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_filter_with_connectives() {
        let p = parse("B = filter A by (x > 3 and y == 'k') or not z;").unwrap();
        match &p.statements[0] {
            Statement::Assign { rel: RelExpr::Filter { predicate, .. }, .. } => {
                assert!(matches!(predicate, AstExpr::Or(_, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_distinct_union_order_limit() {
        let q = "
            B = distinct A;
            C = union A, B;
            D = order C by user desc, ts;
            E = limit D 10;
        ";
        let p = parse(q).unwrap();
        assert!(matches!(p.statements[0], Statement::Assign { rel: RelExpr::Distinct { .. }, .. }));
        match &p.statements[2] {
            Statement::Assign { rel: RelExpr::OrderBy { keys, .. }, .. } => {
                assert!(!keys[0].1); // desc
                assert!(keys[1].1); // implicit asc
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            p.statements[3],
            Statement::Assign { rel: RelExpr::Limit { n: 10, .. }, .. }
        ));
    }

    #[test]
    fn parses_cogroup_and_multi_keys() {
        let p = parse("C = cogroup A by (u, t), B by (name, ts);").unwrap();
        match &p.statements[0] {
            Statement::Assign { rel: RelExpr::CoGroup { inputs }, .. } => {
                assert_eq!(inputs[0].1.len(), 2);
                assert_eq!(inputs[1].1.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_load_with_using_and_types() {
        let p = parse("A = load '/d' using PigStorage('\\t') as (a:int, b:chararray, c:double);")
            .unwrap();
        match &p.statements[0] {
            Statement::Assign { rel: RelExpr::Load { path, schema }, .. } => {
                assert_eq!(path, "/d");
                assert_eq!(schema[0], ("a".into(), FieldType::Int));
                assert_eq!(schema[1], ("b".into(), FieldType::Chararray));
                assert_eq!(schema[2], ("c".into(), FieldType::Double));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_is_null() {
        let p = parse("B = filter A by x is not null;").unwrap();
        match &p.statements[0] {
            Statement::Assign { rel: RelExpr::Filter { predicate, .. }, .. } => {
                assert_eq!(
                    predicate,
                    &AstExpr::IsNull(Box::new(AstExpr::Field("x".into())), false)
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse("A = load ;").unwrap_err();
        assert!(err.to_string().contains("expected string literal"), "{err}");
        assert!(parse("A = join B by x;").is_err()); // single-input join
        assert!(parse("A = limit B 'x';").is_err());
        assert!(parse("store A;").is_err());
    }

    #[test]
    fn parses_split_statement() {
        let p = parse("split A into B if x > 1, C if x <= 1;").unwrap();
        match &p.statements[0] {
            Statement::Split { input, branches } => {
                assert_eq!(input, "A");
                assert_eq!(branches.len(), 2);
                assert_eq!(branches[0].0, "B");
                assert_eq!(branches[1].0, "C");
            }
            other => panic!("unexpected {other:?}"),
        }
        // Single-branch split is rejected.
        assert!(parse("split A into B if x > 1;").is_err());
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert!(parse("a = LOAD '/x' AS (f); STORE a INTO '/y';").is_ok());
        assert!(parse("a = LoAd '/x'; sToRe a InTo '/y';").is_ok());
    }
}
