//! Lowering: logical plan → physical plan.
//!
//! Logical and physical operators correspond 1:1 in this system (the
//! interesting physical decisions — map/reduce placement — happen in the
//! MR compiler), so lowering is a reachability-pruned structural copy.

use crate::logical::{LNodeId, LogicalOp, LogicalPlan};
use crate::physical::{NodeId, PhysicalOp, PhysicalPlan};
use restore_common::{Error, Result};
use std::collections::HashMap;

/// Lower a logical plan to a physical plan. Only nodes reachable from a
/// Store survive (dead aliases are dropped).
pub fn lower(logical: &LogicalPlan) -> Result<PhysicalPlan> {
    let stores = logical.stores();
    if stores.is_empty() {
        return Err(Error::Plan("logical plan has no Store".into()));
    }
    let mut phys = PhysicalPlan::new();
    let mut memo: HashMap<LNodeId, NodeId> = HashMap::new();
    for s in stores {
        lower_node(logical, s, &mut phys, &mut memo)?;
    }
    Ok(phys)
}

fn lower_node(
    logical: &LogicalPlan,
    id: LNodeId,
    phys: &mut PhysicalPlan,
    memo: &mut HashMap<LNodeId, NodeId>,
) -> Result<NodeId> {
    if let Some(&done) = memo.get(&id) {
        return Ok(done);
    }
    let node = logical.node(id);
    let mut inputs = Vec::with_capacity(node.inputs.len());
    for &i in &node.inputs {
        inputs.push(lower_node(logical, i, phys, memo)?);
    }
    let op = match &node.op {
        LogicalOp::Load { path } => PhysicalOp::Load { path: path.clone() },
        LogicalOp::Store { path } => PhysicalOp::Store { path: path.clone() },
        LogicalOp::Project { cols } => PhysicalOp::Project { cols: cols.clone() },
        LogicalOp::Foreach { exprs } => PhysicalOp::MapExpr { exprs: exprs.clone() },
        LogicalOp::Filter { pred } => PhysicalOp::Filter { pred: pred.clone() },
        LogicalOp::Join { keys } => PhysicalOp::Join { keys: keys.clone() },
        LogicalOp::Group { keys } => PhysicalOp::Group { keys: keys.clone() },
        LogicalOp::CoGroup { keys } => PhysicalOp::CoGroup { keys: keys.clone() },
        LogicalOp::Aggregate { items } => PhysicalOp::Aggregate { items: items.clone() },
        LogicalOp::Flatten { bag_col } => PhysicalOp::Flatten { bag_col: *bag_col },
        LogicalOp::Distinct => PhysicalOp::Distinct,
        LogicalOp::Union => PhysicalOp::Union,
        LogicalOp::OrderBy { keys } => PhysicalOp::OrderBy { keys: keys.clone() },
        LogicalOp::Limit { n } => PhysicalOp::Limit { n: *n },
    };
    let pid = phys.add(op, inputs);
    memo.insert(id, pid);
    Ok(pid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::optimize;
    use crate::parser::parse;

    fn lower_q(q: &str) -> PhysicalPlan {
        let l = optimize(LogicalPlan::from_ast(&parse(q).unwrap()).unwrap());
        lower(&l).unwrap()
    }

    #[test]
    fn q1_lowers_to_expected_shape() {
        let p = lower_q(
            "A = load 'pv' as (user, ts, rev:double, info, links);
             B = foreach A generate user, rev;
             alpha = load 'users' as (name, phone, addr, city);
             beta = foreach alpha generate name;
             C = join beta by name, B by user;
             store C into '/o';",
        );
        assert_eq!(p.loads().len(), 2);
        assert_eq!(p.stores().len(), 1);
        let join = p.ids().find(|&id| matches!(p.op(id), PhysicalOp::Join { .. })).unwrap();
        assert_eq!(p.inputs(join).len(), 2);
        // Both join inputs are projections over loads.
        for &i in p.inputs(join) {
            assert!(matches!(p.op(i), PhysicalOp::Project { .. }));
        }
    }

    #[test]
    fn dead_aliases_are_pruned() {
        let p = lower_q(
            "A = load '/a' as (x);
             Dead = load '/dead' as (y);
             B = filter A by x > 1;
             store B into '/o';",
        );
        assert_eq!(p.loads().len(), 1);
        assert!(matches!(p.op(p.loads()[0]), PhysicalOp::Load { path } if path == "/a"));
    }

    #[test]
    fn shared_alias_becomes_shared_node() {
        // The same Load feeds two branches — the DAG shares it.
        let p = lower_q(
            "A = load '/a' as (x, y);
             B = foreach A generate x;
             C = foreach A generate y;
             D = join B by x, C by y;
             store D into '/o';",
        );
        assert_eq!(p.loads().len(), 1);
        let load = p.loads()[0];
        assert_eq!(p.consumers(load).len(), 2);
    }

    #[test]
    fn group_aggregate_chain() {
        let p = lower_q(
            "A = load '/d' as (u, r:double);
             G = group A by u;
             S = foreach G generate group, SUM(A.r);
             store S into '/o';",
        );
        let order = p.topo_order();
        let kinds: Vec<&str> = order.iter().map(|&id| p.op(id).name()).collect();
        assert_eq!(kinds, vec!["Load", "Group", "Aggregate", "Store"]);
    }
}
