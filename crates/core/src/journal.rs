//! The snapshot journal: an append-only record log behind incremental
//! session checkpoints.
//!
//! A full `restore-state` dump costs O(repository) — at scale that is a
//! stall on the exact path the paper says should be cheap bookkeeping
//! (ReStore's metadata store is maintained *alongside* job execution,
//! §2.2). The journal makes checkpoint cost proportional to **what
//! changed** instead: every structural mutation is recorded as a typed
//! record at publish time, reuse accounting is dirty-tracked per entry,
//! and a delta capture drains only the accumulated records — no
//! quiesce, no repository walk.
//!
//! # Record grammar
//!
//! A record's payload is line-oriented text whose first line names its
//! type; bodies reuse the exact durable codecs of the tables they
//! touch, so a journaled insert and a full dump are byte-identical:
//!
//! ```text
//! counters <tick> <cand>
//! tenant-create <name:?>
//! tenant-config <name:?>          + config `key value` lines
//! tenant-config-clear <name:?>
//! global-config                   + config `key value` lines
//! repo-batch <space:?>            + `entry …` blocks / `evict <id>` lines, in order
//! note-use <space:?>              + `use <id> <count> <last>` lines (absolute values)
//! prov-batch <space:?>            + `path …` blocks / `forget <p:?>` lines, in order
//! prov-replace <space:?>          + a full provenance table
//! dlq-put <space:?>               + one `dead …` dead-letter entry (see [`crate::dlq`])
//! dlq-ack <space:?>               + `ack <id>` lines (entries removed)
//! breaker-state <space:?> <open|closed>
//! replace                         + a full `restore-state` document
//! ```
//!
//! One record is one **atomic replay unit** — a wave's registrations
//! land as a single `repo-batch` (plus its `prov-batch`), an eviction
//! sweep as a single `repo-batch` — so a recovered state is always a
//! prefix of committed batches, never half a wave.
//!
//! # Framing and the torn-tail rule
//!
//! Records are framed as `r <seq> <len> <fnv64>\n` followed by exactly
//! `len` payload bytes. `seq` is a session-global sequence number
//! drawn from one atomic counter inside the owning *lane's* lock — the
//! journal is striped into lanes so per-shard repository sinks append
//! in parallel, so a segment's physical order may interleave seqs from
//! different lanes (each lane is internally seq-ordered; recovery
//! sorts the union by seq before replay). `len` is the payload byte
//! length, and `fnv64` is the payload's FNV-1a 64-bit checksum in hex. A crash can truncate the tail of the segment being
//! written; on decode:
//!
//! * an **incomplete final frame** (header cut short, or fewer than
//!   `len` payload bytes remaining) in the *final* segment is a **torn
//!   tail**: it is dropped and recovery proceeds with the consistent
//!   prefix — truncation at *any* byte offset recovers to some prefix
//!   of committed records;
//! * the same in a non-final segment is an error (later segments would
//!   replay against a hole);
//! * a checksum mismatch on a *complete* frame, an unparseable frame
//!   header, or an undecodable payload is **corruption**, not a crash
//!   artifact, and fails with [`Error::Journal`] naming the segment and
//!   record.
//!
//! # Sequence numbers and compaction
//!
//! Base checkpoints (`restore-state v3`) record the journal sequence
//! number current when the capture began. Recovery replays only records
//! with `seq >` the base's, and every record is **idempotent** (puts
//! carry full entries, note-use carries absolute counters), so a base
//! captured concurrently with journaling is safe: a record the base
//! already reflects replays as a no-op. Compaction is therefore just
//! "take a fresh base, drop segments whose records it covers" — the
//! service's checkpoint keeper does exactly that when the
//! journal-to-base byte ratio crosses its threshold.

use crate::dlq::DlqEntry;
use crate::driver::ReStoreConfig;
use crate::provenance::{self, Provenance};
use crate::repository::{self, RepoOp};
use parking_lot::Mutex;
use restore_common::Error;
use restore_dataflow::physical::PhysicalPlan;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::sync::Arc;

/// First line of every journal segment.
pub const SEGMENT_HEADER: &str = "restore-journal v1";

/// Journal tuning.
#[derive(Debug, Clone)]
pub struct JournalConfig {
    /// Seal the live segment once it exceeds this many bytes; a delta
    /// capture may therefore return several segments.
    pub segment_bytes: usize,
}

impl Default for JournalConfig {
    fn default() -> Self {
        JournalConfig { segment_bytes: 64 * 1024 }
    }
}

/// Point-in-time journal introspection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalStats {
    pub enabled: bool,
    /// Last assigned record sequence number (0 = none yet).
    pub seq: u64,
    /// Bytes buffered in the live (unsealed) segment.
    pub live_bytes: usize,
    /// Sealed segments awaiting the next delta capture.
    pub sealed_segments: usize,
}

/// Where a torn tail was detected (and truncated) during recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TornTail {
    /// Index of the segment (in recovery order) carrying the tear.
    pub segment: usize,
    /// Byte offset of the first incomplete frame.
    pub offset: usize,
}

/// What a [`ReStore::recover`](crate::ReStore::recover) call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Journal sequence number the base checkpoint was anchored at.
    pub base_seq: u64,
    /// Records replayed on top of the base.
    pub records_applied: usize,
    /// Records skipped because the base already covered them.
    pub records_skipped: usize,
    /// A torn tail was detected in the final segment and truncated.
    pub torn_tail: Option<TornTail>,
}

// ---- decoded records ----

/// One decoded journal record (see the module docs for the grammar).
#[derive(Debug)]
pub(crate) enum Record {
    Counters { tick: u64, cand: u64 },
    TenantCreate { space: String },
    TenantConfigSet { space: String, config: ReStoreConfig },
    TenantConfigClear { space: String },
    GlobalConfig { config: ReStoreConfig },
    RepoBatch { space: String, ops: Vec<RepoRecOp> },
    NoteUse { space: String, uses: Vec<(u64, u64, u64)> },
    ProvBatch { space: String, ops: Vec<ProvRecOp> },
    ProvReplace { space: String, table: Provenance },
    DlqPut { space: String, entry: DlqEntry },
    DlqAck { space: String, ids: Vec<u64> },
    BreakerState { space: String, open: bool },
    Replace { state: String },
}

/// A decoded repository mutation, in application order.
#[derive(Debug)]
pub(crate) enum RepoRecOp {
    Put(repository::ParsedEntry),
    Evict(u64),
}

/// A decoded provenance mutation, in application order.
#[derive(Debug)]
pub(crate) enum ProvRecOp {
    Register { path: String, plan: PhysicalPlan },
    Forget { path: String },
}

// ---- checksum ----

/// FNV-1a 64-bit: tiny, dependency-free, and plenty to catch the
/// random corruption the frame checksum exists for.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

// ---- the journal ----

/// Number of independent append lanes. Repository batches from shard
/// `s` land in lane `s % JOURNAL_LANES`; every other record type uses
/// lane 0. More lanes than cores buys nothing — contention is already
/// gone once each busy shard maps to its own lane.
const JOURNAL_LANES: usize = 8;

/// The session journal: an append-only, segment-rolled record log.
/// Appends are cheap (encode + one short mutex section) and happen
/// inside the mutating table's writer section, so each lane's physical
/// order equals publish order for the shards it serves. The journal is
/// striped into [`JOURNAL_LANES`] lanes so per-shard repository sinks
/// append in parallel; the global `seq` is allocated *inside* the
/// owning lane's lock, which keeps every lane internally seq-ordered
/// and lets recovery merge lanes by sorting on seq. Disabled journals
/// drop appends at a single atomic load.
pub(crate) struct Journal {
    enabled: AtomicBool,
    /// Recovery replays records through the normal mutation paths;
    /// pausing stops those paths from re-journaling what they apply.
    paused: AtomicUsize,
    /// Last assigned sequence number (lock-free readers; assignments
    /// happen under the owning lane's lock).
    seq: AtomicU64,
    /// Seal the live lanes into a segment once their combined size
    /// crosses this bound.
    segment_bytes: AtomicUsize,
    /// Combined bytes buffered across live lanes (rollover trigger and
    /// stats — no lane locks needed to read it).
    live_bytes: AtomicUsize,
    /// Per-lane frame buffers (frames only; the segment header is
    /// prepended when lanes are rolled into a sealed segment).
    lanes: Vec<Mutex<String>>,
    /// Full segments sealed since the last delta capture.
    sealed: Mutex<Vec<String>>,
    /// Highest seq handed off by [`Journal::cut`] — `seq - captured_seq`
    /// is the records a crash right now would have to replay (the
    /// exposition's `restore_journal_seq_lag`).
    captured_seq: AtomicU64,
    /// Counters as last journaled, so a delta only carries a
    /// `counters` record when they moved.
    counters: Mutex<(u64, u64)>,
    /// Serializes delta captures (two concurrent captures would race
    /// on the dirty sets and segment hand-off).
    pub(crate) capture: Mutex<()>,
    /// Lineage token: bumped whenever the session's state is replaced
    /// wholesale *without* journaling what changed (recovery replay).
    /// Replication stamps shipments with it so a standby can detect
    /// that its primary rolled back underneath the record stream.
    lineage: AtomicU64,
    /// Segment taps, fired under the sealed-segments lock as each
    /// segment seals — observers (replication) therefore see segments
    /// in exactly the order recovery would replay them. A tap must not
    /// append to or roll this journal (the lanes are locked while it
    /// runs).
    taps: Mutex<Vec<(u64, SegmentTap)>>,
    tap_ids: AtomicU64,
}

/// A sealed-segment observer: called with the current lineage token and
/// the full segment text (header included) as each segment seals.
pub(crate) type SegmentTap = Arc<dyn Fn(u64, &str) + Send + Sync>;

/// Handle for deregistering a [`SegmentTap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct TapId(u64);

impl Default for Journal {
    fn default() -> Self {
        Journal {
            enabled: AtomicBool::new(false),
            paused: AtomicUsize::new(0),
            seq: AtomicU64::new(0),
            segment_bytes: AtomicUsize::new(JournalConfig::default().segment_bytes),
            live_bytes: AtomicUsize::new(0),
            lanes: (0..JOURNAL_LANES).map(|_| Mutex::new(String::new())).collect(),
            sealed: Mutex::new(Vec::new()),
            captured_seq: AtomicU64::new(0),
            counters: Mutex::new((0, 0)),
            capture: Mutex::new(()),
            lineage: AtomicU64::new(1),
            taps: Mutex::new(Vec::new()),
            tap_ids: AtomicU64::new(0),
        }
    }
}

impl Journal {
    pub(crate) fn enable(&self, config: JournalConfig) {
        self.segment_bytes.store(config.segment_bytes.max(SEGMENT_HEADER.len() + 1), SeqCst);
        self.enabled.store(true, SeqCst);
    }

    pub(crate) fn enabled(&self) -> bool {
        self.enabled.load(SeqCst)
    }

    /// Should an append actually record? (enabled and not paused)
    pub(crate) fn active(&self) -> bool {
        self.enabled() && self.paused.load(SeqCst) == 0
    }

    /// Last assigned sequence number.
    pub(crate) fn seq(&self) -> u64 {
        self.seq.load(SeqCst)
    }

    /// Never hand out a sequence number at or below `to` again (called
    /// when loading a base checkpoint that already covers them, and
    /// after recovery replays shipped or on-disk records). Records at
    /// or below `to` are durable in the caller's base or segments by
    /// definition, so the captured mark advances too — otherwise a
    /// freshly recovered session with empty lanes would report `to`
    /// records of phantom seq lag.
    pub(crate) fn advance_seq(&self, to: u64) {
        self.seq.fetch_max(to, SeqCst);
        self.captured_seq.fetch_max(to, SeqCst);
    }

    /// Current lineage token (see [`Journal::bump_lineage`]).
    pub(crate) fn lineage(&self) -> u64 {
        self.lineage.load(SeqCst)
    }

    /// Mark a lineage break: the session's state was replaced by a
    /// replay that did **not** journal what it applied (recovery), so a
    /// downstream replica that was tailing the old record stream can no
    /// longer reconcile by seq alone. Replication stamps every shipment
    /// with the token; a mismatch at the standby is a typed divergence
    /// that forces a full-base resync.
    pub(crate) fn bump_lineage(&self) {
        self.lineage.fetch_add(1, SeqCst);
    }

    /// Suspend recording for the guard's lifetime (journal replay).
    pub(crate) fn pause(&self) -> PauseGuard<'_> {
        self.paused.fetch_add(1, SeqCst);
        PauseGuard(self)
    }

    pub(crate) fn stats(&self) -> JournalStats {
        JournalStats {
            enabled: self.enabled(),
            seq: self.seq(),
            live_bytes: self.live_bytes.load(SeqCst),
            sealed_segments: self.sealed.lock().len(),
        }
    }

    /// Frame `payload` and append it to `lane`'s buffer, rolling every
    /// lane into a sealed segment once the combined live size crosses
    /// the bound. The global `seq` is drawn *inside* the owning lane's
    /// lock, so each lane's physical order equals its seq order — two
    /// lanes may interleave seqs within a segment, and recovery merges
    /// them by sorting on seq.
    fn append_payload(&self, lane: usize, payload: &str) {
        let total = {
            let mut buf = self.lanes[lane % JOURNAL_LANES].lock();
            let before = buf.len();
            let seq = self.seq.fetch_add(1, SeqCst) + 1;
            buf.push_str(&format!(
                "r {seq} {} {:016x}\n",
                payload.len(),
                fnv1a64(payload.as_bytes())
            ));
            buf.push_str(payload);
            let added = buf.len() - before;
            self.live_bytes.fetch_add(added, SeqCst) + added
        };
        if total >= self.segment_bytes.load(SeqCst) {
            self.roll();
        }
    }

    /// Concatenate every non-empty lane (ascending lane order) into one
    /// sealed segment. Lanes are locked in ascending order with no
    /// other lane lock held, so concurrent rolls cannot deadlock; a
    /// roll that loses the race just finds the lanes already empty.
    fn roll(&self) {
        let mut guards: Vec<_> = self.lanes.iter().map(|l| l.lock()).collect();
        let mut seg = String::new();
        for g in guards.iter_mut() {
            if !g.is_empty() {
                if seg.is_empty() {
                    seg.push_str(SEGMENT_HEADER);
                    seg.push('\n');
                }
                seg.push_str(g);
                self.live_bytes.fetch_sub(g.len(), SeqCst);
                g.clear();
            }
        }
        if !seg.is_empty() {
            // Push and notify under one sealed-lock hold: concurrent
            // rolls cannot reorder between the queue and the taps, so
            // observers see segments in recovery order.
            let mut sealed = self.sealed.lock();
            let lineage = self.lineage();
            for (_, tap) in self.taps.lock().iter() {
                tap(lineage, &seg);
            }
            sealed.push(seg);
        }
    }

    /// Register a sealed-segment observer (see [`SegmentTap`]). The tap
    /// sees every segment sealed from here on; segments sealed earlier
    /// are invisible to it, which is why replication registers its tap
    /// *before* capturing the anchoring base.
    pub(crate) fn add_tap(&self, tap: SegmentTap) -> TapId {
        let id = TapId(self.tap_ids.fetch_add(1, SeqCst) + 1);
        self.taps.lock().push((id.0, tap));
        id
    }

    pub(crate) fn remove_tap(&self, id: TapId) {
        self.taps.lock().retain(|(tid, _)| *tid != id.0);
    }

    /// Seal the live lanes into a segment **without** consuming the
    /// sealed queue or advancing the captured mark: the segment still
    /// belongs to the next [`Journal::cut`] (the checkpoint keeper's
    /// delta), while registered taps have already received a copy —
    /// replication shipping and incremental checkpointing share the
    /// same sealed segments without stealing from each other.
    pub(crate) fn seal(&self) {
        self.roll();
    }

    /// Seal the live lanes (if non-empty) and hand every sealed
    /// segment to the caller; the journal forgets them — the caller
    /// (the driver's `save_state_delta`) owns persistence from here.
    pub(crate) fn cut(&self) -> Vec<String> {
        self.roll();
        let segments = std::mem::take(&mut *self.sealed.lock());
        // Everything sequenced before the roll is now the caller's to
        // persist; later appends are the new lag.
        self.captured_seq.fetch_max(self.seq(), SeqCst);
        segments
    }

    /// Records appended since the last [`Journal::cut`] (what a crash
    /// right now would replay from the live lanes).
    pub(crate) fn seq_lag(&self) -> u64 {
        self.seq().saturating_sub(self.captured_seq.load(SeqCst))
    }

    /// Buffered bytes per live lane (locks each lane briefly, one at a
    /// time — stats only, never on the append path).
    pub(crate) fn lane_bytes(&self) -> Vec<usize> {
        self.lanes.iter().map(|l| l.lock().len()).collect()
    }

    // ---- typed appends (encode side) ----

    /// Append a `counters` record iff tick/cand moved since the last
    /// one. Returns whether a record was appended.
    pub(crate) fn append_counters_if_changed(&self, tick: u64, cand: u64) -> bool {
        if !self.active() {
            return false;
        }
        {
            let mut last = self.counters.lock();
            if *last == (tick, cand) {
                return false;
            }
            *last = (tick, cand);
        }
        self.append_payload(0, &format!("counters {tick} {cand}\n"));
        true
    }

    /// Overwrite the `counters` dedup cache without appending. Replay
    /// paths (state load, recovery, shipped-record replay) move
    /// tick/cand with the journal paused; the cache must follow, or the
    /// next delta capture would re-emit an unchanged pair as a phantom
    /// record.
    pub(crate) fn sync_counters_cache(&self, tick: u64, cand: u64) {
        *self.counters.lock() = (tick, cand);
    }

    pub(crate) fn append_tenant_create(&self, space: &str) {
        if self.active() {
            self.append_payload(0, &format!("tenant-create {space:?}\n"));
        }
    }

    pub(crate) fn append_tenant_config(&self, space: &str, config: Option<&ReStoreConfig>) {
        if !self.active() {
            return;
        }
        match config {
            Some(c) => self.append_payload(
                0,
                &format!("tenant-config {space:?}\n{}", crate::state::encode_config(c)),
            ),
            None => self.append_payload(0, &format!("tenant-config-clear {space:?}\n")),
        }
    }

    pub(crate) fn append_global_config(&self, config: &ReStoreConfig) {
        if self.active() {
            self.append_payload(
                0,
                &format!("global-config\n{}", crate::state::encode_config(config)),
            );
        }
    }

    /// Journal one repository batch from `shard`. The record format
    /// carries no shard number — entries re-route by tip signature on
    /// replay, so a journal taken under one shard count replays
    /// correctly into any other. The shard picks the append *lane*, so
    /// sinks of different shards append in parallel.
    pub(crate) fn append_repo_batch(&self, space: &str, shard: usize, ops: &[RepoOp]) {
        if !self.active() {
            return;
        }
        let mut payload = format!("repo-batch {space:?}\n");
        for op in ops {
            match op {
                RepoOp::Put(e) => repository::encode_entry_into(&mut payload, e),
                RepoOp::Evict(id) => payload.push_str(&format!("evict {id}\n")),
            }
        }
        self.append_payload(shard, &payload);
    }

    pub(crate) fn append_note_use(&self, space: &str, uses: &[(u64, u64, u64)]) {
        if !self.active() || uses.is_empty() {
            return;
        }
        let mut payload = format!("note-use {space:?}\n");
        for (id, count, last) in uses {
            payload.push_str(&format!("use {id} {count} {last}\n"));
        }
        self.append_payload(0, &payload);
    }

    pub(crate) fn append_prov_batch(
        &self,
        space: &str,
        registers: &[(String, Arc<PhysicalPlan>)],
        forgets: &[String],
    ) {
        if !self.active() || (registers.is_empty() && forgets.is_empty()) {
            return;
        }
        let mut payload = format!("prov-batch {space:?}\n");
        for (path, plan) in registers {
            provenance::encode_record_into(&mut payload, path, plan);
        }
        for path in forgets {
            payload.push_str(&format!("forget {path:?}\n"));
        }
        self.append_payload(0, &payload);
    }

    pub(crate) fn append_prov_replace(&self, space: &str, table: &str) {
        if self.active() {
            self.append_payload(0, &format!("prov-replace {space:?}\n{table}"));
        }
    }

    /// Journal one dead-letter put. Called inside the queue's lock, so
    /// record order equals application order under racing puts.
    pub(crate) fn append_dlq_put(&self, space: &str, entry: &DlqEntry) {
        if !self.active() {
            return;
        }
        let mut payload = format!("dlq-put {space:?}\n");
        crate::dlq::encode_entry_into(&mut payload, entry);
        self.append_payload(0, &payload);
    }

    /// Journal a dead-letter removal (redrive or purge) by entry id.
    pub(crate) fn append_dlq_ack(&self, space: &str, ids: &[u64]) {
        if !self.active() || ids.is_empty() {
            return;
        }
        let mut payload = format!("dlq-ack {space:?}\n");
        for id in ids {
            payload.push_str(&format!("ack {id}\n"));
        }
        self.append_payload(0, &payload);
    }

    /// Journal a circuit-breaker transition for a tenant (`""` is the
    /// default tenant), so a promoted standby inherits open breakers
    /// instead of admitting a thundering herd at the failing tenant.
    pub(crate) fn append_breaker_state(&self, space: &str, open: bool) {
        if self.active() {
            let state = if open { "open" } else { "closed" };
            self.append_payload(0, &format!("breaker-state {space:?} {state}\n"));
        }
    }

    pub(crate) fn append_replace(&self, state: &str) {
        if self.active() {
            self.append_payload(0, &format!("replace\n{state}"));
        }
    }
}

/// RAII pause token from [`Journal::pause`].
pub(crate) struct PauseGuard<'a>(&'a Journal);

impl Drop for PauseGuard<'_> {
    fn drop(&mut self) {
        self.0.paused.fetch_sub(1, SeqCst);
    }
}

// ---- decode side ----

/// Byte offsets at which `segment` cleanly splits: after the segment
/// header and after every complete, checksum-valid frame. Truncating
/// the segment at any byte `o` recovers exactly the records before the
/// largest boundary ≤ `o` — the torn-tail rule in one list. Returns an
/// empty list when the text does not begin with a full segment header.
pub fn segment_boundaries(segment: &str) -> Vec<usize> {
    let header_len = SEGMENT_HEADER.len() + 1;
    if !segment.starts_with(SEGMENT_HEADER) || segment.len() < header_len {
        return Vec::new();
    }
    let mut out = vec![header_len];
    let mut pos = header_len;
    while pos < segment.len() {
        let Some((_, len, sum, body_start)) = parse_frame_at(segment, pos) else { break };
        let end = body_start + len;
        if end > segment.len() || fnv1a64(&segment.as_bytes()[body_start..end]) != sum {
            // Incomplete or checksum-invalid frame: no boundary past
            // here — decode_segment would reject the same frame.
            break;
        }
        out.push(end);
        pos = end;
    }
    out
}

/// `(min_seq, max_seq, frames)` of a sealed segment, by walking frame
/// headers only — no payload decode, no checksum. Lanes interleave
/// inside a segment, so the first frame is not necessarily the lowest
/// seq. `None` for a header-less or frame-less segment. Replication
/// stamps shipments with the max (the standby's catch-up target)
/// without paying for a decode the standby does anyway.
pub(crate) fn segment_seq_span(segment: &str) -> Option<(u64, u64, usize)> {
    let header_len = SEGMENT_HEADER.len() + 1;
    if !segment.starts_with(SEGMENT_HEADER) || segment.len() < header_len {
        return None;
    }
    let mut span: Option<(u64, u64, usize)> = None;
    let mut pos = header_len;
    while pos < segment.len() {
        let (seq, len, _, body_start) = parse_frame_at(segment, pos)?;
        let end = body_start + len;
        if end > segment.len() {
            return None;
        }
        span = Some(match span {
            None => (seq, seq, 1),
            Some((lo, hi, n)) => (lo.min(seq), hi.max(seq), n + 1),
        });
        pos = end;
    }
    span
}

/// Parse the frame header starting at `pos`; returns
/// `(seq, payload_len, checksum, payload_start)` or `None` when the
/// header line is incomplete or unparseable.
fn parse_frame_at(text: &str, pos: usize) -> Option<(u64, usize, u64, usize)> {
    let nl = text[pos..].find('\n')?;
    let line = &text[pos..pos + nl];
    let rest = line.strip_prefix("r ")?;
    let mut it = rest.split(' ');
    let seq: u64 = it.next()?.parse().ok()?;
    let len: usize = it.next()?.parse().ok()?;
    let sum = u64::from_str_radix(it.next()?, 16).ok()?;
    if it.next().is_some() {
        return None;
    }
    Some((seq, len, sum, pos + nl + 1))
}

/// A decoded segment: the `(seq, record)` pairs plus the torn tail, if
/// the final frame was cut short.
pub(crate) type DecodedSegment = (Vec<(u64, Record)>, Option<TornTail>);

/// Decode one segment into `(seq, record)` pairs. `is_final` permits a
/// torn tail (reported, not fatal); any other malformation is an
/// [`Error::Journal`] naming the segment and the 1-based record
/// ordinal.
pub(crate) fn decode_segment(
    text: &str,
    segment: usize,
    is_final: bool,
) -> restore_common::Result<DecodedSegment> {
    let err = |record: usize, msg: String| Error::Journal { segment, record, msg };
    let torn = |records, offset| Ok((records, Some(TornTail { segment, offset })));
    let header_len = SEGMENT_HEADER.len() + 1;
    if !text.starts_with(SEGMENT_HEADER) || text.len() < header_len {
        // A truncated header can only happen to the segment being
        // written at crash time.
        if is_final && format!("{SEGMENT_HEADER}\n").starts_with(text) {
            return torn(Vec::new(), 0);
        }
        return Err(err(0, "missing segment header".into()));
    }
    let mut records = Vec::new();
    let mut pos = header_len;
    let mut ordinal = 0usize;
    while pos < text.len() {
        ordinal += 1;
        let Some(nl) = text[pos..].find('\n') else {
            // Header line cut short mid-write.
            if is_final {
                return torn(records, pos);
            }
            return Err(err(ordinal, "truncated frame header in non-final segment".into()));
        };
        let Some((seq, len, sum, body_start)) = parse_frame_at(text, pos) else {
            // The line is complete (its newline survived), so an
            // unparseable header is corruption, not truncation.
            return Err(err(ordinal, format!("bad frame header {:?}", &text[pos..pos + nl])));
        };
        if body_start + len > text.len() {
            if is_final {
                return torn(records, pos);
            }
            return Err(err(ordinal, "truncated record payload in non-final segment".into()));
        }
        let payload = &text[body_start..body_start + len];
        let actual = fnv1a64(payload.as_bytes());
        if actual != sum {
            return Err(err(
                ordinal,
                format!("checksum mismatch for record seq {seq}: stored {sum:016x}, computed {actual:016x}"),
            ));
        }
        let record = decode_payload(payload).map_err(|msg| err(ordinal, msg))?;
        records.push((seq, record));
        pos = body_start + len;
    }
    Ok((records, None))
}

/// Decode one record payload (the framed bytes, checksum already
/// verified). Errors are plain messages; the caller attaches segment /
/// record coordinates.
fn decode_payload(payload: &str) -> Result<Record, String> {
    let nl = payload.find('\n').ok_or("record payload has no tag line")?;
    let tag_line = &payload[..nl];
    let body = &payload[nl + 1..];
    let (tag, arg) = match tag_line.split_once(' ') {
        Some((t, a)) => (t, a),
        None => (tag_line, ""),
    };
    let space = |arg: &str| -> Result<String, String> {
        crate::state::unquote(arg, 0).map_err(|_| format!("bad space name {arg:?}"))
    };
    match tag {
        "counters" => {
            let (t, c) = arg.split_once(' ').ok_or("counters record needs two values")?;
            Ok(Record::Counters {
                tick: t.parse().map_err(|_| "bad tick value".to_string())?,
                cand: c.parse().map_err(|_| "bad cand value".to_string())?,
            })
        }
        "tenant-create" => Ok(Record::TenantCreate { space: space(arg)? }),
        "tenant-config" => {
            let lines: Vec<&str> = body.lines().collect();
            let config =
                crate::state::decode_config(&lines, 0).map_err(|e| format!("in config: {e}"))?;
            Ok(Record::TenantConfigSet { space: space(arg)?, config })
        }
        "tenant-config-clear" => Ok(Record::TenantConfigClear { space: space(arg)? }),
        "global-config" => {
            let lines: Vec<&str> = body.lines().collect();
            let config =
                crate::state::decode_config(&lines, 0).map_err(|e| format!("in config: {e}"))?;
            Ok(Record::GlobalConfig { config })
        }
        "repo-batch" => {
            let space = space(arg)?;
            let mut ops = Vec::new();
            let mut lines = body.lines().peekable();
            loop {
                match repository::parse_entry_lines(&mut lines) {
                    Ok(Some(e)) => {
                        ops.push(RepoRecOp::Put(e));
                        continue;
                    }
                    Ok(None) => {}
                    Err(e) => return Err(format!("in repo-batch: {e}")),
                }
                let Some(line) = lines.next() else { break };
                let Some(id) = line.strip_prefix("evict ") else {
                    return Err(format!("unexpected repo-batch line {line:?}"));
                };
                let id = id.parse().map_err(|_| format!("bad evict id {line:?}"))?;
                ops.push(RepoRecOp::Evict(id));
            }
            Ok(Record::RepoBatch { space, ops })
        }
        "note-use" => {
            let space = space(arg)?;
            let mut uses = Vec::new();
            for line in body.lines() {
                let rest = line
                    .strip_prefix("use ")
                    .ok_or_else(|| format!("unexpected note-use line {line:?}"))?;
                let mut it = rest.split(' ');
                let mut next = || {
                    it.next()
                        .and_then(|v| v.parse::<u64>().ok())
                        .ok_or_else(|| format!("bad note-use line {line:?}"))
                };
                uses.push((next()?, next()?, next()?));
            }
            Ok(Record::NoteUse { space, uses })
        }
        "prov-batch" => {
            let space = space(arg)?;
            let mut ops = Vec::new();
            let mut lines = body.lines().peekable();
            loop {
                match provenance::parse_record_lines(&mut lines) {
                    Ok(Some((path, plan))) => {
                        ops.push(ProvRecOp::Register { path, plan });
                        continue;
                    }
                    Ok(None) => {}
                    Err(e) => return Err(format!("in prov-batch: {e}")),
                }
                let Some(line) = lines.next() else { break };
                let Some(p) = line.strip_prefix("forget ") else {
                    return Err(format!("unexpected prov-batch line {line:?}"));
                };
                let path =
                    crate::state::unquote(p, 0).map_err(|_| format!("bad forget path {p:?}"))?;
                ops.push(ProvRecOp::Forget { path });
            }
            Ok(Record::ProvBatch { space, ops })
        }
        "prov-replace" => {
            let table =
                Provenance::load(body).map_err(|e| format!("in prov-replace table: {e}"))?;
            Ok(Record::ProvReplace { space: space(arg)?, table })
        }
        "dlq-put" => {
            let space = space(arg)?;
            let mut lines = body.lines().peekable();
            let entry = crate::dlq::parse_entry_lines(&mut lines)
                .map_err(|e| format!("in dlq-put: {e}"))?
                .ok_or("dlq-put record has no entry")?;
            if let Some(line) = lines.next() {
                return Err(format!("unexpected dlq-put line {line:?}"));
            }
            Ok(Record::DlqPut { space, entry })
        }
        "dlq-ack" => {
            let space = space(arg)?;
            let mut ids = Vec::new();
            for line in body.lines() {
                let id = line
                    .strip_prefix("ack ")
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| format!("bad dlq-ack line {line:?}"))?;
                ids.push(id);
            }
            Ok(Record::DlqAck { space, ids })
        }
        "breaker-state" => {
            let (name, state) =
                arg.rsplit_once(' ').ok_or("breaker-state record needs a space and a state")?;
            let open = match state {
                "open" => true,
                "closed" => false,
                other => return Err(format!("bad breaker state {other:?}")),
            };
            Ok(Record::BreakerState { space: space(name)?, open })
        }
        "replace" => Ok(Record::Replace { state: body.to_string() }),
        other => Err(format!("unknown record type {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn journal() -> Journal {
        let j = Journal::default();
        j.enable(JournalConfig::default());
        j
    }

    #[test]
    fn disabled_journal_drops_appends() {
        let j = Journal::default();
        j.append_tenant_create("ana");
        assert_eq!(j.seq(), 0);
        assert!(j.cut().is_empty());
    }

    #[test]
    fn paused_journal_drops_appends() {
        let j = journal();
        {
            let _p = j.pause();
            j.append_tenant_create("ana");
        }
        assert_eq!(j.seq(), 0);
        j.append_tenant_create("ana");
        assert_eq!(j.seq(), 1);
    }

    #[test]
    fn records_round_trip_through_a_segment() {
        let j = journal();
        j.append_counters_if_changed(7, 3);
        j.append_tenant_create("ana");
        j.append_note_use("", &[(4, 10, 99)]);
        let segs = j.cut();
        assert_eq!(segs.len(), 1);
        let (records, torn) = decode_segment(&segs[0], 0, true).unwrap();
        assert!(torn.is_none());
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].0, 1);
        assert!(matches!(records[0].1, Record::Counters { tick: 7, cand: 3 }));
        assert!(matches!(&records[1].1, Record::TenantCreate { space } if space == "ana"));
        match &records[2].1 {
            Record::NoteUse { space, uses } => {
                assert_eq!(space, "");
                assert_eq!(uses, &vec![(4, 10, 99)]);
            }
            other => panic!("expected note-use, got {other:?}"),
        }
    }

    #[test]
    fn breaker_state_round_trips() {
        let j = journal();
        j.append_breaker_state("ana", true);
        j.append_breaker_state("", false);
        let seg = j.cut().pop().unwrap();
        let (records, torn) = decode_segment(&seg, 0, true).unwrap();
        assert!(torn.is_none());
        assert_eq!(records.len(), 2);
        assert!(
            matches!(&records[0].1, Record::BreakerState { space, open: true } if space == "ana")
        );
        assert!(
            matches!(&records[1].1, Record::BreakerState { space, open: false } if space.is_empty())
        );
    }

    #[test]
    fn counters_record_only_when_changed() {
        let j = journal();
        assert!(j.append_counters_if_changed(1, 0));
        assert!(!j.append_counters_if_changed(1, 0));
        assert!(j.append_counters_if_changed(2, 0));
    }

    #[test]
    fn segments_roll_over_at_the_size_bound() {
        let j = Journal::default();
        j.enable(JournalConfig { segment_bytes: 64 });
        for i in 0..10 {
            j.append_tenant_create(&format!("tenant-{i}"));
        }
        let segs = j.cut();
        assert!(segs.len() > 1, "expected rollover, got {} segment(s)", segs.len());
        // Every sealed segment decodes cleanly and the seqs chain.
        let mut seqs = Vec::new();
        for (i, s) in segs.iter().enumerate() {
            let (records, torn) = decode_segment(s, i, i + 1 == segs.len()).unwrap();
            assert!(torn.is_none());
            seqs.extend(records.iter().map(|(q, _)| *q));
        }
        assert_eq!(seqs, (1..=10).collect::<Vec<u64>>());
    }

    #[test]
    fn truncation_at_every_byte_is_a_clean_prefix_or_torn() {
        let j = journal();
        for i in 0..5 {
            j.append_tenant_create(&format!("t{i}"));
        }
        let seg = j.cut().pop().unwrap();
        let boundaries = segment_boundaries(&seg);
        assert_eq!(boundaries.len(), 6, "header + five records");
        for cut in 0..=seg.len() {
            let t = &seg[..cut];
            let (records, torn) = decode_segment(t, 0, true)
                .unwrap_or_else(|e| panic!("cut at {cut} must not be fatal: {e}"));
            let want = boundaries.iter().filter(|&&b| b <= cut).count().saturating_sub(1);
            assert_eq!(records.len(), want, "cut at byte {cut}");
            let at_boundary = boundaries.contains(&cut) || cut == seg.len();
            assert_eq!(torn.is_none(), at_boundary, "cut at byte {cut}");
        }
    }

    #[test]
    fn torn_tail_in_non_final_segment_is_an_error() {
        let j = journal();
        j.append_tenant_create("ana");
        let seg = j.cut().pop().unwrap();
        let t = &seg[..seg.len() - 3];
        match decode_segment(t, 2, false) {
            Err(Error::Journal { segment: 2, record: 1, msg }) => {
                assert!(msg.contains("non-final"), "{msg}");
            }
            other => panic!("expected a journal error, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_checksum_names_the_record() {
        let j = journal();
        j.append_tenant_create("ana");
        j.append_tenant_create("bo");
        let seg = j.cut().pop().unwrap();
        // Flip one payload byte of the *second* record.
        let pos = seg.rfind("bo").unwrap();
        let mut bytes = seg.into_bytes();
        bytes[pos] = b'X';
        let seg = String::from_utf8(bytes).unwrap();
        match decode_segment(&seg, 0, true) {
            Err(Error::Journal { segment: 0, record: 2, msg }) => {
                assert!(msg.contains("checksum"), "{msg}");
            }
            other => panic!("expected a checksum error, got {other:?}"),
        }
    }

    #[test]
    fn unknown_record_type_names_the_record() {
        let payload = "frobnicate\n";
        let seg = format!(
            "{SEGMENT_HEADER}\nr 1 {} {:016x}\n{payload}",
            payload.len(),
            fnv1a64(payload.as_bytes())
        );
        match decode_segment(&seg, 0, true) {
            Err(Error::Journal { record: 1, msg, .. }) => {
                assert!(msg.contains("frobnicate"), "{msg}");
            }
            other => panic!("expected a decode error, got {other:?}"),
        }
    }
}
