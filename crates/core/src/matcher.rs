//! Plan matching — §3 of the paper.
//!
//! A repository plan *matches* an input job plan when it is **contained**
//! in it: every operator of the repository plan has an equivalent
//! operator in the input plan. Two operators are equivalent when "(1)
//! their inputs are pipelined from operators that are equivalent or from
//! the same data sets, and (2) they perform functions that produce the
//! same output data". We realize (2) structurally: operators are
//! equivalent when their kinds and parameters are identical (`PhysicalOp:
//! Eq`), with two normalizations — `Store` operators compare equal
//! regardless of target path (a materialization point does not change
//! what is computed), and `Split` tees are transparent.
//!
//! [`pairwise_plan_traversal`] implements the paper's Algorithm 1: a
//! simultaneous depth-first walk of both plans starting from their Load
//! frontiers. The walk delegates the per-pair decision to the memoized
//! recursive [`equivalent`] check, which resolves the ambiguity the
//! pseudocode leaves open for multi-input operators (Join inputs must
//! match *positionally*, because join keys are per-position).

use restore_dataflow::physical::{NodeId, PhysicalOp, PhysicalPlan};
use std::collections::HashMap;

/// Result of a successful containment test.
#[derive(Debug, Clone)]
pub struct PlanMatch {
    /// Node in the *input* plan equivalent to the repository plan's tip
    /// (the operator feeding its Store). Rewriting replaces this node's
    /// output with a Load of the stored result.
    pub tip: NodeId,
    /// repo node → input node correspondence for the matched region.
    pub mapping: HashMap<NodeId, NodeId>,
}

/// Skip through transparent `Split` tees.
fn through_splits(plan: &PhysicalPlan, mut id: NodeId) -> NodeId {
    while matches!(plan.op(id), PhysicalOp::Split) {
        id = plan.inputs(id)[0];
    }
    id
}

/// The operator feeding a single-Store plan's Store node.
pub fn plan_tip(plan: &PhysicalPlan) -> Option<NodeId> {
    let stores = plan.stores();
    match stores.as_slice() {
        [s] => Some(through_splits(plan, plan.inputs(*s)[0])),
        _ => None,
    }
}

struct Matcher<'a> {
    repo: &'a PhysicalPlan,
    input: &'a PhysicalPlan,
    memo: HashMap<(NodeId, NodeId), bool>,
}

impl<'a> Matcher<'a> {
    /// Recursive operator equivalence with memoization.
    fn equivalent(&mut self, r: NodeId, p: NodeId) -> bool {
        let r = through_splits(self.repo, r);
        let p = through_splits(self.input, p);
        if let Some(&hit) = self.memo.get(&(r, p)) {
            return hit;
        }
        // Insert a provisional false to break any accidental cycle.
        self.memo.insert((r, p), false);
        let result = self.equivalent_uncached(r, p);
        self.memo.insert((r, p), result);
        result
    }

    fn equivalent_uncached(&mut self, r: NodeId, p: NodeId) -> bool {
        let (rop, pop) = (self.repo.op(r), self.input.op(p));
        let params_equal = match (rop, pop) {
            // Same data set: Load paths must agree.
            (PhysicalOp::Load { path: a }, PhysicalOp::Load { path: b }) => a == b,
            // Store location does not change the computed data.
            (PhysicalOp::Store { .. }, PhysicalOp::Store { .. }) => true,
            (a, b) => a == b,
        };
        if !params_equal {
            return false;
        }
        let (rin, pin) = (self.repo.inputs(r), self.input.inputs(p));
        if rin.len() != pin.len() {
            return false;
        }
        // Positional input equivalence: parameters like join keys are
        // per-position, so inputs cannot be permuted.
        rin.iter().zip(pin.iter()).all(|(&ri, &pi)| self.equivalent(ri, pi))
    }

    /// Record the repo→input correspondence for a proven-equivalent pair.
    fn collect_mapping(&self, r: NodeId, p: NodeId, out: &mut HashMap<NodeId, NodeId>) {
        let r = through_splits(self.repo, r);
        let p = through_splits(self.input, p);
        if out.insert(r, p).is_some() {
            return;
        }
        for (&ri, &pi) in self.repo.inputs(r).iter().zip(self.input.inputs(p)) {
            self.collect_mapping(ri, pi, out);
        }
    }
}

/// The paper's Algorithm 1, `PairwisePlanTraversal`: traverse both plans
/// simultaneously from their Load operators, pairing equivalent
/// operators, and succeed when every operator of the repository plan has
/// an equivalent in the input plan.
///
/// Returns the match anchored at the repository plan's tip, or `None`.
pub fn pairwise_plan_traversal(
    repo_plan: &PhysicalPlan,
    input_plan: &PhysicalPlan,
) -> Option<PlanMatch> {
    let r_tip = plan_tip(repo_plan)?;
    let mut m = Matcher { repo: repo_plan, input: input_plan, memo: HashMap::new() };

    // The traversal starts at the Load frontier (Algorithm 1 is invoked
    // with the Load operators of both plans); anchoring at the repo tip
    // and recursing toward the Loads visits exactly the same pairs in
    // depth-first order while keeping the containment decision exact.
    // Candidate anchor sites are scanned in topological order so the
    // first (deepest-upstream) occurrence wins deterministically.
    for p in input_plan.topo_order() {
        if matches!(input_plan.op(p), PhysicalOp::Store { .. } | PhysicalOp::Split) {
            continue;
        }
        if m.equivalent(r_tip, p) {
            let mut mapping = HashMap::new();
            m.collect_mapping(r_tip, p, &mut mapping);
            return Some(PlanMatch { tip: through_splits(input_plan, p), mapping });
        }
    }
    None
}

/// Subsumption test for repository ordering (§3, rule 1): plan `a`
/// subsumes plan `b` when all of `b`'s operators have equivalents in `a`
/// — i.e. `b` is contained in `a`.
pub fn subsumes(a: &PhysicalPlan, b: &PhysicalPlan) -> bool {
    pairwise_plan_traversal(b, a).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use restore_dataflow::expr::Expr;

    fn load_project_store(path: &str, cols: Vec<usize>, out: &str) -> PhysicalPlan {
        let mut p = PhysicalPlan::new();
        let l = p.add(PhysicalOp::Load { path: path.into() }, vec![]);
        let pr = p.add(PhysicalOp::Project { cols }, vec![l]);
        p.add(PhysicalOp::Store { path: out.into() }, vec![pr]);
        p
    }

    /// The paper's Q1: two load+project branches joined, stored.
    fn q1_plan(out: &str) -> PhysicalPlan {
        let mut p = PhysicalPlan::new();
        let l1 = p.add(PhysicalOp::Load { path: "/users".into() }, vec![]);
        let p1 = p.add(PhysicalOp::Project { cols: vec![0] }, vec![l1]);
        let l2 = p.add(PhysicalOp::Load { path: "/pv".into() }, vec![]);
        let p2 = p.add(PhysicalOp::Project { cols: vec![0, 2] }, vec![l2]);
        let j = p.add(PhysicalOp::Join { keys: vec![vec![0], vec![0]] }, vec![p1, p2]);
        p.add(PhysicalOp::Store { path: out.into() }, vec![j]);
        p
    }

    /// Q2's first job is Q1's join plan; its second job groups+aggregates.
    fn q2_job1(out: &str) -> PhysicalPlan {
        q1_plan(out)
    }

    #[test]
    fn identical_plans_match() {
        let a = q1_plan("/o1");
        let b = q1_plan("/o2");
        let m = pairwise_plan_traversal(&a, &b).unwrap();
        assert!(matches!(b.op(m.tip), PhysicalOp::Join { .. }));
        // Mapping covers load, project, join on both branches.
        assert_eq!(m.mapping.len(), 5);
    }

    #[test]
    fn store_path_does_not_matter() {
        let a = load_project_store("/d", vec![0], "/x");
        let b = load_project_store("/d", vec![0], "/y");
        assert!(pairwise_plan_traversal(&a, &b).is_some());
    }

    #[test]
    fn different_load_paths_do_not_match() {
        let a = load_project_store("/d1", vec![0], "/x");
        let b = load_project_store("/d2", vec![0], "/x");
        assert!(pairwise_plan_traversal(&a, &b).is_none());
    }

    #[test]
    fn different_params_do_not_match() {
        let a = load_project_store("/d", vec![0], "/x");
        let b = load_project_store("/d", vec![1], "/x");
        assert!(pairwise_plan_traversal(&a, &b).is_none());
    }

    #[test]
    fn sub_plan_is_contained_in_larger_plan() {
        // Repo holds Load(/pv) -> Project([0,2]) -> Store; Q1 contains it.
        let repo = load_project_store("/pv", vec![0, 2], "/stored");
        let q1 = q1_plan("/q1out");
        let m = pairwise_plan_traversal(&repo, &q1).unwrap();
        assert!(matches!(q1.op(m.tip), PhysicalOp::Project { .. }));
        // It matched the /pv branch, not the /users branch.
        let load_of_tip = q1.inputs(m.tip)[0];
        assert!(matches!(q1.op(load_of_tip), PhysicalOp::Load { path } if path == "/pv"));
    }

    #[test]
    fn larger_plan_is_not_contained_in_smaller() {
        let repo = q1_plan("/stored");
        let small = load_project_store("/pv", vec![0, 2], "/out");
        assert!(pairwise_plan_traversal(&repo, &small).is_none());
    }

    #[test]
    fn whole_job_match_of_q2_job1_against_stored_q1() {
        let repo = q1_plan("/q1out");
        let input = q2_job1("/tmp-0");
        let m = pairwise_plan_traversal(&repo, &input).unwrap();
        // Tip is the join — a whole-job match (tip feeds the Store).
        let store = input.stores()[0];
        assert_eq!(input.inputs(store)[0], m.tip);
    }

    #[test]
    fn join_branches_are_positional() {
        // Same branches, swapped: keys [0],[0] are symmetric here but the
        // branch *contents* differ per position, so no match.
        let mut swapped = PhysicalPlan::new();
        let l2 = swapped.add(PhysicalOp::Load { path: "/pv".into() }, vec![]);
        let p2 = swapped.add(PhysicalOp::Project { cols: vec![0, 2] }, vec![l2]);
        let l1 = swapped.add(PhysicalOp::Load { path: "/users".into() }, vec![]);
        let p1 = swapped.add(PhysicalOp::Project { cols: vec![0] }, vec![l1]);
        let j = swapped.add(PhysicalOp::Join { keys: vec![vec![0], vec![0]] }, vec![p2, p1]);
        swapped.add(PhysicalOp::Store { path: "/o".into() }, vec![j]);

        let a = q1_plan("/q1out");
        assert!(pairwise_plan_traversal(&a, &swapped).is_none());
        assert!(pairwise_plan_traversal(&swapped, &a).is_none());
    }

    #[test]
    fn splits_are_transparent() {
        // Input plan with an injected Split+side-Store between Project and
        // its consumer still matches a repo plan without the Split.
        let mut with_split = PhysicalPlan::new();
        let l = with_split.add(PhysicalOp::Load { path: "/d".into() }, vec![]);
        let pr = with_split.add(PhysicalOp::Project { cols: vec![0] }, vec![l]);
        let sp = with_split.add(PhysicalOp::Split, vec![pr]);
        let _side = with_split.add(PhysicalOp::Store { path: "/side".into() }, vec![sp]);
        let f = with_split.add(PhysicalOp::Filter { pred: Expr::col_eq(0, 1i64) }, vec![sp]);
        let _main = with_split.add(PhysicalOp::Store { path: "/main".into() }, vec![f]);

        let mut repo = PhysicalPlan::new();
        let l2 = repo.add(PhysicalOp::Load { path: "/d".into() }, vec![]);
        let p2 = repo.add(PhysicalOp::Project { cols: vec![0] }, vec![l2]);
        let f2 = repo.add(PhysicalOp::Filter { pred: Expr::col_eq(0, 1i64) }, vec![p2]);
        repo.add(PhysicalOp::Store { path: "/r".into() }, vec![f2]);

        let m = pairwise_plan_traversal(&repo, &with_split);
        assert!(m.is_some(), "split must be transparent to matching");
    }

    #[test]
    fn subsumption_order() {
        // Q1's full plan subsumes the Load+Project sub-plan (§3 rule 1
        // example: the Figure 2 plan subsumes the Figure 5 plans).
        let full = q1_plan("/o");
        let sub = load_project_store("/pv", vec![0, 2], "/s");
        assert!(subsumes(&full, &sub));
        assert!(!subsumes(&sub, &full));
        // Subsumption is reflexive.
        assert!(subsumes(&full, &q1_plan("/other")));
    }

    #[test]
    fn first_match_site_is_deterministic() {
        // Input contains the repo pattern twice (two identical branches);
        // matching must return the same site every time.
        let mut p = PhysicalPlan::new();
        let l = p.add(PhysicalOp::Load { path: "/d".into() }, vec![]);
        let a = p.add(PhysicalOp::Project { cols: vec![0] }, vec![l]);
        let b = p.add(PhysicalOp::Project { cols: vec![0] }, vec![l]);
        let j = p.add(PhysicalOp::Join { keys: vec![vec![0], vec![0]] }, vec![a, b]);
        p.add(PhysicalOp::Store { path: "/o".into() }, vec![j]);
        let repo = load_project_store("/d", vec![0], "/s");
        let m1 = pairwise_plan_traversal(&repo, &p).unwrap();
        let m2 = pairwise_plan_traversal(&repo, &p).unwrap();
        assert_eq!(m1.tip, m2.tip);
        assert_eq!(m1.tip, a, "topologically first site wins");
    }
}
