//! `restore-state` (de)serialization: the durable session format.
//!
//! Four wire versions exist:
//!
//! * **v1** (legacy) — tick/cand counters plus the *default* namespace's
//!   provenance and repository. Written by earlier releases; still
//!   accepted by [`ReStore::load_state`](crate::ReStore::load_state),
//!   which loads it into the default namespace.
//! * **v2** (legacy) — everything a shared session knows: the global
//!   configuration, the counters, and **every** namespace (default and
//!   per-tenant) with its repository, provenance table, and — when the
//!   tenant carries a policy override — its `ReStoreConfig`.
//! * **v3** (legacy) — v2 plus one `seq <n>` line after the counters:
//!   the snapshot-journal sequence number the dump is anchored at (see
//!   [`crate::journal`]). Recovery loads a v3 base and replays only
//!   journal records with a later sequence number; v1/v2 documents
//!   anchor at sequence 0, so *any* journal segment replays on top of
//!   them. Everything else is identical to v2.
//! * **v4** (legacy) — v3 plus the failure-policy configuration keys
//!   (see [`crate::failure`]) and, per namespace, an optional `--dlq--`
//!   section holding the tenant's dead-letter queue (see
//!   [`crate::dlq`]; omitted when the queue is empty, so sessions that
//!   never dead-letter dump identically to v3 modulo the header and
//!   config keys). Earlier versions parse with the policy defaulted
//!   and the queue empty.
//! * **v5** (current) — v4 plus three configuration keys: the
//!   dead-letter queue caps `dlq_max_entries` / `dlq_max_age_ticks`
//!   (0 = unbounded, the pre-v5 behavior) and `canonicalize` (the
//!   analyzer toggle; v4-and-earlier documents load with it **on**,
//!   the v5 default). The document structure is unchanged.
//!
//! The format is line-oriented. Section headers are `--config--`,
//! `--provenance--`, `--repository--`, `--dlq--`, and
//! `--space "<tenant>"--` (the empty name is the default namespace);
//! body lines never begin with `--`, so sections split unambiguously.
//! Tenants are written in sorted order, config fields in a fixed
//! order, and dead-letter entries in id order, which makes
//! `save_state → load_state → save_state` byte-identical.
//!
//! Parse failures surface as [`Error::State`] carrying the 1-based line
//! number and the offending line, so a corrupt snapshot points at
//! itself instead of a generic "malformed restore-state".

use crate::driver::ReStoreConfig;
use crate::enumerator::Heuristic;
use crate::failure::FailureDisposition;
use crate::provenance::Provenance;
use crate::repository::Repository;
use restore_common::{Error, Result};
use restore_dataflow::physical::PhysicalOp;

pub(crate) const V1_HEADER: &str = "restore-state v1";
pub(crate) const V2_HEADER: &str = "restore-state v2";
pub(crate) const V3_HEADER: &str = "restore-state v3";
pub(crate) const V4_HEADER: &str = "restore-state v4";
pub(crate) const V5_HEADER: &str = "restore-state v5";

/// One deserialized namespace (`name == ""` is the default).
pub(crate) struct LoadedSpace {
    pub name: String,
    pub config: Option<ReStoreConfig>,
    pub prov: Provenance,
    pub repo: Repository,
    /// The namespace's dead-letter queue (empty for pre-v4 documents).
    pub dlq: Vec<crate::dlq::DlqEntry>,
}

/// A fully deserialized `restore-state` document.
pub(crate) struct LoadedState {
    pub tick: u64,
    pub cand: u64,
    /// Journal sequence number the document is anchored at (0 for
    /// v1/v2 documents, which predate the journal).
    pub seq: u64,
    /// The global (default) policy; `None` for v1 documents, which
    /// predate config serialization.
    pub global_config: Option<ReStoreConfig>,
    pub spaces: Vec<LoadedSpace>,
}

/// Typed parse error pointing at a 1-based document line.
fn err_at(line_idx: usize, msg: impl Into<String>) -> Error {
    Error::State { line: line_idx + 1, msg: msg.into() }
}

// ---- config codec ----

fn heuristic_name(h: Heuristic) -> &'static str {
    match h {
        Heuristic::None => "none",
        Heuristic::Conservative => "conservative",
        Heuristic::Aggressive => "aggressive",
        Heuristic::NoHeuristic => "no-heuristic",
    }
}

fn heuristic_from(name: &str) -> Option<Heuristic> {
    match name {
        "none" => Some(Heuristic::None),
        "conservative" => Some(Heuristic::Conservative),
        "aggressive" => Some(Heuristic::Aggressive),
        "no-heuristic" => Some(Heuristic::NoHeuristic),
        _ => None,
    }
}

fn disposition_name(d: FailureDisposition) -> &'static str {
    match d {
        FailureDisposition::FailFast => "fail_fast",
        FailureDisposition::Retry => "retry",
        FailureDisposition::Dlq => "dlq",
        FailureDisposition::Drop => "drop",
    }
}

fn disposition_from(name: &str) -> Option<FailureDisposition> {
    match name {
        "fail_fast" => Some(FailureDisposition::FailFast),
        "retry" => Some(FailureDisposition::Retry),
        "dlq" => Some(FailureDisposition::Dlq),
        "drop" => Some(FailureDisposition::Drop),
        _ => None,
    }
}

/// Serialize a configuration as `key value` lines in fixed order (the
/// fixed order is what makes re-saving a loaded state byte-identical).
pub(crate) fn encode_config(c: &ReStoreConfig) -> String {
    let window = match c.selection.eviction_window {
        Some(w) => w.to_string(),
        None => "none".to_string(),
    };
    format!(
        "reuse_enabled {}\nheuristic {}\nrepo_prefix {:?}\ndelete_tmp {}\n\
         register_final_outputs {}\nwave_parallel {}\nstore_all {}\n\
         require_size_reduction {}\nrequire_time_benefit {}\nreload_read_bps {}\n\
         eviction_window {}\ncheck_input_versions {}\nrepo_shards {}\n\
         on_failure {}\nmax_retries {}\nretry_backoff_base_ms {}\n\
         retry_backoff_factor {}\nretry_backoff_cap_ms {}\nretry_backoff_jitter {}\n\
         failure_window {}\nfailure_threshold {}\nbreaker_cooldown_ms {}\n\
         breaker_half_open_probes {}\nbreaker_success_threshold {}\n\
         dlq_max_entries {}\ndlq_max_age_ticks {}\ncanonicalize {}\n",
        c.reuse_enabled,
        heuristic_name(c.heuristic),
        c.repo_prefix,
        c.delete_tmp,
        c.register_final_outputs,
        c.wave_parallel,
        c.selection.store_all,
        c.selection.require_size_reduction,
        c.selection.require_time_benefit,
        c.selection.reload_read_bps,
        window,
        c.selection.check_input_versions,
        c.repo_shards,
        disposition_name(c.failure.on_failure),
        c.failure.max_retries,
        c.failure.retry_backoff_base_ms,
        c.failure.retry_backoff_factor,
        c.failure.retry_backoff_cap_ms,
        c.failure.retry_backoff_jitter,
        c.failure.failure_window,
        c.failure.failure_threshold,
        c.failure.breaker_cooldown_ms,
        c.failure.breaker_half_open_probes,
        c.failure.breaker_success_threshold,
        c.failure.dlq_max_entries,
        c.failure.dlq_max_age_ticks,
        c.canonicalize,
    )
}

/// Decode `key value` config lines. `base` is the document index of the
/// first line, used for error positions. Unknown keys and malformed
/// values are errors; missing keys keep their defaults (older snapshots
/// stay loadable if fields are added later).
pub(crate) fn decode_config(lines: &[&str], base: usize) -> Result<ReStoreConfig> {
    let mut c = ReStoreConfig::default();
    for (i, line) in lines.iter().enumerate() {
        let at = base + i;
        if line.trim().is_empty() {
            continue;
        }
        let (key, value) = line
            .split_once(' ')
            .ok_or_else(|| err_at(at, format!("config line has no value: {line:?}")))?;
        let bad = || err_at(at, format!("bad value for config key {key}: {line:?}"));
        let parse_bool = |v: &str| match v {
            "true" => Ok(true),
            "false" => Ok(false),
            _ => Err(bad()),
        };
        match key {
            "reuse_enabled" => c.reuse_enabled = parse_bool(value)?,
            "heuristic" => c.heuristic = heuristic_from(value).ok_or_else(bad)?,
            "repo_prefix" => c.repo_prefix = unquote(value, at)?,
            "delete_tmp" => c.delete_tmp = parse_bool(value)?,
            "register_final_outputs" => c.register_final_outputs = parse_bool(value)?,
            "wave_parallel" => c.wave_parallel = parse_bool(value)?,
            "store_all" => c.selection.store_all = parse_bool(value)?,
            "require_size_reduction" => c.selection.require_size_reduction = parse_bool(value)?,
            "require_time_benefit" => c.selection.require_time_benefit = parse_bool(value)?,
            "reload_read_bps" => c.selection.reload_read_bps = value.parse().map_err(|_| bad())?,
            "eviction_window" => {
                c.selection.eviction_window = match value {
                    "none" => None,
                    v => Some(v.parse().map_err(|_| bad())?),
                }
            }
            "check_input_versions" => c.selection.check_input_versions = parse_bool(value)?,
            "repo_shards" => {
                // 0 (an "unset" default) normalizes to 1; an absurd
                // count is a typed config error, not a parse error.
                let n: usize = value.parse().map_err(|_| bad())?;
                if n > crate::repository::MAX_REPO_SHARDS {
                    return Err(Error::Config(format!(
                        "repo_shards {n} exceeds the maximum of {}",
                        crate::repository::MAX_REPO_SHARDS
                    )));
                }
                c.repo_shards = crate::repository::normalize_shards(n);
            }
            "on_failure" => c.failure.on_failure = disposition_from(value).ok_or_else(bad)?,
            "max_retries" => c.failure.max_retries = value.parse().map_err(|_| bad())?,
            "retry_backoff_base_ms" => {
                c.failure.retry_backoff_base_ms = value.parse().map_err(|_| bad())?
            }
            "retry_backoff_factor" => {
                c.failure.retry_backoff_factor = value.parse().map_err(|_| bad())?
            }
            "retry_backoff_cap_ms" => {
                c.failure.retry_backoff_cap_ms = value.parse().map_err(|_| bad())?
            }
            "retry_backoff_jitter" => {
                c.failure.retry_backoff_jitter = value.parse().map_err(|_| bad())?
            }
            "failure_window" => c.failure.failure_window = value.parse().map_err(|_| bad())?,
            "failure_threshold" => {
                c.failure.failure_threshold = value.parse().map_err(|_| bad())?
            }
            "breaker_cooldown_ms" => {
                c.failure.breaker_cooldown_ms = value.parse().map_err(|_| bad())?
            }
            "breaker_half_open_probes" => {
                c.failure.breaker_half_open_probes = value.parse().map_err(|_| bad())?
            }
            "breaker_success_threshold" => {
                c.failure.breaker_success_threshold = value.parse().map_err(|_| bad())?
            }
            "dlq_max_entries" => c.failure.dlq_max_entries = value.parse().map_err(|_| bad())?,
            "dlq_max_age_ticks" => {
                c.failure.dlq_max_age_ticks = value.parse().map_err(|_| bad())?
            }
            "canonicalize" => c.canonicalize = parse_bool(value)?,
            _ => return Err(err_at(at, format!("unknown config key {key:?}"))),
        }
    }
    Ok(c)
}

/// Invert `{:?}` string quoting (reuses the plan-text unquoter, the
/// same shim the provenance loader uses). The input must actually be
/// quoted — the plan-text parser also accepts bare tokens, which would
/// let malformed headers slip through.
pub(crate) fn unquote(s: &str, at: usize) -> Result<String> {
    if !(s.len() >= 2 && s.starts_with('"') && s.ends_with('"')) {
        return Err(err_at(at, format!("expected a quoted string, got {s}")));
    }
    let plan = crate::plan_text::decode_plan(&format!("0 load {s}\n"))
        .map_err(|_| err_at(at, format!("bad quoted string {s}")))?;
    match plan.op(plan.loads()[0]) {
        PhysicalOp::Load { path } => Ok(path.clone()),
        _ => Err(err_at(at, format!("bad quoted string {s}"))),
    }
}

// ---- document structure ----

/// Is this line a section header (`--…--`)?
fn is_header(line: &str) -> bool {
    line.len() >= 4 && line.starts_with("--") && line.ends_with("--")
}

/// Collect body lines from `idx` until the next section header (or the
/// end of the document); returns the body slice bounds.
fn body_end(lines: &[&str], mut idx: usize) -> usize {
    while idx < lines.len() && !is_header(lines[idx]) {
        idx += 1;
    }
    idx
}

fn parse_counter(lines: &[&str], idx: usize, key: &str) -> Result<u64> {
    lines
        .get(idx)
        .and_then(|l| l.strip_prefix(key))
        .and_then(|l| l.strip_prefix(' '))
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| {
            err_at(
                idx,
                format!("expected \"{key} <number>\", got {:?}", lines.get(idx).unwrap_or(&"")),
            )
        })
}

/// Parse a `--provenance--` + `--repository--` pair starting at `idx`.
/// Returns the loaded tables and the index just past the repository
/// body.
fn parse_tables(lines: &[&str], idx: usize) -> Result<(Provenance, Repository, usize)> {
    if lines.get(idx).copied() != Some("--provenance--") {
        return Err(err_at(
            idx,
            format!("expected --provenance--, got {:?}", lines.get(idx).unwrap_or(&"<eof>")),
        ));
    }
    let prov_end = body_end(lines, idx + 1);
    let prov = Provenance::load(&lines[idx + 1..prov_end].join("\n"))
        .map_err(|e| err_at(idx, format!("in --provenance-- section: {e}")))?;
    if lines.get(prov_end).copied() != Some("--repository--") {
        return Err(err_at(
            prov_end,
            format!("expected --repository--, got {:?}", lines.get(prov_end).unwrap_or(&"<eof>")),
        ));
    }
    let repo_end = body_end(lines, prov_end + 1);
    let repo = Repository::load(&lines[prov_end + 1..repo_end].join("\n"))
        .map_err(|e| err_at(prov_end, format!("in --repository-- section: {e}")))?;
    Ok((prov, repo, repo_end))
}

/// Parse any wire version into a [`LoadedState`].
pub(crate) fn parse(text: &str) -> Result<LoadedState> {
    let lines: Vec<&str> = text.lines().collect();
    match lines.first().copied() {
        Some(V1_HEADER) => parse_v1(&lines),
        Some(V2_HEADER) => parse_v2(&lines, false),
        Some(V3_HEADER) | Some(V4_HEADER) | Some(V5_HEADER) => parse_v2(&lines, true),
        other => Err(err_at(
            0,
            format!(
                "expected \"{V1_HEADER}\", \"{V2_HEADER}\", \"{V3_HEADER}\", \"{V4_HEADER}\", \
                 or \"{V5_HEADER}\", got {:?}",
                other.unwrap_or("<empty document>")
            ),
        )),
    }
}

fn parse_v1(lines: &[&str]) -> Result<LoadedState> {
    let tick = parse_counter(lines, 1, "tick")?;
    let cand = parse_counter(lines, 2, "cand")?;
    let (prov, repo, end) = parse_tables(lines, 3)?;
    if end != lines.len() {
        return Err(err_at(end, format!("unexpected trailing section {:?}", lines[end])));
    }
    Ok(LoadedState {
        tick,
        cand,
        seq: 0,
        global_config: None,
        spaces: vec![LoadedSpace {
            name: String::new(),
            config: None,
            prov,
            repo,
            dlq: Vec::new(),
        }],
    })
}

/// v2 and v3 share everything but the `seq` line after the counters.
fn parse_v2(lines: &[&str], with_seq: bool) -> Result<LoadedState> {
    let tick = parse_counter(lines, 1, "tick")?;
    let cand = parse_counter(lines, 2, "cand")?;
    let (seq, cfg_header) = if with_seq { (parse_counter(lines, 3, "seq")?, 4) } else { (0, 3) };
    if lines.get(cfg_header).copied() != Some("--config--") {
        return Err(err_at(
            cfg_header,
            format!("expected --config--, got {:?}", lines.get(cfg_header).unwrap_or(&"<eof>")),
        ));
    }
    let cfg_end = body_end(lines, cfg_header + 1);
    let global_config = Some(decode_config(&lines[cfg_header + 1..cfg_end], cfg_header + 1)?);

    let mut spaces = Vec::new();
    let mut idx = cfg_end;
    while idx < lines.len() {
        let header = lines[idx];
        let bad_header = || err_at(idx, format!("expected --space \"<tenant>\"--, got {header:?}"));
        let name = header
            .strip_prefix("--space ")
            .and_then(|r| r.strip_suffix("--"))
            .ok_or_else(bad_header)
            .and_then(|quoted| unquote(quoted, idx).map_err(|_| bad_header()))?;
        if spaces.iter().any(|s: &LoadedSpace| s.name == name) {
            return Err(err_at(idx, format!("duplicate --space-- section for {name:?}")));
        }
        idx += 1;
        let config = if lines.get(idx).copied() == Some("--config--") {
            let end = body_end(lines, idx + 1);
            let c = decode_config(&lines[idx + 1..end], idx + 1)?;
            idx = end;
            Some(c)
        } else {
            None
        };
        let (prov, repo, end) = parse_tables(lines, idx)?;
        idx = end;
        // Optional dead-letter queue (v4+; omitted when empty).
        let dlq = if lines.get(idx).copied() == Some("--dlq--") {
            let dend = body_end(lines, idx + 1);
            let q = crate::dlq::load(&lines[idx + 1..dend].join("\n"))
                .map_err(|e| err_at(idx, format!("in --dlq-- section: {e}")))?;
            idx = dend;
            q
        } else {
            Vec::new()
        };
        spaces.push(LoadedSpace { name, config, prov, repo, dlq });
    }
    Ok(LoadedState { tick, cand, seq, global_config, spaces })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selector::SelectionPolicy;

    #[test]
    fn config_codec_round_trips_every_field() {
        let config = ReStoreConfig {
            reuse_enabled: false,
            heuristic: Heuristic::Conservative,
            selection: SelectionPolicy {
                store_all: false,
                require_size_reduction: true,
                require_time_benefit: true,
                reload_read_bps: 12345.5,
                eviction_window: Some(42),
                check_input_versions: true,
            },
            repo_prefix: "/re store/\"x\"".to_string(),
            delete_tmp: true,
            register_final_outputs: false,
            wave_parallel: false,
            repo_shards: 8,
            failure: crate::failure::FailurePolicy {
                on_failure: FailureDisposition::Dlq,
                max_retries: 3,
                retry_backoff_base_ms: 10,
                retry_backoff_factor: 1.5,
                retry_backoff_cap_ms: 500,
                retry_backoff_jitter: 0.25,
                failure_window: 8,
                failure_threshold: 5,
                breaker_cooldown_ms: 750,
                breaker_half_open_probes: 1,
                breaker_success_threshold: 3,
                dlq_max_entries: 64,
                dlq_max_age_ticks: 1000,
            },
            canonicalize: false,
        };
        let text = encode_config(&config);
        let lines: Vec<&str> = text.lines().collect();
        let back = decode_config(&lines, 0).unwrap();
        assert_eq!(back, config);
        // And encoding is canonical: re-encoding is byte-identical.
        assert_eq!(encode_config(&back), text);
    }

    #[test]
    fn config_codec_default_round_trips() {
        let text = encode_config(&ReStoreConfig::default());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(decode_config(&lines, 0).unwrap(), ReStoreConfig::default());
    }

    #[test]
    fn pre_v5_documents_default_the_new_keys() {
        // A config body without the v5 keys (any v4-or-earlier dump)
        // loads with the analyzer on and the DLQ unbounded.
        let back = decode_config(&["reuse_enabled true"], 0).unwrap();
        assert!(back.canonicalize);
        assert_eq!(back.failure.dlq_max_entries, 0);
        assert_eq!(back.failure.dlq_max_age_ticks, 0);
    }

    #[test]
    fn repo_shards_zero_normalizes_to_one() {
        // 0 is "unset", not "no shards": it decodes as the classic
        // single-shard repository.
        let back = decode_config(&["repo_shards 0"], 0).unwrap();
        assert_eq!(back.repo_shards, 1);
    }

    #[test]
    fn absurd_repo_shards_is_a_typed_config_error() {
        let over = crate::repository::MAX_REPO_SHARDS + 1;
        let line = format!("repo_shards {over}");
        match decode_config(&[&line], 0).unwrap_err() {
            Error::Config(msg) => {
                assert!(msg.contains(&over.to_string()), "{msg}");
                assert!(msg.contains(&crate::repository::MAX_REPO_SHARDS.to_string()), "{msg}");
            }
            other => panic!("expected Error::Config, got {other:?}"),
        }
        // A merely *large* (but sane) count still decodes.
        let line = format!("repo_shards {}", crate::repository::MAX_REPO_SHARDS);
        let back = decode_config(&[&line], 0).unwrap();
        assert_eq!(back.repo_shards, crate::repository::MAX_REPO_SHARDS);
        // And an unparseable value is still a positioned parse error.
        match decode_config(&["repo_shards many"], 0).unwrap_err() {
            Error::State { line, msg } => {
                assert_eq!(line, 1);
                assert!(msg.contains("repo_shards"), "{msg}");
            }
            other => panic!("expected Error::State, got {other:?}"),
        }
    }

    #[test]
    fn unknown_config_key_names_its_line() {
        let e = decode_config(&["reuse_enabled true", "frobnicate 7"], 10).unwrap_err();
        match e {
            Error::State { line, msg } => {
                assert_eq!(line, 12, "1-based document line of the bad key");
                assert!(msg.contains("frobnicate"), "{msg}");
            }
            other => panic!("expected Error::State, got {other:?}"),
        }
    }

    #[test]
    fn bad_config_value_names_key_and_line() {
        let e = decode_config(&["wave_parallel maybe"], 0).unwrap_err();
        match e {
            Error::State { line, msg } => {
                assert_eq!(line, 1);
                assert!(msg.contains("wave_parallel"), "{msg}");
            }
            other => panic!("expected Error::State, got {other:?}"),
        }
    }
}
