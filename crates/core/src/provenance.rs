//! Provenance: which base-level plan produced each stored path.
//!
//! ReStore matches one MapReduce job at a time, but jobs within a
//! workflow communicate through temporary files, and rewritten jobs load
//! repository outputs. To compare apples to apples, every plan that
//! enters the matcher or the repository is **lineage-expanded**: a `Load`
//! of a produced path is replaced by the (base-level) plan that produced
//! it. The provenance table records those producing plans.

use restore_dataflow::physical::{NodeId, PhysicalOp, PhysicalPlan};
use std::collections::HashMap;
use std::sync::Arc;

/// Path → base-level single-Store plan that produced it.
///
/// Plans are held behind `Arc`s so cloning the whole table — which the
/// driver's RCU publication does on every mutation — copies pointers,
/// not plans.
#[derive(Debug, Clone, Default)]
pub struct Provenance {
    plans: HashMap<String, Arc<PhysicalPlan>>,
}

/// An expansion performed by [`Provenance::expand`]: the `Load` of `path`
/// was replaced by its producing plan, whose output now flows from `tip`.
#[derive(Debug, Clone)]
pub struct Expansion {
    pub path: String,
    pub tip: NodeId,
}

/// A lineage-expanded plan plus enough bookkeeping to collapse unused
/// expansions back into plain Loads.
#[derive(Debug, Clone)]
pub struct ExpandedPlan {
    pub plan: PhysicalPlan,
    pub expansions: Vec<Expansion>,
}

impl Provenance {
    pub fn new() -> Self {
        Provenance::default()
    }

    /// Register the producing plan of `path`. The plan must be base-level
    /// (its Loads must not themselves have provenance) and single-Store.
    pub fn register(&mut self, path: impl Into<String>, plan: PhysicalPlan) {
        debug_assert_eq!(plan.stores().len(), 1, "provenance plans are single-Store");
        debug_assert!(
            plan.loads().iter().all(|&l| {
                match plan.op(l) {
                    PhysicalOp::Load { path } => !self.plans.contains_key(path),
                    _ => false,
                }
            }),
            "provenance plans must be base-level"
        );
        self.plans.insert(path.into(), Arc::new(plan));
    }

    /// Journal replay of a recorded registration: the invariants were
    /// checked when the record was emitted, so replay applies it
    /// verbatim (re-applying a record over a base checkpoint that
    /// already contains later registrations must not re-run the
    /// base-level check against the *future* table).
    pub(crate) fn register_replay(&mut self, path: String, plan: PhysicalPlan) {
        self.plans.insert(path, Arc::new(plan));
    }

    pub fn get(&self, path: &str) -> Option<&PhysicalPlan> {
        self.plans.get(path).map(|p| &**p)
    }

    /// The producing plan behind its shared `Arc` (cheap to hand to the
    /// journal without cloning the plan).
    pub(crate) fn get_arc(&self, path: &str) -> Option<Arc<PhysicalPlan>> {
        self.plans.get(path).cloned()
    }

    pub fn contains(&self, path: &str) -> bool {
        self.plans.contains_key(path)
    }

    pub fn len(&self) -> usize {
        self.plans.len()
    }

    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Remove the record for a path (e.g. after eviction deleted it).
    pub fn forget(&mut self, path: &str) {
        self.plans.remove(path);
    }

    /// All recorded paths.
    pub fn iter_paths(&self) -> impl Iterator<Item = &str> {
        self.plans.keys().map(|s| s.as_str())
    }

    /// Serialize the table (paths sorted for determinism).
    pub fn save(&self) -> String {
        self.save_filtered(|_| true)
    }

    /// Like [`Provenance::save`], but only records whose path satisfies
    /// `keep` are written (see `Repository::save_filtered`).
    pub fn save_filtered(&self, keep: impl Fn(&str) -> bool) -> String {
        let mut paths: Vec<&String> = self.plans.keys().filter(|p| keep(p)).collect();
        paths.sort();
        let mut out = String::new();
        for p in paths {
            encode_record_into(&mut out, p, &self.plans[p]);
        }
        out
    }

    /// Reload a table serialized by [`Provenance::save`].
    pub fn load(text: &str) -> restore_common::Result<Provenance> {
        use restore_common::Error;
        let mut prov = Provenance::new();
        let mut lines = text.lines().peekable();
        while let Some((path, plan)) = parse_record_lines(&mut lines)? {
            prov.plans.insert(path, Arc::new(plan));
        }
        if let Some(line) = lines.next() {
            return Err(Error::Repository(format!("expected 'path', got {line:?}")));
        }
        Ok(prov)
    }

    /// Replace every `Load` of a produced path with its producing plan
    /// (minus that plan's Store). Returns the expanded plan and the list
    /// of expansion tips, so callers can collapse unused expansions after
    /// rewriting.
    pub fn expand(&self, plan: &PhysicalPlan) -> ExpandedPlan {
        let mut out = PhysicalPlan::new();
        let mut remap: HashMap<NodeId, NodeId> = HashMap::new();
        let mut expansions = Vec::new();

        for id in plan.topo_order() {
            let node = plan.node(id);
            if let PhysicalOp::Load { path } = &node.op {
                if let Some(producer) = self.plans.get(path) {
                    let tip = inline_producer(&mut out, producer);
                    remap.insert(id, tip);
                    expansions.push(Expansion { path: path.clone(), tip });
                    continue;
                }
            }
            let inputs: Vec<NodeId> = node.inputs.iter().map(|i| remap[i]).collect();
            let new_id = out.add(node.op.clone(), inputs);
            remap.insert(id, new_id);
        }
        ExpandedPlan { plan: out, expansions }
    }
}

/// Append one `path …` record in the durable format. Shared by
/// [`Provenance::save_filtered`] and the snapshot journal's
/// `prov-batch` records.
pub(crate) fn encode_record_into(out: &mut String, path: &str, plan: &PhysicalPlan) {
    out.push_str(&format!("path {path:?}\n"));
    for line in crate::plan_text::encode_plan(plan).lines() {
        out.push_str("  ");
        out.push_str(line);
        out.push('\n');
    }
    out.push_str("end\n");
}

/// Parse the next `path …` record off the line iterator. Returns
/// `Ok(None)` — consuming nothing — when the next non-empty line does
/// not start a record, so callers with mixed bodies (the journal) can
/// dispatch on the leading keyword.
pub(crate) fn parse_record_lines(
    lines: &mut std::iter::Peekable<std::str::Lines<'_>>,
) -> restore_common::Result<Option<(String, PhysicalPlan)>> {
    while let Some(l) = lines.peek() {
        if l.trim().is_empty() {
            lines.next();
        } else {
            break;
        }
    }
    let Some(line) = lines.peek() else { return Ok(None) };
    let Some(rest) = line.strip_prefix("path ") else { return Ok(None) };
    let rest = rest.to_string();
    lines.next();
    // Reuse plan_text's string unquoting through a Load shim.
    let path = match crate::plan_text::decode_plan(&format!("0 load {rest}\n")) {
        Ok(p) => match p.op(p.loads()[0]) {
            PhysicalOp::Load { path } => path.clone(),
            _ => unreachable!(),
        },
        Err(e) => return Err(e),
    };
    let mut plan_src = String::new();
    for l in lines.by_ref() {
        if l == "end" {
            break;
        }
        plan_src.push_str(l.trim_start());
        plan_src.push('\n');
    }
    let plan = crate::plan_text::decode_plan(&plan_src)?;
    Ok(Some((path, plan)))
}

/// Copy `producer` (minus its Store) into `target`, returning the node
/// that carried the producer's output.
fn inline_producer(target: &mut PhysicalPlan, producer: &PhysicalPlan) -> NodeId {
    let store = producer.stores()[0];
    let mut remap: HashMap<NodeId, NodeId> = HashMap::new();
    for id in producer.topo_order() {
        if id == store {
            continue;
        }
        let node = producer.node(id);
        let inputs: Vec<NodeId> = node.inputs.iter().map(|i| remap[i]).collect();
        remap.insert(id, target.add(node.op.clone(), inputs));
    }
    remap[&producer.inputs(store)[0]]
}

impl ExpandedPlan {
    /// Collapse every expansion whose tip is still present and consumed
    /// back into a plain `Load` of the produced path, then GC. Called
    /// after rewriting so unmatched lineage does not get re-executed.
    pub fn collapse_unused(mut self) -> PhysicalPlan {
        loop {
            let mut acted = false;
            for exp in &self.expansions {
                let tip = exp.tip;
                if tip.index() >= self.plan.len() {
                    continue;
                }
                let consumers = self.plan.consumers(tip);
                if consumers.is_empty() {
                    continue;
                }
                // Skip when the tip already became a Load of the same path
                // (a rewrite replaced the expansion with the stored file).
                if matches!(self.plan.op(tip), PhysicalOp::Load { .. }) {
                    continue;
                }
                let load = self.plan.add(PhysicalOp::Load { path: exp.path.clone() }, vec![]);
                for c in consumers {
                    for k in 0..self.plan.inputs(c).len() {
                        if self.plan.inputs(c)[k] == tip {
                            self.plan.node_mut(c).inputs[k] = load;
                        }
                    }
                }
                acted = true;
            }
            if !acted {
                break;
            }
            // Ids shift on GC; redo in the (rare) multi-expansion case.
            let remap = self.plan.gc();
            for exp in &mut self.expansions {
                exp.tip = match remap.get(exp.tip.index()).copied().flatten() {
                    Some(t) => t,
                    None => NodeId(u32::MAX), // gone: fully consumed
                };
            }
            self.expansions.retain(|e| e.tip != NodeId(u32::MAX));
        }
        self.plan.gc();
        self.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use restore_dataflow::physical::PhysicalOp::*;

    fn producer() -> PhysicalPlan {
        let mut p = PhysicalPlan::new();
        let l = p.add(Load { path: "/base".into() }, vec![]);
        let pr = p.add(Project { cols: vec![0, 1] }, vec![l]);
        p.add(Store { path: "/tmp-0".into() }, vec![pr]);
        p
    }

    fn consumer() -> PhysicalPlan {
        let mut p = PhysicalPlan::new();
        let l = p.add(Load { path: "/tmp-0".into() }, vec![]);
        let g = p.add(Group { keys: vec![0] }, vec![l]);
        p.add(Store { path: "/out".into() }, vec![g]);
        p
    }

    #[test]
    fn expansion_inlines_producer() {
        let mut prov = Provenance::new();
        prov.register("/tmp-0", producer());
        let exp = prov.expand(&consumer());
        // Load(/base) -> Project -> Group -> Store.
        assert_eq!(exp.plan.len(), 4);
        assert_eq!(exp.expansions.len(), 1);
        let loads = exp.plan.loads();
        assert_eq!(loads.len(), 1);
        assert!(matches!(exp.plan.op(loads[0]), Load { path } if path == "/base"));
    }

    #[test]
    fn plans_without_provenance_pass_through() {
        let prov = Provenance::new();
        let c = consumer();
        let exp = prov.expand(&c);
        assert_eq!(exp.plan, c);
        assert!(exp.expansions.is_empty());
    }

    #[test]
    fn collapse_restores_unmatched_expansion() {
        let mut prov = Provenance::new();
        prov.register("/tmp-0", producer());
        let exp = prov.expand(&consumer());
        // No rewrite happened; collapsing must restore the original shape.
        let collapsed = exp.collapse_unused();
        assert_eq!(collapsed.loads().len(), 1);
        let l = collapsed.loads()[0];
        assert!(matches!(collapsed.op(l), Load { path } if path == "/tmp-0"));
        // Group and Store survive; producer ops are gone.
        assert_eq!(collapsed.len(), 3);
    }

    #[test]
    fn forget_removes_entry() {
        let mut prov = Provenance::new();
        prov.register("/tmp-0", producer());
        assert!(prov.contains("/tmp-0"));
        prov.forget("/tmp-0");
        assert!(!prov.contains("/tmp-0"));
    }
}
