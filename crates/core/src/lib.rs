//! ReStore: reusing results of MapReduce jobs (the paper's contribution).
//!
//! ReStore sits between the dataflow compiler (`restore-dataflow`) and the
//! MapReduce engine (`restore-mapreduce`), exactly where the paper places
//! it relative to Pig's `JobControlCompiler` and Hadoop (§6.2). For every
//! job of an incoming workflow it:
//!
//! 1. **matches** the job's physical plan against the repository of
//!    stored job outputs and **rewrites** it to load stored results
//!    ([`matcher`], [`rewriter`], §3, Algorithm 1);
//! 2. **enumerates candidate sub-jobs** and injects `Split`+`Store`
//!    operators to materialize them ([`enumerator`], §4 — Conservative,
//!    Aggressive, and No-Heuristic policies);
//! 3. executes the instrumented job and **registers** its outputs, plans,
//!    and statistics in the [`repository`];
//! 4. applies the keep/evict rules of §5 ([`selector`]).
//!
//! Plans in the repository are kept at **base level**: a `Load` of a path
//! that was itself produced by a job is expanded through the
//! [`provenance`] table into the producing plan, so jobs submitted at
//! different times and chained through temporary files all match against
//! the same canonical shapes.

pub mod dlq;
pub mod driver;
pub mod enumerator;
pub mod failure;
pub mod journal;
pub mod matcher;
pub mod obs;
pub mod pin;
pub mod plan_text;
pub mod provenance;
pub mod rcu;
pub mod replication;
pub mod repository;
pub mod rewriter;
pub mod selector;
mod state;

pub use dlq::DlqEntry;
pub use driver::{footprints_conflict, QueryExecution, ReStore, ReStoreConfig, ReStoreStats};
pub use enumerator::Heuristic;
pub use failure::{FailureDisposition, FailurePolicy};
pub use journal::{JournalConfig, JournalStats, RecoveryReport, TornTail};
pub use obs::{ReuseDecision, ReuseTraceEvent};
pub use pin::PinSet;
pub use provenance::Provenance;
pub use rcu::Rcu;
pub use replication::{
    InProcessLink, ReplicaSession, ReplicationError, ReplicationTransport, Replicator, Shipment,
};
pub use repository::{
    normalize_shards, FrozenRepo, MatchProbe, ProbedCandidate, RepoBatch, RepoEntry, RepoSnapshot,
    RepoStats, RepoView, Repository, MAX_REPO_SHARDS,
};
pub use selector::SelectionPolicy;
