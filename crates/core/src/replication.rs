//! Journal-shipped warm standby replication.
//!
//! The snapshot journal is already an ordered, idempotent, seq-anchored
//! record stream — exactly what a warm standby needs to tail. This
//! module ships it: a [`Replicator`] on the primary forwards every
//! sealed journal segment (plus an anchoring `restore-state` base)
//! through a [`ReplicationTransport`], and a [`ReplicaSession`] on the
//! standby replays the records continuously through the same
//! idempotent `apply_record` path recovery uses. Failover is then a
//! queue drain, not a disk walk: the standby's tables are already
//! populated, so promotion serves warm immediately (the second ReStore
//! line of work — Hübner et al. — benchmarks exactly this axis:
//! recovery *time*, not just steady-state overhead).
//!
//! # Shipping protocol
//!
//! A shipment is either a full base or a batch of sealed segments
//! ([`Shipment`]); both carry the primary's **lineage token**. Segment
//! shipments additionally carry `last_seq`, the highest record seq
//! inside — the standby's catch-up target.
//!
//! * **Attach order.** The replicator registers its journal tap
//!   *before* capturing the anchoring base, so a record sealed during
//!   the capture cannot slip between the base and the first shipped
//!   segment. Segments that seal early carry seqs the base already
//!   covers; the standby skips them idempotently.
//! * **Shared seal.** Shipping seals the live lanes
//!   (`Journal::seal`) without consuming the sealed queue, so the
//!   service's checkpoint keeper and replication observe the *same*
//!   segments — neither steals from the other.
//!
//! # Divergence rule
//!
//! The standby accepts a segment iff (a) the shipment's lineage equals
//! the lineage of its applied base and (b) the first record past its
//! `applied_seq` is exactly `applied_seq + 1` with the rest dense.
//! Records at or below `applied_seq` are idempotent redelivery and are
//! skipped. Anything else is a typed [`ReplicationError`] — a seq gap
//! means lost records, a lineage mismatch means the primary's state
//! was replaced by an un-journaled replay (recovery bumps the token) —
//! and the standby's remedy is always the same: request a **full-base
//! resync** over the transport's back channel and count it in
//! `restore_replica_resyncs`.
//!
//! # Telemetry
//!
//! The primary records `restore_replication_lag_seconds` (the
//! staleness window each shipment closes) and
//! `restore_replication_records_shipped_total`; the standby records
//! `restore_replica_resyncs_total`. All land in the respective
//! session's registry and render through the normal exposition.

use crate::driver::ReStore;
use crate::journal::{self, JournalConfig, Record, TapId};
use restore_common::Error;
use restore_telemetry::{Counter, Histogram};
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a shipment was refused or a link failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplicationError {
    /// The shipped record stream is not dense past the standby's
    /// applied seq: records were lost (or duplicated within one
    /// segment). The standby cannot reconcile by replay.
    SeqGap { expected: u64, got: u64 },
    /// The shipment's lineage token differs from the standby's base
    /// lineage: the primary's state was replaced by an un-journaled
    /// replay (recovery) since the standby anchored.
    DivergedLineage { ours: u64, theirs: u64 },
    /// Segments arrived before any base; the standby has nothing to
    /// replay onto.
    NotSynced,
    /// A shipped segment failed to decode. Shipped segments are sealed
    /// and complete, so even a torn tail is corruption here, not a
    /// crash artifact.
    Corrupt(Error),
    /// Applying a shipped base or record to the standby session failed.
    Apply(Error),
    /// The transport refused the shipment (peer gone, link closed).
    Disconnected,
    /// Promotion's parity check failed: the primary announced records
    /// the standby never applied.
    Parity { shipped: u64, applied: u64 },
}

impl fmt::Display for ReplicationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplicationError::SeqGap { expected, got } => {
                write!(f, "record seq gap: expected {expected}, got {got}")
            }
            ReplicationError::DivergedLineage { ours, theirs } => {
                write!(f, "diverged lineage: standby anchored at {ours}, shipment carries {theirs}")
            }
            ReplicationError::NotSynced => write!(f, "standby has no base to replay onto"),
            ReplicationError::Corrupt(e) => write!(f, "shipped segment corrupt: {e}"),
            ReplicationError::Apply(e) => write!(f, "replay failed: {e}"),
            ReplicationError::Disconnected => write!(f, "replication transport disconnected"),
            ReplicationError::Parity { shipped, applied } => {
                write!(f, "seq parity failed: primary shipped through {shipped}, standby applied {applied}")
            }
        }
    }
}

impl std::error::Error for ReplicationError {}

/// One unit shipped primary → standby.
#[derive(Debug, Clone)]
pub enum Shipment {
    /// A full `restore-state` document anchoring (or re-anchoring) the
    /// standby.
    Base { lineage: u64, state: String },
    /// Sealed journal segments; `last_seq` is the highest record seq
    /// inside — the standby's catch-up target.
    Segments { lineage: u64, last_seq: u64, segments: Vec<String> },
}

/// One replication link between a primary and a standby. The in-process
/// implementation below is a channel; the trait is deliberately
/// transport-shaped (blocking receive with timeout, back-channel resync
/// flag, explicit close) so a socket implementation can slot in without
/// touching either endpoint.
pub trait ReplicationTransport: Send + Sync {
    /// Primary side: enqueue a shipment for the standby.
    fn ship(&self, shipment: Shipment) -> Result<(), ReplicationError>;
    /// Standby side: next shipment, blocking up to `timeout`. `None` on
    /// timeout or when the link is closed and drained.
    fn recv(&self, timeout: Duration) -> Option<Shipment>;
    /// Standby side: next shipment if one is already queued.
    fn try_recv(&self) -> Option<Shipment>;
    /// Standby → primary back channel: request a full-base resync.
    /// Idempotent; the flag holds until the primary consumes it.
    fn request_resync(&self);
    /// Primary side: consume a pending resync request.
    fn take_resync_request(&self) -> bool;
    /// Tear the link down: later ships fail, receives drain then stop.
    fn close(&self);
    fn is_closed(&self) -> bool;
    /// Shipments queued and not yet received.
    fn queued(&self) -> usize;
}

#[derive(Default)]
struct LinkState {
    queue: VecDeque<Shipment>,
    resync: bool,
    closed: bool,
}

/// The in-process [`ReplicationTransport`]: a mutex-and-condvar channel
/// for a standby living in the same process as its primary.
#[derive(Default)]
pub struct InProcessLink {
    state: Mutex<LinkState>,
    arrived: Condvar,
}

impl InProcessLink {
    pub fn new() -> Arc<InProcessLink> {
        Arc::new(InProcessLink::default())
    }
}

impl ReplicationTransport for InProcessLink {
    fn ship(&self, shipment: Shipment) -> Result<(), ReplicationError> {
        let mut state = self.state.lock().unwrap();
        if state.closed {
            return Err(ReplicationError::Disconnected);
        }
        state.queue.push_back(shipment);
        self.arrived.notify_one();
        Ok(())
    }

    fn recv(&self, timeout: Duration) -> Option<Shipment> {
        let deadline = Instant::now() + timeout;
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(s) = state.queue.pop_front() {
                return Some(s);
            }
            if state.closed {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (next, _) = self.arrived.wait_timeout(state, deadline - now).unwrap();
            state = next;
        }
    }

    fn try_recv(&self) -> Option<Shipment> {
        self.state.lock().unwrap().queue.pop_front()
    }

    fn request_resync(&self) {
        self.state.lock().unwrap().resync = true;
    }

    fn take_resync_request(&self) -> bool {
        std::mem::take(&mut self.state.lock().unwrap().resync)
    }

    fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.arrived.notify_all();
    }

    fn is_closed(&self) -> bool {
        self.state.lock().unwrap().closed
    }

    fn queued(&self) -> usize {
        self.state.lock().unwrap().queue.len()
    }
}

/// State shared between the [`Replicator`] handle and the journal tap
/// it registers. Holds no reference back to the session, so the
/// `ReStore → Journal → tap` chain cannot cycle.
struct ShipCore {
    transport: Arc<dyn ReplicationTransport>,
    /// Highest record seq shipped (segments) or covered by a shipped
    /// base — a standby at or past this can catch up from segments
    /// alone.
    shipped_seq: AtomicU64,
    records_shipped: Counter,
    /// Staleness window each shipment closes: seconds since the
    /// previous shipment left this link.
    lag: Histogram,
    last_ship: Mutex<Instant>,
}

impl ShipCore {
    fn note_ship(&self) {
        let mut last = self.last_ship.lock().unwrap();
        self.lag.record_elapsed(*last);
        *last = Instant::now();
    }

    /// Journal tap: forward one sealed segment. Ship failures (closed
    /// link) are dropped here — the pump surfaces the disconnect.
    fn ship_segment(&self, lineage: u64, segment: &str) {
        let Some((_, last_seq, frames)) = journal::segment_seq_span(segment) else {
            return;
        };
        let shipment =
            Shipment::Segments { lineage, last_seq, segments: vec![segment.to_string()] };
        if self.transport.ship(shipment).is_ok() {
            self.shipped_seq.fetch_max(last_seq, SeqCst);
            self.records_shipped.add(frames as u64);
            self.note_ship();
        }
    }
}

/// Primary-side shipping driver: owns one transport to one standby,
/// taps the session journal for sealed segments, and ships anchoring
/// bases on attach and on resync requests. Dropping the replicator
/// removes its tap; the standby keeps whatever it has applied.
pub struct Replicator {
    driver: Arc<ReStore>,
    core: Arc<ShipCore>,
    tap: TapId,
}

impl Replicator {
    /// Attach a standby behind `transport`: enable the journal if it is
    /// off, register the segment tap, and ship the anchoring base. The
    /// tap goes in *before* the base capture — see the module docs for
    /// why that ordering closes the attach race.
    pub fn attach(
        driver: Arc<ReStore>,
        transport: Arc<dyn ReplicationTransport>,
    ) -> Result<Replicator, ReplicationError> {
        if !driver.journal_enabled() {
            driver.enable_journal(JournalConfig::default());
        }
        let registry = driver.registry();
        let core = Arc::new(ShipCore {
            transport,
            shipped_seq: AtomicU64::new(0),
            records_shipped: registry.counter(
                "restore_replication_records_shipped_total",
                "Journal records shipped to standbys",
                &[],
            ),
            lag: registry.histogram(
                "restore_replication_lag_seconds",
                "Staleness window closed by each replication shipment",
                &[],
                1e-9,
            ),
            last_ship: Mutex::new(Instant::now()),
        });
        let tap_core = core.clone();
        let tap = driver
            .journal_handle()
            .add_tap(Arc::new(move |lineage, seg| tap_core.ship_segment(lineage, seg)));
        let replicator = Replicator { driver, core, tap };
        replicator.ship_base()?;
        Ok(replicator)
    }

    /// Capture and ship a full anchoring base; returns its anchor seq.
    pub fn ship_base(&self) -> Result<u64, ReplicationError> {
        let (state, seq, lineage) = self.driver.save_state_anchored();
        self.core.transport.ship(Shipment::Base { lineage, state })?;
        self.core.shipped_seq.fetch_max(seq, SeqCst);
        self.core.note_ship();
        Ok(seq)
    }

    /// One shipping beat: honor a pending resync request (full base),
    /// then flush the lazily tracked state and seal the live lanes —
    /// sealed segments flow to the standby through the tap. The service
    /// calls this after every completed workflow.
    pub fn pump(&self) -> Result<(), ReplicationError> {
        if self.core.transport.is_closed() {
            return Err(ReplicationError::Disconnected);
        }
        if self.core.transport.take_resync_request() {
            self.ship_base()?;
        }
        self.driver.flush_and_seal_journal().map_err(ReplicationError::Apply)
    }

    /// Ship whatever a standby whose applied seq is `seq` is missing: a
    /// full base when `seq` is behind what segments alone can replay
    /// (the standby attached late or lost shipments), otherwise just a
    /// pump.
    pub fn ship_from(&self, seq: u64) -> Result<(), ReplicationError> {
        if seq < self.core.shipped_seq.load(SeqCst) {
            self.ship_base()?;
        }
        self.pump()
    }

    /// Highest record seq shipped or covered by a shipped base.
    pub fn shipped_seq(&self) -> u64 {
        self.core.shipped_seq.load(SeqCst)
    }

    /// Records journaled but not yet shipped (live lanes the next pump
    /// will seal).
    pub fn lag_records(&self) -> u64 {
        self.driver.journal_stats().seq.saturating_sub(self.shipped_seq())
    }
}

impl Drop for Replicator {
    fn drop(&mut self) {
        self.driver.journal_handle().remove_tap(self.tap);
    }
}

/// Standby-side replay state around a [`ReStore`] session: applies
/// shipped bases via the recovery path and shipped segments via the
/// idempotent record-replay path, enforcing the divergence rule from
/// the module docs. The wrapped session's journal stays paused during
/// every replay, so the standby never re-records its primary's records.
pub struct ReplicaSession {
    driver: Arc<ReStore>,
    /// Lineage token of the applied base (meaningless until synced).
    lineage: AtomicU64,
    synced: AtomicBool,
    /// Highest record seq applied (or covered by the applied base).
    applied_seq: AtomicU64,
    /// Highest `last_seq` any accepted-lineage shipment announced —
    /// promotion's parity target.
    shipped_target: AtomicU64,
    records_applied: AtomicU64,
    records_skipped: AtomicU64,
    resyncs: Counter,
}

impl ReplicaSession {
    /// Wrap a (typically fresh) session as the standby.
    pub fn over(driver: Arc<ReStore>) -> ReplicaSession {
        let resyncs = driver.registry().counter(
            "restore_replica_resyncs_total",
            "Full-base resyncs applied after divergence",
            &[],
        );
        ReplicaSession {
            driver,
            lineage: AtomicU64::new(0),
            synced: AtomicBool::new(false),
            applied_seq: AtomicU64::new(0),
            shipped_target: AtomicU64::new(0),
            records_applied: AtomicU64::new(0),
            records_skipped: AtomicU64::new(0),
            resyncs,
        }
    }

    /// The wrapped session. Read-only introspection is safe while the
    /// standby tails; promotion hands the session to a service.
    pub fn driver(&self) -> &Arc<ReStore> {
        &self.driver
    }

    pub fn is_synced(&self) -> bool {
        self.synced.load(SeqCst)
    }

    /// Highest record seq applied (or covered by the applied base).
    pub fn applied_seq(&self) -> u64 {
        self.applied_seq.load(SeqCst)
    }

    /// Highest record seq the primary has announced on the current
    /// lineage; `applied_seq` must reach this for parity at promotion.
    pub fn shipped_target(&self) -> u64 {
        self.shipped_target.load(SeqCst)
    }

    /// `(records applied, records skipped as idempotent redelivery)`.
    pub fn record_counts(&self) -> (u64, u64) {
        (self.records_applied.load(SeqCst), self.records_skipped.load(SeqCst))
    }

    /// Full-base resyncs applied after the initial anchor.
    pub fn resyncs(&self) -> u64 {
        self.resyncs.get()
    }

    /// Apply one shipment of either kind.
    pub fn apply_shipment(&self, shipment: &Shipment) -> Result<(), ReplicationError> {
        match shipment {
            Shipment::Base { lineage, state } => self.apply_base(*lineage, state),
            Shipment::Segments { lineage, last_seq, segments } => {
                if !self.is_synced() {
                    return Err(ReplicationError::NotSynced);
                }
                let ours = self.lineage.load(SeqCst);
                if *lineage != ours {
                    return Err(ReplicationError::DivergedLineage { ours, theirs: *lineage });
                }
                // Advance the parity target only for accepted-lineage
                // shipments (a stale-lineage target would outlive the
                // resync that voids it) but *before* applying: a seq
                // gap must leave the target ahead of `applied_seq` so
                // promotion cannot silently pass over lost records.
                self.shipped_target.fetch_max(*last_seq, SeqCst);
                for segment in segments {
                    self.apply_segment(segment)?;
                }
                Ok(())
            }
        }
    }

    /// Anchor (or re-anchor) the standby on a full base. Replays
    /// through the recovery path with an empty segment list; counted as
    /// a resync when the standby was already synced.
    fn apply_base(&self, lineage: u64, state: &str) -> Result<(), ReplicationError> {
        let report = self.driver.recover(state, &[]).map_err(ReplicationError::Apply)?;
        if self.synced.swap(true, SeqCst) {
            self.resyncs.inc();
        }
        self.lineage.store(lineage, SeqCst);
        self.applied_seq.store(report.base_seq, SeqCst);
        // A re-anchor voids every target announced before it (the
        // primary may have legitimately rolled back to a lower seq).
        self.shipped_target.store(report.base_seq, SeqCst);
        Ok(())
    }

    /// Replay one sealed segment: decode (any tear is corruption —
    /// shipped segments are complete), merge-sort by seq, skip records
    /// the standby already covers, verify the rest are exactly dense
    /// from `applied_seq + 1`, and apply. Returns `(applied, skipped)`.
    pub fn apply_segment(&self, segment: &str) -> Result<(usize, usize), ReplicationError> {
        if !self.is_synced() {
            return Err(ReplicationError::NotSynced);
        }
        let (records, _torn) =
            journal::decode_segment(segment, 0, false).map_err(ReplicationError::Corrupt)?;
        let mut records: Vec<(u64, Record)> = records;
        records.sort_by_key(|&(seq, _)| seq);
        let covered = self.applied_seq.load(SeqCst);
        let mut expected = covered + 1;
        let mut skipped = 0usize;
        let mut to_apply: Vec<Record> = Vec::new();
        for (seq, record) in records {
            if seq <= covered {
                // Idempotent redelivery: a segment sealed around the
                // anchoring base (or re-shipped) repeats covered seqs.
                skipped += 1;
                continue;
            }
            if seq != expected {
                // Missing seqs (gap) or a repeated seq within the new
                // range (duplicate) — both unreconcilable by replay.
                return Err(ReplicationError::SeqGap { expected, got: seq });
            }
            expected += 1;
            to_apply.push(record);
        }
        let applied = to_apply.len();
        if applied > 0 {
            let last = expected - 1;
            self.driver.replay_shipped(to_apply, last).map_err(ReplicationError::Apply)?;
            self.applied_seq.store(last, SeqCst);
        }
        self.records_applied.fetch_add(applied as u64, SeqCst);
        self.records_skipped.fetch_add(skipped as u64, SeqCst);
        Ok((applied, skipped))
    }

    /// Promotion's parity gate: every record the primary announced on
    /// the current lineage must have been applied.
    pub fn verify_parity(&self) -> Result<(), ReplicationError> {
        if !self.is_synced() {
            return Err(ReplicationError::NotSynced);
        }
        let shipped = self.shipped_target();
        let applied = self.applied_seq();
        if shipped != applied {
            return Err(ReplicationError::Parity { shipped, applied });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_process_link_ships_receives_and_closes() {
        let link = InProcessLink::new();
        assert_eq!(link.queued(), 0);
        link.ship(Shipment::Base { lineage: 1, state: "x".into() }).unwrap();
        assert_eq!(link.queued(), 1);
        assert!(matches!(link.try_recv(), Some(Shipment::Base { lineage: 1, .. })));
        assert!(link.recv(Duration::from_millis(5)).is_none());
        link.close();
        assert!(link.is_closed());
        assert_eq!(
            link.ship(Shipment::Base { lineage: 1, state: "x".into() }),
            Err(ReplicationError::Disconnected)
        );
    }

    #[test]
    fn resync_flag_is_sticky_until_taken() {
        let link = InProcessLink::new();
        assert!(!link.take_resync_request());
        link.request_resync();
        link.request_resync();
        assert!(link.take_resync_request());
        assert!(!link.take_resync_request());
    }

    #[test]
    fn recv_drains_queue_after_close() {
        let link = InProcessLink::new();
        link.ship(Shipment::Base { lineage: 1, state: "x".into() }).unwrap();
        link.close();
        assert!(link.recv(Duration::from_millis(5)).is_some());
        assert!(link.recv(Duration::from_millis(5)).is_none());
    }
}
