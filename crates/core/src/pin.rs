//! Refcounted pins on stored outputs, closing the match-then-evict race.
//!
//! A session matches a repository entry under the read lock, releases
//! every lock, and only later executes the rewritten job that Loads the
//! entry's output file. A concurrent session running a §5 eviction sweep
//! could delete that file in between, failing the job with
//! `FileNotFound`. Pins make the window safe: the matching session pins
//! the output path for the lifetime of its workflow, and the sweep
//! *defers* file deletion of pinned paths until the last pin drops. The
//! repository entry is still evicted immediately (no new matches), only
//! the file outlives it.
//!
//! Two refinements close sibling races:
//! * **preservation** — a path handed to a caller as `final_output` is
//!   marked preserved; a deferred deletion then orphans the file instead
//!   of deleting it under the reader, no matter which workflow's pin
//!   drops last;
//! * **under-lock deletion** — the deletion callback passed to
//!   [`PinSet::unpin`] runs while the pin mutex is held, so a concurrent
//!   re-registration (which calls [`PinSet::cancel_deferred`] under the
//!   same mutex) can never interleave between the decision to delete and
//!   the delete itself.

use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};

/// Shared set of pinned output paths with deferred deletions.
#[derive(Debug, Default)]
pub struct PinSet {
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    /// path → number of in-flight workflows holding it.
    counts: HashMap<String, usize>,
    /// Paths evicted while pinned; deleted when their last pin drops.
    deferred: HashSet<String>,
    /// Paths handed to callers as workflow results: never deleted by a
    /// deferred deletion (orphaned instead). Cleared by re-registration.
    preserved: HashSet<String>,
}

impl PinSet {
    /// Take one pin on `path`.
    pub fn pin(&self, path: &str) {
        *self.inner.lock().counts.entry(path.to_string()).or_insert(0) += 1;
    }

    /// Is any workflow currently pinning `path`?
    pub fn is_pinned(&self, path: &str) -> bool {
        self.inner.lock().counts.contains_key(path)
    }

    /// Number of distinct pinned paths.
    pub fn pinned_paths(&self) -> usize {
        self.inner.lock().counts.len()
    }

    /// Exempt `path` from deferred deletion: it was handed to a caller
    /// as a workflow result, so deleting it at pin release would yank
    /// the file out from under the reader. The exemption holds until
    /// the path is re-registered ([`PinSet::cancel_deferred`]).
    pub fn preserve(&self, path: &str) {
        self.inner.lock().preserved.insert(path.to_string());
    }

    /// Paths with a deletion deferred to their last unpin. Their files
    /// still exist right now, but are already condemned: a snapshot
    /// must not serialize them, or it would reference dangling paths
    /// the moment the in-flight workflows finish.
    pub fn deferred_paths(&self) -> Vec<String> {
        self.inner.lock().deferred.iter().cloned().collect()
    }

    /// Ask to delete `path`. If it is pinned, the deletion is deferred
    /// until the last pin drops and `true` is returned; otherwise the
    /// caller owns the deletion and `false` is returned.
    pub fn defer_delete(&self, path: &str) -> bool {
        let mut g = self.inner.lock();
        if g.counts.contains_key(path) {
            g.deferred.insert(path.to_string());
            true
        } else {
            false
        }
    }

    /// Cancel a pending deferred deletion: the path was re-registered
    /// (a new job stored fresh bytes there), so the file is live again
    /// and stale pins must no longer delete it.
    pub fn cancel_deferred(&self, path: &str) {
        let mut g = self.inner.lock();
        g.deferred.remove(path);
        g.preserved.remove(path);
    }

    /// Drop one pin of `path`. When this was the last pin, a deferred
    /// deletion is due, and the path is not preserved, `delete` runs —
    /// **while the pin mutex is held**, so no concurrent
    /// re-registration can slip between the decision and the deletion.
    /// `delete` must not call back into this `PinSet`.
    pub fn unpin(&self, path: &str, delete: impl FnOnce()) {
        let mut g = self.inner.lock();
        match g.counts.get_mut(path) {
            Some(c) if *c > 1 => {
                *c -= 1;
            }
            Some(_) => {
                g.counts.remove(path);
                if g.deferred.remove(path) && !g.preserved.contains(path) {
                    delete();
                }
            }
            None => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    fn release(pins: &PinSet, path: &str) -> bool {
        let deleted = Cell::new(false);
        pins.unpin(path, || deleted.set(true));
        deleted.get()
    }

    #[test]
    fn unpinned_path_is_deleted_by_caller() {
        let pins = PinSet::default();
        assert!(!pins.defer_delete("/r/a"));
        assert!(!release(&pins, "/r/a"));
    }

    #[test]
    fn deferred_deletion_waits_for_last_pin() {
        let pins = PinSet::default();
        pins.pin("/r/a");
        pins.pin("/r/a");
        assert!(pins.is_pinned("/r/a"));
        assert!(pins.defer_delete("/r/a"));
        assert!(!release(&pins, "/r/a"), "one pin still outstanding");
        assert!(release(&pins, "/r/a"), "last pin releases the deferred deletion");
        assert!(!pins.is_pinned("/r/a"));
        // A later unpin of the same path is inert.
        assert!(!release(&pins, "/r/a"));
    }

    #[test]
    fn reregistration_cancels_deferred_deletion() {
        let pins = PinSet::default();
        pins.pin("/r/c");
        assert!(pins.defer_delete("/r/c"));
        // A new job re-registered /r/c: the old deferral must not
        // delete the fresh file when the stale pin drops.
        pins.cancel_deferred("/r/c");
        assert!(!release(&pins, "/r/c"), "cancelled deferral performs no deletion");
    }

    #[test]
    fn preserved_path_is_orphaned_not_deleted() {
        let pins = PinSet::default();
        // Two workflows pin; one hands the path to its caller.
        pins.pin("/r/d");
        pins.pin("/r/d");
        assert!(pins.defer_delete("/r/d"));
        pins.preserve("/r/d");
        assert!(!release(&pins, "/r/d"));
        // The *other* workflow's guard drops last: preservation is
        // shared state, so it too must not delete the file.
        assert!(!release(&pins, "/r/d"), "preservation binds every guard, not just the caller's");
    }

    #[test]
    fn pin_without_deferred_deletion_is_silent() {
        let pins = PinSet::default();
        pins.pin("/r/b");
        assert!(!release(&pins, "/r/b"));
        assert_eq!(pins.pinned_paths(), 0);
    }
}
