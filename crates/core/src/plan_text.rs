//! Compact text serialization of physical plans.
//!
//! The repository survives across sessions (§2.2 stores plans alongside
//! outputs), so plans need a durable representation. Rather than pulling
//! in a serde backend, plans round-trip through a small line format: one
//! node per line, expressions as s-expressions, strings Rust-quoted.
//!
//! ```text
//! 0 load "/pv"
//! 1 project 0,2 <- 0
//! 2 filter (== (c 0) (l s "x")) <- 1
//! 3 store "/out" <- 2
//! ```

use restore_common::{Error, Result, Value};
use restore_dataflow::expr::{AggFunc, ArithOp, CmpOp, Expr, ScalarFunc};
use restore_dataflow::physical::{AggItem, NodeId, PhysicalOp, PhysicalPlan};
use std::fmt::Write as _;

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

/// Serialize a plan. Node ids are renumbered topologically.
pub fn encode_plan(plan: &PhysicalPlan) -> String {
    let order = plan.topo_order();
    let mut pos = vec![0usize; plan.len()];
    for (i, id) in order.iter().enumerate() {
        pos[id.index()] = i;
    }
    let mut out = String::new();
    for (i, &id) in order.iter().enumerate() {
        let node = plan.node(id);
        let _ = write!(out, "{i} {}", encode_op(&node.op));
        if !node.inputs.is_empty() {
            let ins: Vec<String> = node.inputs.iter().map(|n| pos[n.index()].to_string()).collect();
            let _ = write!(out, " <- {}", ins.join(","));
        }
        out.push('\n');
    }
    out
}

fn encode_op(op: &PhysicalOp) -> String {
    match op {
        PhysicalOp::Load { path } => format!("load {path:?}"),
        PhysicalOp::Store { path } => format!("store {path:?}"),
        PhysicalOp::Project { cols } => format!("project {}", join_usizes(cols)),
        PhysicalOp::MapExpr { exprs } => {
            let parts: Vec<String> = exprs.iter().map(encode_expr).collect();
            format!("mapexpr {}", parts.join(" "))
        }
        PhysicalOp::Filter { pred } => format!("filter {}", encode_expr(pred)),
        PhysicalOp::Join { keys } => format!("join {}", encode_key_lists(keys)),
        PhysicalOp::CoGroup { keys } => format!("cogroup {}", encode_key_lists(keys)),
        PhysicalOp::Group { keys } => format!("group {}", join_usizes(keys)),
        PhysicalOp::Aggregate { items } => {
            let parts: Vec<String> = items.iter().map(encode_agg_item).collect();
            format!("aggregate {}", parts.join(" "))
        }
        PhysicalOp::Flatten { bag_col } => format!("flatten {bag_col}"),
        PhysicalOp::Distinct => "distinct".to_string(),
        PhysicalOp::Union => "union".to_string(),
        PhysicalOp::OrderBy { keys } => {
            let parts: Vec<String> = keys
                .iter()
                .map(|(c, asc)| format!("{c}{}", if *asc { "+" } else { "-" }))
                .collect();
            format!("orderby {}", parts.join(","))
        }
        PhysicalOp::Limit { n } => format!("limit {n}"),
        PhysicalOp::Split => "split".to_string(),
    }
}

fn join_usizes(v: &[usize]) -> String {
    if v.is_empty() {
        return "-".to_string();
    }
    v.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(",")
}

fn encode_key_lists(keys: &[Vec<usize>]) -> String {
    keys.iter().map(|k| join_usizes(k)).collect::<Vec<_>>().join(";")
}

fn encode_agg_item(item: &AggItem) -> String {
    match item {
        AggItem::Key(c) => format!("(k {c})"),
        AggItem::Agg { func, bag_col, field } => {
            let f = match field {
                Some(f) => f.to_string(),
                None => "_".to_string(),
            };
            format!("(a {} {bag_col} {f})", agg_name(*func))
        }
    }
}

fn agg_name(f: AggFunc) -> &'static str {
    match f {
        AggFunc::Count => "count",
        AggFunc::Sum => "sum",
        AggFunc::Avg => "avg",
        AggFunc::Min => "min",
        AggFunc::Max => "max",
        AggFunc::CountDistinct => "countd",
    }
}

fn encode_expr(e: &Expr) -> String {
    match e {
        Expr::Col(c) => format!("(c {c})"),
        Expr::Lit(Value::Null) => "(l n)".to_string(),
        Expr::Lit(Value::Int(i)) => format!("(l i {i})"),
        Expr::Lit(Value::Double(d)) => format!("(l d {d})"),
        Expr::Lit(Value::Str(s)) => format!("(l s {s:?})"),
        Expr::Lit(Value::Bag(_)) => "(l n)".to_string(), // bags never appear in literals
        Expr::Neg(x) => format!("(neg {})", encode_expr(x)),
        Expr::Not(x) => format!("(not {})", encode_expr(x)),
        Expr::IsNull(x, true) => format!("(isnull {})", encode_expr(x)),
        Expr::IsNull(x, false) => format!("(notnull {})", encode_expr(x)),
        Expr::And(a, b) => format!("(and {} {})", encode_expr(a), encode_expr(b)),
        Expr::Or(a, b) => format!("(or {} {})", encode_expr(a), encode_expr(b)),
        Expr::Arith(a, op, b) => format!(
            "({} {} {})",
            match op {
                ArithOp::Add => "+",
                ArithOp::Sub => "-",
                ArithOp::Mul => "*",
                ArithOp::Div => "/",
                ArithOp::Mod => "%",
            },
            encode_expr(a),
            encode_expr(b)
        ),
        Expr::Cmp(a, op, b) => format!(
            "({} {} {})",
            match op {
                CmpOp::Eq => "==",
                CmpOp::Neq => "!=",
                CmpOp::Lt => "<",
                CmpOp::Le => "<=",
                CmpOp::Gt => ">",
                CmpOp::Ge => ">=",
            },
            encode_expr(a),
            encode_expr(b)
        ),
        Expr::Func(f, args) => {
            let parts: Vec<String> = args.iter().map(encode_expr).collect();
            format!("(f {} {})", func_name(*f), parts.join(" "))
        }
    }
}

fn func_name(f: ScalarFunc) -> &'static str {
    match f {
        ScalarFunc::Round => "round",
        ScalarFunc::Floor => "floor",
        ScalarFunc::Ceil => "ceil",
        ScalarFunc::Abs => "abs",
        ScalarFunc::Upper => "upper",
        ScalarFunc::Lower => "lower",
        ScalarFunc::Strlen => "strlen",
        ScalarFunc::Concat => "concat",
        ScalarFunc::Substring => "substring",
        ScalarFunc::Trim => "trim",
        ScalarFunc::StartsWith => "startswith",
    }
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

/// Parse a plan serialized by [`encode_plan`].
pub fn decode_plan(text: &str) -> Result<PhysicalPlan> {
    let mut plan = PhysicalPlan::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: &str| Error::Repository(format!("line {}: {msg}", lineno + 1));
        let (head, inputs) = match line.split_once(" <- ") {
            Some((h, ins)) => {
                let ids: Result<Vec<NodeId>> = ins
                    .split(',')
                    .map(|s| s.trim().parse::<u32>().map(NodeId).map_err(|_| err("bad input id")))
                    .collect();
                (h, ids?)
            }
            None => (line, Vec::new()),
        };
        let mut parts = head.splitn(3, ' ');
        let idx: usize =
            parts.next().ok_or_else(|| err("missing id"))?.parse().map_err(|_| err("bad id"))?;
        if idx != plan.len() {
            return Err(err("node ids must be dense and ordered"));
        }
        let opname = parts.next().ok_or_else(|| err("missing op"))?;
        let rest = parts.next().unwrap_or("");
        let op = decode_op(opname, rest)
            .map_err(|e| Error::Repository(format!("line {}: {e}", lineno + 1)))?;
        plan.add(op, inputs);
    }
    if plan.is_empty() {
        return Err(Error::Repository("empty plan text".into()));
    }
    Ok(plan)
}

fn decode_op(name: &str, rest: &str) -> Result<PhysicalOp> {
    let bad = |msg: &str| Error::Repository(format!("{name}: {msg}"));
    Ok(match name {
        "load" => PhysicalOp::Load { path: unquote(rest)? },
        "store" => PhysicalOp::Store { path: unquote(rest)? },
        "project" => PhysicalOp::Project { cols: parse_usizes(rest)? },
        "group" => PhysicalOp::Group { keys: parse_usizes(rest)? },
        "join" => PhysicalOp::Join { keys: parse_key_lists(rest)? },
        "cogroup" => PhysicalOp::CoGroup { keys: parse_key_lists(rest)? },
        "filter" => {
            let (e, used) = parse_expr(rest)?;
            if !rest[used..].trim().is_empty() {
                return Err(bad("trailing data after predicate"));
            }
            PhysicalOp::Filter { pred: e }
        }
        "mapexpr" => {
            let mut exprs = Vec::new();
            let mut s = rest.trim();
            while !s.is_empty() {
                let (e, used) = parse_expr(s)?;
                exprs.push(e);
                s = s[used..].trim_start();
            }
            PhysicalOp::MapExpr { exprs }
        }
        "aggregate" => {
            let mut items = Vec::new();
            let mut s = rest.trim();
            while !s.is_empty() {
                let (item, used) = parse_agg_item(s)?;
                items.push(item);
                s = s[used..].trim_start();
            }
            PhysicalOp::Aggregate { items }
        }
        "flatten" => {
            PhysicalOp::Flatten { bag_col: rest.trim().parse().map_err(|_| bad("bad column"))? }
        }
        "distinct" => PhysicalOp::Distinct,
        "union" => PhysicalOp::Union,
        "split" => PhysicalOp::Split,
        "limit" => PhysicalOp::Limit { n: rest.trim().parse().map_err(|_| bad("bad count"))? },
        "orderby" => {
            let mut keys = Vec::new();
            for part in rest.split(',') {
                let part = part.trim();
                let (num, asc) = match part.as_bytes().last() {
                    Some(b'+') => (&part[..part.len() - 1], true),
                    Some(b'-') => (&part[..part.len() - 1], false),
                    _ => return Err(bad("orderby key needs +/- suffix")),
                };
                keys.push((num.parse().map_err(|_| bad("bad column"))?, asc));
            }
            PhysicalOp::OrderBy { keys }
        }
        other => return Err(Error::Repository(format!("unknown operator {other:?}"))),
    })
}

fn parse_usizes(s: &str) -> Result<Vec<usize>> {
    let s = s.trim();
    if s == "-" || s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|p| p.trim().parse().map_err(|_| Error::Repository(format!("bad column list {s:?}"))))
        .collect()
}

fn parse_key_lists(s: &str) -> Result<Vec<Vec<usize>>> {
    s.split(';').map(parse_usizes).collect()
}

fn parse_agg_item(s: &str) -> Result<(AggItem, usize)> {
    let (tokens, used) = read_sexpr(s)?;
    match tokens.as_slice() {
        [Tok::Atom(k), Tok::Atom(c)] if k == "k" => Ok((
            AggItem::Key(c.parse().map_err(|_| Error::Repository("bad key col".into()))?),
            used,
        )),
        [Tok::Atom(a), Tok::Atom(f), Tok::Atom(bag), Tok::Atom(field)] if a == "a" => {
            let func = match f.as_str() {
                "count" => AggFunc::Count,
                "sum" => AggFunc::Sum,
                "avg" => AggFunc::Avg,
                "min" => AggFunc::Min,
                "max" => AggFunc::Max,
                "countd" => AggFunc::CountDistinct,
                other => return Err(Error::Repository(format!("unknown aggregate {other:?}"))),
            };
            let bag_col = bag.parse().map_err(|_| Error::Repository("bad bag col".into()))?;
            let field = if field == "_" {
                None
            } else {
                Some(field.parse().map_err(|_| Error::Repository("bad field".into()))?)
            };
            Ok((AggItem::Agg { func, bag_col, field }, used))
        }
        _ => Err(Error::Repository(format!("bad aggregate item near {s:?}"))),
    }
}

/// Minimal s-expression tokens: atoms and nested groups.
#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Atom(String),
    Group(Vec<Tok>),
}

/// Read one parenthesized s-expression from the front of `s`, returning
/// its top-level tokens and the bytes consumed.
fn read_sexpr(s: &str) -> Result<(Vec<Tok>, usize)> {
    let bytes = s.as_bytes();
    if bytes.first() != Some(&b'(') {
        return Err(Error::Repository(format!("expected '(' near {s:?}")));
    }
    let mut i = 1;
    let mut out = Vec::new();
    loop {
        while i < bytes.len() && bytes[i] == b' ' {
            i += 1;
        }
        match bytes.get(i) {
            None => return Err(Error::Repository("unterminated s-expression".into())),
            Some(b')') => return Ok((out, i + 1)),
            Some(b'(') => {
                let (inner, used) = read_sexpr(&s[i..])?;
                out.push(Tok::Group(inner));
                i += used;
            }
            Some(b'"') => {
                let (string, used) = read_quoted(&s[i..])?;
                out.push(Tok::Atom(format!("\"{string}\"")));
                i += used;
            }
            Some(_) => {
                let start = i;
                while i < bytes.len() && bytes[i] != b' ' && bytes[i] != b')' {
                    i += 1;
                }
                out.push(Tok::Atom(s[start..i].to_string()));
            }
        }
    }
}

fn parse_expr(s: &str) -> Result<(Expr, usize)> {
    let (tokens, used) = read_sexpr(s.trim_start())?;
    let skipped = s.len() - s.trim_start().len();
    Ok((expr_from_tokens(&tokens)?, used + skipped))
}

fn expr_from_tokens(tokens: &[Tok]) -> Result<Expr> {
    let bad = || Error::Repository(format!("bad expression tokens {tokens:?}"));
    let sub = |t: &Tok| match t {
        Tok::Group(g) => expr_from_tokens(g),
        _ => Err(bad()),
    };
    match tokens {
        [Tok::Atom(c), Tok::Atom(n)] if c == "c" => Ok(Expr::Col(n.parse().map_err(|_| bad())?)),
        [Tok::Atom(l), Tok::Atom(n)] if l == "l" && n == "n" => Ok(Expr::Lit(Value::Null)),
        [Tok::Atom(l), Tok::Atom(t), Tok::Atom(v)] if l == "l" => match t.as_str() {
            "i" => Ok(Expr::Lit(Value::Int(v.parse().map_err(|_| bad())?))),
            "d" => Ok(Expr::Lit(Value::Double(v.parse().map_err(|_| bad())?))),
            "s" => Ok(Expr::Lit(Value::Str(unquote(v)?))),
            _ => Err(bad()),
        },
        [Tok::Atom(op), a] if op == "neg" => Ok(Expr::Neg(Box::new(sub(a)?))),
        [Tok::Atom(op), a] if op == "not" => Ok(Expr::Not(Box::new(sub(a)?))),
        [Tok::Atom(op), a] if op == "isnull" => Ok(Expr::IsNull(Box::new(sub(a)?), true)),
        [Tok::Atom(op), a] if op == "notnull" => Ok(Expr::IsNull(Box::new(sub(a)?), false)),
        [Tok::Atom(op), a, b] if op == "and" => Ok(Expr::And(Box::new(sub(a)?), Box::new(sub(b)?))),
        [Tok::Atom(op), a, b] if op == "or" => Ok(Expr::Or(Box::new(sub(a)?), Box::new(sub(b)?))),
        [Tok::Atom(op), a, b] => {
            let arith = match op.as_str() {
                "+" => Some(ArithOp::Add),
                "-" => Some(ArithOp::Sub),
                "*" => Some(ArithOp::Mul),
                "/" => Some(ArithOp::Div),
                "%" => Some(ArithOp::Mod),
                _ => None,
            };
            if let Some(aop) = arith {
                return Ok(Expr::Arith(Box::new(sub(a)?), aop, Box::new(sub(b)?)));
            }
            let cmp = match op.as_str() {
                "==" => CmpOp::Eq,
                "!=" => CmpOp::Neq,
                "<" => CmpOp::Lt,
                "<=" => CmpOp::Le,
                ">" => CmpOp::Gt,
                ">=" => CmpOp::Ge,
                _ => return Err(bad()),
            };
            Ok(Expr::Cmp(Box::new(sub(a)?), cmp, Box::new(sub(b)?)))
        }
        [Tok::Atom(f), name, args @ ..] if f == "f" => {
            let Tok::Atom(fname) = name else { return Err(bad()) };
            let func = match fname.as_str() {
                "round" => ScalarFunc::Round,
                "floor" => ScalarFunc::Floor,
                "ceil" => ScalarFunc::Ceil,
                "abs" => ScalarFunc::Abs,
                "upper" => ScalarFunc::Upper,
                "lower" => ScalarFunc::Lower,
                "strlen" => ScalarFunc::Strlen,
                "concat" => ScalarFunc::Concat,
                "substring" => ScalarFunc::Substring,
                "trim" => ScalarFunc::Trim,
                "startswith" => ScalarFunc::StartsWith,
                _ => return Err(bad()),
            };
            let parsed: Result<Vec<Expr>> = args.iter().map(sub).collect();
            Ok(Expr::Func(func, parsed?))
        }
        _ => Err(bad()),
    }
}

/// Read a Rust-debug-quoted string from the front of `s`, returning the
/// *raw escaped content* and bytes consumed (including quotes).
fn read_quoted(s: &str) -> Result<(String, usize)> {
    let bytes = s.as_bytes();
    debug_assert_eq!(bytes[0], b'"');
    let mut i = 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return Ok((s[1..i].to_string(), i + 1)),
            _ => i += 1,
        }
    }
    Err(Error::Repository("unterminated string".into()))
}

/// Undo Rust debug-format quoting.
fn unquote(s: &str) -> Result<String> {
    let s = s.trim();
    let inner = s
        .strip_prefix('"')
        .and_then(|x| x.strip_suffix('"'))
        .ok_or_else(|| Error::Repository(format!("expected quoted string, got {s:?}")))?;
    let mut out = String::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            Some('\'') => out.push('\''),
            Some('u') => {
                // \u{XXXX}
                let rest: String = chars.by_ref().take_while(|&c| c != '}').collect();
                let hex = rest.trim_start_matches('{');
                let code = u32::from_str_radix(hex, 16)
                    .map_err(|_| Error::Repository("bad unicode escape".into()))?;
                out.push(
                    char::from_u32(code)
                        .ok_or_else(|| Error::Repository("bad unicode escape".into()))?,
                );
            }
            other => return Err(Error::Repository(format!("bad escape \\{other:?}"))),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(plan: &PhysicalPlan) {
        let text = encode_plan(plan);
        let back = decode_plan(&text).unwrap();
        assert_eq!(
            plan.signature(),
            back.signature(),
            "round trip changed plan:\n{text}\n-- became --\n{}",
            encode_plan(&back)
        );
    }

    #[test]
    fn simple_plan_round_trips() {
        let mut p = PhysicalPlan::new();
        let l = p.add(PhysicalOp::Load { path: "/data in/pv".into() }, vec![]);
        let pr = p.add(PhysicalOp::Project { cols: vec![0, 2] }, vec![l]);
        let f = p.add(
            PhysicalOp::Filter {
                pred: Expr::And(
                    Box::new(Expr::col_eq(0, "x\ty")),
                    Box::new(Expr::Cmp(
                        Box::new(Expr::Col(1)),
                        CmpOp::Ge,
                        Box::new(Expr::Lit(Value::Double(1.5))),
                    )),
                ),
            },
            vec![pr],
        );
        p.add(PhysicalOp::Store { path: "/out".into() }, vec![f]);
        round_trip(&p);
    }

    #[test]
    fn all_operators_round_trip() {
        let mut p = PhysicalPlan::new();
        let l1 = p.add(PhysicalOp::Load { path: "/a".into() }, vec![]);
        let l2 = p.add(PhysicalOp::Load { path: "/b".into() }, vec![]);
        let m = p.add(
            PhysicalOp::MapExpr {
                exprs: vec![
                    Expr::Col(0),
                    Expr::Func(ScalarFunc::Concat, vec![Expr::Col(1), Expr::Lit(Value::str("!"))]),
                    Expr::Arith(
                        Box::new(Expr::Col(2)),
                        ArithOp::Mul,
                        Box::new(Expr::Lit(Value::Int(3))),
                    ),
                ],
            },
            vec![l1],
        );
        let u = p.add(PhysicalOp::Union, vec![m, l2]);
        let cg = p.add(PhysicalOp::CoGroup { keys: vec![vec![0, 1], vec![0, 2]] }, vec![u, l2]);
        let fl = p.add(PhysicalOp::Flatten { bag_col: 1 }, vec![cg]);
        let d = p.add(PhysicalOp::Distinct, vec![fl]);
        let g = p.add(PhysicalOp::Group { keys: vec![] }, vec![d]);
        let a = p.add(
            PhysicalOp::Aggregate {
                items: vec![
                    AggItem::Key(0),
                    AggItem::Agg { func: AggFunc::Sum, bag_col: 1, field: Some(2) },
                    AggItem::Agg { func: AggFunc::Count, bag_col: 1, field: None },
                ],
            },
            vec![g],
        );
        let o = p.add(PhysicalOp::OrderBy { keys: vec![(0, true), (1, false)] }, vec![a]);
        let li = p.add(PhysicalOp::Limit { n: 10 }, vec![o]);
        p.add(PhysicalOp::Store { path: "/out".into() }, vec![li]);
        round_trip(&p);
    }

    #[test]
    fn join_and_split_round_trip() {
        let mut p = PhysicalPlan::new();
        let l1 = p.add(PhysicalOp::Load { path: "/a".into() }, vec![]);
        let l2 = p.add(PhysicalOp::Load { path: "/b".into() }, vec![]);
        let s = p.add(PhysicalOp::Split, vec![l1]);
        let _side = p.add(PhysicalOp::Store { path: "/side".into() }, vec![s]);
        let j = p.add(PhysicalOp::Join { keys: vec![vec![0], vec![1]] }, vec![s, l2]);
        p.add(PhysicalOp::Store { path: "/out".into() }, vec![j]);
        round_trip(&p);
    }

    #[test]
    fn expr_special_values() {
        let mut p = PhysicalPlan::new();
        let l = p.add(PhysicalOp::Load { path: "/a".into() }, vec![]);
        let f = p.add(
            PhysicalOp::Filter {
                pred: Expr::Or(
                    Box::new(Expr::IsNull(Box::new(Expr::Col(0)), true)),
                    Box::new(Expr::Not(Box::new(Expr::Neg(Box::new(Expr::Col(1)))))),
                ),
            },
            vec![l],
        );
        p.add(PhysicalOp::Store { path: "/o".into() }, vec![f]);
        round_trip(&p);
    }

    #[test]
    fn malformed_input_is_rejected() {
        assert!(decode_plan("").is_err());
        assert!(decode_plan("0 frobnicate").is_err());
        assert!(decode_plan("5 load \"/x\"").is_err()); // non-dense id
        assert!(decode_plan("0 load /x").is_err()); // unquoted path
        assert!(decode_plan("0 filter (== (c 0)").is_err()); // unterminated
    }

    #[test]
    fn quoted_strings_with_escapes() {
        assert_eq!(unquote("\"a\\tb\\nc\"").unwrap(), "a\tb\nc");
        assert_eq!(unquote("\"q\\\"q\"").unwrap(), "q\"q");
        assert!(unquote("no quotes").is_err());
    }
}
