//! The ReStore driver — §6.2's extension of Pig's `JobControlCompiler`,
//! extended into a shared, concurrently-usable session object.
//!
//! A workflow executes in **dependency waves** (the same grouping Pig's
//! `JobControlCompiler` submits in, §6.1). Each wave goes through three
//! phases:
//!
//! 1. **prepare** (serialized, cheap): per job — rewrite Loads of outputs
//!    that earlier skipped jobs aliased away, lineage-expand the plan and
//!    repeatedly match/rewrite it against the repository (§3), skip the
//!    job entirely when rewriting reduced it to a pure copy, and inject
//!    sub-job Stores per the active heuristic (§4);
//! 2. **execute** (parallel): all surviving jobs of the wave run
//!    concurrently on the MapReduce engine via `std::thread::scope` —
//!    Equation (1) already models a workflow's makespan as its slowest
//!    dependency chain, and wave-parallel execution realizes it;
//! 3. **register** (serialized, in job-index order): outputs, plans, and
//!    statistics enter the repository and the provenance table (§2.2),
//!    and the §5 selection rules are applied.
//!
//! The repository and provenance table are published as **RCU
//! snapshots** (see [`crate::rcu`] and [`crate::repository`]), and every
//! public entry point takes `&self`, so **many threads can submit queries
//! against one warmed repository**. The match path is entirely
//! lock-free: each match attempt grabs the current repository snapshot
//! and provenance snapshot once (lock-free loads) and works against
//! them — candidate filtering, path resolution, and the scan budget all
//! come from the snapshot — while reuse accounting (`use_count` /
//! `last_used`) is carried by atomics shared across snapshots, so a
//! match never takes a repository lock, let alone a write lock. Entry
//! registration (batched per wave) and eviction sweeps serialize among
//! themselves and publish new snapshots without ever blocking readers.
//! Job execution itself holds no lock at all, so long-running jobs never
//! block matching in other sessions; outputs matched for reuse are
//! pinned (see [`crate::pin`]) so a concurrent sweep cannot delete them
//! mid-flight. Because a match can be made against a snapshot that a
//! concurrent sweep has already superseded, the match loop **pins, then
//! revalidates** the matched entry against a fresh snapshot before
//! using it (see [`ReStore`]'s match loop for the race argument).
//!
//! Reuse state is kept **per tenant**: each tenant submitted through the
//! `_as` entry points gets its own repository/provenance/pin namespace,
//! so reuse, candidate materialization, and eviction never cross
//! tenants. The tenant-less API uses the default namespace.

use crate::enumerator::{inject_subjob_stores, Candidate, Heuristic};
use crate::journal::{self, Journal, JournalConfig, JournalStats, Record, RecoveryReport};
use crate::obs::{Obs, ReuseDecision, ReuseTraceEvent, SpaceMetrics};
use crate::pin::PinSet;
use crate::provenance::Provenance;
use crate::rcu::Rcu;
use crate::repository::{MatchProbe, RepoBatch, RepoOp, RepoSnapshot, RepoStats, Repository};
use crate::rewriter::{apply_aliases, identity_copy, rewrite};
use crate::selector::SelectionPolicy;
use parking_lot::{Mutex, RwLock};
use restore_common::{Error, Result};
use restore_dataflow::exec::{job_io, job_spec_for_plan};
use restore_dataflow::mr_compiler::{CompiledWorkflow, WorkflowIoPaths};
use restore_dataflow::physical::PhysicalPlan;
use restore_dfs::Dfs;
use restore_mapreduce::{Engine, JobResult, JobSpec};
use restore_telemetry::Registry;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// ReStore configuration.
///
/// One instance is the session-wide default; each tenant namespace may
/// carry its own override (see [`ReStore::set_config_as`]), and every
/// execution path — the reuse heuristic, §5 selection, eviction sweeps,
/// candidate prefixes — reads the submitting tenant's effective policy.
#[derive(Debug, Clone, PartialEq)]
pub struct ReStoreConfig {
    /// Rewrite incoming jobs to reuse repository outputs (§3).
    pub reuse_enabled: bool,
    /// Sub-job materialization heuristic (§4).
    pub heuristic: Heuristic,
    /// Keep/evict policy (§5).
    pub selection: SelectionPolicy,
    /// DFS directory for materialized sub-job outputs.
    pub repo_prefix: String,
    /// Delete inter-job temporary files after the workflow finishes —
    /// "the current practice" ReStore abolishes. Enabled for plain-Pig
    /// baselines, disabled when ReStore manages outputs.
    pub delete_tmp: bool,
    /// Register the workflow's *final* outputs as whole-job repository
    /// entries. The paper's §7.1/§7.2 experiments reuse only intermediate
    /// job outputs and sub-jobs — rerunning a query re-executes its final
    /// job — so the experiment harness sets this to `false`. Leaving it
    /// `true` additionally answers repeated identical queries entirely
    /// from the repository.
    pub register_final_outputs: bool,
    /// Execute independent jobs of a wave concurrently. Disabling this
    /// reverts to strict one-job-at-a-time execution (the paper's
    /// Algorithm 1); results are byte-identical either way because jobs
    /// within a wave share no outputs.
    pub wave_parallel: bool,
    /// Number of repository shards per namespace (1 = the classic
    /// single-shard repository). Shards stripe entries by tip-signature
    /// hash, each with its own RCU writer section and journal lane, so
    /// concurrent waves registering into different shards never
    /// contend; matching, sweeps, and checkpoints produce results
    /// byte-identical to one shard. The count takes effect when a
    /// namespace is **created** (or restored via `load_state`): the
    /// default namespace is sharded at [`ReStore::new`], tenant
    /// namespaces at first use, and changing this on a live session
    /// only affects namespaces created afterwards. 0 normalizes to 1;
    /// counts above [`crate::repository::MAX_REPO_SHARDS`] are a typed
    /// config error at decode time.
    pub repo_shards: usize,
    /// What the serving layer does when a submission's execution fails:
    /// retries with backoff, dead-lettering, and the per-tenant circuit
    /// breaker (see [`crate::failure`]). The driver itself only
    /// carries and persists the policy; enforcement lives in
    /// `restore-service`. The default (fail-fast, breaker off) is the
    /// exact behavior of earlier releases.
    pub failure: crate::failure::FailurePolicy,
    /// Canonicalize every compiled plan through the analyzer pass
    /// pipeline (`restore_dataflow::analyzer`) before matching, so
    /// semantically-equal paraphrases — reordered conjunctions,
    /// literal-first comparisons, swapped commutative operands,
    /// repeated subqueries — hit the same repository entries. Default
    /// on; turning it off takes the exact pre-analyzer compile path,
    /// byte-identical to earlier releases.
    pub canonicalize: bool,
}

impl Default for ReStoreConfig {
    fn default() -> Self {
        ReStoreConfig {
            reuse_enabled: true,
            heuristic: Heuristic::Aggressive,
            selection: SelectionPolicy::default(),
            repo_prefix: "/restore".to_string(),
            delete_tmp: false,
            register_final_outputs: true,
            wave_parallel: true,
            repo_shards: 1,
            failure: crate::failure::FailurePolicy::default(),
            canonicalize: true,
        }
    }
}

impl ReStoreConfig {
    /// Plain Pig-on-Hadoop baseline: no reuse, no sub-jobs, no plan
    /// canonicalization, temporary files deleted after the workflow.
    pub fn baseline() -> Self {
        ReStoreConfig {
            reuse_enabled: false,
            heuristic: Heuristic::None,
            delete_tmp: true,
            canonicalize: false,
            ..Default::default()
        }
    }
}

/// Record of one applied rewrite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RewriteEvent {
    /// Workflow job index that was rewritten.
    pub job: usize,
    /// Repository entry whose output was reused.
    pub entry_id: u64,
    /// Stored output path spliced into the plan.
    pub reused_path: String,
    /// The rewrite eliminated the entire job.
    pub whole_job: bool,
}

/// Result of executing one workflow through ReStore.
#[derive(Debug, Clone)]
pub struct QueryExecution {
    /// Modeled completion time per Equation (1), seconds.
    pub total_s: f64,
    /// Per-executed-job results (skipped jobs have no entry), in
    /// wave-then-job-index order — a topological order of the workflow.
    pub job_results: Vec<JobResult>,
    /// Jobs eliminated by whole-job reuse.
    pub jobs_skipped: usize,
    /// Applied rewrites, in application order.
    pub rewrites: Vec<RewriteEvent>,
    /// Bytes written by injected sub-job Stores during this execution.
    pub stored_candidate_bytes: u64,
    /// Resolved path of the workflow's final output (after aliasing).
    pub final_output: String,
    /// Candidate sub-jobs registered in the repository.
    pub candidates_stored: usize,
    /// The driver tick this execution ran under — the key into the
    /// reuse-decision trace (see [`ReStore::trace_for`]).
    pub tick: u64,
}

/// Summary of the repository and reuse activity (see [`ReStore::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReStoreStats {
    pub repository_entries: usize,
    /// Logical bytes of stored outputs across all entries.
    pub stored_bytes: u64,
    /// Total rewrites served by repository entries.
    pub total_uses: u64,
    /// Entries that have never been reused.
    pub never_used: usize,
    /// Queries executed through this driver.
    pub queries_executed: u64,
    pub provenance_entries: usize,
}

/// The ReStore system: a shared session object. All entry points take
/// `&self`, so one instance can serve query submissions from many
/// threads concurrently (wrap it in an `Arc` or use scoped threads).
///
/// ```
/// use restore_core::{ReStore, ReStoreConfig};
/// use restore_dfs::{Dfs, DfsConfig};
/// use restore_mapreduce::{ClusterConfig, Engine, EngineConfig};
///
/// let dfs = Dfs::new(DfsConfig { nodes: 3, block_size: 256, replication: 2, node_capacity: None });
/// dfs.write_all("/data/e", b"alice\t4\nbob\t7\nalice\t1\n").unwrap();
/// let engine = Engine::new(dfs, ClusterConfig::default(), EngineConfig::default());
/// let restore = ReStore::new(engine, ReStoreConfig::default());
///
/// let q = "A = load '/data/e' as (user, n:int);
///          G = group A by user;
///          R = foreach G generate group, SUM(A.n);
///          store R into '/out/sums';";
/// let first = restore.execute_query(q, "/wf/1").unwrap();
/// let rerun = restore.execute_query(q, "/wf/2").unwrap();
/// // The rerun is answered from the repository: no job executes.
/// assert_eq!(rerun.jobs_skipped, 1);
/// assert!(rerun.total_s < first.total_s);
/// ```
pub struct ReStore {
    engine: Engine,
    /// The default namespace: repository, provenance, and pins used by
    /// tenant-less submissions (and by the legacy single-tenant API).
    space: Arc<Space>,
    /// Per-tenant namespaces, created lazily on first use. A tenant's
    /// matching, registration, and eviction sweeps only ever touch its
    /// own space, so tenants cannot observe (or delete) each other's
    /// outputs. RCU-published like the tables themselves: lookups are
    /// lock-free, creation (rare) publishes a new map.
    tenants: Rcu<HashMap<String, Arc<Space>>>,
    config: RwLock<ReStoreConfig>,
    /// Query counter = the logical clock for usage statistics. Shared by
    /// all tenants (one clock, many namespaces).
    tick: AtomicU64,
    cand_counter: AtomicU64,
    /// The snapshot journal behind incremental checkpoints (see
    /// [`crate::journal`]); disabled until [`ReStore::enable_journal`].
    journal: Arc<Journal>,
    /// Session observability: the metric registry, per-stage span
    /// histograms, and the reuse-decision trace ring (see [`crate::obs`]).
    obs: Obs,
    /// Tenant keys (`""` = the default namespace) whose circuit breaker
    /// was open at the last [`ReStore::note_breaker_state`] transition.
    /// Journaled as `breaker-state` records, so a promoted warm standby
    /// seeds its scheduler with the primary's open breakers instead of
    /// admitting a thundering herd at a tenant that was shedding.
    open_breakers: Mutex<std::collections::BTreeSet<String>>,
}

/// One isolated repository namespace: the §2.2 repository, its
/// provenance table, the pin set protecting its in-flight matches, and
/// the tenant's policy override (`None` = follow the global default).
///
/// Both tables are RCU-published: readers load snapshots lock-free,
/// mutators serialize internally. When a mutation spans both tables
/// (wave registration, overwrite invalidation, restore), the writer
/// sides are entered **provenance first, repository second** —
/// one fixed order, so cross-table writers can never deadlock.
#[derive(Debug, Default)]
pub(crate) struct Space {
    pub(crate) repo: Repository,
    pub(crate) prov: Rcu<Provenance>,
    pub(crate) pins: PinSet,
    /// The tenant's policy override, RCU-published so the per-query
    /// read on the execution path is lock-free like every other shared
    /// map in the session.
    pub(crate) config: Rcu<Option<ReStoreConfig>>,
    /// Per-namespace match metrics (hits/misses/latency/shard wins).
    /// Registered against the session registry for namespaces the
    /// driver creates; the detached placeholder `space_snapshot` hands
    /// out for unknown tenants records into the void.
    pub(crate) metrics: SpaceMetrics,
    /// The namespace's dead-letter queue, always held in id order.
    /// Mutations journal inside this lock so record order equals
    /// application order (the same discipline repository batches use).
    pub(crate) dlq: Mutex<Vec<crate::dlq::DlqEntry>>,
}

impl Space {
    /// A fresh namespace with its repository striped into `shards`
    /// (normalized — 0 behaves like 1, absurd counts are capped) and
    /// its match metrics registered under `tenant` in the session
    /// registry.
    fn with_shards_registered(shards: usize, registry: &Registry, tenant: &str) -> Self {
        let repo = Repository::with_shards(shards);
        let metrics = SpaceMetrics::registered(registry, tenant, repo.shard_count());
        Space { repo, metrics, ..Default::default() }
    }
}

/// Pins taken by one in-flight workflow. Dropping the guard releases
/// them and performs any file deletions a sweep deferred in the
/// meantime.
struct PinGuard {
    space: Arc<Space>,
    dfs: Dfs,
    paths: Vec<String>,
}

impl PinGuard {
    fn new(space: Arc<Space>, dfs: Dfs) -> Self {
        PinGuard { space, dfs, paths: Vec::new() }
    }

    fn pin(&mut self, path: &str) {
        self.space.pins.pin(path);
        self.paths.push(path.to_string());
    }

    /// Exempt a path from deferred deletion: it is being handed to the
    /// caller as the workflow's `final_output`. Preservation lives in
    /// the shared [`PinSet`], so it binds every in-flight guard of the
    /// path, not just this one.
    fn preserve(&mut self, path: &str) {
        self.space.pins.preserve(path);
    }

    /// Release the most recently taken pin (a speculative match that made
    /// no structural progress).
    fn unpin_last(&mut self) {
        if let Some(p) = self.paths.pop() {
            let dfs = &self.dfs;
            self.space.pins.unpin(&p, || {
                dfs.delete(&p);
            });
        }
    }
}

impl Drop for PinGuard {
    fn drop(&mut self) {
        for p in &self.paths {
            let dfs = &self.dfs;
            self.space.pins.unpin(p, || {
                dfs.delete(p);
            });
        }
    }
}

/// Do the DFS footprints of two workflows interfere? True when either
/// writes a path the other reads or writes. The cross-workflow scheduler
/// of `restore-service` only overlaps workflows for which this probe
/// returns `false`; such workflows cannot observe each other's files, so
/// any interleaving of their jobs produces the same bytes as running
/// them back to back.
pub fn footprints_conflict(a: &WorkflowIoPaths, b: &WorkflowIoPaths) -> bool {
    !a.disjoint(b)
}

/// A wave job that survived matching and is ready to execute.
struct PreparedJob {
    idx: usize,
    plan: PhysicalPlan,
    candidates: Vec<Candidate>,
    spec: JobSpec,
}

/// Outcome of preparing one job of a wave.
enum Prepared {
    /// Rewriting reduced the job to a pure copy; its output is aliased.
    Skipped {
        dst: String,
    },
    Run(Box<PreparedJob>),
}

impl ReStore {
    pub fn new(engine: Engine, config: ReStoreConfig) -> Self {
        let obs = Obs::new();
        ReStore {
            engine,
            space: Arc::new(Space::with_shards_registered(config.repo_shards, &obs.registry, "")),
            tenants: Rcu::new(HashMap::new()),
            config: RwLock::new(config),
            tick: AtomicU64::new(0),
            cand_counter: AtomicU64::new(0),
            journal: Arc::new(Journal::default()),
            obs,
            open_breakers: Mutex::new(std::collections::BTreeSet::new()),
        }
    }

    /// The session's metric registry — everything the driver and its
    /// namespaces record lands here; [`Registry::render`] emits it in
    /// Prometheus text exposition format.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.obs.registry
    }

    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Turn on the snapshot journal: from here on, every structural
    /// mutation (wave registrations, evictions, provenance changes,
    /// tenant/config changes) is recorded, reuse counters are
    /// dirty-tracked, and [`ReStore::save_state_delta`] captures cheap
    /// deltas. Take a base checkpoint ([`ReStore::save_state`]) *after*
    /// enabling — mutations from before the journal was on are only in
    /// the base, never in a delta.
    pub fn enable_journal(&self, config: JournalConfig) {
        self.journal.enable(config);
        Self::wire_space(&self.journal, "", &self.space);
        // Wire existing tenants inside the tenant map's writer section:
        // tenant creation serializes on the same writer, so a namespace
        // racing this enable either is in the map when the closure runs
        // (wired here) or is created by a later-serialized `space_for`
        // whose `make_space` reads `enabled() == true` (wired there).
        // Wiring from a plain `load()` would let a concurrently created
        // space slip through both checks and journal nothing, silently.
        self.tenants.update(|m| {
            for (name, space) in m.iter() {
                Self::wire_space(&self.journal, name, space);
            }
        });
    }

    /// Is the snapshot journal recording?
    pub fn journal_enabled(&self) -> bool {
        self.journal.enabled()
    }

    /// Journal introspection (sequence number, buffered bytes).
    pub fn journal_stats(&self) -> JournalStats {
        self.journal.stats()
    }

    /// Buffered bytes per journal lane (stats only — briefly locks each
    /// lane in turn, never on the append path).
    pub fn journal_lane_bytes(&self) -> Vec<usize> {
        self.journal.lane_bytes()
    }

    /// Journal records appended since the last delta capture — what a
    /// crash right now would have to replay from the live lanes.
    pub fn journal_seq_lag(&self) -> u64 {
        self.journal.seq_lag()
    }

    /// Install the journal sink on a namespace's repository so its
    /// batches emit `repo-batch` records at publish time. The sink
    /// carries the emitting shard index, which picks the journal lane —
    /// sinks of different shards append in parallel.
    fn wire_space(journal: &Arc<Journal>, name: &str, space: &Space) {
        let j = journal.clone();
        let n = name.to_string();
        space.repo.set_journal_sink(Some(Arc::new(move |shard: usize, ops: &[RepoOp]| {
            j.append_repo_batch(&n, shard, ops)
        })));
    }

    /// A fresh namespace with `shards` repository shards, journal-wired
    /// when the journal is on.
    fn make_space(&self, name: &str, shards: usize) -> Arc<Space> {
        let space = Arc::new(Space::with_shards_registered(shards, &self.obs.registry, name));
        if self.journal.enabled() {
            Self::wire_space(&self.journal, name, &space);
        }
        space
    }

    /// An empty tenant name means the default namespace — the same
    /// normalization the service applies at admission, so the two layers
    /// always agree on which namespace (and which policy) serves a
    /// submission.
    fn normalize(tenant: Option<&str>) -> Option<&str> {
        tenant.filter(|t| !t.is_empty())
    }

    /// The namespace serving `tenant` (`None` = the default namespace),
    /// created on first use. Only execution paths call this; read-only
    /// introspection uses [`ReStore::space_snapshot`] so probing an
    /// unknown tenant never leaks an empty namespace into the map.
    fn space_for(&self, tenant: Option<&str>) -> Arc<Space> {
        let Some(t) = Self::normalize(tenant) else {
            return self.space.clone();
        };
        // Lock-free fast path: the tenant already has a namespace.
        if let Some(s) = self.tenants.load().get(t) {
            return s.clone();
        }
        let mut created = false;
        // A namespace created on first use is sharded per the global
        // config current at creation (a tenant override cannot exist
        // before its namespace does).
        let shards = self.config.read().repo_shards;
        let space = self.tenants.update(|m| {
            m.entry(t.to_string())
                .or_insert_with(|| {
                    created = true;
                    self.make_space(t, shards)
                })
                .clone()
        });
        if created {
            // Belt and braces for replay: records touching the space
            // auto-create it, but a tenant whose only state is a config
            // override needs the creation on record. Ordering with a
            // racing first mutation of the space is harmless — replay's
            // auto-creation makes the record idempotent.
            self.journal.append_tenant_create(t);
        }
        space
    }

    /// The tenant's namespace for read-only access: an unknown tenant
    /// gets a detached empty space (reported as zero entries) instead of
    /// being created.
    fn space_snapshot(&self, tenant: Option<&str>) -> Arc<Space> {
        let Some(t) = Self::normalize(tenant) else {
            return self.space.clone();
        };
        self.tenants.load().get(t).cloned().unwrap_or_default()
    }

    /// Could a rewritten job in *any* namespace be served from `path`?
    /// True when some namespace's provenance records a producing plan
    /// for it. The service's cross-workflow scheduler refuses to overlap
    /// a workflow that writes such a path with any other submission:
    /// reuse rewriting can introduce Loads of registered paths that the
    /// submit-time footprint cannot see.
    pub fn serves_path(&self, path: &str) -> bool {
        // Wait-free provenance snapshots: the scheduler probes this per
        // queued workflow, so it must never sit behind a registration.
        if self.space.prov.load().contains(path) {
            return true;
        }
        self.tenants.load().values().any(|s| s.prov.load().contains(path))
    }

    /// Every namespace with its name: the default space (`""`) plus all
    /// tenant spaces.
    fn all_spaces(&self) -> Vec<(String, Arc<Space>)> {
        let mut spaces = vec![(String::new(), self.space.clone())];
        spaces.extend(self.tenants.load().iter().map(|(k, v)| (k.clone(), v.clone())));
        spaces
    }

    /// A wave just (over)wrote these DFS paths. Any repository entry —
    /// in *any* namespace — recorded as producing one of them now points
    /// at foreign bytes: serving it would return the overwriting
    /// workflow's data (a wrong answer, and across namespaces a
    /// cross-tenant leak). Evict such entries and drop their provenance
    /// records; the files themselves are left alone — they hold the new
    /// workflow's live output.
    fn invalidate_overwritten(&self, written: &[String]) {
        for (name, space) in self.all_spaces() {
            // Cheap lock-free probe first: fresh output paths are almost
            // never registered anywhere.
            let hit = {
                let prov = space.prov.load();
                written.iter().any(|p| prov.contains(p))
            } || {
                let repo = space.repo.view();
                repo.entries().iter().any(|e| written.contains(&e.output_path))
            };
            if !hit {
                continue;
            }
            // Writer order: provenance before repository (see [`Space`]).
            // The repository evictions journal themselves through the
            // batch sink; the provenance forgets are journaled here, in
            // the writer section, once the update has published.
            space.prov.update_then(
                |prov| {
                    let mut forgets = Vec::new();
                    space.repo.batch(|repo| {
                        for p in written {
                            let stale: Vec<u64> = repo
                                .pending_entries()
                                .filter(|e| &e.output_path == p)
                                .map(|e| e.id)
                                .collect();
                            for id in stale {
                                repo.evict(id);
                            }
                            if prov.contains(p) {
                                prov.forget(p);
                                forgets.push(p.clone());
                            }
                        }
                    });
                    forgets
                },
                |forgets| self.journal.append_prov_batch(&name, &[], &forgets),
            );
        }
    }

    /// Tenants that have a namespace (sorted; the default namespace is
    /// not listed).
    pub fn tenant_ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self.tenants.load().keys().cloned().collect();
        ids.sort();
        ids
    }

    /// The current snapshot of the default-namespace repository:
    /// lock-free, immutable, safe to hold — later registrations and
    /// evictions publish new snapshots and never mutate this one.
    pub fn repository(&self) -> Arc<RepoSnapshot> {
        self.space.repo.snapshot()
    }

    /// Run `f` against a tenant's repository (`None` = the default
    /// namespace). The handle's read methods are lock-free.
    pub fn with_repository_as<R>(
        &self,
        tenant: Option<&str>,
        f: impl FnOnce(&Repository) -> R,
    ) -> R {
        let space = self.space_snapshot(tenant);
        f(&space.repo)
    }

    /// Run `f` against a tenant's repository with mutation intent.
    /// Since the repository is interior-concurrent, the handle has the
    /// same capabilities as [`ReStore::with_repository_as`]; the one
    /// behavioral difference is that this variant **creates the
    /// namespace if absent** (`None` = the default namespace), where
    /// the read variant hands an unknown tenant a detached empty space.
    /// Mutations made through the handle serialize with registration
    /// and sweeps but never block matching.
    pub fn with_repository_mut_as<R>(
        &self,
        tenant: Option<&str>,
        f: impl FnOnce(&Repository) -> R,
    ) -> R {
        let space = self.space_for(tenant);
        f(&space.repo)
    }

    /// Run `f` with a snapshot of a tenant's provenance table (`None` =
    /// the default namespace).
    pub fn with_provenance_as<R>(
        &self,
        tenant: Option<&str>,
        f: impl FnOnce(&Provenance) -> R,
    ) -> R {
        let space = self.space_snapshot(tenant);
        let prov = space.prov.load();
        f(&prov)
    }

    /// Run `f` with mutable access to a copy of a tenant's provenance
    /// table, publishing the result (`None` = the default namespace;
    /// the namespace is created if absent). An arbitrary mutation has
    /// no op-level record, so with the journal on the whole resulting
    /// table is journaled as one `prov-replace` record.
    pub fn with_provenance_mut_as<R>(
        &self,
        tenant: Option<&str>,
        f: impl FnOnce(&mut Provenance) -> R,
    ) -> R {
        let space = self.space_for(tenant);
        let name = Self::normalize(tenant).unwrap_or("").to_string();
        space.prov.update_then(
            |prov| {
                let r = f(prov);
                // Sample the journal *inside* the writer section: a
                // `checkpoint_begin` racing this call either captured
                // its base before we entered (then `active()` is
                // already true here and the mutation is journaled) or
                // its base capture freezes behind this writer section
                // and includes the mutation. Sampling before the
                // section could read `false`, then lose the mutation
                // to a base captured in the gap.
                let table = if self.journal.active() { Some(prov.save()) } else { None };
                (r, table)
            },
            |(r, table)| {
                if let Some(t) = table {
                    self.journal.append_prov_replace(&name, &t);
                }
                r
            },
        )
    }

    /// Snapshot of the global (default) configuration.
    pub fn config(&self) -> ReStoreConfig {
        self.config.read().clone()
    }

    /// Change the global configuration between queries (experiments flip
    /// reuse and heuristics while keeping the warmed repository).
    /// Queries already in flight keep the configuration they started
    /// with; tenants with an override (see [`ReStore::set_config_as`])
    /// are unaffected.
    pub fn set_config(&self, config: ReStoreConfig) {
        let mut guard = self.config.write();
        // Journal while still holding the write guard, so record order
        // matches application order under racing setters.
        self.journal.append_global_config(&config);
        *guard = config;
    }

    /// The effective configuration for `tenant`: its override when one
    /// is set, the global default otherwise (`None` or an empty name =
    /// the default namespace, which always follows the global config).
    pub fn config_as(&self, tenant: Option<&str>) -> ReStoreConfig {
        match Self::normalize(tenant) {
            None => self.config(),
            Some(_) => {
                let space = self.space_snapshot(tenant);
                let override_cfg = (*space.config.load()).clone();
                override_cfg.unwrap_or_else(|| self.config())
            }
        }
    }

    /// Set a tenant's policy override: that tenant's queries now run
    /// with `config` — heuristic, §5 selection, eviction sweeps, quotas
    /// — independent of the global default. With `tenant = None` (or an
    /// empty name) this sets the global configuration itself. Queries
    /// already in flight keep the configuration they started with.
    pub fn set_config_as(&self, tenant: Option<&str>, config: ReStoreConfig) {
        match Self::normalize(tenant) {
            None => self.set_config(config),
            Some(t) => {
                let space = self.space_for(tenant);
                space.config.update_then(
                    |c| *c = Some(config.clone()),
                    |_| self.journal.append_tenant_config(t, Some(&config)),
                );
            }
        }
    }

    /// Drop a tenant's policy override; its queries follow the global
    /// default again. A no-op for unknown tenants and for the default
    /// namespace.
    pub fn clear_config_as(&self, tenant: &str) {
        if let Some(space) = self.tenants.load().get(tenant) {
            space
                .config
                .update_then(|c| *c = None, |_| self.journal.append_tenant_config(tenant, None));
        }
    }

    /// Record a circuit-breaker transition for a tenant (`None` / `""`
    /// = the default namespace): `open = true` when the breaker starts
    /// shedding, `false` when it closes again. Deduplicated and
    /// journaled inside the set's lock — record order equals
    /// application order — so a warm standby replaying the journal
    /// converges on the primary's open set and seeds it into its own
    /// scheduler at promotion (see `RestoreService`).
    pub fn note_breaker_state(&self, tenant: Option<&str>, open: bool) {
        let key = Self::normalize(tenant).unwrap_or("");
        let mut set = self.open_breakers.lock();
        let changed = if open { set.insert(key.to_string()) } else { set.remove(key) };
        if changed {
            self.journal.append_breaker_state(key, open);
        }
    }

    /// Tenant keys (`""` = the default namespace) whose breaker was
    /// open at the last noted transition, sorted.
    pub fn open_breaker_keys(&self) -> Vec<String> {
        self.open_breakers.lock().iter().cloned().collect()
    }

    /// Park a failed submission in the tenant's dead-letter queue and
    /// return the durable entry. The entry id is namespace-monotonic
    /// (max + 1, so the queue is always in id order) and the put is
    /// journaled inside the queue's lock — record order equals
    /// application order, and the entry survives crash-recovery,
    /// checkpoint compaction, and shipment to standbys.
    pub fn dlq_put_as(
        &self,
        tenant: Option<&str>,
        wf: CompiledWorkflow,
        error: &str,
        attempts: u32,
    ) -> crate::dlq::DlqEntry {
        let name = Self::normalize(tenant).unwrap_or("");
        let space = self.space_for(tenant);
        // Effective policy read before taking the queue lock (the
        // config load is lock-free; no lock-order edge is created).
        let policy = (*space.config.load()).clone().unwrap_or_else(|| self.config()).failure;
        let mut q = space.dlq.lock();
        let entry = crate::dlq::DlqEntry {
            id: q.last().map_or(1, |e| e.id + 1),
            attempts,
            tick: self.tick.load(Ordering::SeqCst),
            error: error.to_string(),
            wf,
        };
        q.push(entry.clone());
        self.journal.append_dlq_put(name, &entry);
        // Enforce the tenant's bounds while still holding the queue
        // lock: age-expire first, then evict oldest past the size cap.
        // Evictions are journaled as an ack *after* the put record, so
        // replay converges on exactly this queue.
        let mut evicted: Vec<u64> = Vec::new();
        if policy.dlq_max_age_ticks > 0 {
            let now = entry.tick;
            q.retain(|e| {
                if now.saturating_sub(e.tick) > policy.dlq_max_age_ticks {
                    evicted.push(e.id);
                    false
                } else {
                    true
                }
            });
        }
        if policy.dlq_max_entries > 0 {
            while q.len() > policy.dlq_max_entries {
                evicted.push(q.remove(0).id);
            }
        }
        self.journal.append_dlq_ack(name, &evicted);
        entry
    }

    /// The tenant's dead-letter queue, in id (= arrival) order. An
    /// unknown tenant has an empty queue.
    pub fn dlq_entries_as(&self, tenant: Option<&str>) -> Vec<crate::dlq::DlqEntry> {
        self.space_snapshot(tenant).dlq.lock().clone()
    }

    /// Remove entries by id from the tenant's dead-letter queue and
    /// return the removed entries (unknown ids are skipped). The ack is
    /// journaled — with exactly the ids actually removed — inside the
    /// queue's lock, so replay never un-parks an entry twice.
    pub fn dlq_ack_as(&self, tenant: Option<&str>, ids: &[u64]) -> Vec<crate::dlq::DlqEntry> {
        let name = Self::normalize(tenant).unwrap_or("");
        let space = self.space_snapshot(tenant);
        let mut q = space.dlq.lock();
        let mut removed = Vec::new();
        q.retain(|e| {
            if ids.contains(&e.id) {
                removed.push(e.clone());
                false
            } else {
                true
            }
        });
        if !removed.is_empty() {
            let removed_ids: Vec<u64> = removed.iter().map(|e| e.id).collect();
            self.journal.append_dlq_ack(name, &removed_ids);
        }
        removed
    }

    /// Depth of the tenant's dead-letter queue.
    pub fn dlq_depth_as(&self, tenant: Option<&str>) -> usize {
        self.space_snapshot(tenant).dlq.lock().len()
    }

    /// Dead-letter depth of **every** namespace (the default namespace
    /// is named `""`), sorted by name — the telemetry scrape's view, so
    /// `restore_dlq_depth` always reports every live namespace, zeros
    /// included.
    pub fn dlq_depths(&self) -> Vec<(String, usize)> {
        let mut depths: Vec<(String, usize)> =
            self.all_spaces().iter().map(|(n, s)| (n.clone(), s.dlq.lock().len())).collect();
        depths.sort_by(|a, b| a.0.cmp(&b.0));
        depths
    }

    /// Compile and execute a query text in the default namespace.
    pub fn execute_query(&self, text: &str, out_prefix: &str) -> Result<QueryExecution> {
        self.execute_query_as(None, text, out_prefix)
    }

    /// Compile and execute a query text in a tenant's namespace. Matching
    /// only sees the tenant's own entries, candidate outputs materialize
    /// under `{repo_prefix}/{tenant}/`, and eviction sweeps stay inside
    /// the tenant's space.
    pub fn execute_query_as(
        &self,
        tenant: Option<&str>,
        text: &str,
        out_prefix: &str,
    ) -> Result<QueryExecution> {
        let wf = self.compile_as(tenant, text, out_prefix)?;
        self.execute_workflow_as(tenant, wf)
    }

    /// Compile query text under the tenant's **effective configuration**.
    /// With [`ReStoreConfig::canonicalize`] on (the default) the
    /// analyzer rewrites the lowered plan to canonical form before job
    /// segmentation — semantically-equal paraphrases compile to the
    /// same plans and signatures, so they hit the same repository
    /// entries — and each pass's wall time lands in the
    /// `restore_canon_stage_seconds` histogram family. With it off, the
    /// compile path is byte-identical to earlier releases.
    pub fn compile_as(
        &self,
        tenant: Option<&str>,
        text: &str,
        out_prefix: &str,
    ) -> Result<CompiledWorkflow> {
        let config = self.config_as(tenant);
        self.obs.stage.compile.time(|| {
            if config.canonicalize {
                let (wf, timings) = restore_dataflow::compile_canonical(text, out_prefix)?;
                self.obs.record_canon(&timings);
                Ok(wf)
            } else {
                restore_dataflow::compile(text, out_prefix)
            }
        })
    }

    /// Execute a compiled workflow of MapReduce jobs through ReStore, in
    /// the default namespace.
    pub fn execute_workflow(&self, wf: CompiledWorkflow) -> Result<QueryExecution> {
        self.execute_workflow_as(None, wf)
    }

    /// Execute a compiled workflow in a tenant's namespace (see
    /// [`ReStore::execute_query_as`]).
    pub fn execute_workflow_as(
        &self,
        tenant: Option<&str>,
        wf: CompiledWorkflow,
    ) -> Result<QueryExecution> {
        let tick = self.tick.fetch_add(1, Ordering::SeqCst) + 1;
        let space = self.space_for(tenant);
        let space_name = Self::normalize(tenant).unwrap_or("");
        // The submitting tenant's policy governs this execution end to
        // end: reuse, heuristic, §5 selection, sweeps, and candidate
        // placement all read this snapshot.
        let config = (*space.config.load()).clone().unwrap_or_else(|| self.config());
        // Pins taken at match time live until the whole workflow (whose
        // later waves may Load the matched outputs) has executed.
        let mut pins = PinGuard::new(space.clone(), self.engine.dfs().clone());

        // Eviction sweep (§5 rules 3–4) runs *before* matching so stale
        // entries (expired window, modified/deleted inputs) are never
        // reused in this workflow.
        let sweep_t0 = Instant::now();
        config.selection.sweep(&space.repo, self.engine.dfs(), &space.pins, tick);
        {
            // Wait-free probe; only publish a new provenance snapshot
            // when something actually died.
            let dfs = self.engine.dfs();
            let dead: Vec<String> = {
                let prov = space.prov.load();
                prov.iter_paths().filter(|p| !dfs.exists(p)).map(|p| p.to_string()).collect()
            };
            if !dead.is_empty() {
                space.prov.update_then(
                    |prov| {
                        for p in &dead {
                            prov.forget(p);
                        }
                    },
                    |()| self.journal.append_prov_batch(space_name, &[], &dead),
                );
            }
        }
        self.obs.stage.sweep.record_elapsed(sweep_t0);

        let n = wf.jobs.len();
        let waves = wf.waves()?;

        let mut aliases: HashMap<String, String> = HashMap::new();
        let mut et = vec![0.0f64; n];
        let mut job_results = Vec::new();
        let mut rewrites = Vec::new();
        let mut jobs_skipped = 0;
        let mut stored_candidate_bytes = 0u64;
        let mut candidates_stored = 0usize;
        let mut final_output = String::new();

        for wave in waves {
            // ---- Phase 1: prepare (match, rewrite, skip, instrument) ----
            // Jobs within a wave are independent — a skipped job's alias
            // can only affect consumers, which sit in later waves — so
            // preparing them in index order keeps rewrite bookkeeping
            // deterministic without constraining execution.
            let mut prepared: Vec<PreparedJob> = Vec::new();
            // Outputs produced this wave, keyed by job index: the
            // highest-index job defines `final_output`, exactly as the
            // strict Algorithm-1 topo order (which ends each wave on its
            // highest index) would have left it.
            let mut wave_outputs: Vec<(usize, String)> = Vec::new();
            let prepare_t0 = Instant::now();
            for &idx in &wave {
                let prep = self.prepare_job(
                    &space,
                    tenant,
                    &wf,
                    idx,
                    tick,
                    &config,
                    &mut aliases,
                    &mut rewrites,
                    &mut pins,
                )?;
                match prep {
                    Prepared::Skipped { dst } => {
                        jobs_skipped += 1;
                        et[idx] = 0.0;
                        wave_outputs.push((idx, resolve_alias(&aliases, &dst)));
                    }
                    Prepared::Run(job) => prepared.push(*job),
                }
            }
            self.obs.stage.prepare.record_elapsed(prepare_t0);

            // ---- Phase 2: execute the wave, concurrently ----
            let execute_t0 = Instant::now();
            let results = self.run_wave(&prepared, config.wave_parallel)?;
            self.obs.stage.execute.record_elapsed(execute_t0);

            // ---- Phase 3: register outputs (§2.2) and apply §5 rules ----
            let register_t0 = Instant::now();
            let mut wave_written: Vec<String> = Vec::new();
            for (job, result) in prepared.iter().zip(&results) {
                et[job.idx] = result.times.total_s;
                wave_outputs.push((job.idx, result.output.clone()));
                wave_written.push(result.output.clone());
                wave_written.extend(result.side_outputs.iter().cloned());
                // A later wave of this workflow Loads this inter-job
                // temporary. Registration (below) makes it evictable, so
                // pin it first — otherwise a concurrent session's strict
                // sweep could delete it before its consumer executes.
                if wf.tmp_paths.contains(&result.output) {
                    pins.pin(&result.output);
                }
            }
            // Overwriting a registered path stales every entry that
            // recorded the old bytes; invalidate before registering the
            // new ones.
            if !wave_written.is_empty() {
                self.invalidate_overwritten(&wave_written);
            }
            // The whole wave's registrations land as one published
            // provenance snapshot and one published repository snapshot
            // (in job-index order), instead of a publish per job:
            // concurrent sessions see the wave land atomically, and the
            // writer side is entered O(waves) instead of O(jobs) times.
            // Readers keep matching against the previous snapshots
            // throughout — registration never blocks the match path.
            let manage_outputs = config.reuse_enabled || config.heuristic != Heuristic::None;
            if manage_outputs && !prepared.is_empty() {
                // Writer order: provenance before repository (see
                // [`Space`]). The repository batch journals itself at
                // publish; the wave's provenance registrations are
                // journaled here as one `prov-batch` record — both
                // inside the provenance writer section, so journal
                // order equals publish order.
                let registered: Result<Vec<(u64, usize)>> = space.prov.update_then(
                    |prov| {
                        let mut registers: Vec<(String, Arc<PhysicalPlan>)> = Vec::new();
                        let result = space.repo.batch(|repo| {
                            prepared
                                .iter()
                                .zip(&results)
                                .map(|(job, result)| {
                                    self.register_outputs_batched(
                                        prov,
                                        repo,
                                        &space.pins,
                                        &wf,
                                        job,
                                        result,
                                        tick,
                                        &config,
                                        &mut registers,
                                    )
                                })
                                .collect()
                        });
                        (result, registers)
                    },
                    |(result, registers)| {
                        self.journal.append_prov_batch(space_name, &registers, &[]);
                        result
                    },
                );
                for (cand_bytes, cand_stored) in registered? {
                    stored_candidate_bytes += cand_bytes;
                    candidates_stored += cand_stored;
                }
            }
            self.obs.stage.register.record_elapsed(register_t0);
            job_results.extend(results);
            if let Some((_, out)) = wave_outputs.into_iter().max_by_key(|(idx, _)| *idx) {
                final_output = out;
            }
        }

        // ---- plain-Pig tmp cleanup ----
        if config.delete_tmp {
            for tmp in &wf.tmp_paths {
                // Honour pins even here: a hand-built config combining
                // delete_tmp with reuse could otherwise delete a tmp
                // that a concurrent session matched and pinned.
                if !space.pins.defer_delete(tmp) {
                    self.engine.dfs().delete(tmp);
                }
            }
        }

        // The caller is handed `final_output` to read; if it aliases a
        // pinned repository path that a sweep evicted mid-flight, leave
        // the file on the DFS instead of deleting it under the reader.
        pins.preserve(&final_output);

        let total_s = equation_one_total(&wf, &et)?;
        Ok(QueryExecution {
            total_s,
            job_results,
            jobs_skipped,
            rewrites,
            stored_candidate_bytes,
            final_output,
            candidates_stored,
            tick,
        })
    }

    /// Phase 1 for one job: alias rewriting, the §3 match loop, whole-job
    /// elimination, and §4 sub-job instrumentation.
    #[allow(clippy::too_many_arguments)]
    fn prepare_job(
        &self,
        space: &Space,
        tenant: Option<&str>,
        wf: &CompiledWorkflow,
        idx: usize,
        tick: u64,
        config: &ReStoreConfig,
        aliases: &mut HashMap<String, String>,
        rewrites: &mut Vec<RewriteEvent>,
        pins: &mut PinGuard,
    ) -> Result<Prepared> {
        let mut plan = wf.jobs[idx].plan.clone();
        apply_aliases(&mut plan, aliases);
        // Re-canonicalize after alias rewriting: aliasing two Loads to
        // the same reused path can expose common subtrees that did not
        // exist at compile time. Idempotent, so a plan the compiler
        // already canonicalized (and no alias touched) is unchanged.
        if config.canonicalize {
            let timings = restore_dataflow::analyzer::canonicalize_timed(&mut plan);
            self.obs.record_canon(&timings);
        }

        let mut job_rewrites = 0usize;
        if config.reuse_enabled {
            let space_name = Self::normalize(tenant).unwrap_or("");
            self.match_loop(
                space,
                &mut plan,
                tick,
                space_name,
                idx,
                Some(pins),
                |entry_id, reused_path| {
                    rewrites.push(RewriteEvent {
                        job: idx,
                        entry_id,
                        reused_path: reused_path.to_string(),
                        whole_job: false,
                    });
                    job_rewrites += 1;
                },
            );
        }

        // Whole-job elimination: the rewrite reduced the job to a copy.
        if job_rewrites > 0 {
            if let Some((src, dst)) = identity_copy(&plan) {
                aliases.insert(dst.clone(), src);
                if let Some(ev) = rewrites.last_mut() {
                    ev.whole_job = true;
                }
                return Ok(Prepared::Skipped { dst });
            }
        }

        // Sub-job enumeration (§4). Candidate outputs are keyed under the
        // tenant's prefix so namespaces never share materialized files.
        let candidates: Vec<Candidate> = if config.heuristic != Heuristic::None {
            let prov = space.prov.load();
            let repo = space.repo.view();
            let prefix = match tenant {
                Some(t) => format!("{}/{t}", config.repo_prefix),
                None => config.repo_prefix.clone(),
            };
            inject_subjob_stores(
                &mut plan,
                config.heuristic,
                || {
                    let c = self.cand_counter.fetch_add(1, Ordering::SeqCst) + 1;
                    format!("{prefix}/sub-{c}")
                },
                |candidate| {
                    // Skip candidates whose (base-level) plan is already
                    // stored: re-materializing them would pay the Store
                    // cost for nothing.
                    let base = prov.expand(candidate).plan;
                    repo.contains_plan(&base).is_some()
                },
            )
        } else {
            Vec::new()
        };

        let spec = job_spec_for_plan(&plan, &format!("q{tick}-job{idx}"))?;
        Ok(Prepared::Run(Box::new(PreparedJob { idx, plan, candidates, spec })))
    }

    /// The §3 scan: repeatedly lineage-expand the plan, take the first
    /// repository match that makes structural progress, and rewrite.
    /// Entirely lock-free: each iteration loads the current repository
    /// and provenance snapshots (lock-free), and reuse statistics are
    /// recorded through the entries' shared atomics; `on_match` runs
    /// after each applied rewrite. With `pins` present (a real
    /// execution, not a dry run), the reused output is pinned against
    /// concurrent eviction until the workflow finishes.
    ///
    /// **Pin-then-revalidate.** A match can be found in a snapshot that
    /// a concurrent sweep has already superseded — by the time we pin,
    /// the entry may be evicted and its file deleted (the sweep saw no
    /// pin). So after pinning we re-check the entry against a *fresh*
    /// snapshot: if it is still present, any later eviction must
    /// publish after this check, hence run its pin-checked file
    /// deletion after our pin is visible, and the deletion is deferred
    /// — the file is safe for the lifetime of the workflow. If it is
    /// gone, we unpin, skip the entry, and rescan. Eviction publishes
    /// the entry's removal **before** deleting the file (see
    /// `SelectionPolicy::sweep`), which is what makes the revalidation
    /// conclusive.
    #[allow(clippy::too_many_arguments)]
    fn match_loop(
        &self,
        space: &Space,
        plan: &mut PhysicalPlan,
        tick: u64,
        tenant: &str,
        job: usize,
        mut pins: Option<&mut PinGuard>,
        mut on_match: impl FnMut(u64, &str),
    ) {
        let loop_t0 = Instant::now();
        // Reuse decisions buffered locally and pushed to the trace ring
        // in one batch at the end — the loop itself touches no lock.
        let mut decisions: Vec<ReuseDecision> = Vec::new();
        let mut matched_any = false;
        // Entries whose rewrite made no structural progress (they match
        // only lineage the plan already loads) are skipped on the rescan;
        // progress clears the set.
        let mut unproductive: HashSet<u64> = HashSet::new();
        // An unproductive rescan leaves `plan` untouched, so its lineage
        // expansion is reused instead of being recomputed.
        let mut cached_expansion: Option<crate::provenance::ExpandedPlan> = None;
        let budget = 2 * plan.len() + 4 + 2 * space.repo.len();
        // One probe for the whole loop, reset per iteration: its
        // candidate buffer is reused instead of reallocated.
        let mut probe = MatchProbe::default();
        for _ in 0..budget {
            let snapshot_t0 = Instant::now();
            let expanded =
                cached_expansion.take().unwrap_or_else(|| space.prov.load().expand(plan));
            let snap = space.repo.view();
            self.obs.match_stage.snapshot_load.record_elapsed(snapshot_t0);
            probe.reset();
            let found = snap.find_first_match_probed(&expanded.plan, &unproductive, &mut probe);
            self.obs.match_stage.index_probe.record(probe.probe_ns);
            self.obs.match_stage.winner_pass.record(probe.winner_ns);
            for c in probe.candidates.iter().filter(|c| !c.matched) {
                decisions.push(ReuseDecision::CandidateFailedTraversal {
                    entry_id: c.entry_id,
                    shard: c.shard,
                });
            }
            let Some((entry_id, m)) = found else {
                decisions.push(ReuseDecision::NoCandidates {
                    signatures_probed: probe.signatures_probed,
                });
                break;
            };
            let shard = probe.winner_shard.unwrap_or(0);
            let reused_path = snap.get(entry_id).expect("matched entry").output_path.clone();
            if let Some(p) = pins.as_deref_mut() {
                let pin_t0 = Instant::now();
                p.pin(&reused_path);
                // Revalidate against a fresh snapshot now that the pin
                // is visible (see the method docs). A vanished entry is
                // absent from every later snapshot, so the retry makes
                // progress; results are unchanged because the entry
                // could equally have been evicted a moment before our
                // first snapshot.
                let present = space.repo.view().contains_id(entry_id);
                self.obs.match_stage.pin_revalidate.record_elapsed(pin_t0);
                if !present {
                    p.unpin_last();
                    decisions.push(ReuseDecision::RejectedPinRevalidation { entry_id });
                    cached_expansion = Some(expanded);
                    continue;
                }
            }
            // Keep the pre-rewrite expansion: an unproductive rewrite
            // leaves `plan` unchanged, and then this clone is reused
            // instead of re-expanding.
            let rewrite_t0 = Instant::now();
            let mut exp = expanded.clone();
            let remap = rewrite(&mut exp.plan, &m, &reused_path);
            // Translate expansion tips through the GC remap; an expansion
            // whose tip vanished was consumed by the matched region and
            // needs no collapsing.
            exp.expansions.retain_mut(|e| match remap.get(e.tip.index()).copied().flatten() {
                Some(t) => {
                    e.tip = t;
                    true
                }
                None => false,
            });
            let before_sig = plan.signature();
            let collapsed = exp.collapse_unused();
            self.obs.stage.rewrite.record_elapsed(rewrite_t0);
            if collapsed.signature() == before_sig {
                // No structural progress: try the next entry. The
                // speculative pin is no longer needed, and the plan is
                // unchanged, so the rescan reuses the expansion we
                // already computed.
                if let Some(p) = pins.as_deref_mut() {
                    p.unpin_last();
                }
                unproductive.insert(entry_id);
                decisions.push(ReuseDecision::RejectedUnproductive { entry_id });
                cached_expansion = Some(expanded);
                continue;
            }
            unproductive.clear();
            *plan = collapsed;
            matched_any = true;
            decisions.push(ReuseDecision::Matched {
                entry_id,
                shard,
                reused_path: reused_path.clone(),
            });
            if pins.is_some() {
                // Write-free reuse accounting: atomics shared by every
                // snapshot of the entry — never a repository lock.
                space.repo.note_use(entry_id, tick);
                space.metrics.shard_hit(shard);
            }
            on_match(entry_id, &reused_path);
        }
        self.obs.stage.match_loop.record_elapsed(loop_t0);
        // Per-namespace accounting and the trace ring only see real
        // executions; `explain_query` dry runs (no pins) stay invisible,
        // matching their no-side-effect contract.
        if pins.is_some() {
            space.metrics.latency.record_elapsed(loop_t0);
            if matched_any {
                space.metrics.hits.inc();
            } else {
                space.metrics.misses.inc();
            }
            self.obs.trace.extend(decisions.into_iter().map(|decision| ReuseTraceEvent {
                tick,
                tenant: tenant.to_string(),
                job,
                decision,
            }));
        }
    }

    /// Phase 2: execute every prepared job of a wave, in parallel when
    /// configured. Results come back in `prepared` order; on failure the
    /// error of the lowest job index wins, matching sequential execution.
    fn run_wave(&self, prepared: &[PreparedJob], parallel: bool) -> Result<Vec<JobResult>> {
        if prepared.len() <= 1 || !parallel {
            return prepared.iter().map(|p| self.engine.run(&p.spec)).collect();
        }
        let outcomes: Vec<Result<JobResult>> = std::thread::scope(|scope| {
            let handles: Vec<_> =
                prepared.iter().map(|p| scope.spawn(move || self.engine.run(&p.spec))).collect();
            handles.into_iter().map(|h| h.join().expect("wave job thread panicked")).collect()
        });
        outcomes.into_iter().collect()
    }

    /// Phase 3 for one executed job: register the whole-job entry, the
    /// candidate sub-job entries, and their provenance. The caller runs
    /// the whole wave inside one provenance update and one repository
    /// batch, both published when the wave completes, so concurrent
    /// sessions never observe a half-registered job (e.g. provenance
    /// without the repository entry) or a half-registered wave. Returns
    /// (bytes written by injected Stores, candidates kept).
    #[allow(clippy::too_many_arguments)]
    fn register_outputs_batched(
        &self,
        prov: &mut Provenance,
        repo: &mut RepoBatch<'_>,
        pins: &PinSet,
        wf: &CompiledWorkflow,
        job: &PreparedJob,
        result: &JobResult,
        tick: u64,
        config: &ReStoreConfig,
        registers: &mut Vec<(String, Arc<PhysicalPlan>)>,
    ) -> Result<(u64, usize)> {
        let io = job_io(&job.plan)?;
        let input_files = self.input_versions(&io.inputs);
        // Final outputs (not inter-job temporaries) are only registered
        // when configured; intermediate outputs are always candidates for
        // whole-job reuse (§2.1).
        let is_intermediate = wf.tmp_paths.contains(&io.main_output);
        let register_main = config.register_final_outputs || is_intermediate;

        let whole_prefix =
            job.plan.prefix_plan(find_store_tip(&job.plan, &io.main_output)?, &io.main_output);

        let mut stored_candidate_bytes = 0u64;
        let mut candidates_stored = 0usize;

        // Whole-job entry: the main output with the job's plan.
        let whole_base = prov.expand(&whole_prefix).plan;
        let whole_stats = RepoStats {
            input_bytes: result.counters.map_input_bytes,
            output_bytes: result.counters.output_bytes,
            job_time_s: result.times.total_s,
            avg_map_time_s: result.times.avg_map_task_s,
            avg_reduce_time_s: result.times.avg_reduce_task_s,
            use_count: 0,
            last_used: 0,
            created: tick,
            input_files: input_files.clone(),
        };
        if register_main && config.selection.should_keep(&whole_stats) {
            prov.register(&io.main_output, whole_base.clone());
            if let Some(plan) = prov.get_arc(&io.main_output) {
                registers.push((io.main_output.clone(), plan));
            }
            repo.insert(whole_base, &io.main_output, whole_stats);
            // The path holds fresh bytes again: a deletion deferred from
            // a pre-overwrite eviction must not fire on it later.
            pins.cancel_deferred(&io.main_output);
        }

        // Candidate sub-job entries. A candidate that aliases the job's
        // final output follows the same final-output policy.
        for cand in &job.candidates {
            if cand.already_stored && cand.store_path == io.main_output && !register_main {
                continue;
            }
            let bytes = if cand.already_stored && cand.store_path == io.main_output {
                result.counters.output_bytes
            } else {
                side_bytes(result, &cand.store_path)
            };
            stored_candidate_bytes += if cand.already_stored { 0 } else { bytes };
            let stats = RepoStats {
                input_bytes: result.counters.map_input_bytes,
                output_bytes: bytes,
                job_time_s: result.times.total_s,
                avg_map_time_s: result.times.avg_map_task_s,
                avg_reduce_time_s: result.times.avg_reduce_task_s,
                use_count: 0,
                last_used: 0,
                created: tick,
                input_files: input_files.clone(),
            };
            let base = prov.expand(&cand.prefix).plan;
            if config.selection.should_keep(&stats) {
                let outcome = repo.insert(base.clone(), &cand.store_path, stats);
                // A racing session (or a same-wave sibling prepared before
                // we registered) may have stored an equivalent plan under
                // another path; the repository keeps the first entry, so a
                // freshly materialized duplicate file would be orphaned.
                let orphaned = matches!(outcome, crate::repository::InsertOutcome::Duplicate(_))
                    && !cand.already_stored
                    && !prov.contains(&cand.store_path);
                if orphaned {
                    self.engine.dfs().delete(&cand.store_path);
                } else {
                    if !prov.contains(&cand.store_path) {
                        prov.register(&cand.store_path, base);
                        if let Some(plan) = prov.get_arc(&cand.store_path) {
                            registers.push((cand.store_path.clone(), plan));
                        }
                    }
                    pins.cancel_deferred(&cand.store_path);
                    candidates_stored += 1;
                }
            } else if !cand.already_stored {
                // Rejected by rules 1–2: drop the materialized file.
                self.engine.dfs().delete(&cand.store_path);
            }
        }
        Ok((stored_candidate_bytes, candidates_stored))
    }

    /// Dry-run a query: compile it and report what the repository would
    /// answer — without executing anything or mutating any state. The
    /// report lists, per job, the matches the §3 scan finds and whether
    /// the whole job would be eliminated.
    pub fn explain_query(&self, text: &str, out_prefix: &str) -> Result<String> {
        self.explain_query_as(None, text, out_prefix)
    }

    /// [`ReStore::explain_query`] against a tenant's namespace.
    pub fn explain_query_as(
        &self,
        tenant: Option<&str>,
        text: &str,
        out_prefix: &str,
    ) -> Result<String> {
        let space = self.space_snapshot(tenant);
        // Same compile the execution path would use, so the explanation
        // sees exactly the (canonicalized or not) plans execution would.
        let wf = self.compile_as(tenant, text, out_prefix)?;
        let mut report = String::new();
        {
            let repo = space.repo.view();
            report.push_str(&format!(
                "workflow: {} job(s); repository: {} entr{}\n",
                wf.jobs.len(),
                repo.len(),
                if repo.len() == 1 { "y" } else { "ies" },
            ));
        }
        for (idx, job) in wf.jobs.iter().enumerate() {
            report.push_str(&format!(
                "job {idx} ({} operators{}):\n",
                job.plan.effective_len(),
                if job.deps.is_empty() {
                    String::new()
                } else {
                    format!(", depends on {:?}", job.deps)
                }
            ));
            // Same match loop as execution, against a scratch plan, with
            // usage statistics left untouched.
            let mut plan = job.plan.clone();
            let mut any = false;
            let space_name = Self::normalize(tenant).unwrap_or("");
            self.match_loop(
                &space,
                &mut plan,
                0,
                space_name,
                idx,
                None,
                |entry_id, reused_path| {
                    let (bytes, uses) = space
                        .repo
                        .get(entry_id)
                        .map(|e| (e.stats().output_bytes, e.use_count()))
                        .unwrap_or((0, 0));
                    report.push_str(&format!(
                        "  would reuse entry #{} -> {} ({}, used {} time(s))\n",
                        entry_id,
                        reused_path,
                        restore_common::human_bytes(bytes),
                        uses,
                    ));
                    any = true;
                },
            );
            if let Some((src, _)) = identity_copy(&plan) {
                report
                    .push_str(&format!("  whole job answered from {src}; job would be skipped\n"));
            } else if !any {
                report.push_str("  no matches; job executes in full\n");
            }
        }
        Ok(report)
    }

    /// The reuse-decision trace of the most recent traced execution in
    /// the default namespace, rendered one decision per line (newest
    /// workflow only). `None` when nothing has been traced yet.
    pub fn explain_last(&self) -> Option<String> {
        self.explain_last_as(None)
    }

    /// [`ReStore::explain_last`] for a tenant's namespace.
    pub fn explain_last_as(&self, tenant: Option<&str>) -> Option<String> {
        let t = Self::normalize(tenant).unwrap_or("");
        let last_tick =
            self.obs.trace.snapshot_filtered(|e| e.tenant == t).iter().map(|e| e.tick).max()?;
        let events = self.trace_for(tenant, last_tick);
        let mut out = format!("workflow tick {last_tick} (tenant {t:?}):\n");
        for e in &events {
            out.push_str(&format!("  {e}\n"));
        }
        Some(out)
    }

    /// Reuse-decision trace events recorded for `tick` in a tenant's
    /// namespace, oldest first. The trace ring holds the most recent
    /// [`crate::obs`] events session-wide; an old workflow's events may
    /// have been evicted.
    pub fn trace_for(&self, tenant: Option<&str>, tick: u64) -> Vec<ReuseTraceEvent> {
        let t = Self::normalize(tenant).unwrap_or("");
        self.obs.trace.snapshot_filtered(|e| e.tenant == t && e.tick == tick)
    }

    /// Point-in-time summary of the default namespace's repository and
    /// reuse activity.
    pub fn stats(&self) -> ReStoreStats {
        self.stats_as(None)
    }

    /// One consistent cut of every namespace's stats: a single tick read
    /// and a single tenant-map load, so each returned row reports the
    /// same `queries_executed` and a tenant created concurrently is
    /// either absent or fully present. The default namespace is the `""`
    /// row. Callers that show totals (the service's `stats`, the metrics
    /// exposition) use this instead of per-tenant [`ReStore::stats_as`]
    /// calls, whose row-by-row reads can straddle executions.
    pub fn stats_all(&self) -> Vec<(String, ReStoreStats)> {
        let queries_executed = self.tick.load(Ordering::SeqCst);
        let spaces = self.all_spaces();
        spaces
            .into_iter()
            .map(|(name, space)| {
                let provenance_entries = space.prov.load().len();
                let repo = space.repo.view();
                let entries = repo.entries();
                let stats = ReStoreStats {
                    repository_entries: entries.len(),
                    stored_bytes: repo.stored_bytes(),
                    total_uses: entries.iter().map(|e| e.use_count()).sum(),
                    never_used: entries.iter().filter(|e| e.use_count() == 0).count(),
                    queries_executed,
                    provenance_entries,
                };
                (name, stats)
            })
            .collect()
    }

    /// Point-in-time summary of a tenant's repository and reuse activity.
    /// `queries_executed` counts queries across all namespaces (the tick
    /// clock is shared).
    pub fn stats_as(&self, tenant: Option<&str>) -> ReStoreStats {
        let space = self.space_snapshot(tenant);
        // Wait-free: one provenance snapshot, one repository snapshot;
        // no lock ordering to respect and no writer ever blocked.
        let provenance_entries = space.prov.load().len();
        let repo = space.repo.view();
        let entries = repo.entries();
        ReStoreStats {
            repository_entries: entries.len(),
            stored_bytes: repo.stored_bytes(),
            total_uses: entries.iter().map(|e| e.use_count()).sum(),
            never_used: entries.iter().filter(|e| e.use_count() == 0).count(),
            queries_executed: self.tick.load(Ordering::SeqCst),
            provenance_entries,
        }
    }

    /// Write-side counters of a tenant's repository: `(snapshot
    /// publishes, writer-section entries)`, both cumulative and summed
    /// across shards. Benchmarks read deltas of these around a round to
    /// attribute wall-time to write-side contention (`None` = the
    /// default namespace).
    pub fn write_counters_as(&self, tenant: Option<&str>) -> (u64, u64) {
        let space = self.space_snapshot(tenant);
        (space.repo.publish_count(), space.repo.writer_sections())
    }

    /// Serialize the full ReStore session state (`restore-state v3`):
    /// the counters, the journal anchor, the global configuration, and
    /// **every** namespace — default and per-tenant — with its
    /// repository, provenance table, and (when set) its policy
    /// override. Paired with [`ReStore::load_state`], this lets a new
    /// process resume with everything a previous session learned
    /// (§2.2's repository is persistent in spirit; the DFS holds the
    /// outputs).
    ///
    /// Snapshots are consistent under load: each namespace is captured
    /// under its own locks with the pin set consulted first, so entries
    /// whose files have a **pending deferred deletion** (evicted while
    /// pinned by an in-flight workflow) — or are already gone from the
    /// DFS — are excluded rather than serialized as dangling paths.
    /// Tenants are written in sorted order, so re-saving a loaded state
    /// is byte-identical.
    ///
    /// With the journal on, the dump doubles as a **base checkpoint**:
    /// the `seq` line is the journal sequence read *before* any table
    /// is captured, so every record at or below it is reflected in the
    /// dump (its writer section completes before the capture's freeze),
    /// and records after it replay idempotently on top. No workflow
    /// drain is required — only per-namespace writer freezes.
    pub fn save_state(&self) -> String {
        self.save_state_anchored().0
    }

    /// [`ReStore::save_state`] plus the anchor coordinates replication
    /// needs: the journal seq the dump is anchored at and the lineage
    /// token current while the capture lock was held. Reading both
    /// under the same capture hold as the dump keeps a shipped base's
    /// stamp consistent with its contents.
    pub(crate) fn save_state_anchored(&self) -> (String, u64, u64) {
        // Serialize with delta captures: a delta drains dirty usage
        // into absolute-valued `note-use` records stamped *after* this
        // base's anchor; if that drain interleaved with this capture,
        // replay could regress a counter the base already saw newer.
        // Writer-section-emitted records (repo/prov batches) are
        // race-free by construction; the capture lock extends the same
        // guarantee to the lazily drained ones.
        let _capture = self.journal.capture.lock();
        let seq = self.journal.seq();
        let lineage = self.journal.lineage();
        let mut out = format!(
            "{}\ntick {}\ncand {}\nseq {}\n--config--\n{}",
            crate::state::V5_HEADER,
            self.tick.load(Ordering::SeqCst),
            self.cand_counter.load(Ordering::SeqCst),
            seq,
            crate::state::encode_config(&self.config()),
        );
        out.push_str(&self.save_space("", &self.space));
        let mut tenants: Vec<(String, Arc<Space>)> =
            self.tenants.load().iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        tenants.sort_by(|a, b| a.0.cmp(&b.0));
        for (name, space) in tenants {
            out.push_str(&self.save_space(&name, &space));
        }
        (out, seq, lineage)
    }

    /// Capture an **incremental checkpoint**: every journal record
    /// accumulated since the previous capture — structural mutations
    /// recorded at publish time, plus the lazily dirty-tracked state
    /// flushed here (per-space `note-use` batches for entries whose
    /// reuse counters moved, and a `counters` record when tick/cand
    /// advanced). Returns the sealed segments, which the caller
    /// persists alongside its base checkpoint; an idle session yields
    /// an empty list. Cost is proportional to what changed, never to
    /// repository size, and nothing is drained or frozen — submissions
    /// keep flowing.
    ///
    /// Requires [`ReStore::enable_journal`]; recovery is
    /// [`ReStore::recover`] with a base taken at or after the enable.
    pub fn save_state_delta(&self) -> Result<Vec<String>> {
        if !self.journal.enabled() {
            return Err(Error::Other(
                "incremental snapshots require ReStore::enable_journal".into(),
            ));
        }
        let _capture = self.journal.capture.lock();
        self.flush_dirty_locked();
        Ok(self.journal.cut())
    }

    /// Drain the lazily tracked state into journal records: per-space
    /// `note-use` batches for entries whose reuse counters moved, and a
    /// `counters` record when tick/cand advanced. Caller holds the
    /// capture lock.
    fn flush_dirty_locked(&self) {
        for (name, space) in self.all_spaces() {
            let uses = space.repo.drain_dirty_usage();
            self.journal.append_note_use(&name, &uses);
        }
        self.journal.append_counters_if_changed(
            self.tick.load(Ordering::SeqCst),
            self.cand_counter.load(Ordering::SeqCst),
        );
    }

    /// Flush dirty state and seal the live lanes **without** consuming
    /// the sealed queue: registered journal taps (replication) receive
    /// the sealed segments, while the segments stay owned by the next
    /// [`ReStore::save_state_delta`] — shipping never steals from the
    /// checkpoint keeper. The replication pump calls this at every ship
    /// cadence point.
    pub(crate) fn flush_and_seal_journal(&self) -> Result<()> {
        if !self.journal.enabled() {
            return Err(Error::Other("journal shipping requires ReStore::enable_journal".into()));
        }
        let _capture = self.journal.capture.lock();
        self.flush_dirty_locked();
        self.journal.seal();
        Ok(())
    }

    /// Replay records shipped from a replication primary, in the seq
    /// order the caller established, then advance the journal seq past
    /// `last_seq` so a later promotion continues the same sequence. The
    /// journal is paused for the replay exactly as in
    /// [`ReStore::recover`] — a standby must not re-record what its
    /// primary already journaled.
    pub(crate) fn replay_shipped(&self, records: Vec<Record>, last_seq: u64) -> Result<()> {
        let _capture = self.journal.capture.lock();
        let _pause = self.journal.pause();
        for record in records {
            self.apply_record(record)?;
        }
        self.journal.advance_seq(last_seq);
        Ok(())
    }

    /// The session journal, for in-crate collaborators (replication
    /// registers segment taps and reads seq/lineage through this).
    pub(crate) fn journal_handle(&self) -> &Arc<Journal> {
        &self.journal
    }

    /// Rebuild session state from a base checkpoint plus journal
    /// segments: load the base (any wire version), then replay every
    /// record with a sequence number past the base's anchor, in **seq
    /// order**. A segment's physical order may interleave seqs from
    /// different journal lanes (per-shard repository sinks append in
    /// parallel — see [`crate::journal`]), so recovery decodes all
    /// segments first and merges on seq; replay order is therefore
    /// identical to a single-lane journal's. A torn tail in the
    /// **final** segment — the crash artifact of a process dying
    /// mid-append — is truncated and reported; a duplicated sequence
    /// number or any other malformation fails with [`Error::Journal`]
    /// naming the segment and record, leaving whatever prefix already
    /// applied (call on a fresh or quiesced session, like
    /// [`ReStore::load_state`]).
    pub fn recover(&self, base: &str, segments: &[String]) -> Result<RecoveryReport> {
        let _capture = self.journal.capture.lock();
        // Replay drives the normal mutation paths; pause the journal so
        // they do not re-record what they apply.
        let _pause = self.journal.pause();
        // Recovery replaces state without journaling what it applies, so
        // any replica tailing this session's record stream can no longer
        // reconcile by seq — mark the lineage break (see
        // [`crate::replication`]'s divergence rule).
        self.journal.bump_lineage();
        let base_seq = self.load_state_inner(base)?;
        let mut torn_tail = None;
        // (seq, record, segment index, 1-based ordinal) — coordinates
        // kept so a duplicate seq names its record.
        let mut all: Vec<(u64, Record, usize, usize)> = Vec::new();
        for (i, segment) in segments.iter().enumerate() {
            let is_final = i + 1 == segments.len();
            let (records, torn) = journal::decode_segment(segment, i, is_final)?;
            for (ordinal, (seq, record)) in records.into_iter().enumerate() {
                all.push((seq, record, i, ordinal + 1));
            }
            torn_tail = torn;
        }
        // Stable on (segment, ordinal) ties — a duplicate pair stays in
        // physical order, so the error below names the *later* copy.
        all.sort_by_key(|&(seq, ..)| seq);
        let mut applied = 0usize;
        let mut skipped = 0usize;
        let mut last_seq = base_seq;
        for (seq, record, segment, ordinal) in all {
            if seq <= base_seq {
                skipped += 1;
                continue;
            }
            if seq == last_seq {
                return Err(Error::Journal {
                    segment,
                    record: ordinal,
                    msg: format!("duplicate record seq {seq}"),
                });
            }
            last_seq = seq;
            self.apply_record(record)?;
            applied += 1;
        }
        self.journal.advance_seq(last_seq);
        Ok(RecoveryReport {
            base_seq,
            records_applied: applied,
            records_skipped: skipped,
            torn_tail,
        })
    }

    /// Apply one decoded journal record. Every application is
    /// idempotent: puts carry full entries, note-use carries absolute
    /// counters, and space/tenant creation is keyed by name.
    fn apply_record(&self, record: Record) -> Result<()> {
        use crate::journal::{ProvRecOp, RepoRecOp};
        match record {
            Record::Counters { tick, cand } => {
                self.tick.store(tick, Ordering::SeqCst);
                self.cand_counter.store(cand, Ordering::SeqCst);
                // Replay runs with the journal paused, so the append-side
                // dedup cache must be moved by hand or the next delta
                // would re-emit this pair as a phantom record.
                self.journal.sync_counters_cache(tick, cand);
            }
            Record::TenantCreate { space } => {
                let _ = self.space_for(Some(&space));
            }
            Record::TenantConfigSet { space, config } => {
                self.set_config_as(Some(&space), config);
            }
            Record::TenantConfigClear { space } => self.clear_config_as(&space),
            Record::GlobalConfig { config } => self.set_config(config),
            Record::RepoBatch { space, ops } => {
                let sp = self.space_for(Some(&space));
                sp.repo.batch(|b| {
                    for op in ops {
                        match op {
                            RepoRecOp::Put(e) => b.put(e.id, e.plan, e.output_path, e.stats),
                            RepoRecOp::Evict(id) => {
                                b.evict(id);
                            }
                        }
                    }
                });
            }
            Record::NoteUse { space, uses } => {
                let sp = self.space_for(Some(&space));
                for (id, count, last_used) in uses {
                    sp.repo.set_usage(id, count, last_used);
                }
            }
            Record::ProvBatch { space, ops } => {
                let sp = self.space_for(Some(&space));
                sp.prov.update(|prov| {
                    for op in &ops {
                        match op {
                            ProvRecOp::Register { path, plan } => {
                                prov.register_replay(path.clone(), plan.clone())
                            }
                            ProvRecOp::Forget { path } => prov.forget(path),
                        }
                    }
                });
            }
            Record::ProvReplace { space, table } => {
                self.space_for(Some(&space)).prov.store(table);
            }
            Record::DlqPut { space, entry } => {
                let sp = self.space_for(Some(&space));
                let mut q = sp.dlq.lock();
                // Keyed by id: a re-applied put replaces its own entry.
                match q.iter_mut().find(|e| e.id == entry.id) {
                    Some(slot) => *slot = entry,
                    None => {
                        q.push(entry);
                        q.sort_by_key(|e| e.id);
                    }
                }
            }
            Record::DlqAck { space, ids } => {
                let sp = self.space_for(Some(&space));
                sp.dlq.lock().retain(|e| !ids.contains(&e.id));
            }
            Record::BreakerState { space, open } => {
                let mut set = self.open_breakers.lock();
                if open {
                    set.insert(space);
                } else {
                    set.remove(&space);
                }
            }
            Record::Replace { state } => {
                self.load_state_inner(&state)?;
            }
        }
        Ok(())
    }

    /// Serialize the session in the **legacy v1 format**: counters plus
    /// the default namespace only, no configuration. Kept for
    /// compatibility tooling and round-trip tests; new snapshots should
    /// use [`ReStore::save_state`].
    pub fn save_state_v1(&self) -> String {
        let (prov_text, repo_text) = self.capture_space_tables(&self.space);
        format!(
            "{}\ntick {}\ncand {}\n--provenance--\n{}--repository--\n{}",
            crate::state::V1_HEADER,
            self.tick.load(Ordering::SeqCst),
            self.cand_counter.load(Ordering::SeqCst),
            prov_text,
            repo_text,
        )
    }

    /// Serialize one namespace's provenance and repository with
    /// condemned paths excluded. The capture **freezes both writer
    /// sides** (no snapshot can be published while it runs): deferrals
    /// come from eviction sweeps, which must enter the repository
    /// writer, so none can land between the capture of the deferred
    /// set and the serialization — a deferral either completed before
    /// we froze (and its path is excluded) or is blocked until we
    /// finish. Readers (matching, stats) are not blocked; only
    /// mutations wait, and only for the duration of the serialization.
    /// A path in the deferred set still exists on the DFS right now but
    /// is deleted the moment its last pin drops, so serializing it
    /// would hand a restarted session dangling references.
    fn capture_space_tables(&self, space: &Space) -> (String, String) {
        // Writer order: provenance before repository (see [`Space`]).
        space.prov.freeze(|prov| {
            space.repo.freeze(|repo| {
                let deferred: HashSet<String> = space.pins.deferred_paths().into_iter().collect();
                let dfs = self.engine.dfs();
                let live = |p: &str| !deferred.contains(p) && dfs.exists(p);
                (prov.save_filtered(live), repo.save_filtered(live))
            })
        })
    }

    /// One `--space--` section: the namespace's policy override (if
    /// any), provenance, and repository, with condemned paths excluded.
    fn save_space(&self, name: &str, space: &Space) -> String {
        let config = (*space.config.load()).clone();
        let (prov_text, repo_text) = self.capture_space_tables(space);
        let mut out = format!("--space {name:?}--\n");
        if let Some(c) = config {
            out.push_str("--config--\n");
            out.push_str(&crate::state::encode_config(&c));
        }
        out.push_str("--provenance--\n");
        out.push_str(&prov_text);
        out.push_str("--repository--\n");
        out.push_str(&repo_text);
        let dlq = space.dlq.lock();
        if !dlq.is_empty() {
            out.push_str("--dlq--\n");
            out.push_str(&crate::dlq::save(&dlq));
        }
        out
    }

    /// Restore a session serialized by [`ReStore::save_state`] (v4 or
    /// the earlier v2/v3) or by a pre-v2 release ([`ReStore::save_state_v1`]'s
    /// format). The DFS handle (and the stored output files in it) come
    /// from the engine this instance was built with.
    ///
    /// A v2/v3/v4 document replaces the whole session: global config,
    /// every tenant namespace (existing tenant state is dropped,
    /// dead-letter queues included), and the counters. A v1 document
    /// predates tenant serialization and loads into the default
    /// namespace only, leaving tenants and the global config untouched.
    ///
    /// Call on a quiesced session (no workflows in flight) — the
    /// service's `restore` entry point arranges that. Malformed input
    /// yields [`Error::State`] naming the offending line. With the
    /// journal on, the wholesale replacement is recorded as one
    /// `replace` record, so later deltas still recover correctly.
    pub fn load_state(&self, text: &str) -> Result<()> {
        self.load_state_inner(text)?;
        self.journal.append_replace(text);
        Ok(())
    }

    /// The load itself, journal suspended (shared by [`ReStore::load_state`]
    /// and recovery, which must not re-record what they apply). Returns
    /// the document's journal anchor (0 for v1/v2).
    fn load_state_inner(&self, text: &str) -> Result<u64> {
        let _pause = self.journal.pause();
        let loaded = crate::state::parse(text)?;
        if let Some(global) = loaded.global_config {
            // v2/v3: a full-session restore. Reset the default
            // namespace up front so a document without a `--space ""--`
            // section (e.g. hand-pruned) still replaces the whole
            // session instead of leaving stale default-namespace state
            // behind.
            self.set_config(global);
            self.space.prov.store(Provenance::default());
            self.space.repo.adopt(Repository::default());
            self.space.config.store(None);
            *self.space.dlq.lock() = Vec::new();
            // Breaker state is record-only (never part of a base dump):
            // a full-session replace resets it; `breaker-state` records
            // replayed after the base rebuild the open set.
            self.open_breakers.lock().clear();
            let mut tenants: HashMap<String, Arc<Space>> = HashMap::new();
            for sp in loaded.spaces {
                if sp.name.is_empty() {
                    self.space.prov.store(sp.prov);
                    self.space.repo.adopt(sp.repo);
                    self.space.config.store(None);
                    *self.space.dlq.lock() = sp.dlq;
                } else {
                    // A restored tenant is sharded per its effective
                    // config: its own override when the document carries
                    // one, the (already loaded) global config otherwise.
                    let shards = sp
                        .config
                        .as_ref()
                        .map(|c| c.repo_shards)
                        .unwrap_or_else(|| self.config.read().repo_shards);
                    let space = self.make_space(&sp.name, shards);
                    space.prov.store(sp.prov);
                    space.repo.adopt(sp.repo);
                    space.config.store(sp.config);
                    *space.dlq.lock() = sp.dlq;
                    tenants.insert(sp.name, space);
                }
            }
            // One publish replaces the whole tenant map atomically.
            self.tenants.store(tenants);
        } else {
            // v1: default namespace only.
            for sp in loaded.spaces {
                self.space.prov.store(sp.prov);
                self.space.repo.adopt(sp.repo);
            }
        }
        self.tick.store(loaded.tick, Ordering::SeqCst);
        self.cand_counter.store(loaded.cand, Ordering::SeqCst);
        self.journal.sync_counters_cache(loaded.tick, loaded.cand);
        // Sequence numbers stay monotonic across restores: never hand
        // out a seq a base checkpoint already covers.
        self.journal.advance_seq(loaded.seq);
        Ok(loaded.seq)
    }

    fn input_versions(&self, inputs: &[String]) -> Vec<(String, u64)> {
        inputs
            .iter()
            .map(|p| {
                let v = self.engine.dfs().status(p).map(|s| s.version).unwrap_or(0);
                (p.clone(), v)
            })
            .collect()
    }
}

fn side_bytes(result: &JobResult, path: &str) -> u64 {
    result
        .side_outputs
        .iter()
        .position(|p| p == path)
        .and_then(|i| result.counters.side_output_bytes.get(i).copied())
        .unwrap_or(0)
}

/// Node feeding the Store with the given path.
fn find_store_tip(plan: &PhysicalPlan, path: &str) -> Result<restore_dataflow::physical::NodeId> {
    use restore_dataflow::physical::PhysicalOp;
    for s in plan.stores() {
        if matches!(plan.op(s), PhysicalOp::Store { path: p } if p == path) {
            return Ok(plan.inputs(s)[0]);
        }
    }
    Err(Error::Plan(format!("no Store of {path:?} in plan")))
}

/// Equation (1) over the compiled workflow's dependency DAG.
fn equation_one_total(wf: &CompiledWorkflow, et: &[f64]) -> Result<f64> {
    let order = wf.topo_order()?;
    let mut totals = vec![0.0f64; et.len()];
    for i in order {
        let slowest = wf.jobs[i].deps.iter().map(|&d| totals[d]).fold(0.0f64, f64::max);
        totals[i] = et[i] + slowest;
    }
    Ok(totals.iter().copied().fold(0.0, f64::max))
}

fn resolve_alias(aliases: &HashMap<String, String>, path: &str) -> String {
    let mut cur = path.to_string();
    let mut hops = 0;
    while let Some(next) = aliases.get(&cur) {
        cur = next.clone();
        hops += 1;
        if hops > aliases.len() {
            break;
        }
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use restore_dfs::DfsConfig;
    use restore_mapreduce::{ClusterConfig, EngineConfig};

    /// Join then group: compiles to a two-job workflow whose second job
    /// loads the first job's temporary output.
    fn two_job_query(out: &str) -> String {
        format!(
            "A = load '/data/pv' as (user, revenue:int);
             B = load '/data/users' as (name, city);
             C = join B by name, A by user;
             D = group C by $0;
             E = foreach D generate group, SUM(C.revenue);
             store E into '{out}';"
        )
    }

    fn engine() -> Engine {
        let dfs = Dfs::new(DfsConfig::small_for_tests());
        dfs.write_all("/data/pv", b"alice\t4\nbob\t7\nalice\t1\n").unwrap();
        dfs.write_all("/data/users", b"alice\tkitchener\nbob\ttoronto\n").unwrap();
        Engine::new(dfs, ClusterConfig::default(), EngineConfig::default())
    }

    /// Regression for the match-then-evict race (ROADMAP "entry pinning
    /// for eviction under concurrency"): session T1 matches a repository
    /// entry during phase 1, then — before T1 executes the jobs that Load
    /// the matched output — session T2's eviction sweep evicts that
    /// entry. Without pins the sweep deleted the output file and T1
    /// failed with `FileNotFound`; with pins the file deletion is
    /// deferred until T1's workflow drops its pins.
    #[test]
    fn pinned_match_survives_concurrent_eviction_sweep() {
        let config = ReStoreConfig {
            selection: SelectionPolicy { eviction_window: Some(1), ..Default::default() },
            ..Default::default()
        };
        let rs = ReStore::new(engine(), config);

        // Cold run at tick 1 registers the join job's intermediate output.
        rs.execute_query(&two_job_query("/out/cold"), "/wf/cold").unwrap();
        assert!(!rs.repository().is_empty());

        // T1 runs phase 1 of its first wave: the join job whole-job
        // matches a stored entry and is skipped, pinning the reused path.
        let wf = restore_dataflow::compile(&two_job_query("/out/warm"), "/wf/warm").unwrap();
        let space = rs.space_for(None);
        let mut pins = PinGuard::new(space.clone(), rs.engine().dfs().clone());
        let mut aliases = HashMap::new();
        let mut rewrites = Vec::new();
        let cfg = rs.config();
        let prep0 = rs
            .prepare_job(&space, None, &wf, 0, 2, &cfg, &mut aliases, &mut rewrites, &mut pins)
            .unwrap();
        let Prepared::Skipped { dst } = prep0 else {
            panic!("join job should be answered whole from the repository")
        };
        let reused = resolve_alias(&aliases, &dst);
        assert!(rs.engine().dfs().exists(&reused));
        assert!(space.pins.is_pinned(&reused));

        // T2's sweep far outside the window evicts every entry while T1
        // sits between match and execution.
        let evicted = cfg.selection.sweep(&space.repo, rs.engine().dfs(), &space.pins, 99);
        assert!(!evicted.is_empty());
        assert_eq!(space.repo.len(), 0);

        // The pinned output survived the sweep (the old code deleted it
        // here, and T1's group job then failed with FileNotFound)…
        assert!(rs.engine().dfs().exists(&reused), "pinned output must survive the sweep");

        // …so T1's second wave executes successfully against it.
        let prep1 = rs
            .prepare_job(&space, None, &wf, 1, 2, &cfg, &mut aliases, &mut rewrites, &mut pins)
            .unwrap();
        let Prepared::Run(job) = prep1 else { panic!("group job should execute") };
        let results = rs.run_wave(std::slice::from_ref(&job), false).unwrap();
        assert_eq!(results.len(), 1);

        // Dropping the workflow's pins performs the deferred deletion.
        drop(pins);
        assert!(!rs.engine().dfs().exists(&reused), "deferred deletion runs at last unpin");
    }

    /// A snapshot taken while a deferred deletion is pending must not
    /// serialize the condemned path: its file still exists at save time
    /// but is deleted the moment the pinning workflow finishes, so a
    /// restarted session would hold dangling references.
    #[test]
    fn snapshot_excludes_paths_with_pending_deferred_deletion() {
        let config = ReStoreConfig {
            selection: SelectionPolicy { eviction_window: Some(1), ..Default::default() },
            ..Default::default()
        };
        let rs = ReStore::new(engine(), config);
        rs.execute_query(&two_job_query("/out/cold"), "/wf/cold").unwrap();

        // T1 matches and pins the stored join output.
        let wf = restore_dataflow::compile(&two_job_query("/out/warm"), "/wf/warm").unwrap();
        let space = rs.space_for(None);
        let mut pins = PinGuard::new(space.clone(), rs.engine().dfs().clone());
        let mut aliases = HashMap::new();
        let mut rewrites = Vec::new();
        let cfg = rs.config();
        let prep = rs
            .prepare_job(&space, None, &wf, 0, 2, &cfg, &mut aliases, &mut rewrites, &mut pins)
            .unwrap();
        let Prepared::Skipped { dst } = prep else { panic!("join job should be skipped") };
        let reused = resolve_alias(&aliases, &dst);

        // Before any eviction, the path is serialized (control).
        assert!(rs.save_state().contains(&format!("{reused:?}")));

        // T2's sweep evicts everything; the pinned file's deletion is
        // deferred, so it still exists on the DFS…
        cfg.selection.sweep(&space.repo, rs.engine().dfs(), &space.pins, 99);
        assert!(rs.engine().dfs().exists(&reused));

        // …but a snapshot taken now must exclude it everywhere.
        let state = rs.save_state();
        assert!(
            !state.contains(&format!("{reused:?}")),
            "a condemned path must not enter the snapshot:\n{state}"
        );
        let resumed = ReStore::new(engine(), ReStoreConfig::default());
        resumed.load_state(&state).unwrap();
        resumed.with_provenance_as(None, |prov| assert!(!prov.contains(&reused)));
        resumed.with_repository_as(None, |repo| {
            assert!(repo.entries().iter().all(|e| e.output_path != reused));
        });

        // The legacy writer applies the same exclusion.
        assert!(!rs.save_state_v1().contains(&format!("{reused:?}")));
        drop(pins);
        assert!(!rs.engine().dfs().exists(&reused), "deferred deletion still fires");
    }

    /// Paths whose files are already gone from the DFS (deleted out of
    /// band, e.g. by an operator) are likewise excluded from snapshots.
    #[test]
    fn snapshot_excludes_paths_missing_from_the_dfs() {
        let rs = ReStore::new(engine(), ReStoreConfig::default());
        rs.execute_query(&two_job_query("/out/cold"), "/wf/cold").unwrap();
        let stored: Vec<String> =
            rs.repository().entries().iter().map(|e| e.output_path.clone()).collect();
        assert!(!stored.is_empty());
        let victim = stored[0].clone();
        rs.engine().dfs().delete(&victim);
        let state = rs.save_state();
        assert!(
            !state.contains(&format!("{victim:?}")),
            "a path with no file behind it must not enter the snapshot"
        );
        // The snapshot still loads and serves the surviving entries.
        let resumed = ReStore::new(engine(), ReStoreConfig::default());
        resumed.load_state(&state).unwrap();
        resumed.with_repository_as(None, |repo| {
            assert_eq!(repo.len(), stored.len() - 1);
        });
    }

    /// A path handed to the caller as `final_output` must survive the
    /// pin release even when a mid-flight sweep deferred its deletion:
    /// deleting it would hand the caller a dangling result.
    #[test]
    fn preserved_final_output_survives_deferred_deletion() {
        let config = ReStoreConfig {
            selection: SelectionPolicy { eviction_window: Some(1), ..Default::default() },
            ..Default::default()
        };
        let rs = ReStore::new(engine(), config);
        rs.execute_query(&two_job_query("/out/cold"), "/wf/cold").unwrap();

        let wf = restore_dataflow::compile(&two_job_query("/out/warm"), "/wf/warm").unwrap();
        let space = rs.space_for(None);
        let mut pins = PinGuard::new(space.clone(), rs.engine().dfs().clone());
        let mut aliases = HashMap::new();
        let mut rewrites = Vec::new();
        let cfg = rs.config();
        let prep0 = rs
            .prepare_job(&space, None, &wf, 0, 2, &cfg, &mut aliases, &mut rewrites, &mut pins)
            .unwrap();
        let Prepared::Skipped { dst } = prep0 else { panic!("join job should be skipped") };
        let reused = resolve_alias(&aliases, &dst);

        // Sweep evicts the entry and defers the pinned file's deletion —
        // but this workflow hands `reused` to its caller.
        cfg.selection.sweep(&space.repo, rs.engine().dfs(), &space.pins, 99);
        pins.preserve(&reused);
        drop(pins);
        assert!(
            rs.engine().dfs().exists(&reused),
            "a preserved final output is orphaned, never deleted under the reader"
        );
    }
}
