//! The ReStore driver — §6.2's extension of Pig's `JobControlCompiler`.
//!
//! For each job of a workflow, in dependency order: (1) rewrite Loads of
//! outputs that earlier skipped jobs aliased away, (2) lineage-expand the
//! plan and repeatedly match/rewrite it against the repository, (3) skip
//! the job entirely when rewriting reduced it to a pure copy, (4) inject
//! sub-job Stores per the active heuristic, (5) execute on the MapReduce
//! engine, (6) register outputs, plans, and statistics in the repository
//! and the provenance table, and (7) apply the §5 selection rules.

use crate::enumerator::{inject_subjob_stores, Candidate, Heuristic};
use crate::provenance::Provenance;
use crate::repository::{RepoStats, Repository};
use crate::rewriter::{apply_aliases, identity_copy, rewrite};
use crate::selector::SelectionPolicy;
use restore_common::{Error, Result};
use restore_dataflow::exec::{job_io, job_spec_for_plan};
use restore_dataflow::mr_compiler::CompiledWorkflow;
use restore_dataflow::physical::PhysicalPlan;
use restore_mapreduce::{Engine, JobResult};
use std::collections::HashMap;

/// ReStore configuration.
#[derive(Debug, Clone)]
pub struct ReStoreConfig {
    /// Rewrite incoming jobs to reuse repository outputs (§3).
    pub reuse_enabled: bool,
    /// Sub-job materialization heuristic (§4).
    pub heuristic: Heuristic,
    /// Keep/evict policy (§5).
    pub selection: SelectionPolicy,
    /// DFS directory for materialized sub-job outputs.
    pub repo_prefix: String,
    /// Delete inter-job temporary files after the workflow finishes —
    /// "the current practice" ReStore abolishes. Enabled for plain-Pig
    /// baselines, disabled when ReStore manages outputs.
    pub delete_tmp: bool,
    /// Register the workflow's *final* outputs as whole-job repository
    /// entries. The paper's §7.1/§7.2 experiments reuse only intermediate
    /// job outputs and sub-jobs — rerunning a query re-executes its final
    /// job — so the experiment harness sets this to `false`. Leaving it
    /// `true` additionally answers repeated identical queries entirely
    /// from the repository.
    pub register_final_outputs: bool,
}

impl Default for ReStoreConfig {
    fn default() -> Self {
        ReStoreConfig {
            reuse_enabled: true,
            heuristic: Heuristic::Aggressive,
            selection: SelectionPolicy::default(),
            repo_prefix: "/restore".to_string(),
            delete_tmp: false,
            register_final_outputs: true,
        }
    }
}

impl ReStoreConfig {
    /// Plain Pig-on-Hadoop baseline: no reuse, no sub-jobs, temporary
    /// files deleted after the workflow.
    pub fn baseline() -> Self {
        ReStoreConfig {
            reuse_enabled: false,
            heuristic: Heuristic::None,
            delete_tmp: true,
            ..Default::default()
        }
    }
}

/// Record of one applied rewrite.
#[derive(Debug, Clone)]
pub struct RewriteEvent {
    /// Workflow job index that was rewritten.
    pub job: usize,
    /// Repository entry whose output was reused.
    pub entry_id: u64,
    /// Stored output path spliced into the plan.
    pub reused_path: String,
    /// The rewrite eliminated the entire job.
    pub whole_job: bool,
}

/// Result of executing one workflow through ReStore.
#[derive(Debug)]
pub struct QueryExecution {
    /// Modeled completion time per Equation (1), seconds.
    pub total_s: f64,
    /// Per-executed-job results (skipped jobs have no entry).
    pub job_results: Vec<JobResult>,
    /// Jobs eliminated by whole-job reuse.
    pub jobs_skipped: usize,
    /// Applied rewrites, in application order.
    pub rewrites: Vec<RewriteEvent>,
    /// Bytes written by injected sub-job Stores during this execution.
    pub stored_candidate_bytes: u64,
    /// Resolved path of the workflow's final output (after aliasing).
    pub final_output: String,
    /// Candidate sub-jobs registered in the repository.
    pub candidates_stored: usize,
}

/// Summary of the repository and reuse activity (see [`ReStore::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReStoreStats {
    pub repository_entries: usize,
    /// Logical bytes of stored outputs across all entries.
    pub stored_bytes: u64,
    /// Total rewrites served by repository entries.
    pub total_uses: u64,
    /// Entries that have never been reused.
    pub never_used: usize,
    /// Queries executed through this driver.
    pub queries_executed: u64,
    pub provenance_entries: usize,
}

/// The ReStore system.
///
/// ```
/// use restore_core::{ReStore, ReStoreConfig};
/// use restore_dfs::{Dfs, DfsConfig};
/// use restore_mapreduce::{ClusterConfig, Engine, EngineConfig};
///
/// let dfs = Dfs::new(DfsConfig { nodes: 3, block_size: 256, replication: 2, node_capacity: None });
/// dfs.write_all("/data/e", b"alice\t4\nbob\t7\nalice\t1\n").unwrap();
/// let engine = Engine::new(dfs, ClusterConfig::default(), EngineConfig::default());
/// let mut restore = ReStore::new(engine, ReStoreConfig::default());
///
/// let q = "A = load '/data/e' as (user, n:int);
///          G = group A by user;
///          R = foreach G generate group, SUM(A.n);
///          store R into '/out/sums';";
/// let first = restore.execute_query(q, "/wf/1").unwrap();
/// let rerun = restore.execute_query(q, "/wf/2").unwrap();
/// // The rerun is answered from the repository: no job executes.
/// assert_eq!(rerun.jobs_skipped, 1);
/// assert!(rerun.total_s < first.total_s);
/// ```
pub struct ReStore {
    engine: Engine,
    repo: Repository,
    prov: Provenance,
    config: ReStoreConfig,
    /// Query counter = the logical clock for usage statistics.
    tick: u64,
    cand_counter: u64,
}

impl ReStore {
    pub fn new(engine: Engine, config: ReStoreConfig) -> Self {
        ReStore {
            engine,
            repo: Repository::new(),
            prov: Provenance::new(),
            config,
            tick: 0,
            cand_counter: 0,
        }
    }

    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    pub fn repository(&self) -> &Repository {
        &self.repo
    }

    pub fn repository_mut(&mut self) -> &mut Repository {
        &mut self.repo
    }

    pub fn config(&self) -> &ReStoreConfig {
        &self.config
    }

    /// Change configuration between queries (experiments flip reuse and
    /// heuristics while keeping the warmed repository).
    pub fn set_config(&mut self, config: ReStoreConfig) {
        self.config = config;
    }

    /// Compile and execute a query text.
    pub fn execute_query(&mut self, text: &str, out_prefix: &str) -> Result<QueryExecution> {
        let wf = restore_dataflow::compile(text, out_prefix)?;
        self.execute_workflow(wf)
    }

    /// Execute a compiled workflow of MapReduce jobs through ReStore.
    pub fn execute_workflow(&mut self, wf: CompiledWorkflow) -> Result<QueryExecution> {
        self.tick += 1;

        // Eviction sweep (§5 rules 3–4) runs *before* matching so stale
        // entries (expired window, modified/deleted inputs) are never
        // reused in this workflow.
        let policy = self.config.selection.clone();
        policy.sweep(&mut self.repo, self.engine.dfs(), self.tick);
        let dead: Vec<String> = {
            let dfs = self.engine.dfs();
            self.prov
                .iter_paths()
                .filter(|p| !dfs.exists(p))
                .map(|p| p.to_string())
                .collect()
        };
        for p in dead {
            self.prov.forget(&p);
        }

        let n = wf.jobs.len();
        let order = topo_order(&wf)?;

        let mut aliases: HashMap<String, String> = HashMap::new();
        let mut et = vec![0.0f64; n];
        let mut job_results = Vec::new();
        let mut rewrites = Vec::new();
        let mut jobs_skipped = 0;
        let mut stored_candidate_bytes = 0u64;
        let mut candidates_stored = 0usize;
        let mut final_output = String::new();

        for idx in order {
            let mut plan = wf.jobs[idx].plan.clone();
            apply_aliases(&mut plan, &aliases);

            // ---- Phase 1: match and rewrite (§3) ----
            let mut job_rewrites = 0usize;
            if self.config.reuse_enabled {
                // Entries whose rewrite made no structural progress (they
                // match only lineage the plan already loads) are skipped
                // on the rescan; progress clears the set.
                let mut unproductive: std::collections::HashSet<u64> =
                    std::collections::HashSet::new();
                let budget = 2 * plan.len() + 4 + 2 * self.repo.len();
                for _ in 0..budget {
                    let expanded = self.prov.expand(&plan);
                    let Some((entry_id, m)) = self
                        .repo
                        .find_first_match_excluding(&expanded.plan, &unproductive)
                    else {
                        break;
                    };
                    let reused_path =
                        self.repo.get(entry_id).expect("matched entry").output_path.clone();
                    let mut exp = expanded;
                    let remap = rewrite(&mut exp.plan, &m, &reused_path);
                    // Translate expansion tips through the GC remap; an
                    // expansion whose tip vanished was consumed by the
                    // matched region and needs no collapsing.
                    exp.expansions.retain_mut(|e| {
                        match remap.get(e.tip.index()).copied().flatten() {
                            Some(t) => {
                                e.tip = t;
                                true
                            }
                            None => false,
                        }
                    });
                    let before_sig = plan.signature();
                    let collapsed = exp.collapse_unused();
                    if collapsed.signature() == before_sig {
                        // No structural progress: try the next entry.
                        unproductive.insert(entry_id);
                        continue;
                    }
                    unproductive.clear();
                    plan = collapsed;
                    self.repo.note_use(entry_id, self.tick);
                    rewrites.push(RewriteEvent {
                        job: idx,
                        entry_id,
                        reused_path,
                        whole_job: false,
                    });
                    job_rewrites += 1;
                }
            }

            // ---- Phase 2: whole-job elimination ----
            if job_rewrites > 0 {
                if let Some((src, dst)) = identity_copy(&plan) {
                    aliases.insert(dst.clone(), src);
                    jobs_skipped += 1;
                    if let Some(ev) = rewrites.last_mut() {
                        ev.whole_job = true;
                    }
                    et[idx] = 0.0;
                    final_output = resolve_alias(&aliases, &dst);
                    continue;
                }
            }

            // ---- Phase 3: sub-job enumeration (§4) ----
            let candidates: Vec<Candidate> = if self.config.heuristic != Heuristic::None {
                let prov = &self.prov;
                let repo = &self.repo;
                let prefix = self.config.repo_prefix.clone();
                let counter = &mut self.cand_counter;
                inject_subjob_stores(
                    &mut plan,
                    self.config.heuristic,
                    move || {
                        *counter += 1;
                        format!("{prefix}/sub-{counter}")
                    },
                    |candidate| {
                        // Skip candidates whose (base-level) plan is
                        // already stored: re-materializing them would pay
                        // the Store cost for nothing.
                        let base = prov.expand(candidate).plan;
                        repo.contains_plan(&base).is_some()
                    },
                )
            } else {
                Vec::new()
            };

            // ---- Phase 4: execute ----
            let spec = job_spec_for_plan(&plan, &format!("q{}-job{idx}", self.tick))?;
            let result = self.engine.run(&spec)?;
            et[idx] = result.times.total_s;
            final_output = result.output.clone();

            // ---- Phase 5: register outputs (§2.2) ----
            let manage_outputs =
                self.config.reuse_enabled || self.config.heuristic != Heuristic::None;
            if manage_outputs {
                let io = job_io(&plan)?;
                let input_files = self.input_versions(&io.inputs);
                // Final outputs (not inter-job temporaries) are only
                // registered when configured; intermediate outputs are
                // always candidates for whole-job reuse (§2.1).
                let is_intermediate = wf.tmp_paths.contains(&io.main_output);
                let register_main =
                    self.config.register_final_outputs || is_intermediate;

                // Whole-job entry: the main output with the job's plan.
                let whole_prefix = plan
                    .prefix_plan(find_store_tip(&plan, &io.main_output)?, &io.main_output);
                let whole_base = self.prov.expand(&whole_prefix).plan;
                let whole_stats = RepoStats {
                    input_bytes: result.counters.map_input_bytes,
                    output_bytes: result.counters.output_bytes,
                    job_time_s: result.times.total_s,
                    avg_map_time_s: result.times.avg_map_task_s,
                    avg_reduce_time_s: result.times.avg_reduce_task_s,
                    use_count: 0,
                    last_used: 0,
                    created: self.tick,
                    input_files: input_files.clone(),
                };
                if register_main && self.config.selection.should_keep(&whole_stats) {
                    self.prov.register(&io.main_output, whole_base.clone());
                    self.repo.insert(whole_base, &io.main_output, whole_stats);
                }

                // Candidate sub-job entries. A candidate that aliases the
                // job's final output follows the same final-output policy.
                for cand in &candidates {
                    if cand.already_stored
                        && cand.store_path == io.main_output
                        && !register_main
                    {
                        continue;
                    }
                    let bytes = if cand.already_stored {
                        if cand.store_path == io.main_output {
                            result.counters.output_bytes
                        } else {
                            side_bytes(&result, &cand.store_path)
                        }
                    } else {
                        side_bytes(&result, &cand.store_path)
                    };
                    stored_candidate_bytes +=
                        if cand.already_stored { 0 } else { bytes };
                    let stats = RepoStats {
                        input_bytes: result.counters.map_input_bytes,
                        output_bytes: bytes,
                        job_time_s: result.times.total_s,
                        avg_map_time_s: result.times.avg_map_task_s,
                        avg_reduce_time_s: result.times.avg_reduce_task_s,
                        use_count: 0,
                        last_used: 0,
                        created: self.tick,
                        input_files: input_files.clone(),
                    };
                    let base = self.prov.expand(&cand.prefix).plan;
                    if self.config.selection.should_keep(&stats) {
                        if !self.prov.contains(&cand.store_path) {
                            self.prov.register(&cand.store_path, base.clone());
                        }
                        self.repo.insert(base, &cand.store_path, stats);
                        candidates_stored += 1;
                    } else if !cand.already_stored {
                        // Rejected by rules 1–2: drop the materialized file.
                        self.engine.dfs().delete(&cand.store_path);
                    }
                }
            }
            job_results.push(result);
        }

        // ---- Phase 6: plain-Pig tmp cleanup ----
        if self.config.delete_tmp {
            for tmp in &wf.tmp_paths {
                self.engine.dfs().delete(tmp);
            }
        }

        let total_s = equation_one_total(&wf, &et)?;
        Ok(QueryExecution {
            total_s,
            job_results,
            jobs_skipped,
            rewrites,
            stored_candidate_bytes,
            final_output,
            candidates_stored,
        })
    }

    /// Dry-run a query: compile it and report what the repository would
    /// answer — without executing anything or mutating any state. The
    /// report lists, per job, the matches the §3 scan finds and whether
    /// the whole job would be eliminated.
    pub fn explain_query(&self, text: &str, out_prefix: &str) -> Result<String> {
        let wf = restore_dataflow::compile(text, out_prefix)?;
        let mut report = String::new();
        report.push_str(&format!(
            "workflow: {} job(s); repository: {} entr{}\n",
            wf.jobs.len(),
            self.repo.len(),
            if self.repo.len() == 1 { "y" } else { "ies" },
        ));
        for (idx, job) in wf.jobs.iter().enumerate() {
            report.push_str(&format!(
                "job {idx} ({} operators{}):\n",
                job.plan.effective_len(),
                if job.deps.is_empty() {
                    String::new()
                } else {
                    format!(", depends on {:?}", job.deps)
                }
            ));
            // Same match loop as execution, against a scratch plan.
            let mut plan = job.plan.clone();
            let mut unproductive: std::collections::HashSet<u64> =
                std::collections::HashSet::new();
            let mut any = false;
            for _ in 0..(2 * plan.len() + 4 + 2 * self.repo.len()) {
                let expanded = self.prov.expand(&plan);
                let Some((entry_id, m)) = self
                    .repo
                    .find_first_match_excluding(&expanded.plan, &unproductive)
                else {
                    break;
                };
                let entry = self.repo.get(entry_id).expect("matched entry");
                let before_sig = plan.signature();
                let mut exp = expanded;
                let remap = rewrite(&mut exp.plan, &m, &entry.output_path);
                exp.expansions.retain_mut(|e| {
                    match remap.get(e.tip.index()).copied().flatten() {
                        Some(t) => {
                            e.tip = t;
                            true
                        }
                        None => false,
                    }
                });
                let collapsed = exp.collapse_unused();
                if collapsed.signature() == before_sig {
                    unproductive.insert(entry_id);
                    continue;
                }
                unproductive.clear();
                report.push_str(&format!(
                    "  would reuse entry #{} -> {} ({}, used {} time(s))\n",
                    entry_id,
                    entry.output_path,
                    restore_common::human_bytes(entry.stats.output_bytes),
                    entry.stats.use_count,
                ));
                any = true;
                plan = collapsed;
            }
            if let Some((src, _)) = identity_copy(&plan) {
                report.push_str(&format!(
                    "  whole job answered from {src}; job would be skipped\n"
                ));
            } else if !any {
                report.push_str("  no matches; job executes in full\n");
            }
        }
        Ok(report)
    }

    /// Point-in-time summary of the repository and reuse activity.
    pub fn stats(&self) -> ReStoreStats {
        let entries = self.repo.entries();
        ReStoreStats {
            repository_entries: entries.len(),
            stored_bytes: self.repo.stored_bytes(),
            total_uses: entries.iter().map(|e| e.stats.use_count).sum(),
            never_used: entries.iter().filter(|e| e.stats.use_count == 0).count(),
            queries_executed: self.tick,
            provenance_entries: self.prov.len(),
        }
    }

    /// Serialize the full ReStore session state: repository, provenance,
    /// and counters. Paired with [`ReStore::load_state`], this lets a new
    /// process resume with everything a previous session learned (§2.2's
    /// repository is persistent in spirit; the DFS holds the outputs).
    pub fn save_state(&self) -> String {
        format!(
            "restore-state v1\ntick {}\ncand {}\n--provenance--\n{}--repository--\n{}",
            self.tick,
            self.cand_counter,
            self.prov.save(),
            self.repo.save(),
        )
    }

    /// Restore a session serialized by [`ReStore::save_state`]. The DFS
    /// handle (and the stored output files in it) come from the engine
    /// this instance was built with.
    pub fn load_state(&mut self, text: &str) -> Result<()> {
        let header_err = || Error::Repository("malformed restore-state".into());
        let mut lines = text.lines();
        if lines.next() != Some("restore-state v1") {
            return Err(header_err());
        }
        let tick: u64 = lines
            .next()
            .and_then(|l| l.strip_prefix("tick "))
            .and_then(|v| v.parse().ok())
            .ok_or_else(header_err)?;
        let cand: u64 = lines
            .next()
            .and_then(|l| l.strip_prefix("cand "))
            .and_then(|v| v.parse().ok())
            .ok_or_else(header_err)?;
        if lines.next() != Some("--provenance--") {
            return Err(header_err());
        }
        let rest: Vec<&str> = lines.collect();
        let split = rest
            .iter()
            .position(|&l| l == "--repository--")
            .ok_or_else(header_err)?;
        let prov_text = rest[..split].join("\n");
        let repo_text = rest[split + 1..].join("\n");
        self.prov = Provenance::load(&prov_text)?;
        self.repo = Repository::load(&repo_text)?;
        self.tick = tick;
        self.cand_counter = cand;
        Ok(())
    }

    fn input_versions(&self, inputs: &[String]) -> Vec<(String, u64)> {
        inputs
            .iter()
            .map(|p| {
                let v = self.engine.dfs().status(p).map(|s| s.version).unwrap_or(0);
                (p.clone(), v)
            })
            .collect()
    }
}

fn side_bytes(result: &JobResult, path: &str) -> u64 {
    result
        .side_outputs
        .iter()
        .position(|p| p == path)
        .and_then(|i| result.counters.side_output_bytes.get(i).copied())
        .unwrap_or(0)
}

/// Node feeding the Store with the given path.
fn find_store_tip(
    plan: &PhysicalPlan,
    path: &str,
) -> Result<restore_dataflow::physical::NodeId> {
    use restore_dataflow::physical::PhysicalOp;
    for s in plan.stores() {
        if matches!(plan.op(s), PhysicalOp::Store { path: p } if p == path) {
            return Ok(plan.inputs(s)[0]);
        }
    }
    Err(Error::Plan(format!("no Store of {path:?} in plan")))
}

fn topo_order(wf: &CompiledWorkflow) -> Result<Vec<usize>> {
    let n = wf.jobs.len();
    let mut done = vec![false; n];
    let mut order = Vec::with_capacity(n);
    while order.len() < n {
        let mut advanced = false;
        for i in 0..n {
            if !done[i] && wf.jobs[i].deps.iter().all(|&d| done[d]) {
                done[i] = true;
                order.push(i);
                advanced = true;
            }
        }
        if !advanced {
            return Err(Error::Workflow("cycle in compiled workflow".into()));
        }
    }
    Ok(order)
}

/// Equation (1) over the compiled workflow's dependency DAG.
fn equation_one_total(wf: &CompiledWorkflow, et: &[f64]) -> Result<f64> {
    let order = topo_order(wf)?;
    let mut totals = vec![0.0f64; et.len()];
    for i in order {
        let slowest = wf.jobs[i]
            .deps
            .iter()
            .map(|&d| totals[d])
            .fold(0.0f64, f64::max);
        totals[i] = et[i] + slowest;
    }
    Ok(totals.iter().copied().fold(0.0, f64::max))
}

fn resolve_alias(aliases: &HashMap<String, String>, path: &str) -> String {
    let mut cur = path.to_string();
    let mut hops = 0;
    while let Some(next) = aliases.get(&cur) {
        cur = next.clone();
        hops += 1;
        if hops > aliases.len() {
            break;
        }
    }
    cur
}
