//! Per-tenant failure policy: what the serving layer does when a
//! submission's execution fails.
//!
//! The policy is **configuration**, carried on [`ReStoreConfig`] like
//! every other per-tenant knob (heuristic, §5 selection, shard count):
//! a tenant's override travels through `set_config_as`, is serialized
//! in `restore-state` dumps, journaled in `tenant-config` records, and
//! ships to warm standbys — so a promoted standby enforces the same
//! policy its primary did. The *enforcement machinery* (retry
//! scheduling, the circuit breaker, the dead-letter queue) lives in the
//! service layer; this module only defines the knobs and the
//! deterministic backoff arithmetic both layers agree on.
//!
//! The default policy is [`FailureDisposition::FailFast`] with the
//! breaker disabled: a failed submission surfaces its error once,
//! exactly as earlier releases behaved — byte-identical results for
//! tenants that never opt in.
//!
//! [`ReStoreConfig`]: crate::ReStoreConfig

use std::time::Duration;

/// What to do with a submission whose execution attempt failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureDisposition {
    /// Surface the error immediately: no retries, no dead-letter queue.
    /// The failure still counts toward the tenant's breaker window.
    /// This is the default — the exact behavior of earlier releases.
    FailFast,
    /// Retry up to [`FailurePolicy::max_retries`] times with
    /// exponential backoff; when retries are exhausted, surface the
    /// last error.
    Retry,
    /// Retry up to [`FailurePolicy::max_retries`] times; when retries
    /// are exhausted, park the submission in the tenant's dead-letter
    /// queue (journal-durable, inspectable, re-drivable) *and* surface
    /// the last error to the waiting ticket.
    Dlq,
    /// Discard the failure: no retries, no dead-letter queue, and the
    /// outcome does **not** feed the breaker window (a tenant
    /// explicitly declaring its traffic best-effort must not trip its
    /// own breaker). The error is still surfaced to the ticket — a
    /// waiter must always learn its submission's fate.
    Drop,
}

/// Per-tenant failure policy (see the module docs). Flat knobs so the
/// `restore-state` config codec serializes them like every other
/// configuration field, in fixed order.
#[derive(Debug, Clone, PartialEq)]
pub struct FailurePolicy {
    /// Disposition of a failed attempt.
    pub on_failure: FailureDisposition,
    /// Bounded retry budget for [`FailureDisposition::Retry`] /
    /// [`FailureDisposition::Dlq`] (ignored by `FailFast` / `Drop`).
    pub max_retries: u32,
    /// First-retry delay, milliseconds.
    pub retry_backoff_base_ms: u64,
    /// Exponential growth factor between consecutive retries.
    pub retry_backoff_factor: f64,
    /// Upper bound on any single retry delay, milliseconds.
    pub retry_backoff_cap_ms: u64,
    /// Jitter fraction in `[0, 1]`: each delay is scaled by a
    /// deterministic factor in `[1 - jitter, 1 + jitter)` derived from
    /// the submission id, so retries de-correlate without a wall-clock
    /// RNG.
    pub retry_backoff_jitter: f64,
    /// Sliding window of recent attempt outcomes the breaker judges.
    pub failure_window: u32,
    /// Failures within the window that trip the breaker open.
    /// **0 disables the circuit breaker** (the default).
    pub failure_threshold: u32,
    /// How long an open breaker sheds before admitting half-open
    /// probes, milliseconds.
    pub breaker_cooldown_ms: u64,
    /// Probe budget while half-open: at most this many submissions are
    /// admitted concurrently to test the tenant's health.
    pub breaker_half_open_probes: u32,
    /// Probe successes that close the breaker again.
    pub breaker_success_threshold: u32,
    /// Upper bound on the tenant's dead-letter queue length. Admitting
    /// a new entry past the cap evicts the oldest first; each eviction
    /// is journaled as an ack so the cap survives recovery and
    /// replicates to standbys. **0 disables the cap** (the default —
    /// the unbounded behavior of earlier releases).
    pub dlq_max_entries: usize,
    /// Age bound on dead-letter entries, in driver ticks (the logical
    /// query clock every entry is stamped with). Entries older than
    /// this at admission time are expired with a journaled ack.
    /// **0 disables expiry** (the default).
    pub dlq_max_age_ticks: u64,
}

impl Default for FailurePolicy {
    fn default() -> Self {
        FailurePolicy {
            on_failure: FailureDisposition::FailFast,
            max_retries: 0,
            retry_backoff_base_ms: 25,
            retry_backoff_factor: 2.0,
            retry_backoff_cap_ms: 2_000,
            retry_backoff_jitter: 0.2,
            failure_window: 16,
            failure_threshold: 0,
            breaker_cooldown_ms: 1_000,
            breaker_half_open_probes: 2,
            breaker_success_threshold: 2,
            dlq_max_entries: 0,
            dlq_max_age_ticks: 0,
        }
    }
}

impl FailurePolicy {
    /// Is the circuit breaker active for this tenant?
    pub fn breaker_enabled(&self) -> bool {
        self.failure_threshold > 0
    }

    /// May a failed attempt be re-executed under this policy?
    pub fn retries(&self) -> bool {
        matches!(self.on_failure, FailureDisposition::Retry | FailureDisposition::Dlq)
            && self.max_retries > 0
    }

    /// The delay before retry number `attempt` (1-based: the delay
    /// between the initial attempt and the first retry is
    /// `backoff_for(1, …)`). Exponential in `attempt`, capped, and
    /// jittered **deterministically** from `salt` (the submission id):
    /// no wall-clock randomness, so tests and replays see identical
    /// schedules.
    pub fn backoff_for(&self, attempt: u32, salt: u64) -> Duration {
        let exp = attempt.saturating_sub(1).min(24);
        let raw = self.retry_backoff_base_ms as f64 * self.retry_backoff_factor.powi(exp as i32);
        let capped = raw.min(self.retry_backoff_cap_ms as f64);
        // FNV over (salt, attempt) → a unit fraction → a scale factor
        // in [1 - jitter, 1 + jitter).
        let mut bytes = [0u8; 12];
        bytes[..8].copy_from_slice(&salt.to_le_bytes());
        bytes[8..].copy_from_slice(&attempt.to_le_bytes());
        let unit = (crate::journal::fnv1a64(&bytes) >> 11) as f64 / (1u64 << 53) as f64;
        let jitter = self.retry_backoff_jitter.clamp(0.0, 1.0);
        let scaled = capped * (1.0 - jitter + 2.0 * jitter * unit);
        Duration::from_micros((scaled * 1_000.0).max(0.0) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_fail_fast_with_breaker_off() {
        let p = FailurePolicy::default();
        assert_eq!(p.on_failure, FailureDisposition::FailFast);
        assert_eq!(p.max_retries, 0);
        assert!(!p.breaker_enabled());
        assert!(!p.retries());
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = FailurePolicy {
            retry_backoff_base_ms: 10,
            retry_backoff_factor: 2.0,
            retry_backoff_cap_ms: 50,
            retry_backoff_jitter: 0.0,
            ..Default::default()
        };
        assert_eq!(p.backoff_for(1, 7), Duration::from_millis(10));
        assert_eq!(p.backoff_for(2, 7), Duration::from_millis(20));
        assert_eq!(p.backoff_for(3, 7), Duration::from_millis(40));
        assert_eq!(p.backoff_for(4, 7), Duration::from_millis(50), "capped");
        assert_eq!(p.backoff_for(30, 7), Duration::from_millis(50), "huge attempts stay capped");
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = FailurePolicy {
            retry_backoff_base_ms: 100,
            retry_backoff_jitter: 0.2,
            ..Default::default()
        };
        let a = p.backoff_for(1, 42);
        let b = p.backoff_for(1, 42);
        assert_eq!(a, b, "same (attempt, salt) → same delay");
        let lo = Duration::from_millis(80);
        let hi = Duration::from_millis(120);
        for salt in 0..64 {
            let d = p.backoff_for(1, salt);
            assert!(d >= lo && d <= hi, "delay {d:?} outside jitter band");
        }
        // Different salts actually de-correlate.
        assert!(
            (0..64).map(|s| p.backoff_for(1, s)).collect::<std::collections::HashSet<_>>().len()
                > 1
        );
    }
}
