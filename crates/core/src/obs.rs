//! Driver-side observability: the session's metric registry, the
//! per-stage span histograms, and the reuse-decision trace ring.
//!
//! Everything here is recorded through `restore-telemetry` primitives
//! whose hot-path record is a relaxed `fetch_add` — instrumenting the
//! §3 match loop does not add a lock, a CAS loop, or an RCU publish to
//! it (`prop_concurrent_repo` and the driver telemetry test pin the
//! zero-publish invariant with telemetry enabled).

use restore_telemetry::{Counter, Histogram, Registry, TraceRing};
use std::fmt;
use std::sync::Arc;

/// Events the reuse-decision trace keeps per session (oldest evicted
/// first). A workflow contributes one event per candidate considered,
/// so this comfortably holds the recent history `explain_last` and
/// `RestoreService::trace` inspect.
const TRACE_CAPACITY: usize = 4096;

/// Why the §3 match loop accepted or rejected one repository candidate.
#[derive(Debug, Clone, PartialEq)]
pub enum ReuseDecision {
    /// The entry matched and the rewrite made structural progress.
    Matched { entry_id: u64, shard: usize, reused_path: String },
    /// The entry's tip signature matched but the pairwise §3 traversal
    /// failed — a signature collision or partial overlap.
    CandidateFailedTraversal { entry_id: u64, shard: usize },
    /// The entry matched but rewriting made no structural progress
    /// (it matched only lineage the plan already loads); rule-2
    /// ordering moves the scan to the next candidate.
    RejectedUnproductive { entry_id: u64 },
    /// The entry vanished between match and pin — a concurrent §5
    /// sweep evicted it; the loop unpinned and rescanned.
    RejectedPinRevalidation { entry_id: u64 },
    /// No candidate survived: every input-plan tip signature missed
    /// the inverted index (or the sequential scan found nothing).
    NoCandidates { signatures_probed: usize },
}

impl fmt::Display for ReuseDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReuseDecision::Matched { entry_id, shard, reused_path } => {
                write!(f, "matched entry #{entry_id} (shard {shard}) -> {reused_path}")
            }
            ReuseDecision::CandidateFailedTraversal { entry_id, shard } => {
                write!(
                    f,
                    "candidate #{entry_id} (shard {shard}): tip signature hit, traversal failed"
                )
            }
            ReuseDecision::RejectedUnproductive { entry_id } => {
                write!(f, "candidate #{entry_id}: rejected, no structural progress (rule-2 rescan)")
            }
            ReuseDecision::RejectedPinRevalidation { entry_id } => {
                write!(f, "candidate #{entry_id}: rejected, evicted before pin revalidation")
            }
            ReuseDecision::NoCandidates { signatures_probed } => {
                write!(f, "no candidates ({signatures_probed} tip signature(s) probed)")
            }
        }
    }
}

/// One reuse-decision trace event: which workflow (tick), which
/// namespace, which job, and what was decided.
#[derive(Debug, Clone, PartialEq)]
pub struct ReuseTraceEvent {
    /// The workflow's tick (the driver's query clock).
    pub tick: u64,
    /// Tenant key (empty string = the default namespace).
    pub tenant: String,
    /// Workflow job index the decision was made for.
    pub job: usize,
    pub decision: ReuseDecision,
}

impl fmt::Display for ReuseTraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job {}: {}", self.job, self.decision)
    }
}

/// Span histograms of the driver's execute pipeline, one series per
/// stage so the exposition shows where wall-time goes.
pub(crate) struct StageHists {
    /// Per workflow: query text → compiled workflow.
    pub compile: Histogram,
    /// Per workflow: the pre-match §5 eviction sweep + dead-path probe.
    pub sweep: Histogram,
    /// Per wave: phase 1 (match + rewrite + enumerate + job specs).
    pub prepare: Histogram,
    /// Per job: one full §3 match loop.
    pub match_loop: Histogram,
    /// Per applied rewrite: splice + collapse.
    pub rewrite: Histogram,
    /// Per wave: phase 2 (engine execution).
    pub execute: Histogram,
    /// Per wave: phase 3 (registration batch + publish).
    pub register: Histogram,
    /// Per canonicalization sweep: analyzer pass latency, one series
    /// per pass in [`restore_dataflow::analyzer::PASS_NAMES`] order.
    pub canon: [Histogram; 3],
}

/// Span histograms inside one §3 match iteration.
pub(crate) struct MatchStageHists {
    /// Provenance lineage expansion + repository snapshot load.
    pub snapshot_load: Histogram,
    /// Inverted tip-signature index probe + candidate verification.
    pub index_probe: Histogram,
    /// Cross-shard pairwise §3 winner pass.
    pub winner_pass: Histogram,
    /// Pin + fresh-snapshot revalidation of the matched entry.
    pub pin_revalidate: Histogram,
}

/// The driver's observability state: one per [`crate::ReStore`].
pub(crate) struct Obs {
    pub registry: Arc<Registry>,
    pub stage: StageHists,
    pub match_stage: MatchStageHists,
    pub trace: TraceRing<ReuseTraceEvent>,
}

impl Obs {
    pub(crate) fn new() -> Self {
        let registry = Arc::new(Registry::new());
        let stage_hist = |stage: &str| {
            registry.histogram(
                "restore_stage_seconds",
                "Driver pipeline stage latency",
                &[("stage", stage)],
                1e-9,
            )
        };
        let match_hist = |stage: &str| {
            registry.histogram(
                "restore_match_stage_seconds",
                "Match-loop stage latency",
                &[("stage", stage)],
                1e-9,
            )
        };
        let canon_hist = |pass: &'static str| {
            registry.histogram(
                "restore_canon_stage_seconds",
                "Analyzer canonicalization pass latency",
                &[("pass", pass)],
                1e-9,
            )
        };
        let passes = restore_dataflow::analyzer::PASS_NAMES;
        Obs {
            stage: StageHists {
                compile: stage_hist("compile"),
                sweep: stage_hist("sweep"),
                prepare: stage_hist("prepare"),
                match_loop: stage_hist("match"),
                rewrite: stage_hist("rewrite"),
                execute: stage_hist("execute"),
                register: stage_hist("register"),
                canon: [canon_hist(passes[0]), canon_hist(passes[1]), canon_hist(passes[2])],
            },
            match_stage: MatchStageHists {
                snapshot_load: match_hist("snapshot_load"),
                index_probe: match_hist("index_probe"),
                winner_pass: match_hist("winner_pass"),
                pin_revalidate: match_hist("pin_revalidate"),
            },
            trace: TraceRing::new(TRACE_CAPACITY),
            registry,
        }
    }

    /// Record one canonicalization sweep's per-pass wall time, as
    /// returned by [`restore_dataflow::analyzer::canonicalize_timed`].
    pub(crate) fn record_canon(&self, timings: &[(&'static str, std::time::Duration); 3]) {
        for (hist, (_, d)) in self.stage.canon.iter().zip(timings) {
            hist.record(d.as_nanos() as u64);
        }
    }
}

/// Per-namespace match metrics, labeled by tenant. A namespace created
/// through the driver registers against the session registry; detached
/// namespaces (the empty placeholder `space_snapshot` hands out for
/// unknown tenants) carry unregistered handles that record into the
/// void.
#[derive(Default)]
pub(crate) struct SpaceMetrics {
    /// Match loops that applied at least one rewrite.
    pub hits: Counter,
    /// Match loops that applied none.
    pub misses: Counter,
    /// Full match-loop latency for this namespace.
    pub latency: Histogram,
    /// Winning matches per repository shard, indexed by shard.
    pub shard_hits: Vec<Counter>,
}

impl fmt::Debug for SpaceMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpaceMetrics")
            .field("hits", &self.hits.get())
            .field("misses", &self.misses.get())
            .finish_non_exhaustive()
    }
}

impl SpaceMetrics {
    pub(crate) fn registered(registry: &Registry, tenant: &str, shards: usize) -> Self {
        SpaceMetrics {
            hits: registry.counter(
                "restore_match_hits_total",
                "Match loops that applied at least one rewrite",
                &[("tenant", tenant)],
            ),
            misses: registry.counter(
                "restore_match_misses_total",
                "Match loops that applied no rewrite",
                &[("tenant", tenant)],
            ),
            latency: registry.histogram(
                "restore_match_seconds",
                "Full match-loop latency per job",
                &[("tenant", tenant)],
                1e-9,
            ),
            shard_hits: (0..shards)
                .map(|s| {
                    registry.counter(
                        "restore_match_shard_hits_total",
                        "Winning matches per repository shard",
                        &[("tenant", tenant), ("shard", &s.to_string())],
                    )
                })
                .collect(),
        }
    }

    /// Count a winning match on `shard` (no-op for out-of-range shards
    /// of a detached namespace).
    pub(crate) fn shard_hit(&self, shard: usize) {
        if let Some(c) = self.shard_hits.get(shard) {
            c.inc();
        }
    }
}
