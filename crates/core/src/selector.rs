//! Repository management — the keep/evict rules of §5.
//!
//! "A job output that is kept in the repository needs to satisfy two
//! properties: (1) replacing the job with a Load of the job output from
//! the distributed file system can reduce the execution time of a
//! workflow that contains this job, and (2) there are future workflows
//! that can reuse the output of this job."
//!
//! Rules 1–2 gate admission (checked against post-execution statistics);
//! rules 3–4 drive eviction (a time window of disuse, and invalidated or
//! deleted inputs). The paper's experiments store everything
//! (`store_all`), and so does the default policy here; the rules are
//! exercised by their own tests, benches, and an example.

use crate::pin::PinSet;
use crate::repository::{RepoStats, Repository};
use restore_dfs::Dfs;

/// Configuration of the §5 rules.
///
/// With per-tenant policies (see `ReStore::set_config_as`) each tenant
/// namespace can carry its own instance: sweeps run with the submitting
/// tenant's rules, and the policy is serialized with the tenant's state
/// in `restore-state v2` (`PartialEq` lets round-trip tests compare).
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionPolicy {
    /// Store every candidate regardless of rules 1–2 (the paper's
    /// experimental setting: "we store the outputs of all candidate jobs
    /// and sub-jobs in the repository").
    pub store_all: bool,
    /// Rule 1: keep only if output is smaller than input.
    pub require_size_reduction: bool,
    /// Rule 2: keep only if reloading the output is modeled to be faster
    /// than recomputing the job.
    pub require_time_benefit: bool,
    /// Modeled DFS read bandwidth used by rule 2, bytes/second.
    pub reload_read_bps: f64,
    /// Rule 3: evict entries unused for this many ticks (queries).
    pub eviction_window: Option<u64>,
    /// Rule 4: evict entries whose inputs were deleted or overwritten.
    pub check_input_versions: bool,
}

impl Default for SelectionPolicy {
    fn default() -> Self {
        SelectionPolicy {
            store_all: true,
            require_size_reduction: false,
            require_time_benefit: false,
            reload_read_bps: 80.0 * 1024.0 * 1024.0,
            eviction_window: None,
            check_input_versions: false,
        }
    }
}

impl SelectionPolicy {
    /// A policy enforcing admission rules 1–2 and both eviction rules.
    pub fn strict(window: u64) -> Self {
        SelectionPolicy {
            store_all: false,
            require_size_reduction: true,
            require_time_benefit: true,
            eviction_window: Some(window),
            check_input_versions: true,
            ..Default::default()
        }
    }

    /// Admission decision for a candidate with the given statistics
    /// (rules 1 and 2).
    pub fn should_keep(&self, stats: &RepoStats) -> bool {
        if self.store_all {
            return true;
        }
        if self.require_size_reduction && stats.output_bytes >= stats.input_bytes {
            return false;
        }
        if self.require_time_benefit {
            let reload_s = stats.output_bytes as f64 / self.reload_read_bps;
            if stats.job_time_s <= reload_s {
                return false;
            }
        }
        true
    }

    /// Eviction sweep (rules 3 and 4). Evicted outputs are deleted from
    /// the DFS — except outputs pinned by an in-flight workflow, whose
    /// file deletion is deferred to the last unpin (the repository entry
    /// itself is removed immediately either way). Returns the evicted
    /// entry ids.
    ///
    /// Concurrency: the sweep never blocks matching. Victims are chosen
    /// from a lock-free snapshot, removed in one atomically published
    /// batch, and only **then** are files deleted (pin-checked) — so by
    /// the time a file can disappear, no fresh snapshot still carries
    /// its entry. Sessions matching against an older snapshot are
    /// protected by the pin-then-revalidate protocol in the driver's
    /// match loop. Returns immediately (no writer serialization) when no
    /// eviction rule is active — the common store-everything policy.
    pub fn sweep(&self, repo: &Repository, dfs: &Dfs, pins: &PinSet, now: u64) -> Vec<u64> {
        if self.eviction_window.is_none() && !self.check_input_versions {
            return Vec::new();
        }
        // Victims are collected shard by shard (ascending shard order)
        // from one lock-free view: each shard contributes its own
        // victims — a quota naturally proportional to the entries it
        // holds — and since every entry lives in exactly one shard the
        // victim set is identical to a single-shard scan.
        let view = repo.view();
        let mut victims = Vec::new();
        for shard in view.shards() {
            for e in shard.entries() {
                let stats = e.stats();
                // Rule 3: unused within the window (entries never used
                // are judged from their creation tick).
                if let Some(w) = self.eviction_window {
                    let last_activity = stats.last_used.max(stats.created);
                    if now.saturating_sub(last_activity) > w {
                        victims.push(e.id);
                        continue;
                    }
                }
                // Rule 4: an input was deleted or modified.
                if self.check_input_versions {
                    let invalidated = stats.input_files.iter().any(|(path, version)| {
                        match dfs.status(path) {
                            Ok(st) => st.version != *version,
                            Err(_) => true, // deleted
                        }
                    });
                    if invalidated {
                        victims.push(e.id);
                    }
                }
            }
        }
        if victims.is_empty() {
            return victims;
        }
        // Remove every victim in one published batch, then perform the
        // pin-checked file deletions *after* the publish but still
        // inside the writer section (see `Repository::batch_then`): a
        // session that pinned a match and revalidates sees either the
        // entry (so its pin defers our deletion) or its absence (so it
        // skips the entry) — never a deleted file behind a live entry.
        // An id already evicted by a racing sweep simply comes back
        // `None` and is skipped.
        repo.batch_then(
            |b| victims.iter().filter_map(|&id| b.evict(id)).collect::<Vec<_>>(),
            |evicted| {
                let mut swept = Vec::with_capacity(evicted.len());
                for entry in evicted {
                    if !pins.defer_delete(&entry.output_path) {
                        dfs.delete(&entry.output_path);
                    }
                    swept.push(entry.id);
                }
                swept
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use restore_dataflow::physical::{PhysicalOp, PhysicalPlan};
    use restore_dfs::DfsConfig;

    fn plan(path: &str) -> PhysicalPlan {
        let mut p = PhysicalPlan::new();
        let l = p.add(PhysicalOp::Load { path: path.into() }, vec![]);
        let pr = p.add(PhysicalOp::Project { cols: vec![0] }, vec![l]);
        p.add(PhysicalOp::Store { path: format!("/repo{path}") }, vec![pr]);
        p
    }

    fn stats(input: u64, output: u64, time: f64) -> RepoStats {
        RepoStats {
            input_bytes: input,
            output_bytes: output,
            job_time_s: time,
            ..Default::default()
        }
    }

    #[test]
    fn store_all_keeps_everything() {
        let p = SelectionPolicy::default();
        assert!(p.should_keep(&stats(10, 1000, 0.0)));
    }

    #[test]
    fn rule1_size_reduction() {
        let p = SelectionPolicy {
            store_all: false,
            require_size_reduction: true,
            ..Default::default()
        };
        assert!(p.should_keep(&stats(100, 50, 1.0)));
        assert!(!p.should_keep(&stats(100, 100, 1.0)));
        assert!(!p.should_keep(&stats(100, 150, 1.0)));
    }

    #[test]
    fn rule2_time_benefit() {
        let p = SelectionPolicy {
            store_all: false,
            require_time_benefit: true,
            reload_read_bps: 100.0,
            ..Default::default()
        };
        // Reload takes 10s; producing took 60s → keep.
        assert!(p.should_keep(&stats(10_000, 1000, 60.0)));
        // Reload takes 10s; producing took 5s → discard.
        assert!(!p.should_keep(&stats(10_000, 1000, 5.0)));
    }

    #[test]
    fn rule3_window_eviction() {
        let dfs = Dfs::new(DfsConfig::small_for_tests());
        dfs.write_all("/repo/old", b"x").unwrap();
        dfs.write_all("/repo/fresh", b"y").unwrap();
        let repo = Repository::new();
        let mut s_old = stats(10, 1, 1.0);
        s_old.created = 1;
        s_old.last_used = 2;
        repo.insert(plan("/old"), "/repo/old", s_old);
        let mut s_new = stats(10, 1, 1.0);
        s_new.created = 9;
        repo.insert(plan("/fresh"), "/repo/fresh", s_new);

        let policy = SelectionPolicy { eviction_window: Some(5), ..Default::default() };
        let evicted = policy.sweep(&repo, &dfs, &PinSet::default(), 10);
        assert_eq!(evicted.len(), 1);
        assert_eq!(repo.len(), 1);
        assert!(!dfs.exists("/repo/old"), "evicted output deleted from DFS");
        assert!(dfs.exists("/repo/fresh"));
    }

    #[test]
    fn rule4_input_invalidation() {
        let dfs = Dfs::new(DfsConfig::small_for_tests());
        dfs.write_all("/data/in", b"v0").unwrap();
        dfs.write_all("/repo/out", b"r").unwrap();
        let repo = Repository::new();
        let mut s = stats(10, 1, 1.0);
        s.input_files = vec![("/data/in".into(), 0)];
        repo.insert(plan("/x"), "/repo/out", s);

        let policy = SelectionPolicy { check_input_versions: true, ..Default::default() };
        // Input untouched: nothing happens.
        assert!(policy.sweep(&repo, &dfs, &PinSet::default(), 1).is_empty());
        // Overwrite the input: version bumps, entry evicted.
        let mut w = dfs.create_overwrite("/data/in").unwrap();
        w.write(b"v1");
        w.close().unwrap();
        let evicted = policy.sweep(&repo, &dfs, &PinSet::default(), 2);
        assert_eq!(evicted.len(), 1);
        assert!(repo.is_empty());
    }

    #[test]
    fn rule4_deleted_input() {
        let dfs = Dfs::new(DfsConfig::small_for_tests());
        dfs.write_all("/data/in", b"v0").unwrap();
        dfs.write_all("/repo/out", b"r").unwrap();
        let repo = Repository::new();
        let mut s = stats(10, 1, 1.0);
        s.input_files = vec![("/data/in".into(), 0)];
        repo.insert(plan("/x"), "/repo/out", s);
        dfs.delete("/data/in");
        let policy = SelectionPolicy { check_input_versions: true, ..Default::default() };
        assert_eq!(policy.sweep(&repo, &dfs, &PinSet::default(), 1).len(), 1);
    }

    #[test]
    fn strict_policy_combines_rules() {
        let p = SelectionPolicy::strict(7);
        assert!(!p.store_all);
        assert!(p.require_size_reduction && p.require_time_benefit);
        assert_eq!(p.eviction_window, Some(7));
        assert!(p.check_input_versions);
    }
}
