//! The per-tenant dead-letter queue: failed submissions parked for
//! inspection and redrive, durable through the snapshot journal.
//!
//! An entry carries the **whole compiled workflow** (every job plan,
//! the dependency edges, the inter-job temporaries), so a redrive
//! re-submits exactly the bytes that failed — no recompilation, no
//! dependence on the original query text surviving anywhere. Entries
//! serialize through the same line format the repository and
//! provenance tables use (plans via [`crate::plan_text`], strings
//! Rust-quoted):
//!
//! ```text
//! dead <id> <attempts> <tick>
//! error "<why the final attempt failed>"
//! tmp "/wf/q/tmp-0"
//! job -            (dependency list; `-` = none, else `0,2`)
//!   0 load "/data/pv"
//!   1 store "/out/q" <- 0
//! end
//! ```
//!
//! Durability composes with the journal exactly like repository
//! batches: a put appends a `dlq-put` record inside the queue's lock
//! (record order = application order), an ack appends `dlq-ack` with
//! the removed ids, and full dumps write a per-space `--dlq--` section
//! — so the queue survives crash-recovery, rides checkpoint
//! compaction, and ships to warm standbys with no extra machinery.
//! Entry ids are monotonic within a namespace (max + 1), which makes
//! replay idempotent: a re-applied put keys on its id, a re-applied
//! ack removes nothing twice.

use restore_common::{Error, Result};
use restore_dataflow::mr_compiler::CompiledJob;
use restore_dataflow::CompiledWorkflow;

/// One dead-lettered submission.
#[derive(Debug, Clone, PartialEq)]
pub struct DlqEntry {
    /// Namespace-local id (monotonic; assigned at put).
    pub id: u64,
    /// Execution attempts consumed before the submission was parked.
    pub attempts: u32,
    /// The driver tick current when the entry was parked — the
    /// session's logical clock, not wall time, so dumps stay
    /// deterministic.
    pub tick: u64,
    /// Why the final attempt failed.
    pub error: String,
    /// The compiled workflow, byte-exact for redrive.
    pub wf: CompiledWorkflow,
}

fn bad(msg: impl Into<String>) -> Error {
    Error::Other(format!("dlq entry: {}", msg.into()))
}

/// Serialize one entry onto `out` (see the module docs for the
/// grammar).
pub(crate) fn encode_entry_into(out: &mut String, e: &DlqEntry) {
    out.push_str(&format!("dead {} {} {}\n", e.id, e.attempts, e.tick));
    out.push_str(&format!("error {:?}\n", e.error));
    for t in &e.wf.tmp_paths {
        out.push_str(&format!("tmp {t:?}\n"));
    }
    for job in &e.wf.jobs {
        let deps = if job.deps.is_empty() {
            "-".to_string()
        } else {
            job.deps.iter().map(ToString::to_string).collect::<Vec<_>>().join(",")
        };
        out.push_str(&format!("job {deps}\n"));
        for line in crate::plan_text::encode_plan(&job.plan).lines() {
            out.push_str("  ");
            out.push_str(line);
            out.push('\n');
        }
        out.push_str("end\n");
    }
}

/// Unquote a `{:?}`-quoted string (the state codec's unquoter, with
/// the positional error rewritten as a plain dlq message).
fn unquote(s: &str, what: &str) -> Result<String> {
    crate::state::unquote(s, 0).map_err(|_| bad(format!("bad quoted {what} {s:?}")))
}

/// Parse the next `dead …` entry off the line iterator. Returns
/// `Ok(None)` — consuming nothing — when the next non-empty line does
/// not start an entry, so callers with mixed bodies can dispatch on
/// the leading keyword.
pub(crate) fn parse_entry_lines(
    lines: &mut std::iter::Peekable<std::str::Lines<'_>>,
) -> Result<Option<DlqEntry>> {
    while let Some(l) = lines.peek() {
        if l.trim().is_empty() {
            lines.next();
        } else {
            break;
        }
    }
    let Some(line) = lines.peek() else { return Ok(None) };
    let Some(head) = line.strip_prefix("dead ") else { return Ok(None) };
    let mut it = head.split(' ');
    let mut next_num = |what: &str| -> Result<u64> {
        it.next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| bad(format!("bad {what} in header {head:?}")))
    };
    let id = next_num("id")?;
    let attempts = next_num("attempts")? as u32;
    let tick = next_num("tick")?;
    if it.next().is_some() {
        return Err(bad(format!("trailing fields in header {head:?}")));
    }
    lines.next();

    let err_line = lines.next().ok_or_else(|| bad("missing error line"))?;
    let quoted = err_line
        .strip_prefix("error ")
        .ok_or_else(|| bad(format!("expected 'error', got {err_line:?}")))?;
    let error = unquote(quoted, "error")?;

    let mut tmp_paths = Vec::new();
    while let Some(l) = lines.peek() {
        let Some(q) = l.strip_prefix("tmp ") else { break };
        tmp_paths.push(unquote(q, "tmp path")?);
        lines.next();
    }

    let mut jobs = Vec::new();
    while let Some(l) = lines.peek() {
        let Some(deps) = l.strip_prefix("job ") else { break };
        let deps: Vec<usize> = if deps == "-" {
            Vec::new()
        } else {
            deps.split(',')
                .map(|d| d.parse().map_err(|_| bad(format!("bad job deps {deps:?}"))))
                .collect::<Result<_>>()?
        };
        lines.next();
        let mut plan_text = String::new();
        loop {
            let Some(pl) = lines.next() else { return Err(bad("job plan missing 'end'")) };
            if pl == "end" {
                break;
            }
            let Some(body) = pl.strip_prefix("  ") else {
                return Err(bad(format!("expected indented plan line or 'end', got {pl:?}")));
            };
            plan_text.push_str(body);
            plan_text.push('\n');
        }
        let plan = crate::plan_text::decode_plan(&plan_text)
            .map_err(|e| bad(format!("in job plan: {e}")))?;
        jobs.push(CompiledJob { plan, deps });
    }
    for job in &jobs {
        if let Some(&d) = job.deps.iter().find(|&&d| d >= jobs.len()) {
            return Err(bad(format!("job dependency {d} out of range ({} jobs)", jobs.len())));
        }
    }
    Ok(Some(DlqEntry { id, attempts, tick, error, wf: CompiledWorkflow { jobs, tmp_paths } }))
}

/// Serialize a whole queue (entries in id order — the only order a
/// live queue ever holds).
pub(crate) fn save(entries: &[DlqEntry]) -> String {
    let mut out = String::new();
    for e in entries {
        encode_entry_into(&mut out, e);
    }
    out
}

/// Reload a queue serialized by [`save`].
pub(crate) fn load(text: &str) -> Result<Vec<DlqEntry>> {
    let mut entries = Vec::new();
    let mut lines = text.lines().peekable();
    while let Some(e) = parse_entry_lines(&mut lines)? {
        entries.push(e);
    }
    if let Some(line) = lines.next() {
        return Err(bad(format!("expected 'dead', got {line:?}")));
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workflow() -> CompiledWorkflow {
        restore_dataflow::compile(
            "A = load '/data/pv' as (user, n:int);
             G = group A by user;
             R = foreach G generate group, SUM(A.n);
             store R into '/out/dlq';",
            "/wf/dlq",
        )
        .unwrap()
    }

    #[test]
    fn entry_round_trips_byte_identically() {
        let e = DlqEntry {
            id: 3,
            attempts: 4,
            tick: 17,
            error: "engine: node 2 \"exploded\"\nwith a newline".to_string(),
            wf: workflow(),
        };
        let text = save(std::slice::from_ref(&e));
        let back = load(&text).unwrap();
        assert_eq!(back, vec![e]);
        assert_eq!(save(&back), text, "canonical: re-encoding is byte-identical");
    }

    #[test]
    fn empty_queue_is_the_empty_string() {
        assert_eq!(save(&[]), "");
        assert_eq!(load("").unwrap(), Vec::new());
    }

    #[test]
    fn malformed_entries_are_typed_errors() {
        assert!(load("dead x 0 0\nerror \"e\"\n").is_err(), "bad id");
        assert!(load("dead 1 0 0\n").is_err(), "missing error line");
        assert!(load("dead 1 0 0\nerror \"e\"\njob -\n  0 load \"/p\"\n").is_err(), "missing end");
        assert!(
            load("dead 1 0 0\nerror \"e\"\njob 9\n  0 load \"/p\"\nend\n").is_err(),
            "dep range"
        );
        assert!(load("unexpected\n").is_err(), "junk line");
    }
}
