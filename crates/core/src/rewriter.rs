//! Plan rewriting — the second half of §3.
//!
//! "Rewriting is done by identifying the part of the physical plan of the
//! input MapReduce job that matches the physical plan selected from the
//! repository. The matched part of the input physical plan is replaced
//! with a Load operator that reads the output of the repository plan from
//! the distributed file system."

use crate::matcher::PlanMatch;
use restore_dataflow::physical::{NodeId, PhysicalOp, PhysicalPlan};

/// Replace the matched region's output with a `Load` of the stored
/// result. Matched operators that feed no other (unmatched) consumer are
/// garbage-collected; operators shared with unmatched branches survive.
///
/// Returns the garbage collector's old-id → new-id mapping so callers
/// holding node ids into the plan (e.g. lineage-expansion tips) can
/// translate them.
pub fn rewrite(plan: &mut PhysicalPlan, m: &PlanMatch, stored_path: &str) -> Vec<Option<NodeId>> {
    let tip = m.tip;
    let load = plan.add(PhysicalOp::Load { path: stored_path.to_string() }, vec![]);
    for c in plan.consumers(tip) {
        if c == load {
            continue;
        }
        for k in 0..plan.inputs(c).len() {
            if plan.inputs(c)[k] == tip {
                plan.node_mut(c).inputs[k] = load;
            }
        }
    }
    plan.gc()
}

/// Detect a rewritten-to-nothing job: a pure `Load → Store` copy, which
/// means the *whole* job was answered from the repository. The driver
/// skips such jobs and aliases their output path to the stored input
/// (§3: "other MapReduce jobs in the workflow that use the output of J as
/// input are rewritten so that they load their input data from the output
/// of the repository plan").
pub fn identity_copy(plan: &PhysicalPlan) -> Option<(String, String)> {
    let loads = plan.loads();
    let stores = plan.stores();
    if loads.len() != 1 || stores.len() != 1 || plan.len() != 2 {
        return None;
    }
    let (l, s) = (loads[0], stores[0]);
    if plan.inputs(s) != [l] {
        return None;
    }
    match (plan.op(l), plan.op(s)) {
        (PhysicalOp::Load { path: src }, PhysicalOp::Store { path: dst }) => {
            Some((src.clone(), dst.clone()))
        }
        _ => None,
    }
}

/// Substitute Load paths through an alias map (outputs of skipped jobs →
/// the stored paths that replaced them), following chains.
pub fn apply_aliases(plan: &mut PhysicalPlan, aliases: &std::collections::HashMap<String, String>) {
    let ids: Vec<NodeId> = plan.loads();
    for id in ids {
        if let PhysicalOp::Load { path } = plan.op(id).clone() {
            let mut cur = path;
            let mut hops = 0;
            while let Some(next) = aliases.get(&cur) {
                cur = next.clone();
                hops += 1;
                if hops > aliases.len() {
                    break; // defensive: alias cycle
                }
            }
            plan.node_mut(id).op = PhysicalOp::Load { path: cur };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::pairwise_plan_traversal;
    use restore_dataflow::expr::Expr;
    use std::collections::HashMap;

    fn q1_plan() -> PhysicalPlan {
        let mut p = PhysicalPlan::new();
        let l1 = p.add(PhysicalOp::Load { path: "/users".into() }, vec![]);
        let p1 = p.add(PhysicalOp::Project { cols: vec![0] }, vec![l1]);
        let l2 = p.add(PhysicalOp::Load { path: "/pv".into() }, vec![]);
        let p2 = p.add(PhysicalOp::Project { cols: vec![0, 2] }, vec![l2]);
        let j = p.add(PhysicalOp::Join { keys: vec![vec![0], vec![0]] }, vec![p1, p2]);
        p.add(PhysicalOp::Store { path: "/out".into() }, vec![j]);
        p
    }

    fn sub_plan() -> PhysicalPlan {
        let mut p = PhysicalPlan::new();
        let l = p.add(PhysicalOp::Load { path: "/pv".into() }, vec![]);
        let pr = p.add(PhysicalOp::Project { cols: vec![0, 2] }, vec![l]);
        p.add(PhysicalOp::Store { path: "/stored/b".into() }, vec![pr]);
        p
    }

    #[test]
    fn rewrite_replaces_matched_branch_with_load() {
        // Figure 6: Q1 rewritten to reuse the stored Load+Project outputs.
        let mut input = q1_plan();
        let m = pairwise_plan_traversal(&sub_plan(), &input).unwrap();
        rewrite(&mut input, &m, "/stored/b");
        // The /pv branch is now a Load of the stored output.
        let loads = input.loads();
        assert_eq!(loads.len(), 2);
        let paths: Vec<&str> = loads
            .iter()
            .map(|&l| match input.op(l) {
                PhysicalOp::Load { path } => path.as_str(),
                _ => unreachable!(),
            })
            .collect();
        assert!(paths.contains(&"/stored/b"));
        assert!(paths.contains(&"/users"));
        assert!(!paths.contains(&"/pv"));
        // One projection (the /users one) survives.
        let projects =
            input.ids().filter(|&i| matches!(input.op(i), PhysicalOp::Project { .. })).count();
        assert_eq!(projects, 1);
        // The join is intact.
        assert!(input.ids().any(|i| matches!(input.op(i), PhysicalOp::Join { .. })));
    }

    #[test]
    fn whole_job_rewrite_leaves_identity_copy() {
        // Figure 4's precursor: Q2's first job fully matches stored Q1.
        let mut input = q1_plan();
        let repo = q1_plan();
        let m = pairwise_plan_traversal(&repo, &input).unwrap();
        rewrite(&mut input, &m, "/stored/q1");
        let id = identity_copy(&input).unwrap();
        assert_eq!(id, ("/stored/q1".to_string(), "/out".to_string()));
    }

    #[test]
    fn shared_nodes_survive_partial_rewrite() {
        // Load feeds both a matched Project and an unmatched Filter.
        let mut p = PhysicalPlan::new();
        let l = p.add(PhysicalOp::Load { path: "/d".into() }, vec![]);
        let pr = p.add(PhysicalOp::Project { cols: vec![0] }, vec![l]);
        let f = p.add(PhysicalOp::Filter { pred: Expr::col_eq(1, 5i64) }, vec![l]);
        let j = p.add(PhysicalOp::Join { keys: vec![vec![0], vec![0]] }, vec![pr, f]);
        p.add(PhysicalOp::Store { path: "/o".into() }, vec![j]);

        let mut repo = PhysicalPlan::new();
        let rl = repo.add(PhysicalOp::Load { path: "/d".into() }, vec![]);
        let rp = repo.add(PhysicalOp::Project { cols: vec![0] }, vec![rl]);
        repo.add(PhysicalOp::Store { path: "/s".into() }, vec![rp]);

        let m = pairwise_plan_traversal(&repo, &p).unwrap();
        rewrite(&mut p, &m, "/s");
        // Load(/d) must survive for the Filter branch.
        let paths: Vec<String> = p
            .loads()
            .iter()
            .map(|&l| match p.op(l) {
                PhysicalOp::Load { path } => path.clone(),
                _ => unreachable!(),
            })
            .collect();
        assert!(paths.contains(&"/d".to_string()));
        assert!(paths.contains(&"/s".to_string()));
        assert!(p.ids().any(|i| matches!(p.op(i), PhysicalOp::Filter { .. })));
        // The matched Project is gone.
        assert!(!p.ids().any(|i| matches!(p.op(i), PhysicalOp::Project { .. })));
    }

    #[test]
    fn identity_copy_rejects_real_jobs() {
        assert!(identity_copy(&q1_plan()).is_none());
        assert!(identity_copy(&sub_plan()).is_none());
    }

    #[test]
    fn aliases_follow_chains() {
        let mut plan = PhysicalPlan::new();
        let l = plan.add(PhysicalOp::Load { path: "/tmp-1".into() }, vec![]);
        plan.add(PhysicalOp::Store { path: "/o".into() }, vec![l]);
        let mut aliases = HashMap::new();
        aliases.insert("/tmp-1".to_string(), "/tmp-0".to_string());
        aliases.insert("/tmp-0".to_string(), "/repo/7".to_string());
        apply_aliases(&mut plan, &aliases);
        assert!(matches!(
            plan.op(plan.loads()[0]),
            PhysicalOp::Load { path } if path == "/repo/7"
        ));
    }
}
