//! The ReStore repository of MapReduce job outputs — §2.2 and §5.
//!
//! Each entry holds "(1) the physical query execution plan of the
//! MapReduce job that was executed to produce this output, (2) the
//! filename of the output in the distributed file system, and (3)
//! statistics about the MapReduce job that produced the output and the
//! frequency of use of this output".
//!
//! Entries are kept **ordered** so the sequential scan's first match is
//! the best match (§3): plans that subsume others come first; among
//! incomparable plans, higher input/output reduction ratio, then longer
//! job execution time, win.
//!
//! # Concurrency: RCU snapshots
//!
//! The repository is the hottest shared structure in a multi-session
//! deployment, and its read/write mix is extreme: every job of every
//! workflow matches against it (reads), while only executed waves and
//! eviction sweeps mutate it. It is therefore published as immutable
//! [`RepoSnapshot`]s through an [`Rcu`](crate::rcu::Rcu) cell:
//!
//! * **readers** ([`Repository::snapshot`]) get the current snapshot
//!   lock-free — no lock, no contention with mutations — and match,
//!   resolve paths, and read statistics entirely from it;
//! * **writers** ([`Repository::insert`], [`Repository::evict`],
//!   [`Repository::batch`]) clone the snapshot, mutate the clone, and
//!   publish it; concurrent readers keep their old snapshot;
//! * **reuse accounting** ([`Repository::note_use`]) touches neither
//!   side: `use_count`/`last_used` live in atomics shared by every
//!   snapshot that contains the entry, so recording a reuse is a pair
//!   of atomic RMWs — no snapshot is rebuilt and no writer is blocked.
//!
//! Inside a snapshot, lookups that the locked design recomputed per
//! call are precomputed at publish time: an id → position map (O(1)
//! [`RepoSnapshot::get`]), a cached tip signature per entry, an inverted
//! tip-signature → candidates multimap (the `find_first_match_indexed`
//! pre-filter runs in O(1) per input node instead of O(entries)), and a
//! running `stored_bytes` total maintained on insert/evict instead of
//! re-summed per call. The paper's sequential scan
//! ([`RepoSnapshot::find_first_match_scan`]) remains the verification /
//! ablation path; both return byte-identical results because indexed
//! candidates are verified with the full traversal in repository order.

use crate::matcher::{pairwise_plan_traversal, plan_tip, subsumes, PlanMatch};
use crate::plan_text;
use crate::rcu::Rcu;
use parking_lot::{Mutex, RwLock};
use restore_common::{Error, Result};
use restore_dataflow::physical::PhysicalPlan;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed, Ordering::SeqCst};
use std::sync::Arc;

/// Execution statistics of a stored job output (§2.2, §5).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RepoStats {
    /// Bytes the producing job loaded (modeled/actual consistent units).
    pub input_bytes: u64,
    /// Bytes of the stored output.
    pub output_bytes: u64,
    /// Modeled execution time of the producing job, seconds.
    pub job_time_s: f64,
    /// Average map task time of the producing job, seconds.
    pub avg_map_time_s: f64,
    /// Average reduce task time of the producing job, seconds.
    pub avg_reduce_time_s: f64,
    /// How many times this output was used to rewrite a query.
    pub use_count: u64,
    /// Logical tick (query counter) of the last reuse.
    pub last_used: u64,
    /// Logical tick at which the entry was created.
    pub created: u64,
    /// Input files and their DFS versions at creation time (eviction
    /// Rule 4 invalidates the entry when these change).
    pub input_files: Vec<(String, u64)>,
}

impl RepoStats {
    /// Rule-2 ordering metric #1: size of input over size of output.
    pub fn reduction_ratio(&self) -> f64 {
        self.input_bytes as f64 / (self.output_bytes.max(1)) as f64
    }
}

/// Live reuse counters, shared by every snapshot (and every refreshed
/// duplicate) of one entry. Recording a reuse is two atomic RMWs — no
/// repository lock, no snapshot republish. `dirty` is the per-entry
/// dirty bit behind incremental snapshots: the first reuse after a
/// delta capture flips it and enrolls the entry id in the repository's
/// dirty set, so a delta serializes only entries whose counters moved.
#[derive(Debug, Default)]
struct Usage {
    count: AtomicU64,
    last_used: AtomicU64,
    dirty: AtomicBool,
}

/// One stored job output.
#[derive(Debug)]
pub struct RepoEntry {
    pub id: u64,
    /// Base-level physical plan (single Store).
    pub plan: PhysicalPlan,
    /// Merkle signature of `plan` (Store paths excluded).
    pub signature: u64,
    /// Cached signature of the operator feeding the plan's Store (`None`
    /// for degenerate multi-Store plans). Computed once at insertion;
    /// the fingerprint index keys candidates by it.
    pub tip_signature: Option<u64>,
    /// Where the output lives in the DFS.
    pub output_path: String,
    /// Statistics at creation/refresh time. `use_count`/`last_used` in
    /// here are the *persisted baseline*; the live values come from the
    /// shared atomics (see [`RepoEntry::stats`]).
    base: RepoStats,
    usage: Arc<Usage>,
}

impl RepoEntry {
    fn new(id: u64, plan: PhysicalPlan, output_path: String, stats: RepoStats) -> RepoEntry {
        let signature = plan.signature();
        let tip_signature = plan_tip(&plan).map(|t| plan.node_signature(t));
        let usage = Arc::new(Usage {
            count: AtomicU64::new(stats.use_count),
            last_used: AtomicU64::new(stats.last_used),
            dirty: AtomicBool::new(false),
        });
        RepoEntry { id, plan, signature, tip_signature, output_path, base: stats, usage }
    }

    /// Point-in-time statistics: the stored baseline with the live
    /// `use_count`/`last_used` read from the shared atomics.
    pub fn stats(&self) -> RepoStats {
        let mut s = self.base.clone();
        s.use_count = self.usage.count.load(SeqCst);
        s.last_used = self.usage.last_used.load(SeqCst);
        s
    }

    /// Live reuse count.
    pub fn use_count(&self) -> u64 {
        self.usage.count.load(SeqCst)
    }

    /// Logical tick of the most recent reuse (0 = never).
    pub fn last_used(&self) -> u64 {
        self.usage.last_used.load(SeqCst)
    }

    fn note_use(&self, tick: u64) {
        self.usage.count.fetch_add(1, SeqCst);
        // `fetch_max`, not `store`: concurrent recorders with different
        // ticks must leave the *latest* reuse behind regardless of
        // interleaving.
        self.usage.last_used.fetch_max(tick, SeqCst);
    }
}

/// Outcome of an insertion attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// New entry stored under this id.
    Inserted(u64),
    /// An equivalent plan was already stored under this id.
    Duplicate(u64),
}

/// One immutable published state of the repository. Matching, path
/// resolution, statistics, and serialization all run against a snapshot
/// without ever touching a lock; see the module docs.
#[derive(Debug, Clone, Default)]
pub struct RepoSnapshot {
    /// Entries in match-priority order.
    entries: Vec<Arc<RepoEntry>>,
    /// id → position in `entries` (O(1) `get`).
    by_id: HashMap<u64, usize>,
    /// plan signature → entry id (deduplication).
    by_signature: HashMap<u64, u64>,
    /// tip signature → positions (ascending) of entries carrying it —
    /// the inverted index behind `find_first_match_indexed`.
    tip_index: HashMap<u64, Vec<usize>>,
    /// Running total of `output_bytes`, maintained on insert/evict
    /// instead of summed per call.
    stored_bytes: u64,
    /// Serve matches through the fingerprint index instead of the
    /// paper's sequential scan. Results are identical; speed differs
    /// (see the `bench_matching` ablation).
    indexed: bool,
}

impl RepoSnapshot {
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries in match-priority order.
    pub fn entries(&self) -> &[Arc<RepoEntry>] {
        &self.entries
    }

    /// O(1) lookup by entry id.
    pub fn get(&self, id: u64) -> Option<&Arc<RepoEntry>> {
        self.by_id.get(&id).map(|&pos| &self.entries[pos])
    }

    /// Is the entry still present in this snapshot?
    pub fn contains_id(&self, id: u64) -> bool {
        self.by_id.contains_key(&id)
    }

    /// Does any entry already compute this plan?
    pub fn contains_plan(&self, plan: &PhysicalPlan) -> Option<u64> {
        self.by_signature.get(&plan.signature()).copied()
    }

    /// Total bytes of stored outputs (repository footprint). A running
    /// counter, not a scan.
    pub fn stored_bytes(&self) -> u64 {
        self.stored_bytes
    }

    /// Is this snapshot serving matches through the fingerprint index?
    pub fn is_indexed(&self) -> bool {
        self.indexed
    }

    /// §3: return the first entry (in repository order) whose plan is
    /// contained in `input_plan`, with the match. Dispatches to the
    /// configured lookup strategy; both produce identical results.
    pub fn find_first_match(&self, input_plan: &PhysicalPlan) -> Option<(u64, PlanMatch)> {
        self.find_first_match_excluding(input_plan, &HashSet::new())
    }

    /// Like [`RepoSnapshot::find_first_match`] but skipping the listed
    /// entries. The driver excludes entries whose rewrite made no
    /// structural progress (e.g. an entry matching only its own lineage
    /// expansion) and rescans for the next-best match.
    pub fn find_first_match_excluding(
        &self,
        input_plan: &PhysicalPlan,
        exclude: &HashSet<u64>,
    ) -> Option<(u64, PlanMatch)> {
        if self.indexed {
            self.find_first_match_indexed(input_plan, exclude)
        } else {
            self.find_first_match_scan(input_plan, exclude)
        }
    }

    /// The paper's sequential scan: try every entry in repository order.
    /// Kept as the verification / ablation baseline.
    pub fn find_first_match_scan(
        &self,
        input_plan: &PhysicalPlan,
        exclude: &HashSet<u64>,
    ) -> Option<(u64, PlanMatch)> {
        for e in &self.entries {
            if exclude.contains(&e.id) {
                continue;
            }
            if let Some(m) = pairwise_plan_traversal(&e.plan, input_plan) {
                return Some((e.id, m));
            }
        }
        None
    }

    /// Fingerprint-index variant: an entry can only match when its
    /// cached tip signature equals the signature of some node of the
    /// input plan, so candidates come from the inverted tip-signature
    /// index in O(1) per input node. Candidates are verified with the
    /// full traversal in ascending repository order — identical results
    /// to the sequential scan, sub-linear candidate filtering.
    pub fn find_first_match_indexed(
        &self,
        input_plan: &PhysicalPlan,
        exclude: &HashSet<u64>,
    ) -> Option<(u64, PlanMatch)> {
        let mut candidates: Vec<usize> = Vec::new();
        for id in input_plan.ids() {
            if let Some(positions) = self.tip_index.get(&input_plan.node_signature(id)) {
                candidates.extend_from_slice(positions);
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        for pos in candidates {
            let e = &self.entries[pos];
            if exclude.contains(&e.id) {
                continue;
            }
            if let Some(m) = pairwise_plan_traversal(&e.plan, input_plan) {
                return Some((e.id, m));
            }
        }
        None
    }

    // ---- mutation internals (called with the Rcu writer serialized) ----

    /// Rebuild the position-dependent indexes after a structural change.
    fn reindex(&mut self) {
        self.by_id.clear();
        self.tip_index.clear();
        for (pos, e) in self.entries.iter().enumerate() {
            self.by_id.insert(e.id, pos);
            if let Some(tip) = e.tip_signature {
                self.tip_index.entry(tip).or_default().push(pos);
            }
        }
    }

    /// Position respecting: (rule 1) subsuming plans first; (rule 2)
    /// among incomparables, higher reduction ratio then longer job time
    /// first.
    fn insert_position(&self, new: &RepoEntry) -> usize {
        let mut lo = 0usize;
        let mut hi = self.entries.len();
        for (i, e) in self.entries.iter().enumerate() {
            let e_subsumes_new = subsumes(&e.plan, &new.plan);
            let new_subsumes_e = subsumes(&new.plan, &e.plan);
            if e_subsumes_new && !new_subsumes_e {
                lo = lo.max(i + 1);
            } else if new_subsumes_e && !e_subsumes_new {
                hi = hi.min(i);
            }
        }
        if hi < lo {
            // Conflicting constraints can only arise from signature
            // collisions; degrade to the later position.
            hi = lo;
        }
        let score = |s: &RepoStats| (s.reduction_ratio(), s.job_time_s);
        let new_score = score(&new.base);
        let mut pos = lo;
        while pos < hi {
            let existing = score(&self.entries[pos].base);
            if existing < new_score {
                break;
            }
            pos += 1;
        }
        pos
    }

    /// Batch-internal insert. Position lookups scan `entries` directly
    /// (the position maps may be stale mid-batch); the caller reindexes
    /// once before publishing — see [`Repository::batch_then`]. Returns
    /// the outcome and the `Arc` of the entry as stored (inserted or
    /// refreshed), which the batch's journal op log records.
    fn do_insert(&mut self, entry: RepoEntry) -> (InsertOutcome, Option<Arc<RepoEntry>>) {
        if let Some(&dup) = self.by_signature.get(&entry.signature) {
            let mut stored = None;
            if let Some(pos) = self.entries.iter().position(|e| e.id == dup) {
                // Refresh stats but keep usage history: the replacement
                // shares the old entry's atomic counters, so reuses
                // recorded against a stale snapshot still land here.
                let old = &self.entries[pos];
                let refreshed = RepoEntry {
                    id: old.id,
                    plan: old.plan.clone(),
                    signature: old.signature,
                    tip_signature: old.tip_signature,
                    output_path: old.output_path.clone(),
                    base: entry.base,
                    usage: old.usage.clone(),
                };
                self.stored_bytes =
                    self.stored_bytes - old.base.output_bytes + refreshed.base.output_bytes;
                let arc = Arc::new(refreshed);
                self.entries[pos] = arc.clone();
                stored = Some(arc);
            }
            return (InsertOutcome::Duplicate(dup), stored);
        }
        let pos = self.insert_position(&entry);
        let id = entry.id;
        self.by_signature.insert(entry.signature, id);
        self.stored_bytes += entry.base.output_bytes;
        let arc = Arc::new(entry);
        self.entries.insert(pos, arc.clone());
        (InsertOutcome::Inserted(id), Some(arc))
    }

    /// Batch-internal evict; same staleness contract as
    /// [`RepoSnapshot::do_insert`].
    fn do_evict(&mut self, id: u64) -> Option<Arc<RepoEntry>> {
        let pos = self.entries.iter().position(|e| e.id == id)?;
        let e = self.entries.remove(pos);
        self.by_signature.remove(&e.signature);
        self.stored_bytes -= e.base.output_bytes;
        Some(e)
    }

    // ---- persistence ----

    /// Serialize the repository (plans, paths, stats) to a durable string.
    pub fn save(&self) -> String {
        self.save_filtered(|_| true)
    }

    /// Like [`RepoSnapshot::save`], but only entries whose output path
    /// satisfies `keep` are written. The driver's `save_state` passes a
    /// liveness predicate so entries condemned by a pending deferred
    /// deletion (or already gone from the DFS) never enter a snapshot
    /// as dangling paths.
    pub fn save_filtered(&self, keep: impl Fn(&str) -> bool) -> String {
        let mut out = String::new();
        for e in &self.entries {
            if !keep(&e.output_path) {
                continue;
            }
            encode_entry_into(&mut out, e);
        }
        out
    }
}

/// Append one entry in the durable `entry …` block format. Shared by
/// [`RepoSnapshot::save_filtered`] and the snapshot journal's
/// `repo-batch` records, so a journaled insert and a full dump agree
/// byte for byte.
pub(crate) fn encode_entry_into(out: &mut String, e: &RepoEntry) {
    let stats = e.stats();
    out.push_str(&format!(
        "entry {} {:?} {} {} {} {} {} {} {} {}\n",
        e.id,
        e.output_path,
        stats.input_bytes,
        stats.output_bytes,
        stats.job_time_s,
        stats.avg_map_time_s,
        stats.avg_reduce_time_s,
        stats.use_count,
        stats.last_used,
        stats.created,
    ));
    for (p, v) in &stats.input_files {
        out.push_str(&format!("input {p:?} {v}\n"));
    }
    out.push_str("plan\n");
    for line in plan_text::encode_plan(&e.plan).lines() {
        out.push_str("  ");
        out.push_str(line);
        out.push('\n');
    }
    out.push_str("end\n");
}

/// One decoded `entry …` block (see [`parse_entry_lines`]).
#[derive(Debug)]
pub(crate) struct ParsedEntry {
    pub id: u64,
    pub output_path: String,
    pub stats: RepoStats,
    pub plan: PhysicalPlan,
}

/// Parse the next `entry …` block off the line iterator. Returns
/// `Ok(None)` — consuming nothing — when the next non-empty line does
/// not start an entry block, so callers with mixed-record bodies (the
/// journal) can dispatch on the leading keyword.
pub(crate) fn parse_entry_lines(
    lines: &mut std::iter::Peekable<std::str::Lines<'_>>,
) -> Result<Option<ParsedEntry>> {
    while let Some(l) = lines.peek() {
        if l.trim_end().is_empty() {
            lines.next();
        } else {
            break;
        }
    }
    let Some(line) = lines.peek() else { return Ok(None) };
    let Some(rest) = line.trim_end().strip_prefix("entry ") else { return Ok(None) };
    let rest = rest.to_string();
    lines.next();
    let (id_str, rest) =
        rest.split_once(' ').ok_or_else(|| Error::Repository("truncated entry header".into()))?;
    let id: u64 = id_str.parse().map_err(|_| Error::Repository("bad entry id".into()))?;
    // Path is Rust-quoted and may contain spaces: find closing quote.
    let close = find_close_quote(rest)?;
    let output_path = unquote_header(&rest[..=close])?;
    let nums: Vec<&str> = rest[close + 1..].split_whitespace().collect();
    if nums.len() != 8 {
        return Err(Error::Repository(format!("expected 8 stat fields, got {}", nums.len())));
    }
    let parse_u = |s: &str| s.parse::<u64>().map_err(|_| Error::Repository("bad stat".into()));
    let parse_f = |s: &str| s.parse::<f64>().map_err(|_| Error::Repository("bad stat".into()));
    let mut stats = RepoStats {
        input_bytes: parse_u(nums[0])?,
        output_bytes: parse_u(nums[1])?,
        job_time_s: parse_f(nums[2])?,
        avg_map_time_s: parse_f(nums[3])?,
        avg_reduce_time_s: parse_f(nums[4])?,
        use_count: parse_u(nums[5])?,
        last_used: parse_u(nums[6])?,
        created: parse_u(nums[7])?,
        input_files: Vec::new(),
    };
    // Optional input lines, then "plan".
    loop {
        let l = lines.next().ok_or_else(|| Error::Repository("truncated entry".into()))?;
        if l == "plan" {
            break;
        }
        let rest = l
            .strip_prefix("input ")
            .ok_or_else(|| Error::Repository(format!("unexpected line {l:?}")))?;
        let close = find_close_quote(rest)?;
        let path = unquote_header(&rest[..=close])?;
        let version: u64 = rest[close + 1..]
            .trim()
            .parse()
            .map_err(|_| Error::Repository("bad input version".into()))?;
        stats.input_files.push((path, version));
    }
    let mut plan_src = String::new();
    loop {
        let l = lines.next().ok_or_else(|| Error::Repository("truncated plan".into()))?;
        if l == "end" {
            break;
        }
        plan_src.push_str(l.trim_start());
        plan_src.push('\n');
    }
    let plan = plan_text::decode_plan(&plan_src)?;
    Ok(Some(ParsedEntry { id, output_path, stats, plan }))
}

/// One structural mutation of a published batch, in application order.
/// The journal sink receives the batch's ops at publish time and turns
/// them into one `repo-batch` record.
#[derive(Debug, Clone)]
pub enum RepoOp {
    /// An entry was inserted or refreshed; the `Arc` is the entry as
    /// stored (so the sink serializes exactly what readers see).
    Put(Arc<RepoEntry>),
    /// An entry was evicted.
    Evict(u64),
}

/// Callback invoked inside the writer section, after a batch publishes,
/// with the batch's structural ops. Installed by the driver when
/// incremental snapshots are enabled.
pub type RepoSink = Arc<dyn Fn(&[RepoOp]) + Send + Sync>;

/// The sink cell; a newtype so `Repository` keeps its derived traits
/// (`dyn Fn` is neither `Debug` nor `Default`).
#[derive(Default)]
struct SinkCell(RwLock<Option<RepoSink>>);

impl std::fmt::Debug for SinkCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("SinkCell").field(&self.0.read().is_some()).finish()
    }
}

/// The ordered, concurrently shared repository.
///
/// All methods take `&self`: reads are lock-free against the current
/// [`RepoSnapshot`], mutations serialize internally and publish a new
/// snapshot (see the module docs). For several mutations that must land
/// atomically — a wave's registrations, an eviction sweep — use
/// [`Repository::batch`], which publishes once.
#[derive(Debug, Default)]
pub struct Repository {
    snap: Rcu<RepoSnapshot>,
    next_id: AtomicU64,
    /// Journal sink for structural mutations (see [`RepoSink`]).
    sink: SinkCell,
    /// Record which entries' usage counters moved since the last delta
    /// capture (see [`Repository::drain_dirty_usage`]). Off unless
    /// incremental snapshots are enabled, keeping the match path free
    /// of even the uncontended first-use push.
    track_usage: AtomicBool,
    /// Ids whose usage dirty bit was freshly set; drained per delta.
    dirty_used: Mutex<Vec<u64>>,
}

impl Repository {
    pub fn new() -> Self {
        Repository::default()
    }

    /// The current published snapshot: lock-free, immutable, and stable
    /// for as long as the caller holds it. One snapshot per match
    /// attempt is the intended usage.
    pub fn snapshot(&self) -> Arc<RepoSnapshot> {
        self.snap.load()
    }

    /// Number of snapshots published so far. Hot paths documented as
    /// write-free (matching, reuse accounting) can assert it stays put.
    pub fn publish_count(&self) -> u64 {
        self.snap.version()
    }

    pub fn len(&self) -> usize {
        self.snapshot().len()
    }

    pub fn is_empty(&self) -> bool {
        self.snapshot().is_empty()
    }

    /// Entries of the current snapshot, in match-priority order.
    pub fn entries(&self) -> Vec<Arc<RepoEntry>> {
        self.snapshot().entries.clone()
    }

    /// O(1) lookup by id in the current snapshot.
    pub fn get(&self, id: u64) -> Option<Arc<RepoEntry>> {
        self.snapshot().get(id).cloned()
    }

    /// Does any entry already compute this plan?
    pub fn contains_plan(&self, plan: &PhysicalPlan) -> Option<u64> {
        self.snapshot().contains_plan(plan)
    }

    /// Total bytes of stored outputs (running counter).
    pub fn stored_bytes(&self) -> u64 {
        self.snapshot().stored_bytes()
    }

    /// Route matches through the fingerprint index (`true`) or the
    /// paper's sequential scan (`false`, the default). Published with
    /// the snapshot, so in-flight readers keep the strategy they
    /// started with.
    pub fn set_fingerprint_index(&self, indexed: bool) {
        self.snap.update(|s| s.indexed = indexed);
    }

    /// Is the fingerprint index active?
    pub fn use_fingerprint_index(&self) -> bool {
        self.snapshot().indexed
    }

    /// Insert an entry, maintaining the §3 ordering rules. Deduplicates
    /// by plan signature (the later execution refreshes statistics).
    pub fn insert(
        &self,
        plan: PhysicalPlan,
        output_path: impl Into<String>,
        stats: RepoStats,
    ) -> InsertOutcome {
        self.batch(|b| b.insert(plan, output_path, stats))
    }

    /// Record a reuse of entry `id` at logical time `tick`. Entirely
    /// atomic: no lock is taken and no snapshot is republished, so a
    /// match never blocks or is blocked by registration. With usage
    /// tracking on (incremental snapshots), the *first* reuse after a
    /// delta capture additionally enrolls the id in the dirty set — an
    /// uncontended mutex push amortized over the checkpoint interval;
    /// every further reuse of the entry stays lock-free.
    pub fn note_use(&self, id: u64, tick: u64) {
        if let Some(e) = self.snapshot().get(id) {
            e.note_use(tick);
            if self.track_usage.load(Relaxed) && !e.usage.dirty.swap(true, SeqCst) {
                self.dirty_used.lock().push(id);
            }
        }
    }

    /// Install (or clear) the journal sink receiving each published
    /// batch's structural ops, and start tracking dirty usage. Crate
    /// internal: only the driver's journal wiring may install sinks.
    pub(crate) fn set_journal_sink(&self, sink: Option<RepoSink>) {
        self.track_usage.store(sink.is_some(), Relaxed);
        *self.sink.0.write() = sink;
    }

    /// Drain the entries whose reuse counters moved since the previous
    /// drain, returning `(id, use_count, last_used)` triples — the body
    /// of a `note-use` journal record. Cost is proportional to the
    /// number of *dirty* entries, not the repository size. A reuse
    /// racing the drain either lands in the returned values or re-marks
    /// the entry dirty for the next delta; the recorded values are
    /// absolute, so replaying both is idempotent. Crate internal: the
    /// drain is destructive (it clears the dirty set), so only the
    /// driver's delta capture may call it — an outside caller would
    /// silently lose the pending `note-use` delta.
    pub(crate) fn drain_dirty_usage(&self) -> Vec<(u64, u64, u64)> {
        let ids = std::mem::take(&mut *self.dirty_used.lock());
        if ids.is_empty() {
            return Vec::new();
        }
        let snap = self.snapshot();
        ids.into_iter()
            .filter_map(|id| {
                snap.get(id).map(|e| {
                    // Clear the dirty bit *before* reading the counters:
                    // a racing reuse after the clear re-marks the entry,
                    // so its bump is never lost between deltas.
                    e.usage.dirty.store(false, SeqCst);
                    (id, e.usage.count.load(SeqCst), e.usage.last_used.load(SeqCst))
                })
            })
            .collect()
    }

    /// Set an entry's reuse counters to absolute values (journal
    /// replay of a `note-use` record). Touches only the shared atomics;
    /// no snapshot is published.
    pub(crate) fn set_usage(&self, id: u64, count: u64, last_used: u64) {
        if let Some(e) = self.snapshot().get(id) {
            e.usage.count.store(count, SeqCst);
            e.usage.last_used.store(last_used, SeqCst);
        }
    }

    /// Remove an entry, returning it.
    pub fn evict(&self, id: u64) -> Option<Arc<RepoEntry>> {
        self.batch(|b| b.evict(id))
    }

    /// Apply several mutations as one atomically published snapshot:
    /// concurrent readers see either none or all of the batch. Mutation
    /// batches serialize on the internal writer lock.
    pub fn batch<R>(&self, f: impl FnOnce(&mut RepoBatch<'_>) -> R) -> R {
        self.batch_then(f, |r| r)
    }

    /// Like [`Repository::batch`], but runs `after` once the batch is
    /// published and **before** the writer side is released. Readers
    /// already see the mutation while `after` runs; other mutations and
    /// [`Repository::freeze`] captures wait for it. Eviction sweeps
    /// hang their pin-checked file deletions here: publish-then-delete
    /// is what makes the match loop's pin revalidation conclusive,
    /// while staying inside the writer section is what keeps a
    /// concurrent `save_state` from serializing a path that is about to
    /// be condemned.
    ///
    /// The position-dependent indexes (id → position, tip index) are
    /// rebuilt **once** per batch just before publishing, not per
    /// mutation — a k-item wave registration pays one O(n) reindex.
    pub fn batch_then<A, B>(
        &self,
        f: impl FnOnce(&mut RepoBatch<'_>) -> A,
        after: impl FnOnce(A) -> B,
    ) -> B {
        self.snap.update_then(
            |snap| {
                let (a, dirty, ops) = {
                    let mut b =
                        RepoBatch { snap, next_id: &self.next_id, dirty: false, ops: Vec::new() };
                    let a = f(&mut b);
                    let dirty = b.dirty;
                    let ops = b.ops;
                    (a, dirty, ops)
                };
                if dirty {
                    snap.reindex();
                }
                (a, ops)
            },
            |(a, ops)| {
                // Journal the batch *after* it published but still
                // inside the writer section: the record lands before
                // any later batch's, so journal order equals publish
                // order, and a base checkpoint whose seq was read
                // before this record was appended is guaranteed to
                // contain the mutation (the capture's freeze waits for
                // this writer section).
                if !ops.is_empty() {
                    if let Some(sink) = self.sink.0.read().clone() {
                        sink(&ops);
                    }
                }
                after(a)
            },
        )
    }

    /// Run `f` against the current snapshot with all mutations (inserts,
    /// evictions, sweeps) blocked for the duration. `save_state` uses
    /// this to capture multi-table state no sweep can interleave with;
    /// plain readers should use [`Repository::snapshot`] instead.
    pub fn freeze<R>(&self, f: impl FnOnce(&RepoSnapshot) -> R) -> R {
        self.snap.freeze(f)
    }

    /// Replace this repository's contents with `other`'s (state
    /// restore). The snapshot replacement and the id-counter adoption
    /// happen inside one writer critical section, so a concurrent batch
    /// can neither interleave between them (reserving restored ids
    /// against pre-restore entries) nor land a mutation that this
    /// replacement silently wipes.
    pub fn adopt(&self, other: Repository) {
        let next = other.next_id.load(SeqCst);
        let snap = other.snapshot();
        self.snap.update_then(|s| *s = (*snap).clone(), |_| self.next_id.store(next, SeqCst));
    }

    /// §3 first-match against the current snapshot. Prefer taking a
    /// [`Repository::snapshot`] explicitly when issuing several lookups
    /// that must agree.
    pub fn find_first_match(&self, input_plan: &PhysicalPlan) -> Option<(u64, PlanMatch)> {
        self.snapshot().find_first_match(input_plan)
    }

    /// See [`RepoSnapshot::find_first_match_excluding`].
    pub fn find_first_match_excluding(
        &self,
        input_plan: &PhysicalPlan,
        exclude: &HashSet<u64>,
    ) -> Option<(u64, PlanMatch)> {
        self.snapshot().find_first_match_excluding(input_plan, exclude)
    }

    // ---- persistence ----

    /// Serialize the current snapshot.
    pub fn save(&self) -> String {
        self.snapshot().save()
    }

    /// See [`RepoSnapshot::save_filtered`].
    pub fn save_filtered(&self, keep: impl Fn(&str) -> bool) -> String {
        self.snapshot().save_filtered(keep)
    }

    /// Reload a repository serialized by [`Repository::save`]. Ordering
    /// is preserved verbatim (it was valid when saved).
    pub fn load(text: &str) -> Result<Repository> {
        let mut entries: Vec<Arc<RepoEntry>> = Vec::new();
        let mut next_id = 0u64;
        let mut lines = text.lines().peekable();
        while let Some(p) = parse_entry_lines(&mut lines)? {
            next_id = next_id.max(p.id + 1);
            entries.push(Arc::new(RepoEntry::new(p.id, p.plan, p.output_path, p.stats)));
        }
        if let Some(line) = lines.next() {
            return Err(Error::Repository(format!("expected 'entry', got {line:?}")));
        }
        Ok(Repository::from_entries(entries, next_id))
    }

    /// Build a repository from fully formed entries (ids assigned, order
    /// final): one snapshot construction, one reindex.
    fn from_entries(entries: Vec<Arc<RepoEntry>>, next_id: u64) -> Repository {
        let mut snap = RepoSnapshot {
            stored_bytes: entries.iter().map(|e| e.base.output_bytes).sum(),
            ..Default::default()
        };
        for e in &entries {
            snap.by_signature.insert(e.signature, e.id);
        }
        snap.entries = entries;
        snap.reindex();
        Repository { snap: Rcu::new(snap), next_id: AtomicU64::new(next_id), ..Default::default() }
    }

    /// Bulk constructor for large synthetic repositories: inserts all
    /// items in O(n log n) by ordering on the rule-2 score (reduction
    /// ratio, then job time) alone, skipping the O(n²) pairwise
    /// subsumption comparisons incremental insertion performs.
    ///
    /// The resulting order equals incremental insertion **when the
    /// plans are pairwise incomparable** (no plan subsumes another) —
    /// the common shape of generated benchmark corpora; corpora with
    /// subsumption chains must use [`Repository::insert`] to get the
    /// §3 "subsuming plans first" guarantee. Duplicate plan signatures
    /// keep the first occurrence.
    pub fn bulk_load(items: Vec<(PhysicalPlan, String, RepoStats)>) -> Repository {
        let mut entries: Vec<Arc<RepoEntry>> = Vec::with_capacity(items.len());
        let mut seen = HashSet::with_capacity(items.len());
        for (i, (plan, path, stats)) in items.into_iter().enumerate() {
            let e = RepoEntry::new(i as u64, plan, path, stats);
            if seen.insert(e.signature) {
                entries.push(Arc::new(e));
            }
        }
        // Ids were assigned before dedup, so the retained maximum — not
        // the retained count — bounds the id space; `entries.len()`
        // would let a later insert reserve an id a kept entry already
        // carries.
        let next_id = entries.iter().map(|e| e.id + 1).max().unwrap_or(0);
        // Rule-2 order: higher reduction ratio first, then longer job
        // time; stable so equal scores keep arrival order, matching
        // incremental insertion.
        entries.sort_by(|a, b| {
            let ka = (a.base.reduction_ratio(), a.base.job_time_s);
            let kb = (b.base.reduction_ratio(), b.base.job_time_s);
            kb.partial_cmp(&ka).unwrap_or(std::cmp::Ordering::Equal)
        });
        Repository::from_entries(entries, next_id)
    }
}

/// Mutation scope over one pending snapshot; every change lands in a
/// single publish when the [`Repository::batch`] closure returns, and
/// the position-dependent indexes are rebuilt once at that point.
pub struct RepoBatch<'a> {
    snap: &'a mut RepoSnapshot,
    next_id: &'a AtomicU64,
    /// A structural mutation happened: reindex before publishing.
    dirty: bool,
    /// Structural ops in application order, handed to the journal sink
    /// at publish time.
    ops: Vec<RepoOp>,
}

impl RepoBatch<'_> {
    /// Insert an entry (see [`Repository::insert`]).
    pub fn insert(
        &mut self,
        plan: PhysicalPlan,
        output_path: impl Into<String>,
        stats: RepoStats,
    ) -> InsertOutcome {
        // Reserve the id optimistically; duplicates leave a gap in the
        // id space, which nothing depends on.
        let id = self.next_id.fetch_add(1, SeqCst);
        let (outcome, stored) =
            self.snap.do_insert(RepoEntry::new(id, plan, output_path.into(), stats));
        if matches!(outcome, InsertOutcome::Inserted(_)) {
            self.dirty = true;
        } else {
            // Roll the reservation back when we were the only claimant.
            let _ = self.next_id.compare_exchange(id + 1, id, SeqCst, SeqCst);
        }
        if let Some(e) = stored {
            self.ops.push(RepoOp::Put(e));
        }
        outcome
    }

    /// Journal replay: (re)store an entry under an **explicit id**,
    /// reproducing exactly what the journaled batch did. An existing
    /// entry with the id is replaced in place (the refresh path); a
    /// fresh id inserts at the §3/§5 position, like the original
    /// insertion. Idempotent — applying a record over a base checkpoint
    /// that already contains its effects is a no-op in the serialized
    /// state.
    pub(crate) fn put(
        &mut self,
        id: u64,
        plan: PhysicalPlan,
        output_path: String,
        stats: RepoStats,
    ) {
        self.next_id.fetch_max(id + 1, SeqCst);
        let entry = RepoEntry::new(id, plan, output_path, stats);
        let existing = self
            .snap
            .entries
            .iter()
            .position(|e| e.id == id)
            // A same-signature entry under another id means the live
            // session refreshed that entry; mirror it defensively.
            .or_else(|| {
                self.snap
                    .by_signature
                    .get(&entry.signature)
                    .and_then(|dup| self.snap.entries.iter().position(|e| e.id == *dup))
            });
        match existing {
            Some(pos) => {
                let old = self.snap.entries[pos].clone();
                self.snap.by_signature.remove(&old.signature);
                self.snap.stored_bytes =
                    self.snap.stored_bytes - old.base.output_bytes + entry.base.output_bytes;
                let replacement = RepoEntry {
                    id: old.id,
                    plan: entry.plan,
                    signature: entry.signature,
                    tip_signature: entry.tip_signature,
                    output_path: entry.output_path,
                    base: entry.base,
                    usage: Arc::new(Usage {
                        count: AtomicU64::new(entry.usage.count.load(SeqCst)),
                        last_used: AtomicU64::new(entry.usage.last_used.load(SeqCst)),
                        dirty: AtomicBool::new(false),
                    }),
                };
                self.snap.by_signature.insert(replacement.signature, replacement.id);
                let arc = Arc::new(replacement);
                self.snap.entries[pos] = arc.clone();
                self.ops.push(RepoOp::Put(arc));
            }
            None => {
                let pos = self.snap.insert_position(&entry);
                self.snap.by_signature.insert(entry.signature, entry.id);
                self.snap.stored_bytes += entry.base.output_bytes;
                let arc = Arc::new(entry);
                self.snap.entries.insert(pos, arc.clone());
                self.ops.push(RepoOp::Put(arc));
            }
        }
        self.dirty = true;
    }

    /// Remove an entry, returning it (see [`Repository::evict`]).
    pub fn evict(&mut self, id: u64) -> Option<Arc<RepoEntry>> {
        let e = self.snap.do_evict(id);
        if e.is_some() {
            self.dirty = true;
            self.ops.push(RepoOp::Evict(id));
        }
        e
    }

    /// The batch's pending view (prior mutations of this batch
    /// visible). Mid-batch, `entries()`, `contains_plan`, and
    /// `stored_bytes` are current, but the position-dependent lookups
    /// (`get`, `contains_id`, the match strategies) may lag behind this
    /// batch's own structural changes — they are rebuilt at publish.
    pub fn pending(&self) -> &RepoSnapshot {
        self.snap
    }
}

fn find_close_quote(s: &str) -> Result<usize> {
    let bytes = s.as_bytes();
    if bytes.first() != Some(&b'"') {
        return Err(Error::Repository(format!("expected quoted path in {s:?}")));
    }
    let mut i = 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return Ok(i),
            _ => i += 1,
        }
    }
    Err(Error::Repository("unterminated quoted path".into()))
}

fn unquote_header(s: &str) -> Result<String> {
    // Reuse plan_text's unquoter through a tiny shim.
    crate::plan_text::decode_plan(&format!("0 load {s}\n")).map(|p| match p.op(p.loads()[0]) {
        restore_dataflow::physical::PhysicalOp::Load { path } => path.clone(),
        _ => unreachable!(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use restore_dataflow::physical::PhysicalOp;

    fn load_project(path: &str, cols: Vec<usize>) -> PhysicalPlan {
        let mut p = PhysicalPlan::new();
        let l = p.add(PhysicalOp::Load { path: path.into() }, vec![]);
        let pr = p.add(PhysicalOp::Project { cols }, vec![l]);
        p.add(PhysicalOp::Store { path: format!("/repo/{path}") }, vec![pr]);
        p
    }

    fn q1_plan() -> PhysicalPlan {
        let mut p = PhysicalPlan::new();
        let l1 = p.add(PhysicalOp::Load { path: "/users".into() }, vec![]);
        let p1 = p.add(PhysicalOp::Project { cols: vec![0] }, vec![l1]);
        let l2 = p.add(PhysicalOp::Load { path: "/pv".into() }, vec![]);
        let p2 = p.add(PhysicalOp::Project { cols: vec![0, 2] }, vec![l2]);
        let j = p.add(PhysicalOp::Join { keys: vec![vec![0], vec![0]] }, vec![p1, p2]);
        p.add(PhysicalOp::Store { path: "/q1".into() }, vec![j]);
        p
    }

    fn stats(input: u64, output: u64, time: f64) -> RepoStats {
        RepoStats {
            input_bytes: input,
            output_bytes: output,
            job_time_s: time,
            ..Default::default()
        }
    }

    #[test]
    fn insert_and_match() {
        let repo = Repository::new();
        repo.insert(load_project("/pv", vec![0, 2]), "/repo/b", stats(100, 10, 5.0));
        let (id, m) = repo.find_first_match(&q1_plan()).unwrap();
        assert_eq!(repo.get(id).unwrap().output_path, "/repo/b");
        assert!(matches!(q1_plan().op(m.tip), PhysicalOp::Project { .. }));
    }

    #[test]
    fn duplicate_signature_refreshes_stats() {
        let repo = Repository::new();
        let a = repo.insert(load_project("/pv", vec![0]), "/r/1", stats(100, 10, 5.0));
        let InsertOutcome::Inserted(id) = a else { panic!() };
        repo.note_use(id, 3);
        let b = repo.insert(load_project("/pv", vec![0]), "/r/2", stats(100, 12, 6.0));
        assert_eq!(b, InsertOutcome::Duplicate(id));
        assert_eq!(repo.len(), 1);
        let e = repo.get(id).unwrap();
        assert_eq!(e.stats().output_bytes, 12); // refreshed
        assert_eq!(e.stats().use_count, 1); // history kept
        assert_eq!(e.output_path, "/r/1"); // original output retained
        assert_eq!(repo.stored_bytes(), 12); // counter follows the refresh
    }

    #[test]
    fn refreshed_entry_shares_usage_with_stale_snapshots() {
        let repo = Repository::new();
        let InsertOutcome::Inserted(id) =
            repo.insert(load_project("/pv", vec![0]), "/r/1", stats(100, 10, 5.0))
        else {
            panic!()
        };
        // A reader holds the pre-refresh snapshot…
        let stale = repo.snapshot();
        repo.insert(load_project("/pv", vec![0]), "/r/2", stats(100, 12, 6.0));
        // …and records a reuse against it. The refreshed entry must see
        // it: the counters are shared, not copied.
        stale.get(id).unwrap().note_use(9);
        assert_eq!(repo.get(id).unwrap().use_count(), 1);
        assert_eq!(repo.get(id).unwrap().last_used(), 9);
    }

    #[test]
    fn subsuming_plan_ordered_first() {
        let repo = Repository::new();
        // Insert the small plan first…
        repo.insert(load_project("/pv", vec![0, 2]), "/r/sub", stats(100, 50, 2.0));
        // …then the Q1 plan that subsumes it.
        repo.insert(q1_plan(), "/r/q1", stats(200, 20, 30.0));
        let snap = repo.snapshot();
        assert_eq!(snap.entries()[0].output_path, "/r/q1");
        assert_eq!(snap.entries()[1].output_path, "/r/sub");
        // A fresh Q1-shaped query now matches the *whole* Q1 plan first
        // (the paper's "first match is best match").
        let (id, _) = repo.find_first_match(&q1_plan()).unwrap();
        assert_eq!(repo.get(id).unwrap().output_path, "/r/q1");
    }

    #[test]
    fn incomparable_plans_ordered_by_reduction_then_time() {
        let repo = Repository::new();
        repo.insert(load_project("/a", vec![0]), "/r/low", stats(100, 50, 9.0));
        repo.insert(load_project("/b", vec![0]), "/r/high", stats(100, 5, 1.0));
        // ratio 20 beats ratio 2 despite lower time.
        assert_eq!(repo.snapshot().entries()[0].output_path, "/r/high");
        // Same ratio: longer time first.
        let repo = Repository::new();
        repo.insert(load_project("/a", vec![0]), "/r/fast", stats(100, 10, 1.0));
        repo.insert(load_project("/b", vec![0]), "/r/slow", stats(100, 10, 9.0));
        assert_eq!(repo.snapshot().entries()[0].output_path, "/r/slow");
    }

    #[test]
    fn eviction_removes_entry_and_signature() {
        let repo = Repository::new();
        let InsertOutcome::Inserted(id) =
            repo.insert(load_project("/a", vec![0]), "/r/a", stats(1, 1, 1.0))
        else {
            panic!()
        };
        assert!(repo.evict(id).is_some());
        assert!(repo.is_empty());
        assert_eq!(repo.stored_bytes(), 0);
        // Same plan can be inserted again afterwards.
        let again = repo.insert(load_project("/a", vec![0]), "/r/a2", stats(1, 1, 1.0));
        assert!(matches!(again, InsertOutcome::Inserted(_)));
    }

    #[test]
    fn fingerprint_index_agrees_with_scan() {
        let scan = Repository::new();
        let indexed = Repository::new();
        indexed.set_fingerprint_index(true);
        for (i, cols) in [vec![0], vec![1], vec![0, 2], vec![2]].into_iter().enumerate() {
            let s = stats(100 + i as u64, 10, i as f64);
            scan.insert(load_project("/pv", cols.clone()), format!("/r/{i}"), s.clone());
            indexed.insert(load_project("/pv", cols), format!("/r/{i}"), s);
        }
        let q = q1_plan();
        let a = scan.find_first_match(&q).map(|(id, m)| (id, m.tip));
        let b = indexed.find_first_match(&q).map(|(id, m)| (id, m.tip));
        assert_eq!(a, b);
        assert!(a.is_some());
        // And both agree on a non-match.
        let other = load_project("/nowhere", vec![9]);
        assert!(scan.find_first_match(&other).is_none());
        assert!(indexed.find_first_match(&other).is_none());
        // The two strategies are also exposed side by side on one
        // snapshot, for the ablation bench and parity tests.
        let snap = scan.snapshot();
        let none = HashSet::new();
        assert_eq!(
            snap.find_first_match_scan(&q, &none).map(|(id, m)| (id, m.tip)),
            snap.find_first_match_indexed(&q, &none).map(|(id, m)| (id, m.tip)),
        );
    }

    #[test]
    fn snapshot_readers_are_isolated_from_mutations() {
        let repo = Repository::new();
        repo.insert(load_project("/pv", vec![0, 2]), "/r/b", stats(100, 10, 5.0));
        let before = repo.snapshot();
        repo.batch(|b| {
            b.insert(load_project("/x", vec![1]), "/r/x", stats(50, 5, 1.0));
            b.insert(load_project("/y", vec![1]), "/r/y", stats(50, 5, 1.0));
        });
        assert_eq!(before.len(), 1, "held snapshot unchanged");
        assert_eq!(repo.len(), 3, "batch landed atomically");
        // The old snapshot still matches correctly.
        assert!(before.find_first_match(&q1_plan()).is_some());
    }

    #[test]
    fn note_use_publishes_no_snapshot() {
        let repo = Repository::new();
        let InsertOutcome::Inserted(id) =
            repo.insert(load_project("/pv", vec![0]), "/r/1", stats(100, 10, 5.0))
        else {
            panic!()
        };
        let publishes = repo.publish_count();
        for t in 1..=100 {
            repo.note_use(id, t);
        }
        assert_eq!(repo.publish_count(), publishes, "reuse accounting is write-free");
        assert_eq!(repo.get(id).unwrap().use_count(), 100);
        assert_eq!(repo.get(id).unwrap().last_used(), 100);
    }

    #[test]
    fn save_load_round_trip() {
        let repo = Repository::new();
        repo.insert(
            q1_plan(),
            "/r/q1",
            RepoStats {
                input_bytes: 1000,
                output_bytes: 50,
                job_time_s: 12.5,
                avg_map_time_s: 1.5,
                avg_reduce_time_s: 2.5,
                use_count: 3,
                last_used: 9,
                created: 1,
                input_files: vec![("/pv".into(), 0), ("/users dir/x".into(), 2)],
            },
        );
        repo.insert(load_project("/pv", vec![0, 2]), "/r/sub", stats(100, 10, 2.0));
        let text = repo.save();
        let back = Repository::load(&text).unwrap();
        assert_eq!(back.len(), 2);
        let (b, r) = (back.snapshot(), repo.snapshot());
        assert_eq!(b.entries()[0].output_path, r.entries()[0].output_path);
        assert_eq!(b.entries()[0].signature, r.entries()[0].signature);
        assert_eq!(b.entries()[0].stats(), r.entries()[0].stats());
        assert_eq!(b.entries()[0].tip_signature, r.entries()[0].tip_signature);
        assert_eq!(b.stored_bytes(), r.stored_bytes());
        // Loaded repository still matches.
        assert!(back.find_first_match(&q1_plan()).is_some());
        // And re-saving is byte-identical (usage counters round-trip).
        assert_eq!(back.save(), text);
    }

    #[test]
    fn bulk_load_orders_by_score_and_keeps_ids_unique_after_dedup() {
        let repo = Repository::bulk_load(vec![
            (load_project("/a", vec![0]), "/r/a".into(), stats(100, 50, 1.0)),
            // Duplicate signature: dropped, but its id (1) was consumed.
            (load_project("/a", vec![0]), "/r/dup".into(), stats(100, 50, 9.0)),
            (load_project("/b", vec![0]), "/r/b".into(), stats(100, 5, 1.0)),
        ]);
        assert_eq!(repo.len(), 2, "duplicate signatures keep the first occurrence");
        // Rule-2 order: ratio 20 before ratio 2.
        assert_eq!(repo.snapshot().entries()[0].output_path, "/r/b");
        // A post-bulk insert must not reuse a retained id: entry "/r/b"
        // carries id 2, so the next insert gets 3.
        let InsertOutcome::Inserted(next) =
            repo.insert(load_project("/c", vec![0]), "/r/c", stats(1, 1, 1.0))
        else {
            panic!()
        };
        let ids: Vec<u64> = repo.snapshot().entries().iter().map(|e| e.id).collect();
        let unique: HashSet<u64> = ids.iter().copied().collect();
        assert_eq!(ids.len(), unique.len(), "ids stay unique after bulk dedup, got {ids:?}");
        assert_eq!(next, 3);
        // And matching still works against the bulk-built indexes.
        assert!(repo.find_first_match(&q1_plan()).is_none());
        let (hit, _) = repo
            .find_first_match(&{
                let mut p = load_project("/b", vec![0]);
                let tip = p.stores()[0];
                let before = p.inputs(tip)[0];
                let g = p.add(PhysicalOp::Group { keys: vec![0] }, vec![before]);
                p.add(PhysicalOp::Store { path: "/out".into() }, vec![g]);
                p
            })
            .unwrap();
        assert_eq!(repo.get(hit).unwrap().output_path, "/r/b");
    }

    #[test]
    fn stored_bytes_is_maintained_incrementally() {
        let repo = Repository::new();
        repo.insert(load_project("/a", vec![0]), "/r/a", stats(100, 30, 1.0));
        let InsertOutcome::Inserted(b) =
            repo.insert(load_project("/b", vec![0]), "/r/b", stats(100, 12, 1.0))
        else {
            panic!()
        };
        assert_eq!(repo.stored_bytes(), 42);
        repo.evict(b);
        assert_eq!(repo.stored_bytes(), 30);
    }
}
