//! The ReStore repository of MapReduce job outputs — §2.2 and §5.
//!
//! Each entry holds "(1) the physical query execution plan of the
//! MapReduce job that was executed to produce this output, (2) the
//! filename of the output in the distributed file system, and (3)
//! statistics about the MapReduce job that produced the output and the
//! frequency of use of this output".
//!
//! Entries are kept **ordered** so the sequential scan's first match is
//! the best match (§3): plans that subsume others come first; among
//! incomparable plans, higher input/output reduction ratio, then longer
//! job execution time, win.
//!
//! # Concurrency: RCU snapshots
//!
//! The repository is the hottest shared structure in a multi-session
//! deployment, and its read/write mix is extreme: every job of every
//! workflow matches against it (reads), while only executed waves and
//! eviction sweeps mutate it. It is therefore published as immutable
//! [`RepoSnapshot`]s through an [`Rcu`](crate::rcu::Rcu) cell:
//!
//! * **readers** ([`Repository::snapshot`]) get the current snapshot
//!   lock-free — no lock, no contention with mutations — and match,
//!   resolve paths, and read statistics entirely from it;
//! * **writers** ([`Repository::insert`], [`Repository::evict`],
//!   [`Repository::batch`]) clone the snapshot, mutate the clone, and
//!   publish it; concurrent readers keep their old snapshot;
//! * **reuse accounting** ([`Repository::note_use`]) touches neither
//!   side: `use_count`/`last_used` live in atomics shared by every
//!   snapshot that contains the entry, so recording a reuse is a pair
//!   of atomic RMWs — no snapshot is rebuilt and no writer is blocked.
//!
//! Inside a snapshot, lookups that the locked design recomputed per
//! call are precomputed at publish time: an id → position map (O(1)
//! [`RepoSnapshot::get`]), a cached tip signature per entry, an inverted
//! tip-signature → candidates multimap (the `find_first_match_indexed`
//! pre-filter runs in O(1) per input node instead of O(entries)), and a
//! running `stored_bytes` total maintained on insert/evict instead of
//! re-summed per call. The paper's sequential scan
//! ([`RepoSnapshot::find_first_match_scan`]) remains the verification /
//! ablation path; both return byte-identical results because indexed
//! candidates are verified with the full traversal in repository order.

use crate::matcher::{pairwise_plan_traversal, plan_tip, subsumes, PlanMatch};
use crate::plan_text;
use crate::rcu::{Rcu, RcuWriter};
use parking_lot::{Mutex, RwLock};
use restore_common::{Error, Result};
use restore_dataflow::physical::PhysicalPlan;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed, Ordering::SeqCst};
use std::sync::Arc;

/// Execution statistics of a stored job output (§2.2, §5).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RepoStats {
    /// Bytes the producing job loaded (modeled/actual consistent units).
    pub input_bytes: u64,
    /// Bytes of the stored output.
    pub output_bytes: u64,
    /// Modeled execution time of the producing job, seconds.
    pub job_time_s: f64,
    /// Average map task time of the producing job, seconds.
    pub avg_map_time_s: f64,
    /// Average reduce task time of the producing job, seconds.
    pub avg_reduce_time_s: f64,
    /// How many times this output was used to rewrite a query.
    pub use_count: u64,
    /// Logical tick (query counter) of the last reuse.
    pub last_used: u64,
    /// Logical tick at which the entry was created.
    pub created: u64,
    /// Input files and their DFS versions at creation time (eviction
    /// Rule 4 invalidates the entry when these change).
    pub input_files: Vec<(String, u64)>,
}

impl RepoStats {
    /// Rule-2 ordering metric #1: size of input over size of output.
    pub fn reduction_ratio(&self) -> f64 {
        self.input_bytes as f64 / (self.output_bytes.max(1)) as f64
    }
}

/// Live reuse counters, shared by every snapshot (and every refreshed
/// duplicate) of one entry. Recording a reuse is two atomic RMWs — no
/// repository lock, no snapshot republish. `dirty` is the per-entry
/// dirty bit behind incremental snapshots: the first reuse after a
/// delta capture flips it and enrolls the entry id in the repository's
/// dirty set, so a delta serializes only entries whose counters moved.
#[derive(Debug, Default)]
struct Usage {
    count: AtomicU64,
    last_used: AtomicU64,
    dirty: AtomicBool,
}

/// One stored job output.
#[derive(Debug)]
pub struct RepoEntry {
    pub id: u64,
    /// Base-level physical plan (single Store).
    pub plan: PhysicalPlan,
    /// Merkle signature of `plan` (Store paths excluded).
    pub signature: u64,
    /// Cached signature of the operator feeding the plan's Store (`None`
    /// for degenerate multi-Store plans). Computed once at insertion;
    /// the fingerprint index keys candidates by it.
    pub tip_signature: Option<u64>,
    /// Where the output lives in the DFS.
    pub output_path: String,
    /// Statistics at creation/refresh time. `use_count`/`last_used` in
    /// here are the *persisted baseline*; the live values come from the
    /// shared atomics (see [`RepoEntry::stats`]).
    base: RepoStats,
    usage: Arc<Usage>,
}

impl RepoEntry {
    fn new(id: u64, plan: PhysicalPlan, output_path: String, stats: RepoStats) -> RepoEntry {
        let signature = plan.signature();
        let tip_signature = plan_tip(&plan).map(|t| plan.node_signature(t));
        let usage = Arc::new(Usage {
            count: AtomicU64::new(stats.use_count),
            last_used: AtomicU64::new(stats.last_used),
            dirty: AtomicBool::new(false),
        });
        RepoEntry { id, plan, signature, tip_signature, output_path, base: stats, usage }
    }

    /// Point-in-time statistics: the stored baseline with the live
    /// `use_count`/`last_used` read from the shared atomics.
    pub fn stats(&self) -> RepoStats {
        let mut s = self.base.clone();
        s.use_count = self.usage.count.load(SeqCst);
        s.last_used = self.usage.last_used.load(SeqCst);
        s
    }

    /// Live reuse count.
    pub fn use_count(&self) -> u64 {
        self.usage.count.load(SeqCst)
    }

    /// Logical tick of the most recent reuse (0 = never).
    pub fn last_used(&self) -> u64 {
        self.usage.last_used.load(SeqCst)
    }

    fn note_use(&self, tick: u64) {
        self.usage.count.fetch_add(1, SeqCst);
        // `fetch_max`, not `store`: concurrent recorders with different
        // ticks must leave the *latest* reuse behind regardless of
        // interleaving.
        self.usage.last_used.fetch_max(tick, SeqCst);
    }
}

/// Outcome of an insertion attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// New entry stored under this id.
    Inserted(u64),
    /// An equivalent plan was already stored under this id.
    Duplicate(u64),
}

/// One immutable published state of the repository. Matching, path
/// resolution, statistics, and serialization all run against a snapshot
/// without ever touching a lock; see the module docs.
#[derive(Debug, Clone, Default)]
pub struct RepoSnapshot {
    /// Entries in match-priority order.
    entries: Vec<Arc<RepoEntry>>,
    /// id → position in `entries` (O(1) `get`).
    by_id: HashMap<u64, usize>,
    /// plan signature → entry id (deduplication).
    by_signature: HashMap<u64, u64>,
    /// tip signature → positions (ascending) of entries carrying it —
    /// the inverted index behind `find_first_match_indexed`.
    tip_index: HashMap<u64, Vec<usize>>,
    /// Running total of `output_bytes`, maintained on insert/evict
    /// instead of summed per call.
    stored_bytes: u64,
    /// Serve matches through the fingerprint index instead of the
    /// paper's sequential scan. Results are identical; speed differs
    /// (see the `bench_matching` ablation).
    indexed: bool,
}

impl RepoSnapshot {
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries in match-priority order.
    pub fn entries(&self) -> &[Arc<RepoEntry>] {
        &self.entries
    }

    /// O(1) lookup by entry id.
    pub fn get(&self, id: u64) -> Option<&Arc<RepoEntry>> {
        self.by_id.get(&id).map(|&pos| &self.entries[pos])
    }

    /// Is the entry still present in this snapshot?
    pub fn contains_id(&self, id: u64) -> bool {
        self.by_id.contains_key(&id)
    }

    /// Does any entry already compute this plan?
    pub fn contains_plan(&self, plan: &PhysicalPlan) -> Option<u64> {
        self.by_signature.get(&plan.signature()).copied()
    }

    /// Total bytes of stored outputs (repository footprint). A running
    /// counter, not a scan.
    pub fn stored_bytes(&self) -> u64 {
        self.stored_bytes
    }

    /// Is this snapshot serving matches through the fingerprint index?
    pub fn is_indexed(&self) -> bool {
        self.indexed
    }

    /// §3: return the first entry (in repository order) whose plan is
    /// contained in `input_plan`, with the match. Dispatches to the
    /// configured lookup strategy; both produce identical results.
    pub fn find_first_match(&self, input_plan: &PhysicalPlan) -> Option<(u64, PlanMatch)> {
        self.find_first_match_excluding(input_plan, &HashSet::new())
    }

    /// Like [`RepoSnapshot::find_first_match`] but skipping the listed
    /// entries. The driver excludes entries whose rewrite made no
    /// structural progress (e.g. an entry matching only its own lineage
    /// expansion) and rescans for the next-best match.
    pub fn find_first_match_excluding(
        &self,
        input_plan: &PhysicalPlan,
        exclude: &HashSet<u64>,
    ) -> Option<(u64, PlanMatch)> {
        if self.indexed {
            self.find_first_match_indexed(input_plan, exclude)
        } else {
            self.find_first_match_scan(input_plan, exclude)
        }
    }

    /// The paper's sequential scan: try every entry in repository order.
    /// Kept as the verification / ablation baseline.
    pub fn find_first_match_scan(
        &self,
        input_plan: &PhysicalPlan,
        exclude: &HashSet<u64>,
    ) -> Option<(u64, PlanMatch)> {
        for e in &self.entries {
            if exclude.contains(&e.id) {
                continue;
            }
            if let Some(m) = pairwise_plan_traversal(&e.plan, input_plan) {
                return Some((e.id, m));
            }
        }
        None
    }

    /// Fingerprint-index variant: an entry can only match when its
    /// cached tip signature equals the signature of some node of the
    /// input plan, so candidates come from the inverted tip-signature
    /// index in O(1) per input node. Candidates are verified with the
    /// full traversal in ascending repository order — identical results
    /// to the sequential scan, sub-linear candidate filtering.
    pub fn find_first_match_indexed(
        &self,
        input_plan: &PhysicalPlan,
        exclude: &HashSet<u64>,
    ) -> Option<(u64, PlanMatch)> {
        let mut candidates: Vec<usize> = Vec::new();
        for id in input_plan.ids() {
            if let Some(positions) = self.tip_index.get(&input_plan.node_signature(id)) {
                candidates.extend_from_slice(positions);
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        for pos in candidates {
            let e = &self.entries[pos];
            if exclude.contains(&e.id) {
                continue;
            }
            if let Some(m) = pairwise_plan_traversal(&e.plan, input_plan) {
                return Some((e.id, m));
            }
        }
        None
    }

    // ---- mutation internals (called with the Rcu writer serialized) ----

    /// Rebuild the position-dependent indexes after a structural change.
    fn reindex(&mut self) {
        self.by_id.clear();
        self.tip_index.clear();
        for (pos, e) in self.entries.iter().enumerate() {
            self.by_id.insert(e.id, pos);
            if let Some(tip) = e.tip_signature {
                self.tip_index.entry(tip).or_default().push(pos);
            }
        }
    }

    /// Position respecting: (rule 1) subsuming plans first; (rule 2)
    /// among incomparables, higher reduction ratio then longer job time
    /// first.
    fn insert_position(&self, new: &RepoEntry) -> usize {
        let mut lo = 0usize;
        let mut hi = self.entries.len();
        for (i, e) in self.entries.iter().enumerate() {
            let e_subsumes_new = subsumes(&e.plan, &new.plan);
            let new_subsumes_e = subsumes(&new.plan, &e.plan);
            if e_subsumes_new && !new_subsumes_e {
                lo = lo.max(i + 1);
            } else if new_subsumes_e && !e_subsumes_new {
                hi = hi.min(i);
            }
        }
        if hi < lo {
            // Conflicting constraints can only arise from signature
            // collisions; degrade to the later position.
            hi = lo;
        }
        let score = |s: &RepoStats| (s.reduction_ratio(), s.job_time_s);
        let new_score = score(&new.base);
        let mut pos = lo;
        while pos < hi {
            let existing = score(&self.entries[pos].base);
            if existing < new_score {
                break;
            }
            pos += 1;
        }
        pos
    }

    /// Batch-internal insert. Position lookups scan `entries` directly
    /// (the position maps may be stale mid-batch); the caller reindexes
    /// once before publishing — see [`Repository::batch_then`]. Returns
    /// the outcome and the `Arc` of the entry as stored (inserted or
    /// refreshed), which the batch's journal op log records.
    fn do_insert(&mut self, entry: RepoEntry) -> (InsertOutcome, Option<Arc<RepoEntry>>) {
        if let Some(&dup) = self.by_signature.get(&entry.signature) {
            let mut stored = None;
            if let Some(pos) = self.entries.iter().position(|e| e.id == dup) {
                // Refresh stats but keep usage history: the replacement
                // shares the old entry's atomic counters, so reuses
                // recorded against a stale snapshot still land here.
                let old = &self.entries[pos];
                let refreshed = RepoEntry {
                    id: old.id,
                    plan: old.plan.clone(),
                    signature: old.signature,
                    tip_signature: old.tip_signature,
                    output_path: old.output_path.clone(),
                    base: entry.base,
                    usage: old.usage.clone(),
                };
                self.stored_bytes =
                    self.stored_bytes - old.base.output_bytes + refreshed.base.output_bytes;
                let arc = Arc::new(refreshed);
                self.entries[pos] = arc.clone();
                stored = Some(arc);
            }
            return (InsertOutcome::Duplicate(dup), stored);
        }
        let pos = self.insert_position(&entry);
        let id = entry.id;
        self.by_signature.insert(entry.signature, id);
        self.stored_bytes += entry.base.output_bytes;
        let arc = Arc::new(entry);
        self.entries.insert(pos, arc.clone());
        (InsertOutcome::Inserted(id), Some(arc))
    }

    /// Batch-internal evict; same staleness contract as
    /// [`RepoSnapshot::do_insert`].
    fn do_evict(&mut self, id: u64) -> Option<Arc<RepoEntry>> {
        let pos = self.entries.iter().position(|e| e.id == id)?;
        let e = self.entries.remove(pos);
        self.by_signature.remove(&e.signature);
        self.stored_bytes -= e.base.output_bytes;
        Some(e)
    }

    // ---- persistence ----

    /// Serialize the repository (plans, paths, stats) to a durable string.
    pub fn save(&self) -> String {
        self.save_filtered(|_| true)
    }

    /// Like [`RepoSnapshot::save`], but only entries whose output path
    /// satisfies `keep` are written. The driver's `save_state` passes a
    /// liveness predicate so entries condemned by a pending deferred
    /// deletion (or already gone from the DFS) never enter a snapshot
    /// as dangling paths.
    pub fn save_filtered(&self, keep: impl Fn(&str) -> bool) -> String {
        let mut out = String::new();
        for e in &self.entries {
            if !keep(&e.output_path) {
                continue;
            }
            encode_entry_into(&mut out, e);
        }
        out
    }
}

/// Append one entry in the durable `entry …` block format. Shared by
/// [`RepoSnapshot::save_filtered`] and the snapshot journal's
/// `repo-batch` records, so a journaled insert and a full dump agree
/// byte for byte.
pub(crate) fn encode_entry_into(out: &mut String, e: &RepoEntry) {
    let stats = e.stats();
    out.push_str(&format!(
        "entry {} {:?} {} {} {} {} {} {} {} {}\n",
        e.id,
        e.output_path,
        stats.input_bytes,
        stats.output_bytes,
        stats.job_time_s,
        stats.avg_map_time_s,
        stats.avg_reduce_time_s,
        stats.use_count,
        stats.last_used,
        stats.created,
    ));
    for (p, v) in &stats.input_files {
        out.push_str(&format!("input {p:?} {v}\n"));
    }
    out.push_str("plan\n");
    for line in plan_text::encode_plan(&e.plan).lines() {
        out.push_str("  ");
        out.push_str(line);
        out.push('\n');
    }
    out.push_str("end\n");
}

/// One decoded `entry …` block (see [`parse_entry_lines`]).
#[derive(Debug)]
pub(crate) struct ParsedEntry {
    pub id: u64,
    pub output_path: String,
    pub stats: RepoStats,
    pub plan: PhysicalPlan,
}

/// Parse the next `entry …` block off the line iterator. Returns
/// `Ok(None)` — consuming nothing — when the next non-empty line does
/// not start an entry block, so callers with mixed-record bodies (the
/// journal) can dispatch on the leading keyword.
pub(crate) fn parse_entry_lines(
    lines: &mut std::iter::Peekable<std::str::Lines<'_>>,
) -> Result<Option<ParsedEntry>> {
    while let Some(l) = lines.peek() {
        if l.trim_end().is_empty() {
            lines.next();
        } else {
            break;
        }
    }
    let Some(line) = lines.peek() else { return Ok(None) };
    let Some(rest) = line.trim_end().strip_prefix("entry ") else { return Ok(None) };
    let rest = rest.to_string();
    lines.next();
    let (id_str, rest) =
        rest.split_once(' ').ok_or_else(|| Error::Repository("truncated entry header".into()))?;
    let id: u64 = id_str.parse().map_err(|_| Error::Repository("bad entry id".into()))?;
    // Path is Rust-quoted and may contain spaces: find closing quote.
    let close = find_close_quote(rest)?;
    let output_path = unquote_header(&rest[..=close])?;
    let nums: Vec<&str> = rest[close + 1..].split_whitespace().collect();
    if nums.len() != 8 {
        return Err(Error::Repository(format!("expected 8 stat fields, got {}", nums.len())));
    }
    let parse_u = |s: &str| s.parse::<u64>().map_err(|_| Error::Repository("bad stat".into()));
    let parse_f = |s: &str| s.parse::<f64>().map_err(|_| Error::Repository("bad stat".into()));
    let mut stats = RepoStats {
        input_bytes: parse_u(nums[0])?,
        output_bytes: parse_u(nums[1])?,
        job_time_s: parse_f(nums[2])?,
        avg_map_time_s: parse_f(nums[3])?,
        avg_reduce_time_s: parse_f(nums[4])?,
        use_count: parse_u(nums[5])?,
        last_used: parse_u(nums[6])?,
        created: parse_u(nums[7])?,
        input_files: Vec::new(),
    };
    // Optional input lines, then "plan".
    loop {
        let l = lines.next().ok_or_else(|| Error::Repository("truncated entry".into()))?;
        if l == "plan" {
            break;
        }
        let rest = l
            .strip_prefix("input ")
            .ok_or_else(|| Error::Repository(format!("unexpected line {l:?}")))?;
        let close = find_close_quote(rest)?;
        let path = unquote_header(&rest[..=close])?;
        let version: u64 = rest[close + 1..]
            .trim()
            .parse()
            .map_err(|_| Error::Repository("bad input version".into()))?;
        stats.input_files.push((path, version));
    }
    let mut plan_src = String::new();
    loop {
        let l = lines.next().ok_or_else(|| Error::Repository("truncated plan".into()))?;
        if l == "end" {
            break;
        }
        plan_src.push_str(l.trim_start());
        plan_src.push('\n');
    }
    let plan = plan_text::decode_plan(&plan_src)?;
    Ok(Some(ParsedEntry { id, output_path, stats, plan }))
}

/// One structural mutation of a published batch, in application order.
/// The journal sink receives the batch's ops at publish time and turns
/// them into one `repo-batch` record.
#[derive(Debug, Clone)]
pub enum RepoOp {
    /// An entry was inserted or refreshed; the `Arc` is the entry as
    /// stored (so the sink serializes exactly what readers see).
    Put(Arc<RepoEntry>),
    /// An entry was evicted.
    Evict(u64),
}

/// Callback invoked inside the writer section, after a batch publishes,
/// with the index of the shard that published and the batch's
/// structural ops for that shard. Installed by the driver when
/// incremental snapshots are enabled; with several shards the sink is
/// called from concurrent writer sections, one per shard, so it must
/// be thread-safe (the journal's lane design is).
pub type RepoSink = Arc<dyn Fn(usize, &[RepoOp]) + Send + Sync>;

/// Hard ceiling on the shard count: beyond this, striping buys nothing
/// (there are not that many writer cores) and per-shard overheads
/// dominate. Config decoding rejects larger values with a typed
/// [`Error::Config`]; constructors clamp defensively.
pub const MAX_REPO_SHARDS: usize = 1024;

/// Normalize a configured shard count: 0 (unset/default-constructed)
/// means 1, and anything past [`MAX_REPO_SHARDS`] is clamped to it.
pub fn normalize_shards(n: usize) -> usize {
    n.clamp(1, MAX_REPO_SHARDS)
}

/// The shard owning a tip signature. The Merkle hash is run through a
/// splitmix64-style finalizer before the modulo: raw signatures of
/// structurally similar plans can share low bits (observed in practice
/// for whole families of blocking tips), and `%` only looks at low
/// bits. Degenerate plans without a tip live in shard 0.
fn shard_index(tip: Option<u64>, nshards: usize) -> usize {
    if nshards <= 1 {
        return 0;
    }
    match tip {
        Some(t) => {
            let mut z = t.wrapping_add(0x9e3779b97f4a7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^= z >> 31;
            (z % nshards as u64) as usize
        }
        None => 0,
    }
}

/// The sink cell; a newtype so `Repository` keeps its derived traits
/// (`dyn Fn` is neither `Debug` nor `Default`).
#[derive(Default)]
struct SinkCell(RwLock<Option<RepoSink>>);

impl std::fmt::Debug for SinkCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("SinkCell").field(&self.0.read().is_some()).finish()
    }
}

/// The ordered, concurrently shared repository.
///
/// All methods take `&self`: reads are lock-free against the current
/// [`RepoSnapshot`], mutations serialize internally and publish a new
/// snapshot (see the module docs). For several mutations that must land
/// atomically — a wave's registrations, an eviction sweep — use
/// [`Repository::batch`], which publishes once.
#[derive(Debug)]
pub struct Repository {
    /// The striped store: one independently published RCU cell per
    /// shard, keyed by tip-signature hash (see [`shard_index`]). One
    /// shard (the default) is exactly the pre-sharding repository;
    /// writers into different shards never contend.
    shards: Vec<Rcu<RepoSnapshot>>,
    /// Globally ordered id allocation across every shard.
    next_id: AtomicU64,
    /// Journal sink for structural mutations (see [`RepoSink`]).
    sink: SinkCell,
    /// Record which entries' usage counters moved since the last delta
    /// capture (see [`Repository::drain_dirty_usage`]). Off unless
    /// incremental snapshots are enabled, keeping the match path free
    /// of even the uncontended first-use push.
    track_usage: AtomicBool,
    /// Ids whose usage dirty bit was freshly set; drained per delta.
    dirty_used: Mutex<Vec<u64>>,
    /// How many writer sections were entered (one per shard touched per
    /// mutation; batches and freezes count every shard they lock).
    /// Benchmarks report this next to [`Repository::publish_count`] to
    /// attribute wall-time to write-side serialization.
    writer_sections: AtomicU64,
}

impl Default for Repository {
    fn default() -> Self {
        Repository::with_shards(1)
    }
}

impl Repository {
    pub fn new() -> Self {
        Repository::default()
    }

    /// A repository striped into `shards` independently published
    /// shards. 0 normalizes to 1 (today's single-shard behavior);
    /// absurd counts clamp to [`MAX_REPO_SHARDS`] — config decoding
    /// rejects them earlier with a typed error.
    pub fn with_shards(shards: usize) -> Self {
        let n = normalize_shards(shards);
        Repository {
            shards: (0..n).map(|_| Rcu::default()).collect(),
            next_id: AtomicU64::new(0),
            sink: SinkCell::default(),
            track_usage: AtomicBool::new(false),
            dirty_used: Mutex::new(Vec::new()),
            writer_sections: AtomicU64::new(0),
        }
    }

    /// Number of shards the store is striped into (≥ 1).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The current published snapshot. With one shard (the default)
    /// this is the shard's snapshot — lock-free, zero-copy, exactly the
    /// pre-sharding behavior. With several shards it **materializes** a
    /// merged snapshot (entries concatenated in shard order, indexes
    /// rebuilt): convenient for introspection, stats, and persistence,
    /// but O(entries) per call — hot paths should use
    /// [`Repository::view`], which is lock-free per shard and
    /// copy-free.
    pub fn snapshot(&self) -> Arc<RepoSnapshot> {
        if self.shards.len() == 1 {
            return self.shards[0].load();
        }
        let view = self.view();
        let mut snap = RepoSnapshot { indexed: view.is_indexed(), ..Default::default() };
        for s in view.shards() {
            snap.stored_bytes += s.stored_bytes;
            for e in &s.entries {
                snap.by_signature.insert(e.signature, e.id);
                snap.entries.push(e.clone());
            }
        }
        snap.reindex();
        Arc::new(snap)
    }

    /// A coherent multi-shard read view: one lock-free snapshot load
    /// per shard, no copying. Matching, path resolution, and statistics
    /// against a view see each shard frozen at its load; cross-shard
    /// skew is benign for the same reason concurrent eviction is — the
    /// match loop revalidates against fresh state after pinning.
    pub fn view(&self) -> RepoView {
        RepoView { shards: self.shards.iter().map(|s| s.load()).collect() }
    }

    /// Number of snapshots published so far, summed over shards. Hot
    /// paths documented as write-free (matching, reuse accounting) can
    /// assert it stays put.
    pub fn publish_count(&self) -> u64 {
        self.shards.iter().map(|s| s.version()).sum()
    }

    /// How many writer sections were entered so far (see the field
    /// docs); `bench_concurrent` reports the per-round delta.
    pub fn writer_sections(&self) -> u64 {
        self.writer_sections.load(SeqCst)
    }

    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.load().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.load().is_empty())
    }

    /// Entries across every shard, in shard-concatenation order (within
    /// a shard: match-priority order).
    pub fn entries(&self) -> Vec<Arc<RepoEntry>> {
        self.view().entries()
    }

    /// O(1)-per-shard lookup by id.
    pub fn get(&self, id: u64) -> Option<Arc<RepoEntry>> {
        self.shards.iter().find_map(|s| s.load().get(id).cloned())
    }

    /// Does any entry already compute this plan? Probes exactly the
    /// owning shard (the plan's tip signature picks it).
    pub fn contains_plan(&self, plan: &PhysicalPlan) -> Option<u64> {
        let tip = plan_tip(plan).map(|t| plan.node_signature(t));
        self.shards[shard_index(tip, self.shards.len())].load().contains_plan(plan)
    }

    /// Total bytes of stored outputs (running counters, summed).
    pub fn stored_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.load().stored_bytes()).sum()
    }

    /// Route matches through the fingerprint index (`true`) or the
    /// paper's sequential scan (`false`, the default). Published with
    /// each shard's snapshot, so in-flight readers keep the strategy
    /// they started with.
    pub fn set_fingerprint_index(&self, indexed: bool) {
        for s in &self.shards {
            s.update(|snap| snap.indexed = indexed);
        }
    }

    /// Is the fingerprint index active?
    pub fn use_fingerprint_index(&self) -> bool {
        self.shards[0].load().indexed
    }

    /// Insert an entry, maintaining the §3 ordering rules. Deduplicates
    /// by plan signature (the later execution refreshes statistics).
    ///
    /// Takes only the owning shard's writer section: concurrent inserts
    /// whose tip signatures hash to different shards proceed fully in
    /// parallel — this is the multi-core write path the striping buys.
    pub fn insert(
        &self,
        plan: PhysicalPlan,
        output_path: impl Into<String>,
        stats: RepoStats,
    ) -> InsertOutcome {
        // Reserve the id before entering the shard: allocation order is
        // global, so replay order across shards stays well defined.
        let id = self.next_id.fetch_add(1, SeqCst);
        let entry = RepoEntry::new(id, plan, output_path.into(), stats);
        let sidx = shard_index(entry.tip_signature, self.shards.len());
        let w = self.shards[sidx].writer();
        self.writer_sections.fetch_add(1, Relaxed);
        let mut next = w.current().clone();
        let (outcome, stored) = next.do_insert(entry);
        if matches!(outcome, InsertOutcome::Inserted(_)) {
            next.reindex();
        } else {
            // Roll the reservation back when we were the only claimant.
            let _ = self.next_id.compare_exchange(id + 1, id, SeqCst, SeqCst);
        }
        if let Some(e) = stored {
            w.publish(next);
            if let Some(sink) = self.sink.0.read().clone() {
                sink(sidx, &[RepoOp::Put(e)]);
            }
        }
        outcome
    }

    /// Record a reuse of entry `id` at logical time `tick`. Entirely
    /// atomic: no lock is taken and no snapshot is republished, so a
    /// match never blocks or is blocked by registration. With usage
    /// tracking on (incremental snapshots), the *first* reuse after a
    /// delta capture additionally enrolls the id in the dirty set — an
    /// uncontended mutex push amortized over the checkpoint interval;
    /// every further reuse of the entry stays lock-free.
    pub fn note_use(&self, id: u64, tick: u64) {
        if let Some(e) = self.shards.iter().find_map(|s| s.load().get(id).cloned()) {
            e.note_use(tick);
            if self.track_usage.load(Relaxed) && !e.usage.dirty.swap(true, SeqCst) {
                self.dirty_used.lock().push(id);
            }
        }
    }

    /// Install (or clear) the journal sink receiving each published
    /// batch's structural ops, and start tracking dirty usage. Crate
    /// internal: only the driver's journal wiring may install sinks.
    pub(crate) fn set_journal_sink(&self, sink: Option<RepoSink>) {
        self.track_usage.store(sink.is_some(), Relaxed);
        *self.sink.0.write() = sink;
    }

    /// Drain the entries whose reuse counters moved since the previous
    /// drain, returning `(id, use_count, last_used)` triples — the body
    /// of a `note-use` journal record. Cost is proportional to the
    /// number of *dirty* entries, not the repository size. A reuse
    /// racing the drain either lands in the returned values or re-marks
    /// the entry dirty for the next delta; the recorded values are
    /// absolute, so replaying both is idempotent. Crate internal: the
    /// drain is destructive (it clears the dirty set), so only the
    /// driver's delta capture may call it — an outside caller would
    /// silently lose the pending `note-use` delta.
    pub(crate) fn drain_dirty_usage(&self) -> Vec<(u64, u64, u64)> {
        let ids = std::mem::take(&mut *self.dirty_used.lock());
        if ids.is_empty() {
            return Vec::new();
        }
        let view = self.view();
        ids.into_iter()
            .filter_map(|id| {
                view.get(id).map(|e| {
                    // Clear the dirty bit *before* reading the counters:
                    // a racing reuse after the clear re-marks the entry,
                    // so its bump is never lost between deltas.
                    e.usage.dirty.store(false, SeqCst);
                    (id, e.usage.count.load(SeqCst), e.usage.last_used.load(SeqCst))
                })
            })
            .collect()
    }

    /// Set an entry's reuse counters to absolute values (journal
    /// replay of a `note-use` record). Touches only the shared atomics;
    /// no snapshot is published.
    pub(crate) fn set_usage(&self, id: u64, count: u64, last_used: u64) {
        if let Some(e) = self.view().get(id) {
            e.usage.count.store(count, SeqCst);
            e.usage.last_used.store(last_used, SeqCst);
        }
    }

    /// Remove an entry, returning it. Like [`Repository::insert`], only
    /// the owning shard's writer section is taken: a lock-free probe
    /// locates the shard holding the id, then the removal re-checks
    /// under that shard's writer (the entry may have been evicted by a
    /// racing sweep in between — ids never move across shards, so the
    /// probe cannot go stale any other way).
    pub fn evict(&self, id: u64) -> Option<Arc<RepoEntry>> {
        let sidx = self.shards.iter().position(|s| s.load().contains_id(id))?;
        let w = self.shards[sidx].writer();
        self.writer_sections.fetch_add(1, Relaxed);
        let mut next = w.current().clone();
        let e = next.do_evict(id)?;
        next.reindex();
        w.publish(next);
        if let Some(sink) = self.sink.0.read().clone() {
            sink(sidx, &[RepoOp::Evict(id)]);
        }
        Some(e)
    }

    /// Apply several mutations as one atomically published snapshot:
    /// concurrent readers see either none or all of the batch. Mutation
    /// batches serialize on the internal writer lock.
    pub fn batch<R>(&self, f: impl FnOnce(&mut RepoBatch<'_>) -> R) -> R {
        self.batch_then(f, |r| r)
    }

    /// Like [`Repository::batch`], but runs `after` once the batch is
    /// published and **before** the writer side is released. Readers
    /// already see the mutation while `after` runs; other mutations and
    /// [`Repository::freeze`] captures wait for it. Eviction sweeps
    /// hang their pin-checked file deletions here: publish-then-delete
    /// is what makes the match loop's pin revalidation conclusive,
    /// while staying inside the writer section is what keeps a
    /// concurrent `save_state` from serializing a path that is about to
    /// be condemned.
    ///
    /// The position-dependent indexes (id → position, tip index) are
    /// rebuilt **once** per batch just before publishing, not per
    /// mutation — a k-item wave registration pays one O(n) reindex.
    pub fn batch_then<A, B>(
        &self,
        f: impl FnOnce(&mut RepoBatch<'_>) -> A,
        after: impl FnOnce(A) -> B,
    ) -> B {
        let n = self.shards.len();
        // Every shard's writer, in ascending index order — the one lock
        // order used by all multi-shard paths (batch, freeze, adopt),
        // which is what makes them deadlock-free against each other and
        // against the single-shard fast paths.
        let writers: Vec<RcuWriter<'_, RepoSnapshot>> =
            self.shards.iter().map(|s| s.writer()).collect();
        self.writer_sections.fetch_add(n as u64, Relaxed);
        let mut works: Vec<RepoSnapshot> = writers.iter().map(|w| w.current().clone()).collect();
        let (a, dirty, ops) = {
            let mut b = RepoBatch {
                shards: &mut works,
                next_id: &self.next_id,
                dirty: vec![false; n],
                ops: vec![Vec::new(); n],
            };
            let a = f(&mut b);
            (a, b.dirty, b.ops)
        };
        for (i, w) in works.iter_mut().enumerate() {
            if dirty[i] {
                w.reindex();
            }
        }
        // Publish only the shards the batch touched, in ascending
        // order; untouched shards keep their snapshot (and version).
        for (i, (w, next)) in writers.iter().zip(works).enumerate() {
            if dirty[i] || !ops[i].is_empty() {
                w.publish(next);
            }
        }
        // Journal the batch *after* it published but still inside the
        // writer sections: each shard's record lands before any later
        // batch's on that shard, so per-shard journal order equals
        // publish order, and a base checkpoint whose seq was read
        // before these records were appended is guaranteed to contain
        // the mutation (the capture's freeze waits for every writer
        // section).
        if let Some(sink) = self.sink.0.read().clone() {
            for (i, o) in ops.iter().enumerate() {
                if !o.is_empty() {
                    sink(i, o);
                }
            }
        }
        after(a)
    }

    /// Run `f` against the current state with all mutations (inserts,
    /// evictions, sweeps) blocked for the duration: every shard's
    /// writer is taken, in ascending order, so the view handed to `f`
    /// is a consistent cross-shard cut. `save_state` uses this to
    /// capture multi-table state no sweep can interleave with; plain
    /// readers should use [`Repository::view`] instead.
    pub fn freeze<R>(&self, f: impl FnOnce(&FrozenRepo<'_>) -> R) -> R {
        let writers: Vec<RcuWriter<'_, RepoSnapshot>> =
            self.shards.iter().map(|s| s.writer()).collect();
        self.writer_sections.fetch_add(writers.len() as u64, Relaxed);
        let frozen = FrozenRepo { shards: writers.iter().map(|w| w.current()).collect() };
        f(&frozen)
    }

    /// Replace this repository's contents with `other`'s (state
    /// restore), redistributing entries into **this** repository's
    /// shard layout (relative order preserved, so a save → load →
    /// adopt round trip through the same shard count is
    /// byte-identical). The snapshot replacement and the id-counter
    /// adoption happen inside one set of writer critical sections, so
    /// a concurrent batch can neither interleave between them
    /// (reserving restored ids against pre-restore entries) nor land a
    /// mutation that this replacement silently wipes.
    pub fn adopt(&self, other: Repository) {
        let next = other.next_id.load(SeqCst);
        let view = other.view();
        let n = self.shards.len();
        let writers: Vec<RcuWriter<'_, RepoSnapshot>> =
            self.shards.iter().map(|s| s.writer()).collect();
        self.writer_sections.fetch_add(n as u64, Relaxed);
        let indexed = view.is_indexed();
        let mut parts: Vec<Vec<Arc<RepoEntry>>> = vec![Vec::new(); n];
        for snap in view.shards() {
            for e in &snap.entries {
                parts[shard_index(e.tip_signature, n)].push(e.clone());
            }
        }
        for (w, part) in writers.iter().zip(parts) {
            let mut snap = build_shard_snapshot(part);
            snap.indexed = indexed;
            w.publish(snap);
        }
        self.next_id.store(next, SeqCst);
    }

    /// §3 first-match against the current state. Prefer taking a
    /// [`Repository::view`] explicitly when issuing several lookups
    /// that must agree.
    pub fn find_first_match(&self, input_plan: &PhysicalPlan) -> Option<(u64, PlanMatch)> {
        self.view().find_first_match(input_plan)
    }

    /// See [`RepoView::find_first_match_excluding`].
    pub fn find_first_match_excluding(
        &self,
        input_plan: &PhysicalPlan,
        exclude: &HashSet<u64>,
    ) -> Option<(u64, PlanMatch)> {
        self.view().find_first_match_excluding(input_plan, exclude)
    }

    // ---- persistence ----

    /// Serialize the current state (shard-concatenation order).
    pub fn save(&self) -> String {
        self.view().save()
    }

    /// See [`RepoSnapshot::save_filtered`].
    pub fn save_filtered(&self, keep: impl Fn(&str) -> bool) -> String {
        self.view().save_filtered(keep)
    }

    /// Reload a repository serialized by [`Repository::save`]. Ordering
    /// is preserved verbatim (it was valid when saved).
    pub fn load(text: &str) -> Result<Repository> {
        let mut entries: Vec<Arc<RepoEntry>> = Vec::new();
        let mut next_id = 0u64;
        let mut lines = text.lines().peekable();
        while let Some(p) = parse_entry_lines(&mut lines)? {
            next_id = next_id.max(p.id + 1);
            entries.push(Arc::new(RepoEntry::new(p.id, p.plan, p.output_path, p.stats)));
        }
        if let Some(line) = lines.next() {
            return Err(Error::Repository(format!("expected 'entry', got {line:?}")));
        }
        Ok(Repository::from_entries(entries, next_id))
    }

    /// Build a single-shard repository from fully formed entries (ids
    /// assigned, order final): one snapshot construction, one reindex.
    fn from_entries(entries: Vec<Arc<RepoEntry>>, next_id: u64) -> Repository {
        Repository::from_shard_parts(vec![entries], next_id)
    }

    /// Build a repository whose shard `i` holds exactly `parts[i]`, in
    /// the given order.
    fn from_shard_parts(parts: Vec<Vec<Arc<RepoEntry>>>, next_id: u64) -> Repository {
        let shards: Vec<Rcu<RepoSnapshot>> =
            parts.into_iter().map(|part| Rcu::new(build_shard_snapshot(part))).collect();
        Repository {
            shards,
            next_id: AtomicU64::new(next_id),
            sink: SinkCell::default(),
            track_usage: AtomicBool::new(false),
            dirty_used: Mutex::new(Vec::new()),
            writer_sections: AtomicU64::new(0),
        }
    }

    /// Bulk constructor for large synthetic repositories: inserts all
    /// items in O(n log n) by ordering on the rule-2 score (reduction
    /// ratio, then job time) alone, skipping the O(n²) pairwise
    /// subsumption comparisons incremental insertion performs.
    ///
    /// The resulting order equals incremental insertion **when the
    /// plans are pairwise incomparable** (no plan subsumes another) —
    /// the common shape of generated benchmark corpora; corpora with
    /// subsumption chains must use [`Repository::insert`] to get the
    /// §3 "subsuming plans first" guarantee. Duplicate plan signatures
    /// keep the first occurrence.
    pub fn bulk_load(items: Vec<(PhysicalPlan, String, RepoStats)>) -> Repository {
        Repository::bulk_load_with_shards(items, 1)
    }

    /// [`Repository::bulk_load`] into a striped repository: the same
    /// global dedup and rule-2 ordering, then entries are partitioned
    /// by tip-signature hash (order preserved within each shard) and
    /// each shard's snapshot is built once.
    pub fn bulk_load_with_shards(
        items: Vec<(PhysicalPlan, String, RepoStats)>,
        shards: usize,
    ) -> Repository {
        let n = normalize_shards(shards);
        let mut entries: Vec<Arc<RepoEntry>> = Vec::with_capacity(items.len());
        let mut seen = HashSet::with_capacity(items.len());
        for (i, (plan, path, stats)) in items.into_iter().enumerate() {
            let e = RepoEntry::new(i as u64, plan, path, stats);
            if seen.insert(e.signature) {
                entries.push(Arc::new(e));
            }
        }
        // Ids were assigned before dedup, so the retained maximum — not
        // the retained count — bounds the id space; `entries.len()`
        // would let a later insert reserve an id a kept entry already
        // carries.
        let next_id = entries.iter().map(|e| e.id + 1).max().unwrap_or(0);
        // Rule-2 order: higher reduction ratio first, then longer job
        // time; stable so equal scores keep arrival order, matching
        // incremental insertion.
        entries.sort_by(|a, b| {
            let ka = (a.base.reduction_ratio(), a.base.job_time_s);
            let kb = (b.base.reduction_ratio(), b.base.job_time_s);
            kb.partial_cmp(&ka).unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut parts: Vec<Vec<Arc<RepoEntry>>> = vec![Vec::new(); n];
        for e in entries {
            parts[shard_index(e.tip_signature, n)].push(e);
        }
        Repository::from_shard_parts(parts, next_id)
    }
}

/// Snapshot over fully formed, final-order entries: by-signature map,
/// running byte total, position indexes — built once.
fn build_shard_snapshot(entries: Vec<Arc<RepoEntry>>) -> RepoSnapshot {
    let mut snap = RepoSnapshot {
        stored_bytes: entries.iter().map(|e| e.base.output_bytes).sum(),
        ..Default::default()
    };
    for e in &entries {
        snap.by_signature.insert(e.signature, e.id);
    }
    snap.entries = entries;
    snap.reindex();
    snap
}

/// §3 winner among per-shard first matches: a candidate that subsumes
/// another (and not vice versa) wins outright (rule 1); among
/// incomparables, the higher (reduction ratio, job time) score wins
/// (rule 2); ties break to the lower id, which is deterministic and —
/// ids being allocation-ordered — favors the earlier registration,
/// like single-shard insertion does for equal scores. A linear pass
/// with explicit pairwise comparison, never a comparator sort:
/// subsumption is not a total order. Each candidate carries the shard
/// it came from, so the instrumented probe can attribute the win.
fn shard_winner(
    cands: Vec<(u64, PlanMatch, Arc<RepoEntry>, usize)>,
) -> Option<(u64, PlanMatch, usize)> {
    let mut best: Option<(u64, PlanMatch, Arc<RepoEntry>, usize)> = None;
    for c in cands {
        best = Some(match best {
            None => c,
            Some(b) => {
                let c_sub_b = subsumes(&c.2.plan, &b.2.plan);
                let b_sub_c = subsumes(&b.2.plan, &c.2.plan);
                let c_wins = if c_sub_b != b_sub_c {
                    c_sub_b
                } else {
                    let sc = (c.2.base.reduction_ratio(), c.2.base.job_time_s);
                    let sb = (b.2.base.reduction_ratio(), b.2.base.job_time_s);
                    match sc.partial_cmp(&sb) {
                        Some(std::cmp::Ordering::Greater) => true,
                        Some(std::cmp::Ordering::Less) => false,
                        _ => c.0 < b.0,
                    }
                };
                if c_wins {
                    c
                } else {
                    b
                }
            }
        });
    }
    best.map(|(id, m, _, shard)| (id, m, shard))
}

/// What one instrumented match probe observed (see
/// [`RepoView::find_first_match_probed`]). Timings are nanoseconds.
#[derive(Debug, Default, Clone)]
pub struct MatchProbe {
    /// The fingerprint index was used (vs the sequential-scan
    /// ablation).
    pub indexed: bool,
    /// Candidate filtering + pairwise §3 verification time.
    pub probe_ns: u64,
    /// Cross-shard winner-pass time.
    pub winner_ns: u64,
    /// Shard the winning entry lives in, when a match was found.
    pub winner_shard: Option<usize>,
    /// Input-plan node signatures probed against the inverted index
    /// (0 on the scan path, which does not probe signatures).
    pub signatures_probed: usize,
    /// Candidates whose pairwise traversal ran, in probe order. The
    /// scan path records only per-shard winners (enumerating every
    /// scanned entry would be the trace-ring equivalent of a table
    /// scan).
    pub candidates: Vec<ProbedCandidate>,
}

impl MatchProbe {
    /// Clear every field for reuse across match-loop iterations,
    /// keeping the `candidates` allocation — the hot path records into
    /// one probe per job instead of allocating per iteration.
    pub fn reset(&mut self) {
        self.indexed = false;
        self.probe_ns = 0;
        self.winner_ns = 0;
        self.winner_shard = None;
        self.signatures_probed = 0;
        self.candidates.clear();
    }
}

/// One candidate an instrumented probe verified.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbedCandidate {
    pub entry_id: u64,
    pub shard: usize,
    /// The pairwise §3 traversal matched (a `false` is a tip-signature
    /// collision or partial overlap).
    pub matched: bool,
}

/// A coherent lock-free read view over every shard (see
/// [`Repository::view`]). Mirrors [`RepoSnapshot`]'s read surface;
/// with one shard every method delegates to the shard's snapshot, so
/// results are exactly the single-shard repository's.
#[derive(Debug, Clone)]
pub struct RepoView {
    shards: Vec<Arc<RepoSnapshot>>,
}

impl RepoView {
    /// The per-shard snapshots, in shard order.
    pub fn shards(&self) -> &[Arc<RepoSnapshot>] {
        &self.shards
    }

    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }

    /// Entries across every shard, shard-concatenation order.
    pub fn entries(&self) -> Vec<Arc<RepoEntry>> {
        let mut out = Vec::with_capacity(self.len());
        for s in &self.shards {
            out.extend(s.entries.iter().cloned());
        }
        out
    }

    /// Lookup by id (O(1) within each shard).
    pub fn get(&self, id: u64) -> Option<&Arc<RepoEntry>> {
        self.shards.iter().find_map(|s| s.get(id))
    }

    pub fn contains_id(&self, id: u64) -> bool {
        self.shards.iter().any(|s| s.contains_id(id))
    }

    /// Does any entry already compute this plan? Probes exactly the
    /// owning shard.
    pub fn contains_plan(&self, plan: &PhysicalPlan) -> Option<u64> {
        let tip = plan_tip(plan).map(|t| plan.node_signature(t));
        self.shards[shard_index(tip, self.shards.len())].contains_plan(plan)
    }

    pub fn stored_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.stored_bytes()).sum()
    }

    pub fn is_indexed(&self) -> bool {
        self.shards[0].indexed
    }

    /// §3 first match across every shard; see
    /// [`RepoView::find_first_match_excluding`].
    pub fn find_first_match(&self, input_plan: &PhysicalPlan) -> Option<(u64, PlanMatch)> {
        self.find_first_match_excluding(input_plan, &HashSet::new())
    }

    /// §3 first match: each shard contributes its own first verifying
    /// entry (in that shard's match-priority order), then the winner is
    /// picked by the ordering rules themselves (see [`shard_winner`]).
    /// With one shard this is byte-identical to
    /// [`RepoSnapshot::find_first_match_excluding`].
    pub fn find_first_match_excluding(
        &self,
        input_plan: &PhysicalPlan,
        exclude: &HashSet<u64>,
    ) -> Option<(u64, PlanMatch)> {
        if self.is_indexed() {
            self.find_first_match_indexed(input_plan, exclude)
        } else {
            self.find_first_match_scan(input_plan, exclude)
        }
    }

    /// Sequential-scan strategy over the view (per-shard scan, then
    /// winner pick).
    pub fn find_first_match_scan(
        &self,
        input_plan: &PhysicalPlan,
        exclude: &HashSet<u64>,
    ) -> Option<(u64, PlanMatch)> {
        if self.shards.len() == 1 {
            return self.shards[0].find_first_match_scan(input_plan, exclude);
        }
        let mut cands = Vec::new();
        for (i, s) in self.shards.iter().enumerate() {
            if let Some((id, m)) = s.find_first_match_scan(input_plan, exclude) {
                cands.push((id, m, s.get(id).expect("matched entry").clone(), i));
            }
        }
        shard_winner(cands).map(|(id, m, _)| (id, m))
    }

    /// Fingerprint-index strategy over the view. Each candidate lookup
    /// probes **exactly one shard**: the tip signature of the query
    /// node picks the shard that could own matching entries, so the
    /// other shards' indexes are never touched.
    pub fn find_first_match_indexed(
        &self,
        input_plan: &PhysicalPlan,
        exclude: &HashSet<u64>,
    ) -> Option<(u64, PlanMatch)> {
        let n = self.shards.len();
        if n == 1 {
            return self.shards[0].find_first_match_indexed(input_plan, exclude);
        }
        let mut per_shard: Vec<Vec<usize>> = vec![Vec::new(); n];
        for id in input_plan.ids() {
            let sig = input_plan.node_signature(id);
            let s = shard_index(Some(sig), n);
            if let Some(positions) = self.shards[s].tip_index.get(&sig) {
                per_shard[s].extend_from_slice(positions);
            }
        }
        let mut cands = Vec::new();
        for (s, mut positions) in per_shard.into_iter().enumerate() {
            positions.sort_unstable();
            positions.dedup();
            for pos in positions {
                let e = &self.shards[s].entries[pos];
                if exclude.contains(&e.id) {
                    continue;
                }
                if let Some(m) = pairwise_plan_traversal(&e.plan, input_plan) {
                    cands.push((e.id, m, e.clone(), s));
                    break;
                }
            }
        }
        shard_winner(cands).map(|(id, m, _)| (id, m))
    }

    /// [`RepoView::find_first_match_excluding`] with instrumentation:
    /// identical match results (the parity property test pins this),
    /// plus per-stage timings and the candidate-by-candidate record the
    /// reuse-decision trace is built from. This is the variant the
    /// driver's match loop runs — the probe costs two `Instant` reads
    /// and a small vector, never a lock or a publish.
    pub fn find_first_match_probed(
        &self,
        input_plan: &PhysicalPlan,
        exclude: &HashSet<u64>,
        probe: &mut MatchProbe,
    ) -> Option<(u64, PlanMatch)> {
        let n = self.shards.len();
        probe.indexed = self.is_indexed();
        if n == 1 {
            // Single shard — the driver's default configuration, so the
            // hot path: there is no cross-shard winner pass to time and
            // no reason to pay the generic machinery (per-shard
            // routing, entry clones, winner comparison). Mirror the
            // snapshot's own §3 loop, recording as we go.
            let shard = &self.shards[0];
            let t0 = std::time::Instant::now();
            let result = if probe.indexed {
                let mut positions: Vec<usize> = Vec::new();
                for id in input_plan.ids() {
                    probe.signatures_probed += 1;
                    if let Some(p) = shard.tip_index.get(&input_plan.node_signature(id)) {
                        positions.extend_from_slice(p);
                    }
                }
                positions.sort_unstable();
                positions.dedup();
                let mut found = None;
                for pos in positions {
                    let e = &shard.entries[pos];
                    if exclude.contains(&e.id) {
                        continue;
                    }
                    let matched = pairwise_plan_traversal(&e.plan, input_plan);
                    probe.candidates.push(ProbedCandidate {
                        entry_id: e.id,
                        shard: 0,
                        matched: matched.is_some(),
                    });
                    if let Some(m) = matched {
                        found = Some((e.id, m));
                        break;
                    }
                }
                found
            } else {
                let hit = shard.find_first_match_scan(input_plan, exclude);
                if let Some((id, _)) = &hit {
                    probe.candidates.push(ProbedCandidate {
                        entry_id: *id,
                        shard: 0,
                        matched: true,
                    });
                }
                hit
            };
            probe.probe_ns = t0.elapsed().as_nanos() as u64;
            probe.winner_ns = 0;
            probe.winner_shard = result.as_ref().map(|_| 0);
            return result;
        }
        let t0 = std::time::Instant::now();
        let cands: Vec<(u64, PlanMatch, Arc<RepoEntry>, usize)> = if probe.indexed {
            // Mirror of [`RepoView::find_first_match_indexed`] (which
            // single-shard delegates to the snapshot's identical loop):
            // signature-filtered candidates per shard, verified in
            // ascending repository order, first verifier per shard.
            let mut per_shard: Vec<Vec<usize>> = vec![Vec::new(); n];
            for id in input_plan.ids() {
                let sig = input_plan.node_signature(id);
                probe.signatures_probed += 1;
                let s = shard_index(Some(sig), n);
                if let Some(positions) = self.shards[s].tip_index.get(&sig) {
                    per_shard[s].extend_from_slice(positions);
                }
            }
            let mut cands = Vec::new();
            for (s, mut positions) in per_shard.into_iter().enumerate() {
                positions.sort_unstable();
                positions.dedup();
                for pos in positions {
                    let e = &self.shards[s].entries[pos];
                    if exclude.contains(&e.id) {
                        continue;
                    }
                    let matched = pairwise_plan_traversal(&e.plan, input_plan);
                    probe.candidates.push(ProbedCandidate {
                        entry_id: e.id,
                        shard: s,
                        matched: matched.is_some(),
                    });
                    if let Some(m) = matched {
                        cands.push((e.id, m, e.clone(), s));
                        break;
                    }
                }
            }
            cands
        } else {
            let mut cands = Vec::new();
            for (s, shard) in self.shards.iter().enumerate() {
                if let Some((id, m)) = shard.find_first_match_scan(input_plan, exclude) {
                    probe.candidates.push(ProbedCandidate {
                        entry_id: id,
                        shard: s,
                        matched: true,
                    });
                    cands.push((id, m, shard.get(id).expect("matched entry").clone(), s));
                }
            }
            cands
        };
        probe.probe_ns = t0.elapsed().as_nanos() as u64;
        let t1 = std::time::Instant::now();
        let winner = shard_winner(cands);
        probe.winner_ns = t1.elapsed().as_nanos() as u64;
        probe.winner_shard = winner.as_ref().map(|(_, _, s)| *s);
        winner.map(|(id, m, _)| (id, m))
    }

    /// Serialize the view (shard-concatenation order; loading a text
    /// saved this way back through [`Repository::load`] +
    /// [`Repository::adopt`] into the same shard count re-saves
    /// byte-identically).
    pub fn save(&self) -> String {
        self.save_filtered(|_| true)
    }

    /// See [`RepoSnapshot::save_filtered`].
    pub fn save_filtered(&self, keep: impl Fn(&str) -> bool) -> String {
        let mut out = String::new();
        for s in &self.shards {
            for e in &s.entries {
                if !keep(&e.output_path) {
                    continue;
                }
                encode_entry_into(&mut out, e);
            }
        }
        out
    }
}

/// A consistent cross-shard cut with every shard's writer held (see
/// [`Repository::freeze`]): no mutation can publish anywhere in the
/// repository while it exists.
pub struct FrozenRepo<'a> {
    shards: Vec<&'a RepoSnapshot>,
}

impl FrozenRepo<'_> {
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }

    /// Entries across every shard, shard-concatenation order.
    pub fn entries(&self) -> impl Iterator<Item = &Arc<RepoEntry>> {
        self.shards.iter().flat_map(|s| s.entries.iter())
    }

    /// Serialize the frozen cut (shard-concatenation order).
    pub fn save(&self) -> String {
        self.save_filtered(|_| true)
    }

    /// See [`RepoSnapshot::save_filtered`].
    pub fn save_filtered(&self, keep: impl Fn(&str) -> bool) -> String {
        let mut out = String::new();
        for s in &self.shards {
            for e in &s.entries {
                if !keep(&e.output_path) {
                    continue;
                }
                encode_entry_into(&mut out, e);
            }
        }
        out
    }
}

/// Mutation scope over the pending working copy of **every** shard
/// (the batch holds all shard writers, in ascending order); each
/// touched shard lands in a single publish when the
/// [`Repository::batch`] closure returns, and its position-dependent
/// indexes are rebuilt once at that point. Ops route to shards exactly
/// like the single-op fast paths, so a batch of one insert and a bare
/// [`Repository::insert`] leave identical state.
pub struct RepoBatch<'a> {
    /// Working copies, one per shard.
    shards: &'a mut [RepoSnapshot],
    next_id: &'a AtomicU64,
    /// Per shard: a structural mutation happened — reindex before
    /// publishing.
    dirty: Vec<bool>,
    /// Per shard: structural ops in application order, handed to the
    /// journal sink at publish time.
    ops: Vec<Vec<RepoOp>>,
}

impl RepoBatch<'_> {
    /// Insert an entry (see [`Repository::insert`]).
    pub fn insert(
        &mut self,
        plan: PhysicalPlan,
        output_path: impl Into<String>,
        stats: RepoStats,
    ) -> InsertOutcome {
        // Reserve the id optimistically; duplicates leave a gap in the
        // id space, which nothing depends on.
        let id = self.next_id.fetch_add(1, SeqCst);
        let entry = RepoEntry::new(id, plan, output_path.into(), stats);
        let s = shard_index(entry.tip_signature, self.shards.len());
        let (outcome, stored) = self.shards[s].do_insert(entry);
        if matches!(outcome, InsertOutcome::Inserted(_)) {
            self.dirty[s] = true;
        } else {
            // Roll the reservation back when we were the only claimant.
            let _ = self.next_id.compare_exchange(id + 1, id, SeqCst, SeqCst);
        }
        if let Some(e) = stored {
            self.ops[s].push(RepoOp::Put(e));
        }
        outcome
    }

    /// Journal replay: (re)store an entry under an **explicit id**,
    /// reproducing exactly what the journaled batch did. An existing
    /// entry with the id is replaced in place (the refresh path); a
    /// fresh id inserts at the §3/§5 position of the shard the plan's
    /// tip signature owns, like the original insertion — so records
    /// written under any shard count replay correctly into any other.
    /// Idempotent — applying a record over a base checkpoint that
    /// already contains its effects is a no-op in the serialized state.
    pub(crate) fn put(
        &mut self,
        id: u64,
        plan: PhysicalPlan,
        output_path: String,
        stats: RepoStats,
    ) {
        self.next_id.fetch_max(id + 1, SeqCst);
        let entry = RepoEntry::new(id, plan, output_path, stats);
        let target = shard_index(entry.tip_signature, self.shards.len());
        // Locate the id anywhere (mid-batch positions may be stale, so
        // scan the entry lists, not the maps). An entry's shard never
        // changes in practice — its tip signature is derived from its
        // plan — but a divergent record must not leave a duplicate id
        // behind, so a hit in the wrong shard is dropped there first.
        let existing = (0..self.shards.len())
            .find_map(|s| {
                self.shards[s].entries.iter().position(|e| e.id == id).map(|pos| (s, pos))
            })
            // A same-signature entry under another id means the live
            // session refreshed that entry; mirror it defensively (same
            // signature implies same tip, hence the target shard).
            .or_else(|| {
                self.shards[target].by_signature.get(&entry.signature).copied().and_then(|dup| {
                    self.shards[target]
                        .entries
                        .iter()
                        .position(|e| e.id == dup)
                        .map(|pos| (target, pos))
                })
            });
        match existing {
            Some((s, pos)) if s == target => {
                let sh = &mut self.shards[s];
                let old = sh.entries[pos].clone();
                sh.by_signature.remove(&old.signature);
                sh.stored_bytes = sh.stored_bytes - old.base.output_bytes + entry.base.output_bytes;
                let replacement = RepoEntry {
                    id: old.id,
                    plan: entry.plan,
                    signature: entry.signature,
                    tip_signature: entry.tip_signature,
                    output_path: entry.output_path,
                    base: entry.base,
                    usage: Arc::new(Usage {
                        count: AtomicU64::new(entry.usage.count.load(SeqCst)),
                        last_used: AtomicU64::new(entry.usage.last_used.load(SeqCst)),
                        dirty: AtomicBool::new(false),
                    }),
                };
                sh.by_signature.insert(replacement.signature, replacement.id);
                let arc = Arc::new(replacement);
                sh.entries[pos] = arc.clone();
                self.ops[s].push(RepoOp::Put(arc));
                self.dirty[s] = true;
            }
            other => {
                if let Some((s, pos)) = other {
                    // Divergent record: the stored plan routes to a
                    // different shard than the stale entry's — drop the
                    // stale one where it sits.
                    let sh = &mut self.shards[s];
                    let old = sh.entries.remove(pos);
                    sh.by_signature.remove(&old.signature);
                    sh.stored_bytes -= old.base.output_bytes;
                    self.dirty[s] = true;
                }
                let sh = &mut self.shards[target];
                let pos = sh.insert_position(&entry);
                sh.by_signature.insert(entry.signature, entry.id);
                sh.stored_bytes += entry.base.output_bytes;
                let arc = Arc::new(entry);
                sh.entries.insert(pos, arc.clone());
                self.ops[target].push(RepoOp::Put(arc));
                self.dirty[target] = true;
            }
        }
    }

    /// Remove an entry, returning it (see [`Repository::evict`]).
    pub fn evict(&mut self, id: u64) -> Option<Arc<RepoEntry>> {
        let s =
            (0..self.shards.len()).find(|&i| self.shards[i].entries.iter().any(|e| e.id == id))?;
        let e = self.shards[s].do_evict(id)?;
        self.dirty[s] = true;
        self.ops[s].push(RepoOp::Evict(id));
        Some(e)
    }

    /// Every entry of the batch's pending working copies (prior
    /// mutations of this batch visible), shard by shard. Mid-batch the
    /// entry lists and byte totals are current, but the
    /// position-dependent lookups (`get`, `contains_id`, the match
    /// strategies) may lag behind this batch's own structural changes —
    /// they are rebuilt at publish.
    pub fn pending_entries(&self) -> impl Iterator<Item = &Arc<RepoEntry>> {
        self.shards.iter().flat_map(|s| s.entries.iter())
    }
}

fn find_close_quote(s: &str) -> Result<usize> {
    let bytes = s.as_bytes();
    if bytes.first() != Some(&b'"') {
        return Err(Error::Repository(format!("expected quoted path in {s:?}")));
    }
    let mut i = 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return Ok(i),
            _ => i += 1,
        }
    }
    Err(Error::Repository("unterminated quoted path".into()))
}

fn unquote_header(s: &str) -> Result<String> {
    // Reuse plan_text's unquoter through a tiny shim.
    crate::plan_text::decode_plan(&format!("0 load {s}\n")).map(|p| match p.op(p.loads()[0]) {
        restore_dataflow::physical::PhysicalOp::Load { path } => path.clone(),
        _ => unreachable!(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use restore_dataflow::physical::PhysicalOp;

    fn load_project(path: &str, cols: Vec<usize>) -> PhysicalPlan {
        let mut p = PhysicalPlan::new();
        let l = p.add(PhysicalOp::Load { path: path.into() }, vec![]);
        let pr = p.add(PhysicalOp::Project { cols }, vec![l]);
        p.add(PhysicalOp::Store { path: format!("/repo/{path}") }, vec![pr]);
        p
    }

    fn q1_plan() -> PhysicalPlan {
        let mut p = PhysicalPlan::new();
        let l1 = p.add(PhysicalOp::Load { path: "/users".into() }, vec![]);
        let p1 = p.add(PhysicalOp::Project { cols: vec![0] }, vec![l1]);
        let l2 = p.add(PhysicalOp::Load { path: "/pv".into() }, vec![]);
        let p2 = p.add(PhysicalOp::Project { cols: vec![0, 2] }, vec![l2]);
        let j = p.add(PhysicalOp::Join { keys: vec![vec![0], vec![0]] }, vec![p1, p2]);
        p.add(PhysicalOp::Store { path: "/q1".into() }, vec![j]);
        p
    }

    fn stats(input: u64, output: u64, time: f64) -> RepoStats {
        RepoStats {
            input_bytes: input,
            output_bytes: output,
            job_time_s: time,
            ..Default::default()
        }
    }

    #[test]
    fn insert_and_match() {
        let repo = Repository::new();
        repo.insert(load_project("/pv", vec![0, 2]), "/repo/b", stats(100, 10, 5.0));
        let (id, m) = repo.find_first_match(&q1_plan()).unwrap();
        assert_eq!(repo.get(id).unwrap().output_path, "/repo/b");
        assert!(matches!(q1_plan().op(m.tip), PhysicalOp::Project { .. }));
    }

    #[test]
    fn duplicate_signature_refreshes_stats() {
        let repo = Repository::new();
        let a = repo.insert(load_project("/pv", vec![0]), "/r/1", stats(100, 10, 5.0));
        let InsertOutcome::Inserted(id) = a else { panic!() };
        repo.note_use(id, 3);
        let b = repo.insert(load_project("/pv", vec![0]), "/r/2", stats(100, 12, 6.0));
        assert_eq!(b, InsertOutcome::Duplicate(id));
        assert_eq!(repo.len(), 1);
        let e = repo.get(id).unwrap();
        assert_eq!(e.stats().output_bytes, 12); // refreshed
        assert_eq!(e.stats().use_count, 1); // history kept
        assert_eq!(e.output_path, "/r/1"); // original output retained
        assert_eq!(repo.stored_bytes(), 12); // counter follows the refresh
    }

    #[test]
    fn refreshed_entry_shares_usage_with_stale_snapshots() {
        let repo = Repository::new();
        let InsertOutcome::Inserted(id) =
            repo.insert(load_project("/pv", vec![0]), "/r/1", stats(100, 10, 5.0))
        else {
            panic!()
        };
        // A reader holds the pre-refresh snapshot…
        let stale = repo.snapshot();
        repo.insert(load_project("/pv", vec![0]), "/r/2", stats(100, 12, 6.0));
        // …and records a reuse against it. The refreshed entry must see
        // it: the counters are shared, not copied.
        stale.get(id).unwrap().note_use(9);
        assert_eq!(repo.get(id).unwrap().use_count(), 1);
        assert_eq!(repo.get(id).unwrap().last_used(), 9);
    }

    #[test]
    fn subsuming_plan_ordered_first() {
        let repo = Repository::new();
        // Insert the small plan first…
        repo.insert(load_project("/pv", vec![0, 2]), "/r/sub", stats(100, 50, 2.0));
        // …then the Q1 plan that subsumes it.
        repo.insert(q1_plan(), "/r/q1", stats(200, 20, 30.0));
        let snap = repo.snapshot();
        assert_eq!(snap.entries()[0].output_path, "/r/q1");
        assert_eq!(snap.entries()[1].output_path, "/r/sub");
        // A fresh Q1-shaped query now matches the *whole* Q1 plan first
        // (the paper's "first match is best match").
        let (id, _) = repo.find_first_match(&q1_plan()).unwrap();
        assert_eq!(repo.get(id).unwrap().output_path, "/r/q1");
    }

    #[test]
    fn incomparable_plans_ordered_by_reduction_then_time() {
        let repo = Repository::new();
        repo.insert(load_project("/a", vec![0]), "/r/low", stats(100, 50, 9.0));
        repo.insert(load_project("/b", vec![0]), "/r/high", stats(100, 5, 1.0));
        // ratio 20 beats ratio 2 despite lower time.
        assert_eq!(repo.snapshot().entries()[0].output_path, "/r/high");
        // Same ratio: longer time first.
        let repo = Repository::new();
        repo.insert(load_project("/a", vec![0]), "/r/fast", stats(100, 10, 1.0));
        repo.insert(load_project("/b", vec![0]), "/r/slow", stats(100, 10, 9.0));
        assert_eq!(repo.snapshot().entries()[0].output_path, "/r/slow");
    }

    #[test]
    fn eviction_removes_entry_and_signature() {
        let repo = Repository::new();
        let InsertOutcome::Inserted(id) =
            repo.insert(load_project("/a", vec![0]), "/r/a", stats(1, 1, 1.0))
        else {
            panic!()
        };
        assert!(repo.evict(id).is_some());
        assert!(repo.is_empty());
        assert_eq!(repo.stored_bytes(), 0);
        // Same plan can be inserted again afterwards.
        let again = repo.insert(load_project("/a", vec![0]), "/r/a2", stats(1, 1, 1.0));
        assert!(matches!(again, InsertOutcome::Inserted(_)));
    }

    #[test]
    fn fingerprint_index_agrees_with_scan() {
        let scan = Repository::new();
        let indexed = Repository::new();
        indexed.set_fingerprint_index(true);
        for (i, cols) in [vec![0], vec![1], vec![0, 2], vec![2]].into_iter().enumerate() {
            let s = stats(100 + i as u64, 10, i as f64);
            scan.insert(load_project("/pv", cols.clone()), format!("/r/{i}"), s.clone());
            indexed.insert(load_project("/pv", cols), format!("/r/{i}"), s);
        }
        let q = q1_plan();
        let a = scan.find_first_match(&q).map(|(id, m)| (id, m.tip));
        let b = indexed.find_first_match(&q).map(|(id, m)| (id, m.tip));
        assert_eq!(a, b);
        assert!(a.is_some());
        // And both agree on a non-match.
        let other = load_project("/nowhere", vec![9]);
        assert!(scan.find_first_match(&other).is_none());
        assert!(indexed.find_first_match(&other).is_none());
        // The two strategies are also exposed side by side on one
        // snapshot, for the ablation bench and parity tests.
        let snap = scan.snapshot();
        let none = HashSet::new();
        assert_eq!(
            snap.find_first_match_scan(&q, &none).map(|(id, m)| (id, m.tip)),
            snap.find_first_match_indexed(&q, &none).map(|(id, m)| (id, m.tip)),
        );
    }

    #[test]
    fn snapshot_readers_are_isolated_from_mutations() {
        let repo = Repository::new();
        repo.insert(load_project("/pv", vec![0, 2]), "/r/b", stats(100, 10, 5.0));
        let before = repo.snapshot();
        repo.batch(|b| {
            b.insert(load_project("/x", vec![1]), "/r/x", stats(50, 5, 1.0));
            b.insert(load_project("/y", vec![1]), "/r/y", stats(50, 5, 1.0));
        });
        assert_eq!(before.len(), 1, "held snapshot unchanged");
        assert_eq!(repo.len(), 3, "batch landed atomically");
        // The old snapshot still matches correctly.
        assert!(before.find_first_match(&q1_plan()).is_some());
    }

    #[test]
    fn note_use_publishes_no_snapshot() {
        let repo = Repository::new();
        let InsertOutcome::Inserted(id) =
            repo.insert(load_project("/pv", vec![0]), "/r/1", stats(100, 10, 5.0))
        else {
            panic!()
        };
        let publishes = repo.publish_count();
        for t in 1..=100 {
            repo.note_use(id, t);
        }
        assert_eq!(repo.publish_count(), publishes, "reuse accounting is write-free");
        assert_eq!(repo.get(id).unwrap().use_count(), 100);
        assert_eq!(repo.get(id).unwrap().last_used(), 100);
    }

    #[test]
    fn save_load_round_trip() {
        let repo = Repository::new();
        repo.insert(
            q1_plan(),
            "/r/q1",
            RepoStats {
                input_bytes: 1000,
                output_bytes: 50,
                job_time_s: 12.5,
                avg_map_time_s: 1.5,
                avg_reduce_time_s: 2.5,
                use_count: 3,
                last_used: 9,
                created: 1,
                input_files: vec![("/pv".into(), 0), ("/users dir/x".into(), 2)],
            },
        );
        repo.insert(load_project("/pv", vec![0, 2]), "/r/sub", stats(100, 10, 2.0));
        let text = repo.save();
        let back = Repository::load(&text).unwrap();
        assert_eq!(back.len(), 2);
        let (b, r) = (back.snapshot(), repo.snapshot());
        assert_eq!(b.entries()[0].output_path, r.entries()[0].output_path);
        assert_eq!(b.entries()[0].signature, r.entries()[0].signature);
        assert_eq!(b.entries()[0].stats(), r.entries()[0].stats());
        assert_eq!(b.entries()[0].tip_signature, r.entries()[0].tip_signature);
        assert_eq!(b.stored_bytes(), r.stored_bytes());
        // Loaded repository still matches.
        assert!(back.find_first_match(&q1_plan()).is_some());
        // And re-saving is byte-identical (usage counters round-trip).
        assert_eq!(back.save(), text);
    }

    #[test]
    fn bulk_load_orders_by_score_and_keeps_ids_unique_after_dedup() {
        let repo = Repository::bulk_load(vec![
            (load_project("/a", vec![0]), "/r/a".into(), stats(100, 50, 1.0)),
            // Duplicate signature: dropped, but its id (1) was consumed.
            (load_project("/a", vec![0]), "/r/dup".into(), stats(100, 50, 9.0)),
            (load_project("/b", vec![0]), "/r/b".into(), stats(100, 5, 1.0)),
        ]);
        assert_eq!(repo.len(), 2, "duplicate signatures keep the first occurrence");
        // Rule-2 order: ratio 20 before ratio 2.
        assert_eq!(repo.snapshot().entries()[0].output_path, "/r/b");
        // A post-bulk insert must not reuse a retained id: entry "/r/b"
        // carries id 2, so the next insert gets 3.
        let InsertOutcome::Inserted(next) =
            repo.insert(load_project("/c", vec![0]), "/r/c", stats(1, 1, 1.0))
        else {
            panic!()
        };
        let ids: Vec<u64> = repo.snapshot().entries().iter().map(|e| e.id).collect();
        let unique: HashSet<u64> = ids.iter().copied().collect();
        assert_eq!(ids.len(), unique.len(), "ids stay unique after bulk dedup, got {ids:?}");
        assert_eq!(next, 3);
        // And matching still works against the bulk-built indexes.
        assert!(repo.find_first_match(&q1_plan()).is_none());
        let (hit, _) = repo
            .find_first_match(&{
                let mut p = load_project("/b", vec![0]);
                let tip = p.stores()[0];
                let before = p.inputs(tip)[0];
                let g = p.add(PhysicalOp::Group { keys: vec![0] }, vec![before]);
                p.add(PhysicalOp::Store { path: "/out".into() }, vec![g]);
                p
            })
            .unwrap();
        assert_eq!(repo.get(hit).unwrap().output_path, "/r/b");
    }

    #[test]
    fn stored_bytes_is_maintained_incrementally() {
        let repo = Repository::new();
        repo.insert(load_project("/a", vec![0]), "/r/a", stats(100, 30, 1.0));
        let InsertOutcome::Inserted(b) =
            repo.insert(load_project("/b", vec![0]), "/r/b", stats(100, 12, 1.0))
        else {
            panic!()
        };
        assert_eq!(repo.stored_bytes(), 42);
        repo.evict(b);
        assert_eq!(repo.stored_bytes(), 30);
    }

    #[test]
    fn shard_count_normalizes_and_caps() {
        assert_eq!(Repository::with_shards(0).shard_count(), 1);
        assert_eq!(Repository::with_shards(1).shard_count(), 1);
        assert_eq!(Repository::with_shards(8).shard_count(), 8);
        assert_eq!(Repository::with_shards(usize::MAX).shard_count(), MAX_REPO_SHARDS);
        assert_eq!(normalize_shards(0), 1);
        assert_eq!(normalize_shards(4), 4);
        assert_eq!(normalize_shards(MAX_REPO_SHARDS + 1), MAX_REPO_SHARDS);
    }

    #[test]
    fn sharded_insert_routes_deterministically_and_dedups() {
        let repo = Repository::with_shards(4);
        for i in 0..16 {
            repo.insert(
                load_project(&format!("/p{i}"), vec![0]),
                format!("/r/{i}"),
                stats(100, 10, 1.0),
            );
        }
        assert_eq!(repo.len(), 16);
        // A duplicate plan routes to the same shard and refreshes there.
        let out = repo.insert(load_project("/p3", vec![0]), "/r/dup", stats(100, 20, 2.0));
        assert!(matches!(out, InsertOutcome::Duplicate(_)));
        assert_eq!(repo.len(), 16);
        // Every entry is found and evictable through the routed paths.
        let view = repo.view();
        for e in view.entries() {
            assert!(repo.get(e.id).is_some());
            assert_eq!(view.contains_plan(&e.plan), Some(e.id));
        }
        // Shards partition the entries: ids are globally unique.
        let ids: HashSet<u64> = view.entries().iter().map(|e| e.id).collect();
        assert_eq!(ids.len(), 16);
    }

    #[test]
    fn sharded_matching_agrees_with_single_shard() {
        let single = Repository::new();
        let sharded = Repository::with_shards(8);
        for (i, cols) in [vec![0], vec![1], vec![0, 2], vec![2]].into_iter().enumerate() {
            let s = stats(100 + i as u64, 10, i as f64);
            single.insert(load_project("/pv", cols.clone()), format!("/r/{i}"), s.clone());
            sharded.insert(load_project("/pv", cols), format!("/r/{i}"), s);
        }
        // Subsumption family too: the Q1 plan subsumes the /pv project.
        single.insert(q1_plan(), "/r/q1", stats(200, 20, 30.0));
        sharded.insert(q1_plan(), "/r/q1", stats(200, 20, 30.0));
        for q in [q1_plan(), load_project("/pv", vec![0]), load_project("/nowhere", vec![9])] {
            let a = single
                .find_first_match(&q)
                .map(|(id, m)| (single.get(id).unwrap().output_path.clone(), m.tip));
            let b = sharded
                .find_first_match(&q)
                .map(|(id, m)| (sharded.get(id).unwrap().output_path.clone(), m.tip));
            assert_eq!(a, b);
        }
        // Scan and indexed strategies agree on the sharded view.
        let view = sharded.view();
        let none = HashSet::new();
        let q = q1_plan();
        assert_eq!(
            view.find_first_match_scan(&q, &none).map(|(id, m)| (id, m.tip)),
            view.find_first_match_indexed(&q, &none).map(|(id, m)| (id, m.tip)),
        );
    }

    #[test]
    fn sharded_save_load_adopt_round_trips_byte_identically() {
        let repo = Repository::with_shards(8);
        for i in 0..12 {
            repo.insert(
                load_project(&format!("/p{i}"), vec![0]),
                format!("/r/{i}"),
                stats(100 + i, 10, i as f64),
            );
        }
        let text = repo.save();
        // Reload through the state-restore path: parse into a
        // single-shard repository, adopt into the same shard count.
        let fresh = Repository::with_shards(8);
        fresh.adopt(Repository::load(&text).unwrap());
        assert_eq!(fresh.save(), text, "same shard count round-trips byte-identically");
        assert_eq!(fresh.len(), repo.len());
        // A later insert continues the id sequence.
        let InsertOutcome::Inserted(next) =
            fresh.insert(load_project("/new", vec![0]), "/r/new", stats(1, 1, 1.0))
        else {
            panic!()
        };
        assert_eq!(next, 12);
    }

    #[test]
    fn sharded_batch_and_fast_paths_leave_identical_state() {
        let a = Repository::with_shards(4);
        let b = Repository::with_shards(4);
        for i in 0..6 {
            let plan = load_project(&format!("/p{i}"), vec![0]);
            let s = stats(100 + i, 10, i as f64);
            a.insert(plan.clone(), format!("/r/{i}"), s.clone());
            b.batch(|batch| batch.insert(plan, format!("/r/{i}"), s));
        }
        a.evict(2);
        b.batch(|batch| {
            batch.evict(2);
        });
        assert_eq!(a.save(), b.save());
    }

    #[test]
    fn bulk_load_with_shards_partitions_the_rule2_order() {
        let items: Vec<(PhysicalPlan, String, RepoStats)> = (0..20)
            .map(|i| {
                (
                    load_project(&format!("/p{i}"), vec![0]),
                    format!("/r/{i}"),
                    stats(100 + i, 10, 1.0),
                )
            })
            .collect();
        let single = Repository::bulk_load(items.clone());
        let sharded = Repository::bulk_load_with_shards(items, 8);
        assert_eq!(sharded.shard_count(), 8);
        assert_eq!(sharded.len(), single.len());
        // Within each shard, relative order follows the global rule-2
        // order (a subsequence of the single-shard order).
        let global: Vec<u64> = single.entries().iter().map(|e| e.id).collect();
        for shard in sharded.view().shards() {
            let mut cursor = 0usize;
            for e in shard.entries() {
                let at = global[cursor..].iter().position(|&g| g == e.id).expect("subsequence");
                cursor += at + 1;
            }
        }
        // And matching agrees.
        let q = load_project("/p7", vec![0]);
        let a =
            single.find_first_match(&q).map(|(id, _)| single.get(id).unwrap().output_path.clone());
        let b = sharded
            .find_first_match(&q)
            .map(|(id, _)| sharded.get(id).unwrap().output_path.clone());
        assert_eq!(a, b);
    }

    #[test]
    fn sharded_freeze_is_a_consistent_cut() {
        let repo = Repository::with_shards(4);
        for i in 0..8 {
            repo.insert(
                load_project(&format!("/p{i}"), vec![0]),
                format!("/r/{i}"),
                stats(100, 10, 1.0),
            );
        }
        let text = repo.freeze(|frozen| {
            assert_eq!(frozen.len(), 8);
            frozen.save()
        });
        assert_eq!(text, repo.save());
    }

    #[test]
    fn writer_sections_count_shard_acquisitions() {
        let repo = Repository::with_shards(4);
        let base = repo.writer_sections();
        repo.insert(load_project("/a", vec![0]), "/r/a", stats(1, 1, 1.0));
        assert_eq!(repo.writer_sections(), base + 1, "fast path takes one shard");
        repo.batch(|b| {
            b.insert(load_project("/b", vec![0]), "/r/b", stats(1, 1, 1.0));
        });
        assert_eq!(repo.writer_sections(), base + 5, "a batch takes every shard");
    }
}
