//! The ReStore repository of MapReduce job outputs — §2.2 and §5.
//!
//! Each entry holds "(1) the physical query execution plan of the
//! MapReduce job that was executed to produce this output, (2) the
//! filename of the output in the distributed file system, and (3)
//! statistics about the MapReduce job that produced the output and the
//! frequency of use of this output".
//!
//! Entries are kept **ordered** so the sequential scan's first match is
//! the best match (§3): plans that subsume others come first; among
//! incomparable plans, higher input/output reduction ratio, then longer
//! job execution time, win. An optional fingerprint index accelerates
//! lookup (an ablation over the paper's sequential scan; results are
//! identical because candidates are verified with the full traversal).

use crate::matcher::{pairwise_plan_traversal, subsumes, PlanMatch};
use crate::plan_text;
use restore_common::{Error, Result};
use restore_dataflow::physical::PhysicalPlan;
use std::collections::HashMap;

/// Execution statistics of a stored job output (§2.2, §5).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RepoStats {
    /// Bytes the producing job loaded (modeled/actual consistent units).
    pub input_bytes: u64,
    /// Bytes of the stored output.
    pub output_bytes: u64,
    /// Modeled execution time of the producing job, seconds.
    pub job_time_s: f64,
    /// Average map task time of the producing job, seconds.
    pub avg_map_time_s: f64,
    /// Average reduce task time of the producing job, seconds.
    pub avg_reduce_time_s: f64,
    /// How many times this output was used to rewrite a query.
    pub use_count: u64,
    /// Logical tick (query counter) of the last reuse.
    pub last_used: u64,
    /// Logical tick at which the entry was created.
    pub created: u64,
    /// Input files and their DFS versions at creation time (eviction
    /// Rule 4 invalidates the entry when these change).
    pub input_files: Vec<(String, u64)>,
}

impl RepoStats {
    /// Rule-2 ordering metric #1: size of input over size of output.
    pub fn reduction_ratio(&self) -> f64 {
        self.input_bytes as f64 / (self.output_bytes.max(1)) as f64
    }
}

/// One stored job output.
#[derive(Debug, Clone)]
pub struct RepoEntry {
    pub id: u64,
    /// Base-level physical plan (single Store).
    pub plan: PhysicalPlan,
    /// Merkle signature of `plan` (Store paths excluded).
    pub signature: u64,
    /// Where the output lives in the DFS.
    pub output_path: String,
    pub stats: RepoStats,
}

/// Outcome of an insertion attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// New entry stored under this id.
    Inserted(u64),
    /// An equivalent plan was already stored under this id.
    Duplicate(u64),
}

/// The ordered repository.
#[derive(Debug, Default)]
pub struct Repository {
    entries: Vec<RepoEntry>,
    next_id: u64,
    /// signature → entry id (deduplication and the fingerprint index).
    by_signature: HashMap<u64, u64>,
    /// Use the fingerprint index for matching instead of the paper's
    /// sequential scan. Results are identical; speed differs (see the
    /// `bench_matcher` ablation).
    pub use_fingerprint_index: bool,
}

impl Repository {
    pub fn new() -> Self {
        Repository::default()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries in match-priority order.
    pub fn entries(&self) -> &[RepoEntry] {
        &self.entries
    }

    pub fn get(&self, id: u64) -> Option<&RepoEntry> {
        self.entries.iter().find(|e| e.id == id)
    }

    pub fn get_mut(&mut self, id: u64) -> Option<&mut RepoEntry> {
        self.entries.iter_mut().find(|e| e.id == id)
    }

    /// Does any entry already compute this plan?
    pub fn contains_plan(&self, plan: &PhysicalPlan) -> Option<u64> {
        self.by_signature.get(&plan.signature()).copied()
    }

    /// Insert an entry, maintaining the §3 ordering rules. Deduplicates
    /// by plan signature (the later execution refreshes statistics).
    pub fn insert(
        &mut self,
        plan: PhysicalPlan,
        output_path: impl Into<String>,
        stats: RepoStats,
    ) -> InsertOutcome {
        let signature = plan.signature();
        if let Some(&dup) = self.by_signature.get(&signature) {
            if let Some(e) = self.get_mut(dup) {
                // Refresh stats but keep usage history.
                let (uses, last) = (e.stats.use_count, e.stats.last_used);
                e.stats = stats;
                e.stats.use_count = uses;
                e.stats.last_used = last;
            }
            return InsertOutcome::Duplicate(dup);
        }
        let id = self.next_id;
        self.next_id += 1;
        let entry = RepoEntry { id, plan, signature, output_path: output_path.into(), stats };
        let pos = self.insert_position(&entry);
        self.entries.insert(pos, entry);
        self.by_signature.insert(signature, id);
        InsertOutcome::Inserted(id)
    }

    /// Position respecting: (rule 1) subsuming plans first; (rule 2)
    /// among incomparables, higher reduction ratio then longer job time
    /// first.
    fn insert_position(&self, new: &RepoEntry) -> usize {
        let mut lo = 0usize;
        let mut hi = self.entries.len();
        for (i, e) in self.entries.iter().enumerate() {
            let e_subsumes_new = subsumes(&e.plan, &new.plan);
            let new_subsumes_e = subsumes(&new.plan, &e.plan);
            if e_subsumes_new && !new_subsumes_e {
                lo = lo.max(i + 1);
            } else if new_subsumes_e && !e_subsumes_new {
                hi = hi.min(i);
            }
        }
        if hi < lo {
            // Conflicting constraints can only arise from signature
            // collisions; degrade to the later position.
            hi = lo;
        }
        let score = |s: &RepoStats| (s.reduction_ratio(), s.job_time_s);
        let new_score = score(&new.stats);
        let mut pos = lo;
        while pos < hi {
            let existing = score(&self.entries[pos].stats);
            if existing < new_score {
                break;
            }
            pos += 1;
        }
        pos
    }

    /// §3: scan the ordered repository and return the first entry whose
    /// plan is contained in `input_plan`, with the match.
    pub fn find_first_match(&self, input_plan: &PhysicalPlan) -> Option<(u64, PlanMatch)> {
        self.find_first_match_excluding(input_plan, &std::collections::HashSet::new())
    }

    /// Like [`Repository::find_first_match`] but skipping the listed
    /// entries. The driver excludes entries whose rewrite made no
    /// structural progress (e.g. an entry matching only its own lineage
    /// expansion) and rescans for the next-best match.
    pub fn find_first_match_excluding(
        &self,
        input_plan: &PhysicalPlan,
        exclude: &std::collections::HashSet<u64>,
    ) -> Option<(u64, PlanMatch)> {
        if self.use_fingerprint_index {
            return self.find_first_match_indexed(input_plan, exclude);
        }
        for e in &self.entries {
            if exclude.contains(&e.id) {
                continue;
            }
            if let Some(m) = pairwise_plan_traversal(&e.plan, input_plan) {
                return Some((e.id, m));
            }
        }
        None
    }

    /// Fingerprint-index variant: compute the signature of every node of
    /// the input plan; an entry can only match when its tip signature
    /// appears. Candidates are verified with the full traversal, and the
    /// earliest entry in repository order wins — identical results to the
    /// sequential scan, sub-linear candidate filtering.
    fn find_first_match_indexed(
        &self,
        input_plan: &PhysicalPlan,
        exclude: &std::collections::HashSet<u64>,
    ) -> Option<(u64, PlanMatch)> {
        use std::collections::HashSet;
        let input_sigs: HashSet<u64> =
            input_plan.ids().map(|id| input_plan.node_signature(id)).collect();
        for e in &self.entries {
            if exclude.contains(&e.id) {
                continue;
            }
            let tip_sig = crate::matcher::plan_tip(&e.plan).map(|t| e.plan.node_signature(t));
            let Some(tip_sig) = tip_sig else { continue };
            if !input_sigs.contains(&tip_sig) {
                continue;
            }
            if let Some(m) = pairwise_plan_traversal(&e.plan, input_plan) {
                return Some((e.id, m));
            }
        }
        None
    }

    /// Record a reuse of entry `id` at logical time `tick`.
    pub fn note_use(&mut self, id: u64, tick: u64) {
        if let Some(e) = self.get_mut(id) {
            e.stats.use_count += 1;
            e.stats.last_used = tick;
        }
    }

    /// Remove an entry, returning it.
    pub fn evict(&mut self, id: u64) -> Option<RepoEntry> {
        let pos = self.entries.iter().position(|e| e.id == id)?;
        let e = self.entries.remove(pos);
        self.by_signature.remove(&e.signature);
        Some(e)
    }

    /// Total bytes of stored outputs (repository footprint).
    pub fn stored_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.stats.output_bytes).sum()
    }

    // ---- persistence ----

    /// Serialize the repository (plans, paths, stats) to a durable string.
    pub fn save(&self) -> String {
        self.save_filtered(|_| true)
    }

    /// Like [`Repository::save`], but only entries whose output path
    /// satisfies `keep` are written. The driver's `save_state` passes a
    /// liveness predicate so entries condemned by a pending deferred
    /// deletion (or already gone from the DFS) never enter a snapshot
    /// as dangling paths.
    pub fn save_filtered(&self, keep: impl Fn(&str) -> bool) -> String {
        let mut out = String::new();
        for e in &self.entries {
            if !keep(&e.output_path) {
                continue;
            }
            out.push_str(&format!(
                "entry {} {:?} {} {} {} {} {} {} {} {}\n",
                e.id,
                e.output_path,
                e.stats.input_bytes,
                e.stats.output_bytes,
                e.stats.job_time_s,
                e.stats.avg_map_time_s,
                e.stats.avg_reduce_time_s,
                e.stats.use_count,
                e.stats.last_used,
                e.stats.created,
            ));
            for (p, v) in &e.stats.input_files {
                out.push_str(&format!("input {p:?} {v}\n"));
            }
            out.push_str("plan\n");
            for line in plan_text::encode_plan(&e.plan).lines() {
                out.push_str("  ");
                out.push_str(line);
                out.push('\n');
            }
            out.push_str("end\n");
        }
        out
    }

    /// Reload a repository serialized by [`Repository::save`]. Ordering
    /// is preserved verbatim (it was valid when saved).
    pub fn load(text: &str) -> Result<Repository> {
        let mut repo = Repository::new();
        let mut lines = text.lines().peekable();
        while let Some(line) = lines.next() {
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            let rest = line
                .strip_prefix("entry ")
                .ok_or_else(|| Error::Repository(format!("expected 'entry', got {line:?}")))?;
            let (id_str, rest) = rest
                .split_once(' ')
                .ok_or_else(|| Error::Repository("truncated entry header".into()))?;
            let id: u64 = id_str.parse().map_err(|_| Error::Repository("bad entry id".into()))?;
            // Path is Rust-quoted and may contain spaces: find closing quote.
            let close = find_close_quote(rest)?;
            let output_path = unquote_header(&rest[..=close])?;
            let nums: Vec<&str> = rest[close + 1..].split_whitespace().collect();
            if nums.len() != 8 {
                return Err(Error::Repository(format!(
                    "expected 8 stat fields, got {}",
                    nums.len()
                )));
            }
            let parse_u =
                |s: &str| s.parse::<u64>().map_err(|_| Error::Repository("bad stat".into()));
            let parse_f =
                |s: &str| s.parse::<f64>().map_err(|_| Error::Repository("bad stat".into()));
            let mut stats = RepoStats {
                input_bytes: parse_u(nums[0])?,
                output_bytes: parse_u(nums[1])?,
                job_time_s: parse_f(nums[2])?,
                avg_map_time_s: parse_f(nums[3])?,
                avg_reduce_time_s: parse_f(nums[4])?,
                use_count: parse_u(nums[5])?,
                last_used: parse_u(nums[6])?,
                created: parse_u(nums[7])?,
                input_files: Vec::new(),
            };
            // Optional input lines, then "plan".
            loop {
                let l = lines.next().ok_or_else(|| Error::Repository("truncated entry".into()))?;
                if l == "plan" {
                    break;
                }
                let rest = l
                    .strip_prefix("input ")
                    .ok_or_else(|| Error::Repository(format!("unexpected line {l:?}")))?;
                let close = find_close_quote(rest)?;
                let path = unquote_header(&rest[..=close])?;
                let version: u64 = rest[close + 1..]
                    .trim()
                    .parse()
                    .map_err(|_| Error::Repository("bad input version".into()))?;
                stats.input_files.push((path, version));
            }
            let mut plan_src = String::new();
            loop {
                let l = lines.next().ok_or_else(|| Error::Repository("truncated plan".into()))?;
                if l == "end" {
                    break;
                }
                plan_src.push_str(l.trim_start());
                plan_src.push('\n');
            }
            let plan = plan_text::decode_plan(&plan_src)?;
            let signature = plan.signature();
            repo.entries.push(RepoEntry { id, plan, signature, output_path, stats });
            repo.by_signature.insert(signature, id);
            repo.next_id = repo.next_id.max(id + 1);
        }
        Ok(repo)
    }
}

fn find_close_quote(s: &str) -> Result<usize> {
    let bytes = s.as_bytes();
    if bytes.first() != Some(&b'"') {
        return Err(Error::Repository(format!("expected quoted path in {s:?}")));
    }
    let mut i = 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return Ok(i),
            _ => i += 1,
        }
    }
    Err(Error::Repository("unterminated quoted path".into()))
}

fn unquote_header(s: &str) -> Result<String> {
    // Reuse plan_text's unquoter through a tiny shim.
    crate::plan_text::decode_plan(&format!("0 load {s}\n")).map(|p| match p.op(p.loads()[0]) {
        restore_dataflow::physical::PhysicalOp::Load { path } => path.clone(),
        _ => unreachable!(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use restore_dataflow::physical::PhysicalOp;

    fn load_project(path: &str, cols: Vec<usize>) -> PhysicalPlan {
        let mut p = PhysicalPlan::new();
        let l = p.add(PhysicalOp::Load { path: path.into() }, vec![]);
        let pr = p.add(PhysicalOp::Project { cols }, vec![l]);
        p.add(PhysicalOp::Store { path: format!("/repo/{path}") }, vec![pr]);
        p
    }

    fn q1_plan() -> PhysicalPlan {
        let mut p = PhysicalPlan::new();
        let l1 = p.add(PhysicalOp::Load { path: "/users".into() }, vec![]);
        let p1 = p.add(PhysicalOp::Project { cols: vec![0] }, vec![l1]);
        let l2 = p.add(PhysicalOp::Load { path: "/pv".into() }, vec![]);
        let p2 = p.add(PhysicalOp::Project { cols: vec![0, 2] }, vec![l2]);
        let j = p.add(PhysicalOp::Join { keys: vec![vec![0], vec![0]] }, vec![p1, p2]);
        p.add(PhysicalOp::Store { path: "/q1".into() }, vec![j]);
        p
    }

    fn stats(input: u64, output: u64, time: f64) -> RepoStats {
        RepoStats {
            input_bytes: input,
            output_bytes: output,
            job_time_s: time,
            ..Default::default()
        }
    }

    #[test]
    fn insert_and_match() {
        let mut repo = Repository::new();
        repo.insert(load_project("/pv", vec![0, 2]), "/repo/b", stats(100, 10, 5.0));
        let (id, m) = repo.find_first_match(&q1_plan()).unwrap();
        assert_eq!(repo.get(id).unwrap().output_path, "/repo/b");
        assert!(matches!(q1_plan().op(m.tip), PhysicalOp::Project { .. }));
    }

    #[test]
    fn duplicate_signature_refreshes_stats() {
        let mut repo = Repository::new();
        let a = repo.insert(load_project("/pv", vec![0]), "/r/1", stats(100, 10, 5.0));
        let InsertOutcome::Inserted(id) = a else { panic!() };
        repo.note_use(id, 3);
        let b = repo.insert(load_project("/pv", vec![0]), "/r/2", stats(100, 12, 6.0));
        assert_eq!(b, InsertOutcome::Duplicate(id));
        assert_eq!(repo.len(), 1);
        let e = repo.get(id).unwrap();
        assert_eq!(e.stats.output_bytes, 12); // refreshed
        assert_eq!(e.stats.use_count, 1); // history kept
        assert_eq!(e.output_path, "/r/1"); // original output retained
    }

    #[test]
    fn subsuming_plan_ordered_first() {
        let mut repo = Repository::new();
        // Insert the small plan first…
        repo.insert(load_project("/pv", vec![0, 2]), "/r/sub", stats(100, 50, 2.0));
        // …then the Q1 plan that subsumes it.
        repo.insert(q1_plan(), "/r/q1", stats(200, 20, 30.0));
        assert_eq!(repo.entries()[0].output_path, "/r/q1");
        assert_eq!(repo.entries()[1].output_path, "/r/sub");
        // A fresh Q1-shaped query now matches the *whole* Q1 plan first
        // (the paper's "first match is best match").
        let (id, _) = repo.find_first_match(&q1_plan()).unwrap();
        assert_eq!(repo.get(id).unwrap().output_path, "/r/q1");
    }

    #[test]
    fn incomparable_plans_ordered_by_reduction_then_time() {
        let mut repo = Repository::new();
        repo.insert(load_project("/a", vec![0]), "/r/low", stats(100, 50, 9.0));
        repo.insert(load_project("/b", vec![0]), "/r/high", stats(100, 5, 1.0));
        // ratio 20 beats ratio 2 despite lower time.
        assert_eq!(repo.entries()[0].output_path, "/r/high");
        // Same ratio: longer time first.
        let mut repo = Repository::new();
        repo.insert(load_project("/a", vec![0]), "/r/fast", stats(100, 10, 1.0));
        repo.insert(load_project("/b", vec![0]), "/r/slow", stats(100, 10, 9.0));
        assert_eq!(repo.entries()[0].output_path, "/r/slow");
    }

    #[test]
    fn eviction_removes_entry_and_signature() {
        let mut repo = Repository::new();
        let InsertOutcome::Inserted(id) =
            repo.insert(load_project("/a", vec![0]), "/r/a", stats(1, 1, 1.0))
        else {
            panic!()
        };
        assert!(repo.evict(id).is_some());
        assert!(repo.is_empty());
        // Same plan can be inserted again afterwards.
        let again = repo.insert(load_project("/a", vec![0]), "/r/a2", stats(1, 1, 1.0));
        assert!(matches!(again, InsertOutcome::Inserted(_)));
    }

    #[test]
    fn fingerprint_index_agrees_with_scan() {
        let mut scan = Repository::new();
        let mut indexed = Repository::new();
        indexed.use_fingerprint_index = true;
        for (i, cols) in [vec![0], vec![1], vec![0, 2], vec![2]].into_iter().enumerate() {
            let s = stats(100 + i as u64, 10, i as f64);
            scan.insert(load_project("/pv", cols.clone()), format!("/r/{i}"), s.clone());
            indexed.insert(load_project("/pv", cols), format!("/r/{i}"), s);
        }
        let q = q1_plan();
        let a = scan.find_first_match(&q).map(|(id, m)| (id, m.tip));
        let b = indexed.find_first_match(&q).map(|(id, m)| (id, m.tip));
        assert_eq!(a, b);
        assert!(a.is_some());
        // And both agree on a non-match.
        let other = load_project("/nowhere", vec![9]);
        assert!(scan.find_first_match(&other).is_none());
        assert!(indexed.find_first_match(&other).is_none());
    }

    #[test]
    fn save_load_round_trip() {
        let mut repo = Repository::new();
        repo.insert(
            q1_plan(),
            "/r/q1",
            RepoStats {
                input_bytes: 1000,
                output_bytes: 50,
                job_time_s: 12.5,
                avg_map_time_s: 1.5,
                avg_reduce_time_s: 2.5,
                use_count: 3,
                last_used: 9,
                created: 1,
                input_files: vec![("/pv".into(), 0), ("/users dir/x".into(), 2)],
            },
        );
        repo.insert(load_project("/pv", vec![0, 2]), "/r/sub", stats(100, 10, 2.0));
        let text = repo.save();
        let back = Repository::load(&text).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.entries()[0].output_path, repo.entries()[0].output_path);
        assert_eq!(back.entries()[0].signature, repo.entries()[0].signature);
        assert_eq!(back.entries()[0].stats, repo.entries()[0].stats);
        // Loaded repository still matches.
        assert!(back.find_first_match(&q1_plan()).is_some());
    }

    #[test]
    fn stored_bytes_sums_outputs() {
        let mut repo = Repository::new();
        repo.insert(load_project("/a", vec![0]), "/r/a", stats(100, 30, 1.0));
        repo.insert(load_project("/b", vec![0]), "/r/b", stats(100, 12, 1.0));
        assert_eq!(repo.stored_bytes(), 42);
    }
}
