//! A minimal RCU (read-copy-update) snapshot cell.
//!
//! [`Rcu<T>`] publishes immutable snapshots of `T` behind an atomic
//! pointer. Readers are **lock-free**: [`Rcu::load`] performs a handful
//! of atomic operations and never blocks on writers — there is no
//! reader lock to contend on and no writer critical section a reader
//! can sit behind (a reader retries only when a publish lands inside
//! its ~four-instruction registration window, so retries are bounded
//! by system-wide progress). Writers serialize among themselves on a
//! mutex, build the next snapshot off to the side, swap the pointer, and
//! reclaim the previous snapshot only after a **grace period** proves no
//! reader can still be dereferencing it.
//!
//! # Reclamation protocol
//!
//! The unsafe window is tiny but real: a reader loads the raw pointer
//! and then bumps the `Arc` strong count; if the writer dropped the old
//! `Arc` in between, the bump touches freed memory. The cell closes the
//! window with two epoch-parity reader counters:
//!
//! * readers: read `epoch`, register on `readers[epoch & 1]`, then
//!   **re-read `epoch` and retry if it moved** — only after the
//!   validated registration do they load the pointer, clone the `Arc`,
//!   and deregister;
//! * writers (serialized): swap the pointer to the new snapshot, flip
//!   the epoch, then spin until `readers[old parity]` drains to zero
//!   before dropping the old `Arc`.
//!
//! The validation step is what makes the argument airtight. A reader
//! whose re-read sees the epoch unchanged registered **before any flip
//! that could retire the pointer it is about to load**: to obtain a
//! pointer a writer retires, the reader's pointer load must precede
//! that writer's swap, which precedes its flip — and the reader's
//! registration precedes its validated re-read, which precedes the
//! flip, so the writer's drain waits for it. Without the re-read, a
//! reader stalled between reading the epoch and registering could
//! register on a stale parity *after* publish N drained it, then load
//! the pointer published by N — which publish N+1 retires and frees
//! while draining only the other parity: use-after-free. The epoch is
//! a monotonically increasing `u64` compared in full, so the re-read
//! cannot be fooled by parity wrap-around. Everything uses `SeqCst`;
//! the mutation rate (repository inserts/evicts, a few per executed
//! wave) is far too low for ordering relaxations to matter.
//!
//! Writers can stall while a preempted reader sits inside its ~five
//! instruction critical section — the classic RCU trade: mutations pay
//! so reads never do.

use parking_lot::{Mutex, MutexGuard};
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::sync::Arc;

/// Pad the parity counters to their own cache lines so readers on
/// different cores don't false-share with each other or the pointer.
#[repr(align(64))]
struct Padded(AtomicUsize);

/// Lock-free snapshot cell: lock-free `load`, serialized copy-on-write
/// `update`, grace-period reclamation.
pub struct Rcu<T> {
    /// `Arc::into_raw` of the current snapshot.
    ptr: AtomicPtr<T>,
    /// Grace-period epoch; low bit selects the active reader counter.
    epoch: AtomicU64,
    readers: [Padded; 2],
    /// Serializes writers; also the hook for [`Rcu::freeze`].
    writer: Mutex<()>,
}

impl<T> Rcu<T> {
    pub fn new(value: T) -> Self {
        Rcu {
            ptr: AtomicPtr::new(Arc::into_raw(Arc::new(value)) as *mut T),
            epoch: AtomicU64::new(0),
            readers: [Padded(AtomicUsize::new(0)), Padded(AtomicUsize::new(0))],
            writer: Mutex::new(()),
        }
    }

    /// The current snapshot. Lock-free (a reader retries only when a
    /// publish lands between its epoch read and its registration, so
    /// retries are bounded by writer progress); the returned `Arc`
    /// keeps the snapshot alive for as long as the caller holds it,
    /// unaffected by later updates.
    pub fn load(&self) -> Arc<T> {
        loop {
            let e = self.epoch.load(SeqCst);
            let slot = (e & 1) as usize;
            self.readers[slot].0.fetch_add(1, SeqCst);
            // Validate the registration: if the epoch moved, this slot
            // may already have been drained by a publish that retires
            // the pointer we would load — deregister and retry on the
            // fresh parity (see the module docs for why a stale
            // registration is unsound across *two* publishes).
            if self.epoch.load(SeqCst) != e {
                self.readers[slot].0.fetch_sub(1, SeqCst);
                continue;
            }
            let p = self.ptr.load(SeqCst);
            // SAFETY: `p` came from `Arc::into_raw` and cannot have been
            // reclaimed: any publish that retires `p` flips the epoch
            // after swapping it out, our validated registration precedes
            // that flip, and reclamation drains our slot first — so the
            // writer waits for the `fetch_sub` below.
            let snap = unsafe {
                Arc::increment_strong_count(p);
                Arc::from_raw(p)
            };
            self.readers[slot].0.fetch_sub(1, SeqCst);
            return snap;
        }
    }

    /// Number of snapshots ever published (0 for a freshly built cell).
    /// A hot path that is claimed to be write-free can assert this does
    /// not move.
    pub fn version(&self) -> u64 {
        self.epoch.load(SeqCst)
    }

    /// Publish `next` as the current snapshot and reclaim the previous
    /// one after a grace period. Callers must hold the writer mutex.
    fn publish(&self, next: Arc<T>) {
        let old = self.ptr.swap(Arc::into_raw(next) as *mut T, SeqCst);
        let old_slot = (self.epoch.fetch_add(1, SeqCst) & 1) as usize;
        // Grace period: readers that might hold `old` without having
        // bumped its strong count yet are all accounted in the old
        // parity counter. Writers are rare; spin politely.
        let mut spins = 0u32;
        while self.readers[old_slot].0.load(SeqCst) != 0 {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        // SAFETY: no reader can reach `old` anymore (the pointer was
        // swapped before the epoch flip, and the old-parity counter has
        // drained), so dropping the cell's strong reference is safe.
        // Readers that cloned it earlier still hold their own counts.
        unsafe { drop(Arc::from_raw(old)) };
    }

    /// Replace the snapshot wholesale.
    pub fn store(&self, value: T) {
        let _g = self.writer.lock();
        self.publish(Arc::new(value));
    }

    /// Run `f` against a clone of the current snapshot and publish the
    /// result. Writers serialize; readers never notice.
    pub fn update<R>(&self, f: impl FnOnce(&mut T) -> R) -> R
    where
        T: Clone,
    {
        self.update_then(f, |r| r)
    }

    /// Like [`Rcu::update`], but runs `after` once the new snapshot is
    /// **published** while **still holding the writer mutex**. Readers
    /// already see the update while `after` runs; other writers (and
    /// [`Rcu::freeze`]) wait until it returns. Eviction sweeps use this
    /// to delete files strictly after the entry removal is visible yet
    /// without opening a window a frozen state capture could fall into.
    pub fn update_then<A, B>(&self, f: impl FnOnce(&mut T) -> A, after: impl FnOnce(A) -> B) -> B
    where
        T: Clone,
    {
        let _g = self.writer.lock();
        // Clone directly from the published pointer: the writer lock
        // keeps it alive, no reader protocol needed.
        let mut next = unsafe { (*self.ptr.load(SeqCst)).clone() };
        let a = f(&mut next);
        self.publish(Arc::new(next));
        after(a)
    }

    /// Run `f` with the writer mutex held but **without** mutating: no
    /// update can be published while `f` runs. Consistent multi-table
    /// captures (e.g. `save_state`) use this to pin the snapshot *and*
    /// exclude concurrent sweeps for the duration of the capture.
    pub fn freeze<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        let _g = self.writer.lock();
        f(unsafe { &*self.ptr.load(SeqCst) })
    }

    /// Enter this cell's writer section and hold it until the guard
    /// drops. The closure-based [`Rcu::update_then`] / [`Rcu::freeze`]
    /// can only span *one* cell; multi-cell transactions (the sharded
    /// repository's batches and freezes) instead collect one guard per
    /// cell — always in a fixed order — work against each guard's
    /// [`RcuWriter::current`] snapshot, and publish through the guards
    /// before releasing them.
    pub(crate) fn writer(&self) -> RcuWriter<'_, T> {
        RcuWriter { cell: self, _guard: self.writer.lock() }
    }
}

/// An open writer section on an [`Rcu`] cell (see [`Rcu::writer`]).
/// While it lives, no other writer can publish to the cell and
/// [`Rcu::freeze`] blocks; readers are unaffected.
pub(crate) struct RcuWriter<'a, T> {
    cell: &'a Rcu<T>,
    _guard: MutexGuard<'a, ()>,
}

impl<T> RcuWriter<'_, T> {
    /// The snapshot current inside this writer section. Holding the
    /// guard keeps the published pointer alive, so no reader protocol
    /// is needed.
    pub(crate) fn current(&self) -> &T {
        unsafe { &*self.cell.ptr.load(SeqCst) }
    }

    /// Publish `next` as the cell's snapshot (grace-period reclamation
    /// of the previous one, exactly like the closure-based paths).
    pub(crate) fn publish(&self, next: T) {
        self.cell.publish(Arc::new(next));
    }
}

impl<T> Drop for Rcu<T> {
    fn drop(&mut self) {
        // SAFETY: exclusive access; reclaim the cell's strong reference.
        unsafe { drop(Arc::from_raw(self.ptr.load(SeqCst))) };
    }
}

// SAFETY: the cell hands out `Arc<T>` across threads, so it needs the
// same bounds an `Arc` would; the raw pointer is only ever produced and
// reclaimed through `Arc`.
unsafe impl<T: Send + Sync> Send for Rcu<T> {}
unsafe impl<T: Send + Sync> Sync for Rcu<T> {}

impl<T: std::fmt::Debug> std::fmt::Debug for Rcu<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rcu").field("current", &*self.load()).finish()
    }
}

impl<T: Default> Default for Rcu<T> {
    fn default() -> Self {
        Rcu::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn load_returns_published_value() {
        let cell = Rcu::new(1u64);
        assert_eq!(*cell.load(), 1);
        cell.update(|v| *v = 2);
        assert_eq!(*cell.load(), 2);
        cell.store(7);
        assert_eq!(*cell.load(), 7);
        assert_eq!(cell.version(), 2);
    }

    #[test]
    fn old_snapshot_outlives_update() {
        let cell = Rcu::new(vec![1, 2, 3]);
        let old = cell.load();
        cell.update(|v| v.push(4));
        assert_eq!(*old, vec![1, 2, 3], "held snapshot is immutable");
        assert_eq!(*cell.load(), vec![1, 2, 3, 4]);
    }

    /// Every snapshot the writers retire must be dropped exactly once,
    /// and none before its readers are done.
    #[test]
    fn reclamation_is_exact() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Token(#[allow(dead_code)] u64);
        impl Clone for Token {
            fn clone(&self) -> Self {
                Token(self.0)
            }
        }
        impl Drop for Token {
            fn drop(&mut self) {
                DROPS.fetch_add(1, SeqCst);
            }
        }
        let cell = Rcu::new(Token(0));
        for i in 1..=100 {
            let held = cell.load();
            cell.update(|t| t.0 = i);
            drop(held);
        }
        drop(cell);
        // One Token exists per published snapshot (100 update clones)
        // plus the original: every one must be dropped exactly once.
        assert_eq!(DROPS.load(SeqCst), 101);
    }

    /// Readers hammering `load` while a writer churns updates: every
    /// observed snapshot is internally consistent (the two fields always
    /// agree), which fails loudly under use-after-free or torn reads.
    #[test]
    fn concurrent_readers_see_consistent_snapshots() {
        #[derive(Clone)]
        struct Pair {
            a: u64,
            b: u64,
        }
        let cell = Rcu::new(Pair { a: 0, b: 0 });
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let mut last = 0;
                    for _ in 0..20_000 {
                        let p = cell.load();
                        assert_eq!(p.a, p.b, "torn snapshot");
                        assert!(p.a >= last, "snapshots went backwards");
                        last = p.a;
                    }
                });
            }
            s.spawn(|| {
                for i in 1..=5_000 {
                    cell.update(|p| {
                        p.a = i;
                        p.b = i;
                    });
                }
            });
        });
        assert_eq!(cell.load().a, 5_000);
    }

    #[test]
    fn freeze_blocks_writers_but_not_readers() {
        let cell = Rcu::new(10u64);
        cell.freeze(|v| {
            assert_eq!(*v, 10);
            // Readers proceed while frozen.
            assert_eq!(*cell.load(), 10);
        });
        cell.update(|v| *v += 1);
        assert_eq!(*cell.load(), 11);
    }
}
