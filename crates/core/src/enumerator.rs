//! Sub-job enumeration — §4 of the paper.
//!
//! "We parse the physical plan of the input MapReduce job starting from
//! its Load operators. For every parsed physical operator, we check if
//! the heuristic that we are using requires us to generate a sub-job for
//! this operator. If so, we inject a new Store operator after the parsed
//! physical operator … we need to also insert an operator that branches
//! the output into two, similar to a Unix tee command … the Split
//! operator in Pig."

use restore_dataflow::physical::{NodeId, PhysicalOp, PhysicalPlan};

/// Which operators' outputs to materialize as candidate sub-jobs (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Heuristic {
    /// Do not generate sub-jobs at all (plain Pig behaviour).
    #[default]
    None,
    /// Conservative (HC): operators known to reduce their input size —
    /// Project and Filter (we include expression-projections, which are
    /// Pig FOREACHes, in the Project family).
    Conservative,
    /// Aggressive (HA): HC plus the expensive operators Join, Group, and
    /// CoGroup. The paper's default.
    Aggressive,
    /// No Heuristic (NH): a Store after *every* physical operator.
    NoHeuristic,
}

impl Heuristic {
    /// Does this heuristic materialize the output of `op`?
    pub fn selects(&self, op: &PhysicalOp) -> bool {
        // Plumbing operators never get candidates.
        if matches!(op, PhysicalOp::Load { .. } | PhysicalOp::Store { .. } | PhysicalOp::Split) {
            return false;
        }
        match self {
            Heuristic::None => false,
            Heuristic::Conservative => matches!(
                op,
                PhysicalOp::Project { .. } | PhysicalOp::MapExpr { .. } | PhysicalOp::Filter { .. }
            ),
            Heuristic::Aggressive => matches!(
                op,
                PhysicalOp::Project { .. }
                    | PhysicalOp::MapExpr { .. }
                    | PhysicalOp::Filter { .. }
                    | PhysicalOp::Join { .. }
                    | PhysicalOp::Group { .. }
                    | PhysicalOp::CoGroup { .. }
            ),
            Heuristic::NoHeuristic => true,
        }
    }

    /// Short display name used by the experiment harness.
    pub fn label(&self) -> &'static str {
        match self {
            Heuristic::None => "Off",
            Heuristic::Conservative => "HC",
            Heuristic::Aggressive => "HA",
            Heuristic::NoHeuristic => "NH",
        }
    }
}

/// A candidate sub-job generated for one operator.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// DFS path the injected Store writes to (or the path of an existing
    /// Store when the operator's output was already stored).
    pub store_path: String,
    /// The candidate's job plan: Loads → … → operator → Store. Expressed
    /// at the *job* level; the driver lineage-expands it before
    /// registering it in the repository.
    pub prefix: PhysicalPlan,
    /// True when no Store was injected because the output was already
    /// materialized (the operator fed a Store directly).
    pub already_stored: bool,
}

/// Inject `Split`+`Store` pairs after every operator the heuristic
/// selects. `make_path` mints fresh candidate paths; `skip` lets the
/// caller suppress materialization (e.g. when the repository already
/// holds an equivalent plan, so re-storing would only add overhead).
///
/// Returns the candidates; `plan` is modified in place.
pub fn inject_subjob_stores(
    plan: &mut PhysicalPlan,
    heuristic: Heuristic,
    mut make_path: impl FnMut() -> String,
    mut skip: impl FnMut(&PhysicalPlan) -> bool,
) -> Vec<Candidate> {
    let mut candidates = Vec::new();
    if heuristic == Heuristic::None {
        return candidates;
    }
    // Snapshot: only operators present before instrumentation are
    // considered, in topological (from-the-Loads) order.
    let original: Vec<NodeId> = plan.topo_order();
    for n in original {
        if !heuristic.selects(plan.op(n)) {
            continue;
        }
        // Already stored? A consumer that is a Store (directly or through
        // an existing Split) means the output is materialized by the job
        // anyway — record the candidate without injecting (§4: "if the
        // parsed operator is not already a Store").
        if let Some(path) = existing_store_path(plan, n) {
            let prefix = plan.prefix_plan(n, &path);
            if !skip(&prefix) {
                candidates.push(Candidate { store_path: path, prefix, already_stored: true });
            }
            continue;
        }
        let path = make_path();
        let prefix = plan.prefix_plan(n, &path);
        if skip(&prefix) {
            continue;
        }
        // Tee the output: consumers of n now read from the Split, and a
        // new Store captures the side branch (Figure 8).
        let consumers = plan.consumers(n);
        let split = plan.add(PhysicalOp::Split, vec![n]);
        for c in consumers {
            for k in 0..plan.inputs(c).len() {
                if plan.inputs(c)[k] == n {
                    plan.node_mut(c).inputs[k] = split;
                }
            }
        }
        plan.add(PhysicalOp::Store { path: path.clone() }, vec![split]);
        candidates.push(Candidate { store_path: path, prefix, already_stored: false });
    }
    candidates
}

/// Path of a Store already consuming `n`'s output (directly or through a
/// Split tee), if any.
fn existing_store_path(plan: &PhysicalPlan, n: NodeId) -> Option<String> {
    let mut frontier = vec![n];
    while let Some(cur) = frontier.pop() {
        for c in plan.consumers(cur) {
            match plan.op(c) {
                PhysicalOp::Store { path } => return Some(path.clone()),
                PhysicalOp::Split => frontier.push(c),
                _ => {}
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use restore_dataflow::expr::Expr;

    /// Q1's one-job plan: two Load+Project branches into a Join.
    fn q1_plan() -> PhysicalPlan {
        let mut p = PhysicalPlan::new();
        let l1 = p.add(PhysicalOp::Load { path: "/users".into() }, vec![]);
        let p1 = p.add(PhysicalOp::Project { cols: vec![0] }, vec![l1]);
        let l2 = p.add(PhysicalOp::Load { path: "/pv".into() }, vec![]);
        let p2 = p.add(PhysicalOp::Project { cols: vec![0, 2] }, vec![l2]);
        let j = p.add(PhysicalOp::Join { keys: vec![vec![0], vec![0]] }, vec![p1, p2]);
        p.add(PhysicalOp::Store { path: "/out".into() }, vec![j]);
        p
    }

    fn paths() -> impl FnMut() -> String {
        let mut i = 0;
        move || {
            i += 1;
            format!("/repo/cand-{i}")
        }
    }

    #[test]
    fn conservative_materializes_projects_only() {
        let mut plan = q1_plan();
        let cands = inject_subjob_stores(&mut plan, Heuristic::Conservative, paths(), |_| false);
        // Two Projects → two injected stores (Figure 8's shape).
        assert_eq!(cands.len(), 2);
        assert!(cands.iter().all(|c| !c.already_stored));
        let splits = plan.ids().filter(|&i| matches!(plan.op(i), PhysicalOp::Split)).count();
        assert_eq!(splits, 2);
        assert_eq!(plan.stores().len(), 3); // main + 2 side
                                            // Candidate prefixes are Load→Project→Store (3 nodes, no Split).
        for c in &cands {
            assert_eq!(c.prefix.len(), 3);
            assert!(c.prefix.ids().all(|i| !matches!(c.prefix.op(i), PhysicalOp::Split)));
        }
    }

    #[test]
    fn aggressive_adds_join_candidate_via_existing_store() {
        let mut plan = q1_plan();
        let cands = inject_subjob_stores(&mut plan, Heuristic::Aggressive, paths(), |_| false);
        assert_eq!(cands.len(), 3);
        // The Join feeds the job's own Store: no extra injection, the
        // candidate references the existing output.
        let join_cand = cands.iter().find(|c| c.store_path == "/out").unwrap();
        assert!(join_cand.already_stored);
        // Only the two Project stores were injected.
        assert_eq!(plan.stores().len(), 3);
    }

    #[test]
    fn no_heuristic_stores_after_every_operator() {
        let mut plan = q1_plan();
        let with_filter = {
            let f =
                plan.add(PhysicalOp::Filter { pred: Expr::col_eq(0, 1i64) }, vec![plan.loads()[0]]);
            plan.add(PhysicalOp::Store { path: "/out2".into() }, vec![f]);
            plan
        };
        let mut plan = with_filter;
        let cands = inject_subjob_stores(&mut plan, Heuristic::NoHeuristic, paths(), |_| false);
        // Project, Project, Join(existing store), Filter(existing store).
        assert_eq!(cands.len(), 4);
        assert_eq!(cands.iter().filter(|c| c.already_stored).count(), 2);
    }

    #[test]
    fn off_heuristic_is_a_noop() {
        let mut plan = q1_plan();
        let before = plan.len();
        let cands = inject_subjob_stores(&mut plan, Heuristic::None, paths(), |_| false);
        assert!(cands.is_empty());
        assert_eq!(plan.len(), before);
    }

    #[test]
    fn skip_suppresses_injection() {
        let mut plan = q1_plan();
        // Suppress everything: plan unchanged, no candidates.
        let before = plan.len();
        let cands = inject_subjob_stores(&mut plan, Heuristic::Aggressive, paths(), |_| true);
        assert!(cands.is_empty());
        assert_eq!(plan.len(), before);
    }

    #[test]
    fn instrumented_plan_still_executes_semantics() {
        // The Split tee must not change the main pipeline: consumers of
        // the Project now read via Split.
        let mut plan = q1_plan();
        inject_subjob_stores(&mut plan, Heuristic::Conservative, paths(), |_| false);
        let join = plan.ids().find(|&i| matches!(plan.op(i), PhysicalOp::Join { .. })).unwrap();
        for &i in plan.inputs(join) {
            assert!(matches!(plan.op(i), PhysicalOp::Split));
        }
    }

    #[test]
    fn heuristic_labels() {
        assert_eq!(Heuristic::Conservative.label(), "HC");
        assert_eq!(Heuristic::Aggressive.label(), "HA");
        assert_eq!(Heuristic::NoHeuristic.label(), "NH");
    }
}
