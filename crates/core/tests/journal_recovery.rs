//! The snapshot journal end to end: incremental deltas replayed over a
//! base checkpoint reproduce the session **byte-identically**, mixed
//! wire versions compose (a committed v2 base + v3-era journal
//! segments), sequence anchoring skips covered records, and malformed
//! or truncated segments fail naming the offending record.

use restore_common::Error;
use restore_core::{JournalConfig, ReStore, ReStoreConfig, SelectionPolicy};
use restore_dfs::{Dfs, DfsConfig};
use restore_mapreduce::{ClusterConfig, Engine, EngineConfig};

fn dfs() -> Dfs {
    let dfs = Dfs::new(DfsConfig::small_for_tests());
    dfs.write_all("/data/pv", b"alice\t4\nbob\t7\nalice\t1\ncarol\t9\n").unwrap();
    dfs.write_all("/data/users", b"alice\tkitchener\nbob\ttoronto\n").unwrap();
    dfs
}

fn engine_over(dfs: Dfs) -> Engine {
    Engine::new(dfs, ClusterConfig::default(), EngineConfig::default())
}

fn sum_query(out: &str) -> String {
    format!(
        "A = load '/data/pv' as (user, n:int);
         G = group A by user;
         R = foreach G generate group, SUM(A.n);
         store R into '{out}';"
    )
}

fn join_query(out: &str) -> String {
    format!(
        "A = load '/data/pv' as (user, revenue:int);
         B = load '/data/users' as (name, city);
         C = join B by name, A by user;
         D = group C by $0;
         E = foreach D generate group, SUM(C.revenue);
         store E into '{out}';"
    )
}

/// A literal base checkpoint in the **v2** wire format (what
/// `save_state` produced before the journal existed): one default-
/// namespace entry and a tenant carrying only a policy override. It
/// must keep loading — and anchoring journal replay at sequence 0 —
/// forever.
const V2_FIXTURE: &str = r#"restore-state v2
tick 7
cand 3
--config--
reuse_enabled true
heuristic aggressive
repo_prefix "/restore"
delete_tmp false
register_final_outputs true
wave_parallel true
store_all true
require_size_reduction false
require_time_benefit false
reload_read_bps 83886080
eviction_window none
check_input_versions false
--space ""--
--provenance--
path "/repo/b"
  0 load "/data/pv"
  1 project 0,2 <- 0
  2 store "/repo/b" <- 1
end
--repository--
entry 0 "/repo/b" 100 10 5 1.5 2.5 3 6 1
input "/data/pv" 0
plan
  0 load "/data/pv"
  1 project 0,2 <- 0
  2 store "/repo/b" <- 1
end
--space "tuned"--
--config--
reuse_enabled true
heuristic conservative
repo_prefix "/restore"
delete_tmp false
register_final_outputs true
wave_parallel true
store_all true
require_size_reduction false
require_time_benefit false
reload_read_bps 83886080
eviction_window none
check_input_versions false
--provenance--
--repository--
"#;

/// Run a mixed workload on a journaling session loaded from the v2
/// fixture, capturing deltas along the way. Returns the shared DFS,
/// the captured segments, and the reference full dump.
fn journaled_scenario() -> (Dfs, Vec<String>, String) {
    let shared = dfs();
    shared.write_all("/repo/b", b"stored bytes").unwrap();
    let live = ReStore::new(engine_over(shared.clone()), ReStoreConfig::default());
    live.load_state(V2_FIXTURE).unwrap();
    live.enable_journal(JournalConfig::default());

    let mut segments = Vec::new();
    // Cold queries register entries in two namespaces…
    live.execute_query(&sum_query("/out/a"), "/wf/a").unwrap();
    live.execute_query_as(Some("ana"), &join_query("/out/j"), "/wf/j").unwrap();
    segments.extend(live.save_state_delta().unwrap());
    // …a warm rerun dirties reuse counters (note-use records)…
    let warm = live.execute_query(&sum_query("/out/a2"), "/wf/a2").unwrap();
    assert_eq!(warm.jobs_skipped, 1, "rerun must be a warm hit");
    // …and config/tenant changes ride along as their own records.
    live.set_config_as(
        Some("tuned"),
        ReStoreConfig { register_final_outputs: false, ..Default::default() },
    );
    live.set_config_as(Some("fresh-tenant"), ReStoreConfig::default());
    live.clear_config_as("fresh-tenant");
    segments.extend(live.save_state_delta().unwrap());

    let reference = live.save_state();
    (shared, segments, reference)
}

#[test]
fn v2_fixture_plus_journal_equals_fresh_v5_dump_byte_identically() {
    let (shared, segments, reference) = journaled_scenario();
    assert!(reference.starts_with("restore-state v5\n"));
    assert!(!segments.is_empty());

    let recovered = ReStore::new(engine_over(shared), ReStoreConfig::default());
    let report = recovered.recover(V2_FIXTURE, &segments).unwrap();
    assert_eq!(report.base_seq, 0, "a v2 base anchors at sequence 0");
    assert!(report.records_applied > 0);
    assert_eq!(report.records_skipped, 0);
    assert!(report.torn_tail.is_none());
    assert_eq!(
        recovered.save_state(),
        reference,
        "base + journal must reproduce the live session byte for byte"
    );
}

#[test]
fn recovered_session_serves_warm_hits() {
    let (shared, segments, _) = journaled_scenario();
    let recovered = ReStore::new(engine_over(shared), ReStoreConfig::default());
    recovered.recover(V2_FIXTURE, &segments).unwrap();
    let warm = recovered.execute_query(&sum_query("/out/again"), "/wf/again").unwrap();
    assert_eq!(warm.jobs_skipped, 1, "recovered repository must keep serving reuse");
    let warm_t = recovered.execute_query_as(Some("ana"), &join_query("/out/j2"), "/wf/j2").unwrap();
    assert!(
        warm_t.jobs_skipped > 0 || !warm_t.rewrites.is_empty(),
        "tenant namespaces recover too"
    );
}

#[test]
fn v4_base_skips_records_it_already_covers() {
    let (shared, segments, reference) = journaled_scenario();
    // The reference dump is itself a v4 base anchored past every
    // record; replaying the full journal over it must skip everything
    // and land on the same bytes.
    let recovered = ReStore::new(engine_over(shared), ReStoreConfig::default());
    let report = recovered.recover(&reference, &segments).unwrap();
    assert!(report.base_seq > 0);
    assert_eq!(report.records_applied, 0, "a covering base leaves nothing to replay");
    assert!(report.records_skipped > 0);
    assert_eq!(recovered.save_state(), reference);
}

#[test]
fn torn_final_segment_recovers_a_consistent_prefix() {
    let (shared, mut segments, _) = journaled_scenario();
    let last = segments.pop().unwrap();
    // Cut the final segment mid-record (three bytes short of the end is
    // always inside the last frame's payload).
    let cut = last.len() - 3;
    segments.push(last[..cut].to_string());

    let recovered = ReStore::new(engine_over(shared.clone()), ReStoreConfig::default());
    let report = recovered.recover(V2_FIXTURE, &segments).unwrap();
    let torn = report.torn_tail.expect("the cut must be reported");
    assert_eq!(torn.segment, segments.len() - 1);
    // The prefix is a real state: it re-saves cleanly and still loads.
    let state = recovered.save_state();
    let reload = ReStore::new(engine_over(shared), ReStoreConfig::default());
    reload.load_state(&state).unwrap();
    assert_eq!(reload.save_state(), state);
}

#[test]
fn torn_non_final_segment_names_the_record() {
    let (shared, mut segments, _) = journaled_scenario();
    assert!(segments.len() >= 2, "scenario must span segments");
    let cut = segments[0].len() - 3;
    segments[0].truncate(cut);
    let recovered = ReStore::new(engine_over(shared), ReStoreConfig::default());
    match recovered.recover(V2_FIXTURE, &segments) {
        Err(Error::Journal { segment: 0, record, msg }) => {
            assert!(record >= 1, "the torn record is named");
            assert!(msg.contains("non-final"), "{msg}");
        }
        other => panic!("expected a journal error, got {other:?}"),
    }
}

#[test]
fn corrupted_record_names_segment_and_record() {
    let (shared, mut segments, _) = journaled_scenario();
    // Flip a payload byte in the middle of the first segment.
    let seg = &segments[0];
    let pos = seg.len() / 2;
    let mut bytes = seg.clone().into_bytes();
    bytes[pos] ^= 0x20;
    segments[0] = String::from_utf8(bytes).unwrap();
    let recovered = ReStore::new(engine_over(shared), ReStoreConfig::default());
    match recovered.recover(V2_FIXTURE, &segments) {
        Err(Error::Journal { segment: 0, record, msg }) => {
            assert!(record >= 1);
            assert!(
                msg.contains("checksum") || msg.contains("bad frame header"),
                "corruption must be diagnosed, got: {msg}"
            );
        }
        other => panic!("expected a journal error, got {other:?}"),
    }
}

#[test]
fn delta_capture_requires_the_journal() {
    let rs = ReStore::new(engine_over(dfs()), ReStoreConfig::default());
    assert!(rs.save_state_delta().is_err(), "deltas need enable_journal first");
    rs.enable_journal(JournalConfig::default());
    assert_eq!(rs.save_state_delta().unwrap(), Vec::<String>::new(), "idle session, empty delta");
}

#[test]
fn eviction_sweeps_journal_their_evictions() {
    let shared = dfs();
    let live = ReStore::new(
        engine_over(shared.clone()),
        ReStoreConfig {
            selection: SelectionPolicy { eviction_window: Some(1), ..Default::default() },
            ..Default::default()
        },
    );
    live.enable_journal(JournalConfig::default());
    let base = live.save_state();
    live.execute_query(&sum_query("/out/a"), "/wf/a").unwrap();
    // Push the clock far past the window: the next query's sweep evicts
    // the stale entries before matching.
    for i in 0..4 {
        live.execute_query(&join_query(&format!("/out/j{i}")), "/wf/j").unwrap();
    }
    let segments = live.save_state_delta().unwrap();
    let reference = live.save_state();

    let recovered = ReStore::new(engine_over(shared), ReStoreConfig::default());
    recovered.recover(&base, &segments).unwrap();
    assert_eq!(recovered.save_state(), reference, "evictions replay like any other batch");
}

#[test]
fn full_session_replace_is_journaled() {
    let shared = dfs();
    shared.write_all("/repo/b", b"stored bytes").unwrap();
    let live = ReStore::new(engine_over(shared.clone()), ReStoreConfig::default());
    live.enable_journal(JournalConfig::default());
    let base = live.save_state();
    live.execute_query(&sum_query("/out/a"), "/wf/a").unwrap();
    // A wholesale load_state mid-journal lands as one `replace` record.
    live.load_state(V2_FIXTURE).unwrap();
    live.execute_query_as(Some("ana"), &sum_query("/out/t"), "/wf/t").unwrap();
    let segments = live.save_state_delta().unwrap();
    let reference = live.save_state();

    let recovered = ReStore::new(engine_over(shared), ReStoreConfig::default());
    recovered.recover(&base, &segments).unwrap();
    assert_eq!(recovered.save_state(), reference);
}

/// Sharded repositories journal through per-shard lanes, so a cut
/// segment's physical record order interleaves sequence numbers from
/// different lanes. Recovery must merge on seq and land on the **byte-
/// identical** state — and the interleaving must actually occur, or
/// this test proves nothing.
#[test]
fn sharded_journal_replays_interleaved_lanes_byte_identically() {
    let shared = dfs();
    shared.write_all("/repo/b", b"stored bytes").unwrap();
    let sharded_cfg = ReStoreConfig { repo_shards: 8, ..Default::default() };
    let live = ReStore::new(engine_over(shared.clone()), sharded_cfg.clone());
    live.enable_journal(JournalConfig::default());
    let base = live.save_state();
    // Mixed workload across two namespaces: repo batches append via
    // their shards' lanes, provenance/config records via lane 0.
    live.execute_query(&sum_query("/out/a"), "/wf/a").unwrap();
    live.execute_query_as(Some("ana"), &join_query("/out/j"), "/wf/j").unwrap();
    let warm = live.execute_query(&sum_query("/out/a2"), "/wf/a2").unwrap();
    assert_eq!(warm.jobs_skipped, 1, "rerun must be a warm hit");
    live.set_config_as(Some("ana"), ReStoreConfig { repo_shards: 8, ..Default::default() });
    // A sharded repository is only interesting if the workload actually
    // spans shards: at least one namespace must have entries outside
    // shard 0, or the lane interleaving below would be vacuous.
    live.with_repository_as(None, |r| {
        let spread = r.view().shards().iter().skip(1).any(|s| !s.entries().is_empty());
        assert!(spread, "workload must place entries outside shard 0");
    });
    let segments = live.save_state_delta().unwrap();
    let reference = live.save_state();

    // Extract each frame's seq in physical order via the public
    // boundary list (frames start at every boundary but the last).
    let mut seqs: Vec<u64> = Vec::new();
    for seg in &segments {
        let bounds = restore_core::journal::segment_boundaries(seg);
        for w in bounds.windows(2) {
            let header = seg[w[0]..].lines().next().unwrap();
            seqs.push(header.split(' ').nth(1).unwrap().parse().unwrap());
        }
    }
    let mut sorted = seqs.clone();
    sorted.sort_unstable();
    assert_ne!(seqs, sorted, "lanes must interleave seqs, or the sort path went unexercised");

    // Same shard layout: recovery is byte-identical.
    let recovered = ReStore::new(engine_over(shared.clone()), sharded_cfg);
    let report = recovered.recover(&base, &segments).unwrap();
    assert!(report.records_applied > 0);
    assert_eq!(
        recovered.save_state(),
        reference,
        "interleaved per-shard records must replay to the identical state"
    );

    // Records carry no shard numbers, so the same journal also replays
    // into a *single-shard* default namespace: same entries, same
    // footprint, same warm hits (order within the dump may differ).
    let single = ReStore::new(engine_over(shared), ReStoreConfig::default());
    single.recover(&base, &segments).unwrap();
    assert_eq!(single.stats().repository_entries, recovered.stats().repository_entries);
    assert_eq!(single.stats().stored_bytes, recovered.stats().stored_bytes);
    let warm = single.execute_query(&sum_query("/out/x"), "/wf/x").unwrap();
    assert_eq!(warm.jobs_skipped, 1, "cross-shard-count replay must keep serving reuse");
}

/// Regression: `recover` advances the journal's allocation cursor to
/// the last replayed seq but previously left the capture cursor at
/// zero, so a freshly recovered session reported every replayed record
/// as "uncaptured" — a phantom lag that never drained, because those
/// records were never in the live lanes to begin with. Both cursors
/// must land together.
#[test]
fn recover_leaves_no_phantom_seq_lag() {
    let (shared, segments, _) = journaled_scenario();
    let recovered = ReStore::new(engine_over(shared), ReStoreConfig::default());
    let report = recovered.recover(V2_FIXTURE, &segments).unwrap();
    assert!(report.records_applied > 0);
    assert_eq!(
        recovered.journal_seq_lag(),
        0,
        "replayed records were never buffered; recovery must not report them as lag"
    );
    // Resuming continuous checkpointing confirms it: the first delta
    // after recovery is empty, not a ghost of the replayed stream.
    recovered.enable_journal(JournalConfig::default());
    assert_eq!(recovered.save_state_delta().unwrap(), Vec::<String>::new());
    assert_eq!(recovered.journal_seq_lag(), 0);
}

#[test]
fn journal_stats_track_recording() {
    let rs = ReStore::new(engine_over(dfs()), ReStoreConfig::default());
    assert!(!rs.journal_enabled());
    rs.enable_journal(JournalConfig { segment_bytes: 256 });
    assert!(rs.journal_enabled());
    rs.execute_query(&sum_query("/out/a"), "/wf/a").unwrap();
    let stats = rs.journal_stats();
    assert!(stats.seq > 0, "mutations must have been recorded");
    assert!(stats.live_bytes > 0 || stats.sealed_segments > 0);
    // Tiny segment bound: the workload must have rolled segments.
    let segments = rs.save_state_delta().unwrap();
    assert!(segments.len() > 1, "256-byte segments must roll over, got {}", segments.len());
}
