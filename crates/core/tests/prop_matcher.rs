//! Property-based tests of the matcher, rewriter, and plan serialization
//! over randomly generated physical plans.

use proptest::prelude::*;
use restore_core::matcher::{pairwise_plan_traversal, subsumes};
use restore_core::plan_text::{decode_plan, encode_plan};
use restore_dataflow::expr::Expr;
use restore_dataflow::physical::{NodeId, PhysicalOp, PhysicalPlan};

/// Strategy: a random linear-ish pipeline plan with occasional joins.
/// Returns (plan, interesting ops = everything except Load/Store).
fn arb_plan() -> impl Strategy<Value = PhysicalPlan> {
    // A recipe: for each step, an op choice (0..5) and parameters.
    (
        prop::collection::vec((0u8..6, 0usize..4, any::<i64>()), 1..8),
        prop::sample::select(vec!["/data/a", "/data/b", "/data/c"]),
        prop::option::of(prop::sample::select(vec!["/data/x", "/data/y"])),
    )
        .prop_map(|(steps, base, join_with)| {
            let mut p = PhysicalPlan::new();
            let mut cur = p.add(PhysicalOp::Load { path: base.to_string() }, vec![]);
            for (kind, col, lit) in steps {
                cur = match kind {
                    0 => p.add(PhysicalOp::Project { cols: vec![0, col] }, vec![cur]),
                    1 => p.add(PhysicalOp::Filter { pred: Expr::col_eq(col, lit) }, vec![cur]),
                    2 => p.add(PhysicalOp::Group { keys: vec![col] }, vec![cur]),
                    3 => p.add(PhysicalOp::Distinct, vec![cur]),
                    4 => p.add(
                        PhysicalOp::MapExpr { exprs: vec![Expr::Col(0), Expr::Lit(lit.into())] },
                        vec![cur],
                    ),
                    _ => p.add(PhysicalOp::Limit { n: (lit.unsigned_abs() % 100) + 1 }, vec![cur]),
                };
            }
            if let Some(other) = join_with {
                let l2 = p.add(PhysicalOp::Load { path: other.to_string() }, vec![]);
                cur = p.add(PhysicalOp::Join { keys: vec![vec![0], vec![0]] }, vec![cur, l2]);
            }
            p.add(PhysicalOp::Store { path: "/out".to_string() }, vec![cur]);
            p
        })
}

/// Non-plumbing nodes of a plan.
fn op_nodes(p: &PhysicalPlan) -> Vec<NodeId> {
    p.ids()
        .filter(|&id| {
            !matches!(
                p.op(id),
                PhysicalOp::Load { .. } | PhysicalOp::Store { .. } | PhysicalOp::Split
            )
        })
        .collect()
}

proptest! {
    /// Matching is reflexive: every plan matches itself, at its own tip.
    #[test]
    fn matching_is_reflexive(plan in arb_plan()) {
        let m = pairwise_plan_traversal(&plan, &plan);
        prop_assert!(m.is_some(), "plan must match itself:\n{}", plan.explain());
        // And subsumption is reflexive.
        prop_assert!(subsumes(&plan, &plan));
    }

    /// Every prefix of a plan (a candidate sub-job) is contained in it.
    #[test]
    fn prefixes_always_match(plan in arb_plan(), pick in any::<prop::sample::Index>()) {
        let nodes = op_nodes(&plan);
        let n = nodes[pick.index(nodes.len())];
        let prefix = plan.prefix_plan(n, "/repo/x");
        let m = pairwise_plan_traversal(&prefix, &plan);
        prop_assert!(
            m.is_some(),
            "prefix at {n:?} must match\nprefix:\n{}\nplan:\n{}",
            prefix.explain(),
            plan.explain()
        );
        // The prefix is subsumed by the full plan, never vice versa
        // (unless they are the same plan up to the Store).
        prop_assert!(subsumes(&plan, &prefix));
    }

    /// Rewriting with a matched prefix yields a plan that loads the
    /// stored path and no longer contains the prefix (next scan finds no
    /// second occurrence in linear pipelines).
    #[test]
    fn rewrite_splices_load(plan in arb_plan(), pick in any::<prop::sample::Index>()) {
        let nodes = op_nodes(&plan);
        let n = nodes[pick.index(nodes.len())];
        let prefix = plan.prefix_plan(n, "/repo/x");
        let m = pairwise_plan_traversal(&prefix, &plan).unwrap();
        let mut rewritten = plan.clone();
        restore_core::rewriter::rewrite(&mut rewritten, &m, "/repo/x");
        // The stored path is now loaded.
        let loads_repo = rewritten.loads().iter().any(|&l| {
            matches!(rewritten.op(l), PhysicalOp::Load { path } if path == "/repo/x")
        });
        prop_assert!(loads_repo, "rewritten plan must load the stored output");
        // Same number of Stores (outputs unchanged).
        prop_assert_eq!(rewritten.stores().len(), plan.stores().len());
    }

    /// Plan serialization round-trips: signature-identical plans.
    #[test]
    fn plan_text_round_trips(plan in arb_plan()) {
        let text = encode_plan(&plan);
        let back = decode_plan(&text).unwrap();
        prop_assert_eq!(back.signature(), plan.signature(), "text:\n{}", text);
        prop_assert_eq!(back.len(), plan.len());
    }

    /// The fingerprint index and the paper's sequential scan return the
    /// same match (or the same miss) on random repositories and queries.
    #[test]
    fn index_agrees_with_scan(
        entries in prop::collection::vec(arb_plan(), 1..8),
        query in arb_plan(),
        pick in any::<prop::sample::Index>(),
    ) {
        use restore_core::{RepoStats, Repository};
        let scan = Repository::new();
        let indexed = Repository::new();
        indexed.set_fingerprint_index(true);
        for (i, plan) in entries.iter().enumerate() {
            // Register prefixes of random plans: realistic sub-job shapes.
            let nodes = op_nodes(plan);
            let n = nodes[pick.index(nodes.len())];
            let prefix = plan.prefix_plan(n, &format!("/r/{i}"));
            let stats = RepoStats {
                input_bytes: 100 + i as u64,
                output_bytes: 10,
                job_time_s: i as f64,
                ..Default::default()
            };
            scan.insert(prefix.clone(), format!("/r/{i}"), stats.clone());
            indexed.insert(prefix, format!("/r/{i}"), stats);
        }
        let a = scan.find_first_match(&query).map(|(id, m)| (id, m.tip));
        let b = indexed.find_first_match(&query).map(|(id, m)| (id, m.tip));
        prop_assert_eq!(a, b);
    }

    /// Signatures are structural: a plan equals its own re-built copy and
    /// differs from a plan with one parameter changed.
    #[test]
    fn signatures_detect_single_param_change(plan in arb_plan()) {
        let mut altered = plan.clone();
        // Find a Filter/Project to tweak; skip plans without one.
        let target = altered.ids().find(|&id| {
            matches!(altered.op(id), PhysicalOp::Project { .. })
        });
        if let Some(t) = target {
            if let PhysicalOp::Project { cols } = altered.op(t).clone() {
                let mut cols = cols;
                cols.push(99);
                altered.node_mut(t).op = PhysicalOp::Project { cols };
                prop_assert_ne!(altered.signature(), plan.signature());
            }
        }
    }
}
