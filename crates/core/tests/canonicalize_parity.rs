//! Lockstep parity for `ReStoreConfig::canonicalize`:
//!
//! 1. **off = today**: a session with the analyzer disabled is
//!    byte-identical — outputs, execution accounting, and the full
//!    state dump — to a session driving the plain `compile` path by
//!    hand, across a mixed workload;
//! 2. **on = same answers**: the analyzer changes which plans are
//!    *equal*, never what they *compute* — outputs byte-match an
//!    analyzer-off twin;
//! 3. **on = paraphrase reuse**: a semantically-equal rewrite of a warm
//!    query is served from the repository with the analyzer on, and
//!    misses with it off — the tentpole behavior, in one assertion.

use restore_core::{ReStore, ReStoreConfig};
use restore_dfs::{Dfs, DfsConfig};
use restore_mapreduce::{ClusterConfig, Engine, EngineConfig};

fn dfs() -> Dfs {
    let dfs = Dfs::new(DfsConfig::small_for_tests());
    dfs.write_all("/data/pv", b"alice\t4\nbob\t7\nalice\t1\ncarol\t9\n").unwrap();
    dfs.write_all("/data/users", b"alice\tkitchener\nbob\ttoronto\n").unwrap();
    dfs
}

fn session(dfs: Dfs, canonicalize: bool) -> ReStore {
    ReStore::new(
        Engine::new(dfs, ClusterConfig::default(), EngineConfig::default()),
        ReStoreConfig { canonicalize, ..Default::default() },
    )
}

/// A small mixed workload (filter pipeline, join + group, rerun).
fn workload() -> Vec<(String, String)> {
    let filter = |out: &str| {
        format!(
            "A = load '/data/pv' as (user, n:int);
             B = filter A by n > 2;
             C = filter B by user == 'alice';
             store C into '{out}';"
        )
    };
    let join = |out: &str| {
        format!(
            "A = load '/data/pv' as (user, revenue:int);
             B = load '/data/users' as (name, city);
             C = join B by name, A by user;
             D = group C by $0;
             E = foreach D generate group, SUM(C.revenue);
             store E into '{out}';"
        )
    };
    vec![
        (filter("/out/f1"), "/wf/f1".to_string()),
        (join("/out/j1"), "/wf/j1".to_string()),
        (filter("/out/f2"), "/wf/f2".to_string()),
        (join("/out/j2"), "/wf/j2".to_string()),
    ]
}

#[test]
fn canonicalize_off_is_byte_identical_to_the_plain_compile_path() {
    let off = session(dfs(), false);
    let manual = session(dfs(), false);
    for (q, wf) in workload() {
        let a = off.execute_query(&q, &wf).unwrap();
        // The twin drives today's pre-analyzer pipeline by hand.
        let compiled = restore_dataflow::compile(&q, &wf).unwrap();
        let b = manual.execute_workflow(compiled).unwrap();
        assert_eq!(a.jobs_skipped, b.jobs_skipped);
        assert_eq!(a.rewrites, b.rewrites);
        assert_eq!(a.final_output, b.final_output);
        assert_eq!(
            off.engine().dfs().read_all(&a.final_output).unwrap(),
            manual.engine().dfs().read_all(&b.final_output).unwrap(),
            "output bytes must match for {q}"
        );
    }
    assert_eq!(
        off.save_state(),
        manual.save_state(),
        "the full session state must be byte-identical in lockstep"
    );
}

#[test]
fn canonicalize_on_preserves_every_output_byte() {
    let on = session(dfs(), true);
    let off = session(dfs(), false);
    for (q, wf) in workload() {
        let a = on.execute_query(&q, &wf).unwrap();
        let b = off.execute_query(&q, &wf).unwrap();
        assert_eq!(a.final_output, b.final_output);
        assert_eq!(
            on.engine().dfs().read_all(&a.final_output).unwrap(),
            off.engine().dfs().read_all(&b.final_output).unwrap(),
            "analyzer must never change computed bytes for {q}"
        );
    }
}

#[test]
fn paraphrase_hits_warm_only_with_the_analyzer_on() {
    let original = "A = load '/data/pv' as (user, n:int);
                    B = filter A by n > 2 and user == 'alice';
                    store B into '/out/p';";
    // Same semantics, three paraphrase classes at once: chained filters
    // instead of one conjunction, swapped legs, literal-first compares.
    let paraphrase = "A = load '/data/pv' as (user, n:int);
                      B = filter A by user == 'alice';
                      C = filter B by 2 < n;
                      store C into '/out/p';";

    let on = session(dfs(), true);
    on.execute_query(original, "/wf/p1").unwrap();
    let warm = on.execute_query(paraphrase, "/wf/p2").unwrap();
    assert_eq!(warm.jobs_skipped, 1, "the paraphrase must be served from the repository");

    let off = session(dfs(), false);
    off.execute_query(original, "/wf/p1").unwrap();
    let cold = off.execute_query(paraphrase, "/wf/p2").unwrap();
    assert_eq!(cold.jobs_skipped, 0, "without the analyzer the paraphrase misses");
}
