//! The RCU repository against the pre-refactor locked design.
//!
//! Two families of guarantees:
//!
//! * **parity** — random insert/evict/match sequences produce identical
//!   (entry id, match tip) results, identical entry order, and identical
//!   `stored_bytes` on the snapshot-based repository and on a
//!   `Mutex`-guarded reimplementation of the old locked sequential scan
//!   (the §3 reference semantics);
//! * **concurrency** — under real multi-threaded insert/evict/match
//!   traffic the snapshot matcher only ever returns entries that exist
//!   in the snapshot it matched against, the scan and indexed
//!   strategies agree on every snapshot, matching publishes nothing,
//!   and `note_use` accounting is exact under 8-thread contention.

use proptest::prelude::*;
use restore_core::matcher::{pairwise_plan_traversal, subsumes, PlanMatch};
use restore_core::{RepoStats, Repository};
use restore_dataflow::expr::Expr;
use restore_dataflow::physical::{PhysicalOp, PhysicalPlan};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};

/// A faithful reimplementation of the pre-refactor locked repository:
/// ordered `Vec`, sequential scan, O(n) lookups, per-call
/// `stored_bytes` sum (concurrent callers would serialize on one big
/// lock around the whole struct). The proptest drives it in lockstep
/// with the RCU repository and demands byte-identical behavior.
#[derive(Default)]
struct LockedRepo {
    entries: Vec<(u64, PhysicalPlan, u64, String, RepoStats)>,
    next_id: u64,
}

impl LockedRepo {
    fn insert(&mut self, plan: PhysicalPlan, path: String, stats: RepoStats) -> u64 {
        let signature = plan.signature();
        if let Some(e) = self.entries.iter_mut().find(|e| e.2 == signature) {
            let (uses, last) = (e.4.use_count, e.4.last_used);
            e.4 = stats;
            e.4.use_count = uses;
            e.4.last_used = last;
            return e.0;
        }
        let id = self.next_id;
        self.next_id += 1;
        // §3 ordering: subsuming plans first, then (ratio, time) desc.
        let mut lo = 0usize;
        let mut hi = self.entries.len();
        for (i, e) in self.entries.iter().enumerate() {
            let e_subsumes_new = subsumes(&e.1, &plan);
            let new_subsumes_e = subsumes(&plan, &e.1);
            if e_subsumes_new && !new_subsumes_e {
                lo = lo.max(i + 1);
            } else if new_subsumes_e && !e_subsumes_new {
                hi = hi.min(i);
            }
        }
        if hi < lo {
            hi = lo;
        }
        let score = |s: &RepoStats| (s.reduction_ratio(), s.job_time_s);
        let new_score = score(&stats);
        let mut pos = lo;
        while pos < hi {
            if score(&self.entries[pos].4) < new_score {
                break;
            }
            pos += 1;
        }
        self.entries.insert(pos, (id, plan, signature, path, stats));
        id
    }

    fn evict(&mut self, id: u64) -> bool {
        match self.entries.iter().position(|e| e.0 == id) {
            Some(pos) => {
                self.entries.remove(pos);
                true
            }
            None => false,
        }
    }

    fn find_first_match(&self, input: &PhysicalPlan) -> Option<(u64, PlanMatch)> {
        self.entries.iter().find_map(|e| pairwise_plan_traversal(&e.1, input).map(|m| (e.0, m)))
    }

    fn note_use(&mut self, id: u64, tick: u64) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == id) {
            e.4.use_count += 1;
            e.4.last_used = e.4.last_used.max(tick);
        }
    }

    fn stored_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.4.output_bytes).sum()
    }
}

/// Small pipeline plans over a handful of load paths so that random
/// sequences produce genuine matches, subsumption chains, and duplicate
/// signatures.
fn plan_for(seed: u8, depth: u8) -> PhysicalPlan {
    let mut p = PhysicalPlan::new();
    let path = ["/data/a", "/data/b", "/data/c"][(seed % 3) as usize];
    let mut cur = p.add(PhysicalOp::Load { path: path.into() }, vec![]);
    for d in 0..(depth % 4) {
        cur = match (seed.wrapping_add(d)) % 3 {
            0 => p.add(PhysicalOp::Project { cols: vec![0, (d % 3) as usize] }, vec![cur]),
            1 => p.add(
                PhysicalOp::Filter { pred: Expr::col_eq((d % 2) as usize, seed as i64) },
                vec![cur],
            ),
            _ => p.add(PhysicalOp::Group { keys: vec![(d % 2) as usize] }, vec![cur]),
        };
    }
    p.add(PhysicalOp::Store { path: format!("/store/{seed}-{depth}") }, vec![cur]);
    p
}

/// A longer query that embeds `plan_for(seed, depth)` as a prefix.
fn query_for(seed: u8, depth: u8) -> PhysicalPlan {
    let mut p = plan_for(seed, depth);
    let tip = p.stores()[0];
    let before = p.inputs(tip)[0];
    let g = p.add(PhysicalOp::Distinct, vec![before]);
    p.add(PhysicalOp::Store { path: "/q".into() }, vec![g]);
    p
}

#[derive(Debug, Clone)]
enum Op {
    Insert { seed: u8, depth: u8, out_bytes: u64, time: u8 },
    Evict { pick: usize },
    Match { seed: u8, depth: u8 },
    NoteUse { pick: usize, tick: u64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u8>(), 1u64..1000, any::<u8>())
            .prop_map(|(seed, depth, out_bytes, time)| Op::Insert { seed, depth, out_bytes, time }),
        (0usize..32).prop_map(|pick| Op::Evict { pick }),
        (any::<u8>(), any::<u8>()).prop_map(|(seed, depth)| Op::Match { seed, depth }),
        (0usize..32, 1u64..100).prop_map(|(pick, tick)| Op::NoteUse { pick, tick }),
    ]
}

proptest! {
    /// Random insert/evict/match/note_use sequences: the snapshot-based
    /// matcher (both strategies) returns identical (entry id, match
    /// tip) results to the locked sequential scan, and entry order,
    /// statistics, and `stored_bytes` stay in lockstep throughout.
    #[test]
    fn snapshot_repo_matches_locked_reference(ops in prop::collection::vec(arb_op(), 1..60)) {
        let repo = Repository::new();
        let mut reference = LockedRepo::default();
        let mut live_ids: Vec<u64> = Vec::new();
        for op in ops {
            match op {
                Op::Insert { seed, depth, out_bytes, time } => {
                    let stats = RepoStats {
                        input_bytes: 4096,
                        output_bytes: out_bytes,
                        job_time_s: time as f64,
                        ..Default::default()
                    };
                    let plan = plan_for(seed, depth);
                    let path = format!("/r/{seed}-{depth}");
                    let a = repo.insert(plan.clone(), &path, stats.clone());
                    let b = reference.insert(plan, path, stats);
                    // Same id under both Inserted and Duplicate: the RCU
                    // repo burns ids on duplicates, the reference does
                    // not, so compare through the reference's id *only*
                    // for presence bookkeeping.
                    if let restore_core::repository::InsertOutcome::Inserted(id) = a {
                        live_ids.push(id);
                        prop_assert_eq!(
                            repo.snapshot().entries().iter().position(|e| e.id == id),
                            reference.entries.iter().position(|e| e.0 == b),
                            "insert landed at different positions"
                        );
                    }
                }
                Op::Evict { pick } => {
                    if live_ids.is_empty() { continue; }
                    let id = live_ids[pick % live_ids.len()];
                    let ref_id = id_map(&repo, &reference, id);
                    let a = repo.evict(id).is_some();
                    let b = match ref_id { Some(r) => reference.evict(r), None => false };
                    prop_assert_eq!(a, b, "evict disagreed for id {}", id);
                    live_ids.retain(|&x| x != id);
                }
                Op::Match { seed, depth } => {
                    let q = query_for(seed, depth);
                    let snap = repo.snapshot();
                    let got = snap.find_first_match(&q);
                    let want = reference.find_first_match(&q);
                    match (&got, &want) {
                        (None, None) => {}
                        (Some((id, m)), Some((rid, rm))) => {
                            prop_assert_eq!(m.tip, rm.tip, "match tips differ");
                            prop_assert_eq!(
                                id_map(&repo, &reference, *id), Some(*rid),
                                "matched different entries"
                            );
                        }
                        _ => prop_assert!(false, "hit/miss disagreement: {:?} vs {:?}", got.is_some(), want.is_some()),
                    }
                    // The indexed strategy agrees with the scan on the
                    // same snapshot, entry for entry, tip for tip.
                    let none = HashSet::new();
                    prop_assert_eq!(
                        snap.find_first_match_scan(&q, &none).map(|(id, m)| (id, m.tip)),
                        snap.find_first_match_indexed(&q, &none).map(|(id, m)| (id, m.tip))
                    );
                }
                Op::NoteUse { pick, tick } => {
                    if live_ids.is_empty() { continue; }
                    let id = live_ids[pick % live_ids.len()];
                    if let Some(rid) = id_map(&repo, &reference, id) {
                        reference.note_use(rid, tick);
                    }
                    repo.note_use(id, tick);
                }
            }
            // Full-state lockstep after every op.
            let snap = repo.snapshot();
            prop_assert_eq!(snap.len(), reference.entries.len());
            prop_assert_eq!(snap.stored_bytes(), reference.stored_bytes());
            for (e, r) in snap.entries().iter().zip(&reference.entries) {
                prop_assert_eq!(e.signature, r.2, "order diverged");
                prop_assert_eq!(&e.output_path, &r.3);
                prop_assert_eq!(e.stats(), r.4.clone(), "stats diverged");
            }
        }
    }
}

/// Map an RCU-repo entry id to the reference entry id by position (ids
/// diverge when duplicates burn ids on one side only).
fn id_map(repo: &Repository, reference: &LockedRepo, id: u64) -> Option<u64> {
    let snap = repo.snapshot();
    let pos = snap.entries().iter().position(|e| e.id == id)?;
    reference.entries.get(pos).map(|e| e.0)
}

/// Concurrency: 4 writer threads churn inserts/evictions while 4 reader
/// threads match. Every match must name an entry present in the
/// snapshot it was found in, the two match strategies must agree per
/// snapshot, and matching must publish nothing.
#[test]
fn concurrent_insert_evict_match_is_coherent() {
    let repo = Repository::new();
    repo.set_fingerprint_index(true);
    // Pre-seed so matches happen from the start.
    for s in 0..8u8 {
        let stats = RepoStats {
            input_bytes: 4096,
            output_bytes: 64 + s as u64,
            job_time_s: s as f64,
            ..Default::default()
        };
        repo.insert(plan_for(s, s % 4), format!("/seed/{s}"), stats);
    }
    let stop = AtomicU64::new(0);
    let matches_seen = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for w in 0..4u8 {
            let repo = &repo;
            let stop = &stop;
            scope.spawn(move || {
                for i in 0..400u32 {
                    let seed = (w as u32 * 31 + i) as u8;
                    let stats = RepoStats {
                        input_bytes: 4096,
                        output_bytes: 1 + (i as u64 % 100),
                        job_time_s: (i % 13) as f64,
                        ..Default::default()
                    };
                    match repo.insert(plan_for(seed, (i % 4) as u8), format!("/w{w}/{i}"), stats) {
                        restore_core::repository::InsertOutcome::Inserted(id) if i % 3 == 0 => {
                            repo.evict(id);
                        }
                        _ => {}
                    }
                }
                stop.fetch_add(1, Ordering::SeqCst);
            });
        }
        for r in 0..4u8 {
            let repo = &repo;
            let stop = &stop;
            let matches_seen = &matches_seen;
            scope.spawn(move || {
                let mut i = 0u32;
                while stop.load(Ordering::SeqCst) < 4 {
                    i += 1;
                    let q = query_for((r as u32 * 17 + i) as u8, (i % 4) as u8);
                    let snap = repo.snapshot();
                    if let Some((id, m)) = snap.find_first_match(&q) {
                        // The match names a live entry of *this* snapshot…
                        let e = snap.get(id).expect("matched entry must exist in its snapshot");
                        // …that genuinely matches (re-verify the traversal).
                        let again = pairwise_plan_traversal(&e.plan, &q)
                            .expect("matched entry must verify");
                        assert_eq!(again.tip, m.tip);
                        matches_seen.fetch_add(1, Ordering::SeqCst);
                        repo.note_use(id, i as u64);
                    }
                    // Scan and index agree on this snapshot even while
                    // writers churn.
                    let none = HashSet::new();
                    assert_eq!(
                        snap.find_first_match_scan(&q, &none).map(|(id, m)| (id, m.tip)),
                        snap.find_first_match_indexed(&q, &none).map(|(id, m)| (id, m.tip)),
                    );
                }
            });
        }
    });
    assert!(matches_seen.load(Ordering::SeqCst) > 0, "stress must exercise real matches");
}

/// The match path publishes no snapshot: matching plus reuse accounting
/// leave the publish counter untouched (zero write-side acquisitions).
#[test]
fn match_path_is_write_free() {
    let repo = Repository::new();
    let restore_core::repository::InsertOutcome::Inserted(id) = repo.insert(
        plan_for(1, 2),
        "/r/1",
        RepoStats { input_bytes: 4096, output_bytes: 64, ..Default::default() },
    ) else {
        panic!()
    };
    let publishes = repo.publish_count();
    let q = query_for(1, 2);
    for t in 0..1000u64 {
        let snap = repo.snapshot();
        let (found, _) = snap.find_first_match(&q).expect("warm match");
        assert_eq!(found, id);
        repo.note_use(found, t);
    }
    assert_eq!(repo.publish_count(), publishes, "matching must not publish");
    assert_eq!(repo.get(id).unwrap().use_count(), 1000);
}

proptest! {
    /// Sharded-vs-single-shard lockstep: identical op sequences drive a
    /// classic single-shard repository and an 8-shard one. Ids, lengths,
    /// footprints, the full id→entry mapping, and every match result
    /// (hit/miss, winning entry, match tip) must agree after every op —
    /// striping is a physical layout change, never a semantic one.
    #[test]
    fn sharded_repo_stays_in_lockstep_with_single_shard(ops in prop::collection::vec(arb_op(), 1..60)) {
        let single = Repository::new();
        let sharded = Repository::with_shards(8);
        // Index only the sharded side: the per-shard indexed probe must
        // still agree with the single-shard sequential scan.
        sharded.set_fingerprint_index(true);
        let mut live_ids: Vec<u64> = Vec::new();
        for op in ops {
            match op {
                Op::Insert { seed, depth, out_bytes, time } => {
                    let stats = RepoStats {
                        input_bytes: 4096,
                        output_bytes: out_bytes,
                        job_time_s: time as f64,
                        ..Default::default()
                    };
                    let plan = plan_for(seed, depth);
                    let path = format!("/r/{seed}-{depth}");
                    let a = single.insert(plan.clone(), &path, stats.clone());
                    let b = sharded.insert(plan, &path, stats);
                    prop_assert_eq!(a, b, "insert outcomes diverged");
                    if let restore_core::repository::InsertOutcome::Inserted(id) = a {
                        live_ids.push(id);
                    }
                }
                Op::Evict { pick } => {
                    if live_ids.is_empty() { continue; }
                    let id = live_ids[pick % live_ids.len()];
                    let a = single.evict(id);
                    let b = sharded.evict(id);
                    prop_assert_eq!(a.is_some(), b.is_some(), "evict disagreed for id {}", id);
                    if let (Some(ea), Some(eb)) = (a, b) {
                        prop_assert_eq!(&ea.output_path, &eb.output_path);
                    }
                    live_ids.retain(|&x| x != id);
                }
                Op::Match { seed, depth } => {
                    let q = query_for(seed, depth);
                    let a = single.snapshot().find_first_match(&q);
                    let b = sharded.view().find_first_match(&q);
                    match (a, b) {
                        (None, None) => {}
                        (Some((ida, ma)), Some((idb, mb))) => {
                            prop_assert_eq!(ida, idb, "different winning entries");
                            prop_assert_eq!(ma.tip, mb.tip, "match tips differ");
                        }
                        (a, b) => prop_assert!(
                            false,
                            "hit/miss disagreement: single {:?} vs sharded {:?}",
                            a.is_some(),
                            b.is_some()
                        ),
                    }
                }
                Op::NoteUse { pick, tick } => {
                    if live_ids.is_empty() { continue; }
                    let id = live_ids[pick % live_ids.len()];
                    single.note_use(id, tick);
                    sharded.note_use(id, tick);
                }
            }
            // Full-state lockstep after every op: same ids, same entry
            // payloads, same footprint. (Global *order* is shard-
            // concatenated on the sharded side, so compare by id.)
            prop_assert_eq!(single.len(), sharded.len());
            prop_assert_eq!(single.stored_bytes(), sharded.stored_bytes());
            let snap = single.snapshot();
            let view = sharded.view();
            let mut a: Vec<_> = snap.entries().iter().collect();
            let mut b0 = view.entries();
            let mut b: Vec<_> = b0.iter_mut().collect();
            a.sort_by_key(|e| e.id);
            b.sort_by_key(|e| e.id);
            for (ea, eb) in a.iter().zip(&b) {
                prop_assert_eq!(ea.id, eb.id, "id sets diverged");
                prop_assert_eq!(ea.signature, eb.signature);
                prop_assert_eq!(&ea.output_path, &eb.output_path);
                prop_assert_eq!(ea.stats(), eb.stats(), "stats diverged");
                prop_assert_eq!(ea.use_count(), eb.use_count());
            }
        }
    }
}

/// Sharded coherence under real contention: 8 writer threads churn
/// inserts/evictions into an 8-shard repository while readers match
/// through per-shard views. Every match must name a live entry of the
/// view it was found in and re-verify, and the per-shard indexed probe
/// must agree with the cross-shard scan on every view.
#[test]
fn sharded_concurrent_insert_evict_match_is_coherent() {
    let repo = Repository::with_shards(8);
    repo.set_fingerprint_index(true);
    for s in 0..8u8 {
        let stats = RepoStats {
            input_bytes: 4096,
            output_bytes: 64 + s as u64,
            job_time_s: s as f64,
            ..Default::default()
        };
        repo.insert(plan_for(s, s % 4), format!("/seed/{s}"), stats);
    }
    let stop = AtomicU64::new(0);
    let matches_seen = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for w in 0..8u8 {
            let repo = &repo;
            let stop = &stop;
            scope.spawn(move || {
                for i in 0..400u32 {
                    let seed = (w as u32 * 29 + i) as u8;
                    let stats = RepoStats {
                        input_bytes: 4096,
                        output_bytes: 1 + (i as u64 % 100),
                        job_time_s: (i % 13) as f64,
                        ..Default::default()
                    };
                    match repo.insert(plan_for(seed, (i % 4) as u8), format!("/w{w}/{i}"), stats) {
                        restore_core::repository::InsertOutcome::Inserted(id) if i % 3 == 0 => {
                            repo.evict(id);
                        }
                        _ => {}
                    }
                }
                stop.fetch_add(1, Ordering::SeqCst);
            });
        }
        for r in 0..4u8 {
            let repo = &repo;
            let stop = &stop;
            let matches_seen = &matches_seen;
            scope.spawn(move || {
                let mut i = 0u32;
                while stop.load(Ordering::SeqCst) < 8 {
                    i += 1;
                    let q = query_for((r as u32 * 17 + i) as u8, (i % 4) as u8);
                    let view = repo.view();
                    if let Some((id, m)) = view.find_first_match(&q) {
                        let e = view.get(id).expect("matched entry must exist in its view");
                        let again = pairwise_plan_traversal(&e.plan, &q)
                            .expect("matched entry must verify");
                        assert_eq!(again.tip, m.tip);
                        matches_seen.fetch_add(1, Ordering::SeqCst);
                        repo.note_use(id, i as u64);
                    }
                    let none = HashSet::new();
                    assert_eq!(
                        view.find_first_match_scan(&q, &none).map(|(id, m)| (id, m.tip)),
                        view.find_first_match_indexed(&q, &none).map(|(id, m)| (id, m.tip)),
                    );
                }
            });
        }
    });
    assert!(matches_seen.load(Ordering::SeqCst) > 0, "stress must exercise real matches");
}

/// `note_use` accounting is exact under 8-thread contention, including
/// concurrent duplicate-refresh inserts (which replace the entry but
/// share its counters).
#[test]
fn note_use_totals_are_exact_under_contention() {
    let repo = Repository::new();
    let mut ids = Vec::new();
    for s in 0..4u8 {
        let stats = RepoStats {
            input_bytes: 4096,
            output_bytes: 100,
            job_time_s: 1.0,
            ..Default::default()
        };
        match repo.insert(plan_for(s, 3), format!("/r/{s}"), stats) {
            restore_core::repository::InsertOutcome::Inserted(id) => ids.push(id),
            restore_core::repository::InsertOutcome::Duplicate(_) => unreachable!(),
        }
    }
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 5_000;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let repo = &repo;
            let ids = &ids;
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    // Spread across entries; ticks strictly positive.
                    let id = ids[((t + i) % ids.len() as u64) as usize];
                    repo.note_use(id, t * PER_THREAD + i + 1);
                }
            });
        }
        // A ninth thread refreshes duplicates concurrently: the refresh
        // swaps the entry object but must keep the shared counters.
        let repo = &repo;
        scope.spawn(move || {
            for round in 0..200u64 {
                for s in 0..4u8 {
                    let stats = RepoStats {
                        input_bytes: 4096,
                        output_bytes: 100 + round,
                        job_time_s: 1.0,
                        ..Default::default()
                    };
                    let out = repo.insert(plan_for(s, 3), format!("/r/{s}"), stats);
                    assert!(matches!(out, restore_core::repository::InsertOutcome::Duplicate(_)));
                }
            }
        });
    });
    let total: u64 = repo.snapshot().entries().iter().map(|e| e.use_count()).sum();
    assert_eq!(total, THREADS * PER_THREAD, "no increment may be lost");
    let max_last: u64 = repo.snapshot().entries().iter().map(|e| e.last_used()).max().unwrap();
    assert_eq!(max_last, THREADS * PER_THREAD, "last_used keeps the max tick");
}
