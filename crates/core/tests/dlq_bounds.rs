//! Dead-letter queue bounds: a tenant's `dlq_max_entries` cap evicts
//! oldest-first at admission, `dlq_max_age_ticks` expires entries whose
//! logical age exceeds the bound, every eviction is journaled as an ack
//! (so recovery converges on the bounded queue), and the default policy
//! (both knobs 0) keeps the unbounded behavior of earlier releases.

use restore_core::{FailurePolicy, JournalConfig, ReStore, ReStoreConfig};
use restore_dfs::{Dfs, DfsConfig};
use restore_mapreduce::{ClusterConfig, Engine, EngineConfig};

fn dfs() -> Dfs {
    let dfs = Dfs::new(DfsConfig::small_for_tests());
    dfs.write_all("/data/pv", b"alice\t4\nbob\t7\nalice\t1\ncarol\t9\n").unwrap();
    dfs
}

fn session() -> ReStore {
    ReStore::new(
        Engine::new(dfs(), ClusterConfig::default(), EngineConfig::default()),
        ReStoreConfig::default(),
    )
}

fn query(out: &str) -> String {
    format!(
        "A = load '/data/pv' as (user, n:int);
         G = group A by user;
         R = foreach G generate group, SUM(A.n);
         store R into '{out}';"
    )
}

fn with_dlq_bounds(max_entries: usize, max_age_ticks: u64) -> ReStoreConfig {
    ReStoreConfig {
        failure: FailurePolicy {
            dlq_max_entries: max_entries,
            dlq_max_age_ticks: max_age_ticks,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn park(restore: &ReStore, tenant: Option<&str>, tag: &str) {
    let wf = restore_dataflow::compile(&query(&format!("/out/{tag}")), "/wf/park").unwrap();
    restore.dlq_put_as(tenant, wf, &format!("boom {tag}"), 1);
}

#[test]
fn size_cap_evicts_oldest_first() {
    let restore = session();
    restore.set_config_as(Some("capped"), with_dlq_bounds(2, 0));
    for tag in ["a", "b", "c", "d"] {
        park(&restore, Some("capped"), tag);
    }
    let q = restore.dlq_entries_as(Some("capped"));
    assert_eq!(q.len(), 2, "cap of 2 holds");
    assert_eq!(
        q.iter().map(|e| e.error.as_str()).collect::<Vec<_>>(),
        vec!["boom c", "boom d"],
        "the two newest entries survive, in id order"
    );
    // Ids keep climbing past evicted entries — monotonicity survives
    // the cap.
    assert!(q[0].id < q[1].id);
}

#[test]
fn age_bound_expires_stale_entries_at_admission() {
    let restore = session();
    restore.set_config(with_dlq_bounds(0, 3));
    park(&restore, None, "old");
    // Advance the logical clock past the age bound: each executed
    // workflow is one tick.
    for i in 0..5 {
        restore.execute_query(&query(&format!("/out/tick{i}")), &format!("/wf/tick{i}")).unwrap();
    }
    park(&restore, None, "fresh");
    let q = restore.dlq_entries_as(None);
    assert_eq!(
        q.iter().map(|e| e.error.as_str()).collect::<Vec<_>>(),
        vec!["boom fresh"],
        "the stale entry expired when the fresh one was admitted"
    );
}

#[test]
fn default_policy_stays_unbounded() {
    let restore = session();
    for i in 0..32 {
        park(&restore, None, &i.to_string());
    }
    assert_eq!(restore.dlq_depth_as(None), 32, "0/0 means no cap, no expiry");
}

/// Evictions are journaled as acks: a session recovered from base +
/// journal serves exactly the bounded queue, never a resurrected
/// evictee.
#[test]
fn bounded_queue_survives_recovery_exactly() {
    let restore = session();
    restore.enable_journal(JournalConfig::default());
    let base = restore.save_state();
    restore.set_config_as(Some("capped"), with_dlq_bounds(2, 0));
    for tag in ["a", "b", "c", "d", "e"] {
        park(&restore, Some("capped"), tag);
    }
    let live = restore.dlq_entries_as(Some("capped"));
    assert_eq!(live.len(), 2);
    let segments = restore.save_state_delta().unwrap();

    let recovered = session();
    recovered.recover(&base, &segments).unwrap();
    assert_eq!(
        recovered.dlq_entries_as(Some("capped")),
        live,
        "recovery replays puts and eviction acks to the same bounded queue"
    );
}
