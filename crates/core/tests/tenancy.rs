//! Per-tenant namespace isolation in the driver: matching, candidate
//! materialization, statistics, and eviction sweeps are confined to the
//! submitting tenant's space.

use restore_core::{ReStore, ReStoreConfig, SelectionPolicy};
use restore_dfs::{Dfs, DfsConfig};
use restore_mapreduce::{ClusterConfig, Engine, EngineConfig};

fn engine() -> Engine {
    let dfs = Dfs::new(DfsConfig::small_for_tests());
    dfs.write_all("/data/pv", b"alice\t4\nbob\t7\nalice\t1\ncarol\t9\n").unwrap();
    Engine::new(dfs, ClusterConfig::default(), EngineConfig::default())
}

fn sum_query(out: &str) -> String {
    format!(
        "A = load '/data/pv' as (user, n:int);
         G = group A by user;
         R = foreach G generate group, SUM(A.n);
         store R into '{out}';"
    )
}

#[test]
fn tenants_never_reuse_each_others_entries() {
    let rs = ReStore::new(engine(), ReStoreConfig::default());

    // Tenant "ana" runs the query cold.
    let a1 = rs.execute_query_as(Some("ana"), &sum_query("/out/a1"), "/wf/a1").unwrap();
    assert_eq!(a1.jobs_skipped, 0);

    // Tenant "bo" submits the identical query: no cross-tenant reuse, so
    // it also runs cold.
    let b1 = rs.execute_query_as(Some("bo"), &sum_query("/out/b1"), "/wf/b1").unwrap();
    assert_eq!(b1.jobs_skipped, 0, "tenant bo must not see ana's entries");
    assert_eq!(b1.rewrites.len(), 0);

    // Within a tenant, reuse works as usual.
    let a2 = rs.execute_query_as(Some("ana"), &sum_query("/out/a2"), "/wf/a2").unwrap();
    assert_eq!(a2.jobs_skipped, 1, "ana's rerun is answered from ana's repository");

    // The default namespace is untouched by tenant traffic.
    assert_eq!(rs.stats().repository_entries, 0);
    assert!(rs.stats_as(Some("ana")).repository_entries > 0);
    assert!(rs.stats_as(Some("bo")).repository_entries > 0);
    assert_eq!(rs.tenant_ids(), vec!["ana".to_string(), "bo".to_string()]);
}

#[test]
fn tenant_candidate_outputs_live_under_tenant_prefix() {
    let rs = ReStore::new(engine(), ReStoreConfig::default());
    rs.execute_query_as(Some("ana"), &sum_query("/out/ap"), "/wf/ap").unwrap();
    rs.with_repository_as(Some("ana"), |repo| {
        for e in repo.entries() {
            if e.output_path.starts_with("/restore/") {
                assert!(
                    e.output_path.starts_with("/restore/ana/"),
                    "candidate {} must be keyed under the tenant prefix",
                    e.output_path
                );
            }
        }
    });
}

#[test]
fn overwriting_a_registered_path_invalidates_stale_entries() {
    let rs = ReStore::new(engine(), ReStoreConfig::default());

    // ana's query registers its final output at /out/shared.
    rs.execute_query_as(Some("ana"), &sum_query("/out/shared"), "/wf/a").unwrap();
    assert!(rs.serves_path("/out/shared"));
    let ana_bytes = rs.engine().dfs().read_all("/out/shared").unwrap();

    // bo runs a *different* query storing to the same path, overwriting
    // ana's bytes on the DFS.
    let other = "A = load '/data/pv' as (user, n:int);
                 B = filter A by n > 4;
                 G = group B by user;
                 R = foreach G generate group, COUNT(B);
                 store R into '/out/shared';";
    rs.execute_query_as(Some("bo"), other, "/wf/b").unwrap();
    let bo_bytes = rs.engine().dfs().read_all("/out/shared").unwrap();
    assert_ne!(ana_bytes, bo_bytes, "bo really overwrote the file");

    // ana's stale entry must be gone: rerunning her query re-executes
    // instead of serving bo's bytes from the repository.
    assert!(
        !rs.with_repository_as(Some("ana"), |repo| repo
            .entries()
            .iter()
            .any(|e| e.output_path == "/out/shared")),
        "stale entry pointing at overwritten bytes must be evicted"
    );
    let rerun = rs.execute_query_as(Some("ana"), &sum_query("/out/a2"), "/wf/a2").unwrap();
    let rerun_bytes = rs.engine().dfs().read_all(&rerun.final_output).unwrap();
    assert_eq!(rerun_bytes, ana_bytes, "ana gets her own answer, not bo's");
}

#[test]
fn tenant_sweep_never_evicts_other_tenants() {
    let config = ReStoreConfig {
        selection: SelectionPolicy { eviction_window: Some(2), ..Default::default() },
        ..Default::default()
    };
    let rs = ReStore::new(engine(), config);

    // Tick 1: bo stores entries, then goes idle.
    rs.execute_query_as(Some("bo"), &sum_query("/out/b"), "/wf/b").unwrap();
    let bo_entries = rs.stats_as(Some("bo")).repository_entries;
    assert!(bo_entries > 0);

    // Ticks 2..=8: ana hammers the system; each of her queries runs an
    // eviction sweep far past bo's last activity — in ana's space only.
    for i in 2..=8u32 {
        rs.execute_query_as(Some("ana"), &sum_query(&format!("/out/a{i}")), &format!("/wf/a{i}"))
            .unwrap();
    }

    // bo's entries (created at tick 1, idle for 7 ticks, well past the
    // window) survive untouched, files included.
    assert_eq!(rs.stats_as(Some("bo")).repository_entries, bo_entries);
    rs.with_repository_as(Some("bo"), |repo| {
        for e in repo.entries() {
            assert!(
                rs.engine().dfs().exists(&e.output_path),
                "ana's sweep must not delete bo's output {}",
                e.output_path
            );
        }
    });

    // bo's own next query does sweep bo's stale entries — isolation, not
    // immortality.
    rs.execute_query_as(Some("bo"), &sum_query("/out/b2"), "/wf/b2").unwrap();
    let after = rs.stats_as(Some("bo")).repository_entries;
    assert!(after > 0, "fresh entries from the new query are present");
}
