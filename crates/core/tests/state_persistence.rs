//! Durable sessions: the `restore-state v2` format, v1 backward
//! compatibility, typed parse errors, and per-tenant policy overrides.

use restore_common::Error;
use restore_core::{Heuristic, ReStore, ReStoreConfig, SelectionPolicy};
use restore_dfs::{Dfs, DfsConfig};
use restore_mapreduce::{ClusterConfig, Engine, EngineConfig};

fn dfs() -> Dfs {
    let dfs = Dfs::new(DfsConfig::small_for_tests());
    dfs.write_all("/data/pv", b"alice\t4\nbob\t7\nalice\t1\ncarol\t9\n").unwrap();
    dfs.write_all("/data/users", b"alice\tkitchener\nbob\ttoronto\n").unwrap();
    dfs
}

fn engine_over(dfs: Dfs) -> Engine {
    Engine::new(dfs, ClusterConfig::default(), EngineConfig::default())
}

fn sum_query(out: &str) -> String {
    format!(
        "A = load '/data/pv' as (user, n:int);
         G = group A by user;
         R = foreach G generate group, SUM(A.n);
         store R into '{out}';"
    )
}

fn join_query(out: &str) -> String {
    format!(
        "A = load '/data/pv' as (user, revenue:int);
         B = load '/data/users' as (name, city);
         C = join B by name, A by user;
         D = group C by $0;
         E = foreach D generate group, SUM(C.revenue);
         store E into '{out}';"
    )
}

// ---- v1 backward compatibility ----

/// A literal state file in the pre-v2 wire format (what `save_state`
/// produced before tenant serialization existed). It must keep loading
/// — into the default namespace — forever.
const V1_FIXTURE: &str = r#"restore-state v1
tick 7
cand 3
--provenance--
path "/repo/b"
  0 load "/data/pv"
  1 project 0,2 <- 0
  2 store "/repo/b" <- 1
end
--repository--
entry 0 "/repo/b" 100 10 5 1.5 2.5 3 6 1
input "/data/pv" 0
plan
  0 load "/data/pv"
  1 project 0,2 <- 0
  2 store "/repo/b" <- 1
end
"#;

#[test]
fn v1_fixture_from_before_this_pr_still_loads() {
    let d = dfs();
    d.write_all("/repo/b", b"stored bytes").unwrap();
    let rs = ReStore::new(engine_over(d), ReStoreConfig::default());
    rs.load_state(V1_FIXTURE).unwrap();

    // Counters and the default namespace are restored.
    let stats = rs.stats();
    assert_eq!(stats.queries_executed, 7);
    assert_eq!(stats.repository_entries, 1);
    assert_eq!(stats.provenance_entries, 1);
    rs.with_repository_as(None, |repo| {
        let e = &repo.entries()[0];
        assert_eq!(e.output_path, "/repo/b");
        assert_eq!(e.stats().use_count, 3);
        assert_eq!(e.stats().input_files, vec![("/data/pv".to_string(), 0)]);
    });
    rs.with_provenance_as(None, |prov| assert!(prov.contains("/repo/b")));

    // A v1 document can be re-emitted byte-identically via the legacy
    // writer (the round-trip property, v1 flavour).
    assert_eq!(rs.save_state_v1(), V1_FIXTURE);
}

#[test]
fn v1_state_load_preserves_warm_hits() {
    let shared = dfs();
    let rs = ReStore::new(engine_over(shared.clone()), ReStoreConfig::default());
    rs.execute_query(&sum_query("/out/cold"), "/wf/cold").unwrap();
    let v1 = rs.save_state_v1();
    drop(rs);

    // "Restart": a fresh session over the same DFS resumes from v1 and
    // answers the rerun from the repository.
    let resumed = ReStore::new(engine_over(shared), ReStoreConfig::default());
    resumed.load_state(&v1).unwrap();
    let warm = resumed.execute_query(&sum_query("/out/warm"), "/wf/warm").unwrap();
    assert_eq!(warm.jobs_skipped, 1, "v1 state must keep serving warm hits");
}

#[test]
fn v1_load_leaves_tenant_state_alone() {
    let rs = ReStore::new(engine_over(dfs()), ReStoreConfig::default());
    rs.execute_query_as(Some("ana"), &sum_query("/out/a"), "/wf/a").unwrap();
    let ana_entries = rs.stats_as(Some("ana")).repository_entries;
    assert!(ana_entries > 0);
    rs.load_state(V1_FIXTURE).unwrap();
    // The v1 document predates tenants: it replaces only the default
    // namespace.
    assert_eq!(rs.stats_as(Some("ana")).repository_entries, ana_entries);
    assert_eq!(rs.stats().repository_entries, 1);
}

// ---- v2 round trip and restart parity ----

#[test]
fn v2_save_load_save_is_byte_identical() {
    let shared = dfs();
    let rs = ReStore::new(engine_over(shared.clone()), ReStoreConfig::default());
    rs.set_config_as(
        Some("tuned"),
        ReStoreConfig { heuristic: Heuristic::Conservative, ..Default::default() },
    );
    rs.execute_query(&sum_query("/out/d"), "/wf/d").unwrap();
    rs.execute_query_as(Some("tuned"), &join_query("/out/t"), "/wf/t").unwrap();
    rs.execute_query_as(Some("plain"), &sum_query("/out/p"), "/wf/p").unwrap();

    let s1 = rs.save_state();
    let resumed = ReStore::new(engine_over(shared.clone()), ReStoreConfig::default());
    resumed.load_state(&s1).unwrap();
    let s2 = resumed.save_state();
    assert_eq!(s1, s2, "save -> load -> save must be byte-identical");

    // And a second generation, for good measure.
    let third = ReStore::new(engine_over(shared), ReStoreConfig::default());
    third.load_state(&s2).unwrap();
    assert_eq!(third.save_state(), s2);
}

#[test]
fn v2_restores_tenant_namespaces_configs_and_counters() {
    let shared = dfs();
    let rs = ReStore::new(engine_over(shared.clone()), ReStoreConfig::default());
    let tuned = ReStoreConfig {
        heuristic: Heuristic::Conservative,
        selection: SelectionPolicy { eviction_window: Some(50), ..Default::default() },
        ..Default::default()
    };
    rs.set_config_as(Some("tuned"), tuned.clone());
    rs.execute_query_as(Some("tuned"), &sum_query("/out/t"), "/wf/t").unwrap();
    rs.execute_query_as(Some("other"), &join_query("/out/o"), "/wf/o").unwrap();
    rs.execute_query(&sum_query("/out/d"), "/wf/d").unwrap();
    let state = rs.save_state();
    let want_tuned = rs.stats_as(Some("tuned"));
    let want_other = rs.stats_as(Some("other"));
    let want_default = rs.stats();
    drop(rs);

    let resumed = ReStore::new(engine_over(shared), ReStoreConfig::default());
    resumed.load_state(&state).unwrap();
    assert_eq!(resumed.stats_as(Some("tuned")), want_tuned);
    assert_eq!(resumed.stats_as(Some("other")), want_other);
    assert_eq!(resumed.stats(), want_default);
    assert_eq!(resumed.tenant_ids(), vec!["other".to_string(), "tuned".to_string()]);
    assert_eq!(resumed.config_as(Some("tuned")), tuned, "policy override survives the restart");
    assert_eq!(
        resumed.config_as(Some("other")),
        resumed.config(),
        "tenants without an override follow the global default"
    );

    // Warm-hit parity: each tenant's rerun is answered from its own
    // restored repository.
    let t = resumed.execute_query_as(Some("tuned"), &sum_query("/out/t2"), "/wf/t2").unwrap();
    assert_eq!(t.jobs_skipped, 1);
    let o = resumed.execute_query_as(Some("other"), &join_query("/out/o2"), "/wf/o2").unwrap();
    assert!(o.jobs_skipped > 0 || !o.rewrites.is_empty());
    let d = resumed.execute_query(&sum_query("/out/d2"), "/wf/d2").unwrap();
    assert_eq!(d.jobs_skipped, 1);
}

#[test]
fn v2_load_replaces_preexisting_tenants() {
    let shared = dfs();
    let rs = ReStore::new(engine_over(shared.clone()), ReStoreConfig::default());
    rs.execute_query_as(Some("keeper"), &sum_query("/out/k"), "/wf/k").unwrap();
    let state = rs.save_state();

    let other = ReStore::new(engine_over(shared), ReStoreConfig::default());
    other.execute_query_as(Some("stray"), &sum_query("/out/s"), "/wf/s").unwrap();
    other.load_state(&state).unwrap();
    // A v2 restore is a full-session replacement: tenants not in the
    // snapshot are gone.
    assert_eq!(other.tenant_ids(), vec!["keeper".to_string()]);
}

#[test]
fn v2_load_without_default_section_still_resets_default_namespace() {
    // Hand-prune the default `--space ""--` section out of a valid
    // document: a v2 restore is a *full* session replacement, so the
    // default namespace must come back empty, not keep stale state.
    let doc = valid_v2();
    let start = doc.find("--space \"\"--").unwrap();
    let end = doc.find("--space \"ana\"--").unwrap();
    let pruned = format!("{}{}", &doc[..start], &doc[end..]);

    let rs = ReStore::new(engine_over(dfs()), ReStoreConfig::default());
    rs.execute_query(&sum_query("/out/stale"), "/wf/stale").unwrap();
    assert!(rs.stats().repository_entries > 0);
    rs.load_state(&pruned).unwrap();
    assert_eq!(rs.stats().repository_entries, 0, "default namespace fully replaced");
    assert_eq!(rs.stats().provenance_entries, 0);
    assert_eq!(rs.tenant_ids(), vec!["ana".to_string()]);
}

// ---- per-tenant policy overrides govern execution ----

#[test]
fn tenant_config_override_governs_execution() {
    let rs = ReStore::new(engine_over(dfs()), ReStoreConfig::default());
    // "frugal" stores nothing: no candidate heuristic, no whole-job
    // registration.
    rs.set_config_as(
        Some("frugal"),
        ReStoreConfig {
            heuristic: Heuristic::None,
            register_final_outputs: false,
            ..Default::default()
        },
    );

    rs.execute_query_as(Some("frugal"), &sum_query("/out/f"), "/wf/f").unwrap();
    rs.execute_query_as(Some("packrat"), &sum_query("/out/p"), "/wf/p").unwrap();

    assert_eq!(rs.stats_as(Some("frugal")).repository_entries, 0, "frugal's policy stores nothing");
    assert!(
        rs.stats_as(Some("packrat")).repository_entries > 0,
        "packrat follows the global store-everything default"
    );

    // The override is visible, and clearing it falls back to the global.
    assert_eq!(rs.config_as(Some("frugal")).heuristic, Heuristic::None);
    rs.clear_config_as("frugal");
    assert_eq!(rs.config_as(Some("frugal")), rs.config());
    let f2 = rs.execute_query_as(Some("frugal"), &sum_query("/out/f2"), "/wf/f2").unwrap();
    assert!(f2.candidates_stored > 0 || rs.stats_as(Some("frugal")).repository_entries > 0);
}

#[test]
fn tenant_eviction_policy_sweeps_only_its_own_space() {
    let rs = ReStore::new(engine_over(dfs()), ReStoreConfig::default());
    // "spartan" evicts anything unused for one tick; the global default
    // (and thus "packrat") never evicts.
    rs.set_config_as(
        Some("spartan"),
        ReStoreConfig {
            selection: SelectionPolicy { eviction_window: Some(1), ..Default::default() },
            ..Default::default()
        },
    );

    // Tick 1-2: both tenants store entries.
    rs.execute_query_as(Some("spartan"), &sum_query("/out/s1"), "/wf/s1").unwrap();
    rs.execute_query_as(Some("packrat"), &sum_query("/out/p1"), "/wf/p1").unwrap();
    let packrat_before = rs.stats_as(Some("packrat")).repository_entries;

    // Ticks 3..: spartan submits a *different* query well past the
    // window; its sweep (run with spartan's policy) evicts spartan's
    // stale entries. Packrat's space is untouched.
    for i in 0..4 {
        rs.execute_query_as(Some("spartan"), &join_query(&format!("/out/s{i}j")), "/wf/sj")
            .unwrap();
    }
    rs.with_repository_as(Some("spartan"), |repo| {
        assert!(
            repo.entries().iter().all(|e| !e.output_path.contains("/out/s1")),
            "spartan's one-tick window evicted its stale entries"
        );
    });
    assert_eq!(
        rs.stats_as(Some("packrat")).repository_entries,
        packrat_before,
        "spartan's aggressive policy never touches packrat's space"
    );
}

// ---- typed parse errors ----

fn expect_state_err(doc: &str, want_line: usize, needle: &str) {
    let rs = ReStore::new(engine_over(dfs()), ReStoreConfig::default());
    match rs.load_state(doc) {
        Err(Error::State { line, msg }) => {
            assert_eq!(line, want_line, "error should point at line {want_line}: {msg}");
            assert!(
                msg.contains(needle),
                "error at line {line} should mention {needle:?}, got: {msg}"
            );
        }
        Err(other) => panic!("expected Error::State, got {other:?}"),
        Ok(()) => panic!("malformed document must not load"),
    }
}

/// A small valid v2 document to corrupt per test.
fn valid_v2() -> String {
    let rs = ReStore::new(engine_over(dfs()), ReStoreConfig::default());
    rs.execute_query_as(Some("ana"), &sum_query("/out/a"), "/wf/a").unwrap();
    rs.save_state()
}

#[test]
fn malformed_version_header() {
    expect_state_err("restore-state v9\ntick 0\ncand 0\n", 1, "restore-state");
    expect_state_err("", 1, "empty document");
}

#[test]
fn malformed_tick_line() {
    expect_state_err("restore-state v2\ntick x\ncand 0\n", 2, "tick");
    expect_state_err("restore-state v2\n", 2, "tick");
}

#[test]
fn malformed_cand_line() {
    expect_state_err("restore-state v2\ntick 3\ncand\n", 3, "cand");
}

#[test]
fn missing_config_section() {
    expect_state_err("restore-state v2\ntick 3\ncand 1\n--provenance--\n", 4, "--config--");
}

#[test]
fn unknown_config_key_is_located() {
    let doc = valid_v2().replace("reuse_enabled true", "frobnicate 9");
    let line = 1 + doc.lines().position(|l| l == "frobnicate 9").unwrap();
    expect_state_err(&doc, line, "frobnicate");
}

#[test]
fn bad_config_value_is_located() {
    let doc = valid_v2().replace("wave_parallel true", "wave_parallel maybe");
    let line = 1 + doc.lines().position(|l| l == "wave_parallel maybe").unwrap();
    expect_state_err(&doc, line, "wave_parallel");
}

#[test]
fn malformed_space_header() {
    let doc = valid_v2().replace("--space \"ana\"--", "--space ana--");
    let line = 1 + doc.lines().position(|l| l == "--space ana--").unwrap();
    expect_state_err(&doc, line, "--space");
}

#[test]
fn unknown_section_header() {
    let doc = valid_v2().replace("--space \"ana\"--", "--tenant \"ana\"--");
    let line = 1 + doc.lines().position(|l| l == "--tenant \"ana\"--").unwrap();
    expect_state_err(&doc, line, "--space");
}

#[test]
fn duplicate_space_section_is_rejected() {
    let base = valid_v2();
    let tail = base[base.find("--space \"ana\"--").unwrap()..].to_string();
    let doc = format!("{base}{tail}");
    let line = doc
        .lines()
        .enumerate()
        .filter(|(_, l)| *l == "--space \"ana\"--")
        .nth(1)
        .map(|(i, _)| i + 1)
        .unwrap();
    expect_state_err(&doc, line, "duplicate");
}

#[test]
fn missing_provenance_section() {
    let doc = valid_v2().replacen("--provenance--", "--prov--", 1);
    let line = 1 + doc.lines().position(|l| l == "--prov--").unwrap();
    expect_state_err(&doc, line, "--provenance--");
}

#[test]
fn missing_repository_section() {
    let doc = valid_v2().replacen("--repository--", "--repo--", 1);
    let line = 1 + doc.lines().position(|l| l == "--repo--").unwrap();
    expect_state_err(&doc, line, "--repository--");
}

#[test]
fn corrupt_provenance_body_names_the_section() {
    let doc = valid_v2().replacen("path \"", "wat \"", 1);
    match ReStore::new(engine_over(dfs()), ReStoreConfig::default()).load_state(&doc) {
        Err(Error::State { msg, .. }) => {
            assert!(msg.contains("--provenance--"), "{msg}");
        }
        other => panic!("expected Error::State, got {other:?}"),
    }
}

#[test]
fn corrupt_repository_body_names_the_section() {
    let doc = valid_v2().replacen("entry ", "entryx ", 1);
    match ReStore::new(engine_over(dfs()), ReStoreConfig::default()).load_state(&doc) {
        Err(Error::State { msg, .. }) => {
            assert!(msg.contains("--repository--"), "{msg}");
        }
        other => panic!("expected Error::State, got {other:?}"),
    }
}

#[test]
fn v1_trailing_section_is_rejected() {
    let doc = format!("{V1_FIXTURE}--space \"x\"--\n");
    let line = doc.lines().count();
    expect_state_err(&doc, line, "trailing");
}
