//! End-to-end tests of the ReStore driver: the paper's Q1/Q2 scenario
//! (Figures 2–6) executed on the full stack — parser → logical →
//! physical → MR compiler → ReStore match/rewrite/enumerate → engine →
//! DFS.

use restore_common::{codec, tuple, Tuple};
use restore_core::{Heuristic, ReStore, ReStoreConfig};
use restore_dfs::{Dfs, DfsConfig};
use restore_mapreduce::{ClusterConfig, Engine, EngineConfig};

fn engine() -> Engine {
    let dfs =
        Dfs::new(DfsConfig { nodes: 4, block_size: 512, replication: 2, node_capacity: None });
    Engine::new(
        dfs,
        ClusterConfig::default(),
        EngineConfig { worker_threads: 4, default_reduce_tasks: 3 },
    )
}

fn seed_data(dfs: &Dfs) {
    let pv: Vec<Tuple> = vec![
        tuple!["ann", 1, 10.0, "infoA", "linksA"],
        tuple!["bob", 2, 20.0, "infoB", "linksB"],
        tuple!["ann", 3, 5.0, "infoC", "linksC"],
        tuple!["cat", 4, 7.5, "infoD", "linksD"],
        tuple!["dan", 5, 2.5, "infoE", "linksE"],
    ];
    dfs.write_all("/data/page_views", &codec::encode_all(&pv)).unwrap();
    let users: Vec<Tuple> = vec![
        tuple!["ann", "p1", "a1", "c1"],
        tuple!["bob", "p2", "a2", "c2"],
        tuple!["cat", "p3", "a3", "c3"],
    ];
    dfs.write_all("/data/users", &codec::encode_all(&users)).unwrap();
}

fn q1(out: &str) -> String {
    format!(
        "A = load '/data/page_views' as (user, timestamp:int, est_revenue:double, page_info, page_links);
         B = foreach A generate user, est_revenue;
         alpha = load '/data/users' as (name, phone, address, city);
         beta = foreach alpha generate name;
         C = join beta by name, B by user;
         store C into '{out}';"
    )
}

fn q2(out: &str) -> String {
    format!(
        "A = load '/data/page_views' as (user, timestamp:int, est_revenue:double, page_info, page_links);
         B = foreach A generate user, est_revenue;
         alpha = load '/data/users' as (name, phone, address, city);
         beta = foreach alpha generate name;
         C = join beta by name, B by user;
         D = group C by $0;
         E = foreach D generate group, SUM(C.est_revenue);
         store E into '{out}';"
    )
}

fn read_sorted(dfs: &Dfs, path: &str) -> Vec<Tuple> {
    let mut t = codec::decode_all(&dfs.read_all(path).unwrap()).unwrap();
    t.sort();
    t
}

fn q2_expected() -> Vec<Tuple> {
    vec![tuple!["ann", 15.0], tuple!["bob", 20.0], tuple!["cat", 7.5]]
}

#[test]
fn baseline_executes_and_deletes_tmp() {
    let eng = engine();
    seed_data(eng.dfs());
    let rs = ReStore::new(eng, ReStoreConfig::baseline());
    let exec = rs.execute_query(&q2("/out/q2"), "/wf/q2").unwrap();
    assert_eq!(read_sorted(rs.engine().dfs(), "/out/q2"), q2_expected());
    assert_eq!(exec.jobs_skipped, 0);
    assert!(exec.rewrites.is_empty());
    assert_eq!(exec.job_results.len(), 2); // join job + group job
    assert!(exec.total_s > 0.0);
    // Plain Pig deletes the inter-job temporary.
    assert!(rs.engine().dfs().list("/wf/q2/").is_empty());
    // And stores nothing in the repository.
    assert!(rs.repository().is_empty());
}

#[test]
fn whole_job_reuse_q1_then_q2() {
    // The paper's headline scenario (Figures 2–4): Q1's stored join
    // output answers Q2's first job entirely.
    let eng = engine();
    seed_data(eng.dfs());
    let rs = ReStore::new(eng, ReStoreConfig { heuristic: Heuristic::None, ..Default::default() });

    let e1 = rs.execute_query(&q1("/out/q1"), "/wf/a").unwrap();
    assert!(e1.rewrites.is_empty());
    assert!(!rs.repository().is_empty());

    let e2 = rs.execute_query(&q2("/out/q2"), "/wf/b").unwrap();
    // Job 1 of Q2 was eliminated; only the group job executed.
    assert_eq!(e2.jobs_skipped, 1);
    assert_eq!(e2.job_results.len(), 1);
    assert_eq!(e2.rewrites.len(), 1);
    assert!(e2.rewrites[0].whole_job);
    assert_eq!(e2.rewrites[0].reused_path, "/out/q1");
    // Results are identical to the baseline.
    assert_eq!(read_sorted(rs.engine().dfs(), "/out/q2"), q2_expected());
    // Reuse is reflected in repository statistics.
    let repo = rs.repository();
    let reused = repo.get(e2.rewrites[0].entry_id).unwrap();
    assert_eq!(reused.stats().use_count, 1);
}

#[test]
fn whole_job_reuse_speeds_up_modeled_time() {
    let eng = engine();
    seed_data(eng.dfs());
    let rs = ReStore::new(eng, ReStoreConfig { heuristic: Heuristic::None, ..Default::default() });
    let cold = rs.execute_query(&q2("/out/cold"), "/wf/cold").unwrap();
    let warm = rs.execute_query(&q2("/out/warm"), "/wf/warm").unwrap();
    // Second identical query: the whole final job matches too, so both
    // jobs are skipped (answer comes straight from the repository).
    assert_eq!(warm.jobs_skipped, 2);
    assert!(warm.total_s < cold.total_s);
    assert_eq!(warm.final_output, "/out/cold");
    assert_eq!(read_sorted(rs.engine().dfs(), &warm.final_output), q2_expected());
}

#[test]
fn subjob_reuse_between_different_queries() {
    // Q1 runs with the Aggressive heuristic, materializing its projected
    // page_views (Figure 5). A later unrelated aggregation over the same
    // projection gets rewritten to load the stored sub-job (Figure 6).
    let eng = engine();
    seed_data(eng.dfs());
    let rs = ReStore::new(eng, ReStoreConfig::default());

    let e1 = rs.execute_query(&q1("/out/q1"), "/wf/a").unwrap();
    assert!(e1.candidates_stored >= 2, "project sub-jobs stored");
    assert!(e1.stored_candidate_bytes > 0);

    // A different query using the same Load+Project prefix.
    let q3 = "A = load '/data/page_views' as (user, timestamp:int, est_revenue:double, page_info, page_links);
              B = foreach A generate user, est_revenue;
              G = group B by user;
              S = foreach G generate group, SUM(B.est_revenue);
              store S into '/out/q3';";
    let e3 = rs.execute_query(q3, "/wf/c").unwrap();
    assert!(!e3.rewrites.is_empty(), "sub-job should be reused");
    let expected =
        vec![tuple!["ann", 15.0], tuple!["bob", 20.0], tuple!["cat", 7.5], tuple!["dan", 2.5]];
    assert_eq!(read_sorted(rs.engine().dfs(), "/out/q3"), expected);

    // The rewritten job loads the small projected file, not the wide one.
    let reused_path = &e3.rewrites[0].reused_path;
    let projected_len = rs.engine().dfs().file_len(reused_path).unwrap();
    let full_len = rs.engine().dfs().file_len("/data/page_views").unwrap();
    assert!(projected_len < full_len);
}

#[test]
fn repeat_query_with_aggressive_heuristic_stores_once() {
    let eng = engine();
    seed_data(eng.dfs());
    let rs = ReStore::new(eng, ReStoreConfig::default());
    let e1 = rs.execute_query(&q2("/out/r1"), "/wf/r1").unwrap();
    let stored_first = e1.stored_candidate_bytes;
    assert!(stored_first > 0);
    let repo_after_first = rs.repository().len();

    let e2 = rs.execute_query(&q2("/out/r2"), "/wf/r2").unwrap();
    // Everything matches; no new candidate materialization cost.
    assert_eq!(e2.stored_candidate_bytes, 0);
    assert_eq!(rs.repository().len(), repo_after_first);
    assert!(e2.total_s < e1.total_s);
}

#[test]
fn reuse_correctness_matches_baseline_across_configs() {
    // Whatever the configuration, query answers must be identical.
    for heuristic in
        [Heuristic::None, Heuristic::Conservative, Heuristic::Aggressive, Heuristic::NoHeuristic]
    {
        let eng = engine();
        seed_data(eng.dfs());
        let rs = ReStore::new(eng, ReStoreConfig { heuristic, ..Default::default() });
        rs.execute_query(&q1("/out/h/q1"), "/wf/h1").unwrap();
        rs.execute_query(&q2("/out/h/q2"), "/wf/h2").unwrap();
        assert_eq!(
            read_sorted(rs.engine().dfs(), "/out/h/q2"),
            q2_expected(),
            "heuristic {heuristic:?}"
        );
    }
}

#[test]
fn eviction_by_input_invalidation_disables_reuse() {
    let eng = engine();
    seed_data(eng.dfs());
    let mut config = ReStoreConfig { heuristic: Heuristic::None, ..Default::default() };
    config.selection.check_input_versions = true;
    let rs = ReStore::new(eng, config);

    rs.execute_query(&q1("/out/e1"), "/wf/e1").unwrap();
    assert!(!rs.repository().is_empty());

    // Overwrite page_views: every entry depending on it must go.
    let new_pv = vec![tuple!["zed", 9, 100.0, "i", "l"]];
    let mut w = rs.engine().dfs().create_overwrite("/data/page_views").unwrap();
    w.write(&codec::encode_all(&new_pv));
    w.close().unwrap();

    let e2 = rs.execute_query(&q2("/out/e2"), "/wf/e2").unwrap();
    assert_eq!(e2.rewrites.len(), 0, "stale entries must not be reused after input overwrite");
    // Fresh data produced fresh (correct) results: only ann/bob/cat are
    // users; zed is not in /data/users, so the join is empty.
    assert_eq!(read_sorted(rs.engine().dfs(), "/out/e2"), Vec::<Tuple>::new());
}

#[test]
fn modeled_times_report_overhead_of_subjob_stores() {
    // Running with injected stores must cost more (modeled) than without
    // — that is Figure 11's "overhead".
    let eng = engine();
    seed_data(eng.dfs());
    let base = ReStore::new(eng.clone(), ReStoreConfig::baseline());
    let plain = base.execute_query(&q2("/out/o1"), "/wf/o1").unwrap();

    let inst = ReStore::new(
        eng,
        ReStoreConfig {
            reuse_enabled: false,
            heuristic: Heuristic::Aggressive,
            ..Default::default()
        },
    );
    let with_stores = inst.execute_query(&q2("/out/o2"), "/wf/o2").unwrap();
    assert!(with_stores.total_s > plain.total_s);
    assert!(with_stores.stored_candidate_bytes > 0);
}

#[test]
fn multi_sink_final_output_is_last_topo_job() {
    // Two independent sinks share one wave; the higher-index job is
    // answered from the repository (skipped). `final_output` must follow
    // the strict Algorithm-1 topo order — the wave's highest-index job —
    // not whichever job happened to execute.
    let eng = engine();
    seed_data(eng.dfs());
    let rs = ReStore::new(eng, ReStoreConfig { heuristic: Heuristic::None, ..Default::default() });

    // Warm the repository with the second sink's whole job.
    let prior = "U = load '/data/users' as (name, phone, address, city);
                 G = group U by name;
                 R = foreach G generate group, COUNT(U);
                 store R into '/out/prior';";
    rs.execute_query(prior, "/wf/prior").unwrap();

    // Job 0 (page_views group) runs cold; job 1 (users group) is skipped.
    let multi = "P = load '/data/page_views' as (user, timestamp:int, est_revenue:double, page_info, page_links);
                 GP = group P by user;
                 SP = foreach GP generate group, SUM(P.est_revenue);
                 store SP into '/out/m0';
                 U = load '/data/users' as (name, phone, address, city);
                 GU = group U by name;
                 RU = foreach GU generate group, COUNT(U);
                 store RU into '/out/m1';";
    let e = rs.execute_query(multi, "/wf/multi").unwrap();
    assert_eq!(e.jobs_skipped, 1);
    assert_eq!(e.job_results.len(), 1);
    assert_eq!(
        e.final_output, "/out/prior",
        "final_output must come from the last (skipped) job, not the executed sibling"
    );
}
