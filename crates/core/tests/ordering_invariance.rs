//! Repository ordering invariants: the §3 "first match is best match"
//! guarantee must not depend on the order entries were inserted.

use restore_core::{RepoStats, Repository};
use restore_dataflow::expr::Expr;
use restore_dataflow::physical::{PhysicalOp, PhysicalPlan};

/// Build the paper's three-plan family: the full Q1 join plan, and the
/// two Load+Project sub-plans it subsumes (Figures 2 and 5).
fn q1_family() -> (PhysicalPlan, PhysicalPlan, PhysicalPlan) {
    let full = {
        let mut p = PhysicalPlan::new();
        let l1 = p.add(PhysicalOp::Load { path: "/users".into() }, vec![]);
        let p1 = p.add(PhysicalOp::Project { cols: vec![0] }, vec![l1]);
        let l2 = p.add(PhysicalOp::Load { path: "/pv".into() }, vec![]);
        let p2 = p.add(PhysicalOp::Project { cols: vec![0, 2] }, vec![l2]);
        let j = p.add(PhysicalOp::Join { keys: vec![vec![0], vec![0]] }, vec![p1, p2]);
        p.add(PhysicalOp::Store { path: "/q1".into() }, vec![j]);
        p
    };
    let sub = |path: &str, cols: Vec<usize>| {
        let mut p = PhysicalPlan::new();
        let l = p.add(PhysicalOp::Load { path: path.into() }, vec![]);
        let pr = p.add(PhysicalOp::Project { cols }, vec![l]);
        p.add(PhysicalOp::Store { path: format!("/s{path}") }, vec![pr]);
        p
    };
    (full, sub("/users", vec![0]), sub("/pv", vec![0, 2]))
}

fn stats(ratio_hint: u64) -> RepoStats {
    RepoStats {
        input_bytes: 1000,
        output_bytes: 1000 / ratio_hint.max(1),
        job_time_s: ratio_hint as f64,
        ..Default::default()
    }
}

/// All six insertion orders of {full, subA, subB} yield the same first
/// match for a Q1-shaped query: the subsuming full plan.
#[test]
fn first_match_is_insertion_order_invariant() {
    let (full, sub_a, sub_b) = q1_family();
    let query = full.clone();

    let plans = [("full", full.clone()), ("subA", sub_a.clone()), ("subB", sub_b.clone())];
    let orders: [[usize; 3]; 6] =
        [[0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]];
    for order in orders {
        let repo = Repository::new();
        for &i in &order {
            repo.insert(plans[i].1.clone(), format!("/out/{}", plans[i].0), stats(2));
        }
        // Rule 1: the subsuming plan comes first regardless of insertion.
        let first = &repo.entries()[0];
        assert_eq!(
            first.output_path, "/out/full",
            "order {order:?} put {} first",
            first.output_path
        );
        let (id, _) = repo.find_first_match(&query).unwrap();
        assert_eq!(repo.get(id).unwrap().output_path, "/out/full", "order {order:?}");
    }
}

/// Among incomparable plans, rule 2 ordering (ratio, then time) is also
/// insertion-order invariant.
#[test]
fn rule2_order_is_insertion_order_invariant() {
    let mk = |path: &str| {
        let mut p = PhysicalPlan::new();
        let l = p.add(PhysicalOp::Load { path: path.into() }, vec![]);
        let f = p.add(PhysicalOp::Filter { pred: Expr::col_eq(0, 1i64) }, vec![l]);
        p.add(PhysicalOp::Store { path: format!("/o{path}") }, vec![f]);
        p
    };
    let entries = [("/a", 10u64), ("/b", 50), ("/c", 2), ("/d", 25)];
    let orders: Vec<Vec<usize>> =
        vec![vec![0, 1, 2, 3], vec![3, 2, 1, 0], vec![2, 0, 3, 1], vec![1, 3, 0, 2]];
    let mut reference: Option<Vec<String>> = None;
    for order in orders {
        let repo = Repository::new();
        for &i in &order {
            let (path, ratio) = entries[i];
            repo.insert(mk(path), format!("/out{path}"), stats(ratio));
        }
        let got: Vec<String> = repo.entries().iter().map(|e| e.output_path.clone()).collect();
        match &reference {
            None => reference = Some(got),
            Some(want) => assert_eq!(&got, want, "order {order:?}"),
        }
    }
    // And the order is by descending reduction ratio: /b, /d, /a, /c.
    assert_eq!(reference.unwrap(), vec!["/out/b", "/out/d", "/out/a", "/out/c"]);
}

/// Eviction keeps the remaining order intact.
#[test]
fn eviction_preserves_relative_order() {
    let (full, sub_a, sub_b) = q1_family();
    let repo = Repository::new();
    repo.insert(sub_a, "/out/subA", stats(2));
    let full_id = match repo.insert(full, "/out/full", stats(3)) {
        restore_core::repository::InsertOutcome::Inserted(id) => id,
        other => panic!("{other:?}"),
    };
    repo.insert(sub_b, "/out/subB", stats(4));
    assert_eq!(repo.entries()[0].output_path, "/out/full");
    repo.evict(full_id);
    // Sub-plans retain their rule-2 order (subB has higher ratio).
    let paths: Vec<String> = repo.entries().iter().map(|e| e.output_path.clone()).collect();
    assert_eq!(paths, vec!["/out/subB", "/out/subA"]);
}
