//! Lockstep replication parity: a warm standby tailing the primary's
//! journal shipments is **byte-identical** to the primary at every
//! shipped boundary — for single-shard and sharded repositories — and
//! every divergence (lineage break, lost shipment, segments before a
//! base) is a typed refusal healed by a full-base resync.

use proptest::prelude::*;
use restore_core::{
    InProcessLink, ReStore, ReStoreConfig, ReplicaSession, ReplicationError, ReplicationTransport,
    Replicator, Shipment,
};
use restore_dfs::{Dfs, DfsConfig};
use restore_mapreduce::{ClusterConfig, Engine, EngineConfig};
use std::sync::Arc;

fn dfs() -> Dfs {
    let dfs = Dfs::new(DfsConfig::small_for_tests());
    dfs.write_all("/data/pv", b"alice\t4\nbob\t7\nalice\t1\ncarol\t9\n").unwrap();
    dfs.write_all("/data/users", b"alice\tkitchener\nbob\ttoronto\n").unwrap();
    dfs
}

fn engine_over(dfs: Dfs) -> Engine {
    Engine::new(dfs, ClusterConfig::default(), EngineConfig::default())
}

fn session(dfs: Dfs, shards: usize) -> Arc<ReStore> {
    let config = ReStoreConfig { repo_shards: shards, ..Default::default() };
    Arc::new(ReStore::new(engine_over(dfs), config))
}

fn sum_query(out: &str) -> String {
    format!(
        "A = load '/data/pv' as (user, n:int);
         G = group A by user;
         R = foreach G generate group, SUM(A.n);
         store R into '{out}';"
    )
}

fn join_query(out: &str) -> String {
    format!(
        "A = load '/data/pv' as (user, revenue:int);
         B = load '/data/users' as (name, city);
         C = join B by name, A by user;
         D = group C by $0;
         E = foreach D generate group, SUM(C.revenue);
         store E into '{out}';"
    )
}

/// One step of the generated workload: cold queries in two namespaces,
/// warm reruns (note-use records), config changes — every record kind
/// the journal ships.
fn run_op(rs: &ReStore, op: u8, i: usize) {
    match op % 4 {
        0 => {
            rs.execute_query(&sum_query(&format!("/out/p{i}")), &format!("/wf/p{i}")).unwrap();
        }
        1 => {
            rs.execute_query_as(Some("ana"), &join_query(&format!("/out/t{i}")), "/wf/t").unwrap();
        }
        2 => {
            rs.execute_query(&sum_query(&format!("/out/w{i}")), "/wf/warm").unwrap();
        }
        _ => {
            rs.set_config_as(
                Some("tuned"),
                ReStoreConfig { register_final_outputs: i.is_multiple_of(2), ..Default::default() },
            );
        }
    }
}

fn drain(replica: &ReplicaSession, link: &InProcessLink) {
    while let Some(s) = link.try_recv() {
        replica.apply_shipment(&s).expect("healthy shipment applies");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The tentpole property: execute an arbitrary workload on the
    /// primary, ship after every step, and the standby's full dump is
    /// byte-identical to the primary's at **every** shipped boundary —
    /// with matching shard layouts of 1 and 8 (sharded journal lanes
    /// interleave seqs inside shipped segments; replay must merge).
    #[test]
    fn standby_is_byte_identical_at_every_shipped_boundary(
        shards in prop_oneof![Just(1usize), Just(8usize)],
        ops in proptest::collection::vec(0u8..4, 1..6),
    ) {
        let dfs = dfs();
        let primary = session(dfs.clone(), shards);
        let standby = session(dfs, shards);
        let link = InProcessLink::new();
        let rep = Replicator::attach(primary.clone(), link.clone()).expect("attach");
        let replica = ReplicaSession::over(standby);
        drain(&replica, &link);
        prop_assert!(replica.is_synced());
        prop_assert_eq!(replica.driver().save_state(), primary.save_state());

        for (i, &op) in ops.iter().enumerate() {
            run_op(&primary, op, i);
            rep.pump().expect("shipping beat");
            drain(&replica, &link);
            prop_assert_eq!(
                replica.driver().save_state(),
                primary.save_state(),
                "standby diverged after op {} (kind {})", i, op % 4
            );
            prop_assert_eq!(replica.applied_seq(), rep.shipped_seq());
        }
        prop_assert!(replica.verify_parity().is_ok());
        prop_assert_eq!(replica.resyncs(), 0, "a healthy run never resyncs");
    }
}

#[test]
fn segments_before_a_base_are_refused() {
    let standby = session(dfs(), 1);
    let replica = ReplicaSession::over(standby);
    let shipment = Shipment::Segments { lineage: 1, last_seq: 5, segments: Vec::new() };
    assert_eq!(replica.apply_shipment(&shipment), Err(ReplicationError::NotSynced));
    assert_eq!(replica.verify_parity(), Err(ReplicationError::NotSynced));
}

/// An un-journaled replay on the primary (`recover`) replaces state the
/// record stream never described: the lineage token moves, the standby
/// refuses the next segment with a typed mismatch, and a full-base
/// resync re-anchors it back to byte parity.
#[test]
fn recovery_on_the_primary_breaks_lineage_and_resync_heals() {
    let dfs = dfs();
    let primary = session(dfs.clone(), 1);
    let link = InProcessLink::new();
    let rep = Replicator::attach(primary.clone(), link.clone()).expect("attach");
    let replica = ReplicaSession::over(session(dfs, 1));
    drain(&replica, &link);

    primary.execute_query(&sum_query("/out/a"), "/wf/a").unwrap();
    rep.pump().unwrap();
    drain(&replica, &link);
    assert_eq!(replica.driver().save_state(), primary.save_state());

    // Roll the primary back through the recovery path — a state change
    // no journal record describes.
    let checkpoint = primary.save_state();
    primary.recover(&checkpoint, &[]).unwrap();
    primary.execute_query(&sum_query("/out/b"), "/wf/b").unwrap();
    rep.pump().unwrap();

    let mut diverged = false;
    while let Some(s) = link.try_recv() {
        match replica.apply_shipment(&s) {
            Ok(()) => {}
            Err(ReplicationError::DivergedLineage { ours, theirs }) => {
                assert_ne!(ours, theirs);
                diverged = true;
                link.request_resync();
            }
            Err(e) => panic!("expected a lineage refusal, got {e}"),
        }
    }
    assert!(diverged, "the post-recovery segment must be refused");

    // The next shipping beat honors the resync request with a fresh
    // base; the standby re-anchors and is byte-identical again.
    rep.pump().unwrap();
    drain(&replica, &link);
    assert_eq!(replica.resyncs(), 1);
    assert!(replica.verify_parity().is_ok());
    assert_eq!(replica.driver().save_state(), primary.save_state());
}

/// A lost segment shipment leaves a hole in the record stream: the next
/// segment is refused as a seq gap (never silently applied), and
/// `ship_from` at the standby's applied seq heals with a full base.
#[test]
fn lost_shipment_is_a_seq_gap_and_ship_from_heals() {
    let dfs = dfs();
    let primary = session(dfs.clone(), 1);
    let link = InProcessLink::new();
    let rep = Replicator::attach(primary.clone(), link.clone()).expect("attach");
    let replica = ReplicaSession::over(session(dfs, 1));
    drain(&replica, &link);

    // Lose everything this query shipped.
    primary.execute_query(&sum_query("/out/a"), "/wf/a").unwrap();
    rep.pump().unwrap();
    while link.try_recv().is_some() {}

    primary.execute_query(&join_query("/out/b"), "/wf/b").unwrap();
    rep.pump().unwrap();
    let mut gapped = false;
    while let Some(s) = link.try_recv() {
        match replica.apply_shipment(&s) {
            Ok(()) => {}
            Err(ReplicationError::SeqGap { expected, got }) => {
                assert!(got > expected, "the gap skips lost records");
                gapped = true;
            }
            Err(e) => panic!("expected a seq gap, got {e}"),
        }
    }
    assert!(gapped, "the post-loss segment must be refused");
    // The refused shipment still advanced the parity target: promotion
    // could not pass over the lost records.
    assert!(replica.verify_parity().is_err());

    rep.ship_from(replica.applied_seq()).expect("resync from the standby's seq");
    drain(&replica, &link);
    assert_eq!(replica.resyncs(), 1);
    assert!(replica.verify_parity().is_ok());
    assert_eq!(replica.driver().save_state(), primary.save_state());
}
