//! Driver-level telemetry guarantees:
//!
//! 1. the §3 match hot path stays **zero-publish** with telemetry
//!    enabled — a warm whole-workflow reuse run performs no RCU
//!    publish and enters no writer section;
//! 2. the instrumented probed matcher returns results identical to the
//!    plain matcher (parity proptest over sharded repositories);
//! 3. the reuse-decision trace explains hits and misses, keyed by the
//!    execution's tick;
//! 4. `stats_all` rows come from one consistent cut (one shared clock).

use proptest::prelude::*;
use restore_common::{codec, tuple, Tuple};
use restore_core::repository::InsertOutcome;
use restore_core::{
    Heuristic, MatchProbe, ReStore, ReStoreConfig, RepoStats, Repository, ReuseDecision,
};
use restore_dataflow::expr::Expr;
use restore_dataflow::physical::{PhysicalOp, PhysicalPlan};
use restore_dfs::{Dfs, DfsConfig};
use restore_mapreduce::{ClusterConfig, Engine, EngineConfig};
use std::collections::HashSet;

fn engine() -> Engine {
    let dfs =
        Dfs::new(DfsConfig { nodes: 4, block_size: 512, replication: 2, node_capacity: None });
    let pv: Vec<Tuple> = vec![
        tuple!["ann", 1, 10.0, "infoA", "linksA"],
        tuple!["bob", 2, 20.0, "infoB", "linksB"],
        tuple!["ann", 3, 5.0, "infoC", "linksC"],
    ];
    dfs.write_all("/data/page_views", &codec::encode_all(&pv)).unwrap();
    let users: Vec<Tuple> = vec![tuple!["ann", "p1", "a1", "c1"], tuple!["bob", "p2", "a2", "c2"]];
    dfs.write_all("/data/users", &codec::encode_all(&users)).unwrap();
    Engine::new(
        dfs,
        ClusterConfig::default(),
        EngineConfig { worker_threads: 4, default_reduce_tasks: 3 },
    )
}

/// The paper's Q1 (Figure 2): a single join job, so a cold run is
/// exactly one match-loop miss and a warm rerun exactly one hit.
fn q1(out: &str) -> String {
    format!(
        "A = load '/data/page_views' as (user, timestamp:int, est_revenue:double, page_info, page_links);
         B = foreach A generate user, est_revenue;
         alpha = load '/data/users' as (name, phone, address, city);
         beta = foreach alpha generate name;
         C = join beta by name, B by user;
         store C into '{out}';"
    )
}

fn restore() -> ReStore {
    ReStore::new(engine(), ReStoreConfig { heuristic: Heuristic::None, ..Default::default() })
}

#[test]
fn warm_match_path_publishes_nothing_with_telemetry_enabled() {
    let restore = restore();
    let cold = restore.execute_query(&q1("/out/q1"), "/wf/1").expect("cold run");
    assert_eq!(cold.jobs_skipped, 0);

    // Telemetry is on (it always is — there is no off switch to hide
    // behind), and the warm rerun is answered entirely from the
    // repository: the match path must not publish a snapshot or enter
    // a writer section anywhere.
    let before = restore.write_counters_as(None);
    let warm = restore.execute_query(&q1("/out/q1b"), "/wf/2").expect("warm run");
    let after = restore.write_counters_as(None);
    assert_eq!(warm.jobs_skipped, 1, "rerun is answered from the repository");
    assert_eq!(after, before, "warm match path published or entered a writer section");

    // The rerun was still fully observed: per-tenant hit/miss counters
    // moved and the stage histograms saw the pipeline.
    let text = restore.registry().render();
    assert!(text.contains("restore_match_hits_total{tenant=\"\"} 1"), "one warm hit:\n{text}");
    assert!(text.contains("restore_match_misses_total{tenant=\"\"} 1"), "one cold miss:\n{text}");
    assert!(text.contains("restore_stage_seconds_bucket{stage=\"match\""), "{text}");
    assert!(text.contains("restore_match_stage_seconds_bucket{stage=\"index_probe\""), "{text}");
    assert!(text.contains("restore_match_seconds_count{tenant=\"\"} 2"), "{text}");
}

#[test]
fn reuse_trace_explains_hits_and_misses() {
    let restore = restore();
    let cold = restore.execute_query(&q1("/out/q1"), "/wf/1").expect("cold run");
    let warm = restore.execute_query(&q1("/out/q1b"), "/wf/2").expect("warm run");

    // The cold run's match loop found nothing.
    let cold_trace = restore.trace_for(None, cold.tick);
    assert!(
        cold_trace.iter().any(|e| matches!(e.decision, ReuseDecision::NoCandidates { .. })),
        "cold run should trace a no-candidates decision: {cold_trace:?}"
    );

    // The warm run's trace names the matched entry and the reused path.
    let warm_trace = restore.trace_for(None, warm.tick);
    assert!(
        warm_trace.iter().any(|e| matches!(e.decision, ReuseDecision::Matched { .. })),
        "warm run should trace a match: {warm_trace:?}"
    );

    // explain_last renders the most recent traced workflow (the warm
    // run) with the matched entry in it.
    let explained = restore.explain_last().expect("trace exists");
    assert!(explained.contains(&format!("workflow tick {}", warm.tick)), "{explained}");
    assert!(explained.contains("matched entry #"), "{explained}");

    // Dry-run explains never pollute the trace.
    let ticks_before: Vec<u64> =
        restore.trace_for(None, warm.tick).iter().map(|e| e.tick).collect();
    restore.explain_query(&q1("/out/q1c"), "/wf/3").expect("explain");
    assert_eq!(
        restore.trace_for(None, warm.tick).iter().map(|e| e.tick).collect::<Vec<_>>(),
        ticks_before,
        "explain_query must not add trace events"
    );
    assert_eq!(
        restore.explain_last().expect("still the warm run"),
        explained,
        "explain_query must not move the trace cursor"
    );
}

#[test]
fn stats_all_rows_share_one_clock_and_cover_all_namespaces() {
    let restore = restore();
    restore.execute_query(&q1("/out/q1"), "/wf/1").expect("default ns");
    restore.execute_query_as(Some("ana"), &q1("/out/q1t"), "/wf/2").expect("tenant ns");

    let all = restore.stats_all();
    let names: Vec<&str> = all.iter().map(|(n, _)| n.as_str()).collect();
    assert!(names.contains(&""), "default namespace row present: {names:?}");
    assert!(names.contains(&"ana"), "tenant row present: {names:?}");
    let clocks: HashSet<u64> = all.iter().map(|(_, s)| s.queries_executed).collect();
    assert_eq!(clocks.len(), 1, "every row reports the same clock: {all:?}");
    assert_eq!(clocks.into_iter().next(), Some(2));
}

/// Small pipeline plans over a handful of load paths so random
/// repositories produce genuine matches and signature collisions
/// across shards (same generator family as `prop_concurrent_repo`).
fn plan_for(seed: u8, depth: u8) -> PhysicalPlan {
    let mut p = PhysicalPlan::new();
    let path = ["/data/a", "/data/b", "/data/c"][(seed % 3) as usize];
    let mut cur = p.add(PhysicalOp::Load { path: path.into() }, vec![]);
    for d in 0..(depth % 4) {
        cur = match (seed.wrapping_add(d)) % 3 {
            0 => p.add(PhysicalOp::Project { cols: vec![0, (d % 3) as usize] }, vec![cur]),
            1 => p.add(
                PhysicalOp::Filter { pred: Expr::col_eq((d % 2) as usize, seed as i64) },
                vec![cur],
            ),
            _ => p.add(PhysicalOp::Group { keys: vec![(d % 2) as usize] }, vec![cur]),
        };
    }
    p.add(PhysicalOp::Store { path: format!("/store/{seed}-{depth}") }, vec![cur]);
    p
}

/// A longer query that embeds `plan_for(seed, depth)` as a prefix.
fn query_for(seed: u8, depth: u8) -> PhysicalPlan {
    let mut p = plan_for(seed, depth);
    let tip = p.stores()[0];
    let before = p.inputs(tip)[0];
    let g = p.add(PhysicalOp::Distinct, vec![before]);
    p.add(PhysicalOp::Store { path: "/q".into() }, vec![g]);
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The instrumented probed matcher is the plain matcher plus
    /// observation: identical (entry id, match tip) results on the same
    /// view, for both the indexed and scan strategies, across shard
    /// counts — and the probe's record is internally consistent (a
    /// winner implies a winning shard and a matched candidate).
    #[test]
    fn probed_match_agrees_with_plain(
        shards in 1usize..5,
        indexed in any::<bool>(),
        inserts in prop::collection::vec((any::<u8>(), any::<u8>(), 1u64..500), 0..24),
        queries in prop::collection::vec((any::<u8>(), any::<u8>()), 1..8),
        exclude_picks in prop::collection::vec(0usize..24, 0..4),
    ) {
        let repo = Repository::with_shards(shards);
        repo.set_fingerprint_index(indexed);
        let mut ids = Vec::new();
        for (seed, depth, bytes) in inserts {
            let stats = RepoStats { input_bytes: 4096, output_bytes: bytes, ..Default::default() };
            if let InsertOutcome::Inserted(id) =
                repo.insert(plan_for(seed, depth), format!("/r/{seed}-{depth}"), stats)
            {
                ids.push(id);
            }
        }
        let exclude: HashSet<u64> =
            exclude_picks.iter().filter_map(|&p| ids.get(p % ids.len().max(1)).copied()).collect();
        let view = repo.view();
        for (seed, depth) in queries {
            let q = query_for(seed, depth);
            let plain = view.find_first_match_excluding(&q, &exclude);
            let mut probe = MatchProbe::default();
            let probed = view.find_first_match_probed(&q, &exclude, &mut probe);
            prop_assert_eq!(
                plain.as_ref().map(|(id, m)| (*id, m.tip)),
                probed.as_ref().map(|(id, m)| (*id, m.tip)),
                "probed diverged from plain (indexed={}, shards={})", indexed, shards
            );
            prop_assert_eq!(probe.indexed, indexed);
            match &probed {
                Some((id, _)) => {
                    prop_assert!(probe.winner_shard.is_some(), "winner must carry its shard");
                    prop_assert!(
                        probe.candidates.iter().any(|c| c.entry_id == *id && c.matched),
                        "winner {} missing from probe candidates: {:?}", id, probe.candidates
                    );
                }
                None => prop_assert!(
                    probe.candidates.iter().all(|c| !c.matched),
                    "miss with a matched candidate recorded: {:?}", probe.candidates
                ),
            }
        }
    }
}
