//! Driver behaviour across the configuration matrix: fingerprint index,
//! strict selection, eviction windows, and final-output registration.

use restore_common::{codec, tuple, Tuple};
use restore_core::{Heuristic, ReStore, ReStoreConfig, SelectionPolicy};
use restore_dfs::{Dfs, DfsConfig};
use restore_mapreduce::{ClusterConfig, Engine, EngineConfig};

fn engine() -> Engine {
    let dfs =
        Dfs::new(DfsConfig { nodes: 4, block_size: 512, replication: 2, node_capacity: None });
    let rows: Vec<Tuple> = (0..300)
        .map(|i| {
            tuple![
                format!("u{}", i % 11),
                i as i64,
                (i % 97) as f64,
                "padding-padding-padding-padding"
            ]
        })
        .collect();
    dfs.write_all("/data/events", &codec::encode_all(&rows)).unwrap();
    Engine::new(
        dfs,
        ClusterConfig::default(),
        EngineConfig { worker_threads: 4, default_reduce_tasks: 3 },
    )
}

const Q: &str = "
    A = load '/data/events' as (u, n:int, v:double, pad);
    B = foreach A generate u, v;
    G = group B by u;
    R = foreach G generate group, SUM(B.v);
    store R into '/out/q';
";

fn read_sorted(dfs: &Dfs, path: &str) -> Vec<Tuple> {
    let mut t = codec::decode_all(&dfs.read_all(path).unwrap()).unwrap();
    t.sort();
    t
}

/// The fingerprint index must be behaviour-identical to the sequential
/// scan through the full driver: same rewrites, same answers, same
/// repository evolution.
#[test]
fn fingerprint_index_is_transparent() {
    let run = |indexed: bool| {
        let eng = engine();
        let rs = ReStore::new(eng, ReStoreConfig::default());
        rs.with_repository_mut_as(None, |repo| repo.set_fingerprint_index(indexed));
        let mut log = Vec::new();
        for i in 0..3 {
            let e = rs.execute_query(Q, &format!("/wf/{i}")).unwrap();
            log.push((
                e.rewrites.len(),
                e.jobs_skipped,
                e.candidates_stored,
                read_sorted(rs.engine().dfs(), &e.final_output),
            ));
        }
        let repo_len = rs.repository().len();
        (log, repo_len)
    };
    assert_eq!(run(false), run(true));
}

/// Strict §5 admission keeps the repository smaller without changing
/// answers.
#[test]
fn strict_selection_prunes_but_preserves_answers() {
    let eng_all = engine();
    let all = ReStore::new(eng_all, ReStoreConfig::default());
    let a1 = all.execute_query(Q, "/wf/a1").unwrap();
    let baseline = read_sorted(all.engine().dfs(), &a1.final_output);
    let repo_all = all.repository().len();

    let eng_strict = engine();
    let config = ReStoreConfig {
        selection: SelectionPolicy {
            store_all: false,
            require_size_reduction: true,
            require_time_benefit: true,
            ..Default::default()
        },
        ..Default::default()
    };
    let strict = ReStore::new(eng_strict, config);
    let s1 = strict.execute_query(Q, "/wf/s1").unwrap();
    assert_eq!(read_sorted(strict.engine().dfs(), &s1.final_output), baseline);
    assert!(
        strict.repository().len() <= repo_all,
        "strict admission must not grow the repository beyond store-all"
    );
    // Rejected candidates' files were deleted from the DFS.
    for path in strict.engine().dfs().list("/restore/") {
        assert!(
            strict.repository().entries().iter().any(|e| e.output_path == path),
            "orphan candidate file {path} left behind"
        );
    }
    // A rerun still produces correct answers (whatever was kept is used).
    let s2 = strict.execute_query(Q, "/wf/s2").unwrap();
    assert_eq!(read_sorted(strict.engine().dfs(), &s2.final_output), baseline);
}

/// With `register_final_outputs` off (the paper's experiment semantics),
/// a repeated single-job query re-executes its final job but still reuses
/// sub-jobs.
#[test]
fn paper_mode_reexecutes_final_job() {
    let eng = engine();
    let rs =
        ReStore::new(eng, ReStoreConfig { register_final_outputs: false, ..Default::default() });
    let e1 = rs.execute_query(Q, "/wf/p1").unwrap();
    let e2 = rs.execute_query(Q, "/wf/p2").unwrap();
    // The group job is the final job of this 1-job workflow: it must run
    // (not be skipped), but its input is the reused sub-job output.
    assert_eq!(e2.jobs_skipped, 0);
    assert!(!e2.rewrites.is_empty());
    assert!(!e2.job_results.is_empty());
    assert!(e2.total_s < e1.total_s);
    // Default mode would answer from the repository entirely.
    let eng2 = engine();
    let rs2 = ReStore::new(eng2, ReStoreConfig::default());
    rs2.execute_query(Q, "/wf/d1").unwrap();
    let d2 = rs2.execute_query(Q, "/wf/d2").unwrap();
    assert_eq!(d2.jobs_skipped, 1);
    assert!(d2.job_results.is_empty());
}

/// An eviction window during a workload: entries idle past the window
/// disappear, and matching afterwards re-materializes rather than
/// referencing deleted files.
#[test]
fn eviction_window_mid_workload() {
    let eng = engine();
    let config = ReStoreConfig {
        selection: SelectionPolicy { eviction_window: Some(2), ..Default::default() },
        ..Default::default()
    };
    let rs = ReStore::new(eng, config);

    rs.execute_query(Q, "/wf/w0").unwrap();
    let initial = rs.repository().len();
    assert!(initial > 0);

    // Unrelated queries age the repository past the window.
    for i in 0..4 {
        let unrelated = format!(
            "A = load '/data/events' as (u, n:int, v:double, pad);
             B = filter A by n == {i};
             store B into '/out/w{i}';"
        );
        rs.execute_query(&unrelated, &format!("/wf/wu{i}")).unwrap();
    }
    // The Q entries are gone (idle), and their DFS files with them.
    let repo = rs.repository();
    let still_q: Vec<_> = repo.entries().iter().filter(|e| e.stats().created == 1).collect();
    assert!(still_q.is_empty(), "tick-1 entries must be evicted: {still_q:?}");
    drop(repo);

    // Running Q again works from scratch and produces correct results.
    let e = rs.execute_query(Q, "/wf/wq").unwrap();
    assert!(rs.engine().dfs().exists(&e.final_output));
}

/// Conservative vs Aggressive on a join query: HA additionally registers
/// the join itself, so a later group-over-join query is answered with
/// less work under HA.
#[test]
fn ha_covers_more_than_hc() {
    let q_join = "
        A = load '/data/events' as (u, n:int, v:double, pad);
        B = foreach A generate u, v;
        C = foreach A generate u, n;
        J = join B by u, C by u;
        store J into '/out/join';
    ";
    let q_follow = "
        A = load '/data/events' as (u, n:int, v:double, pad);
        B = foreach A generate u, v;
        C = foreach A generate u, n;
        J = join B by u, C by u;
        G = group J by $0;
        R = foreach G generate group, COUNT(J);
        store R into '/out/follow';
    ";
    let time_with = |h: Heuristic| {
        let eng = engine();
        let rs = ReStore::new(
            eng,
            ReStoreConfig { heuristic: h, register_final_outputs: false, ..Default::default() },
        );
        rs.execute_query(q_join, "/wf/j").unwrap();
        // First follow-up run still *generates* new candidates (HA pays
        // for storing the Group output here); the warm rerun is the fair
        // reuse comparison.
        rs.execute_query(q_follow, "/wf/f1").unwrap();
        let e = rs.execute_query(q_follow, "/wf/f2").unwrap();
        (e.total_s, read_sorted(rs.engine().dfs(), &e.final_output))
    };
    let (t_hc, rows_hc) = time_with(Heuristic::Conservative);
    let (t_ha, rows_ha) = time_with(Heuristic::Aggressive);
    assert_eq!(rows_hc, rows_ha);
    assert!(
        t_ha <= t_hc + 1e-9,
        "HA ({t_ha}) must not be slower than HC ({t_hc}) on the warm follow-up"
    );
}
