//! Tests of the introspection surface: dry-run explain, driver stats,
//! and their consistency with actual execution.

use restore_common::{codec, tuple, Tuple};
use restore_core::{ReStore, ReStoreConfig};
use restore_dfs::{Dfs, DfsConfig};
use restore_mapreduce::{ClusterConfig, Engine, EngineConfig};

fn engine() -> Engine {
    let dfs =
        Dfs::new(DfsConfig { nodes: 4, block_size: 512, replication: 2, node_capacity: None });
    let rows: Vec<Tuple> =
        (0..120).map(|i| tuple![format!("u{}", i % 7), i as i64, (i % 31) as f64]).collect();
    dfs.write_all("/data/d", &codec::encode_all(&rows)).unwrap();
    Engine::new(
        dfs,
        ClusterConfig::default(),
        EngineConfig { worker_threads: 2, default_reduce_tasks: 3 },
    )
}

const Q: &str = "
    A = load '/data/d' as (u, n:int, v:double);
    B = foreach A generate u, v;
    G = group B by u;
    R = foreach G generate group, SUM(B.v);
    store R into '/out/q';
";

#[test]
fn explain_predicts_execution() {
    let rs = ReStore::new(engine(), ReStoreConfig::default());

    // Cold: explain predicts no matches.
    let cold = rs.explain_query(Q, "/wf/x").unwrap();
    assert!(cold.contains("no matches"), "{cold}");
    assert!(cold.contains("repository: 0 entries"), "{cold}");

    // Warm the repository, then explain again.
    rs.execute_query(Q, "/wf/warm").unwrap();
    let warm = rs.explain_query(Q, "/wf/x2").unwrap();
    assert!(warm.contains("would reuse entry"), "{warm}");
    assert!(warm.contains("job would be skipped"), "{warm}");

    // Dry run mutated nothing: use counts unchanged.
    assert_eq!(rs.stats().total_uses, 0);

    // And the prediction comes true.
    let e = rs.execute_query(Q, "/wf/real").unwrap();
    assert_eq!(e.jobs_skipped, 1);
}

#[test]
fn stats_track_activity() {
    let rs = ReStore::new(engine(), ReStoreConfig::default());
    let s0 = rs.stats();
    assert_eq!(s0.repository_entries, 0);
    assert_eq!(s0.queries_executed, 0);

    rs.execute_query(Q, "/wf/1").unwrap();
    let s1 = rs.stats();
    assert!(s1.repository_entries > 0);
    assert!(s1.stored_bytes > 0);
    assert_eq!(s1.queries_executed, 1);
    assert_eq!(s1.total_uses, 0);
    assert_eq!(s1.never_used, s1.repository_entries);
    assert_eq!(s1.provenance_entries, s1.repository_entries);

    rs.execute_query(Q, "/wf/2").unwrap();
    let s2 = rs.stats();
    assert!(s2.total_uses > 0, "rerun must register reuse");
    assert!(s2.never_used < s2.repository_entries);
    assert_eq!(s2.queries_executed, 2);
}

#[test]
fn explain_reports_errors_for_bad_queries() {
    let rs = ReStore::new(engine(), ReStoreConfig::default());
    assert!(rs.explain_query("not a query", "/wf").is_err());
    assert!(rs.explain_query("A = load '/data/d' as (x);", "/wf").is_err()); // no STORE
}

#[test]
fn dot_export_of_compiled_workflow() {
    // The dataflow dot renderer integrates with driver-visible queries.
    let wf = restore_dataflow::compile(Q, "/wf").unwrap();
    let dot = restore_dataflow::dot::workflow_to_dot(&wf, "q");
    assert!(dot.contains("digraph q {"));
    assert!(dot.contains("Group"));
}
