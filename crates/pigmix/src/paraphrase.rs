//! Paraphrased-PigMix: each query rewritten several **semantically
//! equal** ways, for measuring how many rewrites the analyzer's
//! canonical form turns into warm repository hits.
//!
//! Every case holds one *original* formulation (submitted cold, to warm
//! the repository) and 3–5 paraphrases drawn from rewrite classes the
//! logical optimizer does **not** already normalize — so a warm hit on
//! a paraphrase is attributable to the analyzer alone:
//!
//! * commuted `and` legs (`p and q` vs `q and p`);
//! * a single conjunction vs the equivalent filter chain, in either
//!   order;
//! * literal-first comparisons (`10 < x` vs `x > 10`);
//! * swapped operands of `+` / `*` in a foreach;
//! * a shared subplan written as two textually different (but
//!   equivalent) branches of a join.
//!
//! Deliberately **excluded**: reordered join/union operands and
//! self-join aliasing — the executor is sensitive to operand order and
//! producer identity there, so those rewrites are not semantically
//! equal in this engine (see the analyzer's module docs).

use crate::datagen::PAGE_VIEWS;

/// One paraphrased query: the original and its semantically-equal
/// rewrites. All store into distinct outputs under the case's prefix,
/// so no submission invalidates another's inputs.
pub struct ParaphraseCase {
    pub label: &'static str,
    /// Submitted first; warms the repository.
    pub original: String,
    /// Submitted after; each should be answered from the repository
    /// when the analyzer is on.
    pub paraphrases: Vec<String>,
}

impl ParaphraseCase {
    /// Total submissions the case makes (original + paraphrases).
    pub fn submissions(&self) -> usize {
        1 + self.paraphrases.len()
    }
}

fn load_pv(alias: &str) -> String {
    format!(
        "{alias} = load '{PAGE_VIEWS}' as (user, action:int, timestamp:int, est_revenue:double, page_info, page_links);"
    )
}

/// The paraphrased-PigMix suite. `out_prefix` namespaces every store
/// path; pass a distinct prefix per run so outputs never collide.
pub fn paraphrase_suite(out_prefix: &str) -> Vec<ParaphraseCase> {
    vec![
        conjunction_case(out_prefix),
        chain_case(out_prefix),
        arith_case(out_prefix),
        shared_subplan_case(out_prefix),
    ]
}

/// L2-shaped filter with a two-leg conjunction: commuted legs and
/// literal-first comparisons.
fn conjunction_case(prefix: &str) -> ParaphraseCase {
    let q = |pred: &str, out: &str| {
        format!(
            "{pv}
             B = filter A by {pred};
             C = foreach B generate user, est_revenue;
             store C into '{prefix}/conj/{out}';",
            pv = load_pv("A"),
        )
    };
    ParaphraseCase {
        label: "conjunction",
        original: q("action == 1 and est_revenue > 10.0", "o"),
        paraphrases: vec![
            q("est_revenue > 10.0 and action == 1", "p1"),
            q("1 == action and est_revenue > 10.0", "p2"),
            q("10.0 < est_revenue and 1 == action", "p3"),
        ],
    }
}

/// The same predicate as a filter chain vs one conjunction, in both
/// chain orders (an upstream filter is the right-leg of the merged
/// conjunction, so all four compile to one canonical Filter).
fn chain_case(prefix: &str) -> ParaphraseCase {
    let conj = |out: &str| {
        format!(
            "{pv}
             B = filter A by timestamp > 5 and action == 2;
             C = foreach B generate user, timestamp;
             store C into '{prefix}/chain/{out}';",
            pv = load_pv("A"),
        )
    };
    let chain = |first: &str, second: &str, out: &str| {
        format!(
            "{pv}
             B = filter A by {first};
             B2 = filter B by {second};
             C = foreach B2 generate user, timestamp;
             store C into '{prefix}/chain/{out}';",
            pv = load_pv("A"),
        )
    };
    ParaphraseCase {
        label: "filter-chain",
        original: conj("o"),
        paraphrases: vec![
            chain("timestamp > 5", "action == 2", "p1"),
            chain("action == 2", "timestamp > 5", "p2"),
            chain("2 == action", "5 < timestamp", "p3"),
            conj("p4").replace("timestamp > 5 and action == 2", "action == 2 and timestamp > 5"),
        ],
    }
}

/// Commutative arithmetic in a foreach feeding a group: swapped `+`
/// and `*` operands, separately and together.
fn arith_case(prefix: &str) -> ParaphraseCase {
    let q = |add: &str, mul: &str, out: &str| {
        format!(
            "{pv}
             B = foreach A generate user, {add}, {mul};
             C = group B by $0;
             D = foreach C generate group, COUNT(B);
             store D into '{prefix}/arith/{out}';",
            pv = load_pv("A"),
        )
    };
    ParaphraseCase {
        label: "arithmetic",
        original: q("action + timestamp", "action * timestamp", "o"),
        paraphrases: vec![
            q("timestamp + action", "action * timestamp", "p1"),
            q("action + timestamp", "timestamp * action", "p2"),
            q("timestamp + action", "timestamp * action", "p3"),
        ],
    }
}

/// Two textually different (but equivalent) branches feeding a join:
/// common-subplan extraction collapses them to one shared node, so
/// every variant fingerprints identically.
fn shared_subplan_case(prefix: &str) -> ParaphraseCase {
    let q = |left: &str, right: &str, out: &str| {
        format!(
            "{pv1}
             B = filter A by {left};
             L = foreach B generate user, est_revenue;
             {pv2}
             B2 = filter A2 by {right};
             R = foreach B2 generate user, est_revenue;
             J = join L by user, R by user;
             store J into '{prefix}/shared/{out}';",
            pv1 = load_pv("A"),
            pv2 = load_pv("A2"),
        )
    };
    ParaphraseCase {
        label: "shared-subplan",
        original: q("action == 1 and timestamp > 0", "action == 1 and timestamp > 0", "o"),
        paraphrases: vec![
            q("timestamp > 0 and action == 1", "action == 1 and timestamp > 0", "p1"),
            q("1 == action and 0 < timestamp", "timestamp > 0 and action == 1", "p2"),
            q("action == 1 and 0 < timestamp", "1 == action and timestamp > 0", "p3"),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_case_has_three_to_five_paraphrases() {
        for case in paraphrase_suite("/out/pp") {
            assert!(
                (3..=5).contains(&case.paraphrases.len()),
                "{}: {} paraphrases",
                case.label,
                case.paraphrases.len()
            );
        }
    }

    #[test]
    fn all_formulations_compile() {
        for case in paraphrase_suite("/out/pp") {
            restore_dataflow::compile(&case.original, "/wf")
                .unwrap_or_else(|e| panic!("{} original: {e}", case.label));
            for (i, p) in case.paraphrases.iter().enumerate() {
                restore_dataflow::compile(p, "/wf")
                    .unwrap_or_else(|e| panic!("{} p{i}: {e}", case.label));
            }
        }
    }

    /// The structural claim behind the suite: canonicalized, every
    /// paraphrase's per-job plan signatures equal the original's —
    /// and uncanonicalized they do not (each class is discriminating).
    #[test]
    fn paraphrases_fingerprint_identically_only_under_canonicalization() {
        let sigs = |wf: &restore_dataflow::CompiledWorkflow| {
            wf.jobs.iter().map(|j| j.plan.signature()).collect::<Vec<_>>()
        };
        for case in paraphrase_suite("/out/pp") {
            let (owf, _) = restore_dataflow::compile_canonical(&case.original, "/wf/o").unwrap();
            let plain = restore_dataflow::compile(&case.original, "/wf/o").unwrap();
            for (i, p) in case.paraphrases.iter().enumerate() {
                let (pwf, _) = restore_dataflow::compile_canonical(p, "/wf/o").unwrap();
                assert_eq!(
                    sigs(&owf),
                    sigs(&pwf),
                    "{} p{i} must canonicalize to the original's signatures",
                    case.label
                );
                let pplain = restore_dataflow::compile(p, "/wf/o").unwrap();
                assert_ne!(
                    sigs(&plain),
                    sigs(&pplain),
                    "{} p{i} should differ WITHOUT the analyzer (else it is not discriminating)",
                    case.label
                );
            }
        }
    }
}
