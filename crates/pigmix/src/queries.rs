//! The PigMix query subset used in the paper (§7: L2–L8 and L11), plus
//! the L3/L11 variants of §7.1, written in the `restore-dataflow`
//! dialect.
//!
//! Adaptations from stock PigMix (each preserves the workflow shape and
//! data-reduction profile the experiments depend on):
//!
//! * L4/L5's nested FOREACH bodies (`DISTINCT` inside a group) use the
//!   `COUNT_DISTINCT` aggregate;
//! * L5's outer-join-based anti-join uses COGROUP + empty-bag filter +
//!   FLATTEN, which is how Pig executes it physically;
//! * L7's nested ORDER BY top-1 uses MIN/MAX aggregates.

use crate::datagen::{PAGE_VIEWS, POWER_USERS, USERS, WIDEROW};

/// Load clause for page_views, shared by most queries.
fn load_pv(alias: &str) -> String {
    format!(
        "{alias} = load '{PAGE_VIEWS}' as (user, action:int, timestamp:int, est_revenue:double, page_info, page_links);"
    )
}

/// L2: project the fact table and join with power users (the paper's Q1
/// shape — Figure 2).
pub fn l2(out: &str) -> String {
    format!(
        "{pv}
         B = foreach A generate user, est_revenue;
         alpha = load '{POWER_USERS}' as (name, phone, address, city);
         beta = foreach alpha generate name;
         C = join beta by name, B by user;
         store C into '{out}';",
        pv = load_pv("A"),
    )
}

/// L3: join with users then group/sum — the paper's Q2 (Figure 3), a
/// two-job workflow.
pub fn l3(out: &str) -> String {
    l3_variant("SUM", out)
}

/// L3 variants (§7.1): same workflow, different aggregate function.
pub fn l3_variant(agg: &str, out: &str) -> String {
    format!(
        "{pv}
         B = foreach A generate user, est_revenue;
         alpha = load '{USERS}' as (name, phone, address, city);
         beta = foreach alpha generate name;
         C = join beta by name, B by user;
         D = group C by $0;
         E = foreach D generate group, {agg}(C.est_revenue);
         store E into '{out}';",
        pv = load_pv("A"),
    )
}

/// L4: distinct action count per user (nested distinct in PigMix).
pub fn l4(out: &str) -> String {
    format!(
        "{pv}
         B = foreach A generate user, action;
         C = group B by user;
         D = foreach C generate group, COUNT_DISTINCT(B.action);
         store D into '{out}';",
        pv = load_pv("A"),
    )
}

/// L5: anti-join — page views whose user is *not* in the users table
/// (empty on PigMix-style data, like the paper's 2-byte output).
pub fn l5(out: &str) -> String {
    format!(
        "{pv}
         B = foreach A generate user;
         alpha = load '{USERS}' as (name, phone, address, city);
         beta = foreach alpha generate name;
         C = cogroup B by user, beta by name;
         D = filter C by STRLEN(beta) == 0;
         E = foreach D generate FLATTEN(B);
         store E into '{out}';",
        pv = load_pv("A"),
    )
}

/// L6: fine-grained group (user, timestamp) with a large grouped state —
/// the query whose Aggressive-heuristic Store is expensive in Figure 11.
pub fn l6(out: &str) -> String {
    format!(
        "{pv}
         B = foreach A generate user, timestamp, est_revenue;
         C = group B by (user, timestamp);
         D = foreach C generate group, SUM(B.est_revenue);
         store D into '{out}';",
        pv = load_pv("A"),
    )
}

/// L7: per-user extrema (PigMix's nested ORDER BY top-1, as MIN/MAX).
pub fn l7(out: &str) -> String {
    format!(
        "{pv}
         B = foreach A generate user, est_revenue;
         C = group B by user;
         D = foreach C generate group, MAX(B.est_revenue), MIN(B.est_revenue);
         store D into '{out}';",
        pv = load_pv("A"),
    )
}

/// L8: global aggregate (GROUP ALL) — tiny output like the paper's 27 B.
pub fn l8(out: &str) -> String {
    format!(
        "{pv}
         B = foreach A generate user, est_revenue;
         C = group B all;
         D = foreach C generate COUNT(B), SUM(B.est_revenue);
         store D into '{out}';",
        pv = load_pv("A"),
    )
}

/// L11: distinct users unioned with distinct widerow users — a 3-job
/// workflow where the final job depends on the other two.
pub fn l11(out: &str) -> String {
    l11_variant(WIDEROW, out)
}

/// L11 variants (§7.1): union with a different second data set.
pub fn l11_variant(second_table: &str, out: &str) -> String {
    format!(
        "{pv}
         B = foreach A generate user;
         C = distinct B;
         alpha = load '{second_table}' as (user0, c1, c2, c3);
         beta = foreach alpha generate user0;
         gamma = distinct beta;
         D = union C, gamma;
         E = distinct D;
         store E into '{out}';",
        pv = load_pv("A"),
    )
}

/// The queries of Figure 9/15: L3 with four aggregates and L11 with five
/// data-set pairings. Returns (label, query-text) pairs.
pub fn whole_job_workload(out_prefix: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for (label, agg) in [("L3", "SUM"), ("L3a", "AVG"), ("L3b", "MIN"), ("L3c", "COUNT")] {
        out.push((label.to_string(), l3_variant(agg, &format!("{out_prefix}/{label}"))));
    }
    for (label, table) in [
        ("L11", WIDEROW),
        ("L11a", USERS),
        ("L11b", POWER_USERS),
        ("L11c", WIDEROW),
        ("L11d", USERS),
    ] {
        // c/d re-run earlier pairings — re-submissions at a later time,
        // which is exactly the reuse the paper exploits.
        out.push((label.to_string(), l11_variant(table, &format!("{out_prefix}/{label}"))));
    }
    out
}

/// The eight queries of Figures 10–14 / Table 1: (label, query).
pub fn standard_workload(out_prefix: &str) -> Vec<(String, String)> {
    vec![
        ("L2".to_string(), l2(&format!("{out_prefix}/L2"))),
        ("L3".to_string(), l3(&format!("{out_prefix}/L3"))),
        ("L4".to_string(), l4(&format!("{out_prefix}/L4"))),
        ("L5".to_string(), l5(&format!("{out_prefix}/L5"))),
        ("L6".to_string(), l6(&format!("{out_prefix}/L6"))),
        ("L7".to_string(), l7(&format!("{out_prefix}/L7"))),
        ("L8".to_string(), l8(&format!("{out_prefix}/L8"))),
        ("L11".to_string(), l11(&format!("{out_prefix}/L11"))),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::{self, generate};
    use crate::scale::DataScale;
    use restore_common::codec;
    use restore_core::{ReStore, ReStoreConfig};
    use restore_dfs::{Dfs, DfsConfig};
    use restore_mapreduce::{ClusterConfig, Engine, EngineConfig};

    fn harness() -> ReStore {
        let dfs =
            Dfs::new(DfsConfig { nodes: 4, block_size: 2048, replication: 1, node_capacity: None });
        generate(&dfs, &DataScale::tiny(), 99).unwrap();
        let engine = Engine::new(
            dfs,
            ClusterConfig::default(),
            EngineConfig { worker_threads: 4, default_reduce_tasks: 3 },
        );
        ReStore::new(engine, ReStoreConfig::baseline())
    }

    #[test]
    fn all_queries_compile() {
        for (label, q) in standard_workload("/out") {
            restore_dataflow::compile(&q, "/wf")
                .unwrap_or_else(|e| panic!("{label} failed to compile: {e}"));
        }
        for (label, q) in whole_job_workload("/out") {
            restore_dataflow::compile(&q, "/wf")
                .unwrap_or_else(|e| panic!("{label} failed to compile: {e}"));
        }
    }

    #[test]
    fn workflow_shapes_match_paper() {
        // L3 → 2 jobs; L11 → 3 jobs (one depending on the other two).
        let l3 = restore_dataflow::compile(&l3("/o"), "/wf").unwrap();
        assert_eq!(l3.jobs.len(), 2);
        let l11 = restore_dataflow::compile(&l11("/o"), "/wf").unwrap();
        assert_eq!(l11.jobs.len(), 3);
        assert_eq!(l11.jobs[2].deps.len(), 2);
        // L2 → 1 job.
        let l2 = restore_dataflow::compile(&l2("/o"), "/wf").unwrap();
        assert_eq!(l2.jobs.len(), 1);
    }

    #[test]
    fn standard_workload_executes() {
        let rs = harness();
        for (label, q) in standard_workload("/out/std") {
            let exec = rs
                .execute_query(&q, &format!("/wf/{label}"))
                .unwrap_or_else(|e| panic!("{label} failed: {e}"));
            assert!(exec.total_s > 0.0, "{label}");
            assert!(rs.engine().dfs().exists(&exec.final_output), "{label} output missing");
        }
    }

    #[test]
    fn l5_antijoin_is_empty_on_pigmix_data() {
        let rs = harness();
        let exec = rs.execute_query(&l5("/out/l5"), "/wf/l5").unwrap();
        assert_eq!(rs.engine().dfs().file_len(&exec.final_output).unwrap(), 0);
    }

    #[test]
    fn l8_output_is_single_row() {
        let rs = harness();
        let exec = rs.execute_query(&l8("/out/l8"), "/wf/l8").unwrap();
        let rows =
            codec::decode_all(&rs.engine().dfs().read_all(&exec.final_output).unwrap()).unwrap();
        assert_eq!(rows.len(), 1);
        // COUNT equals the page_views row count.
        assert_eq!(rows[0].get(0).as_i64().unwrap(), DataScale::tiny().page_views_rows as i64);
    }

    #[test]
    fn l11_output_is_distinct_union() {
        let rs = harness();
        let exec = rs.execute_query(&l11("/out/l11"), "/wf/l11").unwrap();
        let rows =
            codec::decode_all(&rs.engine().dfs().read_all(&exec.final_output).unwrap()).unwrap();
        // All distinct.
        let mut sorted = rows.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), rows.len());
        // Covers both sources: some wide_* users exist.
        assert!(rows.iter().any(|t| t.get(0).as_str().unwrap().starts_with("wide_")));
        assert!(rows.iter().any(|t| t.get(0).as_str().unwrap().starts_with("user_")));
        let _ = datagen::WIDEROW;
    }

    #[test]
    fn l3_sums_match_manual_computation() {
        let rs = harness();
        let exec = rs.execute_query(&l3("/out/l3"), "/wf/l3").unwrap();
        let rows =
            codec::decode_all(&rs.engine().dfs().read_all(&exec.final_output).unwrap()).unwrap();
        // Manually aggregate from the raw fact table.
        let pv =
            codec::decode_all(&rs.engine().dfs().read_all(datagen::PAGE_VIEWS).unwrap()).unwrap();
        let mut expected: std::collections::HashMap<String, f64> = std::collections::HashMap::new();
        for t in &pv {
            *expected.entry(t.get(0).as_str().unwrap().to_string()).or_default() +=
                t.get(3).as_f64().unwrap();
        }
        assert_eq!(rows.len(), expected.len());
        for r in &rows {
            let user = r.get(0).as_str().unwrap();
            let sum = r.get(1).as_f64().unwrap();
            let want = expected[user];
            assert!((sum - want).abs() < 1e-6, "{user}: {sum} vs {want}");
        }
    }
}
