//! Deterministic PigMix-style data generation.
//!
//! Tables mirror the PigMix layout the paper uses:
//!
//! * `page_views(user, action, timestamp, est_revenue, page_info,
//!   page_links)` — the wide fact table; `page_info`/`page_links` are
//!   large text blobs, so projecting `(user, est_revenue)` keeps only a
//!   few percent of the bytes (that ratio drives Table 1 and the sub-job
//!   speedups);
//! * `users(name, phone, address, city)` — one row per distinct user;
//! * `power_users(name, phone, address, city)` — a small subset drawn
//!   from the *tail* of the user popularity distribution, so the L2 join
//!   is selective like the paper's (1.1 MB output from 150 GB input);
//! * `widerow(user0, c1..c10)` — the union partner of L11.
//!
//! Users in `page_views` follow a Zipf distribution over the user pool,
//! like PigMix's generator. Everything is seeded: same seed, same bytes.

use crate::scale::DataScale;
use restore_common::rng::{SplitMix64, Zipf};
use restore_common::{codec, tuple, Result, Tuple};
use restore_dfs::Dfs;

/// Canonical DFS locations of the generated tables.
pub const PAGE_VIEWS: &str = "/data/page_views";
pub const USERS: &str = "/data/users";
pub const POWER_USERS: &str = "/data/power_users";
pub const WIDEROW: &str = "/data/widerow";

/// Sizes (in bytes, pre-replication) of the generated tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PigMixData {
    pub page_views_bytes: u64,
    pub users_bytes: u64,
    pub power_users_bytes: u64,
    pub widerow_bytes: u64,
}

impl PigMixData {
    /// Total input volume (the paper's Table 1 "I/P" column counts
    /// whatever each query loads; L2–L8 load `page_views`+`users`-ish).
    pub fn total_bytes(&self) -> u64 {
        self.page_views_bytes + self.users_bytes + self.power_users_bytes + self.widerow_bytes
    }
}

/// Deterministic user name: `user_<i>_<6 random-looking chars>`.
fn user_name(i: usize, rng: &SplitMix64) -> String {
    let mut r = rng.derive(0x5EED_0000 ^ i as u64);
    format!("user_{i}_{}", r.next_string(6))
}

/// Generate all four tables into the DFS.
pub fn generate(dfs: &Dfs, scale: &DataScale, seed: u64) -> Result<PigMixData> {
    let root = SplitMix64::new(seed);

    // User pool, shared by page_views and users so that every page view
    // joins (the paper's L5 anti-join is ~empty: output 2 bytes).
    let pool: Vec<String> = (0..scale.users).map(|i| user_name(i, &root)).collect();

    // ---- users ----
    let mut rng = root.derive(1);
    let mut users_rows = Vec::with_capacity(pool.len());
    for name in &pool {
        users_rows.push(tuple![
            name.clone(),
            format!("+1-{:03}-{:07}", rng.next_below(1000), rng.next_below(10_000_000)),
            format!("{} {} st", rng.next_below(9999) + 1, rng.next_string(8)),
            format!("city_{}", rng.next_below(97))
        ]);
    }
    let users_bytes = write(dfs, USERS, &users_rows)?;

    // ---- power_users: a deterministic subset from the *tail* of the
    // Zipf-ranked pool (rare users), keeping the L2 join selective ----
    let power_rows: Vec<Tuple> =
        users_rows.iter().skip(scale.users.saturating_sub(scale.power_users)).cloned().collect();
    let power_users_bytes = write(dfs, POWER_USERS, &power_rows)?;

    // ---- page_views ----
    let mut rng = root.derive(2);
    let zipf = Zipf::new(pool.len(), 0.8);
    let mut pv_rows = Vec::with_capacity(scale.page_views_rows);
    for i in 0..scale.page_views_rows {
        let user = pool[zipf.sample(&mut rng)].clone();
        let action = rng.next_below(10) as i64;
        let timestamp = 1_300_000_000 + (i as i64 % 86_400);
        let est_revenue = (rng.next_below(10_000) as f64) / 100.0;
        let page_info = format!(
            "title={};summary={};keywords={};lang=en",
            rng.next_string(40),
            rng.next_string(120),
            rng.next_string(60)
        );
        let page_links = format!(
            "http://site/{}.html http://site/{}.html http://site/{}.html http://site/{}.html http://site/{}.html",
            rng.next_string(48),
            rng.next_string(48),
            rng.next_string(48),
            rng.next_string(48),
            rng.next_string(48)
        );
        pv_rows.push(tuple![user, action, timestamp, est_revenue, page_info, page_links]);
    }
    let page_views_bytes = write(dfs, PAGE_VIEWS, &pv_rows)?;

    // ---- widerow ----
    let mut rng = root.derive(3);
    let mut wr_rows = Vec::with_capacity(scale.widerow_rows);
    for _ in 0..scale.widerow_rows {
        let mut t = Tuple::new();
        // Roughly half the widerow users overlap the pool, half are new —
        // unions then have both duplicates and fresh values.
        if rng.next_below(2) == 0 {
            t.push(pool[rng.next_below(pool.len() as u64) as usize].clone().into());
        } else {
            t.push(format!("wide_{}", rng.next_string(8)).into());
        }
        for _ in 0..10 {
            t.push((rng.next_below(1_000_000) as i64).into());
        }
        wr_rows.push(t);
    }
    let widerow_bytes = write(dfs, WIDEROW, &wr_rows)?;

    Ok(PigMixData { page_views_bytes, users_bytes, power_users_bytes, widerow_bytes })
}

fn write(dfs: &Dfs, path: &str, rows: &[Tuple]) -> Result<u64> {
    let bytes = codec::encode_all(rows);
    let len = bytes.len() as u64;
    if dfs.exists(path) {
        dfs.delete(path);
    }
    dfs.write_all(path, &bytes)?;
    Ok(len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use restore_dfs::DfsConfig;

    fn dfs() -> Dfs {
        Dfs::new(DfsConfig { nodes: 4, block_size: 4096, replication: 1, node_capacity: None })
    }

    #[test]
    fn generation_is_deterministic() {
        let d1 = dfs();
        let d2 = dfs();
        let s = DataScale::tiny();
        generate(&d1, &s, 42).unwrap();
        generate(&d2, &s, 42).unwrap();
        assert_eq!(d1.read_all(PAGE_VIEWS).unwrap(), d2.read_all(PAGE_VIEWS).unwrap());
        assert_eq!(d1.read_all(USERS).unwrap(), d2.read_all(USERS).unwrap());
        assert_eq!(d1.read_all(WIDEROW).unwrap(), d2.read_all(WIDEROW).unwrap());
    }

    #[test]
    fn different_seeds_differ() {
        let d1 = dfs();
        let d2 = dfs();
        let s = DataScale::tiny();
        generate(&d1, &s, 1).unwrap();
        generate(&d2, &s, 2).unwrap();
        assert_ne!(d1.read_all(PAGE_VIEWS).unwrap(), d2.read_all(PAGE_VIEWS).unwrap());
    }

    #[test]
    fn schema_and_row_counts() {
        let d = dfs();
        let s = DataScale::tiny();
        generate(&d, &s, 7).unwrap();
        let pv = codec::decode_all(&d.read_all(PAGE_VIEWS).unwrap()).unwrap();
        assert_eq!(pv.len(), s.page_views_rows);
        assert_eq!(pv[0].arity(), 6);
        let users = codec::decode_all(&d.read_all(USERS).unwrap()).unwrap();
        assert_eq!(users.len(), s.users);
        let power = codec::decode_all(&d.read_all(POWER_USERS).unwrap()).unwrap();
        assert_eq!(power.len(), s.power_users);
        let wr = codec::decode_all(&d.read_all(WIDEROW).unwrap()).unwrap();
        assert_eq!(wr.len(), s.widerow_rows);
        assert_eq!(wr[0].arity(), 11);
    }

    #[test]
    fn every_page_view_user_is_in_users() {
        // Guarantees the paper's L5 anti-join is empty.
        let d = dfs();
        let s = DataScale::tiny();
        generate(&d, &s, 7).unwrap();
        let pv = codec::decode_all(&d.read_all(PAGE_VIEWS).unwrap()).unwrap();
        let users = codec::decode_all(&d.read_all(USERS).unwrap()).unwrap();
        let names: std::collections::HashSet<&str> =
            users.iter().map(|t| t.get(0).as_str().unwrap()).collect();
        for row in &pv {
            assert!(names.contains(row.get(0).as_str().unwrap()));
        }
    }

    #[test]
    fn projection_keeps_small_fraction_of_bytes() {
        // The wide-row property the paper's Table 1 relies on: projecting
        // (user, est_revenue) keeps only a few percent of the bytes.
        let d = dfs();
        let s = DataScale::tiny();
        let data = generate(&d, &s, 7).unwrap();
        let pv = codec::decode_all(&d.read_all(PAGE_VIEWS).unwrap()).unwrap();
        let projected: usize = pv.iter().map(|t| t.project(&[0, 3]).encoded_len()).sum();
        let frac = projected as f64 / data.page_views_bytes as f64;
        assert!(frac < 0.15, "projection keeps {frac:.2} of bytes");
    }

    #[test]
    fn users_are_zipf_skewed() {
        let d = dfs();
        let s = DataScale::tiny();
        generate(&d, &s, 7).unwrap();
        let pv = codec::decode_all(&d.read_all(PAGE_VIEWS).unwrap()).unwrap();
        let mut counts = std::collections::HashMap::new();
        for t in &pv {
            *counts.entry(t.get(0).as_str().unwrap().to_string()).or_insert(0u32) += 1;
        }
        let max = counts.values().max().copied().unwrap();
        let avg = pv.len() as f64 / counts.len() as f64;
        assert!(max as f64 > 2.0 * avg, "head user should dominate (max {max}, avg {avg})");
    }
}
