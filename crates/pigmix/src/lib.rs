//! PigMix-style benchmark substrate for the ReStore reproduction.
//!
//! The paper evaluates on the PigMix benchmark: two instances of the
//! `page_views` table (10M rows ≈ 15 GB and 100M rows ≈ 150 GB), plus the
//! smaller `users`, `power_users`, and `widerow` tables, queries L2–L8 and
//! L11, synthetic variants of L3/L11, and a fully synthetic data set for
//! the data-reduction sweeps of §7.5 (Table 2, Figures 16/17).
//!
//! This crate provides:
//!
//! * [`datagen`] — deterministic generators for all four tables, scaled
//!   down by a configurable factor while preserving the paper's
//!   1:10 instance ratio and wide-row layout;
//! * [`queries`] — the PigMix subset written in the `restore-dataflow`
//!   dialect, including the L3/L11 variants of §7.1;
//! * [`paraphrase`] — the paraphrased-PigMix suite: each query
//!   rewritten 3–5 semantically-equal ways, for measuring the
//!   analyzer's warm-hit-rate lift;
//! * [`synthetic`] — the §7.5 twelve-field data set and the QP/QF query
//!   templates;
//! * [`scale`] — the experiment scale presets and the byte-scale wiring
//!   that makes the cost model report paper-comparable times.

pub mod datagen;
pub mod paraphrase;
pub mod queries;
pub mod scale;
pub mod synthetic;

pub use datagen::{generate, PigMixData};
pub use scale::DataScale;
