//! The §7.5 synthetic data set and query templates (Table 2, Figures
//! 16/17).
//!
//! Twelve fields: `field1..field5` are 20-character random strings (the
//! Project sweep's payload), `field6..field12` are integers whose
//! cardinality sets the selectivity of an equality predicate (the Filter
//! sweep). Cardinality 1.6 means two values split 60/40, so selecting the
//! majority value keeps 60 % of rows.

use restore_common::rng::SplitMix64;
use restore_common::{codec, Result, Tuple, Value};
use restore_dfs::Dfs;

/// Canonical DFS location of the synthetic table.
pub const SYNTH: &str = "/data/synthetic";

/// Table 2: (field index, cardinality, fraction selected by `field == 0`).
pub const FILTER_FIELDS: [(usize, f64, f64); 7] = [
    (6, 200.0, 0.005),
    (7, 100.0, 0.01),
    (8, 20.0, 0.05),
    (9, 10.0, 0.10),
    (10, 5.0, 0.20),
    (11, 2.0, 0.50),
    (12, 1.6, 0.60),
];

/// Generate `rows` rows of the synthetic table; returns encoded bytes.
pub fn generate(dfs: &Dfs, rows: usize, seed: u64) -> Result<u64> {
    let mut rng = SplitMix64::new(seed);
    let mut data = Vec::with_capacity(rows);
    for _ in 0..rows {
        let mut t = Tuple::new();
        for _ in 0..5 {
            t.push(Value::Str(rng.next_string(20)));
        }
        for (_, card, pct) in FILTER_FIELDS {
            // Value 0 is the "selected" value with probability `pct`;
            // the remaining mass spreads over the other card-1 values
            // (for fractional cardinality 1.6 that is a single value 1).
            let v = if rng.next_f64() < pct {
                0
            } else {
                let others = (card.ceil() as u64 - 1).max(1);
                1 + rng.next_below(others) as i64
            };
            t.push(Value::Int(v));
        }
        data.push(t);
    }
    let bytes = codec::encode_all(&data);
    let len = bytes.len() as u64;
    if dfs.exists(SYNTH) {
        dfs.delete(SYNTH);
    }
    dfs.write_all(SYNTH, &bytes)?;
    Ok(len)
}

fn schema_clause() -> String {
    let names: Vec<String> = (1..=12).map(|i| format!("field{i}")).collect();
    names.join(", ")
}

/// Query template QP (§7.5): project the first `k` string fields
/// (1 ≤ k ≤ 5), then group-count — the Project data-reduction sweep.
pub fn qp(k: usize, out: &str) -> String {
    assert!((1..=5).contains(&k), "QP projects 1..=5 fields");
    let projected: Vec<String> = (1..=k).map(|i| format!("field{i}")).collect();
    format!(
        "A = load '{SYNTH}' as ({schema});
         B = foreach A generate {proj};
         C = group B by field1;
         D = foreach C generate group, COUNT(B);
         store D into '{out}';",
        schema = schema_clause(),
        proj = projected.join(", "),
    )
}

/// Query template QF (§7.5): equality-filter on `field{i}` (6 ≤ i ≤ 12),
/// then group-count — the Filter data-reduction sweep.
pub fn qf(field: usize, out: &str) -> String {
    assert!((6..=12).contains(&field), "QF filters field6..field12");
    format!(
        "A = load '{SYNTH}' as ({schema});
         B = filter A by field{field} == 0;
         C = group B by field1;
         D = foreach C generate group, COUNT(B);
         store D into '{out}';",
        schema = schema_clause(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use restore_dfs::DfsConfig;

    fn dfs() -> Dfs {
        Dfs::new(DfsConfig { nodes: 3, block_size: 4096, replication: 1, node_capacity: None })
    }

    #[test]
    fn selectivities_match_table2() {
        let d = dfs();
        generate(&d, 20_000, 11).unwrap();
        let rows = codec::decode_all(&d.read_all(SYNTH).unwrap()).unwrap();
        for (field, _card, pct) in FILTER_FIELDS {
            let hits = rows.iter().filter(|t| t.get(field - 1).as_i64() == Some(0)).count();
            let actual = hits as f64 / rows.len() as f64;
            assert!(
                (actual - pct).abs() < pct * 0.25 + 0.004,
                "field{field}: selected {actual:.4}, expected {pct}"
            );
        }
    }

    #[test]
    fn cardinalities_match_table2() {
        let d = dfs();
        generate(&d, 20_000, 11).unwrap();
        let rows = codec::decode_all(&d.read_all(SYNTH).unwrap()).unwrap();
        for (field, card, _) in FILTER_FIELDS {
            let mut vals: Vec<i64> =
                rows.iter().filter_map(|t| t.get(field - 1).as_i64()).collect();
            vals.sort_unstable();
            vals.dedup();
            let expect = card.ceil() as usize;
            assert!(
                vals.len() <= expect && vals.len() >= expect.saturating_sub(1).max(2).min(expect),
                "field{field}: {} distinct values, cardinality {card}",
                vals.len()
            );
        }
    }

    #[test]
    fn string_fields_are_20_chars() {
        let d = dfs();
        generate(&d, 100, 3).unwrap();
        let rows = codec::decode_all(&d.read_all(SYNTH).unwrap()).unwrap();
        for t in &rows {
            for i in 0..5 {
                assert_eq!(t.get(i).as_str().unwrap().len(), 20);
            }
        }
    }

    #[test]
    fn projection_fractions_span_paper_range() {
        // Paper: one projected field ≈ 18 % of bytes, five ≈ 74 %.
        let d = dfs();
        let total = generate(&d, 5_000, 5).unwrap();
        let rows = codec::decode_all(&d.read_all(SYNTH).unwrap()).unwrap();
        let frac = |cols: &[usize]| {
            let s: usize = rows.iter().map(|t| t.project(cols).encoded_len()).sum();
            s as f64 / total as f64
        };
        let one = frac(&[0]);
        let five = frac(&[0, 1, 2, 3, 4]);
        assert!((0.1..0.3).contains(&one), "1 field keeps {one:.2}");
        assert!((0.6..0.9).contains(&five), "5 fields keep {five:.2}");
    }

    #[test]
    fn qp_and_qf_compile_and_run() {
        use restore_core::{ReStore, ReStoreConfig};
        use restore_mapreduce::{ClusterConfig, Engine, EngineConfig};
        let d = dfs();
        generate(&d, 500, 9).unwrap();
        let eng = Engine::new(
            d,
            ClusterConfig::default(),
            EngineConfig { worker_threads: 2, default_reduce_tasks: 2 },
        );
        let rs = ReStore::new(eng, ReStoreConfig::baseline());
        for k in 1..=5 {
            rs.execute_query(&qp(k, &format!("/out/qp{k}")), &format!("/wf/qp{k}")).unwrap();
        }
        for (f, _, _) in FILTER_FIELDS {
            rs.execute_query(&qf(f, &format!("/out/qf{f}")), &format!("/wf/qf{f}")).unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "QP projects")]
    fn qp_rejects_out_of_range() {
        qp(6, "/o");
    }
}
