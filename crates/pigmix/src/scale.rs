//! Experiment scale presets.
//!
//! The paper's two instances are 10M-row (≈15 GB) and 100M-row (≈150 GB)
//! `page_views` tables. We run scaled-down instances and let the cost
//! model's `byte_scale` map measured bytes back to the paper's volumes;
//! ratios (speedup, overhead) are scale-invariant, and the 1:10 ratio
//! between instances is preserved exactly.

/// A benchmark scale: row counts plus the paper-equivalent data volume.
#[derive(Debug, Clone, PartialEq)]
pub struct DataScale {
    /// Display name ("15GB", "150GB").
    pub name: &'static str,
    /// Rows in `page_views`.
    pub page_views_rows: usize,
    /// Distinct users (size of the `users` table).
    pub users: usize,
    /// Rows in `power_users` (subset of users).
    pub power_users: usize,
    /// Rows in `widerow`.
    pub widerow_rows: usize,
    /// The data volume this instance represents in the paper, bytes.
    pub paper_bytes: u64,
}

impl DataScale {
    /// The paper's 15 GB instance (10M rows), scaled 1:500 by default.
    pub fn gb15() -> DataScale {
        DataScale {
            name: "15GB",
            page_views_rows: 20_000,
            users: 1_000,
            power_users: 100,
            widerow_rows: 4_000,
            paper_bytes: 15 * (1u64 << 30),
        }
    }

    /// The paper's 150 GB instance (100M rows): exactly 10× the other.
    pub fn gb150() -> DataScale {
        DataScale {
            name: "150GB",
            page_views_rows: 200_000,
            users: 10_000,
            power_users: 1_000,
            widerow_rows: 40_000,
            paper_bytes: 150 * (1u64 << 30),
        }
    }

    /// Tiny instance for unit tests.
    pub fn tiny() -> DataScale {
        DataScale {
            name: "tiny",
            page_views_rows: 300,
            users: 40,
            power_users: 8,
            widerow_rows: 60,
            paper_bytes: 1 << 30,
        }
    }

    /// Byte-scale factor for the cost model given the actual generated
    /// size of `page_views`.
    pub fn byte_scale(&self, actual_page_views_bytes: u64) -> f64 {
        self.paper_bytes as f64 / actual_page_views_bytes.max(1) as f64
    }

    /// DFS block size that gives the same number of input splits the
    /// paper's cluster saw (64 MB blocks over the paper-scale data).
    pub fn block_size(&self, actual_page_views_bytes: u64) -> u64 {
        let paper_block = 64u64 << 20;
        let scaled = (paper_block as f64 / self.byte_scale(actual_page_views_bytes)) as u64;
        scaled.clamp(4 << 10, paper_block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instances_keep_paper_ratio() {
        let small = DataScale::gb15();
        let large = DataScale::gb150();
        assert_eq!(large.page_views_rows, 10 * small.page_views_rows);
        assert_eq!(large.paper_bytes, 10 * small.paper_bytes);
    }

    #[test]
    fn byte_scale_maps_to_paper_volume() {
        let s = DataScale::gb15();
        let actual = 30 << 20; // 30 MB generated
        let scale = s.byte_scale(actual);
        assert!((scale * actual as f64 - s.paper_bytes as f64).abs() < 1.0);
    }

    #[test]
    fn block_size_bounds() {
        let s = DataScale::gb150();
        // Same split count as the paper: actual_bytes / block == paper_bytes / 64MB.
        let actual = 46 << 20;
        let bs = s.block_size(actual);
        let paper_splits = s.paper_bytes / (64 << 20);
        let our_splits = actual / bs;
        let ratio = our_splits as f64 / paper_splits as f64;
        assert!((0.8..1.3).contains(&ratio), "split ratio {ratio}");
        // Tiny data clamps to the 4 KB floor.
        assert_eq!(s.block_size(1000), 4 << 10);
    }
}
