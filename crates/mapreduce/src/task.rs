//! Mapper/Reducer traits and their emit contexts.
//!
//! Mirrors Hadoop's task API shape. The dataflow crate implements these
//! traits with plan-driven interpreters; tests implement them directly.

use restore_common::{Result, Tuple};

/// Output collector handed to mappers.
///
/// A mapper can emit into three channels:
/// * [`MapContext::emit`] — keyed records for the shuffle (jobs with a
///   reduce phase);
/// * [`MapContext::output`] — direct records for map-only jobs;
/// * [`MapContext::side`] — records for an injected Store operator
///   (ReStore sub-job materialization in the map phase).
#[derive(Debug, Default)]
pub struct MapContext {
    /// (key, input-tag, value) triples destined for the shuffle. The tag
    /// identifies which job input produced the record so reducers can
    /// separate Join/CoGroup sides.
    pub shuffle: Vec<(Tuple, usize, Tuple)>,
    /// Direct output of map-only jobs.
    pub direct: Vec<Tuple>,
    /// Side-output records per channel.
    pub side: Vec<Vec<Tuple>>,
}

impl MapContext {
    pub fn new(side_channels: usize) -> Self {
        MapContext {
            shuffle: Vec::new(),
            direct: Vec::new(),
            side: (0..side_channels).map(|_| Vec::new()).collect(),
        }
    }

    /// Emit a keyed record into the shuffle, tagged with the input index.
    pub fn emit(&mut self, key: Tuple, tag: usize, value: Tuple) {
        self.shuffle.push((key, tag, value));
    }

    /// Emit a record to the job's main output (map-only jobs).
    pub fn output(&mut self, value: Tuple) {
        self.direct.push(value);
    }

    /// Emit a record to side-output channel `channel`.
    pub fn side(&mut self, channel: usize, value: Tuple) {
        self.side[channel].push(value);
    }
}

/// Output collector handed to reducers.
#[derive(Debug, Default)]
pub struct ReduceContext {
    /// Main output records.
    pub output: Vec<Tuple>,
    /// Side-output records per channel.
    pub side: Vec<Vec<Tuple>>,
}

impl ReduceContext {
    pub fn new(side_channels: usize) -> Self {
        ReduceContext { output: Vec::new(), side: (0..side_channels).map(|_| Vec::new()).collect() }
    }

    pub fn output(&mut self, value: Tuple) {
        self.output.push(value);
    }

    pub fn side(&mut self, channel: usize, value: Tuple) {
        self.side[channel].push(value);
    }
}

/// Per-record map function. One instance processes one input split.
pub trait Mapper: Send {
    /// Process one record from input `tag` (the index of the job input
    /// the current split belongs to).
    fn map(&mut self, tag: usize, record: Tuple, ctx: &mut MapContext) -> Result<()>;

    /// Called once after the last record of the split.
    fn finish(&mut self, _ctx: &mut MapContext) -> Result<()> {
        Ok(())
    }
}

/// Reduce function. One instance processes one partition.
pub trait Reducer: Send {
    /// Process one key group. `bags[tag]` holds the values that arrived
    /// from input `tag` (Join and CoGroup need per-input bags; Group uses
    /// a single bag).
    fn reduce(&mut self, key: &Tuple, bags: &[Vec<Tuple>], ctx: &mut ReduceContext) -> Result<()>;

    /// Called once after the last key of the partition.
    fn finish(&mut self, _ctx: &mut ReduceContext) -> Result<()> {
        Ok(())
    }
}

/// Factory producing a fresh [`Mapper`] per map task. Must be shareable
/// across the engine's worker threads.
pub trait MapperFactory: Send + Sync {
    fn create(&self) -> Box<dyn Mapper>;
}

/// Factory producing a fresh [`Reducer`] per reduce task.
pub trait ReducerFactory: Send + Sync {
    fn create(&self) -> Box<dyn Reducer>;
}

impl<F> MapperFactory for F
where
    F: Fn() -> Box<dyn Mapper> + Send + Sync,
{
    fn create(&self) -> Box<dyn Mapper> {
        self()
    }
}

impl<F> ReducerFactory for F
where
    F: Fn() -> Box<dyn Reducer> + Send + Sync,
{
    fn create(&self) -> Box<dyn Reducer> {
        self()
    }
}

/// Identity mapper: forwards every record keyed by its first field.
/// Useful in tests and as the degenerate map stage of reduce-heavy jobs.
pub struct IdentityMapper;

impl Mapper for IdentityMapper {
    fn map(&mut self, tag: usize, record: Tuple, ctx: &mut MapContext) -> Result<()> {
        let key = Tuple::from_values(vec![record.get(0).clone()]);
        ctx.emit(key, tag, record);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use restore_common::tuple;

    #[test]
    fn map_context_channels() {
        let mut ctx = MapContext::new(2);
        ctx.emit(tuple![1], 0, tuple![1, "a"]);
        ctx.output(tuple![9]);
        ctx.side(1, tuple!["s"]);
        assert_eq!(ctx.shuffle.len(), 1);
        assert_eq!(ctx.direct.len(), 1);
        assert!(ctx.side[0].is_empty());
        assert_eq!(ctx.side[1].len(), 1);
    }

    #[test]
    fn identity_mapper_keys_on_first_field() {
        let mut ctx = MapContext::new(0);
        IdentityMapper.map(0, tuple!["k", 5], &mut ctx).unwrap();
        assert_eq!(ctx.shuffle[0].0, tuple!["k"]);
        assert_eq!(ctx.shuffle[0].2, tuple!["k", 5]);
    }

    #[test]
    fn closures_are_factories() {
        let f = || Box::new(IdentityMapper) as Box<dyn Mapper>;
        let _mapper = MapperFactory::create(&f);
    }
}
