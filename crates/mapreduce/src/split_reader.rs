//! Record-boundary-aware split reading.
//!
//! DFS blocks split files at arbitrary byte offsets, so a record can
//! straddle two blocks. Like Hadoop's `LineRecordReader`, a map task over
//! a split with `offset > 0` skips the partial first record (it belongs to
//! the previous split) and reads past its end to finish its last record.

use restore_common::{codec, Result, Tuple};
use restore_dfs::{Dfs, FileSplit};

/// How far past the split end to read per probe while completing the last
/// record. Records are short relative to this, so one probe usually does.
const TAIL_PROBE: u64 = 64 * 1024;

/// Read all records logically belonging to `split`, returning the decoded
/// tuples and the number of payload bytes charged to this split.
pub fn read_split(dfs: &Dfs, split: &FileSplit, file_len: u64) -> Result<(Vec<Tuple>, u64)> {
    if split.len == 0 {
        return Ok((Vec::new(), 0));
    }
    let mut bytes = dfs.read_range(&split.path, split.offset, split.len)?;

    // Complete the trailing record with bytes from the next block(s).
    let mut tail_pos = split.offset + split.len;
    if !bytes.ends_with(b"\n") && tail_pos < file_len {
        loop {
            let take = TAIL_PROBE.min(file_len - tail_pos);
            if take == 0 {
                break;
            }
            let chunk = dfs.read_range(&split.path, tail_pos, take)?;
            tail_pos += take;
            match chunk.iter().position(|&b| b == b'\n') {
                Some(nl) => {
                    bytes.extend_from_slice(&chunk[..=nl]);
                    break;
                }
                None => bytes.extend_from_slice(&chunk),
            }
        }
    }

    // Skip the partial leading record: a record belongs to the split that
    // contains its first byte, so when the byte just before this split is
    // not a record terminator, the leading bytes continue a record owned
    // by the previous split.
    let continues_previous =
        split.offset > 0 && dfs.read_range(&split.path, split.offset - 1, 1)? != b"\n";
    let start = if !continues_previous {
        0
    } else {
        match bytes.iter().position(|&b| b == b'\n') {
            Some(nl) => nl + 1,
            // No newline in the entire extended split: the single record
            // started earlier, so nothing belongs to this split.
            None => bytes.len(),
        }
    };

    let payload = &bytes[start..];
    let mut tuples = Vec::new();
    for line in codec::LineIter::new(payload) {
        if line.is_empty() && tuples.is_empty() && payload.len() <= 1 {
            break;
        }
        tuples.push(codec::decode_line(line)?);
    }
    Ok((tuples, payload.len() as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use restore_common::tuple;
    use restore_dfs::DfsConfig;

    /// Write records, then check that reading all splits yields exactly
    /// the original records with no duplicates or losses, regardless of
    /// where block boundaries fall.
    fn check_partition(block_size: u64, rows: usize) {
        let dfs = Dfs::new(DfsConfig { nodes: 3, block_size, replication: 1, node_capacity: None });
        let tuples: Vec<Tuple> = (0..rows).map(|i| tuple![i as i64, format!("row-{i}")]).collect();
        let bytes = codec::encode_all(&tuples);
        dfs.write_all("/t", &bytes).unwrap();
        let file_len = dfs.file_len("/t").unwrap();

        let mut seen = Vec::new();
        let mut charged = 0;
        for split in dfs.splits("/t").unwrap() {
            let (ts, payload) = read_split(&dfs, &split, file_len).unwrap();
            charged += payload;
            seen.extend(ts);
        }
        assert_eq!(seen, tuples, "block_size={block_size}");
        assert_eq!(charged, file_len, "payload bytes partition the file");
    }

    #[test]
    fn record_boundaries_respected_across_block_sizes() {
        for bs in [7, 16, 32, 57, 128, 1024] {
            check_partition(bs, 100);
        }
    }

    #[test]
    fn single_record_larger_than_block() {
        let dfs =
            Dfs::new(DfsConfig { nodes: 2, block_size: 8, replication: 1, node_capacity: None });
        let t = tuple!["this-is-a-long-single-record-spanning-blocks"];
        dfs.write_all("/big", &codec::encode_all(std::slice::from_ref(&t))).unwrap();
        let file_len = dfs.file_len("/big").unwrap();
        let splits = dfs.splits("/big").unwrap();
        assert!(splits.len() > 1);
        let mut seen = Vec::new();
        for s in &splits {
            let (ts, _) = read_split(&dfs, s, file_len).unwrap();
            seen.extend(ts);
        }
        assert_eq!(seen, vec![t]);
    }

    #[test]
    fn empty_split_reads_nothing() {
        let dfs = Dfs::new(DfsConfig::small_for_tests());
        dfs.write_all("/e", b"").unwrap();
        let splits = dfs.splits("/e").unwrap();
        let (ts, n) = read_split(&dfs, &splits[0], 0).unwrap();
        assert!(ts.is_empty());
        assert_eq!(n, 0);
    }
}
